//! Figure-level reproduction tests: each of the paper's figures has its
//! underlying pipeline regenerated and checked (E2–E5 of DESIGN.md).

use uvcdat::cdat::hovmoller;
use uvcdat::cdms::synth::SynthesisSpec;
use uvcdat::dv3d::cell::Dv3dCell;
use uvcdat::dv3d::interaction::{Axis3, CameraOp, ConfigOp, VectorMode};
use uvcdat::dv3d::plots::PlotSpec;
use uvcdat::dv3d::spreadsheet::Dv3dSpreadsheet;
use uvcdat::dv3d::translation::{translate_scalar, translate_vector, TranslationOptions};
use uvcdat::hyperwall::cluster::run_wall;
use uvcdat::hyperwall::workflow::WallWorkflowConfig;
use uvcdat::rvtk::Color;

/// Fig 2: DV3D inside the UV-CDAT spreadsheet — several coordinated plots
/// of one dataset, responding to shared interaction.
#[test]
fn fig2_spreadsheet_of_coordinated_plots() {
    let ds = SynthesisSpec::new(2, 4, 20, 40).build();
    let opts = TranslationOptions::default();
    let ta = ds.variable("ta").unwrap().time_slab(0).unwrap();
    let ua = ds.variable("ua").unwrap().time_slab(0).unwrap();
    let va = ds.variable("va").unwrap().time_slab(0).unwrap();

    let mut sheet = Dv3dSpreadsheet::new(1, 3);
    sheet
        .place((0, 0), Dv3dCell::new("ta slicer", PlotSpec::slicer(translate_scalar(&ta, &opts).unwrap())))
        .unwrap();
    sheet
        .place((0, 1), Dv3dCell::new("ta volume", PlotSpec::volume(translate_scalar(&ta, &opts).unwrap())))
        .unwrap();
    let mut vcell = Dv3dCell::new(
        "wind",
        PlotSpec::vector_slicer(translate_vector(&ua, &va, &opts).unwrap()),
    );
    vcell.configure(&ConfigOp::SetVectorMode(VectorMode::Glyphs)).unwrap();
    sheet.place((0, 2), vcell).unwrap();

    // one interaction hits all active cells
    sheet.configure_active(&ConfigOp::Camera(CameraOp::Azimuth(30.0))).unwrap();
    let n = sheet.configure_active(&ConfigOp::MoveSlice { axis: Axis3::Z, delta: 1 }).unwrap();
    assert_eq!(n, 3);

    let frames = sheet.render_all(96, 72).unwrap();
    assert_eq!(frames.len(), 3);
    for ((r, c), fb) in &frames {
        assert!(
            fb.covered_pixels(Color::BLACK) > 50,
            "cell ({r},{c}) nearly empty"
        );
    }
}

/// Fig 3: an isosurface plot and a combined volume-render + slicer plot.
#[test]
fn fig3_isosurface_and_combined_volume_slicer() {
    let ds = SynthesisSpec::new(1, 6, 24, 48).build();
    let opts = TranslationOptions::default();
    let ta = ds.variable("ta").unwrap().time_slab(0).unwrap();
    let hus = ds.variable("hus").unwrap().time_slab(0).unwrap();
    let ta_img = translate_scalar(&ta, &opts).unwrap();
    let hus_img = translate_scalar(&hus, &opts).unwrap();

    // bottom of Fig 3: isosurface of one variable colored by a second
    let mut iso = Dv3dCell::new(
        "ta isosurface colored by hus",
        PlotSpec::isosurface_colored(ta_img.clone(), hus_img),
    );
    let fb = iso.render(128, 96).unwrap();
    assert!(fb.covered_pixels(Color::BLACK) > 200);

    // top of Fig 3: a volume render *combined* with a slice plane in one
    // cell — model as two plots populating one renderer
    use uvcdat::rvtk::render::{Framebuffer, Renderer};
    let slicer = PlotSpec::slicer(ta_img.clone()).build().unwrap();
    let volume = PlotSpec::volume(ta_img).build().unwrap();
    let mut r = Renderer::new();
    slicer.populate(&mut r).unwrap();
    volume.populate(&mut r).unwrap();
    r.reset_camera();
    let mut fb = Framebuffer::new(128, 96);
    r.render(&mut fb);
    assert!(fb.covered_pixels(Color::BLACK) > 300);
    assert_eq!(r.actors().len(), 1);
    assert_eq!(r.volumes().len(), 1);
}

/// Fig 4: Hovmöller slicer and volume over a time-as-vertical volume, and
/// the quantitative content of the figure — the ridge slope (phase speed).
#[test]
fn fig4_hovmoller_plots_and_phase_speed() {
    let configured = 8.0;
    let ds = SynthesisSpec::new(24, 1, 16, 48).noise(0.02).wave(configured, 5.0).build();
    let wave = ds.variable("wave").unwrap();

    // measured ridge slope matches the configured propagation
    let section = hovmoller::lon_time_section(wave, (-15.0, 15.0)).unwrap();
    let measured = hovmoller::zonal_phase_speed(&section).unwrap();
    assert!(
        (measured - configured).abs() < 4.0,
        "measured {measured} vs configured {configured}"
    );
    assert!(measured > 0.0, "eastward");

    // both Hovmöller plot flavours render
    let vol = hovmoller::hovmoller_volume(wave).unwrap();
    let img = translate_scalar(&vol, &TranslationOptions::default()).unwrap();
    for spec in [PlotSpec::hovmoller_slicer(img.clone()), PlotSpec::hovmoller_volume(img)] {
        let name = spec.palette_name();
        let mut cell = Dv3dCell::try_new(name, spec).unwrap();
        let fb = cell.render(96, 72).unwrap();
        assert!(fb.covered_pixels(Color::BLACK) > 40, "{name}");
    }
}

/// Fig 5: the 15-cell hyperwall execution model — server assigns per-cell
/// sub-workflows, clients render full-res, server mirrors low-res,
/// interaction ops propagate to every display.
#[test]
fn fig5_hyperwall_fifteen_cells() {
    let cfg = WallWorkflowConfig { n_cells: 15, synth: (1, 2, 10, 20), cell_px: (48, 36) };
    let ops = vec![ConfigOp::Camera(CameraOp::Azimuth(15.0))];
    let report = run_wall(&cfg, 4, 2, &ops).unwrap();
    assert_eq!(report.n_clients, 15);
    assert_eq!(report.client_frames, 30);
    // every display produced pixels on every frame
    for f in &report.frames {
        assert_eq!(f.coverage.len(), 15);
        assert!(f.coverage.iter().all(|&c| c > 0.0));
    }
    // interaction broadcast reached all clients quickly
    assert!(report.op_broadcast_ms[0] < 1000.0);
}
