//! End-to-end tests of the `uvcdat` CLI binary.

use std::process::Command;

fn uvcdat() -> Command {
    Command::new(env!("CARGO_BIN_EXE_uvcdat"))
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("uvcdat_cli_{}_{name}", std::process::id()))
}

#[test]
fn synth_info_calc_plot_pipeline() {
    let ncr = temp_path("a.ncr");
    let ppm = temp_path("a.ppm");

    // synth
    let out = uvcdat()
        .args(["synth", "-o", ncr.to_str().unwrap(), "--nt", "3", "--nlat", "12", "--nlon", "24"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // info lists the standard variables
    let out = uvcdat().args(["info", ncr.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ta ["), "{text}");
    assert!(text.contains("degrees") || text.contains("lat(12)"), "{text}");

    // calc evaluates and can write derived output
    let ncr2 = temp_path("b.ncr");
    let out = uvcdat()
        .args([
            "calc",
            ncr.to_str().unwrap(),
            "tc = ta - 273.15",
            "-o",
            ncr2.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = uvcdat().args(["info", ncr2.to_str().unwrap()]).output().unwrap();
    assert!(String::from_utf8_lossy(&out.stdout).contains("tc ["));

    // plot renders a PPM
    let out = uvcdat()
        .args([
            "plot",
            ncr.to_str().unwrap(),
            "--var",
            "ta",
            "--type",
            "slicer",
            "--time",
            "1",
            "--width",
            "120",
            "--height",
            "90",
            "-o",
            ppm.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let bytes = std::fs::read(&ppm).unwrap();
    assert!(bytes.starts_with(b"P6\n120 90\n255\n"));

    for p in [ncr, ncr2, ppm] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn hovmoller_plot_from_cli() {
    let ncr = temp_path("h.ncr");
    let ppm = temp_path("h.ppm");
    assert!(uvcdat()
        .args(["synth", "-o", ncr.to_str().unwrap(), "--nt", "8", "--nlat", "10", "--nlon", "20"])
        .status()
        .unwrap()
        .success());
    let out = uvcdat()
        .args([
            "plot",
            ncr.to_str().unwrap(),
            "--var",
            "wave",
            "--type",
            "hovmoller_volume",
            "-o",
            ppm.to_str().unwrap(),
            "--width",
            "96",
            "--height",
            "72",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(ppm.exists());
    std::fs::remove_file(ncr).ok();
    std::fs::remove_file(ppm).ok();
}

#[test]
fn bad_invocations_fail_cleanly() {
    // no command
    let out = uvcdat().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
    // unknown command
    let out = uvcdat().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    // missing file
    let out = uvcdat().args(["info", "/nonexistent.ncr"]).output().unwrap();
    assert!(!out.status.success());
    // bad calc expression on a real file
    let ncr = temp_path("bad.ncr");
    assert!(uvcdat()
        .args(["synth", "-o", ncr.to_str().unwrap(), "--nlat", "6", "--nlon", "12"])
        .status()
        .unwrap()
        .success());
    let out = uvcdat()
        .args(["calc", ncr.to_str().unwrap(), "nope + 1"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    // unknown plot type
    let out = uvcdat()
        .args([
            "plot",
            ncr.to_str().unwrap(),
            "--var",
            "ta",
            "--type",
            "hologram",
            "-o",
            "/tmp/x.ppm",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    std::fs::remove_file(ncr).ok();
}

#[test]
fn wall_subcommand_runs_small() {
    let out = uvcdat().args(["wall", "--cells", "2", "--frames", "1"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("2 clients"), "{text}");
}
