//! E1 / Fig 1: the UV-CDAT architecture — tightly coupled packages
//! (CDAT, DV3D) and loosely coupled external tools wired through the
//! VisTrails workflow/provenance layer, with the spreadsheet on top.

use uvcdat::dv3d::modules::{register_all, tags};
use uvcdat::vistrails::executor::Executor;
use uvcdat::vistrails::module::{ModuleRegistry, PortType};
use uvcdat::vistrails::pipeline::Pipeline;
use uvcdat::vistrails::provenance::{Action, Vistrail};
use uvcdat::vistrails::spreadsheet::{CellBinding, Spreadsheet};
use uvcdat::vistrails::value::{ParamValue, WfData};

fn full_registry() -> ModuleRegistry {
    let mut reg = ModuleRegistry::new();
    register_all(&mut reg);
    // the loosely coupled side of Fig 1: external analysis tools
    reg.register_external_tool("external", "VisIt", |_inputs, params| {
        Ok(format!(
            "visit session over {}",
            params.get("dataset").and_then(ParamValue::as_str).unwrap_or("?")
        ))
    });
    reg.register_external_tool("external", "Matlab", |inputs, _| {
        inputs
            .get("input")
            .and_then(WfData::as_float)
            .map(|x| format!("ans = {x:.2}"))
            .ok_or_else(|| "matlab needs numeric input".to_string())
    });
    reg
}

#[test]
fn tightly_coupled_packages_coexist_in_one_registry() {
    let reg = full_registry();
    // three tightly coupled packages + the loose adapters
    assert!(!reg.package_types("cdms").is_empty());
    assert!(!reg.package_types("cdat").is_empty());
    assert!(!reg.package_types("dv3d").is_empty());
    assert_eq!(reg.package_types("external").len(), 2);
}

#[test]
fn cross_package_pipeline_executes_with_typed_ports() {
    // cdms → cdat → dv3d chain, validated against port types.
    let reg = full_registry();
    let mut p = Pipeline::new();
    p.add_module(1, "cdms.SynthSource").unwrap();
    p.set_parameter(1, "nt", ParamValue::Int(2)).unwrap();
    p.set_parameter(1, "nlat", ParamValue::Int(10)).unwrap();
    p.set_parameter(1, "nlon", ParamValue::Int(20)).unwrap();
    p.add_module(2, "cdms.SelectVariable").unwrap();
    p.set_parameter(2, "name", ParamValue::Str("ta".into())).unwrap();
    p.connect((1, "dataset"), (2, "dataset")).unwrap();
    p.add_module(3, "cdat.Anomaly").unwrap();
    p.connect((2, "variable"), (3, "variable")).unwrap();
    p.add_module(4, "cdat.TimeSlab").unwrap();
    p.connect((3, "variable"), (4, "variable")).unwrap();
    p.add_module(5, "dv3d.TranslateScalar").unwrap();
    p.connect((4, "variable"), (5, "variable")).unwrap();
    p.add_module(6, "dv3d.SlicerPlot").unwrap();
    p.connect((5, "image"), (6, "image")).unwrap();
    p.add_module(7, "dv3d.Cell").unwrap();
    p.connect((6, "plot"), (7, "plot")).unwrap();
    p.validate(&reg).unwrap();

    let mut exec = Executor::new(reg);
    let results = exec.execute(&p).unwrap();
    let coverage = results.output(7, "coverage").and_then(WfData::as_float).unwrap();
    assert!(coverage > 0.05, "coverage {coverage}");
    // the frame flows as an opaque rvtk type through the engine
    let frame = results.output(7, "frame").unwrap();
    assert_eq!(frame.type_tag(), tags::FRAME);
}

#[test]
fn type_mismatches_across_packages_are_caught() {
    let reg = full_registry();
    let mut p = Pipeline::new();
    p.add_module(1, "cdms.SynthSource").unwrap();
    p.add_module(2, "dv3d.TranslateScalar").unwrap();
    // Dataset → variable port: wrong opaque tag
    p.connect((1, "dataset"), (2, "variable")).unwrap();
    assert!(matches!(
        p.validate(&reg),
        Err(uvcdat::vistrails::WfError::TypeMismatch { .. })
    ));
}

#[test]
fn loosely_coupled_tools_run_in_workflows() {
    let reg = full_registry();
    let mut p = Pipeline::new();
    p.add_module(1, "external.VisIt").unwrap();
    p.set_parameter(1, "dataset", ParamValue::Str("merra2".into())).unwrap();
    let mut exec = Executor::new(reg);
    let out = exec.execute(&p).unwrap();
    assert_eq!(
        out.output(1, "result").and_then(|d| d.as_str()),
        Some("visit session over merra2")
    );
}

#[test]
fn spreadsheet_binds_provenance_versions_and_reloads() {
    // The UV-CDAT GUI model: a spreadsheet whose cells are provenance
    // versions; saving keeps everything reproducible.
    let mut vt = Vistrail::new("session");
    let v1 = vt
        .add_actions(
            Vistrail::ROOT,
            vec![
                Action::AddModule { id: 1, type_name: "cdms.SynthSource".into() },
                Action::AddModule { id: 2, type_name: "cdms.SelectVariable".into() },
                Action::SetParameter {
                    module: 2,
                    name: "name".into(),
                    value: ParamValue::Str("ta".into()),
                },
                Action::AddConnection { from: (1, "dataset".into()), to: (2, "dataset".into()) },
            ],
        )
        .unwrap();
    vt.tag(v1, "ta pipeline").unwrap();

    let mut sheet = Spreadsheet::new("main", 2, 2);
    sheet
        .set_cell((0, 0), CellBinding { version: v1, sink: 2, label: "ta".into() })
        .unwrap();
    sheet.set_active((0, 0), true).unwrap();
    let saved = sheet.save_with_provenance(&vt).unwrap();

    let (sheet2, vt2) = Spreadsheet::load_with_provenance(&saved).unwrap();
    assert_eq!(sheet2.cell((0, 0)).unwrap().version, v1);
    let p = vt2.materialize(vt2.tagged("ta pipeline").unwrap()).unwrap();
    p.validate(&full_registry()).unwrap();
}

#[test]
fn external_tool_type_is_any_and_composes() {
    // any numeric output can feed the Matlab adapter
    let reg = full_registry();
    let mut p = Pipeline::new();
    p.add_module(1, "cdms.SynthSource").unwrap();
    p.set_parameter(1, "nlat", ParamValue::Int(6)).unwrap();
    p.set_parameter(1, "nlon", ParamValue::Int(12)).unwrap();
    p.add_module(2, "cdms.SelectVariable").unwrap();
    p.set_parameter(2, "name", ParamValue::Str("pr".into())).unwrap();
    p.connect((1, "dataset"), (2, "dataset")).unwrap();
    // reuse the dv3d.Cell's Float coverage output as the numeric input
    p.add_module(3, "dv3d.TranslateScalar").unwrap();
    p.add_module(4, "cdat.TimeSlab").unwrap();
    p.connect((2, "variable"), (4, "variable")).unwrap();
    p.connect((4, "variable"), (3, "variable")).unwrap();
    p.add_module(5, "dv3d.SlicerPlot").unwrap();
    p.connect((3, "image"), (5, "image")).unwrap();
    p.add_module(6, "dv3d.Cell").unwrap();
    p.connect((5, "plot"), (6, "plot")).unwrap();
    p.add_module(7, "external.Matlab").unwrap();
    p.connect((6, "coverage"), (7, "input")).unwrap();
    p.validate(&reg).unwrap();
    let mut exec = Executor::new(reg);
    let out = exec.execute(&p).unwrap();
    let text = out.output(7, "result").and_then(|d| d.as_str()).unwrap();
    assert!(text.starts_with("ans = "), "{text}");
}

#[test]
fn port_type_helper_matches_runtime_values() {
    // PortType::Opaque tags line up with what the modules actually emit.
    let t = PortType::Opaque(tags::VARIABLE.into());
    let ds = uvcdat::cdms::synth::SynthesisSpec::new(1, 1, 4, 8).build();
    let v = ds.variable("ta").unwrap().clone();
    assert!(t.accepts(&WfData::opaque(tags::VARIABLE, v)));
    assert!(!t.accepts(&WfData::opaque(tags::DATASET, 3u8)));
}
