//! End-to-end data-flow tests: catalog → file format → analysis →
//! translation → plots → rendering, across every crate boundary.

use uvcdat::cdat::{averager, climatology, regrid, statistics};
use uvcdat::cdms::catalog::{EsgCatalog, FacetQuery};
use uvcdat::cdms::synth::SynthesisSpec;
use uvcdat::cdms::{Dataset, RectGrid};
use uvcdat::dv3d::cell::Dv3dCell;
use uvcdat::dv3d::interaction::{Axis3, CameraOp, ConfigOp};
use uvcdat::dv3d::plots::PlotSpec;
use uvcdat::dv3d::translation::{translate_scalar, TranslationOptions};
use uvcdat::rvtk::Color;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("uvcdat_e2e_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

#[test]
fn esg_to_rendered_frame() {
    // Publish into the (simulated) federation, search it, open it, analyze
    // it, render it: the complete §III.G workflow without the GUI.
    let root = temp_dir("full");
    let mut catalog = EsgCatalog::new(&root).unwrap();
    let mut ds = SynthesisSpec::new(3, 4, 18, 36).seed(99).build();
    ds.id = "merra_like_run1".into();
    catalog.publish(&ds, Some("esg.nccs.nasa.gov")).unwrap();

    // discovery by facet
    let hits = catalog.search(&FacetQuery::new().facet("model", "SYNTH-1").variable("ta"));
    assert_eq!(hits.len(), 1);
    let opened = catalog.open(&hits[0].id.clone()).unwrap();

    // analysis: anomaly then time slab
    let ta = opened.variable("ta").unwrap();
    let anom = climatology::anomaly(ta).unwrap();
    let slab = anom.time_slab(1).unwrap();

    // translation + plot + render
    let img = translate_scalar(&slab, &TranslationOptions::default()).unwrap();
    let mut cell = Dv3dCell::new("ta anomaly", PlotSpec::slicer(img));
    cell.set_base_map(opened.variable("sftlf").unwrap()).unwrap();
    cell.configure(&ConfigOp::Camera(CameraOp::Elevation(-20.0))).unwrap();
    let fb = cell.render(200, 150).unwrap();
    assert!(fb.covered_pixels(Color::BLACK) > 500);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn ncr_file_preserves_analysis_results() {
    // derived variables written to .ncr read back bit-identical
    let dir = temp_dir("ncr");
    std::fs::create_dir_all(&dir).unwrap();
    let ds = SynthesisSpec::new(4, 2, 12, 24).build();
    let ta = ds.variable("ta").unwrap();
    let anom = climatology::anomaly(ta).unwrap();
    let zonal = averager::zonal_mean(&anom).unwrap();

    let mut derived = Dataset::new("derived").with_attr("history", "anomaly + zonal mean");
    derived.add_variable(zonal.clone());
    let path = dir.join("derived.ncr");
    derived.save(&path).unwrap();

    let back = Dataset::open(&path).unwrap();
    let rt = back.variable(&zonal.id).unwrap();
    assert_eq!(rt.array, zonal.array);
    assert_eq!(rt.axes, zonal.axes);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn regrid_then_plot_preserves_structure() {
    // regridding to a coarser grid then plotting still shows the field;
    // pattern correlation between original and round-tripped field is high
    let ds = SynthesisSpec::new(1, 3, 24, 48).noise(0.0).build();
    let ta = ds.variable("ta").unwrap().time_slab(0).unwrap();

    let coarse = RectGrid::uniform(12, 24).unwrap();
    let lo = regrid::bilinear(&ta, &coarse).unwrap();
    let fine = RectGrid::uniform(24, 48).unwrap();
    let back = regrid::bilinear(&lo, &fine).unwrap();

    let r = statistics::correlation(&ta, &back).unwrap();
    assert!(r > 0.98, "round-trip correlation {r}");

    let img = translate_scalar(&lo, &TranslationOptions::default()).unwrap();
    let mut cell = Dv3dCell::new("lo-res ta", PlotSpec::volume(img));
    let fb = cell.render(120, 90).unwrap();
    assert!(fb.covered_pixels(Color::BLACK) > 100);
}

#[test]
fn every_plot_type_renders_the_same_dataset() {
    // one dataset drives all five §III.C plot types
    let ds = SynthesisSpec::new(6, 4, 16, 32).build();
    let opts = TranslationOptions::default();
    let ta = ds.variable("ta").unwrap().time_slab(0).unwrap();
    let hus = ds.variable("hus").unwrap().time_slab(0).unwrap();
    let ua = ds.variable("ua").unwrap().time_slab(0).unwrap();
    let va = ds.variable("va").unwrap().time_slab(0).unwrap();
    let wave = uvcdat::cdat::hovmoller::hovmoller_volume(ds.variable("wave").unwrap()).unwrap();

    let ta_img = translate_scalar(&ta, &opts).unwrap();
    let hus_img = translate_scalar(&hus, &opts).unwrap();
    let wave_img = translate_scalar(&wave, &opts).unwrap();
    let wind_img =
        uvcdat::dv3d::translation::translate_vector(&ua, &va, &opts).unwrap();

    let specs = vec![
        ("slicer", PlotSpec::slicer_with_overlay(ta_img.clone(), hus_img.clone())),
        ("volume", PlotSpec::volume(ta_img.clone())),
        ("isosurface", PlotSpec::isosurface_colored(ta_img, hus_img)),
        ("hovmoller slicer", PlotSpec::hovmoller_slicer(wave_img.clone())),
        ("hovmoller volume", PlotSpec::hovmoller_volume(wave_img)),
        ("vector slicer", PlotSpec::vector_slicer(wind_img)),
    ];
    for (name, spec) in specs {
        let mut cell = Dv3dCell::try_new(name, spec).unwrap();
        let fb = cell.render(96, 72).unwrap();
        assert!(
            fb.covered_pixels(Color::BLACK) > 50,
            "{name} rendered almost nothing"
        );
    }
}

#[test]
fn animation_over_time_changes_frames() {
    use uvcdat::dv3d::animation::AnimationController;
    let ds = SynthesisSpec::new(5, 1, 12, 24).build();
    let pr = ds.variable("pr").unwrap();
    let opts = TranslationOptions::default();
    let mut anim = AnimationController::from_variable(pr, &opts).unwrap();
    let mut cell = Dv3dCell::new(
        "pr",
        PlotSpec::slicer(translate_scalar(&pr.time_slab(0).unwrap(), &opts).unwrap()),
    );
    cell.show_labels = false;
    cell.show_colorbar = false;
    let frames = anim.render_loop(&mut cell, 64, 48).unwrap();
    assert_eq!(frames.len(), 5);
    // the ITCZ precipitation wave moves: successive frames differ
    let mut distinct = 0;
    for w in frames.windows(2) {
        let diff = w[0]
            .colors()
            .iter()
            .zip(w[1].colors())
            .filter(|(a, b)| a.to_u8() != b.to_u8())
            .count();
        if diff > 10 {
            distinct += 1;
        }
    }
    assert!(distinct >= 3, "only {distinct} frame pairs differ");
}

#[test]
fn masked_data_survives_the_whole_pipeline() {
    // SST is masked over land; the mask must flow through analysis,
    // translation (as NaN) and rendering (as the LUT's nan color).
    let ds = SynthesisSpec::new(2, 1, 16, 32).build();
    let tos = ds.variable("tos").unwrap();
    let anom = climatology::anomaly(tos).unwrap();
    assert_eq!(anom.array.valid_count(), tos.array.valid_count());
    let slab = anom.time_slab(0).unwrap();
    let img = translate_scalar(&slab, &TranslationOptions::default()).unwrap();
    let n_nan = img.scalars.iter().filter(|v| v.is_nan()).count();
    assert_eq!(n_nan, slab.array.len() - slab.array.valid_count());
    let mut cell = Dv3dCell::new("tos anom", PlotSpec::slicer(img));
    let fb = cell.render(96, 72).unwrap();
    assert!(fb.covered_pixels(Color::BLACK) > 100);
}

#[test]
fn calculator_feeds_the_viewer() {
    // derive with the calculator, then render what it made
    let mut ds = SynthesisSpec::new(2, 3, 12, 24).build();
    uvcdat::dv3d::calculator::evaluate(&mut ds, "spd = sqrt(ua*ua + va*va)").unwrap();
    let spd = ds.variable("spd").unwrap().time_slab(0).unwrap();
    let img = translate_scalar(&spd, &TranslationOptions::default()).unwrap();
    let mut cell = Dv3dCell::new("wind speed", PlotSpec::volume(img));
    cell.configure(&ConfigOp::Leveling { dx: -0.3, dy: 0.5 }).unwrap();
    cell.configure(&ConfigOp::MoveSlice { axis: Axis3::Z, delta: 1 }).ok();
    let fb = cell.render(96, 72).unwrap();
    assert!(fb.covered_pixels(Color::BLACK) > 30);
}
