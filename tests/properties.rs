//! Property-based tests on cross-crate invariants (proptest).

use proptest::prelude::*;
use uvcdat::cdat::regrid;
use uvcdat::cdms::array::{MaskedArray, Reduction};
use uvcdat::cdms::calendar::{Calendar, RelTime};
use uvcdat::cdms::format;
use uvcdat::cdms::{Axis, Dataset, RectGrid, Variable};
use uvcdat::rvtk::filters::isosurface;
use uvcdat::rvtk::ImageData;
use uvcdat::vistrails::provenance::{Action, Vistrail};
use uvcdat::vistrails::value::ParamValue;

/// Strategy: a small masked array with arbitrary data and mask.
fn masked_array(max_len: usize) -> impl Strategy<Value = MaskedArray> {
    (1..=max_len).prop_flat_map(|n| {
        (
            proptest::collection::vec(-1e6f32..1e6f32, n),
            proptest::collection::vec(any::<bool>(), n),
        )
            .prop_map(move |(data, mask)| {
                MaskedArray::with_mask(data, mask, &[n]).unwrap()
            })
    })
}

/// Strategy: a pair of masked arrays of the *same* length.
fn masked_pair(max_len: usize) -> impl Strategy<Value = (MaskedArray, MaskedArray)> {
    (1..=max_len).prop_flat_map(|n| {
        let one = move || {
            (
                proptest::collection::vec(-1e6f32..1e6f32, n),
                proptest::collection::vec(any::<bool>(), n),
            )
                .prop_map(move |(data, mask)| {
                    MaskedArray::with_mask(data, mask, &[n]).unwrap()
                })
        };
        (one(), one())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// a + b == b + a with identical masks.
    #[test]
    fn masked_add_commutes((a, b) in masked_pair(64)) {
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert_eq!(ab.mask(), ba.mask());
        for i in 0..ab.len() {
            prop_assert!((ab.data()[i] - ba.data()[i]).abs() <= f32::EPSILON * ab.data()[i].abs().max(1.0));
        }
    }

    /// The output mask of a binary op is exactly the OR of input masks.
    #[test]
    fn mask_propagation_is_union((a, b) in masked_pair(48)) {
        let sum = a.add(&b).unwrap();
        for i in 0..sum.len() {
            prop_assert_eq!(sum.mask()[i], a.mask()[i] || b.mask()[i]);
        }
    }

    /// Reductions never count masked elements.
    #[test]
    fn reduction_count_matches_mask(a in masked_array(64)) {
        let count = a.reduce_all(Reduction::Count).unwrap() as usize;
        prop_assert_eq!(count, a.valid_count());
        if count > 0 {
            let mn = a.reduce_all(Reduction::Min).unwrap();
            let mx = a.reduce_all(Reduction::Max).unwrap();
            let mean = a.reduce_all(Reduction::Mean).unwrap();
            prop_assert!(mn <= mx);
            prop_assert!(mean >= mn - 1e-3 && mean <= mx + 1e-3);
        }
    }

    /// Relative-time encode/decode round-trips under every calendar.
    #[test]
    fn calendar_roundtrip(value in -50_000.0f64..50_000.0, cal_i in 0usize..4) {
        let cal = [Calendar::Gregorian, Calendar::NoLeap365, Calendar::AllLeap366, Calendar::Day360][cal_i];
        let rel = RelTime::parse("hours since 1980-01-01").unwrap();
        let t = rel.decode(value, cal);
        let back = rel.encode(&t, cal);
        prop_assert!((back - value).abs() < 1e-4, "{} -> {} ({:?})", value, back, cal);
    }

    /// The .ncr format round-trips arbitrary 2D masked variables exactly.
    #[test]
    fn ncr_roundtrips_arbitrary_variables(
        ny in 1usize..6,
        nx in 1usize..6,
        seed_vals in proptest::collection::vec(-1e5f32..1e5f32, 36),
        seed_mask in proptest::collection::vec(any::<bool>(), 36),
    ) {
        let n = ny * nx;
        let data = seed_vals[..n].to_vec();
        let mask = seed_mask[..n].to_vec();
        let arr = MaskedArray::with_mask(data, mask, &[ny, nx]).unwrap();
        let lat = Axis::linspace("lat", -80.0, 80.0, ny, "degrees_north").unwrap();
        let lon = Axis::linspace("lon", 0.0, 300.0, nx, "degrees_east").unwrap();
        let var = Variable::new("v", arr, vec![lat, lon]).unwrap();
        let mut ds = Dataset::new("prop");
        ds.add_variable(var.clone());
        let bytes = format::to_bytes(&ds);
        let back = format::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back.variable("v").unwrap().array, &var.array);
    }

    /// Conservative regridding preserves the area-weighted mean for
    /// arbitrary smooth fields on arbitrary grid pairs.
    #[test]
    fn conservative_regrid_conserves(
        src_n in 6usize..20,
        dst_n in 6usize..20,
        a in -5.0f64..5.0,
        b in -5.0f64..5.0,
        c in 1.0f64..4.0,
    ) {
        let src = RectGrid::uniform(src_n, src_n * 2).unwrap();
        let arr = MaskedArray::from_fn(&[src_n, src_n * 2], |ix| {
            let phi = src.lat.values[ix[0]].to_radians();
            let lam = src.lon.values[ix[1]].to_radians();
            (10.0 + a * (c * lam).sin() * phi.cos() + b * (2.0 * phi).sin()) as f32
        });
        let v = Variable::new("f", arr, vec![src.lat.clone(), src.lon.clone()]).unwrap();
        let dst = RectGrid::uniform(dst_n, dst_n * 2).unwrap();
        let r = regrid::conservative(&v, &dst).unwrap();
        let before = regrid::area_mean_2d(&v).unwrap();
        let after = regrid::area_mean_2d(&r).unwrap();
        prop_assert!((before - after).abs() < 1e-3 * before.abs().max(1.0),
            "src {} dst {}: {} vs {}", src_n, dst_n, before, after);
    }

    /// Isosurfaces of radial fields are watertight for any centre/radius
    /// that stays inside the grid.
    #[test]
    fn isosurface_watertight(
        n in 8usize..18,
        radius_frac in 0.15f64..0.4,
        cx in 0.4f64..0.6,
    ) {
        let c = (n - 1) as f64;
        let (px, py, pz) = (c * cx, c * 0.5, c * 0.5);
        let img = ImageData::from_fn([n, n, n], [1.0; 3], [0.0; 3], move |x, y, z| {
            (((x - px).powi(2) + (y - py).powi(2) + (z - pz).powi(2)) as f32).sqrt()
        });
        let r = (radius_frac * c) as f32;
        let surf = isosurface(&img, r).unwrap();
        prop_assert!(!surf.triangles.is_empty());
        prop_assert!(surf.is_closed_surface(), "n={} r={}", n, r);
    }

    /// Provenance materialization is a pure function of the action path:
    /// rebuilding the same tree yields identical pipelines at every version.
    #[test]
    fn provenance_replay_is_pure(params in proptest::collection::vec(-100i64..100, 1..12)) {
        let build = |params: &[i64]| {
            let mut vt = Vistrail::new("p");
            let mut head = Vistrail::ROOT;
            head = vt.add_action(head, Action::AddModule { id: 1, type_name: "m".into() }).unwrap();
            for (i, &v) in params.iter().enumerate() {
                head = vt.add_action(head, Action::SetParameter {
                    module: 1,
                    name: format!("p{i}"),
                    value: ParamValue::Int(v),
                }).unwrap();
            }
            (vt, head)
        };
        let (vt1, h1) = build(&params);
        let (vt2, h2) = build(&params);
        prop_assert_eq!(vt1.materialize(h1).unwrap(), vt2.materialize(h2).unwrap());
        // serde round-trip preserves materialization too
        let json = vt1.to_json().unwrap();
        let vt3 = Vistrail::from_json(&json).unwrap();
        prop_assert_eq!(vt3.materialize(h1).unwrap(), vt1.materialize(h1).unwrap());
    }

    /// Axis coordinate subsetting returns exactly the in-range points.
    #[test]
    fn axis_subset_selects_in_range(
        n in 2usize..40,
        lo in -90.0f64..90.0,
        hi in -90.0f64..90.0,
    ) {
        let ax = Axis::linspace("lat", -90.0, 90.0, n, "degrees_north").unwrap();
        match ax.index_range(lo, hi) {
            Ok((a, b)) => {
                let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
                for (i, &v) in ax.values.iter().enumerate() {
                    let inside = v >= lo - 1e-9 && v <= hi + 1e-9;
                    prop_assert_eq!(inside, (a..b).contains(&i));
                }
            }
            Err(_) => {
                let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
                prop_assert!(ax.values.iter().all(|&v| v < lo || v > hi));
            }
        }
    }

    /// The calculator agrees with direct f64 arithmetic on scalar
    /// expressions of arbitrary shape.
    #[test]
    fn calculator_scalar_arithmetic_is_sound(
        a in -1e3f64..1e3,
        b in -1e3f64..1e3,
        c in 1.0f64..1e3,
    ) {
        let mut ds = uvcdat::cdms::Dataset::new("empty");
        let expr = format!("({a} + {b}) * {c} - {b} / {c}");
        let got = uvcdat::dv3d::calculator::evaluate(&mut ds, &expr)
            .unwrap()
            .as_scalar()
            .unwrap();
        let want = (a + b) * c - b / c;
        prop_assert!((got - want).abs() <= 1e-9 * want.abs().max(1.0), "{} vs {}", got, want);
    }

    /// Variable identities hold through the calculator: (x + k) - k == x.
    #[test]
    fn calculator_variable_roundtrip(k in -1e3f32..1e3) {
        let mut ds = uvcdat::cdms::synth::SynthesisSpec::new(1, 1, 4, 8).build();
        let expr = format!("y = (pr + {k}) - {k}");
        uvcdat::dv3d::calculator::evaluate(&mut ds, &expr).unwrap();
        let y = ds.variable("y").unwrap();
        let pr = ds.variable("pr").unwrap();
        for i in 0..y.array.len() {
            let err = (y.array.data()[i] - pr.array.data()[i]).abs();
            prop_assert!(err <= 1e-2 + 1e-4 * pr.array.data()[i].abs().max(k.abs()), "{}", err);
        }
    }

    /// Bilinear regridding is exact for fields linear in latitude.
    #[test]
    fn bilinear_exact_on_linear_fields(src_n in 6usize..24, dst_n in 4usize..20) {
        let src = RectGrid::uniform(src_n, src_n).unwrap();
        let arr = MaskedArray::from_fn(&[src_n, src_n], |ix| src.lat.values[ix[0]] as f32);
        let v = Variable::new("f", arr, vec![src.lat.clone(), src.lon.clone()]).unwrap();
        let dst = RectGrid::uniform(dst_n, dst_n).unwrap();
        let r = regrid::bilinear(&v, &dst).unwrap();
        // interior target latitudes (within the source's coverage)
        let (src_lo, src_hi) = src.lat.range();
        for (j, &phi) in dst.lat.values.iter().enumerate() {
            if phi > src_lo && phi < src_hi {
                let got = r.array.get(&[j, 0]).unwrap() as f64;
                prop_assert!((got - phi).abs() < 1e-3, "lat {}: got {}", phi, got);
            }
        }
    }
}
