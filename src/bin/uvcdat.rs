//! `uvcdat` — the command-line face of the application.
//!
//! ```text
//! uvcdat synth  -o data.ncr [--nt 8 --nlev 6 --nlat 24 --nlon 48 --seed 42]
//! uvcdat info   data.ncr
//! uvcdat calc   data.ncr "anom = ta - avg(ta, 'time')" [-o out.ncr]
//! uvcdat plot   data.ncr --var ta --type slicer -o out.ppm
//!               [--time 0 --width 640 --height 480 --colormap viridis]
//! uvcdat wall   [--cells 15 --frames 2]
//! ```

use dv3d::cell::Dv3dCell;
use dv3d::interaction::ConfigOp;
use dv3d::plots::PlotSpec;
use dv3d::translation::{translate_scalar, TranslationOptions};
use std::collections::HashMap;
use std::process::ExitCode;
use uvcdat::cdms::synth::SynthesisSpec;
use uvcdat::cdms::Dataset;
use uvcdat::{cdat, cdms, dv3d, hyperwall};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  uvcdat synth  -o FILE [--nt N --nlev N --nlat N --nlon N --seed N]
  uvcdat info   FILE
  uvcdat calc   FILE EXPR [-o FILE]
  uvcdat plot   FILE --var NAME --type TYPE -o FILE.ppm
                [--time N --width N --height N --colormap NAME]
  uvcdat wall   [--cells N --frames N]

plot types: slicer volume isosurface hovmoller_slicer hovmoller_volume";

/// Splits `args` into positional arguments and `--flag value` options.
fn parse(args: &[String]) -> (Vec<&str>, HashMap<&str, &str>) {
    let mut pos = Vec::new();
    let mut opts = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if let Some(name) = a.strip_prefix("--") {
            if i + 1 < args.len() {
                opts.insert(name, args[i + 1].as_str());
                i += 2;
            } else {
                opts.insert(name, "");
                i += 1;
            }
        } else if a == "-o" {
            if i + 1 < args.len() {
                opts.insert("o", args[i + 1].as_str());
                i += 2;
            } else {
                i += 1;
            }
        } else {
            pos.push(a);
            i += 1;
        }
    }
    (pos, opts)
}

fn opt_usize(opts: &HashMap<&str, &str>, name: &str, default: usize) -> Result<usize, String> {
    match opts.get(name) {
        Some(v) => v.parse().map_err(|_| format!("--{name} wants a number, got '{v}'")),
        None => Ok(default),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let (pos, opts) = parse(args);
    match pos.first().copied() {
        Some("synth") => cmd_synth(&opts),
        Some("info") => cmd_info(&pos, &opts),
        Some("calc") => cmd_calc(&pos, &opts),
        Some("plot") => cmd_plot(&pos, &opts),
        Some("wall") => cmd_wall(&opts),
        Some(other) => Err(format!("unknown command '{other}'")),
        None => Err("no command given".into()),
    }
}

fn cmd_synth(opts: &HashMap<&str, &str>) -> Result<(), String> {
    let out = opts.get("o").ok_or("synth needs -o FILE")?;
    let spec = SynthesisSpec::new(
        opt_usize(opts, "nt", 8)?,
        opt_usize(opts, "nlev", 6)?,
        opt_usize(opts, "nlat", 24)?,
        opt_usize(opts, "nlon", 48)?,
    )
    .seed(opt_usize(opts, "seed", 42)? as u64);
    let mut ds = spec.build();
    ds.id = std::path::Path::new(out)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("synth")
        .to_string();
    ds.save(out).map_err(|e| e.to_string())?;
    println!("wrote {} variables to {out}", ds.len());
    Ok(())
}

fn cmd_info(pos: &[&str], _opts: &HashMap<&str, &str>) -> Result<(), String> {
    let path = pos.get(1).ok_or("info needs a FILE")?;
    let ds = Dataset::open(path).map_err(|e| e.to_string())?;
    println!("dataset '{}' ({} variables)", ds.id, ds.len());
    for (k, v) in &ds.attributes {
        println!("  :{k} = {v}");
    }
    for var in ds.variables() {
        let axes: Vec<String> =
            var.axes.iter().map(|a| format!("{}({})", a.id, a.len())).collect();
        println!(
            "  {} [{}]  {}  \"{}\"  valid {:.1}%",
            var.id,
            axes.join(", "),
            var.units().unwrap_or("-"),
            var.long_name(),
            var.array.valid_fraction() * 100.0
        );
    }
    Ok(())
}

fn cmd_calc(pos: &[&str], opts: &HashMap<&str, &str>) -> Result<(), String> {
    let path = pos.get(1).ok_or("calc needs a FILE")?;
    let expr = pos.get(2).ok_or("calc needs an EXPR")?;
    let mut ds = Dataset::open(path).map_err(|e| e.to_string())?;
    let value = dv3d::calculator::evaluate(&mut ds, expr).map_err(|e| e.to_string())?;
    match &value {
        dv3d::calculator::CalcValue::Scalar(s) => println!("{s}"),
        dv3d::calculator::CalcValue::Variable(v) => {
            println!(
                "{} {:?} mean {:.4} (valid {:.1}%)",
                v.id,
                v.shape(),
                v.array.mean().unwrap_or(f32::NAN),
                v.array.valid_fraction() * 100.0
            );
        }
    }
    if let Some(out) = opts.get("o") {
        ds.save(out).map_err(|e| e.to_string())?;
        println!("wrote {} variables to {out}", ds.len());
    }
    Ok(())
}

fn cmd_plot(pos: &[&str], opts: &HashMap<&str, &str>) -> Result<(), String> {
    let path = pos.get(1).ok_or("plot needs a FILE")?;
    let var_name = opts.get("var").ok_or("plot needs --var NAME")?;
    let plot_type = opts.get("type").copied().unwrap_or("slicer");
    let out = opts.get("o").ok_or("plot needs -o FILE.ppm")?;
    let width = opt_usize(opts, "width", 640)?;
    let height = opt_usize(opts, "height", 480)?;
    let t = opt_usize(opts, "time", 0)?;

    let ds = Dataset::open(path).map_err(|e| e.to_string())?;
    let var = ds.require(var_name).map_err(|e| e.to_string())?;
    let topts = TranslationOptions::default();

    let spec = match plot_type {
        "slicer" | "volume" | "isosurface" => {
            let slab = if var.axis_index(cdms::axis::AxisKind::Time).is_some() {
                var.time_slab(t).map_err(|e| e.to_string())?
            } else {
                var.clone()
            };
            let img = translate_scalar(&slab, &topts).map_err(|e| e.to_string())?;
            match plot_type {
                "slicer" => PlotSpec::slicer(img),
                "volume" => PlotSpec::volume(img),
                _ => PlotSpec::isosurface(img),
            }
        }
        "hovmoller_slicer" | "hovmoller_volume" => {
            let vol = cdat::hovmoller::hovmoller_volume(var).map_err(|e| e.to_string())?;
            let img = translate_scalar(&vol, &topts).map_err(|e| e.to_string())?;
            if plot_type == "hovmoller_slicer" {
                PlotSpec::hovmoller_slicer(img)
            } else {
                PlotSpec::hovmoller_volume(img)
            }
        }
        other => return Err(format!("unknown plot type '{other}'")),
    };

    let mut cell = Dv3dCell::try_new(&format!("{var_name} / {}", ds.id), spec)
        .map_err(|e| e.to_string())?;
    if let Some(lf) = ds.variable("sftlf") {
        cell.set_base_map(lf).ok();
    }
    if let Some(cmap) = opts.get("colormap") {
        cell.configure(&ConfigOp::SetColormap(cmap.to_string()))
            .map_err(|e| e.to_string())?;
    }
    let fb = cell.render(width, height).map_err(|e| e.to_string())?;
    fb.save_ppm(out).map_err(|e| e.to_string())?;
    println!(
        "{plot_type} of {var_name} -> {out} ({} px covered)",
        fb.covered_pixels(uvcdat::rvtk::Color::BLACK)
    );
    Ok(())
}

fn cmd_wall(opts: &HashMap<&str, &str>) -> Result<(), String> {
    let cells = opt_usize(opts, "cells", 15)?;
    let frames = opt_usize(opts, "frames", 2)? as u64;
    let cfg = hyperwall::workflow::WallWorkflowConfig {
        n_cells: cells,
        synth: (1, 3, 16, 32),
        cell_px: (96, 72),
    };
    let report = hyperwall::cluster::run_wall(&cfg, 4, frames, &[])
        .map_err(|e| e.to_string())?;
    println!(
        "{} clients, {} frames: assign {:.1} ms, mean client render {:.1} ms, mean mirror {:.1} ms",
        report.n_clients,
        frames,
        report.assign_ms,
        report.mean_client_render_ms(),
        report.mean_mirror_ms()
    );
    Ok(())
}
