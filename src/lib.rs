#![forbid(unsafe_code)]

//! # uvcdat — the end-to-end application crate
//!
//! Re-exports the full stack of this DV3D/UV-CDAT reproduction so examples
//! and downstream users can depend on one crate:
//!
//! * [`cdms`] — climate data management (arrays, axes, grids, files,
//!   catalog, synthetic data).
//! * [`cdat`] — analysis operations and parallel task graphs.
//! * [`rvtk`] — the VTK-like filters + software rendering substrate.
//! * [`vistrails`] — workflows, provenance version trees, spreadsheets.
//! * [`dv3d`] — the DV3D plot package (the paper's contribution).
//! * [`hyperwall`] — the distributed visualization framework.
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `EXPERIMENTS.md` for the figure-by-figure reproduction record.

pub use cdat;
pub use cdms;
pub use dv3d;
pub use hyperwall;
pub use rvtk;
pub use vistrails;

/// Builds the standard module registry with every package registered —
/// the state of a freshly launched UV-CDAT session.
pub fn standard_registry() -> vistrails::module::ModuleRegistry {
    let mut reg = vistrails::module::ModuleRegistry::new();
    dv3d::modules::register_all(&mut reg);
    reg
}

#[cfg(test)]
mod tests {
    #[test]
    fn standard_registry_has_all_packages() {
        let reg = super::standard_registry();
        assert!(!reg.package_types("cdms").is_empty());
        assert!(!reg.package_types("cdat").is_empty());
        assert!(!reg.package_types("dv3d").is_empty());
    }
}
