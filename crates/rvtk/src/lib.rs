#![forbid(unsafe_code)]

//! # rvtk — a VTK-like visualization substrate in pure Rust
//!
//! DV3D builds on VTK: structured image data flows through filters
//! (isosurface extraction, slicing, contouring, streamline integration) into
//! mappers, actors and renderers. This crate reproduces that pipeline with a
//! software implementation — no GPU required:
//!
//! * [`ImageData`] — structured points (regular 3D grids) with scalars and
//!   optional vectors; trilinear sampling and central-difference gradients.
//! * [`PolyData`] — points + triangles + polylines with per-point scalars
//!   and normals.
//! * [`filters`] — isosurface (marching tetrahedra), axis-aligned and
//!   oblique plane slicing, 2D contour lines (marching squares), RK4
//!   streamlines, arrow glyphs, thresholding and point probing.
//! * [`LookupTable`] / transfer functions — scalar→color maps and the
//!   piecewise color/opacity functions volume rendering uses.
//! * [`render`] — cameras, lights, actors, a z-buffered triangle
//!   rasterizer (rayon-parallel), a front-to-back ray-cast volume renderer,
//!   offscreen framebuffers with PPM export, anaglyph/side-by-side stereo,
//!   and bitmap-font annotations.
//!
//! ## Quickstart
//!
//! ```
//! use rvtk::{ImageData, filters::isosurface};
//! use rvtk::render::{Actor, Renderer, RenderWindow};
//!
//! // A sphere-ish scalar field.
//! let img = ImageData::from_fn([24, 24, 24], [1.0; 3], [0.0; 3], |x, y, z| {
//!     let (dx, dy, dz) = (x - 12.0, y - 12.0, z - 12.0);
//!     ((dx * dx + dy * dy + dz * dz) as f32).sqrt()
//! });
//! let surf = isosurface(&img, 8.0).unwrap();
//! assert!(!surf.triangles.is_empty());
//!
//! // Render it offscreen.
//! let mut window = RenderWindow::new(160, 120);
//! let mut renderer = Renderer::new();
//! renderer.add_actor(Actor::from_poly_data(surf));
//! renderer.reset_camera();
//! renderer.render(window.framebuffer_mut());
//! ```

pub mod color;
pub mod filters;
pub mod image_data;
pub mod lookup_table;
pub mod math;
pub mod poly_data;
pub mod render;

pub use color::Color;
pub use image_data::ImageData;
pub use lookup_table::{ColorTransferFunction, LookupTable, OpacityTransferFunction};
pub use math::{Mat4, Vec3};
pub use poly_data::PolyData;

/// Errors raised by visualization operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VtkError {
    /// Input data is missing a required attribute (scalars, vectors…).
    MissingData(String),
    /// Sizes or dimensions are inconsistent.
    Invalid(String),
}

impl std::fmt::Display for VtkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VtkError::MissingData(m) => write!(f, "missing data: {m}"),
            VtkError::Invalid(m) => write!(f, "invalid: {m}"),
        }
    }
}

impl std::error::Error for VtkError {
    /// Both variants are leaves with string payloads; no deeper cause.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        None
    }
}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, VtkError>;
