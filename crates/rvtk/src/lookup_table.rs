//! Scalar→color lookup tables and transfer functions.
//!
//! [`LookupTable`] maps a scalar range onto a named colormap — the
//! "colormap" every DV3D plot exposes. [`ColorTransferFunction`] and
//! [`OpacityTransferFunction`] are the piecewise-linear functions volume
//! rendering uses; DV3D's interactive "leveling" operation reshapes the
//! opacity function with mouse drags.

use crate::color::Color;

/// Named colormaps (matched to the maps UV-CDAT ships).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ColormapName {
    /// Blue→cyan→green→yellow→red.
    #[default]
    Jet,
    /// Perceptually uniform dark-blue→green→yellow (viridis approximation).
    Viridis,
    /// Diverging blue→white→red.
    CoolWarm,
    /// Black→white.
    Grayscale,
    /// Full-hue rainbow.
    Rainbow,
    /// Yellow→orange→red (sequential heat).
    Hot,
}

impl ColormapName {
    /// Parses a case-insensitive colormap name.
    pub fn parse(s: &str) -> Option<ColormapName> {
        Some(match s.to_ascii_lowercase().as_str() {
            "jet" => ColormapName::Jet,
            "viridis" => ColormapName::Viridis,
            "coolwarm" | "cool_warm" => ColormapName::CoolWarm,
            "grayscale" | "greyscale" | "gray" | "grey" => ColormapName::Grayscale,
            "rainbow" => ColormapName::Rainbow,
            "hot" => ColormapName::Hot,
            _ => return None,
        })
    }

    /// Control points `(t, color)` of the map, t in `[0, 1]` ascending.
    fn control_points(&self) -> Vec<(f32, Color)> {
        match self {
            ColormapName::Jet => vec![
                (0.0, Color::rgb(0.0, 0.0, 0.5)),
                (0.125, Color::rgb(0.0, 0.0, 1.0)),
                (0.375, Color::rgb(0.0, 1.0, 1.0)),
                (0.625, Color::rgb(1.0, 1.0, 0.0)),
                (0.875, Color::rgb(1.0, 0.0, 0.0)),
                (1.0, Color::rgb(0.5, 0.0, 0.0)),
            ],
            ColormapName::Viridis => vec![
                (0.0, Color::rgb(0.267, 0.005, 0.329)),
                (0.25, Color::rgb(0.229, 0.322, 0.546)),
                (0.5, Color::rgb(0.128, 0.567, 0.551)),
                (0.75, Color::rgb(0.369, 0.789, 0.383)),
                (1.0, Color::rgb(0.993, 0.906, 0.144)),
            ],
            ColormapName::CoolWarm => vec![
                (0.0, Color::rgb(0.23, 0.30, 0.75)),
                (0.5, Color::rgb(0.87, 0.87, 0.87)),
                (1.0, Color::rgb(0.71, 0.02, 0.15)),
            ],
            ColormapName::Grayscale => {
                vec![(0.0, Color::BLACK), (1.0, Color::WHITE)]
            }
            ColormapName::Rainbow => vec![
                (0.0, Color::rgb(1.0, 0.0, 1.0)),
                (0.2, Color::rgb(0.0, 0.0, 1.0)),
                (0.4, Color::rgb(0.0, 1.0, 1.0)),
                (0.6, Color::rgb(0.0, 1.0, 0.0)),
                (0.8, Color::rgb(1.0, 1.0, 0.0)),
                (1.0, Color::rgb(1.0, 0.0, 0.0)),
            ],
            ColormapName::Hot => vec![
                (0.0, Color::BLACK),
                (0.4, Color::rgb(1.0, 0.0, 0.0)),
                (0.8, Color::rgb(1.0, 1.0, 0.0)),
                (1.0, Color::WHITE),
            ],
        }
    }
}

/// A scalar→color lookup table over a scalar range.
#[derive(Debug, Clone, PartialEq)]
pub struct LookupTable {
    /// Precomputed table entries.
    table: Vec<Color>,
    /// Mapped scalar range `(min, max)`.
    pub range: (f32, f32),
    /// Color for NaN / missing scalars.
    pub nan_color: Color,
    /// Which map this table was built from.
    pub name: ColormapName,
    /// Whether the map is inverted.
    pub inverted: bool,
}

impl LookupTable {
    /// Builds a 256-entry table from a named map over `range`.
    pub fn new(name: ColormapName, range: (f32, f32)) -> LookupTable {
        Self::with_resolution(name, range, 256, false)
    }

    /// Builds a table with explicit resolution and inversion.
    pub fn with_resolution(
        name: ColormapName,
        range: (f32, f32),
        resolution: usize,
        inverted: bool,
    ) -> LookupTable {
        let pts = name.control_points();
        let resolution = resolution.max(2);
        let mut table = Vec::with_capacity(resolution);
        for i in 0..resolution {
            let mut t = i as f32 / (resolution - 1) as f32;
            if inverted {
                t = 1.0 - t;
            }
            table.push(sample_control_points(&pts, t));
        }
        LookupTable {
            table,
            range,
            nan_color: Color::rgba(0.35, 0.35, 0.35, 1.0),
            name,
            inverted,
        }
    }

    /// Maps a scalar to a color; NaN maps to `nan_color`, out-of-range
    /// clamps to the ends.
    pub fn map(&self, v: f32) -> Color {
        if v.is_nan() {
            return self.nan_color;
        }
        let (lo, hi) = self.range;
        let t = if hi > lo { ((v - lo) / (hi - lo)).clamp(0.0, 1.0) } else { 0.5 };
        let idx = (t * (self.table.len() - 1) as f32 + 0.5) as usize;
        self.table[idx.min(self.table.len() - 1)]
    }

    /// Rescales to a new range, keeping the colors.
    pub fn set_range(&mut self, range: (f32, f32)) {
        self.range = range;
    }

    /// Returns the inverted version of this table.
    pub fn invert(&self) -> LookupTable {
        Self::with_resolution(self.name, self.range, self.table.len(), !self.inverted)
    }
}

impl Default for LookupTable {
    fn default() -> LookupTable {
        LookupTable::new(ColormapName::Jet, (0.0, 1.0))
    }
}

fn sample_control_points(pts: &[(f32, Color)], t: f32) -> Color {
    let t = t.clamp(0.0, 1.0);
    let Some(&(first_t, first_c)) = pts.first() else { return Color::BLACK };
    if t <= first_t {
        return first_c;
    }
    for w in pts.windows(2) {
        let (t0, c0) = w[0];
        let (t1, c1) = w[1];
        if t <= t1 {
            let f = if t1 > t0 { (t - t0) / (t1 - t0) } else { 0.0 };
            return c0.lerp(c1, f);
        }
    }
    pts.last().map_or(Color::BLACK, |&(_, c)| c)
}

/// A piecewise-linear scalar→color transfer function (volume rendering).
#[derive(Debug, Clone, PartialEq)]
pub struct ColorTransferFunction {
    /// `(scalar, color)` nodes, scalar ascending.
    nodes: Vec<(f32, Color)>,
}

impl ColorTransferFunction {
    /// From explicit nodes (sorted internally).
    pub fn from_nodes(mut nodes: Vec<(f32, Color)>) -> ColorTransferFunction {
        nodes.sort_by(|a, b| a.0.total_cmp(&b.0));
        ColorTransferFunction { nodes }
    }

    /// From a named colormap stretched over `range`.
    pub fn from_colormap(name: ColormapName, range: (f32, f32)) -> ColorTransferFunction {
        let pts = name.control_points();
        let nodes = pts
            .into_iter()
            .map(|(t, c)| (range.0 + t * (range.1 - range.0), c))
            .collect();
        ColorTransferFunction { nodes }
    }

    /// Evaluates the function at `v` (clamped to the node range).
    pub fn map(&self, v: f32) -> Color {
        if self.nodes.is_empty() {
            return Color::WHITE;
        }
        if v <= self.nodes[0].0 {
            return self.nodes[0].1;
        }
        for w in self.nodes.windows(2) {
            if v <= w[1].0 {
                let (v0, c0) = w[0];
                let (v1, c1) = w[1];
                let f = if v1 > v0 { (v - v0) / (v1 - v0) } else { 0.0 };
                return c0.lerp(c1, f);
            }
        }
        self.nodes.last().map_or(Color::WHITE, |&(_, c)| c)
    }
}

/// A piecewise-linear scalar→opacity transfer function.
///
/// DV3D's signature interaction is *leveling*: the window/level pair
/// `(window, level)` defines a linear ramp from 0 at `level - window/2` to
/// `max_opacity` at `level + window/2`; dragging the mouse adjusts both.
#[derive(Debug, Clone, PartialEq)]
pub struct OpacityTransferFunction {
    /// `(scalar, opacity)` nodes, scalar ascending.
    nodes: Vec<(f32, f32)>,
}

impl OpacityTransferFunction {
    /// From explicit nodes (sorted internally, opacities clamped).
    pub fn from_nodes(mut nodes: Vec<(f32, f32)>) -> OpacityTransferFunction {
        for n in &mut nodes {
            n.1 = n.1.clamp(0.0, 1.0);
        }
        nodes.sort_by(|a, b| a.0.total_cmp(&b.0));
        OpacityTransferFunction { nodes }
    }

    /// The DV3D leveling ramp: opacity 0 below `level - window/2`, rising
    /// linearly to `max_opacity` at `level + window/2`.
    pub fn leveling(level: f32, window: f32, max_opacity: f32) -> OpacityTransferFunction {
        let half = (window.abs() / 2.0).max(1e-6);
        OpacityTransferFunction::from_nodes(vec![
            (level - half, 0.0),
            (level + half, max_opacity.clamp(0.0, 1.0)),
        ])
    }

    /// Evaluates the opacity at `v` (clamped to the node range).
    pub fn map(&self, v: f32) -> f32 {
        if self.nodes.is_empty() {
            return 1.0;
        }
        if v <= self.nodes[0].0 {
            return self.nodes[0].1;
        }
        for w in self.nodes.windows(2) {
            if v <= w[1].0 {
                let (v0, a0) = w[0];
                let (v1, a1) = w[1];
                let f = if v1 > v0 { (v - v0) / (v1 - v0) } else { 0.0 };
                return a0 + (a1 - a0) * f;
            }
        }
        self.nodes.last().map_or(1.0, |&(_, a)| a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colormap_name_parsing() {
        assert_eq!(ColormapName::parse("JET"), Some(ColormapName::Jet));
        assert_eq!(ColormapName::parse("grey"), Some(ColormapName::Grayscale));
        assert_eq!(ColormapName::parse("plasma"), None);
    }

    #[test]
    fn jet_endpoints() {
        let lut = LookupTable::new(ColormapName::Jet, (0.0, 1.0));
        let lo = lut.map(0.0);
        let hi = lut.map(1.0);
        assert!(lo.b > 0.4 && lo.r < 0.01, "low end should be dark blue: {lo:?}");
        assert!(hi.r > 0.4 && hi.b < 0.01, "high end should be dark red: {hi:?}");
    }

    #[test]
    fn out_of_range_clamps_and_nan_maps_to_nan_color() {
        let lut = LookupTable::new(ColormapName::Grayscale, (0.0, 10.0));
        assert_eq!(lut.map(-5.0), Color::BLACK);
        assert_eq!(lut.map(50.0), Color::WHITE);
        assert_eq!(lut.map(f32::NAN), lut.nan_color);
    }

    #[test]
    fn degenerate_range_maps_to_middle() {
        let lut = LookupTable::new(ColormapName::Grayscale, (5.0, 5.0));
        let c = lut.map(5.0);
        assert!((c.r - 0.5).abs() < 0.01);
    }

    #[test]
    fn inversion_swaps_ends() {
        let lut = LookupTable::new(ColormapName::Grayscale, (0.0, 1.0));
        let inv = lut.invert();
        assert_eq!(inv.map(0.0), Color::WHITE);
        assert_eq!(inv.map(1.0), Color::BLACK);
        // double inversion restores
        assert_eq!(inv.invert().map(0.0), Color::BLACK);
    }

    #[test]
    fn grayscale_is_monotone_in_luminance() {
        let lut = LookupTable::new(ColormapName::Grayscale, (0.0, 1.0));
        let mut prev = -1.0f32;
        for i in 0..=20 {
            let v = i as f32 / 20.0;
            let lum = lut.map(v).luminance();
            assert!(lum >= prev - 1e-6);
            prev = lum;
        }
    }

    #[test]
    fn viridis_is_roughly_monotone_in_luminance() {
        let lut = LookupTable::new(ColormapName::Viridis, (0.0, 1.0));
        let lo = lut.map(0.0).luminance();
        let mid = lut.map(0.5).luminance();
        let hi = lut.map(1.0).luminance();
        assert!(lo < mid && mid < hi);
    }

    #[test]
    fn ctf_interpolates_between_nodes() {
        let ctf = ColorTransferFunction::from_nodes(vec![
            (0.0, Color::BLACK),
            (10.0, Color::WHITE),
        ]);
        let mid = ctf.map(5.0);
        assert!((mid.r - 0.5).abs() < 1e-6);
        assert_eq!(ctf.map(-1.0), Color::BLACK);
        assert_eq!(ctf.map(11.0), Color::WHITE);
    }

    #[test]
    fn ctf_from_colormap_spans_range() {
        let ctf = ColorTransferFunction::from_colormap(ColormapName::Grayscale, (100.0, 200.0));
        assert_eq!(ctf.map(100.0), Color::BLACK);
        assert_eq!(ctf.map(200.0), Color::WHITE);
        assert!((ctf.map(150.0).r - 0.5).abs() < 1e-6);
    }

    #[test]
    fn otf_leveling_ramp() {
        let otf = OpacityTransferFunction::leveling(10.0, 4.0, 0.8);
        assert_eq!(otf.map(0.0), 0.0);
        assert_eq!(otf.map(8.0), 0.0);
        assert!((otf.map(10.0) - 0.4).abs() < 1e-6);
        assert!((otf.map(12.0) - 0.8).abs() < 1e-6);
        assert!((otf.map(100.0) - 0.8).abs() < 1e-6);
    }

    #[test]
    fn otf_nodes_sorted_and_clamped() {
        let otf = OpacityTransferFunction::from_nodes(vec![(5.0, 2.0), (0.0, -1.0)]);
        assert_eq!(otf.map(0.0), 0.0);
        assert_eq!(otf.map(5.0), 1.0);
        // empty function is fully opaque
        let empty = OpacityTransferFunction::from_nodes(vec![]);
        assert_eq!(empty.map(3.0), 1.0);
    }
}
