//! Marching-squares contour lines over an axis-aligned slice.
//!
//! DV3D's Slicer can overlay a *second* variable as a contour map on a
//! pseudocolor plane; this filter produces those contour polylines.

use crate::filters::slice::SliceAxis;
use crate::image_data::ImageData;
use crate::math::Vec3;
use crate::poly_data::PolyData;
use crate::{Result, VtkError};

/// Extracts contour line segments of `img` at each of `levels`, on the
/// axis-aligned plane `axis = slice_index`. Output contains line cells
/// (2-point polylines) with the contour level as the per-point scalar.
/// Cells containing NaN corners are skipped.
pub fn contour_lines(
    img: &ImageData,
    axis: SliceAxis,
    slice_index: usize,
    levels: &[f32],
) -> Result<PolyData> {
    let ai = axis.index();
    if slice_index >= img.dims[ai] {
        return Err(VtkError::Invalid(format!(
            "slice index {slice_index} out of range (len {})",
            img.dims[ai]
        )));
    }
    let (u_ax, v_ax) = match axis {
        SliceAxis::X => (1, 2),
        SliceAxis::Y => (0, 2),
        SliceAxis::Z => (0, 1),
    };
    let (nu, nv) = (img.dims[u_ax], img.dims[v_ax]);
    let mut out = PolyData::new();
    let mut scalars: Vec<f32> = Vec::new();

    let point_at = |u: usize, v: usize| -> ([usize; 3], Vec3) {
        let mut ijk = [0usize; 3];
        ijk[ai] = slice_index;
        ijk[u_ax] = u;
        ijk[v_ax] = v;
        (ijk, Vec3::ZERO)
    };
    let world = |ijk: [usize; 3]| img.point(ijk[0], ijk[1], ijk[2]);

    for &level in levels {
        for v in 0..nv.saturating_sub(1) {
            for u in 0..nu.saturating_sub(1) {
                // cell corners: 0=(u,v) 1=(u+1,v) 2=(u+1,v+1) 3=(u,v+1)
                let corners = [
                    point_at(u, v).0,
                    point_at(u + 1, v).0,
                    point_at(u + 1, v + 1).0,
                    point_at(u, v + 1).0,
                ];
                let vals = corners.map(|c| img.scalar(c[0], c[1], c[2]));
                if vals.iter().any(|x| x.is_nan()) {
                    continue;
                }
                let mut case = 0u8;
                for (c, &x) in vals.iter().enumerate() {
                    if x >= level {
                        case |= 1 << c;
                    }
                }
                if case == 0 || case == 0b1111 {
                    continue;
                }
                // edge crossings: edges are (0,1) (1,2) (2,3) (3,0)
                let edges = [(0usize, 1usize), (1, 2), (2, 3), (3, 0)];
                let mut crossings: Vec<Vec3> = Vec::with_capacity(4);
                for &(a, b) in &edges {
                    let (va, vb) = (vals[a], vals[b]);
                    if (va >= level) != (vb >= level) {
                        let t = ((level - va) / (vb - va)).clamp(0.0, 1.0) as f64;
                        crossings.push(world(corners[a]).lerp(world(corners[b]), t));
                    }
                }
                // 2 crossings → one segment; 4 (saddle) → two segments paired
                // by the midpoint-value disambiguation.
                match crossings.len() {
                    2 => {
                        push_segment(&mut out, &mut scalars, crossings[0], crossings[1], level);
                    }
                    4 => {
                        let centre = vals.iter().sum::<f32>() / 4.0;
                        // crossing order follows edges 01,12,23,30
                        if (centre >= level) == (vals[0] >= level) {
                            push_segment(&mut out, &mut scalars, crossings[0], crossings[3], level);
                            push_segment(&mut out, &mut scalars, crossings[1], crossings[2], level);
                        } else {
                            push_segment(&mut out, &mut scalars, crossings[0], crossings[1], level);
                            push_segment(&mut out, &mut scalars, crossings[2], crossings[3], level);
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    out.scalars = Some(scalars);
    Ok(out)
}

fn push_segment(out: &mut PolyData, scalars: &mut Vec<f32>, a: Vec3, b: Vec3, level: f32) {
    let ia = out.add_point(a);
    let ib = out.add_point(b);
    scalars.push(level);
    scalars.push(level);
    out.lines.push(vec![ia, ib]);
}

/// Evenly spaced contour levels across a scalar range (n interior levels).
pub fn auto_levels(range: (f32, f32), n: usize) -> Vec<f32> {
    if n == 0 || range.1 <= range.0 {
        return Vec::new();
    }
    (1..=n)
        .map(|i| range.0 + (range.1 - range.0) * i as f32 / (n + 1) as f32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circle_contour_has_right_radius() {
        // radial field on a z-slice
        let img = ImageData::from_fn([32, 32, 1], [1.0; 3], [0.0; 3], |x, y, _| {
            (((x - 15.5).powi(2) + (y - 15.5).powi(2)) as f32).sqrt()
        });
        let c = contour_lines(&img, SliceAxis::Z, 0, &[8.0]).unwrap();
        assert!(!c.lines.is_empty());
        for &p in &c.points {
            let r = ((p.x - 15.5).powi(2) + (p.y - 15.5).powi(2)).sqrt();
            assert!((r - 8.0).abs() < 0.25, "point at radius {r}");
        }
        // total length ≈ circumference 2π·8
        let total: f64 = c
            .lines
            .iter()
            .map(|l| (c.points[l[1] as usize] - c.points[l[0] as usize]).length())
            .sum();
        let circ = 2.0 * std::f64::consts::PI * 8.0;
        assert!((total - circ).abs() / circ < 0.05, "length {total} vs {circ}");
    }

    #[test]
    fn linear_field_contours_are_straight() {
        let img = ImageData::from_fn([16, 16, 1], [1.0; 3], [0.0; 3], |x, _, _| x as f32);
        let c = contour_lines(&img, SliceAxis::Z, 0, &[5.5]).unwrap();
        for &p in &c.points {
            assert!((p.x - 5.5).abs() < 1e-5);
        }
        // scalar carries the level
        assert!(c.scalars.as_ref().unwrap().iter().all(|&s| s == 5.5));
    }

    #[test]
    fn multiple_levels_accumulate() {
        let img = ImageData::from_fn([16, 16, 1], [1.0; 3], [0.0; 3], |x, _, _| x as f32);
        let c1 = contour_lines(&img, SliceAxis::Z, 0, &[4.5]).unwrap();
        let c2 = contour_lines(&img, SliceAxis::Z, 0, &[4.5, 9.5]).unwrap();
        assert_eq!(c2.lines.len(), 2 * c1.lines.len());
    }

    #[test]
    fn nan_cells_skipped() {
        let mut img = ImageData::from_fn([8, 8, 1], [1.0; 3], [0.0; 3], |x, _, _| x as f32);
        let idx = img.index(4, 4, 0);
        img.scalars[idx] = f32::NAN;
        let c = contour_lines(&img, SliceAxis::Z, 0, &[3.5]).unwrap();
        // still contours away from the hole
        assert!(!c.lines.is_empty());
        for &p in &c.points {
            assert!(p.x.is_finite());
        }
    }

    #[test]
    fn no_levels_or_flat_field_yield_empty() {
        let img = ImageData::from_fn([8, 8, 1], [1.0; 3], [0.0; 3], |_, _, _| 1.0);
        assert!(contour_lines(&img, SliceAxis::Z, 0, &[]).unwrap().lines.is_empty());
        assert!(contour_lines(&img, SliceAxis::Z, 0, &[5.0]).unwrap().lines.is_empty());
    }

    #[test]
    fn saddle_case_produces_two_segments() {
        // checkerboard 2×2 cell: corners 10, 0 / 0, 10 — saddle at level 5
        let img = ImageData::new(
            [2, 2, 1],
            [1.0; 3],
            [0.0; 3],
            vec![10.0, 0.0, 0.0, 10.0],
        )
        .unwrap();
        let c = contour_lines(&img, SliceAxis::Z, 0, &[5.0]).unwrap();
        assert_eq!(c.lines.len(), 2);
    }

    #[test]
    fn auto_levels_interior() {
        let l = auto_levels((0.0, 10.0), 4);
        assert_eq!(l, vec![2.0, 4.0, 6.0, 8.0]);
        assert!(auto_levels((5.0, 5.0), 4).is_empty());
        assert!(auto_levels((0.0, 1.0), 0).is_empty());
    }

    #[test]
    fn bad_slice_index_rejected() {
        let img = ImageData::from_fn([4, 4, 2], [1.0; 3], [0.0; 3], |_, _, _| 0.0);
        assert!(contour_lines(&img, SliceAxis::Z, 2, &[0.5]).is_err());
    }

    #[test]
    fn works_on_x_and_y_slices() {
        let img = ImageData::from_fn([6, 6, 6], [1.0; 3], [0.0; 3], |_, y, z| (y + z) as f32);
        let cx = contour_lines(&img, SliceAxis::X, 2, &[4.5]).unwrap();
        assert!(!cx.lines.is_empty());
        for &p in &cx.points {
            assert_eq!(p.x, 2.0);
            assert!((p.y + p.z - 4.5).abs() < 1e-5);
        }
        let img2 = ImageData::from_fn([6, 6, 6], [1.0; 3], [0.0; 3], |x, _, z| (x + z) as f32);
        let cy = contour_lines(&img2, SliceAxis::Y, 3, &[4.5]).unwrap();
        assert!(!cy.lines.is_empty());
        for &p in &cy.points {
            assert_eq!(p.y, 3.0);
        }
    }
}
