//! Point probing: the value-readout behind the DV3D cell "pick" display.

use crate::image_data::ImageData;
use crate::math::Vec3;

/// The result of probing a world-space location.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeResult {
    /// Where the probe landed (input point).
    pub position: Vec3,
    /// Trilinearly interpolated scalar, `None` outside the volume or in a
    /// missing-data cell.
    pub scalar: Option<f32>,
    /// Interpolated vector when the volume carries vectors.
    pub vector: Option<[f32; 3]>,
    /// Nearest grid indices `(i, j, k)`.
    pub nearest_index: [usize; 3],
    /// Scalar at the nearest grid point (NaN-aware).
    pub nearest_scalar: Option<f32>,
}

/// Probes `img` at a world point.
pub fn probe(img: &ImageData, p: Vec3) -> ProbeResult {
    let c = img.world_to_continuous(p);
    let clamp_idx = |x: f64, n: usize| -> usize {
        (x.round().max(0.0) as usize).min(n.saturating_sub(1))
    };
    let nearest = [
        clamp_idx(c.x, img.dims[0]),
        clamp_idx(c.y, img.dims[1]),
        clamp_idx(c.z, img.dims[2]),
    ];
    let nv = img.scalar(nearest[0], nearest[1], nearest[2]);
    ProbeResult {
        position: p,
        scalar: img.sample_continuous(c),
        vector: img.sample_vector_continuous(c),
        nearest_index: nearest,
        nearest_scalar: (!nv.is_nan()).then_some(nv),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> ImageData {
        ImageData::from_fn([4, 4, 4], [1.0; 3], [0.0; 3], |x, y, z| {
            (x + 10.0 * y + 100.0 * z) as f32
        })
    }

    #[test]
    fn interior_probe_interpolates() {
        let r = probe(&ramp(), Vec3::new(1.5, 2.0, 0.5));
        assert!((r.scalar.unwrap() - (1.5 + 20.0 + 50.0)).abs() < 1e-4);
        assert_eq!(r.nearest_index, [2, 2, 1]); // 1.5 rounds to 2
        assert_eq!(r.nearest_scalar, Some(122.0));
    }

    #[test]
    fn outside_probe_returns_none_but_nearest_clamps() {
        let r = probe(&ramp(), Vec3::new(-5.0, 0.0, 0.0));
        assert_eq!(r.scalar, None);
        assert_eq!(r.nearest_index, [0, 0, 0]);
        assert_eq!(r.nearest_scalar, Some(0.0));
        let r = probe(&ramp(), Vec3::new(100.0, 100.0, 100.0));
        assert_eq!(r.nearest_index, [3, 3, 3]);
    }

    #[test]
    fn nan_cell_probes_as_missing() {
        let mut img = ramp();
        let idx = img.index(0, 0, 0);
        img.scalars[idx] = f32::NAN;
        let r = probe(&img, Vec3::new(0.25, 0.25, 0.25));
        assert_eq!(r.scalar, None);
        let r = probe(&img, Vec3::new(0.0, 0.0, 0.0));
        assert_eq!(r.nearest_scalar, None);
    }

    #[test]
    fn vector_probe_when_present() {
        let img = ramp().with_vectors(vec![[1.0, 2.0, 3.0]; 64]).unwrap();
        let r = probe(&img, Vec3::new(1.0, 1.0, 1.0));
        assert_eq!(r.vector, Some([1.0, 2.0, 3.0]));
        let r = probe(&ramp(), Vec3::new(1.0, 1.0, 1.0));
        assert_eq!(r.vector, None);
    }
}
