//! Geometry and data filters — the middle of the VTK-style pipeline.
//!
//! Each filter is a function from data to data:
//!
//! * [`isosurface`] / [`isosurface_colored`] — marching-tetrahedra surface
//!   extraction (DV3D's Isosurface plot).
//! * [`slice_axis`] / [`slice_plane`] — pseudocolor slice planes (Slicer).
//! * [`contour_lines`] — marching-squares contour overlays.
//! * [`streamlines`] / [`glyphs_on_slice`] — vector-field visualization
//!   (Vector slicer).
//! * [`threshold`] — keep points whose scalar passes a predicate.
//! * [`probe`] — point probing (the spreadsheet cell "pick" operation).

mod contour2d;
mod glyph;
mod isosurface;
mod outline;
mod probe;
mod slice;
mod streamline;
mod threshold;

pub use contour2d::{auto_levels, contour_lines};
pub use glyph::{glyphs_on_slice, GlyphOptions};
pub use isosurface::{isosurface, isosurface_colored};
pub use outline::outline;
pub use probe::{probe, ProbeResult};
pub use slice::{slice_axis, slice_plane, SliceAxis};
pub use streamline::{streamlines, StreamlineOptions};
pub use threshold::threshold;
