//! Threshold filter: keep grid points whose scalar passes a predicate,
//! emitting them as a point cloud (point sprites when rendered).

use crate::image_data::ImageData;
use crate::poly_data::PolyData;
use crate::Result;

/// Extracts all grid points with `lo <= scalar <= hi` as a point cloud with
/// their scalars attached. NaNs never pass.
pub fn threshold(img: &ImageData, lo: f32, hi: f32) -> Result<PolyData> {
    let mut out = PolyData::new();
    let mut scalars = Vec::new();
    let [nx, ny, nz] = img.dims;
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                let v = img.scalar(i, j, k);
                if v.is_nan() || v < lo || v > hi {
                    continue;
                }
                out.add_point(img.point(i, j, k));
                scalars.push(v);
            }
        }
    }
    out.scalars = Some(scalars);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> ImageData {
        ImageData::from_fn([4, 4, 4], [1.0; 3], [0.0; 3], |x, y, z| (x + y + z) as f32)
    }

    #[test]
    fn band_selection() {
        let img = ramp();
        let t = threshold(&img, 2.0, 3.0).unwrap();
        let s = t.scalars.as_ref().unwrap();
        assert!(!s.is_empty());
        assert!(s.iter().all(|&v| (2.0..=3.0).contains(&v)));
        // count matches combinatorics: #{(x,y,z) in 0..4³ : 2 ≤ x+y+z ≤ 3}
        let expect = (0..4)
            .flat_map(|x| (0..4).flat_map(move |y| (0..4).map(move |z| x + y + z)))
            .filter(|&s| (2..=3).contains(&s))
            .count();
        assert_eq!(t.points.len(), expect);
    }

    #[test]
    fn empty_band_gives_empty_cloud() {
        let img = ramp();
        let t = threshold(&img, 100.0, 200.0).unwrap();
        assert!(t.points.is_empty());
    }

    #[test]
    fn nan_never_passes() {
        let mut img = ramp();
        for v in img.scalars.iter_mut() {
            *v = f32::NAN;
        }
        let t = threshold(&img, f32::NEG_INFINITY, f32::INFINITY).unwrap();
        assert!(t.points.is_empty());
    }

    #[test]
    fn full_band_keeps_everything() {
        let img = ramp();
        let t = threshold(&img, 0.0, 9.0).unwrap();
        assert_eq!(t.points.len(), 64);
    }
}
