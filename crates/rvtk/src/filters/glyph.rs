//! Vector glyphs: arrows drawn on a slice plane, the other rendering mode
//! of DV3D's Vector slicer.

use crate::filters::slice::SliceAxis;
use crate::image_data::ImageData;
use crate::math::Vec3;
use crate::poly_data::PolyData;
use crate::{Result, VtkError};

/// Glyph generation options.
#[derive(Debug, Clone)]
pub struct GlyphOptions {
    /// Sample every `stride`-th grid point in each in-plane direction.
    pub stride: usize,
    /// World length of a glyph for a unit-speed vector.
    pub scale: f64,
    /// Skip vectors slower than this.
    pub min_speed: f64,
    /// Cap the drawn length at this many world units (0 = uncapped).
    pub max_length: f64,
}

impl Default for GlyphOptions {
    fn default() -> GlyphOptions {
        GlyphOptions { stride: 2, scale: 1.0, min_speed: 1e-6, max_length: 0.0 }
    }
}

/// Emits arrow glyphs (a shaft line plus two head lines) for the in-plane
/// projection of the vector field on the plane `axis = slice_index`.
/// Point scalars carry the full 3D speed for color mapping.
pub fn glyphs_on_slice(
    img: &ImageData,
    axis: SliceAxis,
    slice_index: usize,
    opts: &GlyphOptions,
) -> Result<PolyData> {
    let vectors = img
        .vectors
        .as_ref()
        .ok_or_else(|| VtkError::MissingData("vector field".into()))?;
    let ai = axis.index();
    if slice_index >= img.dims[ai] {
        return Err(VtkError::Invalid(format!(
            "slice index {slice_index} out of range (len {})",
            img.dims[ai]
        )));
    }
    if opts.stride == 0 {
        return Err(VtkError::Invalid("stride must be ≥ 1".into()));
    }
    let (u_ax, v_ax) = match axis {
        SliceAxis::X => (1, 2),
        SliceAxis::Y => (0, 2),
        SliceAxis::Z => (0, 1),
    };
    let (nu, nv) = (img.dims[u_ax], img.dims[v_ax]);
    let mut out = PolyData::new();
    let mut scalars: Vec<f32> = Vec::new();

    for v in (0..nv).step_by(opts.stride) {
        for u in (0..nu).step_by(opts.stride) {
            let mut ijk = [0usize; 3];
            ijk[ai] = slice_index;
            ijk[u_ax] = u;
            ijk[v_ax] = v;
            let vec = vectors[img.index(ijk[0], ijk[1], ijk[2])];
            let speed3 =
                ((vec[0] as f64).powi(2) + (vec[1] as f64).powi(2) + (vec[2] as f64).powi(2))
                    .sqrt();
            if speed3 < opts.min_speed || !speed3.is_finite() {
                continue;
            }
            // project onto the plane
            let mut dir = Vec3::new(vec[0] as f64, vec[1] as f64, vec[2] as f64);
            match axis {
                SliceAxis::X => dir.x = 0.0,
                SliceAxis::Y => dir.y = 0.0,
                SliceAxis::Z => dir.z = 0.0,
            }
            let in_plane = dir.length();
            if in_plane < opts.min_speed {
                continue;
            }
            let mut len = in_plane * opts.scale;
            if opts.max_length > 0.0 {
                len = len.min(opts.max_length);
            }
            let base = img.point(ijk[0], ijk[1], ijk[2]);
            let unit = dir / in_plane;
            let tip = base + unit * len;
            // head: two barbs at ±150° from the direction, 25% of length
            let plane_normal = match axis {
                SliceAxis::X => Vec3::new(1.0, 0.0, 0.0),
                SliceAxis::Y => Vec3::new(0.0, 1.0, 0.0),
                SliceAxis::Z => Vec3::new(0.0, 0.0, 1.0),
            };
            let side = unit.cross(plane_normal).normalized();
            let barb = len * 0.25;
            let left = tip - unit * barb + side * (barb * 0.6);
            let right = tip - unit * barb - side * (barb * 0.6);

            let speed = speed3 as f32;
            let b = out.add_point(base);
            let t = out.add_point(tip);
            let l = out.add_point(left);
            let r = out.add_point(right);
            scalars.extend_from_slice(&[speed; 4]);
            out.lines.push(vec![b, t]);
            out.lines.push(vec![t, l]);
            out.lines.push(vec![t, r]);
        }
    }
    out.scalars = Some(scalars);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(n: usize, f: impl Fn(usize, usize, usize) -> [f32; 3]) -> ImageData {
        let mut vectors = Vec::with_capacity(n * n * n);
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    vectors.push(f(i, j, k));
                }
            }
        }
        ImageData::from_fn([n, n, n], [1.0; 3], [0.0; 3], |_, _, _| 0.0)
            .with_vectors(vectors)
            .unwrap()
    }

    #[test]
    fn requires_vectors_and_valid_args() {
        let img = ImageData::from_fn([4, 4, 4], [1.0; 3], [0.0; 3], |_, _, _| 0.0);
        assert!(glyphs_on_slice(&img, SliceAxis::Z, 0, &GlyphOptions::default()).is_err());
        let img = flow(4, |_, _, _| [1.0, 0.0, 0.0]);
        assert!(glyphs_on_slice(&img, SliceAxis::Z, 9, &GlyphOptions::default()).is_err());
        let bad = GlyphOptions { stride: 0, ..Default::default() };
        assert!(glyphs_on_slice(&img, SliceAxis::Z, 0, &bad).is_err());
    }

    #[test]
    fn uniform_flow_arrows_point_x() {
        let img = flow(8, |_, _, _| [2.0, 0.0, 0.0]);
        let opts = GlyphOptions { stride: 4, scale: 1.0, ..Default::default() };
        let g = glyphs_on_slice(&img, SliceAxis::Z, 0, &opts).unwrap();
        // 2×2 sample points, 3 lines each
        assert_eq!(g.lines.len(), 4 * 3);
        // shaft of the first arrow: from base toward +x with length 2
        let shaft = &g.lines[0];
        let a = g.points[shaft[0] as usize];
        let b = g.points[shaft[1] as usize];
        assert!((b.x - a.x - 2.0).abs() < 1e-9);
        assert!((b.y - a.y).abs() < 1e-12);
        // scalar carries speed
        assert!(g.scalars.as_ref().unwrap().iter().all(|&s| (s - 2.0).abs() < 1e-6));
    }

    #[test]
    fn stride_reduces_count() {
        let img = flow(9, |_, _, _| [1.0, 1.0, 0.0]);
        let g1 = glyphs_on_slice(
            &img,
            SliceAxis::Z,
            0,
            &GlyphOptions { stride: 1, ..Default::default() },
        )
        .unwrap();
        let g3 = glyphs_on_slice(
            &img,
            SliceAxis::Z,
            0,
            &GlyphOptions { stride: 3, ..Default::default() },
        )
        .unwrap();
        assert_eq!(g1.lines.len(), 81 * 3);
        assert_eq!(g3.lines.len(), 9 * 3);
    }

    #[test]
    fn slow_vectors_skipped() {
        let img = flow(6, |i, _, _| if i < 3 { [0.0; 3] } else { [1.0, 0.0, 0.0] });
        let g = glyphs_on_slice(
            &img,
            SliceAxis::Z,
            0,
            &GlyphOptions { stride: 1, ..Default::default() },
        )
        .unwrap();
        assert_eq!(g.lines.len(), 3 * 6 * 3); // only i ≥ 3 columns emit
    }

    #[test]
    fn out_of_plane_component_projected_away() {
        // purely vertical flow on a z-slice leaves nothing in plane
        let img = flow(6, |_, _, _| [0.0, 0.0, 5.0]);
        let g = glyphs_on_slice(&img, SliceAxis::Z, 0, &GlyphOptions::default()).unwrap();
        assert!(g.lines.is_empty());
        // on an x-slice the z component survives
        let g = glyphs_on_slice(&img, SliceAxis::X, 0, &GlyphOptions::default()).unwrap();
        assert!(!g.lines.is_empty());
    }

    #[test]
    fn max_length_caps_glyphs() {
        let img = flow(6, |_, _, _| [100.0, 0.0, 0.0]);
        let opts = GlyphOptions { stride: 5, scale: 1.0, max_length: 1.5, ..Default::default() };
        let g = glyphs_on_slice(&img, SliceAxis::Z, 0, &opts).unwrap();
        let shaft = &g.lines[0];
        let a = g.points[shaft[0] as usize];
        let b = g.points[shaft[1] as usize];
        assert!(((b - a).length() - 1.5).abs() < 1e-9);
    }
}
