//! Slice extraction: pseudocolor planes through a volume.
//!
//! [`slice_axis`] pulls an axis-aligned plane out of image data as a
//! triangulated quad mesh with per-point scalars — the geometry the DV3D
//! Slicer drags through a dataset. [`slice_plane`] cuts an arbitrary
//! oblique plane by sampling.

use crate::image_data::ImageData;
use crate::math::Vec3;
use crate::poly_data::PolyData;
use crate::{Result, VtkError};

/// Which axis a slice plane is perpendicular to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceAxis {
    X,
    Y,
    Z,
}

impl SliceAxis {
    /// Axis index into dims/spacing/origin arrays.
    pub fn index(self) -> usize {
        match self {
            SliceAxis::X => 0,
            SliceAxis::Y => 1,
            SliceAxis::Z => 2,
        }
    }
}

/// Extracts the plane `axis = slice_index` as a quad mesh (two triangles per
/// cell) with per-point scalars copied from the volume. NaNs pass through
/// (they render with the lookup table's NaN color).
pub fn slice_axis(img: &ImageData, axis: SliceAxis, slice_index: usize) -> Result<PolyData> {
    let ai = axis.index();
    if slice_index >= img.dims[ai] {
        return Err(VtkError::Invalid(format!(
            "slice index {slice_index} out of range for axis {ai} (len {})",
            img.dims[ai]
        )));
    }
    // The two in-plane axes, in an order that keeps +normal consistent.
    let (u_ax, v_ax) = match axis {
        SliceAxis::X => (1, 2),
        SliceAxis::Y => (0, 2),
        SliceAxis::Z => (0, 1),
    };
    let (nu, nv) = (img.dims[u_ax], img.dims[v_ax]);
    let mut out = PolyData::new();
    let mut scalars = Vec::with_capacity(nu * nv);
    for v in 0..nv {
        for u in 0..nu {
            let mut ijk = [0usize; 3];
            ijk[ai] = slice_index;
            ijk[u_ax] = u;
            ijk[v_ax] = v;
            out.add_point(img.point(ijk[0], ijk[1], ijk[2]));
            scalars.push(img.scalar(ijk[0], ijk[1], ijk[2]));
        }
    }
    for v in 0..nv.saturating_sub(1) {
        for u in 0..nu.saturating_sub(1) {
            let p00 = (v * nu + u) as u32;
            let p10 = p00 + 1;
            let p01 = p00 + nu as u32;
            let p11 = p01 + 1;
            out.triangles.push([p00, p10, p11]);
            out.triangles.push([p00, p11, p01]);
        }
    }
    out.scalars = Some(scalars);
    // flat normals perpendicular to the plane
    let mut n = Vec3::ZERO;
    match axis {
        SliceAxis::X => n.x = 1.0,
        SliceAxis::Y => n.y = 1.0,
        SliceAxis::Z => n.z = 1.0,
    }
    out.normals = Some(vec![n; out.points.len()]);
    Ok(out)
}

/// Cuts an arbitrary plane (point + normal) through the volume by building
/// an in-plane grid of `resolution × resolution` sample points covering the
/// volume bounds, sampling trilinearly. Points outside the volume (or in
/// NaN cells) get NaN scalars.
pub fn slice_plane(
    img: &ImageData,
    plane_point: Vec3,
    plane_normal: Vec3,
    resolution: usize,
) -> Result<PolyData> {
    if resolution < 2 {
        return Err(VtkError::Invalid("plane resolution must be ≥ 2".into()));
    }
    let n = plane_normal.normalized();
    if n.length() < 0.5 {
        return Err(VtkError::Invalid("zero plane normal".into()));
    }
    // Build an orthonormal in-plane basis.
    let helper = if n.x.abs() < 0.9 { Vec3::new(1.0, 0.0, 0.0) } else { Vec3::new(0.0, 1.0, 0.0) };
    let u = n.cross(helper).normalized();
    let v = n.cross(u).normalized();
    let half = img.bounds().diagonal() / 2.0;

    let mut out = PolyData::new();
    let mut scalars = Vec::with_capacity(resolution * resolution);
    for j in 0..resolution {
        for i in 0..resolution {
            let s = -half + 2.0 * half * i as f64 / (resolution - 1) as f64;
            let t = -half + 2.0 * half * j as f64 / (resolution - 1) as f64;
            let p = plane_point + u * s + v * t;
            out.add_point(p);
            scalars.push(img.sample_world(p).unwrap_or(f32::NAN));
        }
    }
    for j in 0..resolution - 1 {
        for i in 0..resolution - 1 {
            let p00 = (j * resolution + i) as u32;
            let p10 = p00 + 1;
            let p01 = p00 + resolution as u32;
            let p11 = p01 + 1;
            // only emit cells with at least one valid sample
            let any_valid = [p00, p10, p01, p11]
                .iter()
                .any(|&k| !scalars[k as usize].is_nan());
            if any_valid {
                out.triangles.push([p00, p10, p11]);
                out.triangles.push([p00, p11, p01]);
            }
        }
    }
    out.scalars = Some(scalars);
    out.normals = Some(vec![n; out.points.len()]);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> ImageData {
        ImageData::from_fn([5, 4, 3], [1.0; 3], [0.0; 3], |x, y, z| {
            (x + 10.0 * y + 100.0 * z) as f32
        })
    }

    #[test]
    fn z_slice_extracts_plane_values() {
        let img = ramp();
        let s = slice_axis(&img, SliceAxis::Z, 2).unwrap();
        assert_eq!(s.points.len(), 5 * 4);
        assert_eq!(s.triangles.len(), 4 * 3 * 2);
        let sc = s.scalars.as_ref().unwrap();
        // first point is (0, 0, 2) → 200
        assert_eq!(sc[0], 200.0);
        // all points have z = 2
        for &p in &s.points {
            assert_eq!(p.z, 2.0);
        }
    }

    #[test]
    fn x_slice_geometry() {
        let img = ramp();
        let s = slice_axis(&img, SliceAxis::X, 3).unwrap();
        assert_eq!(s.points.len(), 4 * 3);
        for &p in &s.points {
            assert_eq!(p.x, 3.0);
        }
        let sc = s.scalars.as_ref().unwrap();
        assert_eq!(sc[0], 3.0); // (3, 0, 0)
    }

    #[test]
    fn y_slice_geometry() {
        let img = ramp();
        let s = slice_axis(&img, SliceAxis::Y, 1).unwrap();
        assert_eq!(s.points.len(), 5 * 3);
        assert_eq!(s.scalars.as_ref().unwrap()[0], 10.0);
    }

    #[test]
    fn out_of_range_slice_rejected() {
        let img = ramp();
        assert!(slice_axis(&img, SliceAxis::Z, 3).is_err());
        assert!(slice_axis(&img, SliceAxis::X, 5).is_err());
    }

    #[test]
    fn slice_area_matches_extent() {
        let img = ramp();
        let s = slice_axis(&img, SliceAxis::Z, 0).unwrap();
        // 4 × 3 world units
        assert!((s.surface_area() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn oblique_plane_samples_field() {
        let img = ImageData::from_fn([10, 10, 10], [1.0; 3], [0.0; 3], |x, _, _| x as f32);
        let s = slice_plane(
            &img,
            Vec3::new(4.5, 4.5, 4.5),
            Vec3::new(0.0, 0.0, 1.0),
            16,
        )
        .unwrap();
        let sc = s.scalars.as_ref().unwrap();
        // where valid, scalar == x coordinate of the sample point
        let mut checked = 0;
        for (i, &v) in sc.iter().enumerate() {
            if !v.is_nan() {
                assert!((v as f64 - s.points[i].x).abs() < 1e-4);
                checked += 1;
            }
        }
        assert!(checked > 16, "expected interior samples, got {checked}");
    }

    #[test]
    fn oblique_plane_validates_inputs() {
        let img = ramp();
        assert!(slice_plane(&img, Vec3::ZERO, Vec3::ZERO, 8).is_err());
        assert!(slice_plane(&img, Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0), 1).is_err());
    }

    #[test]
    fn oblique_plane_diagonal_normal() {
        let img = ImageData::from_fn([8, 8, 8], [1.0; 3], [0.0; 3], |x, y, z| (x + y + z) as f32);
        let n = Vec3::new(1.0, 1.0, 1.0);
        let s = slice_plane(&img, Vec3::new(3.5, 3.5, 3.5), n, 12).unwrap();
        // on the plane through the centre ⊥ (1,1,1), x+y+z is constant = 10.5
        let sc = s.scalars.as_ref().unwrap();
        for &v in sc.iter().filter(|v| !v.is_nan()) {
            assert!((v - 10.5).abs() < 1e-3, "{v}");
        }
    }
}
