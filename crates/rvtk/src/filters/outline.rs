//! Outline filter: the 12-edge wireframe box of a dataset's bounds —
//! the spatial reference frame DV3D cells draw around their volumes.

use crate::math::{Bounds, Vec3};
use crate::poly_data::PolyData;

/// Produces the 12 edges of `bounds` as line cells.
pub fn outline(bounds: &Bounds) -> PolyData {
    let mut pd = PolyData::new();
    if bounds.is_empty() {
        return pd;
    }
    let (lo, hi) = (bounds.min, bounds.max);
    // 8 corners, bit i of the index selects min/max per axis (x=1, y=2, z=4)
    for k in 0..8u32 {
        pd.add_point(Vec3::new(
            if k & 1 == 0 { lo.x } else { hi.x },
            if k & 2 == 0 { lo.y } else { hi.y },
            if k & 4 == 0 { lo.z } else { hi.z },
        ));
    }
    const EDGES: [(u32, u32); 12] = [
        (0, 1), (2, 3), (4, 5), (6, 7), // x-aligned
        (0, 2), (1, 3), (4, 6), (5, 7), // y-aligned
        (0, 4), (1, 5), (2, 6), (3, 7), // z-aligned
    ];
    for (a, b) in EDGES {
        pd.lines.push(vec![a, b]);
    }
    pd
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_edges_eight_corners() {
        let mut b = Bounds::empty();
        b.include(Vec3::new(0.0, 0.0, 0.0));
        b.include(Vec3::new(2.0, 3.0, 4.0));
        let o = outline(&b);
        assert_eq!(o.points.len(), 8);
        assert_eq!(o.lines.len(), 12);
        // every edge is axis-aligned with positive length
        for l in &o.lines {
            let a = o.points[l[0] as usize];
            let c = o.points[l[1] as usize];
            let d = c - a;
            let nonzero =
                [d.x, d.y, d.z].iter().filter(|v| v.abs() > 1e-12).count();
            assert_eq!(nonzero, 1, "edge {a:?} -> {c:?}");
        }
        // total edge length = 4(w + h + d)
        let total: f64 = o
            .lines
            .iter()
            .map(|l| (o.points[l[1] as usize] - o.points[l[0] as usize]).length())
            .sum();
        assert!((total - 4.0 * (2.0 + 3.0 + 4.0)).abs() < 1e-9);
    }

    #[test]
    fn empty_bounds_empty_outline() {
        let o = outline(&Bounds::empty());
        assert!(o.points.is_empty());
        assert!(o.lines.is_empty());
    }
}
