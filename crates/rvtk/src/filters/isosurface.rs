//! Isosurface extraction by marching tetrahedra.
//!
//! Each grid cell is split into six tetrahedra sharing the cell's main
//! diagonal — a decomposition whose face diagonals agree between adjacent
//! cells, so the extracted surface is watertight (verified by property
//! tests). Compared to classic marching cubes this trades slightly more
//! triangles for a table small enough to verify by inspection and no
//! ambiguous cases.

use crate::image_data::ImageData;
use crate::math::Vec3;
use crate::poly_data::PolyData;
use crate::{Result, VtkError};
use rayon::prelude::*;

/// Cube-corner offsets, VTK ordering.
const CORNERS: [[usize; 3]; 8] = [
    [0, 0, 0],
    [1, 0, 0],
    [1, 1, 0],
    [0, 1, 0],
    [0, 0, 1],
    [1, 0, 1],
    [1, 1, 1],
    [0, 1, 1],
];

/// Six tetrahedra around the 0–6 main diagonal. Faces on the cube boundary
/// use the same diagonals as the neighbouring cell's decomposition.
const TETS: [[usize; 4]; 6] = [
    [0, 1, 2, 6],
    [0, 2, 3, 6],
    [0, 3, 7, 6],
    [0, 7, 4, 6],
    [0, 4, 5, 6],
    [0, 5, 1, 6],
];

/// Extracts the isosurface of `img.scalars` at `value`.
///
/// Cells touching NaN scalars are skipped (missing-data holes). Vertex
/// normals are taken from the (negated) scalar-field gradient so the surface
/// shades smoothly.
pub fn isosurface(img: &ImageData, value: f32) -> Result<PolyData> {
    isosurface_impl(img, value, None)
}

/// Like [`isosurface`], but colors the surface by sampling a *second*
/// field at each vertex — DV3D's "isosurface of variable A colored by
/// variable B". The two fields must share grid geometry.
pub fn isosurface_colored(
    img: &ImageData,
    value: f32,
    color_field: &ImageData,
) -> Result<PolyData> {
    if color_field.dims != img.dims {
        return Err(VtkError::Invalid(format!(
            "color field dims {:?} != surface field dims {:?}",
            color_field.dims, img.dims
        )));
    }
    isosurface_impl(img, value, Some(color_field))
}

/// Triangles, points and per-vertex attributes emitted by one k-slab of
/// cells. Triangle indices are slab-local; the stitch pass offsets them.
#[derive(Debug, Default)]
struct SlabMesh {
    points: Vec<Vec3>,
    triangles: Vec<[u32; 3]>,
    scalars: Vec<f32>,
    normals: Vec<Vec3>,
}

fn isosurface_impl(
    img: &ImageData,
    value: f32,
    color_field: Option<&ImageData>,
) -> Result<PolyData> {
    let [nx, ny, nz] = img.dims;
    if nx < 2 || ny < 2 || nz < 2 {
        return Err(VtkError::Invalid("isosurface needs at least 2 points per axis".into()));
    }

    // The cell loop is embarrassingly parallel across k-slabs: each slab
    // emits into its own mesh (disjoint writes), then slabs are stitched in
    // ascending k with offset indices — the concatenation reproduces the
    // serial single-loop emission order exactly, so the output is
    // bit-identical to the serial path regardless of thread schedule (the
    // test below checks this against a serial reference).
    let mut slabs: Vec<SlabMesh> = (0..nz - 1).map(|_| SlabMesh::default()).collect();
    slabs
        .par_iter_mut()
        .enumerate()
        .for_each(|(k, slab)| march_slab(img, value, k, color_field, slab));

    let mut out = PolyData::new();
    let mut scalars: Vec<f32> = Vec::new();
    let mut normals: Vec<Vec3> = Vec::new();
    for slab in slabs {
        let offset = out.points.len() as u32;
        out.points.extend(slab.points);
        out.triangles
            .extend(slab.triangles.into_iter().map(|[a, b, c]| [a + offset, b + offset, c + offset]));
        scalars.extend(slab.scalars);
        normals.extend(slab.normals);
    }
    out.scalars = Some(scalars);
    out.normals = Some(normals);
    out.merge_points(1e-7 * (1.0 + img.bounds().diagonal()));
    Ok(out)
}

/// Runs marching tetrahedra over every cell of one k-slab, in the same
/// j/i order the serial triple loop used.
fn march_slab(
    img: &ImageData,
    value: f32,
    k: usize,
    color_field: Option<&ImageData>,
    slab: &mut SlabMesh,
) {
    let [nx, ny, _] = img.dims;
    let mut corner_val = [0.0f32; 8];
    let mut corner_idx = [[0usize; 3]; 8];
    for j in 0..ny - 1 {
        for i in 0..nx - 1 {
            let mut has_nan = false;
            for (c, off) in CORNERS.iter().enumerate() {
                let (ci, cj, ck) = (i + off[0], j + off[1], k + off[2]);
                let v = img.scalar(ci, cj, ck);
                if v.is_nan() {
                    has_nan = true;
                    break;
                }
                corner_val[c] = v;
                corner_idx[c] = [ci, cj, ck];
            }
            if has_nan {
                continue;
            }
            // quick reject: all corners same side
            let any_below = corner_val.iter().any(|&v| v < value);
            let any_above = corner_val.iter().any(|&v| v >= value);
            if !(any_below && any_above) {
                continue;
            }
            for tet in &TETS {
                march_tet(
                    img,
                    value,
                    tet.map(|c| corner_idx[c]),
                    tet.map(|c| corner_val[c]),
                    color_field,
                    slab,
                );
            }
        }
    }
}

/// Emits 0–2 triangles for one tetrahedron into the slab mesh.
fn march_tet(
    img: &ImageData,
    value: f32,
    idx: [[usize; 3]; 4],
    val: [f32; 4],
    color_field: Option<&ImageData>,
    out: &mut SlabMesh,
) {
    // classify: bit c set when corner c is "inside" (>= value)
    let mut mask = 0u8;
    for (c, &v) in val.iter().enumerate() {
        if v >= value {
            mask |= 1 << c;
        }
    }
    if mask == 0 || mask == 0b1111 {
        return;
    }

    // edge interpolation helper
    let mut edge_vertex = |a: usize, b: usize| -> u32 {
        let (va, vb) = (val[a], val[b]);
        let t = if (vb - va).abs() < 1e-30 { 0.5 } else { ((value - va) / (vb - va)) as f64 };
        let t = t.clamp(0.0, 1.0);
        let pa = img.point(idx[a][0], idx[a][1], idx[a][2]);
        let pb = img.point(idx[b][0], idx[b][1], idx[b][2]);
        let p = pa.lerp(pb, t);
        let ga = img.gradient(idx[a][0], idx[a][1], idx[a][2]);
        let gb = img.gradient(idx[b][0], idx[b][1], idx[b][2]);
        let n = (-(ga.lerp(gb, t))).normalized();
        let s = match color_field {
            Some(cf) => cf
                .sample_continuous(cf.world_to_continuous(p))
                .unwrap_or(f32::NAN),
            None => value,
        };
        out.points.push(p);
        out.scalars.push(s);
        out.normals.push(n);
        (out.points.len() - 1) as u32
    };

    // Inside-corner sets for each case. Orientation: wind triangles so the
    // normal points toward decreasing field (outward for "blob > value").
    let inside: Vec<usize> = (0..4).filter(|&c| mask & (1 << c) != 0).collect();
    match inside.len() {
        1 => {
            let a = inside[0];
            let others: Vec<usize> = (0..4).filter(|&c| c != a).collect();
            let p0 = edge_vertex(a, others[0]);
            let p1 = edge_vertex(a, others[1]);
            let p2 = edge_vertex(a, others[2]);
            out.triangles.push([p0, p1, p2]);
        }
        3 => {
            // three corners inside means exactly one bit is clear
            let Some(a) = (0..4).find(|&c| mask & (1 << c) == 0) else { return };
            let others: Vec<usize> = (0..4).filter(|&c| c != a).collect();
            let p0 = edge_vertex(others[0], a);
            let p1 = edge_vertex(others[1], a);
            let p2 = edge_vertex(others[2], a);
            out.triangles.push([p0, p1, p2]);
        }
        2 => {
            let (a, b) = (inside[0], inside[1]);
            let outs: Vec<usize> = (0..4).filter(|&c| c != a && c != b).collect();
            let (c, d) = (outs[0], outs[1]);
            // quad: a-c, a-d, b-d, b-c
            let p0 = edge_vertex(a, c);
            let p1 = edge_vertex(a, d);
            let p2 = edge_vertex(b, d);
            let p3 = edge_vertex(b, c);
            out.triangles.push([p0, p1, p2]);
            out.triangles.push([p0, p2, p3]);
        }
        // 0 or 4 corners inside: the isosurface does not cross this
        // tetrahedron, so there is nothing to emit
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere_field(n: usize, r_units: f64) -> (ImageData, f64) {
        let c = (n - 1) as f64 / 2.0;
        let img = ImageData::from_fn([n, n, n], [1.0; 3], [0.0; 3], move |x, y, z| {
            (((x - c).powi(2) + (y - c).powi(2) + (z - c).powi(2)) as f32).sqrt()
        });
        (img, r_units)
    }

    #[test]
    fn sphere_surface_is_closed_and_sized_right() {
        let (img, r) = sphere_field(24, 7.0);
        let surf = isosurface(&img, r as f32).unwrap();
        assert!(!surf.triangles.is_empty());
        assert!(surf.is_closed_surface(), "sphere isosurface should be watertight");
        let area = surf.surface_area();
        let exact = 4.0 * std::f64::consts::PI * r * r;
        assert!((area - exact).abs() / exact < 0.05, "area {area} vs {exact}");
    }

    #[test]
    fn vertices_lie_on_the_isolevel() {
        let (img, r) = sphere_field(16, 5.0);
        let surf = isosurface(&img, r as f32).unwrap();
        let c = Vec3::new(7.5, 7.5, 7.5);
        for &p in surf.points.iter().step_by(7) {
            let d = (p - c).length();
            assert!((d - r).abs() < 0.2, "vertex at distance {d}, expected {r}");
        }
    }

    #[test]
    fn normals_point_outward_for_increasing_field() {
        // field = radius ⇒ gradient points outward ⇒ normal = -gradient points
        // inward... the convention is normals face decreasing field, which for
        // a distance field means toward the centre. What matters is
        // consistency: check all normals agree with -gradient.
        let (img, r) = sphere_field(20, 6.0);
        let surf = isosurface(&img, r as f32).unwrap();
        let c = Vec3::new(9.5, 9.5, 9.5);
        let n = surf.normals.as_ref().unwrap();
        let mut agree = 0usize;
        for (i, &p) in surf.points.iter().enumerate() {
            let outward = (p - c).normalized();
            if n[i].dot(outward) < 0.0 {
                agree += 1;
            }
        }
        assert!(agree as f64 > 0.95 * surf.points.len() as f64);
    }

    #[test]
    fn parallel_slab_output_is_bit_identical_to_serial() {
        // Serial reference: run the slab kernel k-by-k into ONE accumulating
        // mesh — exactly what the pre-parallel triple loop emitted — and
        // compare bitwise against the parallel+stitch path.
        fn serial_reference(img: &ImageData, value: f32) -> PolyData {
            let [_, _, nz] = img.dims;
            let mut acc = SlabMesh::default();
            for k in 0..nz - 1 {
                march_slab(img, value, k, None, &mut acc);
            }
            let mut out = PolyData::new();
            out.points = acc.points;
            out.triangles = acc.triangles;
            out.scalars = Some(acc.scalars);
            out.normals = Some(acc.normals);
            out.merge_points(1e-7 * (1.0 + img.bounds().diagonal()));
            out
        }

        let (mut img, r) = sphere_field(20, 6.0);
        // include a NaN hole so the skip path is exercised too
        let idx = img.index(2, 3, 4);
        img.scalars[idx] = f32::NAN;
        for value in [r as f32, 2.0, 8.5] {
            let par = isosurface(&img, value).unwrap();
            let ser = serial_reference(&img, value);
            assert_eq!(par.points.len(), ser.points.len(), "value {value}");
            assert!(
                par.points.iter().zip(&ser.points).all(|(a, b)| {
                    a.x.to_bits() == b.x.to_bits()
                        && a.y.to_bits() == b.y.to_bits()
                        && a.z.to_bits() == b.z.to_bits()
                }),
                "points differ at value {value}"
            );
            assert_eq!(par.triangles, ser.triangles, "value {value}");
            let (ps, ss) = (par.scalars.as_ref().unwrap(), ser.scalars.as_ref().unwrap());
            assert_eq!(ps.len(), ss.len());
            assert!(ps.iter().zip(ss).all(|(a, b)| a.to_bits() == b.to_bits()));
            let (pn, sn) = (par.normals.as_ref().unwrap(), ser.normals.as_ref().unwrap());
            assert!(pn.iter().zip(sn).all(|(a, b)| {
                a.x.to_bits() == b.x.to_bits()
                    && a.y.to_bits() == b.y.to_bits()
                    && a.z.to_bits() == b.z.to_bits()
            }));
        }
    }

    #[test]
    fn no_crossing_yields_empty_surface() {
        let (img, _) = sphere_field(8, 0.0);
        let surf = isosurface(&img, 1000.0).unwrap();
        assert!(surf.triangles.is_empty());
        let surf = isosurface(&img, -1.0).unwrap();
        assert!(surf.triangles.is_empty());
    }

    #[test]
    fn nan_cells_are_skipped_not_propagated() {
        let (mut img, r) = sphere_field(16, 5.0);
        // poison one corner region
        let idx = img.index(0, 0, 0);
        img.scalars[idx] = f32::NAN;
        let surf = isosurface(&img, r as f32).unwrap();
        assert!(!surf.triangles.is_empty());
        for &p in &surf.points {
            assert!(p.x.is_finite() && p.y.is_finite() && p.z.is_finite());
        }
    }

    #[test]
    fn planar_field_gives_flat_surface() {
        let img = ImageData::from_fn([8, 8, 8], [1.0; 3], [0.0; 3], |x, _, _| x as f32);
        let surf = isosurface(&img, 3.5).unwrap();
        for &p in &surf.points {
            assert!((p.x - 3.5).abs() < 1e-6);
        }
        // plane area = 7 × 7 grid units
        assert!((surf.surface_area() - 49.0).abs() < 1e-6);
    }

    #[test]
    fn colored_isosurface_samples_second_field() {
        let (img, r) = sphere_field(16, 5.0);
        // color field = z coordinate
        let color = ImageData::from_fn([16, 16, 16], [1.0; 3], [0.0; 3], |_, _, z| z as f32);
        let surf = isosurface_colored(&img, r as f32, &color).unwrap();
        let s = surf.scalars.as_ref().unwrap();
        for (i, &p) in surf.points.iter().enumerate() {
            if !s[i].is_nan() {
                assert!((s[i] as f64 - p.z).abs() < 0.05, "scalar {} at z {}", s[i], p.z);
            }
        }
    }

    #[test]
    fn colored_isosurface_rejects_mismatched_grids() {
        let (img, _) = sphere_field(8, 2.0);
        let other = ImageData::from_fn([4, 4, 4], [1.0; 3], [0.0; 3], |_, _, _| 0.0);
        assert!(isosurface_colored(&img, 2.0, &other).is_err());
    }

    #[test]
    fn degenerate_grids_rejected() {
        let img = ImageData::from_fn([1, 8, 8], [1.0; 3], [0.0; 3], |_, _, _| 0.0);
        assert!(isosurface(&img, 0.5).is_err());
    }

    #[test]
    fn respects_origin_and_spacing() {
        let c = 3.5;
        let img = ImageData::from_fn([8, 8, 8], [2.0; 3], [100.0, 0.0, 0.0], move |x, y, z| {
            (((x - c).powi(2) + (y - c).powi(2) + (z - c).powi(2)) as f32).sqrt()
        });
        let surf = isosurface(&img, 2.0).unwrap();
        let b = surf.bounds();
        // centre in world space: (100 + 3.5·2, 7, 7)
        assert!((b.center().x - 107.0).abs() < 0.5);
        assert!((b.center().y - 7.0).abs() < 0.5);
    }
}
