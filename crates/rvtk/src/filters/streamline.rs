//! Streamline integration through a vector field (RK4).
//!
//! The DV3D Vector slicer shows streamlines seeded on a draggable plane;
//! this filter integrates them with classic fourth-order Runge–Kutta in
//! both directions from each seed.

use crate::image_data::ImageData;
use crate::math::Vec3;
use crate::poly_data::PolyData;
use crate::{Result, VtkError};

/// Streamline integration options.
#[derive(Debug, Clone)]
pub struct StreamlineOptions {
    /// Integration step in world units.
    pub step_size: f64,
    /// Maximum steps per direction.
    pub max_steps: usize,
    /// Stop when |v| falls below this.
    pub min_speed: f64,
    /// Integrate backwards from the seed too.
    pub both_directions: bool,
}

impl Default for StreamlineOptions {
    fn default() -> StreamlineOptions {
        StreamlineOptions {
            step_size: 0.5,
            max_steps: 200,
            min_speed: 1e-6,
            both_directions: true,
        }
    }
}

/// Integrates streamlines from `seeds` (world coordinates) through the
/// vector field of `img`. The result has one polyline per (non-degenerate)
/// streamline; point scalars carry the local speed |v|.
pub fn streamlines(
    img: &ImageData,
    seeds: &[Vec3],
    opts: &StreamlineOptions,
) -> Result<PolyData> {
    if img.vectors.is_none() {
        return Err(VtkError::MissingData("vector field".into()));
    }
    if opts.step_size <= 0.0 {
        return Err(VtkError::Invalid("step size must be positive".into()));
    }
    let mut out = PolyData::new();
    let mut scalars: Vec<f32> = Vec::new();

    for &seed in seeds {
        let mut line_points: Vec<(Vec3, f32)> = Vec::new();
        // backward half (reversed later), then forward half
        if opts.both_directions {
            let back = integrate(img, seed, -opts.step_size, opts);
            line_points.extend(back.into_iter().rev());
        }
        let fwd = integrate(img, seed, opts.step_size, opts);
        // avoid duplicating the seed point when both halves are present
        if !line_points.is_empty() && !fwd.is_empty() {
            line_points.extend(fwd.into_iter().skip(1));
        } else {
            line_points.extend(fwd);
        }
        if line_points.len() < 2 {
            continue;
        }
        let start = out.points.len() as u32;
        for (p, s) in &line_points {
            out.add_point(*p);
            scalars.push(*s);
        }
        out.lines.push((start..start + line_points.len() as u32).collect());
    }
    out.scalars = Some(scalars);
    Ok(out)
}

/// One-directional RK4 integration; returns points including the seed.
fn integrate(img: &ImageData, seed: Vec3, h: f64, opts: &StreamlineOptions) -> Vec<(Vec3, f32)> {
    let sample = |p: Vec3| -> Option<Vec3> {
        let v = img.sample_vector_continuous(img.world_to_continuous(p))?;
        Some(Vec3::new(v[0] as f64, v[1] as f64, v[2] as f64))
    };
    let mut pts = Vec::new();
    let mut p = seed;
    let Some(v0) = sample(p) else {
        return pts;
    };
    pts.push((p, v0.length() as f32));
    for _ in 0..opts.max_steps {
        let Some(k1) = sample(p) else { break };
        if k1.length() < opts.min_speed {
            break;
        }
        let Some(k2) = sample(p + k1.normalized() * (h / 2.0)) else { break };
        let Some(k3) = sample(p + k2.normalized() * (h / 2.0)) else { break };
        let Some(k4) = sample(p + k3.normalized() * h) else { break };
        // direction-normalized RK4: fixed spatial step along the blended dir
        let dir = (k1.normalized() + k2.normalized() * 2.0 + k3.normalized() * 2.0
            + k4.normalized())
        .normalized();
        if dir.length() < 0.5 {
            break;
        }
        p = p + dir * h;
        match sample(p) {
            Some(v) => pts.push((p, v.length() as f32)),
            None => break,
        }
    }
    pts
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Uniform flow in +x.
    fn uniform_flow(n: usize) -> ImageData {
        let img = ImageData::from_fn([n, n, n], [1.0; 3], [0.0; 3], |_, _, _| 0.0);
        let count = n * n * n;
        img.with_vectors(vec![[1.0, 0.0, 0.0]; count]).unwrap()
    }

    /// Solid-body rotation about the z axis through the volume centre.
    fn rotation_flow(n: usize) -> ImageData {
        let c = (n - 1) as f64 / 2.0;
        let mut vectors = Vec::with_capacity(n * n * n);
        for _k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let (x, y) = (i as f64 - c, j as f64 - c);
                    vectors.push([-y as f32, x as f32, 0.0]);
                }
            }
        }
        ImageData::from_fn([n, n, n], [1.0; 3], [0.0; 3], |_, _, _| 0.0)
            .with_vectors(vectors)
            .unwrap()
    }

    #[test]
    fn requires_vectors() {
        let img = ImageData::from_fn([4, 4, 4], [1.0; 3], [0.0; 3], |_, _, _| 0.0);
        assert!(streamlines(&img, &[Vec3::ZERO], &StreamlineOptions::default()).is_err());
    }

    #[test]
    fn uniform_flow_gives_straight_lines() {
        let img = uniform_flow(10);
        let opts = StreamlineOptions { both_directions: false, ..Default::default() };
        let sl = streamlines(&img, &[Vec3::new(0.5, 4.5, 4.5)], &opts).unwrap();
        assert_eq!(sl.lines.len(), 1);
        let line = &sl.lines[0];
        assert!(line.len() > 10);
        for &i in line {
            let p = sl.points[i as usize];
            assert!((p.y - 4.5).abs() < 1e-9);
            assert!((p.z - 4.5).abs() < 1e-9);
        }
        // x advances monotonically
        let xs: Vec<f64> = line.iter().map(|&i| sl.points[i as usize].x).collect();
        assert!(xs.windows(2).all(|w| w[1] > w[0]));
        // speed scalar = 1 everywhere
        assert!(sl.scalars.as_ref().unwrap().iter().all(|&s| (s - 1.0).abs() < 1e-5));
    }

    #[test]
    fn both_directions_extends_line() {
        let img = uniform_flow(12);
        let seed = Vec3::new(5.5, 5.5, 5.5);
        let one = streamlines(
            &img,
            &[seed],
            &StreamlineOptions { both_directions: false, ..Default::default() },
        )
        .unwrap();
        let two = streamlines(&img, &[seed], &StreamlineOptions::default()).unwrap();
        assert!(two.lines[0].len() > one.lines[0].len());
        // no duplicated seed point
        let pts = &two.lines[0];
        for w in pts.windows(2) {
            let a = two.points[w[0] as usize];
            let b = two.points[w[1] as usize];
            assert!((a - b).length() > 1e-9);
        }
    }

    #[test]
    fn rotation_flow_circles_back() {
        let img = rotation_flow(21);
        let seed = Vec3::new(15.0, 10.0, 10.0); // radius 5 from centre
        let opts = StreamlineOptions {
            step_size: 0.2,
            max_steps: 400,
            both_directions: false,
            ..Default::default()
        };
        let sl = streamlines(&img, &[seed], &opts).unwrap();
        let line = &sl.lines[0];
        let centre = Vec3::new(10.0, 10.0, 10.0);
        // radius stays ~constant
        for &i in line.iter().step_by(10) {
            let r = (sl.points[i as usize] - centre).length();
            assert!((r - 5.0).abs() < 0.35, "radius {r}");
        }
        // line comes back near the seed (full circle ≈ 2π·5 ≈ 31 units / 0.2 step)
        let min_return = line
            .iter()
            .skip(100)
            .map(|&i| (sl.points[i as usize] - seed).length())
            .fold(f64::INFINITY, f64::min);
        assert!(min_return < 1.0, "closest return {min_return}");
    }

    #[test]
    fn leaves_domain_and_stops() {
        let img = uniform_flow(6);
        let opts = StreamlineOptions { both_directions: false, ..Default::default() };
        let sl = streamlines(&img, &[Vec3::new(4.0, 2.5, 2.5)], &opts).unwrap();
        let last = sl.points[*sl.lines[0].last().unwrap() as usize];
        assert!(last.x <= 5.0 + 1e-9);
    }

    #[test]
    fn seed_outside_domain_is_skipped() {
        let img = uniform_flow(6);
        let sl = streamlines(
            &img,
            &[Vec3::new(-10.0, 0.0, 0.0), Vec3::new(1.0, 2.0, 2.0)],
            &StreamlineOptions::default(),
        )
        .unwrap();
        assert_eq!(sl.lines.len(), 1);
    }

    #[test]
    fn zero_velocity_stops_immediately() {
        let img = ImageData::from_fn([5, 5, 5], [1.0; 3], [0.0; 3], |_, _, _| 0.0)
            .with_vectors(vec![[0.0; 3]; 125])
            .unwrap();
        let sl = streamlines(&img, &[Vec3::new(2.0, 2.0, 2.0)], &StreamlineOptions::default())
            .unwrap();
        assert!(sl.lines.is_empty());
    }

    #[test]
    fn invalid_step_rejected() {
        let img = uniform_flow(4);
        let opts = StreamlineOptions { step_size: 0.0, ..Default::default() };
        assert!(streamlines(&img, &[Vec3::ZERO], &opts).is_err());
    }
}
