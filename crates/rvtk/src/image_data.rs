//! Structured points ("image data"): a regular 3D grid with scalars and
//! optional vectors — the dataset type DV3D's translation stage produces
//! from CDMS variables.

use crate::math::{Bounds, Vec3};
use crate::{Result, VtkError};

/// A regular 3D grid. Point `(i, j, k)` lives at
/// `origin + (i·sx, j·sy, k·sz)`; scalars are stored x-fastest
/// (`index = i + dims[0]·(j + dims[1]·k)`), matching VTK.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageData {
    /// Points per axis `(nx, ny, nz)`.
    pub dims: [usize; 3],
    /// Grid spacing per axis.
    pub spacing: [f64; 3],
    /// World position of point `(0, 0, 0)`.
    pub origin: [f64; 3],
    /// Point scalars, `dims` product long. NaN marks missing data.
    pub scalars: Vec<f32>,
    /// Optional point vectors (same length as `scalars`).
    pub vectors: Option<Vec<[f32; 3]>>,
}

impl ImageData {
    /// Creates image data from scalars, validating the length.
    pub fn new(
        dims: [usize; 3],
        spacing: [f64; 3],
        origin: [f64; 3],
        scalars: Vec<f32>,
    ) -> Result<ImageData> {
        let n = dims[0] * dims[1] * dims[2];
        if scalars.len() != n {
            return Err(VtkError::Invalid(format!(
                "scalars length {} != dims product {n}",
                scalars.len()
            )));
        }
        if dims.contains(&0) {
            return Err(VtkError::Invalid("zero-sized dimension".into()));
        }
        Ok(ImageData { dims, spacing, origin, scalars, vectors: None })
    }

    /// Builds image data by evaluating `f(x, y, z)` at grid *indices*
    /// (not world coordinates), a convenient test-field constructor.
    pub fn from_fn(
        dims: [usize; 3],
        spacing: [f64; 3],
        origin: [f64; 3],
        f: impl Fn(f64, f64, f64) -> f32,
    ) -> ImageData {
        let mut scalars = Vec::with_capacity(dims[0] * dims[1] * dims[2]);
        for k in 0..dims[2] {
            for j in 0..dims[1] {
                for i in 0..dims[0] {
                    scalars.push(f(i as f64, j as f64, k as f64));
                }
            }
        }
        ImageData { dims, spacing, origin, scalars, vectors: None }
    }

    /// Attaches per-point vectors.
    pub fn with_vectors(mut self, vectors: Vec<[f32; 3]>) -> Result<ImageData> {
        if vectors.len() != self.scalars.len() {
            return Err(VtkError::Invalid(format!(
                "vectors length {} != point count {}",
                vectors.len(),
                self.scalars.len()
            )));
        }
        self.vectors = Some(vectors);
        Ok(self)
    }

    /// Number of points.
    pub fn num_points(&self) -> usize {
        self.scalars.len()
    }

    /// Flat index of point `(i, j, k)`.
    #[inline]
    pub fn index(&self, i: usize, j: usize, k: usize) -> usize {
        i + self.dims[0] * (j + self.dims[1] * k)
    }

    /// Scalar at `(i, j, k)`.
    #[inline]
    pub fn scalar(&self, i: usize, j: usize, k: usize) -> f32 {
        self.scalars[self.index(i, j, k)]
    }

    /// World position of point `(i, j, k)`.
    pub fn point(&self, i: usize, j: usize, k: usize) -> Vec3 {
        Vec3::new(
            self.origin[0] + i as f64 * self.spacing[0],
            self.origin[1] + j as f64 * self.spacing[1],
            self.origin[2] + k as f64 * self.spacing[2],
        )
    }

    /// World-space bounding box.
    pub fn bounds(&self) -> Bounds {
        let mut b = Bounds::empty();
        b.include(self.point(0, 0, 0));
        b.include(self.point(self.dims[0] - 1, self.dims[1] - 1, self.dims[2] - 1));
        b
    }

    /// Scalar range ignoring NaNs; `None` if all NaN.
    pub fn scalar_range(&self) -> Option<(f32, f32)> {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in &self.scalars {
            if v.is_nan() {
                continue;
            }
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if lo.is_finite() {
            Some((lo, hi))
        } else {
            None
        }
    }

    /// Continuous (fractional-index) coordinates of a world point.
    pub fn world_to_continuous(&self, p: Vec3) -> Vec3 {
        Vec3::new(
            (p.x - self.origin[0]) / self.spacing[0],
            (p.y - self.origin[1]) / self.spacing[1],
            (p.z - self.origin[2]) / self.spacing[2],
        )
    }

    /// Trilinear interpolation of the scalar field at a *continuous index*
    /// coordinate. Returns `None` outside the grid or when any corner is NaN.
    pub fn sample_continuous(&self, c: Vec3) -> Option<f32> {
        let [nx, ny, nz] = self.dims;
        if c.x < 0.0 || c.y < 0.0 || c.z < 0.0 {
            return None;
        }
        if c.x > (nx - 1) as f64 || c.y > (ny - 1) as f64 || c.z > (nz - 1) as f64 {
            return None;
        }
        let i0 = (c.x.floor() as usize).min(nx.saturating_sub(2));
        let j0 = (c.y.floor() as usize).min(ny.saturating_sub(2));
        let k0 = (c.z.floor() as usize).min(nz.saturating_sub(2));
        let i1 = (i0 + 1).min(nx - 1);
        let j1 = (j0 + 1).min(ny - 1);
        let k1 = (k0 + 1).min(nz - 1);
        let fx = (c.x - i0 as f64) as f32;
        let fy = (c.y - j0 as f64) as f32;
        let fz = (c.z - k0 as f64) as f32;
        let mut acc = 0.0f32;
        for (kk, wz) in [(k0, 1.0 - fz), (k1, fz)] {
            for (jj, wy) in [(j0, 1.0 - fy), (j1, fy)] {
                for (ii, wx) in [(i0, 1.0 - fx), (i1, fx)] {
                    let v = self.scalar(ii, jj, kk);
                    if v.is_nan() {
                        return None;
                    }
                    acc += v * wx * wy * wz;
                }
            }
        }
        Some(acc)
    }

    /// Trilinear sample at a world coordinate.
    pub fn sample_world(&self, p: Vec3) -> Option<f32> {
        self.sample_continuous(self.world_to_continuous(p))
    }

    /// Trilinear interpolation of the vector field at a continuous index
    /// coordinate.
    pub fn sample_vector_continuous(&self, c: Vec3) -> Option<[f32; 3]> {
        let vectors = self.vectors.as_ref()?;
        let [nx, ny, nz] = self.dims;
        if c.x < 0.0 || c.y < 0.0 || c.z < 0.0 {
            return None;
        }
        if c.x > (nx - 1) as f64 || c.y > (ny - 1) as f64 || c.z > (nz - 1) as f64 {
            return None;
        }
        let i0 = (c.x.floor() as usize).min(nx.saturating_sub(2));
        let j0 = (c.y.floor() as usize).min(ny.saturating_sub(2));
        let k0 = (c.z.floor() as usize).min(nz.saturating_sub(2));
        let i1 = (i0 + 1).min(nx - 1);
        let j1 = (j0 + 1).min(ny - 1);
        let k1 = (k0 + 1).min(nz - 1);
        let fx = (c.x - i0 as f64) as f32;
        let fy = (c.y - j0 as f64) as f32;
        let fz = (c.z - k0 as f64) as f32;
        let mut acc = [0.0f32; 3];
        for (kk, wz) in [(k0, 1.0 - fz), (k1, fz)] {
            for (jj, wy) in [(j0, 1.0 - fy), (j1, fy)] {
                for (ii, wx) in [(i0, 1.0 - fx), (i1, fx)] {
                    let v = vectors[self.index(ii, jj, kk)];
                    let w = wx * wy * wz;
                    acc[0] += v[0] * w;
                    acc[1] += v[1] * w;
                    acc[2] += v[2] * w;
                }
            }
        }
        Some(acc)
    }

    /// Central-difference gradient at point `(i, j, k)` in world units
    /// (one-sided at boundaries). NaN neighbours degrade to zero slope.
    pub fn gradient(&self, i: usize, j: usize, k: usize) -> Vec3 {
        let [nx, ny, nz] = self.dims;
        let diff = |vm: f32, vp: f32, h: f64| -> f64 {
            if vm.is_nan() || vp.is_nan() || h == 0.0 {
                0.0
            } else {
                ((vp - vm) as f64) / h
            }
        };
        let gx = {
            let (im, ip) = (i.saturating_sub(1), (i + 1).min(nx - 1));
            diff(self.scalar(im, j, k), self.scalar(ip, j, k), (ip - im) as f64 * self.spacing[0])
        };
        let gy = {
            let (jm, jp) = (j.saturating_sub(1), (j + 1).min(ny - 1));
            diff(self.scalar(i, jm, k), self.scalar(i, jp, k), (jp - jm) as f64 * self.spacing[1])
        };
        let gz = {
            let (km, kp) = (k.saturating_sub(1), (k + 1).min(nz - 1));
            diff(self.scalar(i, j, km), self.scalar(i, j, kp), (kp - km) as f64 * self.spacing[2])
        };
        Vec3::new(gx, gy, gz)
    }

    /// Downsamples by integer `factor` along every axis (point decimation) —
    /// the hyperwall server's low-resolution mirror uses this.
    pub fn downsample(&self, factor: usize) -> ImageData {
        let factor = factor.max(1);
        let nd = |n: usize| n.div_ceil(factor);
        let dims = [nd(self.dims[0]), nd(self.dims[1]), nd(self.dims[2])];
        let mut scalars = Vec::with_capacity(dims[0] * dims[1] * dims[2]);
        let mut vectors = self.vectors.as_ref().map(|_| Vec::with_capacity(scalars.capacity()));
        for k in (0..self.dims[2]).step_by(factor) {
            for j in (0..self.dims[1]).step_by(factor) {
                for i in (0..self.dims[0]).step_by(factor) {
                    scalars.push(self.scalar(i, j, k));
                    if let (Some(out), Some(src)) = (vectors.as_mut(), self.vectors.as_ref()) {
                        out.push(src[self.index(i, j, k)]);
                    }
                }
            }
        }
        ImageData {
            dims,
            spacing: [
                self.spacing[0] * factor as f64,
                self.spacing[1] * factor as f64,
                self.spacing[2] * factor as f64,
            ],
            origin: self.origin,
            scalars,
            vectors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> ImageData {
        // scalar = x + 10y + 100z at unit spacing
        ImageData::from_fn([4, 4, 4], [1.0; 3], [0.0; 3], |x, y, z| (x + 10.0 * y + 100.0 * z) as f32)
    }

    #[test]
    fn construction_validates() {
        assert!(ImageData::new([2, 2, 2], [1.0; 3], [0.0; 3], vec![0.0; 8]).is_ok());
        assert!(ImageData::new([2, 2, 2], [1.0; 3], [0.0; 3], vec![0.0; 7]).is_err());
        assert!(ImageData::new([0, 2, 2], [1.0; 3], [0.0; 3], vec![]).is_err());
    }

    #[test]
    fn indexing_is_x_fastest() {
        let img = ramp();
        assert_eq!(img.scalar(1, 0, 0), 1.0);
        assert_eq!(img.scalar(0, 1, 0), 10.0);
        assert_eq!(img.scalar(0, 0, 1), 100.0);
        assert_eq!(img.index(1, 2, 3), 1 + 4 * (2 + 4 * 3));
    }

    #[test]
    fn points_and_bounds() {
        let img = ImageData::from_fn([3, 3, 3], [2.0, 1.0, 0.5], [10.0, 0.0, -1.0], |_, _, _| 0.0);
        let p = img.point(2, 2, 2);
        assert_eq!((p.x, p.y, p.z), (14.0, 2.0, 0.0));
        let b = img.bounds();
        assert_eq!(b.min.x, 10.0);
        assert_eq!(b.max.z, 0.0);
    }

    #[test]
    fn scalar_range_ignores_nan() {
        let mut img = ramp();
        img.scalars[0] = f32::NAN;
        let (lo, hi) = img.scalar_range().unwrap();
        assert_eq!(lo, 1.0);
        assert_eq!(hi, 333.0);
        let all_nan = ImageData::new([1, 1, 1], [1.0; 3], [0.0; 3], vec![f32::NAN]).unwrap();
        assert_eq!(all_nan.scalar_range(), None);
    }

    #[test]
    fn trilinear_is_exact_on_linear_fields() {
        let img = ramp();
        for c in [
            Vec3::new(0.5, 0.5, 0.5),
            Vec3::new(1.25, 2.75, 0.1),
            Vec3::new(3.0, 3.0, 3.0),
            Vec3::new(0.0, 0.0, 0.0),
        ] {
            let v = img.sample_continuous(c).unwrap();
            let expect = (c.x + 10.0 * c.y + 100.0 * c.z) as f32;
            assert!((v - expect).abs() < 1e-4, "at {c:?}: {v} vs {expect}");
        }
        assert!(img.sample_continuous(Vec3::new(-0.1, 0.0, 0.0)).is_none());
        assert!(img.sample_continuous(Vec3::new(3.1, 0.0, 0.0)).is_none());
    }

    #[test]
    fn sample_world_respects_origin_and_spacing() {
        let img = ImageData::from_fn([4, 4, 4], [2.0; 3], [10.0, 0.0, 0.0], |x, _, _| x as f32);
        // world x = 13 → index 1.5 → scalar 1.5
        let v = img.sample_world(Vec3::new(13.0, 2.0, 2.0)).unwrap();
        assert!((v - 1.5).abs() < 1e-6);
    }

    #[test]
    fn nan_poisons_interpolation_cell() {
        let mut img = ramp();
        let idx = img.index(1, 1, 1);
        img.scalars[idx] = f32::NAN;
        assert!(img.sample_continuous(Vec3::new(0.9, 0.9, 0.9)).is_none());
        // far corner unaffected
        assert!(img.sample_continuous(Vec3::new(2.5, 2.5, 2.5)).is_some());
    }

    #[test]
    fn vector_attachment_and_sampling() {
        let n = 4 * 4 * 4;
        let img = ramp().with_vectors(vec![[1.0, 2.0, 3.0]; n]).unwrap();
        let v = img.sample_vector_continuous(Vec3::new(1.5, 1.5, 1.5)).unwrap();
        assert_eq!(v, [1.0, 2.0, 3.0]);
        assert!(ramp().with_vectors(vec![[0.0; 3]; 5]).is_err());
        assert!(ramp().sample_vector_continuous(Vec3::ZERO).is_none());
    }

    #[test]
    fn gradient_of_linear_field() {
        let img = ramp();
        for (i, j, k) in [(1, 1, 1), (0, 0, 0), (3, 3, 3)] {
            let g = img.gradient(i, j, k);
            assert!((g.x - 1.0).abs() < 1e-9, "{g:?}");
            assert!((g.y - 10.0).abs() < 1e-9);
            assert!((g.z - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn gradient_respects_spacing() {
        let img = ImageData::from_fn([4, 4, 4], [2.0, 1.0, 1.0], [0.0; 3], |x, _, _| x as f32);
        let g = img.gradient(1, 1, 1);
        assert!((g.x - 0.5).abs() < 1e-9); // d(scalar)/d(world x) = 1 index / 2 world
    }

    #[test]
    fn downsample_halves_dims() {
        let img = ramp().with_vectors(vec![[1.0, 0.0, 0.0]; 64]).unwrap();
        let d = img.downsample(2);
        assert_eq!(d.dims, [2, 2, 2]);
        assert_eq!(d.spacing, [2.0; 3]);
        assert_eq!(d.scalar(1, 1, 1), img.scalar(2, 2, 2));
        assert_eq!(d.vectors.as_ref().unwrap().len(), 8);
        // factor 1 is identity
        let same = img.downsample(1);
        assert_eq!(same.scalars, img.scalars);
        // factor 0 clamps to 1
        assert_eq!(img.downsample(0).dims, img.dims);
    }
}
