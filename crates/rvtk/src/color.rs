//! RGBA colors with float components in `[0, 1]`.

/// An RGBA color.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Color {
    pub r: f32,
    pub g: f32,
    pub b: f32,
    pub a: f32,
}

impl Color {
    /// An opaque RGB color.
    pub const fn rgb(r: f32, g: f32, b: f32) -> Color {
        Color { r, g, b, a: 1.0 }
    }

    /// An RGBA color.
    pub const fn rgba(r: f32, g: f32, b: f32, a: f32) -> Color {
        Color { r, g, b, a }
    }

    pub const BLACK: Color = Color::rgb(0.0, 0.0, 0.0);
    pub const WHITE: Color = Color::rgb(1.0, 1.0, 1.0);
    pub const RED: Color = Color::rgb(1.0, 0.0, 0.0);
    pub const GREEN: Color = Color::rgb(0.0, 1.0, 0.0);
    pub const BLUE: Color = Color::rgb(0.0, 0.0, 1.0);
    /// Fully transparent black.
    pub const TRANSPARENT: Color = Color::rgba(0.0, 0.0, 0.0, 0.0);

    /// Linear interpolation between two colors (component-wise, incl. alpha).
    pub fn lerp(self, o: Color, t: f32) -> Color {
        let t = t.clamp(0.0, 1.0);
        Color {
            r: self.r + (o.r - self.r) * t,
            g: self.g + (o.g - self.g) * t,
            b: self.b + (o.b - self.b) * t,
            a: self.a + (o.a - self.a) * t,
        }
    }

    /// Multiplies RGB by `k`, leaving alpha (diffuse shading).
    pub fn scaled(self, k: f32) -> Color {
        Color { r: self.r * k, g: self.g * k, b: self.b * k, a: self.a }
    }

    /// Clamps all components to `[0, 1]`.
    pub fn clamped(self) -> Color {
        Color {
            r: self.r.clamp(0.0, 1.0),
            g: self.g.clamp(0.0, 1.0),
            b: self.b.clamp(0.0, 1.0),
            a: self.a.clamp(0.0, 1.0),
        }
    }

    /// Packs to 8-bit RGBA.
    pub fn to_u8(self) -> [u8; 4] {
        let q = |v: f32| (v.clamp(0.0, 1.0) * 255.0 + 0.5) as u8;
        [q(self.r), q(self.g), q(self.b), q(self.a)]
    }

    /// Unpacks from 8-bit RGBA.
    pub fn from_u8(c: [u8; 4]) -> Color {
        Color {
            r: c[0] as f32 / 255.0,
            g: c[1] as f32 / 255.0,
            b: c[2] as f32 / 255.0,
            a: c[3] as f32 / 255.0,
        }
    }

    /// "Over" alpha compositing: `self` drawn over `dst`.
    pub fn over(self, dst: Color) -> Color {
        let a = self.a + dst.a * (1.0 - self.a);
        if a <= 0.0 {
            return Color::TRANSPARENT;
        }
        Color {
            r: (self.r * self.a + dst.r * dst.a * (1.0 - self.a)) / a,
            g: (self.g * self.a + dst.g * dst.a * (1.0 - self.a)) / a,
            b: (self.b * self.a + dst.b * dst.a * (1.0 - self.a)) / a,
            a,
        }
    }

    /// Perceptual luminance (Rec. 709).
    pub fn luminance(self) -> f32 {
        0.2126 * self.r + 0.7152 * self.g + 0.0722 * self.b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let c = Color::rgba(0.25, 0.5, 0.75, 1.0);
        let u = c.to_u8();
        assert_eq!(u, [64, 128, 191, 255]);
        let back = Color::from_u8(u);
        assert!((back.r - 0.25).abs() < 0.01);
        assert!((back.b - 0.75).abs() < 0.01);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Color::BLACK;
        let b = Color::WHITE;
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let mid = a.lerp(b, 0.5);
        assert!((mid.r - 0.5).abs() < 1e-6);
        // t is clamped
        assert_eq!(a.lerp(b, 2.0), b);
    }

    #[test]
    fn over_compositing() {
        // opaque over anything = itself
        assert_eq!(Color::RED.over(Color::BLUE), Color::RED);
        // 50% red over opaque blue
        let c = Color::rgba(1.0, 0.0, 0.0, 0.5).over(Color::BLUE);
        assert!((c.r - 0.5).abs() < 1e-6);
        assert!((c.b - 0.5).abs() < 1e-6);
        assert!((c.a - 1.0).abs() < 1e-6);
        // transparent over transparent
        assert_eq!(Color::TRANSPARENT.over(Color::TRANSPARENT), Color::TRANSPARENT);
    }

    #[test]
    fn shading_helpers() {
        let c = Color::rgb(0.5, 0.5, 0.5).scaled(2.0);
        assert_eq!(c.r, 1.0);
        assert_eq!(c.clamped().r, 1.0);
        assert_eq!(Color::rgb(2.0, -1.0, 0.5).clamped(), Color::rgb(1.0, 0.0, 0.5));
        assert!((Color::WHITE.luminance() - 1.0).abs() < 1e-6);
        assert!(Color::GREEN.luminance() > Color::BLUE.luminance());
    }
}
