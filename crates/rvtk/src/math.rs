//! Minimal 3D math: vectors and 4×4 matrices (column-vector convention).

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A 3-component `f64` vector.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    /// Constructs a vector.
    pub const fn new(x: f64, y: f64, z: f64) -> Vec3 {
        Vec3 { x, y, z }
    }

    /// The zero vector.
    pub const ZERO: Vec3 = Vec3::new(0.0, 0.0, 0.0);

    /// Dot product.
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean length.
    pub fn length(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Unit vector (zero stays zero).
    pub fn normalized(self) -> Vec3 {
        let l = self.length();
        if l < 1e-300 {
            Vec3::ZERO
        } else {
            self / l
        }
    }

    /// Component-wise linear interpolation.
    pub fn lerp(self, o: Vec3, t: f64) -> Vec3 {
        self + (o - self) * t
    }

    /// Component-wise minimum.
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}
impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}
impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}
impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}
impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// A 4×4 matrix, row-major storage, column-vector convention
/// (`m * v` transforms `v`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4 {
    /// `m[row][col]`.
    pub m: [[f64; 4]; 4],
}

impl Mat4 {
    /// The identity matrix.
    pub fn identity() -> Mat4 {
        let mut m = [[0.0; 4]; 4];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        Mat4 { m }
    }

    /// A translation matrix.
    pub fn translate(t: Vec3) -> Mat4 {
        let mut out = Mat4::identity();
        out.m[0][3] = t.x;
        out.m[1][3] = t.y;
        out.m[2][3] = t.z;
        out
    }

    /// A non-uniform scale matrix.
    pub fn scale(s: Vec3) -> Mat4 {
        let mut out = Mat4::identity();
        out.m[0][0] = s.x;
        out.m[1][1] = s.y;
        out.m[2][2] = s.z;
        out
    }

    /// Rotation about an arbitrary unit axis by `angle` radians (Rodrigues).
    pub fn rotate(axis: Vec3, angle: f64) -> Mat4 {
        let a = axis.normalized();
        let (s, c) = angle.sin_cos();
        let t = 1.0 - c;
        let (x, y, z) = (a.x, a.y, a.z);
        let mut out = Mat4::identity();
        out.m[0][0] = t * x * x + c;
        out.m[0][1] = t * x * y - s * z;
        out.m[0][2] = t * x * z + s * y;
        out.m[1][0] = t * x * y + s * z;
        out.m[1][1] = t * y * y + c;
        out.m[1][2] = t * y * z - s * x;
        out.m[2][0] = t * x * z - s * y;
        out.m[2][1] = t * y * z + s * x;
        out.m[2][2] = t * z * z + c;
        out
    }

    /// A right-handed look-at view matrix.
    pub fn look_at(eye: Vec3, center: Vec3, up: Vec3) -> Mat4 {
        let f = (center - eye).normalized();
        let s = f.cross(up).normalized();
        let u = s.cross(f);
        let mut out = Mat4::identity();
        out.m[0] = [s.x, s.y, s.z, -s.dot(eye)];
        out.m[1] = [u.x, u.y, u.z, -u.dot(eye)];
        out.m[2] = [-f.x, -f.y, -f.z, f.dot(eye)];
        out
    }

    /// A right-handed perspective projection (fov in radians, maps to
    /// clip space with z in [-1, 1]).
    pub fn perspective(fov_y: f64, aspect: f64, near: f64, far: f64) -> Mat4 {
        let f = 1.0 / (fov_y / 2.0).tan();
        let mut out = Mat4 { m: [[0.0; 4]; 4] };
        out.m[0][0] = f / aspect;
        out.m[1][1] = f;
        out.m[2][2] = (far + near) / (near - far);
        out.m[2][3] = 2.0 * far * near / (near - far);
        out.m[3][2] = -1.0;
        out
    }

    /// An orthographic projection. `near`/`far` are positive distances in
    /// front of the camera (view-space z = `-near` maps to NDC z = -1,
    /// z = `-far` to +1), matching [`Mat4::perspective`]'s convention.
    pub fn orthographic(half_height: f64, aspect: f64, near: f64, far: f64) -> Mat4 {
        let half_width = half_height * aspect;
        let (zn, zf) = (-near, -far);
        let mut out = Mat4::identity();
        out.m[0][0] = 1.0 / half_width;
        out.m[1][1] = 1.0 / half_height;
        out.m[2][2] = 2.0 / (zf - zn);
        out.m[2][3] = -(zf + zn) / (zf - zn);
        out
    }

    /// Matrix product `self * other`.
    pub fn mul_mat(&self, other: &Mat4) -> Mat4 {
        let mut out = Mat4 { m: [[0.0; 4]; 4] };
        for i in 0..4 {
            for j in 0..4 {
                out.m[i][j] = (0..4).map(|k| self.m[i][k] * other.m[k][j]).sum();
            }
        }
        out
    }

    /// Transforms a point (w = 1) with perspective division.
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        let (x, y, z) = (p.x, p.y, p.z);
        let tx = self.m[0][0] * x + self.m[0][1] * y + self.m[0][2] * z + self.m[0][3];
        let ty = self.m[1][0] * x + self.m[1][1] * y + self.m[1][2] * z + self.m[1][3];
        let tz = self.m[2][0] * x + self.m[2][1] * y + self.m[2][2] * z + self.m[2][3];
        let tw = self.m[3][0] * x + self.m[3][1] * y + self.m[3][2] * z + self.m[3][3];
        if (tw - 1.0).abs() < 1e-12 || tw.abs() < 1e-12 {
            Vec3::new(tx, ty, tz)
        } else {
            Vec3::new(tx / tw, ty / tw, tz / tw)
        }
    }

    /// Transforms a point returning the homogeneous w (needed by clipping).
    pub fn transform_point4(&self, p: Vec3) -> (Vec3, f64) {
        let (x, y, z) = (p.x, p.y, p.z);
        let tx = self.m[0][0] * x + self.m[0][1] * y + self.m[0][2] * z + self.m[0][3];
        let ty = self.m[1][0] * x + self.m[1][1] * y + self.m[1][2] * z + self.m[1][3];
        let tz = self.m[2][0] * x + self.m[2][1] * y + self.m[2][2] * z + self.m[2][3];
        let tw = self.m[3][0] * x + self.m[3][1] * y + self.m[3][2] * z + self.m[3][3];
        (Vec3::new(tx, ty, tz), tw)
    }

    /// General 4×4 inverse by Gauss–Jordan elimination with partial
    /// pivoting. Returns `None` for singular matrices.
    pub fn inverse(&self) -> Option<Mat4> {
        let mut a = self.m;
        let mut inv = Mat4::identity().m;
        for col in 0..4 {
            // pivot
            let mut pivot = col;
            for row in col + 1..4 {
                if a[row][col].abs() > a[pivot][col].abs() {
                    pivot = row;
                }
            }
            if a[pivot][col].abs() < 1e-14 {
                return None;
            }
            a.swap(col, pivot);
            inv.swap(col, pivot);
            let d = a[col][col];
            for j in 0..4 {
                a[col][j] /= d;
                inv[col][j] /= d;
            }
            for row in 0..4 {
                if row != col {
                    let f = a[row][col];
                    for j in 0..4 {
                        a[row][j] -= f * a[col][j];
                        inv[row][j] -= f * inv[col][j];
                    }
                }
            }
        }
        Some(Mat4 { m: inv })
    }

    /// Transforms a direction (w = 0, no translation).
    pub fn transform_vector(&self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.m[0][0] * v.x + self.m[0][1] * v.y + self.m[0][2] * v.z,
            self.m[1][0] * v.x + self.m[1][1] * v.y + self.m[1][2] * v.z,
            self.m[2][0] * v.x + self.m[2][1] * v.y + self.m[2][2] * v.z,
        )
    }
}

/// An axis-aligned bounding box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounds {
    pub min: Vec3,
    pub max: Vec3,
}

impl Bounds {
    /// An empty (inverted) bounds ready to be grown.
    pub fn empty() -> Bounds {
        Bounds {
            min: Vec3::new(f64::INFINITY, f64::INFINITY, f64::INFINITY),
            max: Vec3::new(f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Expands to include `p`.
    pub fn include(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Expands to include another bounds.
    pub fn union(&mut self, o: &Bounds) {
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
    }

    /// True if no point was ever included.
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x
    }

    /// Geometric centre.
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Length of the diagonal.
    pub fn diagonal(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            (self.max - self.min).length()
        }
    }

    /// Ray / box intersection (slab method): returns `(t_near, t_far)` along
    /// `origin + t·dir`, or `None` when the ray misses.
    pub fn ray_intersect(&self, origin: Vec3, dir: Vec3) -> Option<(f64, f64)> {
        let mut t0 = f64::NEG_INFINITY;
        let mut t1 = f64::INFINITY;
        for (o, d, lo, hi) in [
            (origin.x, dir.x, self.min.x, self.max.x),
            (origin.y, dir.y, self.min.y, self.max.y),
            (origin.z, dir.z, self.min.z, self.max.z),
        ] {
            if d.abs() < 1e-12 {
                if o < lo || o > hi {
                    return None;
                }
            } else {
                let (mut a, mut b) = ((lo - o) / d, (hi - o) / d);
                if a > b {
                    std::mem::swap(&mut a, &mut b);
                }
                t0 = t0.max(a);
                t1 = t1.min(b);
                if t0 > t1 {
                    return None;
                }
            }
        }
        Some((t0, t1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Vec3, b: Vec3) -> bool {
        (a - b).length() < 1e-9
    }

    #[test]
    fn vector_algebra() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a.dot(b), 32.0);
        assert!(close(a.cross(b), Vec3::new(-3.0, 6.0, -3.0)));
        assert!((Vec3::new(3.0, 4.0, 0.0).length() - 5.0).abs() < 1e-12);
        assert!(close(Vec3::new(10.0, 0.0, 0.0).normalized(), Vec3::new(1.0, 0.0, 0.0)));
        assert!(close(Vec3::ZERO.normalized(), Vec3::ZERO));
        assert!(close(a.lerp(b, 0.5), Vec3::new(2.5, 3.5, 4.5)));
    }

    #[test]
    fn matrix_identity_and_translate() {
        let p = Vec3::new(1.0, 2.0, 3.0);
        assert!(close(Mat4::identity().transform_point(p), p));
        let t = Mat4::translate(Vec3::new(1.0, 0.0, -1.0));
        assert!(close(t.transform_point(p), Vec3::new(2.0, 2.0, 2.0)));
        // directions ignore translation
        assert!(close(t.transform_vector(p), p));
    }

    #[test]
    fn rotation_quarter_turn() {
        let r = Mat4::rotate(Vec3::new(0.0, 0.0, 1.0), std::f64::consts::FRAC_PI_2);
        assert!(close(r.transform_point(Vec3::new(1.0, 0.0, 0.0)), Vec3::new(0.0, 1.0, 0.0)));
    }

    #[test]
    fn matrix_product_order() {
        let t = Mat4::translate(Vec3::new(1.0, 0.0, 0.0));
        let s = Mat4::scale(Vec3::new(2.0, 2.0, 2.0));
        // (t * s) p = t(s(p))
        let p = Vec3::new(1.0, 1.0, 1.0);
        assert!(close(t.mul_mat(&s).transform_point(p), Vec3::new(3.0, 2.0, 2.0)));
        assert!(close(s.mul_mat(&t).transform_point(p), Vec3::new(4.0, 2.0, 2.0)));
    }

    #[test]
    fn look_at_maps_center_to_minus_z() {
        let eye = Vec3::new(0.0, 0.0, 5.0);
        let v = Mat4::look_at(eye, Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0));
        let c = v.transform_point(Vec3::ZERO);
        assert!(close(c, Vec3::new(0.0, 0.0, -5.0)));
        // eye maps to origin
        assert!(close(v.transform_point(eye), Vec3::ZERO));
    }

    #[test]
    fn perspective_depth_ordering() {
        let proj = Mat4::perspective(1.0, 1.0, 0.1, 100.0);
        let near = proj.transform_point(Vec3::new(0.0, 0.0, -0.1));
        let far = proj.transform_point(Vec3::new(0.0, 0.0, -100.0));
        assert!((near.z + 1.0).abs() < 1e-9);
        assert!((far.z - 1.0).abs() < 1e-9);
    }

    #[test]
    fn orthographic_maps_extents() {
        let proj = Mat4::orthographic(2.0, 2.0, 0.1, 10.0);
        let p = proj.transform_point(Vec3::new(4.0, 2.0, -10.0));
        assert!((p.x - 1.0).abs() < 1e-12);
        assert!((p.y - 1.0).abs() < 1e-12);
        assert!((p.z - 1.0).abs() < 1e-12);
        let n = proj.transform_point(Vec3::new(0.0, 0.0, -0.1));
        assert!((n.z + 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_roundtrips() {
        let m = Mat4::translate(Vec3::new(1.0, -2.0, 3.0))
            .mul_mat(&Mat4::rotate(Vec3::new(1.0, 1.0, 0.0), 0.7))
            .mul_mat(&Mat4::scale(Vec3::new(2.0, 3.0, 0.5)));
        let inv = m.inverse().unwrap();
        let id = m.mul_mat(&inv);
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((id.m[i][j] - expect).abs() < 1e-10, "({i},{j}) = {}", id.m[i][j]);
            }
        }
        // perspective matrices invert too
        let p = Mat4::perspective(1.0, 1.3, 0.1, 50.0);
        assert!(p.inverse().is_some());
        // singular matrix
        let z = Mat4::scale(Vec3::new(0.0, 1.0, 1.0));
        assert!(z.inverse().is_none());
    }

    #[test]
    fn bounds_growth_and_queries() {
        let mut b = Bounds::empty();
        assert!(b.is_empty());
        b.include(Vec3::new(0.0, 0.0, 0.0));
        b.include(Vec3::new(2.0, 4.0, 4.0));
        assert!(!b.is_empty());
        assert!(close(b.center(), Vec3::new(1.0, 2.0, 2.0)));
        assert!((b.diagonal() - 6.0).abs() < 1e-12);
        let mut c = Bounds::empty();
        c.include(Vec3::new(-1.0, 0.0, 0.0));
        b.union(&c);
        assert_eq!(b.min.x, -1.0);
    }

    #[test]
    fn ray_box_intersection() {
        let mut b = Bounds::empty();
        b.include(Vec3::ZERO);
        b.include(Vec3::new(1.0, 1.0, 1.0));
        let (t0, t1) = b
            .ray_intersect(Vec3::new(-1.0, 0.5, 0.5), Vec3::new(1.0, 0.0, 0.0))
            .unwrap();
        assert!((t0 - 1.0).abs() < 1e-12);
        assert!((t1 - 2.0).abs() < 1e-12);
        assert!(b
            .ray_intersect(Vec3::new(-1.0, 2.0, 0.5), Vec3::new(1.0, 0.0, 0.0))
            .is_none());
        // parallel ray inside the slab
        assert!(b
            .ray_intersect(Vec3::new(0.5, 0.5, -5.0), Vec3::new(0.0, 0.0, 1.0))
            .is_some());
    }
}
