//! Polygonal data: points, triangles and polylines with per-point
//! attributes — the output type of geometry filters and the input to the
//! rasterizer.

use crate::math::{Bounds, Vec3};

/// Polygonal geometry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PolyData {
    /// Point positions.
    pub points: Vec<Vec3>,
    /// Optional per-point normals (same length as `points` when present).
    pub normals: Option<Vec<Vec3>>,
    /// Optional per-point scalars used for color mapping.
    pub scalars: Option<Vec<f32>>,
    /// Triangles as point-index triples.
    pub triangles: Vec<[u32; 3]>,
    /// Polylines as runs of point indices.
    pub lines: Vec<Vec<u32>>,
}

impl PolyData {
    /// An empty mesh.
    pub fn new() -> PolyData {
        PolyData::default()
    }

    /// Number of points.
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// Adds a point, returning its index.
    pub fn add_point(&mut self, p: Vec3) -> u32 {
        self.points.push(p);
        (self.points.len() - 1) as u32
    }

    /// World-space bounding box over all points.
    pub fn bounds(&self) -> Bounds {
        let mut b = Bounds::empty();
        for &p in &self.points {
            b.include(p);
        }
        b
    }

    /// Scalar range, `None` when scalars are absent or empty.
    pub fn scalar_range(&self) -> Option<(f32, f32)> {
        let s = self.scalars.as_ref()?;
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in s {
            if v.is_nan() {
                continue;
            }
            lo = lo.min(v);
            hi = hi.max(v);
        }
        lo.is_finite().then_some((lo, hi))
    }

    /// Computes area-weighted per-point normals from the triangle mesh.
    pub fn compute_normals(&mut self) {
        let mut normals = vec![Vec3::ZERO; self.points.len()];
        for tri in &self.triangles {
            let [a, b, c] = tri.map(|i| self.points[i as usize]);
            // un-normalized cross product weights by triangle area
            let n = (b - a).cross(c - a);
            for &i in tri {
                normals[i as usize] = normals[i as usize] + n;
            }
        }
        for n in &mut normals {
            *n = n.normalized();
        }
        self.normals = Some(normals);
    }

    /// Appends another mesh (points, cells and attributes), re-indexing.
    /// Attribute arrays present on one side only are padded with defaults.
    pub fn append(&mut self, other: &PolyData) {
        let offset = self.points.len() as u32;
        self.points.extend_from_slice(&other.points);
        match (&mut self.normals, &other.normals) {
            (Some(a), Some(b)) => a.extend_from_slice(b),
            (Some(a), None) => a.extend(std::iter::repeat_n(Vec3::ZERO, other.points.len())),
            (None, Some(b)) => {
                let mut a = vec![Vec3::ZERO; offset as usize];
                a.extend_from_slice(b);
                self.normals = Some(a);
            }
            (None, None) => {}
        }
        match (&mut self.scalars, &other.scalars) {
            (Some(a), Some(b)) => a.extend_from_slice(b),
            (Some(a), None) => a.extend(std::iter::repeat_n(0.0, other.points.len())),
            (None, Some(b)) => {
                let mut a = vec![0.0; offset as usize];
                a.extend_from_slice(b);
                self.scalars = Some(a);
            }
            (None, None) => {}
        }
        self.triangles
            .extend(other.triangles.iter().map(|t| t.map(|i| i + offset)));
        self.lines
            .extend(other.lines.iter().map(|l| l.iter().map(|&i| i + offset).collect::<Vec<_>>()));
    }

    /// Total surface area of the triangle mesh.
    pub fn surface_area(&self) -> f64 {
        self.triangles
            .iter()
            .map(|tri| {
                let [a, b, c] = tri.map(|i| self.points[i as usize]);
                (b - a).cross(c - a).length() * 0.5
            })
            .sum()
    }

    /// True when every triangle edge is shared by exactly two triangles —
    /// i.e. the mesh is a closed (watertight) surface. The isosurface
    /// property tests use this.
    pub fn is_closed_surface(&self) -> bool {
        use std::collections::HashMap;
        if self.triangles.is_empty() {
            return false;
        }
        let mut edges: HashMap<(u32, u32), i32> = HashMap::new();
        for tri in &self.triangles {
            for e in [(tri[0], tri[1]), (tri[1], tri[2]), (tri[2], tri[0])] {
                let key = (e.0.min(e.1), e.0.max(e.1));
                *edges.entry(key).or_insert(0) += 1;
            }
        }
        edges.values().all(|&c| c == 2)
    }

    /// Merges points closer than `tol`, remapping cells. Useful after
    /// per-cell isosurface extraction to make a watertight mesh.
    pub fn merge_points(&mut self, tol: f64) {
        use std::collections::HashMap;
        let inv = 1.0 / tol.max(1e-12);
        let mut map: HashMap<(i64, i64, i64), u32> = HashMap::new();
        let mut remap = vec![0u32; self.points.len()];
        let mut new_points = Vec::new();
        let mut new_normals = self.normals.as_ref().map(|_| Vec::new());
        let mut new_scalars = self.scalars.as_ref().map(|_| Vec::new());
        for (i, &p) in self.points.iter().enumerate() {
            let key = (
                (p.x * inv).round() as i64,
                (p.y * inv).round() as i64,
                (p.z * inv).round() as i64,
            );
            let idx = *map.entry(key).or_insert_with(|| {
                new_points.push(p);
                if let (Some(nn), Some(on)) = (new_normals.as_mut(), self.normals.as_ref()) {
                    nn.push(on[i]);
                }
                if let (Some(ns), Some(os)) = (new_scalars.as_mut(), self.scalars.as_ref()) {
                    ns.push(os[i]);
                }
                (new_points.len() - 1) as u32
            });
            remap[i] = idx;
        }
        self.points = new_points;
        self.normals = new_normals;
        self.scalars = new_scalars;
        for tri in &mut self.triangles {
            *tri = tri.map(|i| remap[i as usize]);
        }
        // drop degenerate triangles created by merging
        self.triangles
            .retain(|t| t[0] != t[1] && t[1] != t[2] && t[0] != t[2]);
        for line in &mut self.lines {
            for i in line.iter_mut() {
                *i = remap[*i as usize];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unit right triangle in the z=0 plane.
    fn tri() -> PolyData {
        let mut pd = PolyData::new();
        let a = pd.add_point(Vec3::new(0.0, 0.0, 0.0));
        let b = pd.add_point(Vec3::new(1.0, 0.0, 0.0));
        let c = pd.add_point(Vec3::new(0.0, 1.0, 0.0));
        pd.triangles.push([a, b, c]);
        pd
    }

    /// A tetrahedron (closed surface).
    fn tetra() -> PolyData {
        let mut pd = PolyData::new();
        let p = [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ];
        for &q in &p {
            pd.add_point(q);
        }
        pd.triangles = vec![[0, 2, 1], [0, 1, 3], [1, 2, 3], [0, 3, 2]];
        pd
    }

    #[test]
    fn area_and_bounds() {
        let pd = tri();
        assert!((pd.surface_area() - 0.5).abs() < 1e-12);
        let b = pd.bounds();
        assert_eq!(b.min, Vec3::ZERO);
        assert_eq!(b.max, Vec3::new(1.0, 1.0, 0.0));
    }

    #[test]
    fn normals_point_consistently() {
        let mut pd = tri();
        pd.compute_normals();
        let n = pd.normals.as_ref().unwrap();
        for v in n {
            assert!((v.z - 1.0).abs() < 1e-12, "{v:?}");
        }
    }

    #[test]
    fn closed_surface_detection() {
        assert!(!tri().is_closed_surface());
        assert!(tetra().is_closed_surface());
        assert!(!PolyData::new().is_closed_surface());
    }

    #[test]
    fn append_reindexes_cells() {
        let mut a = tri();
        let b = tri();
        a.append(&b);
        assert_eq!(a.points.len(), 6);
        assert_eq!(a.triangles.len(), 2);
        assert_eq!(a.triangles[1], [3, 4, 5]);
    }

    #[test]
    fn append_pads_missing_attributes() {
        let mut a = tri();
        a.scalars = Some(vec![1.0, 2.0, 3.0]);
        let mut b = tri();
        b.normals = Some(vec![Vec3::new(0.0, 0.0, 1.0); 3]);
        a.append(&b);
        assert_eq!(a.scalars.as_ref().unwrap().len(), 6);
        assert_eq!(a.scalars.as_ref().unwrap()[4], 0.0);
        assert_eq!(a.normals.as_ref().unwrap().len(), 6);
        assert_eq!(a.normals.as_ref().unwrap()[0], Vec3::ZERO);
    }

    #[test]
    fn scalar_range_skips_nan() {
        let mut pd = tri();
        pd.scalars = Some(vec![1.0, f32::NAN, 3.0]);
        assert_eq!(pd.scalar_range(), Some((1.0, 3.0)));
        pd.scalars = None;
        assert_eq!(pd.scalar_range(), None);
    }

    #[test]
    fn merge_points_welds_duplicates() {
        // two triangles sharing an edge, with the shared points duplicated
        let mut pd = PolyData::new();
        let p = [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            // duplicates of points 1 and 2
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(1.0, 1.0, 0.0),
        ];
        for &q in &p {
            pd.add_point(q);
        }
        pd.triangles = vec![[0, 1, 2], [3, 5, 4]];
        pd.merge_points(1e-6);
        assert_eq!(pd.points.len(), 4);
        assert_eq!(pd.triangles.len(), 2);
        // shared edge now uses the same indices
        let t1 = pd.triangles[1];
        assert!(t1.contains(&1) && t1.contains(&2));
    }

    #[test]
    fn merge_points_drops_degenerate_triangles() {
        let mut pd = PolyData::new();
        pd.add_point(Vec3::ZERO);
        pd.add_point(Vec3::new(1e-9, 0.0, 0.0)); // will weld with point 0
        pd.add_point(Vec3::new(1.0, 0.0, 0.0));
        pd.triangles = vec![[0, 1, 2]];
        pd.merge_points(1e-6);
        assert!(pd.triangles.is_empty());
    }

    #[test]
    fn lines_survive_append_and_merge() {
        let mut pd = PolyData::new();
        pd.add_point(Vec3::ZERO);
        pd.add_point(Vec3::new(1.0, 0.0, 0.0));
        pd.lines.push(vec![0, 1]);
        let mut other = PolyData::new();
        other.add_point(Vec3::new(2.0, 0.0, 0.0));
        other.add_point(Vec3::new(3.0, 0.0, 0.0));
        other.lines.push(vec![0, 1]);
        pd.append(&other);
        assert_eq!(pd.lines.len(), 2);
        assert_eq!(pd.lines[1], vec![2, 3]);
    }
}
