//! Tile-binned rasterization: the sort-middle core of the renderer.
//!
//! A cheap bucketing pass assigns each screen-space primitive to the fixed
//! 32×32 [`TileGrid`] tiles its bounding box overlaps; rayon then rasterizes
//! tile-row bands in parallel and each band walks only the *occupied* tiles
//! it owns, visiting only the primitives binned there. Contrast with the old
//! row-band engine (preserved in `scanline_ref`), where every band scanned
//! every primitive and point sprites/lines re-walked their full extent once
//! per band.
//!
//! Bit-identity with the scanline engine is a hard invariant, relied on by
//! the incremental-redraw cache and the hyperwall delta transport: the
//! per-pixel kernels below are the scanline kernels verbatim — identical
//! expression trees, identical fold/clamp semantics — with their iteration
//! domains intersected with the tile rectangle. Since every pixel belongs
//! to exactly one tile, and primitives are replayed per tile in list order
//! (triangles, then lines, then points), each pixel sees exactly the plot
//! sequence the scanline engine would have issued, at any thread count.
//!
//! This file is on the dv3dlint `indexing_hot_paths` list: no bracket
//! indexing — slice-pattern destructuring, iterators and `.get()` only.

use crate::color::Color;
use crate::render::framebuffer::{Framebuffer, TileGrid};
use crate::render::rasterizer::{PrimitiveList, RasterLine, RasterPoint, RasterTri};
use rayon::prelude::*;

/// Per-tile primitive *data* in CSR (offsets + flat payload) layout, one
/// class per array pair — a sort-middle command buffer. A counting sort
/// builds each pair in two passes over the primitives — count,
/// prefix-sum, fill — so a frame costs a handful of exact-sized
/// allocations instead of three growable `Vec`s per tile. Bins carry
/// copies of the primitives rather than indices: a tile then rasterizes
/// from one contiguous slice instead of chasing per-index pointers into
/// the frame-wide primitive arrays, which on multi-actor scenes is the
/// difference between streaming reads and an L1 miss per primitive
/// visit. Within a tile, entries stay in primitive-list order (the fill
/// pass walks primitives in order), which the draw-order invariant
/// depends on.
#[derive(Debug, Default)]
pub(crate) struct TileBins {
    tiles: usize,
    tri_off: Vec<u32>,
    tri_items: Vec<RasterTri>,
    line_off: Vec<u32>,
    line_items: Vec<BinnedLine>,
    point_off: Vec<u32>,
    point_items: Vec<RasterPoint>,
}

/// A binned line entry: the index of the line in the frame's
/// `PrimitiveList` plus the conservative step-index range covering this
/// tile. The range falls out of the slab/column t-intervals the binning
/// pass already computes, so storing it here lets the kernel start
/// walking immediately instead of re-deriving the range (two interval
/// solves, i.e. divisions) per tile entry. Unlike triangles and points,
/// lines bin by index rather than by copy: a zoomed full-height segment
/// crosses a whole tile column, and copying an 80-byte payload per
/// crossed tile costs more in binning memory traffic than the gather
/// indirection saves in the kernel.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct BinnedLine {
    pub(crate) idx: u32,
    s0: u32,
    s1: u32,
}

impl TileBins {
    pub(crate) fn len(&self) -> usize {
        self.tiles
    }

    fn class<'a, T>(off: &'a [u32], items: &'a [T], t: usize) -> &'a [T] {
        let (Some(&a), Some(&b)) = (off.get(t), off.get(t + 1)) else {
            return &[];
        };
        items.get(a as usize..b as usize).unwrap_or(&[])
    }

    pub(crate) fn tris(&self, t: usize) -> &[RasterTri] {
        Self::class(&self.tri_off, &self.tri_items, t)
    }

    pub(crate) fn lines(&self, t: usize) -> &[BinnedLine] {
        Self::class(&self.line_off, &self.line_items, t)
    }

    pub(crate) fn points(&self, t: usize) -> &[RasterPoint] {
        Self::class(&self.point_off, &self.point_items, t)
    }

    fn is_empty(&self, t: usize) -> bool {
        self.tris(t).is_empty() && self.lines(t).is_empty() && self.points(t).is_empty()
    }
}

/// Counting-sort one primitive class into CSR form. `each` replays the
/// class's (payload, conservative bbox) stream; it runs twice — once to
/// count entries per tile, once to scatter the payload copies through
/// per-tile write cursors.
fn csr_bin<T, F>(grid: &TileGrid, mut each: F) -> (Vec<u32>, Vec<T>)
where
    T: Copy + Default,
    F: FnMut(&mut dyn FnMut(T, f64, f64, f64, f64)),
{
    let n = grid.len();
    let mut off = vec![0u32; n + 1];
    each(&mut |_prim, x0, x1, y0, y1| {
        grid.for_tiles_over(x0, x1, y0, y1, |idx| {
            if let Some(c) = off.get_mut(idx + 1) {
                *c += 1;
            }
        });
    });
    let mut sum = 0u32;
    for c in off.iter_mut() {
        sum += *c;
        *c = sum;
    }
    let total = off.last().copied().unwrap_or(0) as usize;
    let mut items = vec![T::default(); total];
    let mut cursor: Vec<u32> = off.get(..n).map(<[u32]>::to_vec).unwrap_or_default();
    each(&mut |prim, x0, x1, y0, y1| {
        grid.for_tiles_over(x0, x1, y0, y1, |idx| {
            if let Some(cur) = cursor.get_mut(idx) {
                if let Some(slot) = items.get_mut(*cur as usize) {
                    *slot = prim;
                }
                *cur += 1;
            }
        });
    });
    (off, items)
}

/// Counting-sort pre-resolved `(tile, payload)` pairs into CSR form —
/// the fast path for classes whose binner already knows the single tile
/// each entry lands in. Entries stay in push order within a tile, which
/// the draw-order invariant depends on.
fn csr_pairs<T: Copy + Default>(n: usize, pairs: &[(u32, T)]) -> (Vec<u32>, Vec<T>) {
    let mut off = vec![0u32; n + 1];
    for (idx, _) in pairs {
        if let Some(c) = off.get_mut(*idx as usize + 1) {
            *c += 1;
        }
    }
    let mut sum = 0u32;
    for c in off.iter_mut() {
        sum += *c;
        *c = sum;
    }
    let total = off.last().copied().unwrap_or(0) as usize;
    let mut items = vec![T::default(); total];
    let mut cursor: Vec<u32> = off.get(..n).map(<[u32]>::to_vec).unwrap_or_default();
    for (idx, prim) in pairs {
        if let Some(cur) = cursor.get_mut(*idx as usize) {
            if let Some(slot) = items.get_mut(*cur as usize) {
                *slot = *prim;
            }
            *cur += 1;
        }
    }
    (off, items)
}

/// Bins every primitive into the tiles its conservative screen bbox
/// overlaps. Over-binning is harmless (the kernels re-derive exact
/// bounds); under-binning would drop pixels, so boxes are expanded to
/// cover rounding (`line`) and sprite radius (`point`).
pub(crate) fn bin_primitives(prims: &PrimitiveList, grid: &TileGrid) -> TileBins {
    let (tri_off, tri_items) = csr_bin(grid, |emit| {
        for t in prims.tris.iter() {
            let [ax, bx, cx] = t.sx;
            let [ay, by, cy] = t.sy;
            emit(
                *t,
                min3(ax, bx, cx).floor(),
                max3(ax, bx, cx).ceil(),
                min3(ay, by, cy).floor(),
                max3(ay, by, cy).ceil(),
            );
        }
    });
    // The line traversal (slab/column walk with interval solves) is the
    // expensive part of binning, and each slab/column pair targets
    // exactly one tile — so rather than replaying the traversal through
    // `csr_bin`'s bbox path twice, walk the geometry once into a flat
    // (tile, entry) scratch list and counting-sort that.
    let mut line_scratch: Vec<(u32, BinnedLine)> = Vec::new();
    {
        let ts = grid.tile() as f64;
        let (sw, sh) = (grid.width() as f64, grid.height() as f64);
        for (li, l) in prims.lines.iter().enumerate() {
            let (ax, ay, _) = l.a;
            let (bx, by, _) = l.b;
            let dx = bx - ax;
            let dy = by - ay;
            // Same formula as the kernel, so stored step indices agree.
            let steps = dx.abs().max(dy.abs()).ceil().max(1.0);
            // Walk tile-row slabs, then tile columns within the slab's
            // x-extent, rather than the whole bbox: a diagonal segment's
            // bbox covers rows×cols tiles but the segment only passes
            // through ~rows+cols of them, and every spurious tile costs
            // kernel setup. Both coordinates are monotone in t, so each
            // slab/column pair pins an exact t-interval; its intersection
            // becomes the entry's stored step range. The ±0.5px slack in
            // `slab_t` covers nearest-pixel rounding on both axes.
            let (y0, y1) = (ay.min(by).floor() - 1.0, ay.max(by).ceil() + 1.0);
            let inv_dy = if dy.abs() < 1e-12 { 0.0 } else { 1.0 / dy };
            let inv_dx = if dx.abs() < 1e-12 { 0.0 } else { 1.0 / dx };
            // Clamp the slab walk to the screen: off-screen slabs can
            // never produce a visible entry, and a zoomed-in camera can
            // leave most of a segment's extent outside the viewport.
            let y_end = y1.min(sh - 1.0);
            let mut ry0 = ((y0 / ts).floor() * ts).max(0.0);
            while ry0 <= y_end {
                let ry1 = ry0 + ts - 1.0;
                let (tya, tyb) = slab_t(ay, inv_dy, ry0, ry1);
                if tyb >= tya {
                    let xa = ax + dx * tya;
                    let xb = ax + dx * tyb;
                    let (xlo, xhi) = (xa.min(xb).floor() - 1.0, xa.max(xb).ceil() + 1.0);
                    let x_end = xhi.min(sw - 1.0);
                    let mut cx0 = ((xlo / ts).floor() * ts).max(0.0);
                    while cx0 <= x_end {
                        let cx1 = cx0 + ts - 1.0;
                        let (txa, txb) = slab_t(ax, inv_dx, cx0, cx1);
                        let (ta, tb) = (tya.max(txa), tyb.min(txb));
                        // The entry's screen extent is the slab/column
                        // intersection clipped to the line bbox; it maps
                        // to one tile (or to none, when off-screen —
                        // mirroring `for_tiles_over`'s clamp semantics).
                        let (bx0, bx1) = (cx0.max(xlo), cx1.min(xhi));
                        let (by0, by1) = (ry0.max(y0), ry1.min(y1));
                        let visible = bx1 >= 0.0
                            && by1 >= 0.0
                            && bx0 <= sw - 1.0
                            && by0 <= sh - 1.0
                            && bx0.max(0.0) <= bx1.min(sw - 1.0)
                            && by0.max(0.0) <= by1.min(sh - 1.0);
                        if tb >= ta && visible {
                            // floor/ceil give ≤1 step of slack each side
                            // on top of the ±0.5px interval slack; the
                            // kernel's pre-reject discards the excess.
                            let s0 = (ta * steps).floor().max(0.0);
                            let s1 = (tb * steps).ceil().min(steps);
                            let tc = bx0.max(0.0) as usize / grid.tile();
                            let tr = by0.max(0.0) as usize / grid.tile();
                            line_scratch.push((
                                grid.index(tc, tr) as u32,
                                BinnedLine {
                                    idx: li as u32,
                                    s0: s0 as u32,
                                    s1: s1 as u32,
                                },
                            ));
                        }
                        cx0 += ts;
                    }
                }
                ry0 += ts;
            }
        }
    }
    let (line_off, line_items) = csr_pairs(grid.len(), &line_scratch);
    let (point_off, point_items) = csr_bin(grid, |emit| {
        for p in prims.points.iter() {
            if !(-1.001..=1.001).contains(&p.z) {
                continue; // the kernel rejects the whole sprite anyway
            }
            let r = p.radius.max(0.5) as f64;
            emit(
                *p,
                (p.x - r).floor(),
                (p.x + r).ceil(),
                (p.y - r).floor(),
                (p.y + r).ceil(),
            );
        }
    });
    TileBins {
        tiles: grid.len(),
        tri_off,
        tri_items,
        line_off,
        line_items,
        point_off,
        point_items,
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_color(h: u64, c: Color) -> u64 {
    let h = fnv_bytes(h, &c.r.to_bits().to_le_bytes());
    let h = fnv_bytes(h, &c.g.to_bits().to_le_bytes());
    let h = fnv_bytes(h, &c.b.to_bits().to_le_bytes());
    fnv_bytes(h, &c.a.to_bits().to_le_bytes())
}

/// FNV-1a content hash of each tile's binned primitive *data* (not
/// indices), in draw order, seeded with `salt`. Two frames whose tile
/// hashes match bin the same primitive bytes in the same order, so —
/// rasterization being deterministic — the tile's pixels are identical
/// and a cached copy can be reused.
pub(crate) fn tile_hashes(prims: &PrimitiveList, bins: &TileBins, salt: u64) -> Vec<u64> {
    (0..bins.len())
        .map(|tile| {
            let mut h = fnv_bytes(FNV_OFFSET, &salt.to_le_bytes());
            for t in bins.tris(tile) {
                h = fnv_bytes(h, &[1]);
                for v in t.sx.iter().chain(t.sy.iter()) {
                    h = fnv_bytes(h, &v.to_bits().to_le_bytes());
                }
                for z in t.z.iter() {
                    h = fnv_bytes(h, &z.to_bits().to_le_bytes());
                }
                for c in t.color.iter() {
                    h = fnv_color(h, *c);
                }
            }
            for b in bins.lines(tile) {
                let Some(l) = prims.lines.get(b.idx as usize) else {
                    continue;
                };
                // hash the payload, not the index: two frames that bin the
                // same line bytes here must hash alike wherever the line
                // sits in its frame's primitive list
                h = fnv_bytes(h, &[2]);
                let (ax, ay, az) = l.a;
                let (bx, by, bz) = l.b;
                for v in [ax, ay, bx, by] {
                    h = fnv_bytes(h, &v.to_bits().to_le_bytes());
                }
                for z in [az, bz] {
                    h = fnv_bytes(h, &z.to_bits().to_le_bytes());
                }
                h = fnv_color(h, l.color_a);
                h = fnv_color(h, l.color_b);
            }
            for p in bins.points(tile) {
                h = fnv_bytes(h, &[3]);
                h = fnv_bytes(h, &p.x.to_bits().to_le_bytes());
                h = fnv_bytes(h, &p.y.to_bits().to_le_bytes());
                h = fnv_bytes(h, &p.z.to_bits().to_le_bytes());
                h = fnv_bytes(h, &p.radius.to_bits().to_le_bytes());
                h = fnv_color(h, p.color);
            }
            h
        })
        .collect()
}

/// Rasterizes binned primitives: tile-row bands in parallel, occupied
/// tiles serially within each band (each tile's pixels belong to exactly
/// one band, so no locking). When `dirty` is given, tiles marked `false`
/// are skipped entirely — the incremental-redraw fast path.
pub(crate) fn rasterize_bins(
    prims: &PrimitiveList,
    bins: &TileBins,
    grid: &TileGrid,
    dirty: Option<&[bool]>,
    fb: &mut Framebuffer,
) {
    let cols = grid.cols();
    let mut bands = fb.tile_bands(grid);
    bands.par_iter_mut().enumerate().for_each(|(ty, band)| {
        for tx in 0..cols {
            let idx = grid.index(tx, ty);
            let skip = dirty.is_some_and(|d| !d.get(idx).copied().unwrap_or(true));
            if skip || bins.is_empty(idx) {
                continue;
            }
            let rect = grid.rect(idx);
            let mut view = TileView {
                x0: rect.x0,
                x1: rect.x0 + rect.w,
                y0: band.y0,
                rows: band.rows,
                width: band.width,
                colors: &mut *band.colors,
                depths: &mut *band.depths,
            };
            for t in bins.tris(idx) {
                view.triangle(t);
            }
            for b in bins.lines(idx) {
                if let Some(l) = prims.lines.get(b.idx as usize) {
                    view.line(l, b.s0 as usize, b.s1 as usize);
                }
            }
            for p in bins.points(idx) {
                view.point(p);
            }
        }
    });
}

/// Replicates the scanline reference's `fold(INFINITY, f64::min)` /
/// `fold(NEG_INFINITY, f64::max)` exactly (including NaN behaviour).
fn min3(a: f64, b: f64, c: f64) -> f64 {
    f64::INFINITY.min(a).min(b).min(c)
}

fn max3(a: f64, b: f64, c: f64) -> f64 {
    f64::NEG_INFINITY.max(a).max(b).max(c)
}

/// One tile of one band: the x-range `[x0, x1)` of the tile plus the
/// rows the owning band covers. Holds the pixel slices directly (not a
/// `&mut BandView` indirection) so the plot path compiles to the same
/// register-resident loads the scanline `Band` gets. The kernels below
/// are the scanline kernels with their loops clipped to this rectangle.
struct TileView<'a> {
    x0: usize,
    x1: usize,
    y0: usize,
    rows: usize,
    width: usize,
    colors: &'a mut [Color],
    depths: &'a mut [f32],
}

impl TileView<'_> {
    #[inline]
    fn plot(&mut self, x: usize, y: usize, z: f32, c: Color) {
        if y < self.y0 || y >= self.y0 + self.rows || x < self.x0 || x >= self.x1 {
            return;
        }
        let i = (y - self.y0) * self.width + x;
        let (Some(d), Some(px)) = (self.depths.get_mut(i), self.colors.get_mut(i)) else {
            return;
        };
        if z < *d {
            if c.a >= 0.999 {
                *px = c;
                *d = z;
            } else if c.a > 0.001 {
                *px = Color { a: 1.0, ..c }.lerp(*px, 1.0 - c.a);
            }
        }
    }

    fn triangle(&mut self, t: &RasterTri) {
        let [ax, bx, cx] = t.sx;
        let [ay, by, cy] = t.sy;
        let [az, bz, cz] = t.z;
        let [col_a, col_b, col_c] = t.color;
        let band_y0 = self.y0;
        let band_y1 = band_y0 + self.rows - 1;
        let ymin = min3(ay, by, cy).floor().max(band_y0 as f64);
        let ymax = max3(ay, by, cy).ceil().min(band_y1 as f64);
        if ymin > ymax {
            return;
        }
        let xmin = min3(ax, bx, cx).floor().max(self.x0 as f64);
        let xmax = max3(ax, bx, cx).ceil().min((self.x1 - 1) as f64);
        if xmin > xmax {
            return;
        }
        // signed area; reject degenerate
        let area = (bx - ax) * (cy - ay) - (cx - ax) * (by - ay);
        if area.abs() < 1e-12 {
            return;
        }
        let inv_area = 1.0 / area;
        for y in (ymin as usize)..=(ymax as usize) {
            let py = y as f64;
            for x in (xmin as usize)..=(xmax as usize) {
                let px = x as f64;
                // barycentric coordinates
                let w0 = ((bx - px) * (cy - py) - (cx - px) * (by - py)) * inv_area;
                let w1 = ((cx - px) * (ay - py) - (ax - px) * (cy - py)) * inv_area;
                let w2 = 1.0 - w0 - w1;
                if w0 < -1e-9 || w1 < -1e-9 || w2 < -1e-9 {
                    continue;
                }
                let z = (w0 * az as f64 + w1 * bz as f64 + w2 * cz as f64) as f32;
                if !(-1.001..=1.001).contains(&z) {
                    continue; // outside clip volume
                }
                let c = Color {
                    r: (w0 as f32) * col_a.r + (w1 as f32) * col_b.r + (w2 as f32) * col_c.r,
                    g: (w0 as f32) * col_a.g + (w1 as f32) * col_b.g + (w2 as f32) * col_c.g,
                    b: (w0 as f32) * col_a.b + (w1 as f32) * col_b.b + (w2 as f32) * col_c.b,
                    a: (w0 as f32) * col_a.a + (w1 as f32) * col_b.a + (w2 as f32) * col_c.a,
                };
                self.plot(x, y, z, c);
            }
        }
    }

    fn line(&mut self, l: &RasterLine, bs0: usize, bs1: usize) {
        let (ax, ay, az) = l.a;
        let (bx, by, bz) = l.b;
        let dx = bx - ax;
        let dy = by - ay;
        let steps = dx.abs().max(dy.abs()).ceil().max(1.0);
        let n = steps as usize;
        // Conservative step range for this tile, precomputed at bin
        // time; each visited step runs the scanline arithmetic verbatim
        // (t derives from the absolute step index, so shared pixels get
        // bit-identical samples) and the pre-reject below discards the
        // slack steps before any interpolation.
        let s0 = bs0.min(n);
        let s1 = bs1.min(n);
        for s in s0..=s1 {
            let t = s as f64 / steps;
            let x = ax + dx * t;
            let y = ay + dy * t;
            if x < 0.0 || y < 0.0 {
                continue;
            }
            // Pre-reject steps that round outside this tile before the
            // z/color interpolation: the walk range is conservative, so
            // edge steps land out of rect and their interpolants would be
            // discarded by `plot` anyway. Plotted pixels are untouched —
            // in-rect steps run the scanline arithmetic verbatim below.
            let (xi, yi) = (x.round() as usize, y.round() as usize);
            if yi < self.y0 || yi >= self.y0 + self.rows || xi < self.x0 || xi >= self.x1 {
                continue;
            }
            let z = az + (bz - az) * t as f32;
            if !(-1.001..=1.001).contains(&z) {
                continue;
            }
            // nudge lines toward the viewer so they win ties against the
            // coplanar surfaces they annotate
            let c = l.color_a.lerp(l.color_b, t as f32);
            self.plot(xi, yi, z - 2e-4, c);
        }
    }

    fn point(&mut self, p: &RasterPoint) {
        if !(-1.001..=1.001).contains(&p.z) {
            return;
        }
        let r = p.radius.max(0.5) as f64;
        let (x0, x1) = ((p.x - r).floor().max(0.0), (p.x + r).ceil());
        let (y0, y1) = ((p.y - r).floor().max(0.0), (p.y + r).ceil());
        // clip the sprite bbox to this tile; the d² test is unchanged
        let xs = x0.max(self.x0 as f64);
        let xe = x1.min((self.x1 - 1) as f64);
        let ys = y0.max(self.y0 as f64);
        let ye = y1.min((self.y0 + self.rows - 1) as f64);
        for y in (ys as usize)..=(ye as usize) {
            for x in (xs as usize)..=(xe as usize) {
                let d2 = (x as f64 - p.x).powi(2) + (y as f64 - p.y).powi(2);
                if d2 <= r * r {
                    self.plot(x, y, p.z, p.color);
                }
            }
        }
    }
}

/// t-interval over which `p0 + d·t` lies within `[lo - 0.5, hi + 0.5]`
/// (the half-pixel slack is exactly what nearest-pixel rounding needs),
/// intersected with `[0, 1]`. `inv_d` is the hoisted reciprocal of the
/// coordinate delta, or `0.0` for a (near-)constant coordinate — there
/// the interval is the full line, since the caller's slab/column loops
/// already bound which slabs a constant coordinate visits.
fn slab_t(p0: f64, inv_d: f64, lo: f64, hi: f64) -> (f64, f64) {
    if inv_d == 0.0 {
        return if p0 >= lo - 0.5 && p0 <= hi + 0.5 { (0.0, 1.0) } else { (1.0, 0.0) };
    }
    let u = (lo - 0.5 - p0) * inv_d;
    let v = (hi + 0.5 - p0) * inv_d;
    (u.min(v).max(0.0), u.max(v).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri(sx: [f64; 3], sy: [f64; 3]) -> RasterTri {
        RasterTri { sx, sy, z: [0.0; 3], color: [Color::WHITE; 3] }
    }

    #[test]
    fn binning_hits_overlapping_tiles_only() {
        let grid = TileGrid::new(64, 64, 32);
        let mut prims = PrimitiveList::default();
        prims.tris.push(tri([2.0, 10.0, 5.0], [2.0, 10.0, 9.0])); // tile 0 only
        prims.tris.push(tri([20.0, 44.0, 30.0], [2.0, 40.0, 9.0])); // spans all four
        let bins = bin_primitives(&prims, &grid);
        assert_eq!(bins.len(), 4);
        // tile 0 holds copies of both triangles, in draw order
        let sx0: Vec<f64> = bins.tris(0).iter().map(|t| { let [a, _, _] = t.sx; a }).collect();
        assert_eq!(sx0, vec![2.0, 20.0]);
        for t in 1..4 {
            let sx: Vec<f64> = bins.tris(t).iter().map(|t| { let [a, _, _] = t.sx; a }).collect();
            assert_eq!(sx, vec![20.0], "only the spanning triangle lands in tile {t}");
        }
    }

    #[test]
    fn line_binning_covers_rounding_slack() {
        let grid = TileGrid::new(64, 64, 32);
        let mut prims = PrimitiveList::default();
        // horizontal line at y = 31.6: every pixel rounds to y = 32, the
        // bottom tile row — binning must cover that row, and the ±0.5px
        // slack must NOT leak it into the top row (whose pixels it can
        // never touch)
        prims.lines.push(RasterLine {
            a: (0.0, 31.6, 0.0),
            b: (63.0, 31.6, 0.0),
            color_a: Color::WHITE,
            color_b: Color::WHITE,
        });
        let bins = bin_primitives(&prims, &grid);
        assert_eq!(bins.lines(grid.index(0, 1)).len(), 1);
        assert_eq!(bins.lines(grid.index(1, 1)).len(), 1);
        assert!(bins.lines(grid.index(0, 0)).is_empty());
        assert!(bins.lines(grid.index(1, 0)).is_empty());
    }

    #[test]
    fn point_z_clip_skips_binning() {
        let grid = TileGrid::new(64, 64, 32);
        let mut prims = PrimitiveList::default();
        prims.points.push(RasterPoint {
            x: 5.0,
            y: 5.0,
            z: 2.0, // outside clip volume
            radius: 3.0,
            color: Color::WHITE,
        });
        let bins = bin_primitives(&prims, &grid);
        assert!((0..bins.len()).all(|t| bins.points(t).is_empty()));
    }

    #[test]
    fn hashes_track_content_not_indices() {
        let grid = TileGrid::new(32, 32, 32);
        let mut a = PrimitiveList::default();
        a.tris.push(tri([1.0, 5.0, 3.0], [1.0, 5.0, 4.0]));
        let ha = tile_hashes(&a, &bin_primitives(&a, &grid), 7);
        // same content at a different index position hashes the same
        let mut b = PrimitiveList::default();
        b.tris.push(tri([1.0, 5.0, 3.0], [1.0, 5.0, 4.0]));
        let hb = tile_hashes(&b, &bin_primitives(&b, &grid), 7);
        assert_eq!(ha, hb);
        // different salt or content changes the hash
        assert_ne!(ha, tile_hashes(&a, &bin_primitives(&a, &grid), 8));
        let mut c = PrimitiveList::default();
        c.tris.push(tri([1.0, 5.0, 3.0], [1.0, 5.0, 4.5]));
        assert_ne!(ha, tile_hashes(&c, &bin_primitives(&c, &grid), 7));
    }

    #[test]
    fn slab_t_brackets_the_slab() {
        // p(t) = 0 + 64·t: the slab [16, 31] is hit for t in [16/64, 31/64]
        let (ta, tb) = slab_t(0.0, 1.0 / 64.0, 16.0, 31.0);
        assert!(ta < 16.0 / 64.0 && tb > 31.0 / 64.0);
        // constant coordinate: full interval (the caller's loops bound it)
        assert_eq!(slab_t(20.0, 0.0, 16.0, 31.0), (0.0, 1.0));
        // interval is clamped to [0, 1]
        let (ta, tb) = slab_t(0.0, 1.0 / 8.0, -100.0, 200.0);
        assert_eq!((ta, tb), (0.0, 1.0));
    }

    #[test]
    fn binned_line_step_range_covers_tile_pixels() {
        // a diagonal across a 64×64 screen: each tile's stored range must
        // include every step whose rounded pixel lands in that tile
        let grid = TileGrid::new(64, 64, 32);
        let mut prims = PrimitiveList::default();
        let l = RasterLine {
            a: (3.0, 7.0, 0.0),
            b: (61.0, 58.0, 0.0),
            color_a: Color::WHITE,
            color_b: Color::WHITE,
        };
        prims.lines.push(l);
        let bins = bin_primitives(&prims, &grid);
        let steps = (61.0f64 - 3.0).max(58.0 - 7.0).ceil();
        for s in 0..=(steps as usize) {
            let t = s as f64 / steps;
            let x = (3.0 + 58.0 * t).round() as usize;
            let y = (7.0 + 51.0 * t).round() as usize;
            let idx = grid.index(x / 32, y / 32);
            assert!(
                bins.lines(idx).iter().any(|b| (b.s0 as usize..=b.s1 as usize).contains(&s)),
                "step {s} (pixel {x},{y}) missing from tile {idx}"
            );
        }
    }
}
