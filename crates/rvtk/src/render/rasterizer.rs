//! Tile-binned software rasterization: triangles (Gouraud-shaded,
//! z-buffered), depth-interpolated lines and point sprites.
//!
//! Geometry is first transformed and shaded into screen-space primitive
//! lists; a bucketing pass then bins each primitive into the 32×32 screen
//! tiles its bbox overlaps, and rayon rasterizes tile-row bands in parallel
//! — each tile owns its pixels, so no locking is needed, and a tile visits
//! only the primitives binned into it (see `tile.rs`). Output is
//! bit-identical to the historic row-band engine kept in `scanline_ref.rs`.

use crate::color::Color;
use crate::math::{Mat4, Vec3};
use crate::render::actor::{Actor, Representation};
use crate::render::framebuffer::{Framebuffer, TileGrid};
use crate::render::light::Light;
use crate::render::tile;

/// A transformed, shaded triangle ready to rasterize.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RasterTri {
    /// Screen x/y per vertex.
    pub sx: [f64; 3],
    pub sy: [f64; 3],
    /// NDC depth per vertex.
    pub z: [f32; 3],
    /// Shaded vertex colors.
    pub color: [Color; 3],
}

/// A screen-space line segment.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RasterLine {
    pub a: (f64, f64, f32),
    pub b: (f64, f64, f32),
    pub color_a: Color,
    pub color_b: Color,
}

/// A screen-space point sprite.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RasterPoint {
    pub x: f64,
    pub y: f64,
    pub z: f32,
    pub radius: f32,
    pub color: Color,
}

/// All primitives of a frame, in screen space.
#[derive(Debug, Default)]
pub(crate) struct PrimitiveList {
    pub tris: Vec<RasterTri>,
    pub lines: Vec<RasterLine>,
    pub points: Vec<RasterPoint>,
}

/// Transforms and shades one actor into screen-space primitives.
pub(crate) fn build_primitives(
    actor: &Actor,
    view_proj: &Mat4,
    lights: &[Light],
    width: usize,
    height: usize,
    out: &mut PrimitiveList,
) {
    if !actor.visible || actor.property.opacity <= 0.0 {
        return;
    }
    let pd = &actor.poly_data;
    let mvp = view_proj.mul_mat(&actor.transform);
    let (w, h) = (width as f64, height as f64);

    // Transform all points once.
    let mut screen: Vec<Option<(f64, f64, f32)>> = Vec::with_capacity(pd.points.len());
    for &p in &pd.points {
        let (clip, cw) = mvp.transform_point4(p);
        if cw <= 1e-9 {
            screen.push(None); // behind the camera
            continue;
        }
        let ndc = clip / cw;
        if !(ndc.x.is_finite() && ndc.y.is_finite() && ndc.z.is_finite()) {
            screen.push(None);
            continue;
        }
        let sx = (ndc.x + 1.0) / 2.0 * (w - 1.0);
        let sy = (1.0 - ndc.y) / 2.0 * (h - 1.0);
        screen.push(Some((sx, sy, ndc.z as f32)));
    }

    // Shade all points once.
    let prop = &actor.property;
    let base_alpha = prop.opacity;
    let vertex_color = |i: usize| -> Color {
        let mut c = match (&prop.lookup_table, &pd.scalars) {
            (Some(lut), Some(s)) => lut.map(s[i]),
            _ => prop.color,
        };
        c.a *= base_alpha;
        if prop.lighting {
            if let Some(normals) = &pd.normals {
                let n = actor.transform.transform_vector(normals[i]);
                let mut diffuse = 0.0f32;
                for light in lights {
                    diffuse += light.diffuse(n);
                }
                let k = (prop.ambient + (1.0 - prop.ambient) * diffuse.min(1.0)).min(1.0);
                c = c.scaled(k);
            }
        }
        c.clamped()
    };
    let colors: Vec<Color> = (0..pd.points.len()).map(vertex_color).collect();

    match prop.representation {
        Representation::Surface => {
            for tri in &pd.triangles {
                let [a, b, c] = tri.map(|i| i as usize);
                if let (Some(pa), Some(pb), Some(pc)) = (screen[a], screen[b], screen[c]) {
                    out.tris.push(RasterTri {
                        sx: [pa.0, pb.0, pc.0],
                        sy: [pa.1, pb.1, pc.1],
                        z: [pa.2, pb.2, pc.2],
                        color: [colors[a], colors[b], colors[c]],
                    });
                }
            }
            push_polylines(pd, &screen, &colors, out);
        }
        Representation::Wireframe => {
            for tri in &pd.triangles {
                for (a, b) in [(tri[0], tri[1]), (tri[1], tri[2]), (tri[2], tri[0])] {
                    let (a, b) = (a as usize, b as usize);
                    if let (Some(pa), Some(pb)) = (screen[a], screen[b]) {
                        out.lines.push(RasterLine {
                            a: pa,
                            b: pb,
                            color_a: colors[a],
                            color_b: colors[b],
                        });
                    }
                }
            }
            push_polylines(pd, &screen, &colors, out);
        }
        Representation::Points => {
            for (i, s) in screen.iter().enumerate() {
                if let Some(p) = s {
                    out.points.push(RasterPoint {
                        x: p.0,
                        y: p.1,
                        z: p.2,
                        radius: prop.point_size / 2.0,
                        color: colors[i],
                    });
                }
            }
        }
    }
}

fn push_polylines(
    pd: &crate::poly_data::PolyData,
    screen: &[Option<(f64, f64, f32)>],
    colors: &[Color],
    out: &mut PrimitiveList,
) {
    for line in &pd.lines {
        for seg in line.windows(2) {
            let (a, b) = (seg[0] as usize, seg[1] as usize);
            if let (Some(pa), Some(pb)) = (screen[a], screen[b]) {
                out.lines.push(RasterLine {
                    a: pa,
                    b: pb,
                    color_a: colors[a],
                    color_b: colors[b],
                });
            }
        }
    }
}

/// Rasterizes all primitives into the framebuffer via the tile-binned
/// engine: bin into the default 32×32 grid, then rasterize occupied tiles
/// with rayon (tile-row bands in parallel).
pub(crate) fn rasterize(prims: &PrimitiveList, fb: &mut Framebuffer) {
    let grid = TileGrid::with_default_tile(fb.width(), fb.height());
    let bins = tile::bin_primitives(prims, &grid);
    tile::rasterize_bins(prims, &bins, &grid, None, fb);
}

/// Builds the frame's screen-space primitives for `actors` and sorts
/// triangles far→near (painter-friendly ordering for translucency) —
/// the shared front half of both the tile and scanline engines.
pub(crate) fn build_sorted_primitives(
    actors: &[Actor],
    view_proj: &Mat4,
    lights: &[Light],
    width: usize,
    height: usize,
) -> PrimitiveList {
    let mut prims = PrimitiveList::default();
    for actor in actors {
        build_primitives(actor, view_proj, lights, width, height, &mut prims);
    }
    // Painter-friendly ordering for translucent surfaces: draw far→near.
    prims.tris.sort_by(|a, b| {
        let za = a.z.iter().sum::<f32>();
        let zb = b.z.iter().sum::<f32>();
        zb.total_cmp(&za)
    });
    prims
}

/// Convenience entry point: builds primitives for `actors` and rasterizes
/// them into `fb` using `view_proj` and `lights`.
pub(crate) fn draw_actors(
    actors: &[Actor],
    view_proj: &Mat4,
    lights: &[Light],
    fb: &mut Framebuffer,
) {
    let prims = build_sorted_primitives(actors, view_proj, lights, fb.width(), fb.height());
    rasterize(&prims, fb);
}

/// Unprojects a screen pixel back to a world-space ray; used by pick
/// operations. Returns `(origin, direction)` or `None` for singular
/// matrices.
pub fn pixel_ray(
    view_proj: &Mat4,
    width: usize,
    height: usize,
    px: f64,
    py: f64,
) -> Option<(Vec3, Vec3)> {
    let inv = view_proj.inverse()?;
    let ndc_x = 2.0 * px / (width.max(2) - 1) as f64 - 1.0;
    let ndc_y = 1.0 - 2.0 * py / (height.max(2) - 1) as f64;
    let near = inv.transform_point(Vec3::new(ndc_x, ndc_y, -1.0));
    let far = inv.transform_point(Vec3::new(ndc_x, ndc_y, 1.0));
    Some((near, (far - near).normalized()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly_data::PolyData;
    use crate::render::camera::Camera;

    fn screen_tri() -> Actor {
        // Big triangle in the z=0 plane, camera straight on.
        let mut pd = PolyData::new();
        pd.add_point(Vec3::new(-1.0, -1.0, 0.0));
        pd.add_point(Vec3::new(1.0, -1.0, 0.0));
        pd.add_point(Vec3::new(0.0, 1.0, 0.0));
        pd.triangles.push([0, 1, 2]);
        let mut a = Actor::from_poly_data(pd).with_color(Color::RED);
        a.property.lighting = false;
        a
    }

    fn front_camera() -> Mat4 {
        let cam = Camera {
            position: Vec3::new(0.0, 0.0, 5.0),
            focal_point: Vec3::ZERO,
            clipping_range: (0.1, 100.0),
            ..Camera::default()
        };
        cam.projection_matrix(1.0).mul_mat(&cam.view_matrix())
    }

    #[test]
    fn triangle_covers_pixels() {
        let mut fb = Framebuffer::new(64, 64);
        draw_actors(&[screen_tri()], &front_camera(), &[Light::default()], &mut fb);
        let covered = fb.covered_pixels(Color::BLACK);
        assert!(covered > 200, "covered {covered}");
        // centre pixel is red
        let c = fb.pixel(32, 40);
        assert!(c.r > 0.9 && c.g < 0.1, "{c:?}");
    }

    #[test]
    fn nearer_triangle_occludes() {
        let near = screen_tri(); // z = 0
        let mut far_pd = PolyData::new();
        far_pd.add_point(Vec3::new(-1.0, -1.0, -1.0));
        far_pd.add_point(Vec3::new(1.0, -1.0, -1.0));
        far_pd.add_point(Vec3::new(0.0, 1.0, -1.0));
        far_pd.triangles.push([0, 1, 2]);
        let mut far = Actor::from_poly_data(far_pd).with_color(Color::GREEN);
        far.property.lighting = false;

        let mut fb = Framebuffer::new(64, 64);
        // draw far one *after* near one: depth test must still favour near
        draw_actors(&[near, far], &front_camera(), &[], &mut fb);
        let c = fb.pixel(32, 40);
        assert!(c.r > 0.9 && c.g < 0.1, "near (red) should win: {c:?}");
    }

    #[test]
    fn behind_camera_geometry_skipped() {
        let mut a = screen_tri();
        a.transform = Mat4::translate(Vec3::new(0.0, 0.0, 100.0)); // behind eye at z=5
        let mut fb = Framebuffer::new(32, 32);
        draw_actors(&[a], &front_camera(), &[], &mut fb);
        assert_eq!(fb.covered_pixels(Color::BLACK), 0);
    }

    #[test]
    fn invisible_actor_skipped() {
        let mut a = screen_tri();
        a.visible = false;
        let mut fb = Framebuffer::new(32, 32);
        draw_actors(&[a], &front_camera(), &[], &mut fb);
        assert_eq!(fb.covered_pixels(Color::BLACK), 0);
    }

    #[test]
    fn wireframe_draws_fewer_pixels_than_surface() {
        let mut fb_s = Framebuffer::new(64, 64);
        draw_actors(&[screen_tri()], &front_camera(), &[], &mut fb_s);
        let mut wf = screen_tri();
        wf.property.representation = Representation::Wireframe;
        let mut fb_w = Framebuffer::new(64, 64);
        draw_actors(&[wf], &front_camera(), &[], &mut fb_w);
        let (s, w) = (fb_s.covered_pixels(Color::BLACK), fb_w.covered_pixels(Color::BLACK));
        assert!(w > 0 && w < s, "wireframe {w} vs surface {s}");
    }

    #[test]
    fn points_mode_draws_sprites() {
        let mut a = screen_tri();
        a.property.representation = Representation::Points;
        a.property.point_size = 6.0;
        let mut fb = Framebuffer::new(64, 64);
        draw_actors(&[a], &front_camera(), &[], &mut fb);
        let covered = fb.covered_pixels(Color::BLACK);
        assert!(covered >= 3, "{covered}");
        assert!(covered < 200);
    }

    #[test]
    fn scalar_coloring_via_lut() {
        use crate::lookup_table::{ColormapName, LookupTable};
        let mut a = screen_tri();
        a.poly_data.scalars = Some(vec![0.0, 0.0, 1.0]);
        a.property.lookup_table = Some(LookupTable::new(ColormapName::Grayscale, (0.0, 1.0)));
        a.property.lighting = false;
        let mut fb = Framebuffer::new(64, 64);
        draw_actors(&[a], &front_camera(), &[], &mut fb);
        // bottom of the triangle (scalar 0) is darker than the top (scalar 1)
        let bottom = fb.pixel(32, 55);
        let top = fb.pixel(32, 12);
        assert!(top.luminance() > bottom.luminance(), "top {top:?} bottom {bottom:?}");
    }

    #[test]
    fn lighting_darkens_grazing_surfaces() {
        let mut lit = screen_tri();
        lit.property.lighting = true;
        lit.poly_data.normals = Some(vec![Vec3::new(1.0, 0.0, 0.0); 3]); // ⊥ to light below
        let mut fb = Framebuffer::new(32, 32);
        let light = Light::directional(Vec3::new(0.0, 0.0, -1.0));
        draw_actors(&[lit], &front_camera(), &[light], &mut fb);
        let c = fb.pixel(16, 20);
        // only ambient survives
        assert!(c.r > 0.0 && c.r < 0.35, "{c:?}");
    }

    #[test]
    fn translucent_blends_with_background() {
        let mut a = screen_tri().with_opacity(0.5);
        a.property.lighting = false;
        let mut fb = Framebuffer::new(32, 32);
        fb.clear(Color::BLUE);
        draw_actors(&[a], &front_camera(), &[], &mut fb);
        let c = fb.pixel(16, 20);
        assert!(c.r > 0.3 && c.b > 0.3, "{c:?}");
    }

    #[test]
    fn degenerate_triangle_is_skipped() {
        // all three vertices collinear: zero area, no pixels, no panic
        let mut pd = PolyData::new();
        pd.add_point(Vec3::new(-1.0, 0.0, 0.0));
        pd.add_point(Vec3::new(0.0, 0.0, 0.0));
        pd.add_point(Vec3::new(1.0, 0.0, 0.0));
        pd.triangles.push([0, 1, 2]);
        let mut a = Actor::from_poly_data(pd).with_color(Color::WHITE);
        a.property.lighting = false;
        let mut fb = Framebuffer::new(32, 32);
        draw_actors(&[a], &front_camera(), &[], &mut fb);
        // a 1-pixel-wide line of coverage at most (the bbox sweep may hit
        // the exact edge); nothing blows up
        assert!(fb.covered_pixels(Color::BLACK) <= 64);
    }

    #[test]
    fn partially_behind_camera_geometry_is_partially_culled() {
        // one vertex behind the eye: the triangle is dropped (conservative
        // near-plane handling), not smeared across the screen
        let mut pd = PolyData::new();
        pd.add_point(Vec3::new(-1.0, -1.0, 0.0));
        pd.add_point(Vec3::new(1.0, -1.0, 0.0));
        pd.add_point(Vec3::new(0.0, 1.0, 50.0)); // behind the eye at z=5
        pd.triangles.push([0, 1, 2]);
        let mut a = Actor::from_poly_data(pd).with_color(Color::WHITE);
        a.property.lighting = false;
        let mut fb = Framebuffer::new(32, 32);
        draw_actors(&[a], &front_camera(), &[], &mut fb);
        assert_eq!(fb.covered_pixels(Color::BLACK), 0);
    }

    #[test]
    fn parallel_projection_renders() {
        let cam = Camera {
            position: Vec3::new(0.0, 0.0, 5.0),
            focal_point: Vec3::ZERO,
            parallel_projection: true,
            parallel_scale: 2.0,
            clipping_range: (0.1, 100.0),
            ..Camera::default()
        };
        let vp = cam.projection_matrix(1.0).mul_mat(&cam.view_matrix());
        let mut fb = Framebuffer::new(64, 64);
        draw_actors(&[screen_tri()], &vp, &[], &mut fb);
        assert!(fb.covered_pixels(Color::BLACK) > 100);
        // orthographic: depth ordering still works
        assert!(fb.depth_at(32, 40) < 1.0);
    }

    #[test]
    fn tiny_framebuffer_does_not_panic() {
        let mut fb = Framebuffer::new(2, 2);
        draw_actors(&[screen_tri()], &front_camera(), &[], &mut fb);
        let mut fb1 = Framebuffer::new(1, 1);
        draw_actors(&[screen_tri()], &front_camera(), &[], &mut fb1);
    }

    #[test]
    fn pixel_ray_hits_focal_plane() {
        let vp = front_camera();
        let (o, d) = pixel_ray(&vp, 64, 64, 31.5, 31.5).unwrap();
        // centre ray travels toward -z through the origin
        assert!(d.z < -0.9, "{d:?}");
        let t = -o.z / d.z;
        let hit = o + d * t;
        assert!(hit.x.abs() < 0.05 && hit.y.abs() < 0.05, "{hit:?}");
    }
}
