//! Directional lights for diffuse surface shading.

use crate::color::Color;
use crate::math::Vec3;

/// A directional light.
#[derive(Debug, Clone, PartialEq)]
pub struct Light {
    /// Direction the light *travels* (from light toward scene).
    pub direction: Vec3,
    /// Light color.
    pub color: Color,
    /// Scalar intensity multiplier.
    pub intensity: f32,
}

impl Light {
    /// A white headlight-style light travelling along `direction`.
    pub fn directional(direction: Vec3) -> Light {
        Light { direction: direction.normalized(), color: Color::WHITE, intensity: 1.0 }
    }

    /// Lambertian diffuse factor for a surface normal (two-sided).
    pub fn diffuse(&self, normal: Vec3) -> f32 {
        let n = normal.normalized();
        let l = -self.direction.normalized();
        (n.dot(l).abs() as f32) * self.intensity
    }
}

impl Default for Light {
    fn default() -> Light {
        Light::directional(Vec3::new(-0.4, 0.5, -0.8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diffuse_peaks_facing_light() {
        let l = Light::directional(Vec3::new(0.0, 0.0, -1.0));
        assert!((l.diffuse(Vec3::new(0.0, 0.0, 1.0)) - 1.0).abs() < 1e-6);
        // two-sided: reversed normal shades the same
        assert!((l.diffuse(Vec3::new(0.0, 0.0, -1.0)) - 1.0).abs() < 1e-6);
        // grazing
        assert!(l.diffuse(Vec3::new(1.0, 0.0, 0.0)) < 1e-6);
    }

    #[test]
    fn intensity_scales() {
        let mut l = Light::directional(Vec3::new(0.0, 0.0, -1.0));
        l.intensity = 0.5;
        assert!((l.diffuse(Vec3::new(0.0, 0.0, 1.0)) - 0.5).abs() < 1e-6);
    }
}
