//! Bitmap-font annotations: on-screen labels, value readouts and colorbar
//! legends — the 2D overlay layer of a DV3D cell.

use crate::color::Color;
use crate::lookup_table::LookupTable;
use crate::render::framebuffer::Framebuffer;

/// Glyph height in pixels (at scale 1).
pub const GLYPH_HEIGHT: usize = 7;
/// Glyph width in pixels (at scale 1), excluding the 1px advance gap.
pub const GLYPH_WIDTH: usize = 5;

/// 5×7 glyph bitmaps: each row is 5 bits, MSB = leftmost pixel.
fn glyph(c: char) -> [u8; 7] {
    let c = c.to_ascii_uppercase();
    match c {
        'A' => [0x0E, 0x11, 0x11, 0x1F, 0x11, 0x11, 0x11],
        'B' => [0x1E, 0x11, 0x11, 0x1E, 0x11, 0x11, 0x1E],
        'C' => [0x0E, 0x11, 0x10, 0x10, 0x10, 0x11, 0x0E],
        'D' => [0x1E, 0x11, 0x11, 0x11, 0x11, 0x11, 0x1E],
        'E' => [0x1F, 0x10, 0x10, 0x1E, 0x10, 0x10, 0x1F],
        'F' => [0x1F, 0x10, 0x10, 0x1E, 0x10, 0x10, 0x10],
        'G' => [0x0E, 0x11, 0x10, 0x17, 0x11, 0x11, 0x0F],
        'H' => [0x11, 0x11, 0x11, 0x1F, 0x11, 0x11, 0x11],
        'I' => [0x0E, 0x04, 0x04, 0x04, 0x04, 0x04, 0x0E],
        'J' => [0x07, 0x02, 0x02, 0x02, 0x02, 0x12, 0x0C],
        'K' => [0x11, 0x12, 0x14, 0x18, 0x14, 0x12, 0x11],
        'L' => [0x10, 0x10, 0x10, 0x10, 0x10, 0x10, 0x1F],
        'M' => [0x11, 0x1B, 0x15, 0x15, 0x11, 0x11, 0x11],
        'N' => [0x11, 0x19, 0x15, 0x13, 0x11, 0x11, 0x11],
        'O' => [0x0E, 0x11, 0x11, 0x11, 0x11, 0x11, 0x0E],
        'P' => [0x1E, 0x11, 0x11, 0x1E, 0x10, 0x10, 0x10],
        'Q' => [0x0E, 0x11, 0x11, 0x11, 0x15, 0x12, 0x0D],
        'R' => [0x1E, 0x11, 0x11, 0x1E, 0x14, 0x12, 0x11],
        'S' => [0x0F, 0x10, 0x10, 0x0E, 0x01, 0x01, 0x1E],
        'T' => [0x1F, 0x04, 0x04, 0x04, 0x04, 0x04, 0x04],
        'U' => [0x11, 0x11, 0x11, 0x11, 0x11, 0x11, 0x0E],
        'V' => [0x11, 0x11, 0x11, 0x11, 0x11, 0x0A, 0x04],
        'W' => [0x11, 0x11, 0x11, 0x15, 0x15, 0x1B, 0x11],
        'X' => [0x11, 0x0A, 0x04, 0x04, 0x04, 0x0A, 0x11],
        'Y' => [0x11, 0x11, 0x0A, 0x04, 0x04, 0x04, 0x04],
        'Z' => [0x1F, 0x01, 0x02, 0x04, 0x08, 0x10, 0x1F],
        '0' => [0x0E, 0x11, 0x13, 0x15, 0x19, 0x11, 0x0E],
        '1' => [0x04, 0x0C, 0x04, 0x04, 0x04, 0x04, 0x0E],
        '2' => [0x0E, 0x11, 0x01, 0x02, 0x04, 0x08, 0x1F],
        '3' => [0x1F, 0x02, 0x04, 0x02, 0x01, 0x11, 0x0E],
        '4' => [0x02, 0x06, 0x0A, 0x12, 0x1F, 0x02, 0x02],
        '5' => [0x1F, 0x10, 0x1E, 0x01, 0x01, 0x11, 0x0E],
        '6' => [0x06, 0x08, 0x10, 0x1E, 0x11, 0x11, 0x0E],
        '7' => [0x1F, 0x01, 0x02, 0x04, 0x08, 0x08, 0x08],
        '8' => [0x0E, 0x11, 0x11, 0x0E, 0x11, 0x11, 0x0E],
        '9' => [0x0E, 0x11, 0x11, 0x0F, 0x01, 0x02, 0x0C],
        '.' => [0x00, 0x00, 0x00, 0x00, 0x00, 0x0C, 0x0C],
        ',' => [0x00, 0x00, 0x00, 0x00, 0x0C, 0x04, 0x08],
        '-' => [0x00, 0x00, 0x00, 0x1F, 0x00, 0x00, 0x00],
        '+' => [0x00, 0x04, 0x04, 0x1F, 0x04, 0x04, 0x00],
        ':' => [0x00, 0x0C, 0x0C, 0x00, 0x0C, 0x0C, 0x00],
        '/' => [0x01, 0x01, 0x02, 0x04, 0x08, 0x10, 0x10],
        '(' => [0x02, 0x04, 0x08, 0x08, 0x08, 0x04, 0x02],
        ')' => [0x08, 0x04, 0x02, 0x02, 0x02, 0x04, 0x08],
        '=' => [0x00, 0x00, 0x1F, 0x00, 0x1F, 0x00, 0x00],
        '%' => [0x18, 0x19, 0x02, 0x04, 0x08, 0x13, 0x03],
        '_' => [0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x1F],
        '<' => [0x02, 0x04, 0x08, 0x10, 0x08, 0x04, 0x02],
        '>' => [0x08, 0x04, 0x02, 0x01, 0x02, 0x04, 0x08],
        '[' => [0x0E, 0x08, 0x08, 0x08, 0x08, 0x08, 0x0E],
        ']' => [0x0E, 0x02, 0x02, 0x02, 0x02, 0x02, 0x0E],
        '*' => [0x00, 0x15, 0x0E, 0x1F, 0x0E, 0x15, 0x00],
        '\'' => [0x04, 0x04, 0x08, 0x00, 0x00, 0x00, 0x00],
        '?' => [0x0E, 0x11, 0x01, 0x02, 0x04, 0x00, 0x04],
        ' ' => [0; 7],
        _ => [0x1F, 0x11, 0x11, 0x11, 0x11, 0x11, 0x1F], // tofu box
    }
}

/// Pixel width of `text` at a given integer scale.
pub fn text_width(text: &str, scale: usize) -> usize {
    text.chars().count() * (GLYPH_WIDTH + 1) * scale.max(1)
}

/// Draws `text` with its top-left corner at `(x, y)`.
pub fn draw_text(
    fb: &mut Framebuffer,
    x: usize,
    y: usize,
    text: &str,
    color: Color,
    scale: usize,
) {
    let scale = scale.max(1);
    let mut cx = x;
    for ch in text.chars() {
        let g = glyph(ch);
        for (row, bits) in g.iter().enumerate() {
            for col in 0..GLYPH_WIDTH {
                if bits & (1 << (GLYPH_WIDTH - 1 - col)) != 0 {
                    for dy in 0..scale {
                        for dx in 0..scale {
                            fb.set_pixel(
                                cx + col * scale + dx,
                                y + row * scale + dy,
                                color,
                            );
                        }
                    }
                }
            }
        }
        cx += (GLYPH_WIDTH + 1) * scale;
    }
}

/// Draws a vertical colorbar legend with min/max labels at the right edge
/// region `(x, y)` to `(x + width, y + height)`.
pub fn draw_colorbar(
    fb: &mut Framebuffer,
    x: usize,
    y: usize,
    width: usize,
    height: usize,
    lut: &LookupTable,
) {
    if height < 2 {
        return;
    }
    let (lo, hi) = lut.range;
    for row in 0..height {
        // top = max
        let t = 1.0 - row as f32 / (height - 1) as f32;
        let v = lo + t * (hi - lo);
        let c = lut.map(v);
        for col in 0..width {
            fb.set_pixel(x + col, y + row, c);
        }
    }
    // border
    for row in 0..height {
        fb.set_pixel(x, y + row, Color::WHITE);
        fb.set_pixel(x + width - 1, y + row, Color::WHITE);
    }
    let label = |v: f32| {
        if v.abs() >= 1000.0 || (v != 0.0 && v.abs() < 0.01) {
            format!("{v:.2e}")
        } else {
            format!("{v:.2}")
        }
    };
    draw_text(fb, x + width + 2, y, &label(hi), Color::WHITE, 1);
    draw_text(
        fb,
        x + width + 2,
        (y + height).saturating_sub(GLYPH_HEIGHT),
        &label(lo),
        Color::WHITE,
        1,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lookup_table::ColormapName;

    #[test]
    fn text_marks_pixels() {
        let mut fb = Framebuffer::new(100, 20);
        draw_text(&mut fb, 2, 2, "TA 288.5K", Color::WHITE, 1);
        assert!(fb.covered_pixels(Color::BLACK) > 40);
    }

    #[test]
    fn scale_doubles_footprint() {
        let mut fb1 = Framebuffer::new(200, 40);
        draw_text(&mut fb1, 0, 0, "X", Color::WHITE, 1);
        let n1 = fb1.covered_pixels(Color::BLACK);
        let mut fb2 = Framebuffer::new(200, 40);
        draw_text(&mut fb2, 0, 0, "X", Color::WHITE, 2);
        let n2 = fb2.covered_pixels(Color::BLACK);
        assert_eq!(n2, 4 * n1);
    }

    #[test]
    fn width_math() {
        assert_eq!(text_width("ABC", 1), 18);
        assert_eq!(text_width("ABC", 2), 36);
        assert_eq!(text_width("", 1), 0);
    }

    #[test]
    fn unknown_chars_render_tofu() {
        let mut fb = Framebuffer::new(20, 10);
        draw_text(&mut fb, 0, 0, "\u{1F600}", Color::WHITE, 1);
        assert!(fb.covered_pixels(Color::BLACK) >= 16); // box outline
    }

    #[test]
    fn lowercase_maps_to_uppercase() {
        let mut fa = Framebuffer::new(20, 10);
        draw_text(&mut fa, 0, 0, "a", Color::WHITE, 1);
        let mut fb = Framebuffer::new(20, 10);
        draw_text(&mut fb, 0, 0, "A", Color::WHITE, 1);
        assert_eq!(fa.covered_pixels(Color::BLACK), fb.covered_pixels(Color::BLACK));
    }

    #[test]
    fn colorbar_spans_lut() {
        let lut = LookupTable::new(ColormapName::Grayscale, (0.0, 1.0));
        let mut fb = Framebuffer::new(80, 64);
        draw_colorbar(&mut fb, 4, 2, 8, 60, &lut);
        // interior: top bright (max), bottom dark (min)
        let top = fb.pixel(8, 3);
        let bottom = fb.pixel(8, 59);
        assert!(top.luminance() > 0.9, "{top:?}");
        assert!(bottom.luminance() < 0.1, "{bottom:?}");
        // labels drawn to the right
        let mut label_pixels = 0;
        for y in 0..64 {
            for x in 14..80 {
                if fb.pixel(x, y).luminance() > 0.5 {
                    label_pixels += 1;
                }
            }
        }
        assert!(label_pixels > 10);
    }

    #[test]
    fn tiny_colorbar_is_noop() {
        let lut = LookupTable::default();
        let mut fb = Framebuffer::new(10, 10);
        draw_colorbar(&mut fb, 0, 0, 4, 1, &lut);
        assert_eq!(fb.covered_pixels(Color::BLACK), 0);
    }
}
