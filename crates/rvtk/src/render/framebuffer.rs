//! Offscreen framebuffer: color + depth, with PPM export.

use crate::color::Color;
use std::io::Write;
use std::path::Path;

/// An RGBA + depth framebuffer.
#[derive(Debug, Clone)]
pub struct Framebuffer {
    width: usize,
    height: usize,
    /// Row-major colors (y = 0 is the top row).
    color: Vec<Color>,
    /// NDC depth in [-1, 1]; +∞ means empty.
    depth: Vec<f32>,
}

impl Framebuffer {
    /// Creates a framebuffer cleared to black.
    pub fn new(width: usize, height: usize) -> Framebuffer {
        Framebuffer {
            width,
            height,
            color: vec![Color::BLACK; width * height],
            depth: vec![f32::INFINITY; width * height],
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Aspect ratio (w/h).
    pub fn aspect(&self) -> f64 {
        self.width as f64 / self.height.max(1) as f64
    }

    /// Clears color and depth.
    pub fn clear(&mut self, background: Color) {
        self.color.fill(background);
        self.depth.fill(f32::INFINITY);
    }

    /// Pixel color at `(x, y)`; panics out of range (test/diagnostic use).
    pub fn pixel(&self, x: usize, y: usize) -> Color {
        self.color[y * self.width + x]
    }

    /// Depth at `(x, y)`.
    pub fn depth_at(&self, x: usize, y: usize) -> f32 {
        self.depth[y * self.width + x]
    }

    /// Sets a pixel unconditionally (no depth test), for 2D overlays.
    pub fn set_pixel(&mut self, x: usize, y: usize, c: Color) {
        if x < self.width && y < self.height {
            let i = y * self.width + x;
            self.color[i] = if c.a >= 1.0 { c } else { c.over(self.color[i]) };
        }
    }

    /// Depth-tested plot: writes color+depth when `z` is closer.
    /// Translucent fragments blend without writing depth.
    pub fn plot(&mut self, x: usize, y: usize, z: f32, c: Color) {
        if x >= self.width || y >= self.height {
            return;
        }
        let i = y * self.width + x;
        if z < self.depth[i] {
            if c.a >= 0.999 {
                self.color[i] = c;
                self.depth[i] = z;
            } else {
                self.color[i] = Color { a: 1.0, ..c }.lerp(self.color[i], 1.0 - c.a);
            }
        }
    }

    /// Raw color slice.
    pub fn colors(&self) -> &[Color] {
        &self.color
    }

    /// Splits the framebuffer into `n` horizontal bands, returning
    /// `(y0, colors, depths)` per band — each band owns disjoint rows so
    /// they can be rasterized in parallel.
    pub(crate) fn bands(&mut self, n: usize) -> Vec<(usize, &mut [Color], &mut [f32])> {
        let n = n.clamp(1, self.height.max(1));
        let rows_per = self.height.div_ceil(n);
        let width = self.width;
        let mut out = Vec::with_capacity(n);
        let mut color_rest: &mut [Color] = &mut self.color;
        let mut depth_rest: &mut [f32] = &mut self.depth;
        let mut y = 0usize;
        while y < self.height {
            let rows = rows_per.min(self.height - y);
            let (c, cr) = color_rest.split_at_mut(rows * width);
            let (d, dr) = depth_rest.split_at_mut(rows * width);
            color_rest = cr;
            depth_rest = dr;
            out.push((y, c, d));
            y += rows;
        }
        out
    }

    /// Mean luminance over all pixels — a cheap "did anything render" probe
    /// used heavily by tests.
    pub fn mean_luminance(&self) -> f32 {
        if self.color.is_empty() {
            return 0.0;
        }
        self.color.iter().map(|c| c.luminance()).sum::<f32>() / self.color.len() as f32
    }

    /// Number of pixels whose color differs from `background`.
    pub fn covered_pixels(&self, background: Color) -> usize {
        self.color
            .iter()
            .filter(|&&c| {
                (c.r - background.r).abs() > 1e-3
                    || (c.g - background.g).abs() > 1e-3
                    || (c.b - background.b).abs() > 1e-3
            })
            .count()
    }

    /// Copies `src` into this framebuffer with its top-left corner at
    /// `(x0, y0)`, clipping at the edges (no depth transfer) — used to
    /// assemble mosaics like the hyperwall preview.
    pub fn blit(&mut self, src: &Framebuffer, x0: usize, y0: usize) {
        for sy in 0..src.height() {
            let dy = y0 + sy;
            if dy >= self.height {
                break;
            }
            for sx in 0..src.width() {
                let dx = x0 + sx;
                if dx >= self.width {
                    break;
                }
                self.color[dy * self.width + dx] = src.pixel(sx, sy);
            }
        }
    }

    /// Writes a binary PPM (P6) image.
    pub fn save_ppm(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(f, "P6\n{} {}\n255", self.width, self.height)?;
        for c in &self.color {
            let [r, g, b, _] = c.to_u8();
            f.write_all(&[r, g, b])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_and_pixel_access() {
        let mut fb = Framebuffer::new(4, 3);
        assert_eq!(fb.width(), 4);
        assert_eq!(fb.height(), 3);
        fb.clear(Color::BLUE);
        assert_eq!(fb.pixel(3, 2), Color::BLUE);
        assert_eq!(fb.depth_at(0, 0), f32::INFINITY);
        assert!((fb.aspect() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn depth_test_keeps_nearest() {
        let mut fb = Framebuffer::new(2, 2);
        fb.plot(0, 0, 0.5, Color::RED);
        fb.plot(0, 0, 0.8, Color::GREEN); // farther: rejected
        assert_eq!(fb.pixel(0, 0), Color::RED);
        fb.plot(0, 0, 0.2, Color::BLUE); // nearer: replaces
        assert_eq!(fb.pixel(0, 0), Color::BLUE);
        assert_eq!(fb.depth_at(0, 0), 0.2);
    }

    #[test]
    fn translucent_blends_without_depth_write() {
        let mut fb = Framebuffer::new(1, 1);
        fb.plot(0, 0, 0.5, Color::RED);
        fb.plot(0, 0, 0.3, Color::rgba(0.0, 0.0, 1.0, 0.5));
        let c = fb.pixel(0, 0);
        assert!(c.r > 0.4 && c.b > 0.4, "{c:?}");
        // depth still that of the opaque fragment
        assert_eq!(fb.depth_at(0, 0), 0.5);
    }

    #[test]
    fn out_of_range_plots_ignored() {
        let mut fb = Framebuffer::new(2, 2);
        fb.plot(5, 5, 0.0, Color::WHITE);
        fb.set_pixel(5, 5, Color::WHITE);
        assert_eq!(fb.covered_pixels(Color::BLACK), 0);
    }

    #[test]
    fn coverage_and_luminance_probes() {
        let mut fb = Framebuffer::new(2, 2);
        assert_eq!(fb.mean_luminance(), 0.0);
        fb.set_pixel(0, 0, Color::WHITE);
        assert_eq!(fb.covered_pixels(Color::BLACK), 1);
        assert!((fb.mean_luminance() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn bands_partition_all_rows() {
        let mut fb = Framebuffer::new(3, 10);
        let bands = fb.bands(4);
        let total_rows: usize = bands.iter().map(|(_, c, _)| c.len() / 3).sum();
        assert_eq!(total_rows, 10);
        // bands start at increasing y
        let ys: Vec<usize> = bands.iter().map(|(y, _, _)| *y).collect();
        assert!(ys.windows(2).all(|w| w[1] > w[0]));
        // more bands than rows clamps
        let mut fb2 = Framebuffer::new(2, 2);
        assert_eq!(fb2.bands(16).len(), 2);
    }

    #[test]
    fn blit_copies_with_clipping() {
        let mut dst = Framebuffer::new(6, 6);
        let mut src = Framebuffer::new(3, 3);
        src.set_pixel(0, 0, Color::RED);
        src.set_pixel(2, 2, Color::GREEN);
        dst.blit(&src, 2, 2);
        assert_eq!(dst.pixel(2, 2), Color::RED);
        assert_eq!(dst.pixel(4, 4), Color::GREEN);
        assert_eq!(dst.pixel(0, 0), Color::BLACK);
        // clipping at the edge must not panic; the visible corner copies
        dst.blit(&src, 5, 5);
        assert_eq!(dst.pixel(5, 5), Color::RED);
    }

    #[test]
    fn ppm_export_writes_header_and_payload() {
        let mut fb = Framebuffer::new(3, 2);
        fb.set_pixel(0, 0, Color::RED);
        let path = std::env::temp_dir().join(format!("rvtk_fb_{}.ppm", std::process::id()));
        fb.save_ppm(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(bytes.len(), 11 + 3 * 2 * 3);
        // first pixel red
        let off = 11;
        assert_eq!(&bytes[off..off + 3], &[255, 0, 0]);
        std::fs::remove_file(&path).ok();
    }
}
