//! Offscreen framebuffer: color + depth, with PPM export, plus the
//! tile/band partition helpers shared by the rasterizer and volume paths.

use crate::color::Color;
use std::io::Write;
use std::path::Path;

/// A fixed-size screen-tile decomposition of a framebuffer.
///
/// Both the tile-binned rasterizer and the hyperwall frame-delta transport
/// partition the screen with this grid, so a "tile" means the same pixel
/// rectangle on both sides of the wire. Tiles are `tile × tile` pixels
/// except at the right/bottom edges, where they are clipped to the screen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileGrid {
    width: usize,
    height: usize,
    tile: usize,
}

/// The pixel rectangle of one tile (clipped to the screen).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileRect {
    /// Left column (inclusive).
    pub x0: usize,
    /// Top row (inclusive).
    pub y0: usize,
    /// Width in pixels (≥ 1 for a valid tile).
    pub w: usize,
    /// Height in pixels.
    pub h: usize,
}

impl TileGrid {
    /// The default tile edge in pixels.
    pub const TILE: usize = 32;

    /// A grid of `tile × tile` tiles over a `width × height` screen.
    pub fn new(width: usize, height: usize, tile: usize) -> TileGrid {
        TileGrid { width, height, tile: tile.max(1) }
    }

    /// Grid over a screen with the default tile edge.
    pub fn with_default_tile(width: usize, height: usize) -> TileGrid {
        TileGrid::new(width, height, TileGrid::TILE)
    }

    /// Screen width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Screen height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Tile edge in pixels.
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// Number of tile columns.
    pub fn cols(&self) -> usize {
        self.width.div_ceil(self.tile)
    }

    /// Number of tile rows.
    pub fn rows(&self) -> usize {
        self.height.div_ceil(self.tile)
    }

    /// Total number of tiles.
    pub fn len(&self) -> usize {
        self.cols() * self.rows()
    }

    /// True when the screen is empty (zero tiles).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat tile index of tile column `tx`, tile row `ty`.
    pub fn index(&self, tx: usize, ty: usize) -> usize {
        ty * self.cols() + tx
    }

    /// Pixel rectangle of the tile at flat index `idx`, clipped to the
    /// screen. Out-of-range indices yield an empty rect.
    pub fn rect(&self, idx: usize) -> TileRect {
        let cols = self.cols().max(1);
        let (tx, ty) = (idx % cols, idx / cols);
        let x0 = (tx * self.tile).min(self.width);
        let y0 = (ty * self.tile).min(self.height);
        TileRect {
            x0,
            y0,
            w: self.tile.min(self.width - x0),
            h: self.tile.min(self.height - y0),
        }
    }

    /// Calls `f(flat_index)` for every tile overlapping the inclusive
    /// pixel bbox `[x0, x1] × [y0, y1]` (screen-clamped). The bbox may
    /// extend past the screen; nothing is visited for an empty overlap.
    pub fn for_tiles_over(
        &self,
        x0: f64,
        x1: f64,
        y0: f64,
        y1: f64,
        mut f: impl FnMut(usize),
    ) {
        if self.width == 0 || self.height == 0 || x1 < 0.0 || y1 < 0.0 {
            return;
        }
        if x0 > (self.width - 1) as f64 || y0 > (self.height - 1) as f64 {
            return;
        }
        let px0 = x0.max(0.0) as usize;
        let py0 = y0.max(0.0) as usize;
        let px1 = (x1 as usize).min(self.width - 1);
        let py1 = (y1 as usize).min(self.height - 1);
        if px0 > px1 || py0 > py1 {
            return;
        }
        for ty in (py0 / self.tile)..=(py1 / self.tile) {
            for tx in (px0 / self.tile)..=(px1 / self.tile) {
                f(self.index(tx, ty));
            }
        }
    }
}

/// A horizontal slice of a framebuffer owned by one rasterizer thread —
/// the partition unit shared by the tile rasterizer, the scanline
/// reference and the volume ray-caster.
pub(crate) struct BandView<'a> {
    /// First framebuffer row of this band.
    pub y0: usize,
    /// Number of rows.
    pub rows: usize,
    /// Framebuffer width.
    pub width: usize,
    /// Color storage for exactly `rows * width` pixels.
    pub colors: &'a mut [Color],
    /// Depth storage for exactly `rows * width` pixels.
    pub depths: &'a mut [f32],
}

/// An RGBA + depth framebuffer.
#[derive(Debug, Clone)]
pub struct Framebuffer {
    width: usize,
    height: usize,
    /// Row-major colors (y = 0 is the top row).
    color: Vec<Color>,
    /// NDC depth in [-1, 1]; +∞ means empty.
    depth: Vec<f32>,
}

impl Framebuffer {
    /// Creates a framebuffer cleared to black.
    pub fn new(width: usize, height: usize) -> Framebuffer {
        Framebuffer {
            width,
            height,
            color: vec![Color::BLACK; width * height],
            depth: vec![f32::INFINITY; width * height],
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Aspect ratio (w/h).
    pub fn aspect(&self) -> f64 {
        self.width as f64 / self.height.max(1) as f64
    }

    /// Clears color and depth.
    pub fn clear(&mut self, background: Color) {
        self.color.fill(background);
        self.depth.fill(f32::INFINITY);
    }

    /// Pixel color at `(x, y)`; panics out of range (test/diagnostic use).
    pub fn pixel(&self, x: usize, y: usize) -> Color {
        self.color[y * self.width + x]
    }

    /// Depth at `(x, y)`.
    pub fn depth_at(&self, x: usize, y: usize) -> f32 {
        self.depth[y * self.width + x]
    }

    /// Sets a pixel unconditionally (no depth test), for 2D overlays.
    pub fn set_pixel(&mut self, x: usize, y: usize, c: Color) {
        if x < self.width && y < self.height {
            let i = y * self.width + x;
            self.color[i] = if c.a >= 1.0 { c } else { c.over(self.color[i]) };
        }
    }

    /// Depth-tested plot: writes color+depth when `z` is closer.
    /// Translucent fragments blend without writing depth.
    pub fn plot(&mut self, x: usize, y: usize, z: f32, c: Color) {
        if x >= self.width || y >= self.height {
            return;
        }
        let i = y * self.width + x;
        if z < self.depth[i] {
            if c.a >= 0.999 {
                self.color[i] = c;
                self.depth[i] = z;
            } else {
                self.color[i] = Color { a: 1.0, ..c }.lerp(self.color[i], 1.0 - c.a);
            }
        }
    }

    /// Raw color slice.
    pub fn colors(&self) -> &[Color] {
        &self.color
    }

    /// Splits the framebuffer into horizontal bands of `rows_per_band`
    /// rows (the last may be shorter) — each band owns disjoint rows so
    /// they can be written in parallel without locking. This is the one
    /// partition primitive shared by the tile rasterizer, the scanline
    /// reference and the volume ray-caster.
    pub(crate) fn band_views(&mut self, rows_per_band: usize) -> Vec<BandView<'_>> {
        let rows_per = rows_per_band.clamp(1, self.height.max(1));
        let width = self.width;
        let mut out = Vec::with_capacity(self.height.div_ceil(rows_per));
        let mut color_rest: &mut [Color] = &mut self.color;
        let mut depth_rest: &mut [f32] = &mut self.depth;
        let mut y = 0usize;
        while y < self.height {
            let rows = rows_per.min(self.height - y);
            let (c, cr) = color_rest.split_at_mut(rows * width);
            let (d, dr) = depth_rest.split_at_mut(rows * width);
            color_rest = cr;
            depth_rest = dr;
            out.push(BandView { y0: y, rows, width, colors: c, depths: d });
            y += rows;
        }
        out
    }

    /// One band per rayon worker — the historic row-band split used by the
    /// volume path and the scanline reference rasterizer.
    pub(crate) fn thread_bands(&mut self) -> Vec<BandView<'_>> {
        let n = rayon::current_num_threads().max(1).min(self.height.max(1));
        self.band_views(self.height.max(1).div_ceil(n))
    }

    /// Bands aligned to the tile rows of `grid`: band `ty` covers exactly
    /// tile row `ty`, so a parallel iteration over these bands gives each
    /// worker exclusive ownership of whole tiles.
    pub(crate) fn tile_bands(&mut self, grid: &TileGrid) -> Vec<BandView<'_>> {
        self.band_views(grid.tile())
    }

    /// Quantizes the image to packed RGBA8 bytes (row-major, y = 0 top) —
    /// the lossless wire format of the hyperwall frame-delta transport.
    pub fn to_rgba8(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.color.len() * 4);
        for c in &self.color {
            out.extend_from_slice(&c.to_u8());
        }
        out
    }

    /// Resets `rect` to `background` color and empty depth (the per-tile
    /// analogue of [`Framebuffer::clear`]).
    pub(crate) fn clear_rect(&mut self, rect: TileRect, background: Color) {
        for y in rect.y0..(rect.y0 + rect.h).min(self.height) {
            let row = y * self.width;
            let (lo, hi) = (row + rect.x0, row + (rect.x0 + rect.w).min(self.width));
            self.color[lo..hi].fill(background);
            self.depth[lo..hi].fill(f32::INFINITY);
        }
    }

    /// Copies the color + depth of `rect` from `src`, which must have the
    /// same dimensions — used to restore clean tiles from a render cache.
    pub(crate) fn copy_rect_from(&mut self, src: &Framebuffer, rect: TileRect) {
        if src.width != self.width || src.height != self.height {
            return;
        }
        for y in rect.y0..(rect.y0 + rect.h).min(self.height) {
            let row = y * self.width;
            let (lo, hi) = (row + rect.x0, row + (rect.x0 + rect.w).min(self.width));
            self.color[lo..hi].copy_from_slice(&src.color[lo..hi]);
            self.depth[lo..hi].copy_from_slice(&src.depth[lo..hi]);
        }
    }

    /// Mean luminance over all pixels — a cheap "did anything render" probe
    /// used heavily by tests.
    pub fn mean_luminance(&self) -> f32 {
        if self.color.is_empty() {
            return 0.0;
        }
        self.color.iter().map(|c| c.luminance()).sum::<f32>() / self.color.len() as f32
    }

    /// Number of pixels whose color differs from `background`.
    pub fn covered_pixels(&self, background: Color) -> usize {
        self.color
            .iter()
            .filter(|&&c| {
                (c.r - background.r).abs() > 1e-3
                    || (c.g - background.g).abs() > 1e-3
                    || (c.b - background.b).abs() > 1e-3
            })
            .count()
    }

    /// Copies `src` into this framebuffer with its top-left corner at
    /// `(x0, y0)`, clipping at the edges (no depth transfer) — used to
    /// assemble mosaics like the hyperwall preview.
    pub fn blit(&mut self, src: &Framebuffer, x0: usize, y0: usize) {
        for sy in 0..src.height() {
            let dy = y0 + sy;
            if dy >= self.height {
                break;
            }
            for sx in 0..src.width() {
                let dx = x0 + sx;
                if dx >= self.width {
                    break;
                }
                self.color[dy * self.width + dx] = src.pixel(sx, sy);
            }
        }
    }

    /// Writes a binary PPM (P6) image.
    pub fn save_ppm(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(f, "P6\n{} {}\n255", self.width, self.height)?;
        for c in &self.color {
            let [r, g, b, _] = c.to_u8();
            f.write_all(&[r, g, b])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_and_pixel_access() {
        let mut fb = Framebuffer::new(4, 3);
        assert_eq!(fb.width(), 4);
        assert_eq!(fb.height(), 3);
        fb.clear(Color::BLUE);
        assert_eq!(fb.pixel(3, 2), Color::BLUE);
        assert_eq!(fb.depth_at(0, 0), f32::INFINITY);
        assert!((fb.aspect() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn depth_test_keeps_nearest() {
        let mut fb = Framebuffer::new(2, 2);
        fb.plot(0, 0, 0.5, Color::RED);
        fb.plot(0, 0, 0.8, Color::GREEN); // farther: rejected
        assert_eq!(fb.pixel(0, 0), Color::RED);
        fb.plot(0, 0, 0.2, Color::BLUE); // nearer: replaces
        assert_eq!(fb.pixel(0, 0), Color::BLUE);
        assert_eq!(fb.depth_at(0, 0), 0.2);
    }

    #[test]
    fn translucent_blends_without_depth_write() {
        let mut fb = Framebuffer::new(1, 1);
        fb.plot(0, 0, 0.5, Color::RED);
        fb.plot(0, 0, 0.3, Color::rgba(0.0, 0.0, 1.0, 0.5));
        let c = fb.pixel(0, 0);
        assert!(c.r > 0.4 && c.b > 0.4, "{c:?}");
        // depth still that of the opaque fragment
        assert_eq!(fb.depth_at(0, 0), 0.5);
    }

    #[test]
    fn out_of_range_plots_ignored() {
        let mut fb = Framebuffer::new(2, 2);
        fb.plot(5, 5, 0.0, Color::WHITE);
        fb.set_pixel(5, 5, Color::WHITE);
        assert_eq!(fb.covered_pixels(Color::BLACK), 0);
    }

    #[test]
    fn coverage_and_luminance_probes() {
        let mut fb = Framebuffer::new(2, 2);
        assert_eq!(fb.mean_luminance(), 0.0);
        fb.set_pixel(0, 0, Color::WHITE);
        assert_eq!(fb.covered_pixels(Color::BLACK), 1);
        assert!((fb.mean_luminance() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn bands_partition_all_rows() {
        let mut fb = Framebuffer::new(3, 10);
        let bands = fb.band_views(3);
        let total_rows: usize = bands.iter().map(|b| b.rows).sum();
        assert_eq!(total_rows, 10);
        assert!(bands.iter().all(|b| b.colors.len() == b.rows * 3));
        // bands start at increasing y
        let ys: Vec<usize> = bands.iter().map(|b| b.y0).collect();
        assert!(ys.windows(2).all(|w| w[1] > w[0]));
        // rows_per_band of 0 clamps to 1; tiny framebuffers survive
        let mut fb2 = Framebuffer::new(2, 2);
        assert_eq!(fb2.band_views(0).len(), 2);
        assert!(Framebuffer::new(4, 0).band_views(2).is_empty());
    }

    #[test]
    fn tile_grid_partitions_screen() {
        let g = TileGrid::new(70, 33, 32);
        assert_eq!((g.cols(), g.rows(), g.len()), (3, 2, 6));
        // interior tile
        let r = g.rect(g.index(1, 0));
        assert_eq!((r.x0, r.y0, r.w, r.h), (32, 0, 32, 32));
        // clipped right/bottom edges
        let r = g.rect(g.index(2, 1));
        assert_eq!((r.x0, r.y0, r.w, r.h), (64, 32, 6, 1));
        // rects tile the screen exactly
        let area: usize = (0..g.len()).map(|i| g.rect(i).w * g.rect(i).h).sum();
        assert_eq!(area, 70 * 33);
        // tile bands align with tile rows
        let mut fb = Framebuffer::new(70, 33);
        let bands = fb.tile_bands(&g);
        assert_eq!(bands.len(), g.rows());
        assert_eq!(bands[1].rows, 1);
    }

    #[test]
    fn tiles_over_bbox_visits_overlaps_only() {
        let g = TileGrid::new(64, 64, 32);
        let mut seen = Vec::new();
        g.for_tiles_over(30.0, 34.0, 10.0, 12.0, |i| seen.push(i));
        assert_eq!(seen, vec![0, 1]);
        seen.clear();
        // off-screen bbox visits nothing
        g.for_tiles_over(-10.0, -1.0, 0.0, 5.0, |i| seen.push(i));
        g.for_tiles_over(100.0, 200.0, 0.0, 5.0, |i| seen.push(i));
        assert!(seen.is_empty());
        // bbox spilling past the screen clamps
        g.for_tiles_over(-5.0, 500.0, 40.0, 500.0, |i| seen.push(i));
        assert_eq!(seen, vec![2, 3]);
    }

    #[test]
    fn rgba8_and_rect_helpers_roundtrip() {
        let mut fb = Framebuffer::new(4, 4);
        fb.set_pixel(1, 1, Color::RED);
        let bytes = fb.to_rgba8();
        assert_eq!(bytes.len(), 64);
        assert_eq!(&bytes[(4 + 1) * 4..(4 + 1) * 4 + 4], &[255, 0, 0, 255]);
        // copy a rect into a second framebuffer
        let mut dst = Framebuffer::new(4, 4);
        dst.copy_rect_from(&fb, TileRect { x0: 0, y0: 0, w: 2, h: 2 });
        assert_eq!(dst.pixel(1, 1), Color::RED);
        assert_eq!(dst.pixel(3, 3), Color::BLACK);
        // clear the rect back out
        dst.clear_rect(TileRect { x0: 0, y0: 0, w: 2, h: 2 }, Color::BLUE);
        assert_eq!(dst.pixel(1, 1), Color::BLUE);
        assert_eq!(dst.depth_at(1, 1), f32::INFINITY);
        // mismatched dims are a no-op, not a panic
        let small = Framebuffer::new(2, 2);
        dst.copy_rect_from(&small, TileRect { x0: 0, y0: 0, w: 2, h: 2 });
    }

    #[test]
    fn blit_copies_with_clipping() {
        let mut dst = Framebuffer::new(6, 6);
        let mut src = Framebuffer::new(3, 3);
        src.set_pixel(0, 0, Color::RED);
        src.set_pixel(2, 2, Color::GREEN);
        dst.blit(&src, 2, 2);
        assert_eq!(dst.pixel(2, 2), Color::RED);
        assert_eq!(dst.pixel(4, 4), Color::GREEN);
        assert_eq!(dst.pixel(0, 0), Color::BLACK);
        // clipping at the edge must not panic; the visible corner copies
        dst.blit(&src, 5, 5);
        assert_eq!(dst.pixel(5, 5), Color::RED);
    }

    #[test]
    fn ppm_export_writes_header_and_payload() {
        let mut fb = Framebuffer::new(3, 2);
        fb.set_pixel(0, 0, Color::RED);
        let path = std::env::temp_dir().join(format!("rvtk_fb_{}.ppm", std::process::id()));
        fb.save_ppm(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(bytes.len(), 11 + 3 * 2 * 3);
        // first pixel red
        let off = 11;
        assert_eq!(&bytes[off..off + 3], &[255, 0, 0]);
        std::fs::remove_file(&path).ok();
    }
}
