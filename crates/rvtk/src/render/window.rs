//! The render window: an offscreen surface with stereo support.
//!
//! The paper notes DV3D inherits "active and passive 3D stereo visualization
//! support" from VTK; here stereo renders the scene twice from an eye pair
//! and combines the images (red/cyan anaglyph or side-by-side for passive
//! stereo walls).

use crate::color::Color;
use crate::render::framebuffer::Framebuffer;
use crate::render::renderer::Renderer;
use std::path::Path;

/// Stereo rendering modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StereoMode {
    /// Plain mono rendering.
    #[default]
    Off,
    /// Red (left) / cyan (right) anaglyph composite.
    Anaglyph,
    /// Left and right images side by side (half width each).
    SideBySide,
}

/// An offscreen render window.
#[derive(Debug, Clone)]
pub struct RenderWindow {
    fb: Framebuffer,
    /// Stereo mode applied at `render`.
    pub stereo: StereoMode,
    /// World-space eye separation for stereo pairs.
    pub eye_separation: f64,
}

impl RenderWindow {
    /// Creates a window with the given pixel size.
    pub fn new(width: usize, height: usize) -> RenderWindow {
        RenderWindow {
            fb: Framebuffer::new(width, height),
            stereo: StereoMode::Off,
            eye_separation: 0.0,
        }
    }

    /// Window width.
    pub fn width(&self) -> usize {
        self.fb.width()
    }

    /// Window height.
    pub fn height(&self) -> usize {
        self.fb.height()
    }

    /// The current image.
    pub fn framebuffer(&self) -> &Framebuffer {
        &self.fb
    }

    /// Mutable framebuffer (for overlays drawn after `render`).
    pub fn framebuffer_mut(&mut self) -> &mut Framebuffer {
        &mut self.fb
    }

    /// Renders `renderer` into this window honouring the stereo mode.
    pub fn render(&mut self, renderer: &Renderer) {
        match self.stereo {
            StereoMode::Off => renderer.render(&mut self.fb),
            StereoMode::Anaglyph => {
                let sep = self.effective_separation(renderer);
                let (lc, rc) = renderer.camera.stereo_pair(sep);
                let mut left = renderer.clone();
                left.camera = lc;
                let mut right = renderer.clone();
                right.camera = rc;
                let mut fb_l = Framebuffer::new(self.width(), self.height());
                let mut fb_r = Framebuffer::new(self.width(), self.height());
                left.render(&mut fb_l);
                right.render(&mut fb_r);
                // red channel from the left eye, green+blue from the right
                for y in 0..self.height() {
                    for x in 0..self.width() {
                        let l = fb_l.pixel(x, y).luminance();
                        let r = fb_r.pixel(x, y);
                        self.fb.set_pixel(x, y, Color::rgb(l, r.g, r.b));
                    }
                }
            }
            StereoMode::SideBySide => {
                let sep = self.effective_separation(renderer);
                let (lc, rc) = renderer.camera.stereo_pair(sep);
                let half = (self.width() / 2).max(1);
                let mut fb_half = Framebuffer::new(half, self.height());
                for (cam, x_off) in [(lc, 0usize), (rc, half)] {
                    let mut eye = renderer.clone();
                    eye.camera = cam;
                    eye.render(&mut fb_half);
                    for y in 0..self.height() {
                        for x in 0..half {
                            self.fb.set_pixel(x + x_off, y, fb_half.pixel(x, y));
                        }
                    }
                }
            }
        }
    }

    fn effective_separation(&self, renderer: &Renderer) -> f64 {
        if self.eye_separation > 0.0 {
            self.eye_separation
        } else {
            renderer.camera.distance() / 30.0
        }
    }

    /// Saves the current image as PPM.
    pub fn save_ppm(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        self.fb.save_ppm(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::Vec3;
    use crate::poly_data::PolyData;
    use crate::render::actor::Actor;

    fn scene() -> Renderer {
        let mut pd = PolyData::new();
        pd.add_point(Vec3::new(-1.0, -1.0, 0.0));
        pd.add_point(Vec3::new(1.0, -1.0, 0.0));
        pd.add_point(Vec3::new(0.0, 1.0, 0.5));
        pd.triangles.push([0, 1, 2]);
        let mut a = Actor::from_poly_data(pd).with_color(Color::WHITE);
        a.property.lighting = false;
        let mut r = Renderer::new();
        r.add_actor(a);
        r.reset_camera();
        r
    }

    #[test]
    fn mono_render_draws() {
        let mut w = RenderWindow::new(48, 48);
        w.render(&scene());
        assert!(w.framebuffer().covered_pixels(Color::BLACK) > 40);
    }

    #[test]
    fn anaglyph_produces_color_fringes() {
        let mut w = RenderWindow::new(64, 64);
        w.stereo = StereoMode::Anaglyph;
        w.render(&scene());
        // somewhere there must be a pixel that is red-only or cyan-only
        // (the eyes see slightly different silhouettes)
        let mut red_fringe = false;
        let mut cyan_fringe = false;
        for c in w.framebuffer().colors() {
            if c.r > 0.5 && c.g < 0.1 && c.b < 0.1 {
                red_fringe = true;
            }
            if c.r < 0.1 && (c.g > 0.5 || c.b > 0.5) {
                cyan_fringe = true;
            }
        }
        assert!(red_fringe && cyan_fringe, "expected stereo fringes");
    }

    #[test]
    fn side_by_side_mirrors_scene_in_both_halves() {
        let mut w = RenderWindow::new(96, 48);
        w.stereo = StereoMode::SideBySide;
        w.render(&scene());
        let fb = w.framebuffer();
        let count_in = |x0: usize, x1: usize| {
            let mut n = 0;
            for y in 0..48 {
                for x in x0..x1 {
                    if fb.pixel(x, y).luminance() > 0.1 {
                        n += 1;
                    }
                }
            }
            n
        };
        let left = count_in(0, 48);
        let right = count_in(48, 96);
        assert!(left > 20 && right > 20, "left {left} right {right}");
        // roughly the same silhouette size
        let ratio = left as f64 / right as f64;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn explicit_eye_separation_used() {
        let mut w = RenderWindow::new(32, 32);
        w.stereo = StereoMode::Anaglyph;
        w.eye_separation = 2.0;
        w.render(&scene()); // must not panic; fringes grow with separation
        assert!(w.framebuffer().covered_pixels(Color::BLACK) > 0);
    }
}
