//! The camera: position/focal-point/view-up plus the interactive navigation
//! operations (azimuth, elevation, dolly, zoom, roll, pan) that DV3D binds
//! to mouse drags and propagates across spreadsheet cells.

use crate::math::{Bounds, Mat4, Vec3};

/// A perspective or parallel camera.
#[derive(Debug, Clone, PartialEq)]
pub struct Camera {
    /// Eye position.
    pub position: Vec3,
    /// Look-at point.
    pub focal_point: Vec3,
    /// Approximate up direction (re-orthogonalized in the view matrix).
    pub view_up: Vec3,
    /// Vertical field of view in degrees (perspective).
    pub view_angle_deg: f64,
    /// Use parallel (orthographic) projection.
    pub parallel_projection: bool,
    /// Half-height of the view volume in parallel mode.
    pub parallel_scale: f64,
    /// Near/far clip distances.
    pub clipping_range: (f64, f64),
}

impl Default for Camera {
    fn default() -> Camera {
        Camera {
            position: Vec3::new(0.0, 0.0, 10.0),
            focal_point: Vec3::ZERO,
            view_up: Vec3::new(0.0, 1.0, 0.0),
            view_angle_deg: 30.0,
            parallel_projection: false,
            parallel_scale: 1.0,
            clipping_range: (0.1, 1000.0),
        }
    }
}

impl Camera {
    /// Distance from eye to focal point.
    pub fn distance(&self) -> f64 {
        (self.position - self.focal_point).length()
    }

    /// Unit vector from focal point toward the eye.
    pub fn direction_of_projection(&self) -> Vec3 {
        (self.focal_point - self.position).normalized()
    }

    /// The view matrix.
    pub fn view_matrix(&self) -> Mat4 {
        Mat4::look_at(self.position, self.focal_point, self.view_up)
    }

    /// The projection matrix for a viewport aspect ratio.
    pub fn projection_matrix(&self, aspect: f64) -> Mat4 {
        let (near, far) = self.clipping_range;
        if self.parallel_projection {
            Mat4::orthographic(self.parallel_scale, aspect, near, far)
        } else {
            Mat4::perspective(self.view_angle_deg.to_radians(), aspect, near, far)
        }
    }

    /// Positions the camera to frame `bounds` from the (+x, +y, +z) octant,
    /// VTK's reset-camera behaviour.
    pub fn reset_to_bounds(&mut self, bounds: &Bounds) {
        if bounds.is_empty() {
            return;
        }
        let center = bounds.center();
        let radius = (bounds.diagonal() / 2.0).max(1e-6);
        let dist = radius / (self.view_angle_deg.to_radians() / 2.0).sin().max(0.05);
        let dir = Vec3::new(0.35, -0.7, 0.55).normalized();
        self.focal_point = center;
        self.position = center + dir * dist;
        self.view_up = Vec3::new(0.0, 0.0, 1.0);
        self.parallel_scale = radius;
        self.clipping_range = ((dist - 2.0 * radius).max(dist * 0.01), dist + 4.0 * radius);
    }

    /// Rotates the eye about the view-up axis through the focal point.
    pub fn azimuth(&mut self, degrees: f64) {
        let rot = Mat4::rotate(self.view_up, degrees.to_radians());
        let offset = self.position - self.focal_point;
        self.position = self.focal_point + rot.transform_vector(offset);
    }

    /// Rotates the eye about the "right" axis through the focal point.
    pub fn elevation(&mut self, degrees: f64) {
        let forward = self.direction_of_projection();
        let right = forward.cross(self.view_up).normalized();
        let rot = Mat4::rotate(right, degrees.to_radians());
        let offset = self.position - self.focal_point;
        self.position = self.focal_point + rot.transform_vector(offset);
        self.view_up = rot.transform_vector(self.view_up).normalized();
    }

    /// Rolls the camera about the view direction.
    pub fn roll(&mut self, degrees: f64) {
        let rot = Mat4::rotate(self.direction_of_projection(), degrees.to_radians());
        self.view_up = rot.transform_vector(self.view_up).normalized();
    }

    /// Moves the eye toward (factor > 1) or away from the focal point.
    pub fn dolly(&mut self, factor: f64) {
        let factor = factor.max(1e-6);
        let offset = self.position - self.focal_point;
        self.position = self.focal_point + offset / factor;
        let (near, far) = self.clipping_range;
        self.clipping_range = ((near / factor).max(1e-6), far);
    }

    /// Zooms: narrows the view angle (perspective) or the parallel scale.
    pub fn zoom(&mut self, factor: f64) {
        let factor = factor.max(1e-6);
        if self.parallel_projection {
            self.parallel_scale /= factor;
        } else {
            self.view_angle_deg = (self.view_angle_deg / factor).clamp(1.0, 170.0);
        }
    }

    /// Pans both eye and focal point in view plane coordinates.
    pub fn pan(&mut self, dx: f64, dy: f64) {
        let forward = self.direction_of_projection();
        let right = forward.cross(self.view_up).normalized();
        let up = right.cross(forward).normalized();
        let offset = right * dx + up * dy;
        self.position = self.position + offset;
        self.focal_point = self.focal_point + offset;
    }

    /// A stereo eye pair: cameras displaced ±half the eye separation along
    /// the "right" axis, converged on the focal point.
    pub fn stereo_pair(&self, eye_separation: f64) -> (Camera, Camera) {
        let forward = self.direction_of_projection();
        let right = forward.cross(self.view_up).normalized();
        let mut left = self.clone();
        let mut right_cam = self.clone();
        left.position = self.position - right * (eye_separation / 2.0);
        right_cam.position = self.position + right * (eye_separation / 2.0);
        (left, right_cam)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_bounds() -> Bounds {
        let mut b = Bounds::empty();
        b.include(Vec3::ZERO);
        b.include(Vec3::new(2.0, 2.0, 2.0));
        b
    }

    #[test]
    fn reset_frames_bounds() {
        let mut cam = Camera::default();
        cam.reset_to_bounds(&unit_bounds());
        assert_eq!(cam.focal_point, Vec3::new(1.0, 1.0, 1.0));
        assert!(cam.distance() > unit_bounds().diagonal());
        let (near, far) = cam.clipping_range;
        assert!(near > 0.0 && far > near);
        // empty bounds is a no-op
        let before = cam.clone();
        cam.reset_to_bounds(&Bounds::empty());
        assert_eq!(cam, before);
    }

    #[test]
    fn azimuth_preserves_distance_and_focal() {
        let mut cam = Camera::default();
        cam.reset_to_bounds(&unit_bounds());
        let d0 = cam.distance();
        let f0 = cam.focal_point;
        cam.azimuth(37.0);
        assert!((cam.distance() - d0).abs() < 1e-9);
        assert_eq!(cam.focal_point, f0);
        // 360° returns home
        let p = cam.position;
        cam.azimuth(360.0);
        assert!((cam.position - p).length() < 1e-9);
    }

    #[test]
    fn elevation_preserves_distance_and_orthogonality() {
        let mut cam = Camera::default();
        cam.reset_to_bounds(&unit_bounds());
        let d0 = cam.distance();
        cam.elevation(25.0);
        assert!((cam.distance() - d0).abs() < 1e-9);
        // view_up stays a unit vector
        assert!((cam.view_up.length() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dolly_scales_distance() {
        let mut cam = Camera::default();
        let d0 = cam.distance();
        cam.dolly(2.0);
        assert!((cam.distance() - d0 / 2.0).abs() < 1e-9);
        cam.dolly(0.5);
        assert!((cam.distance() - d0).abs() < 1e-9);
    }

    #[test]
    fn zoom_perspective_vs_parallel() {
        let mut cam = Camera::default();
        let a0 = cam.view_angle_deg;
        cam.zoom(2.0);
        assert!((cam.view_angle_deg - a0 / 2.0).abs() < 1e-9);
        cam.parallel_projection = true;
        cam.parallel_scale = 4.0;
        cam.zoom(2.0);
        assert!((cam.parallel_scale - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pan_moves_both_points() {
        let mut cam = Camera::default();
        let f0 = cam.focal_point;
        let p0 = cam.position;
        cam.pan(1.0, 2.0);
        assert!((cam.focal_point - f0).length() > 0.0);
        // eye and focal move in lockstep
        assert!(((cam.position - p0) - (cam.focal_point - f0)).length() < 1e-12);
    }

    #[test]
    fn roll_only_changes_up() {
        let mut cam = Camera::default();
        let p0 = cam.position;
        cam.roll(90.0);
        assert_eq!(cam.position, p0);
        // view direction is -z, so +90° roll about it takes +y to +x
        assert!((cam.view_up - Vec3::new(1.0, 0.0, 0.0)).length() < 1e-9);
    }

    #[test]
    fn stereo_pair_separated_along_right_axis() {
        let cam = Camera::default();
        let (l, r) = cam.stereo_pair(0.4);
        assert!(((l.position - r.position).length() - 0.4).abs() < 1e-12);
        assert_eq!(l.focal_point, r.focal_point);
    }

    #[test]
    fn view_matrix_centers_focal_point() {
        let mut cam = Camera::default();
        cam.reset_to_bounds(&unit_bounds());
        let v = cam.view_matrix().transform_point(cam.focal_point);
        assert!(v.x.abs() < 1e-9 && v.y.abs() < 1e-9);
        assert!(v.z < 0.0); // in front of the camera (-z)
    }
}
