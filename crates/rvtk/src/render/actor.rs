//! Actors: geometry + appearance + placement.

use crate::color::Color;
use crate::lookup_table::LookupTable;
use crate::math::{Bounds, Mat4};
use crate::poly_data::PolyData;

/// How geometry is drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Representation {
    /// Filled, shaded triangles (plus any line cells).
    #[default]
    Surface,
    /// Triangle edges only.
    Wireframe,
    /// Point sprites at each point.
    Points,
}

/// Appearance properties.
#[derive(Debug, Clone, PartialEq)]
pub struct Property {
    /// Flat color used when no lookup table / scalars are present.
    pub color: Color,
    /// Global opacity multiplier.
    pub opacity: f32,
    /// Map point scalars through this table when present.
    pub lookup_table: Option<LookupTable>,
    /// Drawing mode.
    pub representation: Representation,
    /// Point sprite radius in pixels (Points mode).
    pub point_size: f32,
    /// Enable diffuse lighting (otherwise flat/full-bright).
    pub lighting: bool,
    /// Ambient light floor in [0, 1].
    pub ambient: f32,
}

impl Default for Property {
    fn default() -> Property {
        Property {
            color: Color::rgb(0.8, 0.8, 0.8),
            opacity: 1.0,
            lookup_table: None,
            representation: Representation::Surface,
            point_size: 2.0,
            lighting: true,
            ambient: 0.25,
        }
    }
}

/// A placed, styled piece of geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct Actor {
    /// The geometry (already in world coordinates unless `transform` says
    /// otherwise).
    pub poly_data: PolyData,
    /// Appearance.
    pub property: Property,
    /// Model transform applied at render time.
    pub transform: Mat4,
    /// Skip rendering when false.
    pub visible: bool,
}

impl Actor {
    /// Wraps geometry with default appearance.
    pub fn from_poly_data(poly_data: PolyData) -> Actor {
        Actor {
            poly_data,
            property: Property::default(),
            transform: Mat4::identity(),
            visible: true,
        }
    }

    /// Builder-style color setter.
    pub fn with_color(mut self, color: Color) -> Actor {
        self.property.color = color;
        self
    }

    /// Builder-style lookup-table setter (auto-ranges to the scalars when
    /// the table's range is degenerate).
    pub fn with_lookup_table(mut self, mut lut: LookupTable) -> Actor {
        if lut.range.0 >= lut.range.1 {
            if let Some(range) = self.poly_data.scalar_range() {
                lut.set_range(range);
            }
        }
        self.property.lookup_table = Some(lut);
        self
    }

    /// Builder-style opacity setter.
    pub fn with_opacity(mut self, opacity: f32) -> Actor {
        self.property.opacity = opacity.clamp(0.0, 1.0);
        self
    }

    /// Builder-style representation setter.
    pub fn with_representation(mut self, rep: Representation) -> Actor {
        self.property.representation = rep;
        self
    }

    /// World-space bounds (transform applied).
    pub fn bounds(&self) -> Bounds {
        let mut b = Bounds::empty();
        for &p in &self.poly_data.points {
            b.include(self.transform.transform_point(p));
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lookup_table::ColormapName;
    use crate::math::Vec3;

    fn tri() -> PolyData {
        let mut pd = PolyData::new();
        pd.add_point(Vec3::ZERO);
        pd.add_point(Vec3::new(1.0, 0.0, 0.0));
        pd.add_point(Vec3::new(0.0, 1.0, 0.0));
        pd.triangles.push([0, 1, 2]);
        pd
    }

    #[test]
    fn builders_compose() {
        let a = Actor::from_poly_data(tri())
            .with_color(Color::RED)
            .with_opacity(2.0)
            .with_representation(Representation::Wireframe);
        assert_eq!(a.property.color, Color::RED);
        assert_eq!(a.property.opacity, 1.0); // clamped
        assert_eq!(a.property.representation, Representation::Wireframe);
        assert!(a.visible);
    }

    #[test]
    fn lut_auto_ranges_to_scalars() {
        let mut pd = tri();
        pd.scalars = Some(vec![5.0, 10.0, 15.0]);
        let a = Actor::from_poly_data(pd)
            .with_lookup_table(LookupTable::new(ColormapName::Jet, (0.0, 0.0)));
        assert_eq!(a.property.lookup_table.as_ref().unwrap().range, (5.0, 15.0));
        // explicit ranges are kept
        let a2 = Actor::from_poly_data(tri())
            .with_lookup_table(LookupTable::new(ColormapName::Jet, (1.0, 2.0)));
        assert_eq!(a2.property.lookup_table.as_ref().unwrap().range, (1.0, 2.0));
    }

    #[test]
    fn bounds_apply_transform() {
        let mut a = Actor::from_poly_data(tri());
        a.transform = Mat4::translate(Vec3::new(10.0, 0.0, 0.0));
        let b = a.bounds();
        assert_eq!(b.min.x, 10.0);
        assert_eq!(b.max.x, 11.0);
    }
}
