//! Software rendering: cameras, lights, actors, a z-buffered rasterizer,
//! a ray-cast volume renderer, offscreen framebuffers and stereo modes.
//!
//! The pipeline mirrors VTK: a [`Renderer`] owns [`Actor`]s (surface/line
//! geometry), [`Volume`]s (ray-cast scalar fields), a [`Camera`] and
//! [`Light`]s, and draws into the [`Framebuffer`] of a [`RenderWindow`].
//! DV3D hides all of these behind its plot types, exactly as the paper
//! describes ("without exposing details such as actors, cameras, renderers,
//! and transfer functions").

mod actor;
mod camera;
mod framebuffer;
mod light;
mod renderer;
mod text;
mod volume;
mod window;

pub(crate) mod rasterizer;
pub(crate) mod tile;

pub mod scanline_ref;

pub use actor::{Actor, Property, Representation};
pub use camera::Camera;
pub use framebuffer::{Framebuffer, TileGrid, TileRect};
pub use light::Light;
pub use renderer::{RedrawStats, RenderCache, Renderer};
pub use text::{draw_colorbar, draw_text, text_width, GLYPH_HEIGHT};
pub use volume::{BlendMode, Volume, VolumeProperty};
pub use window::{RenderWindow, StereoMode};
