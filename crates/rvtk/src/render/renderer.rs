//! The renderer: a scene of actors, volumes and lights seen by a camera.

use crate::color::Color;
use crate::math::Bounds;
use crate::render::actor::Actor;
use crate::render::camera::Camera;
use crate::render::framebuffer::{Framebuffer, TileGrid};
use crate::render::rasterizer;
use crate::render::light::Light;
use crate::render::tile;
use crate::render::volume::{render_volume, Volume};

/// Frame-to-frame state for incremental redraw: the per-tile FNV content
/// hashes of the last frame plus a pristine copy of its pixels.
///
/// [`Renderer::render_with_cache`] re-rasterizes only tiles whose binned
/// primitive content changed and restores the rest from the cached copy,
/// which makes camera-still animation frames and overlay-only updates
/// nearly free. The snapshot is taken before the caller draws any 2D
/// overlays into the framebuffer, so overlays never leak into the cache.
#[derive(Debug, Clone, Default)]
pub struct RenderCache {
    grid: Option<TileGrid>,
    hashes: Vec<u64>,
    fb: Option<Framebuffer>,
}

impl RenderCache {
    /// An empty cache; the first render through it redraws everything.
    pub fn new() -> RenderCache {
        RenderCache::default()
    }

    /// Drops all cached state, forcing the next frame to redraw fully.
    pub fn invalidate(&mut self) {
        self.grid = None;
        self.hashes.clear();
        self.fb = None;
    }
}

/// What an incremental render actually did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RedrawStats {
    /// Tiles in the frame's grid.
    pub tiles_total: usize,
    /// Tiles re-rasterized this frame.
    pub tiles_redrawn: usize,
}

impl RedrawStats {
    /// Tiles restored from the cache instead of re-rasterized.
    pub fn tiles_reused(&self) -> usize {
        self.tiles_total - self.tiles_redrawn
    }
}

/// A scene plus a camera.
#[derive(Debug, Clone)]
pub struct Renderer {
    actors: Vec<Actor>,
    volumes: Vec<Volume>,
    /// Scene lights (empty = ambient only).
    pub lights: Vec<Light>,
    /// The scene camera.
    pub camera: Camera,
    /// Clear color.
    pub background: Color,
}

impl Default for Renderer {
    fn default() -> Renderer {
        Renderer::new()
    }
}

impl Renderer {
    /// An empty scene with one default light.
    pub fn new() -> Renderer {
        Renderer {
            actors: Vec::new(),
            volumes: Vec::new(),
            lights: vec![Light::default()],
            camera: Camera::default(),
            background: Color::BLACK,
        }
    }

    /// Adds an actor, returning its index.
    pub fn add_actor(&mut self, actor: Actor) -> usize {
        self.actors.push(actor);
        self.actors.len() - 1
    }

    /// Adds a volume, returning its index.
    pub fn add_volume(&mut self, volume: Volume) -> usize {
        self.volumes.push(volume);
        self.volumes.len() - 1
    }

    /// All actors.
    pub fn actors(&self) -> &[Actor] {
        &self.actors
    }

    /// Mutable actor access (for interactive reconfiguration).
    pub fn actors_mut(&mut self) -> &mut Vec<Actor> {
        &mut self.actors
    }

    /// All volumes.
    pub fn volumes(&self) -> &[Volume] {
        &self.volumes
    }

    /// Mutable volume access.
    pub fn volumes_mut(&mut self) -> &mut Vec<Volume> {
        &mut self.volumes
    }

    /// Removes everything from the scene.
    pub fn clear_scene(&mut self) {
        self.actors.clear();
        self.volumes.clear();
    }

    /// Combined world bounds of all visible props.
    pub fn scene_bounds(&self) -> Bounds {
        let mut b = Bounds::empty();
        for a in self.actors.iter().filter(|a| a.visible) {
            b.union(&a.bounds());
        }
        for v in self.volumes.iter().filter(|v| v.visible) {
            b.union(&v.image.bounds());
        }
        b
    }

    /// Frames the scene with the camera (VTK `ResetCamera`).
    pub fn reset_camera(&mut self) {
        let b = self.scene_bounds();
        self.camera.reset_to_bounds(&b);
    }

    /// Renders the scene into a framebuffer: clear, rasterize geometry,
    /// then ray-cast volumes against the geometry depth.
    pub fn render(&self, fb: &mut Framebuffer) {
        fb.clear(self.background);
        let vp = self
            .camera
            .projection_matrix(fb.aspect())
            .mul_mat(&self.camera.view_matrix());
        rasterizer::draw_actors(&self.actors, &vp, &self.lights, fb);
        for v in &self.volumes {
            render_volume(v, &vp, fb);
        }
    }

    /// Renders like [`Renderer::render`], but skips re-rasterizing tiles
    /// whose binned primitive content is unchanged since the last frame
    /// drawn through `cache`, restoring their pixels (color **and** depth)
    /// from the cached copy instead. Output is bit-identical to a full
    /// render.
    ///
    /// Scenes containing volumes force a full redraw: the ray-cast pass
    /// writes the whole frame and is not tiled. A dimension or background
    /// change likewise invalidates the cache.
    pub fn render_with_cache(
        &self,
        fb: &mut Framebuffer,
        cache: &mut RenderCache,
    ) -> RedrawStats {
        let vp = self
            .camera
            .projection_matrix(fb.aspect())
            .mul_mat(&self.camera.view_matrix());
        let grid = TileGrid::with_default_tile(fb.width(), fb.height());
        let prims = rasterizer::build_sorted_primitives(
            &self.actors,
            &vp,
            &self.lights,
            fb.width(),
            fb.height(),
        );
        let bins = tile::bin_primitives(&prims, &grid);
        // Salt the content hashes with everything that affects a tile's
        // pixels besides its binned primitives: dimensions and clear color.
        let mut salt = 0xd6e8_feb8_6659_fd93u64 ^ (fb.width() as u64).rotate_left(17);
        salt ^= (fb.height() as u64).rotate_left(34);
        salt ^= u64::from(self.background.r.to_bits())
            | u64::from(self.background.g.to_bits()) << 32;
        salt ^= u64::from(self.background.b.to_bits()).rotate_left(48)
            ^ u64::from(self.background.a.to_bits()).rotate_left(16);
        let hashes = tile::tile_hashes(&prims, &bins, salt);

        let reusable = self.volumes.is_empty()
            && cache.grid == Some(grid)
            && cache.hashes.len() == hashes.len()
            && cache.fb.as_ref().is_some_and(|c| {
                c.width() == fb.width() && c.height() == fb.height()
            });
        let dirty: Vec<bool> = if reusable {
            hashes.iter().zip(&cache.hashes).map(|(a, b)| a != b).collect()
        } else {
            vec![true; grid.len()]
        };
        let mut redrawn = 0usize;
        for (idx, is_dirty) in dirty.iter().enumerate() {
            let rect = grid.rect(idx);
            if *is_dirty {
                fb.clear_rect(rect, self.background);
                redrawn += 1;
            } else if let Some(cached) = cache.fb.as_ref() {
                fb.copy_rect_from(cached, rect);
            }
        }
        tile::rasterize_bins(&prims, &bins, &grid, Some(&dirty), fb);
        for v in &self.volumes {
            render_volume(v, &vp, fb);
        }
        // Snapshot the pristine frame (before any caller-drawn overlays).
        match cache.fb.as_mut() {
            Some(c) => c.clone_from(fb),
            None => cache.fb = Some(fb.clone()),
        }
        cache.hashes = hashes;
        cache.grid = Some(grid);
        RedrawStats { tiles_total: grid.len(), tiles_redrawn: redrawn }
    }

    /// Casts a pick ray through pixel `(px, py)` and probes the first
    /// volume it passes through, returning the world position and scalar at
    /// the nearest valid sample. This backs the DV3D cell pick display.
    pub fn pick(
        &self,
        fb_width: usize,
        fb_height: usize,
        px: f64,
        py: f64,
    ) -> Option<(crate::math::Vec3, f32)> {
        let vp = self
            .camera
            .projection_matrix(fb_width as f64 / fb_height.max(1) as f64)
            .mul_mat(&self.camera.view_matrix());
        let (origin, dir) = rasterizer::pixel_ray(&vp, fb_width, fb_height, px, py)?;
        for v in &self.volumes {
            let bounds = v.image.bounds();
            if let Some((t0, t1)) = bounds.ray_intersect(origin, dir) {
                let step = bounds.diagonal() / 200.0;
                let mut t = t0.max(0.0);
                while t <= t1 {
                    let p = origin + dir * t;
                    if let Some(s) = v.image.sample_world(p) {
                        return Some((p, s));
                    }
                    t += step;
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image_data::ImageData;
    use crate::math::Vec3;
    use crate::poly_data::PolyData;

    fn tri_actor() -> Actor {
        let mut pd = PolyData::new();
        pd.add_point(Vec3::new(-1.0, -1.0, 0.0));
        pd.add_point(Vec3::new(1.0, -1.0, 0.0));
        pd.add_point(Vec3::new(0.0, 1.0, 0.0));
        pd.triangles.push([0, 1, 2]);
        let mut a = Actor::from_poly_data(pd).with_color(Color::RED);
        a.property.lighting = false;
        a
    }

    #[test]
    fn full_scene_renders() {
        let mut r = Renderer::new();
        r.add_actor(tri_actor());
        r.reset_camera();
        let mut fb = Framebuffer::new(64, 64);
        r.render(&mut fb);
        assert!(fb.covered_pixels(r.background) > 50);
    }

    #[test]
    fn background_color_applied() {
        let mut r = Renderer::new();
        r.background = Color::rgb(0.1, 0.2, 0.3);
        let mut fb = Framebuffer::new(8, 8);
        r.render(&mut fb);
        let c = fb.pixel(4, 4);
        assert!((c.g - 0.2).abs() < 1e-6);
    }

    #[test]
    fn scene_bounds_union_actors_and_volumes() {
        let mut r = Renderer::new();
        r.add_actor(tri_actor());
        let img = ImageData::from_fn([4, 4, 4], [1.0; 3], [10.0, 0.0, 0.0], |_, _, _| 1.0);
        r.add_volume(Volume::from_image(img));
        let b = r.scene_bounds();
        assert_eq!(b.min.x, -1.0);
        assert_eq!(b.max.x, 13.0);
        r.clear_scene();
        assert!(r.scene_bounds().is_empty());
    }

    #[test]
    fn reset_camera_sees_everything() {
        let mut r = Renderer::new();
        r.add_actor(tri_actor());
        r.reset_camera();
        let d = r.camera.distance();
        assert!(d > 1.0 && d.is_finite());
    }

    #[test]
    fn pick_finds_volume_scalar() {
        let mut r = Renderer::new();
        let img = ImageData::from_fn([8, 8, 8], [1.0; 3], [0.0; 3], |x, _, _| x as f32);
        r.add_volume(Volume::from_image(img));
        r.reset_camera();
        let hit = r.pick(64, 64, 32.0, 32.0);
        assert!(hit.is_some());
        let (p, s) = hit.unwrap();
        assert!((s as f64 - p.x).abs() < 0.8, "scalar {s} at {p:?}");
        // a ray that misses
        let miss = r.pick(64, 64, 0.0, 0.0);
        assert!(miss.is_none() || miss.unwrap().1.is_finite());
    }

    fn frame_bits(fb: &Framebuffer) -> Vec<u32> {
        fb.colors()
            .iter()
            .flat_map(|c| [c.r.to_bits(), c.g.to_bits(), c.b.to_bits(), c.a.to_bits()])
            .collect()
    }

    #[test]
    fn cached_render_is_bit_identical_and_skips_clean_tiles() {
        let mut r = Renderer::new();
        r.add_actor(tri_actor());
        r.reset_camera();
        let mut cache = RenderCache::new();
        let mut fb_cached = Framebuffer::new(96, 96);
        // first frame: everything dirty
        let s1 = r.render_with_cache(&mut fb_cached, &mut cache);
        assert_eq!(s1.tiles_redrawn, s1.tiles_total);
        // second frame, unchanged scene: nothing redrawn, output identical
        let mut fb2 = Framebuffer::new(96, 96);
        let s2 = r.render_with_cache(&mut fb2, &mut cache);
        assert_eq!(s2.tiles_redrawn, 0);
        assert_eq!(s2.tiles_reused(), s2.tiles_total);
        let mut fb_full = Framebuffer::new(96, 96);
        r.render(&mut fb_full);
        assert_eq!(frame_bits(&fb2), frame_bits(&fb_full));
        let depths_match = (0..96).all(|y| {
            (0..96).all(|x| fb2.depth_at(x, y).to_bits() == fb_full.depth_at(x, y).to_bits())
        });
        assert!(depths_match, "cached depth must match a full render");
        // move the camera: tiles go dirty again and output tracks the scene
        r.camera.azimuth(10.0);
        let mut fb3 = Framebuffer::new(96, 96);
        let s3 = r.render_with_cache(&mut fb3, &mut cache);
        assert!(s3.tiles_redrawn > 0);
        let mut fb3_full = Framebuffer::new(96, 96);
        r.render(&mut fb3_full);
        assert_eq!(frame_bits(&fb3), frame_bits(&fb3_full));
    }

    #[test]
    fn cache_invalidates_on_resize_and_background_change() {
        let mut r = Renderer::new();
        r.add_actor(tri_actor());
        r.reset_camera();
        let mut cache = RenderCache::new();
        let mut fb = Framebuffer::new(64, 64);
        r.render_with_cache(&mut fb, &mut cache);
        // resize: full redraw
        let mut small = Framebuffer::new(32, 32);
        let s = r.render_with_cache(&mut small, &mut cache);
        assert_eq!(s.tiles_redrawn, s.tiles_total);
        // background change: full redraw (salt differs), pixels match full
        r.background = Color::rgb(0.1, 0.1, 0.2);
        let s = r.render_with_cache(&mut small, &mut cache);
        assert_eq!(s.tiles_redrawn, s.tiles_total);
        let mut full = Framebuffer::new(32, 32);
        r.render(&mut full);
        assert_eq!(frame_bits(&small), frame_bits(&full));
        // explicit invalidate forces a full redraw too
        cache.invalidate();
        let s = r.render_with_cache(&mut small, &mut cache);
        assert_eq!(s.tiles_redrawn, s.tiles_total);
    }

    #[test]
    fn volumes_force_full_redraw_through_cache() {
        let mut r = Renderer::new();
        let img = ImageData::from_fn([6, 6, 6], [1.0; 3], [0.0; 3], |_, _, _| 3.0);
        r.add_volume(Volume::from_image(img));
        r.reset_camera();
        let mut cache = RenderCache::new();
        let mut fb = Framebuffer::new(48, 48);
        r.render_with_cache(&mut fb, &mut cache);
        let s = r.render_with_cache(&mut fb, &mut cache);
        assert_eq!(s.tiles_redrawn, s.tiles_total, "volume scenes never reuse tiles");
        let mut full = Framebuffer::new(48, 48);
        r.render(&mut full);
        assert_eq!(frame_bits(&fb), frame_bits(&full));
    }

    #[test]
    fn render_with_geometry_and_volume_together() {
        let mut r = Renderer::new();
        r.add_actor(tri_actor());
        let img = ImageData::from_fn([6, 6, 6], [0.3; 3], [-0.9, -0.9, -2.0], |_, _, _| 5.0);
        let mut vol = Volume::from_image(img);
        vol.property.opacity =
            crate::lookup_table::OpacityTransferFunction::from_nodes(vec![(0.0, 0.3)]);
        r.add_volume(vol);
        r.reset_camera();
        let mut fb = Framebuffer::new(48, 48);
        r.render(&mut fb);
        assert!(fb.covered_pixels(r.background) > 100);
    }
}
