//! The renderer: a scene of actors, volumes and lights seen by a camera.

use crate::color::Color;
use crate::math::Bounds;
use crate::render::actor::Actor;
use crate::render::camera::Camera;
use crate::render::framebuffer::Framebuffer;
use crate::render::light::Light;
use crate::render::rasterizer;
use crate::render::volume::{render_volume, Volume};

/// A scene plus a camera.
#[derive(Debug, Clone)]
pub struct Renderer {
    actors: Vec<Actor>,
    volumes: Vec<Volume>,
    /// Scene lights (empty = ambient only).
    pub lights: Vec<Light>,
    /// The scene camera.
    pub camera: Camera,
    /// Clear color.
    pub background: Color,
}

impl Default for Renderer {
    fn default() -> Renderer {
        Renderer::new()
    }
}

impl Renderer {
    /// An empty scene with one default light.
    pub fn new() -> Renderer {
        Renderer {
            actors: Vec::new(),
            volumes: Vec::new(),
            lights: vec![Light::default()],
            camera: Camera::default(),
            background: Color::BLACK,
        }
    }

    /// Adds an actor, returning its index.
    pub fn add_actor(&mut self, actor: Actor) -> usize {
        self.actors.push(actor);
        self.actors.len() - 1
    }

    /// Adds a volume, returning its index.
    pub fn add_volume(&mut self, volume: Volume) -> usize {
        self.volumes.push(volume);
        self.volumes.len() - 1
    }

    /// All actors.
    pub fn actors(&self) -> &[Actor] {
        &self.actors
    }

    /// Mutable actor access (for interactive reconfiguration).
    pub fn actors_mut(&mut self) -> &mut Vec<Actor> {
        &mut self.actors
    }

    /// All volumes.
    pub fn volumes(&self) -> &[Volume] {
        &self.volumes
    }

    /// Mutable volume access.
    pub fn volumes_mut(&mut self) -> &mut Vec<Volume> {
        &mut self.volumes
    }

    /// Removes everything from the scene.
    pub fn clear_scene(&mut self) {
        self.actors.clear();
        self.volumes.clear();
    }

    /// Combined world bounds of all visible props.
    pub fn scene_bounds(&self) -> Bounds {
        let mut b = Bounds::empty();
        for a in self.actors.iter().filter(|a| a.visible) {
            b.union(&a.bounds());
        }
        for v in self.volumes.iter().filter(|v| v.visible) {
            b.union(&v.image.bounds());
        }
        b
    }

    /// Frames the scene with the camera (VTK `ResetCamera`).
    pub fn reset_camera(&mut self) {
        let b = self.scene_bounds();
        self.camera.reset_to_bounds(&b);
    }

    /// Renders the scene into a framebuffer: clear, rasterize geometry,
    /// then ray-cast volumes against the geometry depth.
    pub fn render(&self, fb: &mut Framebuffer) {
        fb.clear(self.background);
        let vp = self
            .camera
            .projection_matrix(fb.aspect())
            .mul_mat(&self.camera.view_matrix());
        rasterizer::draw_actors(&self.actors, &vp, &self.lights, fb);
        for v in &self.volumes {
            render_volume(v, &vp, fb);
        }
    }

    /// Casts a pick ray through pixel `(px, py)` and probes the first
    /// volume it passes through, returning the world position and scalar at
    /// the nearest valid sample. This backs the DV3D cell pick display.
    pub fn pick(
        &self,
        fb_width: usize,
        fb_height: usize,
        px: f64,
        py: f64,
    ) -> Option<(crate::math::Vec3, f32)> {
        let vp = self
            .camera
            .projection_matrix(fb_width as f64 / fb_height.max(1) as f64)
            .mul_mat(&self.camera.view_matrix());
        let (origin, dir) = rasterizer::pixel_ray(&vp, fb_width, fb_height, px, py)?;
        for v in &self.volumes {
            let bounds = v.image.bounds();
            if let Some((t0, t1)) = bounds.ray_intersect(origin, dir) {
                let step = bounds.diagonal() / 200.0;
                let mut t = t0.max(0.0);
                while t <= t1 {
                    let p = origin + dir * t;
                    if let Some(s) = v.image.sample_world(p) {
                        return Some((p, s));
                    }
                    t += step;
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image_data::ImageData;
    use crate::math::Vec3;
    use crate::poly_data::PolyData;

    fn tri_actor() -> Actor {
        let mut pd = PolyData::new();
        pd.add_point(Vec3::new(-1.0, -1.0, 0.0));
        pd.add_point(Vec3::new(1.0, -1.0, 0.0));
        pd.add_point(Vec3::new(0.0, 1.0, 0.0));
        pd.triangles.push([0, 1, 2]);
        let mut a = Actor::from_poly_data(pd).with_color(Color::RED);
        a.property.lighting = false;
        a
    }

    #[test]
    fn full_scene_renders() {
        let mut r = Renderer::new();
        r.add_actor(tri_actor());
        r.reset_camera();
        let mut fb = Framebuffer::new(64, 64);
        r.render(&mut fb);
        assert!(fb.covered_pixels(r.background) > 50);
    }

    #[test]
    fn background_color_applied() {
        let mut r = Renderer::new();
        r.background = Color::rgb(0.1, 0.2, 0.3);
        let mut fb = Framebuffer::new(8, 8);
        r.render(&mut fb);
        let c = fb.pixel(4, 4);
        assert!((c.g - 0.2).abs() < 1e-6);
    }

    #[test]
    fn scene_bounds_union_actors_and_volumes() {
        let mut r = Renderer::new();
        r.add_actor(tri_actor());
        let img = ImageData::from_fn([4, 4, 4], [1.0; 3], [10.0, 0.0, 0.0], |_, _, _| 1.0);
        r.add_volume(Volume::from_image(img));
        let b = r.scene_bounds();
        assert_eq!(b.min.x, -1.0);
        assert_eq!(b.max.x, 13.0);
        r.clear_scene();
        assert!(r.scene_bounds().is_empty());
    }

    #[test]
    fn reset_camera_sees_everything() {
        let mut r = Renderer::new();
        r.add_actor(tri_actor());
        r.reset_camera();
        let d = r.camera.distance();
        assert!(d > 1.0 && d.is_finite());
    }

    #[test]
    fn pick_finds_volume_scalar() {
        let mut r = Renderer::new();
        let img = ImageData::from_fn([8, 8, 8], [1.0; 3], [0.0; 3], |x, _, _| x as f32);
        r.add_volume(Volume::from_image(img));
        r.reset_camera();
        let hit = r.pick(64, 64, 32.0, 32.0);
        assert!(hit.is_some());
        let (p, s) = hit.unwrap();
        assert!((s as f64 - p.x).abs() < 0.8, "scalar {s} at {p:?}");
        // a ray that misses
        let miss = r.pick(64, 64, 0.0, 0.0);
        assert!(miss.is_none() || miss.unwrap().1.is_finite());
    }

    #[test]
    fn render_with_geometry_and_volume_together() {
        let mut r = Renderer::new();
        r.add_actor(tri_actor());
        let img = ImageData::from_fn([6, 6, 6], [0.3; 3], [-0.9, -0.9, -2.0], |_, _, _| 5.0);
        let mut vol = Volume::from_image(img);
        vol.property.opacity =
            crate::lookup_table::OpacityTransferFunction::from_nodes(vec![(0.0, 0.3)]);
        r.add_volume(vol);
        r.reset_camera();
        let mut fb = Framebuffer::new(48, 48);
        r.render(&mut fb);
        assert!(fb.covered_pixels(r.background) > 100);
    }
}
