//! Ray-cast volume rendering with color/opacity transfer functions —
//! the engine behind DV3D's Volume render plot.

use crate::color::Color;
use crate::image_data::ImageData;
use crate::lookup_table::{ColorTransferFunction, ColormapName, OpacityTransferFunction};
use crate::math::{Mat4, Vec3};
use crate::render::framebuffer::Framebuffer;
use rayon::prelude::*;

/// How samples along a ray combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlendMode {
    /// Front-to-back alpha compositing (the classic volume rendering).
    #[default]
    Composite,
    /// Maximum intensity projection.
    Mip,
    /// Mean of samples along the ray.
    Average,
}

/// Appearance of a volume.
#[derive(Debug, Clone)]
pub struct VolumeProperty {
    /// Scalar → color.
    pub color: ColorTransferFunction,
    /// Scalar → opacity (per unit reference length).
    pub opacity: OpacityTransferFunction,
    /// Blend mode.
    pub blend: BlendMode,
    /// World distance between samples.
    pub sample_distance: f64,
    /// Stop a ray once accumulated alpha exceeds this (Composite only).
    /// Values ≥ 1 disable early termination.
    pub early_termination_alpha: f32,
}

impl VolumeProperty {
    /// A reasonable default over the given scalar range.
    pub fn over_range(range: (f32, f32)) -> VolumeProperty {
        let level = (range.0 + range.1) / 2.0;
        let window = (range.1 - range.0).max(1e-6);
        VolumeProperty {
            color: ColorTransferFunction::from_colormap(ColormapName::Jet, range),
            opacity: OpacityTransferFunction::leveling(level, window, 0.6),
            blend: BlendMode::Composite,
            sample_distance: 1.0,
            early_termination_alpha: 0.98,
        }
    }
}

/// A renderable volume: image data plus appearance.
#[derive(Debug, Clone)]
pub struct Volume {
    /// The scalar field.
    pub image: ImageData,
    /// Appearance.
    pub property: VolumeProperty,
    /// Skip rendering when false.
    pub visible: bool,
}

impl Volume {
    /// Wraps image data with a default transfer function over its range.
    pub fn from_image(image: ImageData) -> Volume {
        let range = image.scalar_range().unwrap_or((0.0, 1.0));
        Volume { property: VolumeProperty::over_range(range), image, visible: true }
    }
}

/// Ray-casts `volume` into `fb` (which may already hold rasterized
/// geometry — rays terminate at the geometry depth and composite over it).
pub(crate) fn render_volume(volume: &Volume, view_proj: &Mat4, fb: &mut Framebuffer) {
    if !volume.visible {
        return;
    }
    let Some(inv) = view_proj.inverse() else {
        return;
    };
    let width = fb.width();
    let height = fb.height();
    if width < 2 || height < 2 {
        return;
    }
    let bounds = volume.image.bounds();
    let prop = &volume.property;
    let step = prop.sample_distance.max(bounds.diagonal() / 4096.0).max(1e-6);
    // opacity correction reference length: one sample distance at the
    // property's nominal setting
    let reference = prop.sample_distance.max(1e-6);

    // one band per rayon worker, via the partition helper shared with the
    // rasterizer
    let mut bands = fb.thread_bands();
    bands.par_iter_mut().for_each(|band| {
        let (colors, depths) = (&mut *band.colors, &mut *band.depths);
        for row in 0..band.rows {
            let y = band.y0 + row;
            let ndc_y = 1.0 - 2.0 * y as f64 / (height - 1) as f64;
            for x in 0..width {
                let ndc_x = 2.0 * x as f64 / (width - 1) as f64 - 1.0;
                let near = inv.transform_point(Vec3::new(ndc_x, ndc_y, -1.0));
                let far = inv.transform_point(Vec3::new(ndc_x, ndc_y, 1.0));
                let dir_full = far - near;
                let len = dir_full.length();
                if len < 1e-12 {
                    continue;
                }
                let dir = dir_full / len;
                let Some((mut t0, mut t1)) = bounds.ray_intersect(near, dir) else {
                    continue;
                };
                t0 = t0.max(0.0);
                // stop at existing geometry
                let i = row * width + x;
                let zbuf = depths[i];
                if zbuf.is_finite() {
                    let geom = inv.transform_point(Vec3::new(ndc_x, ndc_y, zbuf as f64));
                    let t_geom = (geom - near).dot(dir);
                    t1 = t1.min(t_geom);
                }
                if t1 <= t0 {
                    continue;
                }
                if let Some(c) = march(volume, near, dir, t0, t1, step, reference, prop) {
                    colors[i] = c.over(Color { a: 1.0, ..colors[i] });
                }
            }
        }
    });
}

/// Marches one ray; returns the accumulated premixed color (alpha =
/// coverage) or `None` when nothing was hit.
#[allow(clippy::too_many_arguments)]
fn march(
    volume: &Volume,
    origin: Vec3,
    dir: Vec3,
    t0: f64,
    t1: f64,
    step: f64,
    reference: f64,
    prop: &VolumeProperty,
) -> Option<Color> {
    let img = &volume.image;
    let mut acc = Color::TRANSPARENT;
    let mut alpha = 0.0f32;
    let mut mip: Option<f32> = None;
    let mut sum = 0.0f64;
    let mut count = 0usize;
    let mut t = t0 + step / 2.0;
    while t < t1 {
        let p = origin + dir * t;
        if let Some(s) = img.sample_world(p) {
            match prop.blend {
                BlendMode::Composite => {
                    let a_nominal = prop.opacity.map(s);
                    if a_nominal > 1e-4 {
                        // correct opacity for the actual step length
                        let a = 1.0 - (1.0 - a_nominal).powf((step / reference) as f32);
                        let c = prop.color.map(s);
                        let w = (1.0 - alpha) * a;
                        acc.r += c.r * w;
                        acc.g += c.g * w;
                        acc.b += c.b * w;
                        alpha += w;
                        if alpha >= prop.early_termination_alpha {
                            break;
                        }
                    }
                }
                BlendMode::Mip => {
                    mip = Some(mip.map_or(s, |m| m.max(s)));
                }
                BlendMode::Average => {
                    sum += s as f64;
                    count += 1;
                }
            }
        }
        t += step;
    }
    match prop.blend {
        BlendMode::Composite => {
            if alpha <= 1e-4 {
                None
            } else {
                // un-premultiply for `over`
                Some(Color {
                    r: acc.r / alpha,
                    g: acc.g / alpha,
                    b: acc.b / alpha,
                    a: alpha.min(1.0),
                })
            }
        }
        BlendMode::Mip => mip.map(|m| {
            let c = prop.color.map(m);
            Color { a: prop.opacity.map(m).max(0.05), ..c }
        }),
        BlendMode::Average => {
            if count == 0 {
                None
            } else {
                let m = (sum / count as f64) as f32;
                let c = prop.color.map(m);
                Some(Color { a: prop.opacity.map(m).max(0.05), ..c })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::camera::Camera;

    fn ball_volume(n: usize) -> Volume {
        let c = (n - 1) as f64 / 2.0;
        let img = ImageData::from_fn([n, n, n], [1.0; 3], [0.0; 3], move |x, y, z| {
            let d = (((x - c).powi(2) + (y - c).powi(2) + (z - c).powi(2)) as f32).sqrt();
            (c as f32 - d).max(0.0) // bright core, zero outside the ball
        });
        let mut v = Volume::from_image(img);
        v.property.opacity = OpacityTransferFunction::from_nodes(vec![
            (0.0, 0.0),
            (1.0, 0.0),
            (2.0, 0.5),
        ]);
        v.property.sample_distance = 0.5;
        v
    }

    fn camera_for(volume: &Volume, aspect: f64) -> Mat4 {
        let mut cam = Camera::default();
        cam.reset_to_bounds(&volume.image.bounds());
        cam.projection_matrix(aspect).mul_mat(&cam.view_matrix())
    }

    #[test]
    fn composite_renders_a_blob() {
        let v = ball_volume(16);
        let vp = camera_for(&v, 1.0);
        let mut fb = Framebuffer::new(48, 48);
        render_volume(&v, &vp, &mut fb);
        let covered = fb.covered_pixels(Color::BLACK);
        assert!(covered > 50, "covered {covered}");
        // blob is centred: centre pixel lit, corner dark
        assert!(fb.pixel(24, 24).luminance() > 0.05);
        assert_eq!(fb.pixel(0, 0), Color::BLACK);
    }

    #[test]
    fn invisible_volume_renders_nothing() {
        let mut v = ball_volume(12);
        v.visible = false;
        let vp = camera_for(&v, 1.0);
        let mut fb = Framebuffer::new(32, 32);
        render_volume(&v, &vp, &mut fb);
        assert_eq!(fb.covered_pixels(Color::BLACK), 0);
    }

    #[test]
    fn mip_mode_lights_up() {
        let mut v = ball_volume(16);
        v.property.blend = BlendMode::Mip;
        let vp = camera_for(&v, 1.0);
        let mut fb = Framebuffer::new(32, 32);
        render_volume(&v, &vp, &mut fb);
        assert!(fb.pixel(16, 16).luminance() > 0.05);
    }

    #[test]
    fn average_mode_lights_up() {
        let mut v = ball_volume(16);
        v.property.blend = BlendMode::Average;
        v.property.opacity = OpacityTransferFunction::from_nodes(vec![(0.0, 0.8)]);
        let vp = camera_for(&v, 1.0);
        let mut fb = Framebuffer::new(32, 32);
        render_volume(&v, &vp, &mut fb);
        assert!(fb.covered_pixels(Color::BLACK) > 20);
    }

    #[test]
    fn volume_composites_over_geometry_depth() {
        // Fill the framebuffer with geometry *in front of* the volume: the
        // volume must not overwrite it.
        let v = ball_volume(16);
        let vp = camera_for(&v, 1.0);
        let mut fb = Framebuffer::new(32, 32);
        // fake near geometry covering everything at NDC depth -0.999
        for y in 0..32 {
            for x in 0..32 {
                fb.plot(x, y, -0.999, Color::GREEN);
            }
        }
        render_volume(&v, &vp, &mut fb);
        let c = fb.pixel(16, 16);
        assert!(c.g > 0.9 && c.r < 0.05, "geometry should stay in front: {c:?}");
    }

    #[test]
    fn early_termination_matches_full_march_visually() {
        let mut v = ball_volume(20);
        v.property.opacity =
            OpacityTransferFunction::from_nodes(vec![(0.0, 0.0), (2.0, 0.95)]);
        let vp = camera_for(&v, 1.0);
        let mut fb_early = Framebuffer::new(24, 24);
        render_volume(&v, &vp, &mut fb_early);
        v.property.early_termination_alpha = 2.0; // disabled
        let mut fb_full = Framebuffer::new(24, 24);
        render_volume(&v, &vp, &mut fb_full);
        // same pixels covered, similar centre color
        assert_eq!(
            fb_early.covered_pixels(Color::BLACK),
            fb_full.covered_pixels(Color::BLACK)
        );
        let a = fb_early.pixel(12, 12);
        let b = fb_full.pixel(12, 12);
        assert!((a.luminance() - b.luminance()).abs() < 0.12, "{a:?} vs {b:?}");
    }

    #[test]
    fn empty_transfer_function_renders_nothing() {
        let mut v = ball_volume(12);
        v.property.opacity = OpacityTransferFunction::from_nodes(vec![(0.0, 0.0), (1e9, 0.0)]);
        let vp = camera_for(&v, 1.0);
        let mut fb = Framebuffer::new(24, 24);
        render_volume(&v, &vp, &mut fb);
        assert_eq!(fb.covered_pixels(Color::BLACK), 0);
    }

    #[test]
    fn default_property_spans_scalar_range() {
        let v = ball_volume(10);
        let p = VolumeProperty::over_range((0.0, 10.0));
        assert_eq!(p.blend, BlendMode::Composite);
        assert!(p.opacity.map(0.0) < 1e-6);
        assert!(p.opacity.map(10.0) > 0.5);
        drop(v);
    }
}
