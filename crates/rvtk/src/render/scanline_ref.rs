//! The pre-tile row-band rasterizer, frozen as a reference engine.
//!
//! This is the engine the tile-binned path (`tile.rs`) replaced: the
//! framebuffer splits into one horizontal band per rayon worker and every
//! band scans **every** primitive — lines re-walk all their steps and point
//! sprites re-test their full bounding box once per band. It is kept
//! verbatim (not updated for speed) so property tests can assert the tile
//! engine is bit-identical to it for random scenes at any thread count,
//! and so `benches/render.rs` can measure the speedup honestly. Mirrors
//! the `cdat::expr` ↔ eager-reference precedent from PR 5.

use crate::color::Color;
use crate::render::framebuffer::Framebuffer;
use crate::render::rasterizer::{
    build_sorted_primitives, PrimitiveList, RasterLine, RasterPoint, RasterTri,
};
use crate::render::renderer::Renderer;
use crate::render::volume::render_volume;
use rayon::prelude::*;

/// Renders `r`'s scene with the historic row-band engine: clear, scanline
/// rasterization, then the (shared) volume ray-cast pass. The public
/// counterpart of [`Renderer::render`] for identity tests and benches.
pub fn render_scene_scanline(r: &Renderer, fb: &mut Framebuffer) {
    fb.clear(r.background);
    let vp = r.camera.projection_matrix(fb.aspect()).mul_mat(&r.camera.view_matrix());
    let prims = build_sorted_primitives(r.actors(), &vp, &r.lights, fb.width(), fb.height());
    rasterize_scanline(&prims, fb);
    for v in r.volumes() {
        render_volume(v, &vp, fb);
    }
}

/// Rasterizes all primitives with one band per rayon worker, every band
/// scanning the full primitive list.
pub(crate) fn rasterize_scanline(prims: &PrimitiveList, fb: &mut Framebuffer) {
    let mut bands = fb.thread_bands();
    bands.par_iter_mut().for_each(|band| {
        let mut band = Band {
            y0: band.y0,
            rows: band.rows,
            width: band.width,
            colors: band.colors,
            depths: band.depths,
        };
        for t in &prims.tris {
            band.triangle(t);
        }
        for l in &prims.lines {
            band.line(l);
        }
        for p in &prims.points {
            band.point(p);
        }
    });
}

/// A horizontal slice of the framebuffer owned by one rasterizer thread.
struct Band<'a> {
    y0: usize,
    rows: usize,
    width: usize,
    colors: &'a mut [Color],
    depths: &'a mut [f32],
}

impl Band<'_> {
    #[inline]
    fn plot(&mut self, x: usize, y: usize, z: f32, c: Color) {
        if y < self.y0 || y >= self.y0 + self.rows || x >= self.width {
            return;
        }
        let i = (y - self.y0) * self.width + x;
        if z < self.depths[i] {
            if c.a >= 0.999 {
                self.colors[i] = c;
                self.depths[i] = z;
            } else if c.a > 0.001 {
                self.colors[i] = Color { a: 1.0, ..c }.lerp(self.colors[i], 1.0 - c.a);
            }
        }
    }

    fn triangle(&mut self, t: &RasterTri) {
        let ymin = t.sy.iter().cloned().fold(f64::INFINITY, f64::min).floor().max(self.y0 as f64);
        let ymax = t
            .sy
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
            .ceil()
            .min((self.y0 + self.rows - 1) as f64);
        if ymin > ymax {
            return;
        }
        let xmin = t.sx.iter().cloned().fold(f64::INFINITY, f64::min).floor().max(0.0);
        let xmax = t
            .sx
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
            .ceil()
            .min((self.width - 1) as f64);
        if xmin > xmax {
            return;
        }
        // signed area; reject degenerate
        let area = (t.sx[1] - t.sx[0]) * (t.sy[2] - t.sy[0])
            - (t.sx[2] - t.sx[0]) * (t.sy[1] - t.sy[0]);
        if area.abs() < 1e-12 {
            return;
        }
        let inv_area = 1.0 / area;
        for y in (ymin as usize)..=(ymax as usize) {
            let py = y as f64;
            for x in (xmin as usize)..=(xmax as usize) {
                let px = x as f64;
                // barycentric coordinates
                let w0 = ((t.sx[1] - px) * (t.sy[2] - py) - (t.sx[2] - px) * (t.sy[1] - py))
                    * inv_area;
                let w1 = ((t.sx[2] - px) * (t.sy[0] - py) - (t.sx[0] - px) * (t.sy[2] - py))
                    * inv_area;
                let w2 = 1.0 - w0 - w1;
                if w0 < -1e-9 || w1 < -1e-9 || w2 < -1e-9 {
                    continue;
                }
                let z = (w0 * t.z[0] as f64 + w1 * t.z[1] as f64 + w2 * t.z[2] as f64) as f32;
                if !(-1.001..=1.001).contains(&z) {
                    continue; // outside clip volume
                }
                let c = Color {
                    r: (w0 as f32) * t.color[0].r + (w1 as f32) * t.color[1].r
                        + (w2 as f32) * t.color[2].r,
                    g: (w0 as f32) * t.color[0].g + (w1 as f32) * t.color[1].g
                        + (w2 as f32) * t.color[2].g,
                    b: (w0 as f32) * t.color[0].b + (w1 as f32) * t.color[1].b
                        + (w2 as f32) * t.color[2].b,
                    a: (w0 as f32) * t.color[0].a + (w1 as f32) * t.color[1].a
                        + (w2 as f32) * t.color[2].a,
                };
                self.plot(x, y, z, c);
            }
        }
    }

    fn line(&mut self, l: &RasterLine) {
        let dx = l.b.0 - l.a.0;
        let dy = l.b.1 - l.a.1;
        let steps = dx.abs().max(dy.abs()).ceil().max(1.0);
        // skip lines entirely outside this band
        let (ly_min, ly_max) = (l.a.1.min(l.b.1), l.a.1.max(l.b.1));
        if ly_max < self.y0 as f64 - 1.0 || ly_min > (self.y0 + self.rows) as f64 {
            return;
        }
        let n = steps as usize;
        for s in 0..=n {
            let t = s as f64 / steps;
            let x = l.a.0 + dx * t;
            let y = l.a.1 + dy * t;
            if x < 0.0 || y < 0.0 {
                continue;
            }
            let z = l.a.2 + (l.b.2 - l.a.2) * t as f32;
            if !(-1.001..=1.001).contains(&z) {
                continue;
            }
            // nudge lines toward the viewer so they win ties against the
            // coplanar surfaces they annotate
            let c = l.color_a.lerp(l.color_b, t as f32);
            self.plot(x.round() as usize, y.round() as usize, z - 2e-4, c);
        }
    }

    fn point(&mut self, p: &RasterPoint) {
        if !(-1.001..=1.001).contains(&p.z) {
            return;
        }
        let r = p.radius.max(0.5) as f64;
        let (x0, x1) = ((p.x - r).floor().max(0.0), (p.x + r).ceil());
        let (y0, y1) = ((p.y - r).floor().max(0.0), (p.y + r).ceil());
        for y in (y0 as usize)..=(y1 as usize) {
            for x in (x0 as usize)..=(x1 as usize) {
                let d2 = (x as f64 - p.x).powi(2) + (y as f64 - p.y).powi(2);
                if d2 <= r * r {
                    self.plot(x, y, p.z, p.color);
                }
            }
        }
    }
}
