//! Bit-identity contracts for the tile-binned rasterizer.
//!
//! 1. **Tile binning is invisible in the bits.** For random scenes (mixed
//!    surface/wireframe/points actors, translucency, LUT coloring, random
//!    camera poses and framebuffer shapes) the tile-binned engine must
//!    produce color AND depth bit-identical to the frozen row-band
//!    scanline reference, at rayon pools of 1, 2, 3 and 8 workers (the
//!    vendored rayon honours RAYON_NUM_THREADS at dispatch time).
//! 2. **Golden multi-actor frame.** One deterministic frame mixing
//!    surface, wireframe and points actors is pinned by an FNV-1a hash
//!    of its RGBA8 bytes, so a
//!    kernel regression shows up as a hash diff even if identity with the
//!    (also-changed) reference still holds.
//! 3. **Incremental redraw is invisible in the bits.** A camera-motion
//!    script rendered through `RenderCache` matches the scanline
//!    reference frame-for-frame while still-frames reuse every tile.

use rvtk::color::Color;
use rvtk::math::Vec3;
use rvtk::poly_data::PolyData;
use rvtk::render::{
    scanline_ref, Actor, Camera, Framebuffer, RenderCache, Renderer, Representation,
};
use std::sync::Mutex;

// ---- deterministic PRNG (no external crates, no wall clock) ----

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    /// Uniform-ish in [-range, range).
    fn coord(&mut self, range: f64) -> f64 {
        (self.next() % 2_000) as f64 / 1_000.0 * range - range
    }

    fn unit(&mut self) -> f32 {
        (self.next() % 1_000) as f32 / 999.0
    }

    fn chance(&mut self, pct: u64) -> bool {
        self.next() % 100 < pct
    }
}

/// Serializes RAYON_NUM_THREADS mutation across tests in this binary.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let prev = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", n.to_string());
    let out = f();
    match prev {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    out
}

fn random_actor(rng: &mut Rng) -> Actor {
    let mut pd = PolyData::new();
    let n_pts = 3 + rng.below(30);
    for _ in 0..n_pts {
        pd.add_point(Vec3::new(rng.coord(1.5), rng.coord(1.5), rng.coord(1.5)));
    }
    let n_tris = 1 + rng.below(20);
    for _ in 0..n_tris {
        let tri =
            [rng.below(n_pts) as u32, rng.below(n_pts) as u32, rng.below(n_pts) as u32];
        pd.triangles.push(tri);
    }
    if rng.chance(40) {
        let line: Vec<u32> = (0..2 + rng.below(5)).map(|_| rng.below(n_pts) as u32).collect();
        pd.lines.push(line);
    }
    if rng.chance(30) {
        pd.scalars = Some((0..n_pts).map(|_| rng.unit()).collect());
    }
    if rng.chance(30) {
        pd.normals = Some(
            (0..n_pts)
                .map(|_| {
                    Vec3::new(
                        rng.coord(1.0),
                        rng.coord(1.0),
                        rng.coord(1.0) + 0.01,
                    )
                    .normalized()
                })
                .collect(),
        );
    }
    let color = Color::rgb(rng.unit(), rng.unit(), rng.unit());
    let mut a = Actor::from_poly_data(pd).with_color(color);
    a.property.representation = match rng.below(3) {
        0 => Representation::Surface,
        1 => Representation::Wireframe,
        _ => Representation::Points,
    };
    a.property.point_size = 1.0 + rng.unit() * 7.0;
    a.property.lighting = rng.chance(50);
    if rng.chance(35) {
        a = a.with_opacity(0.2 + 0.6 * rng.unit()); // translucent: order-sensitive
    }
    if rng.chance(25) {
        use rvtk::lookup_table::{ColormapName, LookupTable};
        if a.poly_data.scalars.is_none() {
            let n = a.poly_data.points.len();
            a.poly_data.scalars = Some((0..n).map(|i| i as f32 / n.max(1) as f32).collect());
        }
        a.property.lookup_table =
            Some(LookupTable::new(ColormapName::Jet, (0.0, 1.0)));
    }
    a
}

fn random_scene(rng: &mut Rng) -> Renderer {
    let mut r = Renderer::new();
    for _ in 0..1 + rng.below(4) {
        r.add_actor(random_actor(rng));
    }
    if rng.chance(30) {
        r.background = Color::rgb(rng.unit(), rng.unit(), rng.unit());
    }
    r.reset_camera();
    r.camera.azimuth(rng.coord(180.0));
    r.camera.elevation(rng.coord(80.0));
    if rng.chance(50) {
        r.camera.dolly(0.5 + 1.2 * rng.unit() as f64);
    }
    if rng.chance(25) {
        r.camera.parallel_projection = true;
        r.camera.parallel_scale = 1.0 + rng.unit() as f64 * 3.0;
    }
    r
}

fn bits(fb: &Framebuffer) -> Vec<u32> {
    let mut out: Vec<u32> = fb
        .colors()
        .iter()
        .flat_map(|c| [c.r.to_bits(), c.g.to_bits(), c.b.to_bits(), c.a.to_bits()])
        .collect();
    for y in 0..fb.height() {
        for x in 0..fb.width() {
            out.push(fb.depth_at(x, y).to_bits());
        }
    }
    out
}

#[test]
fn tile_engine_bit_identical_to_scanline_for_random_scenes() {
    let _guard = ENV_LOCK.lock().expect("env lock");
    let sizes = [(33usize, 31usize), (64, 48), (97, 80), (128, 64), (16, 16)];
    for seed in 0..40u64 {
        let mut rng = Rng::new(seed);
        let scene = random_scene(&mut rng);
        let (w, h) = sizes[rng.below(sizes.len())];
        // the reference is thread-count invariant; render it once
        let mut reference = Framebuffer::new(w, h);
        with_threads(2, || scanline_ref::render_scene_scanline(&scene, &mut reference));
        let ref_bits = bits(&reference);
        for threads in [1usize, 2, 3, 8] {
            let mut fb = Framebuffer::new(w, h);
            with_threads(threads, || scene.render(&mut fb));
            assert_eq!(
                bits(&fb),
                ref_bits,
                "tile vs scanline diverged: seed {seed}, {w}x{h}, {threads} threads"
            );
        }
    }
}

/// The pinned multi-actor scene: a lit surface, a translucent wireframe
/// and a point cloud, deterministically generated.
fn golden_scene() -> Renderer {
    let mut rng = Rng::new(0xD1_5EA5E);
    let mut r = Renderer::new();
    let mut surface = random_actor(&mut rng);
    surface.property.representation = Representation::Surface;
    surface.property.lighting = true;
    r.add_actor(surface);
    let mut wire = random_actor(&mut rng);
    wire.property.representation = Representation::Wireframe;
    r.add_actor(wire.with_opacity(0.6));
    let mut pts = random_actor(&mut rng);
    pts.property.representation = Representation::Points;
    pts.property.point_size = 5.0;
    r.add_actor(pts);
    r.background = Color::rgb(0.05, 0.05, 0.12);
    r.reset_camera();
    r.camera.azimuth(30.0);
    r.camera.elevation(-20.0);
    r
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[test]
fn golden_multi_actor_frame_pinned() {
    let _guard = ENV_LOCK.lock().expect("env lock");
    let scene = golden_scene();
    let mut fb = Framebuffer::new(160, 120);
    with_threads(2, || scene.render(&mut fb));
    let hash = fnv1a(&fb.to_rgba8());
    // Pinned from the scanline engine before the tile rewrite; the tile
    // engine must reproduce it bit-for-bit (quantized to RGBA8 here).
    assert_eq!(hash, GOLDEN_FRAME_FNV, "golden frame drifted: got {hash:#018x}");
    // and the reference agrees, so the pin tracks both engines
    let mut reference = Framebuffer::new(160, 120);
    with_threads(2, || scanline_ref::render_scene_scanline(&scene, &mut reference));
    assert_eq!(fnv1a(&reference.to_rgba8()), GOLDEN_FRAME_FNV);
}

const GOLDEN_FRAME_FNV: u64 = 0x5489ac74984d3617;

#[test]
fn cached_motion_script_bit_identical_to_reference() {
    let _guard = ENV_LOCK.lock().expect("env lock");
    let mut scene = golden_scene();
    let mut cache = RenderCache::new();
    let mut fb = Framebuffer::new(160, 120);
    // script: still, still, small orbit steps, still
    let script: [f64; 6] = [0.0, 0.0, 1.5, 1.5, -2.0, 0.0];
    for (i, step) in script.iter().enumerate() {
        scene.camera.azimuth(*step);
        let stats = with_threads(3, || scene.render_with_cache(&mut fb, &mut cache));
        let mut reference = Framebuffer::new(160, 120);
        with_threads(3, || scanline_ref::render_scene_scanline(&scene, &mut reference));
        assert_eq!(bits(&fb), bits(&reference), "cached frame {i} diverged");
        if i > 0 && *step == 0.0 {
            assert_eq!(stats.tiles_redrawn, 0, "still frame {i} must reuse all tiles");
        }
        if *step != 0.0 {
            assert!(stats.tiles_redrawn > 0, "motion frame {i} must redraw");
        }
    }
}

#[test]
fn default_camera_roundtrip_does_not_disturb_state() {
    // regression guard: rendering through the cache must not mutate the
    // renderer (render_with_cache takes &self)
    let scene = golden_scene();
    let cam_before: Camera = scene.camera.clone();
    let mut cache = RenderCache::new();
    let mut fb = Framebuffer::new(64, 48);
    scene.render_with_cache(&mut fb, &mut cache);
    assert_eq!(format!("{cam_before:?}"), format!("{:?}", scene.camera));
}
