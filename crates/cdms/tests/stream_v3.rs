//! Integration tests for `.ncr` v3 out-of-core streaming (ISSUE 9):
//!
//! * property test: v3 and v2 encodings of the same dataset decode to
//!   per-time-window identical slabs, for arbitrary window/level/codec
//!   options;
//! * the parallel v3 encoder is byte-identical at 1, 2 and 8 threads;
//! * a seeded fault storm over a series 4× larger than the chunk cache
//!   plays back every frame — no stall, no panic — with salvage and
//!   degradation counters matching the injected fault plan EXACTLY, the
//!   cache never exceeding its byte budget, and the whole report
//!   bit-identical across thread counts.

use cdms::format::{self};
use cdms::format_v3::{self, V3Options};
use cdms::storage::{FaultyStorage, LocalDisk, StorageFault, StorageFaultPlan};
use cdms::stream::{StreamOptions, StreamReport, StreamingDataset};
use cdms::synth::SynthesisSpec;
use cdms::{AxisKind, Dataset, Storage};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;
use std::sync::Mutex;

/// Serializes RAYON_NUM_THREADS mutation across tests in this binary:
/// the test harness runs cases concurrently and the env var is
/// process-global.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let prev = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", n.to_string());
    let out = f();
    match prev {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    out
}

fn temp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cdms_stream_v3_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}.ncr"))
}

// ---- v3 ↔ v2 equivalence ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For arbitrary (small) datasets and arbitrary writer options, the
    /// v3 encoding decodes to exactly the same dataset as the v2
    /// encoding, window by window.
    #[test]
    fn v3_decodes_identical_to_v2_per_time_window(
        nt in 1usize..9,
        nlev in 1usize..3,
        nlat in 2usize..7,
        nlon in 2usize..9,
        seed in 0u64..1000,
        window in 1usize..5,
        levels in 1usize..4,
        compress in any::<bool>(),
    ) {
        let ds = SynthesisSpec::new(nt, nlev, nlat, nlon).seed(seed).build();
        let opts = V3Options { window, levels, compress };
        let via_v2 = format::from_bytes(&format::to_bytes(&ds)).unwrap();
        let via_v3 = format::from_bytes(&format_v3::to_bytes_v3_with(&ds, &opts).0).unwrap();
        prop_assert_eq!(via_v2.variable_ids(), via_v3.variable_ids());
        for v2 in via_v2.variables() {
            let v3 = via_v3.variable(&v2.id).unwrap();
            prop_assert_eq!(&v3.axes, &v2.axes);
            prop_assert_eq!(&v3.attributes, &v2.attributes);
            if v2.axis_index(AxisKind::Time).is_some() {
                // compare window by window, the granularity v3 stores
                let n = v2.n_times();
                let mut t = 0;
                while t < n {
                    let hi = (t + window).min(n);
                    let a = v2.time_window(t..hi).unwrap();
                    let b = v3.time_window(t..hi).unwrap();
                    prop_assert_eq!(a.array, b.array, "var '{}' window {}..{}", v2.id, t, hi);
                    t = hi;
                }
            } else {
                prop_assert_eq!(&v3.array, &v2.array);
            }
        }
    }
}

#[test]
fn v3_encode_is_byte_identical_across_thread_counts() {
    let _guard = ENV_LOCK.lock().expect("env lock");
    let ds = SynthesisSpec::new(10, 3, 16, 24).seed(77).build();
    let opts = V3Options { window: 3, levels: 3, compress: true };
    let reference = with_threads(1, || format_v3::to_bytes_v3_with(&ds, &opts).0);
    for n in [2usize, 8] {
        let bytes = with_threads(n, || format_v3::to_bytes_v3_with(&ds, &opts).0);
        assert_eq!(
            bytes, reference,
            "v3 encoding differs between 1 and {n} threads"
        );
    }
}

#[test]
fn v1_and_v2_files_remain_readable() {
    // regression guard for the version dispatch: introducing v3 must not
    // disturb how existing files parse
    let ds = SynthesisSpec::new(3, 1, 6, 8).seed(9).build();
    let v2 = format::to_bytes(&ds);
    let back = format::from_bytes(&v2).unwrap();
    assert_eq!(back.variable_ids(), ds.variable_ids());
    // and a v2 file opened for streaming fails cleanly, not confusingly
    let path = temp_path("v2_guard");
    std::fs::write(&path, &v2).unwrap();
    let err = StreamingDataset::open(&path).unwrap_err();
    assert!(err.to_string().contains("not streamable"), "{err}");
    std::fs::remove_file(&path).ok();
}

// ---- the fault storm ----

/// The storm: a 24-step series streamed through a cache 1/4 its size
/// while scripted faults kill, corrupt, delay and interrupt specific
/// chunks. Returns the per-frame outcomes and the final report.
fn run_fault_storm(path: &std::path::Path, ds: &Dataset) -> (Vec<(usize, &'static str)>, StreamReport) {
    let meta = format_v3::read_meta_with(&LocalDisk, path).unwrap();
    let vi = meta.var_index("ta").unwrap();
    let entry = |w: usize, l: usize| *meta.chunk(vi, w, l).unwrap();

    // window 3: level 0 dead forever, level 1 intact   → every frame degrades
    // window 5: level 0 corrupt, level 1 dead          → every frame masked
    // window 7: level 0 transiently failing twice      → retried, then exact
    // window 9: level 0 slow once (40 ms vs 5 ms SLO)  → one deadline miss
    let e30 = entry(3, 0);
    let e50 = entry(5, 0);
    let e51 = entry(5, 1);
    let e70 = entry(7, 0);
    let e90 = entry(9, 0);
    let plan = StorageFaultPlan::none()
        .inject_read(e30.offset..e30.offset + 1, StorageFault::ReadError, 0)
        .inject_read(e50.offset..e50.offset + 1, StorageFault::BitFlip { bit: 301 }, 0)
        .inject_read(e51.offset..e51.offset + 1, StorageFault::ReadError, 0)
        .inject_read(e70.offset..e70.offset + 1, StorageFault::Transient { times: 0 }, 2)
        .inject_read(e90.offset..e90.offset + 1, StorageFault::DelayedRead { ms: 40 }, 1);

    let storage: Arc<dyn Storage> = Arc::new(FaultyStorage::new(plan));
    let sopts = StreamOptions {
        cache_bytes: 8_000,
        prefetch_windows: 1,
        max_retries: 3,
        backoff_base_ms: 0,
        backoff_cap_ms: 0,
        deadline_ms: Some(5),
    };
    let sd = StreamingDataset::open_with(storage, path, sopts).unwrap();
    let sv = sd.variable("ta").unwrap();
    let ta = ds.variable("ta").unwrap();

    let mut outcomes = Vec::new();
    for t in 0..sv.n_times() {
        // the acceptance criterion: EVERY frame completes, storm or not
        let frame = sv
            .time_slab_degraded(t)
            .unwrap_or_else(|e| panic!("frame {t} stalled: {e}"));
        let exact = ta.time_slab(t).unwrap();
        let outcome = if frame.array == exact.array {
            "exact"
        } else if frame.array.valid_count() == 0 {
            "masked"
        } else {
            "degraded"
        };
        outcomes.push((t, outcome));
    }
    (outcomes, sd.report())
}

#[test]
fn fault_storm_playback_completes_every_frame_with_exact_counters() {
    let _guard = ENV_LOCK.lock().expect("env lock");
    // 24 steps × 2 levels × 12×16 cells, windows of 2 → 12 level-0 chunks
    // of 3 840 decoded bytes each
    let ds = SynthesisSpec::new(24, 2, 12, 16).seed(4242).build();
    let opts = V3Options { window: 2, levels: 2, compress: false };
    let path = temp_path("storm");
    format_v3::write_dataset_v3_with(&LocalDisk, &ds, &path, &opts).unwrap();

    // the premise of the test: the series dwarfs the cache budget
    let meta = format_v3::read_meta_with(&LocalDisk, &path).unwrap();
    let vi = meta.var_index("ta").unwrap();
    let vm = &meta.vars[vi];
    let decoded_level0_bytes: usize = (0..vm.n_windows())
        .map(|w| vm.level_volume(w, 0).unwrap() * 5)
        .sum();
    assert!(
        decoded_level0_bytes >= 4 * 8_000,
        "series ({decoded_level0_bytes} B decoded) must be ≥ 4× the 8 kB cache budget"
    );

    let mut reports = Vec::new();
    for threads in [1usize, 2, 8] {
        let (outcomes, report) = with_threads(threads, || run_fault_storm(&path, &ds));

        // per-frame outcomes follow the fault plan exactly
        for (t, outcome) in &outcomes {
            let want = match t / 2 {
                3 => "degraded",
                5 => "masked",
                _ => "exact",
            };
            assert_eq!(outcome, &want, "frame {t} at {threads} thread(s)");
        }
        assert_eq!(outcomes.len(), 24);

        // counters are a deterministic function of the plan:
        //   retried        = the 2 budgeted transient failures on (7,0)
        //   degraded       = 2 frames of window 3 served from level 1
        //   salvaged       = 2 frames of window 5 served as masked fill
        //   deadline_missed= 1 delayed read of (9,0)
        //   failed_chunks  = (3,0) hard, (5,0) corrupt, (5,1) hard
        assert_eq!(report.retried, 2, "threads {threads}: {report}");
        assert_eq!(report.degraded, 2, "threads {threads}: {report}");
        assert_eq!(report.salvaged, 2, "threads {threads}: {report}");
        assert_eq!(report.deadline_missed, 1, "threads {threads}: {report}");
        assert_eq!(report.failed_chunks, 3, "threads {threads}: {report}");
        // the budget held, and the cache actually worked
        assert!(report.peak_cache_bytes <= 8_000, "threads {threads}: {report}");
        assert!(report.evictions > 0, "threads {threads}: {report}");
        assert!(report.cache_hits > 0, "threads {threads}: {report}");
        reports.push(report);
    }
    // the whole session is deterministic: byte-for-byte identical reports
    assert_eq!(reports[0], reports[1], "1 vs 2 threads");
    assert_eq!(reports[0], reports[2], "1 vs 8 threads");
    std::fs::remove_file(&path).ok();
}

#[test]
fn healthy_playback_is_bit_exact_and_fault_free() {
    let ds = SynthesisSpec::new(16, 2, 10, 14).seed(11).build();
    let opts = V3Options { window: 4, levels: 3, compress: true };
    let path = temp_path("healthy");
    format_v3::write_dataset_v3_with(&LocalDisk, &ds, &path, &opts).unwrap();
    let sopts = StreamOptions { cache_bytes: 64 << 10, ..StreamOptions::default() };
    let sd = StreamingDataset::open_with(Arc::new(LocalDisk), &path, sopts).unwrap();
    for var in ds.variables() {
        if var.axis_index(AxisKind::Time).is_none() {
            continue;
        }
        let sv = sd.variable(&var.id).unwrap();
        for t in 0..sv.n_times() {
            let frame = sv.time_slab_degraded(t).unwrap();
            assert_eq!(frame.array, var.time_slab(t).unwrap().array, "'{}' t={t}", var.id);
        }
    }
    let report = sd.report();
    assert_eq!(report.retried, 0);
    assert_eq!(report.failed_chunks, 0);
    assert_eq!(report.degraded + report.salvaged + report.deadline_missed, 0);
    std::fs::remove_file(&path).ok();
}
