//! Corruption fuzzer for `.ncr` format v2 (ISSUE 4 acceptance criterion).
//!
//! Thousands of random single- and multi-byte mutations of an encoded v2
//! file are driven through the strict decoder and the salvage path,
//! asserting three properties:
//!
//! 1. **No panic** — every mutation yields an `Err` or a dataset, never an
//!    abort.
//! 2. **No unbounded allocation** — the decoders bound every allocation
//!    against the bytes actually present (the workspace forbids unsafe
//!    code, so there is no custom allocator to meter with; instead the
//!    guard paths are unit-tested in `format.rs`
//!    (`hostile_length_fields_fail_before_allocating`) and this fuzzer
//!    checks the observable consequences: decoded output never exceeds the
//!    input's own element count, and each decode finishes inside a strict
//!    wall-clock budget that materializing a hostile multi-gigabyte length
//!    field could never meet).
//! 3. **No silently-wrong data, full recovery of intact sections** — using
//!    the encoder's [`V2Layout`] byte map as the oracle: every variable
//!    whose payload bytes (and referenced axis payloads) are untouched
//!    must be recovered bit-exact, and every recovered variable must equal
//!    its original.
//!
//! Iteration count defaults to 1500 and is overridable via
//! `CDMS_FUZZ_ITERS` (CI smoke runs use a reduced count).

use cdms::format::{self, SectionKind, V2Layout};
use cdms::format_v3::{self, V3Meta, V3Options};
use cdms::storage::LocalDisk;
use cdms::synth::SynthesisSpec;
use cdms::Dataset;
use proptest::prelude::*;
use proptest::test_runner::TestRng;
use std::ops::Range;
use std::time::{Duration, Instant};

/// Wall-clock ceiling for decoding one ~50 KB mutated file. An honest
/// decode is microseconds; zero-filling even one hostile gigabyte-sized
/// length field would blow far past this.
const DECODE_BUDGET: Duration = Duration::from_secs(5);

fn fuzz_iters() -> usize {
    std::env::var("CDMS_FUZZ_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1500)
}

/// A representative multi-variable dataset with shared axes.
fn sample() -> Dataset {
    SynthesisSpec::new(3, 2, 12, 24).seed(42).build()
}

/// Total elements across all variables — the output-size bound.
fn element_count(ds: &Dataset) -> usize {
    ds.variables().iter().map(|v| v.array.len()).sum()
}

/// Applies `count` random single-byte XOR mutations in `lo..hi`.
fn mutate(bytes: &mut [u8], rng: &mut TestRng, count: usize, lo: usize, hi: usize) {
    for _ in 0..count {
        let i = lo + (rng.next_u64() as usize) % (hi - lo);
        let x = (rng.next_u64() % 255 + 1) as u8; // never a zero XOR
        bytes[i] ^= x;
    }
}

/// The oracle: which original variables MUST survive salvage, given the
/// bytes that actually differ from the original encoding.
///
/// With the trailer directory intact (mutations below never touch the
/// trailer or footer), a variable is recoverable iff its own payload and
/// the payloads of every axis section it references are byte-identical to
/// the original — frame bytes outside payloads don't matter because the
/// directory carries the authoritative (offset, len, crc) triples.
fn must_survive(layout: &V2Layout, original: &[u8], mutated: &[u8]) -> Vec<String> {
    let axis_payloads: Vec<&std::ops::Range<usize>> = layout
        .sections
        .iter()
        .filter(|s| s.kind == SectionKind::Axis)
        .map(|s| &s.payload)
        .collect();
    let untouched = |r: &std::ops::Range<usize>| original[r.clone()] == mutated[r.clone()];
    layout
        .sections
        .iter()
        .filter_map(|s| s.variable.as_ref().map(|v| (s, v)))
        .filter(|(s, (_, axis_refs))| {
            untouched(&s.payload) && axis_refs.iter().all(|&a| untouched(axis_payloads[a]))
        })
        .map(|(_, (id, _))| id.clone())
        .collect()
}

#[test]
fn corruption_fuzz_mutations_never_panic_and_salvage_is_exact() {
    let ds = sample();
    let max_elements = element_count(&ds);
    let (bytes, layout) = format::to_bytes_v2_with_layout(&ds);
    let original = bytes.to_vec();
    // Mutations stay clear of the trailer frame and footer so the section
    // directory survives and the oracle below is exact.
    let trailer_start = layout
        .sections
        .iter()
        .find(|s| s.kind == SectionKind::Trailer)
        .expect("v2 always has a trailer")
        .frame
        .start;

    let mut rng = TestRng::from_name("corruption_fuzz_v2");
    let iters = fuzz_iters();
    let mut survived_total = 0usize;
    for iter in 0..iters {
        let mut mutated = original.clone();
        let n_mut = 1 + (rng.next_u64() as usize) % 8;
        mutate(&mut mutated, &mut rng, n_mut, 8, trailer_start);

        let t0 = Instant::now();

        // 1. strict decode: must not panic; any Ok must be bit-honest
        let strict = format::from_bytes(&mutated);
        if let Ok(got) = &strict {
            // only possible when every mutation XOR-cancelled
            assert_eq!(mutated, original, "iter {iter}: strict decode accepted altered bytes");
            assert_eq!(got.variable_ids(), ds.variable_ids());
        }

        // 2. salvage: magic/version untouched → always Ok
        let (salvaged, report) =
            format::from_bytes_salvage(&mutated).expect("salvage of v2 bytes");
        assert!(report.directory_intact, "iter {iter}: trailer untouched yet directory lost");

        // allocation/size bounds: output can never outgrow the input, and
        // the decode can't have materialized a hostile length field
        assert!(
            element_count(&salvaged) <= max_elements,
            "iter {iter}: salvage produced more data than was ever written"
        );
        assert!(
            t0.elapsed() < DECODE_BUDGET,
            "iter {iter}: decode took {:?} for a {}-byte file",
            t0.elapsed(),
            mutated.len()
        );

        // 3. the oracle: intact variables recovered, bit-exact
        let expected = must_survive(&layout, &original, &mutated);
        for id in &expected {
            let got = salvaged
                .variable(id)
                .unwrap_or_else(|| panic!("iter {iter}: intact variable '{id}' not recovered"));
            let want = ds.variable(id).expect("oracle ids come from the dataset");
            assert_eq!(got.array, want.array, "iter {iter}: '{id}' data differs");
            assert_eq!(got.axes, want.axes, "iter {iter}: '{id}' axes differ");
            assert_eq!(got.attributes, want.attributes, "iter {iter}: '{id}' attrs differ");
        }
        survived_total += expected.len();

        // no silently-wrong data: anything recovered must equal its original
        for id in &report.recovered_variables {
            if let (Some(got), Some(want)) = (salvaged.variable(id), ds.variable(id)) {
                assert_eq!(got.array, want.array, "iter {iter}: recovered '{id}' is wrong");
            }
        }
    }
    // sanity on the fuzzer itself: mutations must both hit and miss variables
    assert!(survived_total > 0, "oracle never expected a survivor — fuzzer is mis-aimed");
    assert!(
        survived_total < iters * ds.len(),
        "every variable always survived — mutations never landed"
    );
}

#[test]
fn corruption_fuzz_truncations_never_panic() {
    let ds = sample();
    let max_elements = element_count(&ds);
    let (bytes, _) = format::to_bytes_v2_with_layout(&ds);
    let original = bytes.to_vec();
    let mut rng = TestRng::from_name("truncation_fuzz_v2");
    let iters = (fuzz_iters() / 4).max(100);
    for iter in 0..iters {
        // random truncation, sometimes with extra byte mutations on top
        let keep = (rng.next_u64() as usize) % original.len();
        let mut mutated = original[..keep].to_vec();
        if keep > 16 && rng.next_u64().is_multiple_of(2) {
            let n = 1 + (rng.next_u64() as usize) % 4;
            mutate(&mut mutated, &mut rng, n, 8, keep);
        }
        let t0 = Instant::now();
        let _ = format::from_bytes(&mutated); // must not panic
        if let Ok((salvaged, _report)) = format::from_bytes_salvage(&mutated) {
            assert!(element_count(&salvaged) <= max_elements, "iter {iter}");
            // anything recovered from a truncated file must still be honest
            for id in salvaged.variable_ids() {
                if let (Some(got), Some(want)) = (salvaged.variable(&id), ds.variable(&id)) {
                    assert_eq!(got.array, want.array, "iter {iter}: truncated '{id}' is wrong");
                }
            }
        }
        assert!(
            t0.elapsed() < DECODE_BUDGET,
            "iter {iter}: truncated decode took {:?}",
            t0.elapsed()
        );
    }
}

/// Copies a window slab into the full array (test-local mirror of the
/// decoder's scatter, used to build the v3 oracle's expected arrays).
fn scatter(
    slab_d: &[f32],
    slab_m: &[bool],
    full_d: &mut [f32],
    full_m: &mut [bool],
    shape: &[usize],
    time_axis: Option<usize>,
    range: Range<usize>,
) {
    let Some(t) = time_axis else {
        full_d.copy_from_slice(slab_d);
        full_m.copy_from_slice(slab_m);
        return;
    };
    let nt = shape[t];
    let pre: usize = shape[..t].iter().product();
    let post: usize = shape[t + 1..].iter().product();
    let wlen = range.len();
    for p in 0..pre {
        for (k, ti) in range.clone().enumerate() {
            let src = (p * wlen + k) * post;
            let dst = (p * nt + ti) * post;
            full_d[dst..dst + post].copy_from_slice(&slab_d[src..src + post]);
            full_m[dst..dst + post].copy_from_slice(&slab_m[src..src + post]);
        }
    }
}

/// The v3 oracle: for one variable whose metadata survived, the exact
/// array salvage must produce — per window, the first level whose payload
/// bytes are untouched (level 0 verbatim, coarser levels upsampled), or
/// masked fill when every level was hit.
fn expected_v3_array(
    vi: usize,
    meta: &V3Meta,
    layout: &format_v3::V3Layout,
    original: &[u8],
    mutated: &[u8],
) -> (Vec<f32>, Vec<bool>, usize, usize) {
    let vm = &meta.vars[vi];
    let volume: usize = vm.shape.iter().product::<usize>().max(1);
    let mut data = vec![0.0f32; volume];
    let mut mask = vec![true; volume];
    let mut degraded = 0usize;
    let mut masked = 0usize;
    for w in 0..vm.n_windows() {
        let full_shape = vm.slab_shape(w);
        let mut served = false;
        for l in 0..vm.levels {
            let span = layout
                .chunks
                .iter()
                .find(|c| c.var == vi && c.window == w && c.level == l)
                .expect("layout lists every chunk");
            if original[span.payload.clone()] != mutated[span.payload.clone()] {
                continue;
            }
            let n = vm.level_volume(w, l).expect("well-formed shapes");
            let (cd, cm) =
                format_v3::decode_chunk_payload(&original[span.payload.clone()], (vi, w, l), n)
                    .expect("original chunks decode");
            let (sd, sm) = if l == 0 {
                (cd, cm)
            } else {
                degraded += 1;
                format_v3::upsample_nearest(&cd, &cm, &vm.level_shape(w, l), &full_shape)
                    .expect("pyramid shapes are consistent")
            };
            scatter(&sd, &sm, &mut data, &mut mask, &vm.shape, vm.time_axis, vm.window_range(w));
            served = true;
            break;
        }
        if !served {
            masked += 1;
        }
    }
    (data, mask, degraded, masked)
}

#[test]
fn corruption_fuzz_v3_chunk_map_oracle() {
    // v3 sharpens the salvage contract from per-variable to per-chunk:
    // untouched chunks come back bit-exact, windows whose level-0 chunk
    // was hit degrade to the best intact pyramid level, and fully-dead
    // windows are masked — never garbage, never a panic.
    let ds = sample();
    let max_elements = element_count(&ds);
    let opts = V3Options { window: 2, levels: 3, compress: true };
    let (bytes, layout) = format_v3::to_bytes_v3_with(&ds, &opts);
    let original = bytes.to_vec();

    // the chunk-map oracle needs the decoded metadata (window/level shapes)
    let dir = std::env::temp_dir().join(format!("cdms_v3_fuzz_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("oracle.ncr");
    std::fs::write(&path, &original).unwrap();
    let meta = format_v3::read_meta_with(&LocalDisk, &path).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    let axis_payloads: Vec<&Range<usize>> = layout
        .sections
        .iter()
        .filter(|s| s.kind == SectionKind::Axis)
        .map(|s| &s.payload)
        .collect();
    let varmeta_spans: Vec<(&Range<usize>, &Vec<usize>)> = layout
        .sections
        .iter()
        .filter_map(|s| s.variable.as_ref().map(|(_, refs)| (&s.payload, refs)))
        .collect();
    let trailer_start = layout
        .sections
        .iter()
        .find(|s| s.kind == SectionKind::Trailer)
        .expect("v3 always has a trailer")
        .frame
        .start;

    let mut rng = TestRng::from_name("corruption_fuzz_v3");
    let iters = (fuzz_iters() / 2).max(200);
    let (mut exact_windows, mut degraded_windows, mut masked_windows) = (0usize, 0usize, 0usize);
    for iter in 0..iters {
        let mut mutated = original.clone();
        let n_mut = 1 + (rng.next_u64() as usize) % 8;
        mutate(&mut mutated, &mut rng, n_mut, 8, trailer_start);

        let t0 = Instant::now();
        let strict = format::from_bytes(&mutated);
        if strict.is_ok() {
            assert_eq!(mutated, original, "iter {iter}: strict v3 decode accepted altered bytes");
        }
        let (salvaged, report) =
            format::from_bytes_salvage(&mutated).expect("salvage of v3 bytes");
        assert!(report.directory_intact, "iter {iter}: trailer untouched yet directory lost");
        assert!(
            element_count(&salvaged) <= max_elements,
            "iter {iter}: v3 salvage produced more data than was ever written"
        );
        assert!(t0.elapsed() < DECODE_BUDGET, "iter {iter}: v3 decode took {:?}", t0.elapsed());

        let untouched = |r: &Range<usize>| original[r.clone()] == mutated[r.clone()];
        for (vi, vm) in meta.vars.iter().enumerate() {
            let (span, refs) = varmeta_spans[vi];
            if !untouched(span) || !refs.iter().all(|&a| untouched(axis_payloads[a])) {
                continue; // metadata hit: salvage may drop the variable
            }
            let got = salvaged.variable(&vm.id).unwrap_or_else(|| {
                panic!("iter {iter}: variable '{}' with intact metadata not recovered", vm.id)
            });
            let (want_d, want_m, degraded, masked) =
                expected_v3_array(vi, &meta, &layout, &original, &mutated);
            assert_eq!(got.array.data(), want_d.as_slice(), "iter {iter}: '{}' data", vm.id);
            assert_eq!(got.array.mask(), want_m.as_slice(), "iter {iter}: '{}' mask", vm.id);
            degraded_windows += degraded;
            masked_windows += masked;
            exact_windows += vm.n_windows() - degraded - masked;
        }
    }
    // the fuzzer must actually exercise all three outcomes
    assert!(exact_windows > 0, "no window ever survived untouched — fuzzer mis-aimed");
    assert!(degraded_windows > 0, "no window ever degraded to the pyramid — fuzzer mis-aimed");
    assert!(masked_windows > 0, "no window was ever fully lost — fuzzer mis-aimed");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pure garbage (random bytes, with or without a valid preamble) never
    /// panics either decoder and never stalls on a hostile length field.
    #[test]
    fn garbage_bytes_never_panic(
        body in proptest::collection::vec(0u8..=255, 0..512),
        with_preamble in any::<bool>(),
    ) {
        let mut bytes = Vec::new();
        if with_preamble {
            bytes.extend_from_slice(b"NCRS");
            bytes.extend_from_slice(&2u32.to_le_bytes());
        }
        bytes.extend_from_slice(&body);
        let t0 = Instant::now();
        let _ = format::from_bytes(&bytes);
        let _ = format::from_bytes_salvage(&bytes);
        prop_assert!(t0.elapsed() < DECODE_BUDGET, "garbage input stalled the decoder");
    }
}
