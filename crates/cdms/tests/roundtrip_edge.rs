//! Edge-case round-trip coverage (ISSUE 4 satellite): zero-variable
//! datasets, zero-length axes, and all-masked variables must survive both
//! the legacy v1 encoding and the checksummed v2 encoding bit-exactly —
//! and a v1 file written by the current code must keep opening through the
//! version-dispatched reader.

use cdms::format::{self, SalvageReport};
use cdms::{Axis, AxisKind, Dataset, MaskedArray, Variable};

/// Round-trips `ds` through both format versions and hands each decoded
/// copy to `check`.
fn roundtrip_both(ds: &Dataset, check: impl Fn(&str, &Dataset)) {
    let v2 = format::from_bytes(&format::to_bytes(ds)).expect("v2 roundtrip");
    check("v2", &v2);
    let v1 = format::from_bytes(&format::to_bytes_v1(ds)).expect("v1 roundtrip");
    check("v1", &v1);
    // v2 files also salvage cleanly when nothing is wrong
    let (salvaged, report) = format::from_bytes_salvage(&format::to_bytes(ds)).expect("salvage");
    assert!(report.is_clean(), "{report}");
    check("v2-salvage", &salvaged);
}

#[test]
fn zero_variable_dataset_roundtrips() {
    let ds = Dataset::new("empty_but_annotated")
        .with_attr("institution", "NASA NCCS")
        .with_attr("comment", "no variables on purpose");
    roundtrip_both(&ds, |tag, back| {
        assert_eq!(back.id, ds.id, "{tag}");
        assert_eq!(back.attributes, ds.attributes, "{tag}");
        assert!(back.is_empty(), "{tag}");
    });
}

#[test]
fn zero_length_axis_roundtrips() {
    // A zero-length axis is NetCDF's unlimited dimension with no records
    // yet written: shape [0, 3], no data elements.
    let empty_time = Axis::empty("time", "days since 2000-01-01", AxisKind::Time);
    let lat = Axis::latitude(vec![-10.0, 0.0, 10.0]).unwrap();
    let arr = MaskedArray::zeros(&[0, 3]);
    let var = Variable::new("ta", arr, vec![empty_time, lat]).unwrap();
    let mut ds = Dataset::new("no_records_yet");
    ds.add_variable(var);

    roundtrip_both(&ds, |tag, back| {
        let v = back.variable("ta").unwrap_or_else(|| panic!("{tag}: variable lost"));
        assert_eq!(v.shape(), &[0usize, 3], "{tag}");
        assert!(v.array.data().is_empty(), "{tag}");
        assert_eq!(v.axes[0].len(), 0, "{tag}");
        assert_eq!(v.axes[0].id, "time", "{tag}");
        assert_eq!(v.axes[1].len(), 3, "{tag}");
    });
}

#[test]
fn all_masked_variable_roundtrips() {
    let lat = Axis::latitude(vec![-30.0, 0.0, 30.0]).unwrap();
    let lon = Axis::longitude(vec![0.0, 90.0, 180.0, 270.0]).unwrap();
    let arr = MaskedArray::all_masked(&[3, 4]);
    let var = Variable::new("hidden", arr.clone(), vec![lat, lon]).unwrap();
    let mut ds = Dataset::new("fully_masked");
    ds.add_variable(var);

    roundtrip_both(&ds, |tag, back| {
        let v = back.variable("hidden").unwrap_or_else(|| panic!("{tag}: variable lost"));
        assert_eq!(v.array.mask(), arr.mask(), "{tag}");
        assert!(v.array.mask().iter().all(|&m| m), "{tag}: some element unmasked");
        assert_eq!(v.array.valid_count(), 0, "{tag}");
    });
}

#[test]
fn v1_bytes_written_today_open_identically() {
    // Byte-compat acceptance: encode v1, re-encode the decoded dataset,
    // and require the same bytes — proving the v1 writer/reader pair is
    // unchanged by the v2 work.
    let lat = Axis::latitude(vec![-45.0, 0.0, 45.0]).unwrap();
    let arr = MaskedArray::from_fn(&[3], |ix| ix[0] as f32 * 1.5);
    let var = Variable::new("t2m", arr, vec![lat]).unwrap().with_attr("units", "K");
    let mut ds = Dataset::new("compat").with_attr("source", "seed-era writer");
    ds.add_variable(var);

    let first = format::to_bytes_v1(&ds);
    let decoded = format::from_bytes(&first).unwrap();
    let second = format::to_bytes_v1(&decoded);
    assert_eq!(first, second, "v1 encoding is not stable across a decode cycle");
}

#[test]
fn salvage_report_on_clean_v1_file() {
    // v1 has no checksums; salvage of an intact v1 file reports clean.
    let mut ds = Dataset::new("v1clean");
    let lat = Axis::latitude(vec![0.0, 10.0]).unwrap();
    ds.add_variable(Variable::new("x", MaskedArray::zeros(&[2]), vec![lat]).unwrap());
    let (back, report): (Dataset, SalvageReport) =
        format::from_bytes_salvage(&format::to_bytes_v1(&ds)).unwrap();
    assert!(report.is_clean(), "{report}");
    assert_eq!(back.variable_ids(), ds.variable_ids());
}
