//! Crash-safety enumeration (ISSUE 4 acceptance criterion): for EVERY
//! primitive-operation index of the atomic write protocol and EVERY fault
//! kind `FaultyStorage` can inject there, the destination path afterwards
//! parses as either the complete old dataset or the complete new dataset —
//! never a hybrid, never unreadable.
//!
//! The atomic writer issues exactly six primitives per clean write
//! (`write_all` tmp → `sync` → `len` → `read` back → `rename` →
//! `sync_dir` of the parent), so the matrix below is exhaustive over the
//! protocol, not a sample of it. The final primitive has one deliberate
//! asymmetry: a hard fault on the directory sync is reported as an error
//! even though the rename already landed — the publish is complete but
//! not yet durable — so for that op alone an `Err` outcome may leave the
//! complete NEW state on disk.

use cdms::format;
use cdms::format_v3;
use cdms::storage::{FaultyStorage, StorageFault, StorageFaultPlan, TRANSIENT_RETRIES};
use cdms::synth::SynthesisSpec;
use cdms::Dataset;
use std::path::PathBuf;

/// Primitive ops issued by one fault-free `write_atomic` call.
const PROTOCOL_OPS: u64 = 6;

/// Index of the post-rename parent-directory sync — the one op where a
/// failed write may still have published the new content.
const SYNC_DIR_OP: u64 = 5;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cdms_crash_safety_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn old_and_new() -> (Dataset, Dataset) {
    let mut old = SynthesisSpec::new(2, 1, 6, 12).seed(1).build();
    old.id = "state".to_string();
    let mut new = SynthesisSpec::new(3, 2, 6, 12).seed(2).build();
    new.id = "state".to_string();
    (old, new)
}

/// True when `ds` is semantically identical to `want` (id, attrs, and every
/// variable's data/mask/axes).
fn same_dataset(ds: &Dataset, want: &Dataset) -> bool {
    ds.id == want.id
        && ds.attributes == want.attributes
        && ds.variable_ids() == want.variable_ids()
        && want
            .variables()
            .iter()
            .all(|w| ds.variable(&w.id).is_some_and(|g| g.array == w.array && g.axes == w.axes))
}

fn fault_kinds() -> Vec<(&'static str, StorageFault)> {
    vec![
        ("short_write", StorageFault::ShortWrite { keep: 10 }),
        ("torn_write", StorageFault::TornWrite { at: 7 }),
        ("bit_flip", StorageFault::BitFlip { bit: 133 }),
        ("enospc", StorageFault::Enospc),
        ("transient_recovers", StorageFault::Transient { times: TRANSIENT_RETRIES }),
        ("transient_exhausts", StorageFault::Transient { times: TRANSIENT_RETRIES + 4 }),
        ("crash_before", StorageFault::CrashBefore),
    ]
}

#[test]
fn every_crash_point_leaves_complete_old_or_complete_new() {
    let dir = temp_dir("matrix");
    let (old, new) = old_and_new();
    for op in 0..PROTOCOL_OPS {
        for (name, fault) in fault_kinds() {
            let path = dir.join(format!("op{op}_{name}.ncr"));
            format::write_dataset(&old, &path).expect("seeding the old state");

            let storage = FaultyStorage::new(StorageFaultPlan::none().inject(op, fault.clone()));
            let outcome = format::write_dataset_with(&storage, &new, &path);

            // Whatever happened, the path must parse under STRICT
            // verification — a hybrid or torn file would fail its checksums.
            let on_disk = format::read_dataset(&path).unwrap_or_else(|e| {
                panic!("op {op} fault {name}: destination unreadable after fault: {e}")
            });
            match &outcome {
                Ok(()) => assert!(
                    same_dataset(&on_disk, &new),
                    "op {op} fault {name}: write reported success but new state absent"
                ),
                Err(_) if op == SYNC_DIR_OP => assert!(
                    same_dataset(&on_disk, &old) || same_dataset(&on_disk, &new),
                    "op {op} fault {name}: post-rename sync failure must leave a complete state"
                ),
                Err(_) => assert!(
                    same_dataset(&on_disk, &old),
                    "op {op} fault {name}: failed write must leave the old state untouched"
                ),
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_on_first_ever_write_leaves_no_file_or_complete_file() {
    // No previous state: after a mid-write crash the path either does not
    // exist or (when the write survived) holds the complete new dataset.
    let dir = temp_dir("fresh");
    let (_, new) = old_and_new();
    for op in 0..PROTOCOL_OPS {
        for (name, fault) in fault_kinds() {
            let path = dir.join(format!("fresh_op{op}_{name}.ncr"));
            let storage = FaultyStorage::new(StorageFaultPlan::none().inject(op, fault.clone()));
            let outcome = format::write_dataset_with(&storage, &new, &path);
            match outcome {
                Ok(()) => {
                    let on_disk = format::read_dataset(&path)
                        .unwrap_or_else(|e| panic!("op {op} fault {name}: {e}"));
                    assert!(same_dataset(&on_disk, &new), "op {op} fault {name}");
                }
                Err(_) if op == SYNC_DIR_OP => {
                    // the rename already landed; a published file must be
                    // the complete new dataset
                    if path.exists() {
                        let on_disk = format::read_dataset(&path)
                            .unwrap_or_else(|e| panic!("op {op} fault {name}: {e}"));
                        assert!(same_dataset(&on_disk, &new), "op {op} fault {name}");
                    }
                }
                Err(_) => assert!(
                    !path.exists(),
                    "op {op} fault {name}: failed first write must not publish a file"
                ),
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn v3_writer_crash_points_leave_complete_old_or_complete_new() {
    // The chunked v3 writer rides the same six-primitive atomic protocol,
    // so it inherits the same guarantee: any single fault at any step
    // leaves the destination as exactly one complete, strictly-verifiable
    // dataset (old v2 or new v3 — cross-version overwrites included).
    let dir = temp_dir("v3matrix");
    let (old, new) = old_and_new();
    let opts = format_v3::V3Options { window: 2, levels: 2, compress: true };
    for op in 0..PROTOCOL_OPS {
        for (name, fault) in fault_kinds() {
            let path = dir.join(format!("v3_op{op}_{name}.ncr"));
            format::write_dataset(&old, &path).expect("seeding the old state");

            let storage = FaultyStorage::new(StorageFaultPlan::none().inject(op, fault.clone()));
            let outcome = format_v3::write_dataset_v3_with(&storage, &new, &path, &opts);

            let on_disk = format::read_dataset(&path).unwrap_or_else(|e| {
                panic!("v3 op {op} fault {name}: destination unreadable after fault: {e}")
            });
            match &outcome {
                Ok(()) => assert!(
                    same_dataset(&on_disk, &new),
                    "v3 op {op} fault {name}: write reported success but new state absent"
                ),
                Err(_) if op == SYNC_DIR_OP => assert!(
                    same_dataset(&on_disk, &old) || same_dataset(&on_disk, &new),
                    "v3 op {op} fault {name}: post-rename sync failure must leave a complete state"
                ),
                Err(_) => assert!(
                    same_dataset(&on_disk, &old),
                    "v3 op {op} fault {name}: failed write must leave the old state untouched"
                ),
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn double_fault_on_write_and_retry_still_safe() {
    // Faults on several ops of the same write: retried transients followed
    // by a hard fault, and cascading failures after a torn write.
    let dir = temp_dir("double");
    let (old, new) = old_and_new();
    let plans = vec![
        (
            "transient_then_torn",
            StorageFaultPlan::none()
                .inject(0, StorageFault::Transient { times: 1 })
                .inject(2, StorageFault::TornWrite { at: 3 }),
        ),
        (
            "bitflip_then_enospc",
            StorageFaultPlan::none()
                .inject(0, StorageFault::BitFlip { bit: 9 })
                .inject(3, StorageFault::Enospc),
        ),
        (
            "short_then_crash",
            StorageFaultPlan::none()
                .inject(0, StorageFault::ShortWrite { keep: 4 })
                .inject(1, StorageFault::CrashBefore),
        ),
    ];
    for (name, plan) in plans {
        let path = dir.join(format!("{name}.ncr"));
        format::write_dataset(&old, &path).unwrap();
        let storage = FaultyStorage::new(plan);
        let outcome = format::write_dataset_with(&storage, &new, &path);
        let on_disk = format::read_dataset(&path)
            .unwrap_or_else(|e| panic!("{name}: destination unreadable: {e}"));
        match outcome {
            Ok(()) => assert!(same_dataset(&on_disk, &new), "{name}"),
            Err(_) => assert!(same_dataset(&on_disk, &old), "{name}"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
