//! The `.ncr` self-describing binary container — this repo's NetCDF stand-in.
//!
//! Three on-disk versions exist, all little-endian, all starting with
//! `magic "NCRS" | version u32`. The reader dispatches on the version, so
//! files written by earlier releases keep opening unchanged. **v3** — the
//! chunked streaming layout with a resolution pyramid, read piecewise via
//! `Storage::read_at` by [`crate::stream`] — lives in [`crate::format_v3`];
//! this module holds v1/v2 plus the framing and codec primitives all
//! versions share.
//!
//! **v1** (legacy, still readable; [`to_bytes_v1`] still writes it):
//!
//! ```text
//! magic "NCRS" | version u32 = 1
//! dataset id: string
//! global attributes
//! variable count u32, then per variable:
//!   id: string
//!   axes: count u32, each fully self-describing (duplicated per variable)
//!   attributes
//!   shape: rank u32, dims u64...
//!   data:  f32 × n
//!   mask:  bit-packed, ⌈n/8⌉ bytes
//! ```
//!
//! **v2** (current; checksummed sections, written crash-safely through
//! [`crate::storage::write_atomic`]):
//!
//! ```text
//! magic "NCRS" | version u32 = 2
//! section*            frame = kind u8 | payload_len u64 | payload | crc32c u32
//!   Header   (kind 1) dataset id, global attrs, axis count, variable count
//!   Axis     (kind 2) one deduplicated axis per section
//!   Variable (kind 3) id, axis indices, attrs, shape, data, mask
//!   Trailer  (kind 4) section directory: (kind, offset, len, crc)*
//!                     + file CRC over all section CRCs
//! footer              trailer offset u64 | crc32c(offset bytes) u32
//! ```
//!
//! Every section payload is CRC32C-guarded; the strict reader
//! ([`from_bytes`]) verifies all of them plus the trailer directory and
//! footer, and bounds every allocation against the bytes actually present
//! so hostile length fields fail cleanly instead of exhausting memory.
//! [`from_bytes_salvage`] instead skips sections whose checksums fail —
//! locating them through the trailer directory when it survives, or by a
//! sequential walk when it doesn't — and returns the intact variables plus
//! a [`SalvageReport`] saying exactly what was lost and why.
//!
//! Strings are `u32 length + UTF-8 bytes`. Corrupt input of either version
//! fails with [`CdmsError::Format`] rather than panicking.

use crate::attr::{AttValue, Attributes};
use crate::axis::{Axis, AxisKind};
use crate::calendar::Calendar;
use crate::dataset::Dataset;
use crate::error::{CdmsError, Result};
use crate::storage::{crc32c, LocalDisk, Storage};
use crate::{MaskedArray, Variable};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::ops::Range;
use std::path::Path;

pub(crate) const MAGIC: &[u8; 4] = b"NCRS";
/// Legacy unsectioned format.
pub const VERSION_V1: u32 = 1;
/// Checksummed-section format (whole-file reads).
pub const VERSION_V2: u32 = 2;
/// Chunked streaming format with resolution pyramid (see [`crate::format_v3`]).
pub const VERSION_V3: u32 = 3;

/// Bytes of a section frame besides the payload: kind u8 + len u64 + crc u32.
pub(crate) const FRAME_OVERHEAD: usize = 13;
/// Bytes of the end-of-file footer: trailer offset u64 + crc u32.
pub(crate) const FOOTER_LEN: usize = 12;

pub(crate) const MAX_AXES: usize = 1 << 20;
pub(crate) const MAX_VARS: usize = 1_000_000;

/// The kind tag of a v2/v3 section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionKind {
    Header,
    Axis,
    Variable,
    Trailer,
    /// v3 only: per-variable metadata (id, axis refs, attrs, shape) with no
    /// bulk data — the data lives in [`SectionKind::Chunk`] frames.
    VarMeta,
    /// v3 only: one (variable, time-window, pyramid-level) data chunk.
    Chunk,
    /// v3 only: the chunk directory mapping (var, window, level) → frame.
    ChunkDir,
}

impl SectionKind {
    pub(crate) fn as_u8(self) -> u8 {
        match self {
            SectionKind::Header => 1,
            SectionKind::Axis => 2,
            SectionKind::Variable => 3,
            SectionKind::Trailer => 4,
            SectionKind::VarMeta => 5,
            SectionKind::Chunk => 6,
            SectionKind::ChunkDir => 7,
        }
    }

    pub(crate) fn from_u8(b: u8) -> Option<SectionKind> {
        match b {
            1 => Some(SectionKind::Header),
            2 => Some(SectionKind::Axis),
            3 => Some(SectionKind::Variable),
            4 => Some(SectionKind::Trailer),
            5 => Some(SectionKind::VarMeta),
            6 => Some(SectionKind::Chunk),
            7 => Some(SectionKind::ChunkDir),
            _ => None,
        }
    }
}

/// Byte extents of one encoded v2 section — the corruption fuzzer's oracle
/// for "which variables must survive a given mutation".
#[derive(Debug, Clone)]
pub struct SectionSpan {
    pub kind: SectionKind,
    /// The whole frame: kind byte through trailing CRC.
    pub frame: Range<usize>,
    /// The payload bytes within the file.
    pub payload: Range<usize>,
    /// For variable sections: the variable id and the ordinals (among axis
    /// sections) of the axes it references.
    pub variable: Option<(String, Vec<usize>)>,
}

/// Full byte map of an encoded v2 file.
#[derive(Debug, Clone)]
pub struct V2Layout {
    /// All sections in file order (header, axes, variables, trailer).
    pub sections: Vec<SectionSpan>,
    /// The 12-byte end-of-file footer.
    pub footer: Range<usize>,
}

/// One variable `read_dataset_salvage` could not recover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LostVariable {
    /// The id, when the variable's own section was intact enough to name it.
    pub id: Option<String>,
    /// Ordinal of the variable section among recovered+lost variables.
    pub section: usize,
    /// Why it was dropped.
    pub reason: String,
}

/// What a salvage pass found: which sections survived checksum
/// verification, which variables were recovered, and why the rest were not.
#[derive(Debug, Clone, Default)]
pub struct SalvageReport {
    /// Sections located (via directory or sequential walk).
    pub sections_total: usize,
    /// Sections whose checksum (or payload decode) failed.
    pub sections_corrupt: usize,
    /// The header section survived (dataset id and global attrs are real).
    pub header_intact: bool,
    /// Sections were located through the trailer directory (robust to
    /// corrupt framing); false means the sequential-walk fallback ran.
    pub directory_intact: bool,
    /// Ids of the variables recovered into the returned dataset.
    pub recovered_variables: Vec<String>,
    /// Variables dropped, with reasons.
    pub lost_variables: Vec<LostVariable>,
}

impl SalvageReport {
    /// True when nothing at all was lost.
    pub fn is_clean(&self) -> bool {
        self.sections_corrupt == 0 && self.lost_variables.is_empty() && self.header_intact
    }

    /// One-line human summary (used by catalog quarantine reasons).
    pub fn summary(&self) -> String {
        format!(
            "{} of {} sections corrupt; recovered {} variable(s), lost {}{}",
            self.sections_corrupt,
            self.sections_total,
            self.recovered_variables.len(),
            self.lost_variables.len(),
            if self.header_intact { "" } else { "; header lost" }
        )
    }
}

impl std::fmt::Display for SalvageReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.summary())
    }
}

// ---- encoding ----

/// Serializes a dataset to bytes in the current (v2) format.
pub fn to_bytes(ds: &Dataset) -> Bytes {
    to_bytes_v2_with_layout(ds).0
}

/// Serializes a dataset in the legacy v1 format (no checksums). Kept for
/// compatibility testing and the v1-vs-v2 overhead benchmark.
pub fn to_bytes_v1(ds: &Dataset) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION_V1);
    put_string(&mut buf, &ds.id);
    put_attrs(&mut buf, &ds.attributes);
    buf.put_u32_le(ds.variables().len() as u32);
    for var in ds.variables() {
        put_string(&mut buf, &var.id);
        buf.put_u32_le(var.axes.len() as u32);
        for ax in &var.axes {
            put_axis(&mut buf, ax);
        }
        put_attrs(&mut buf, &var.attributes);
        buf.put_u32_le(var.array.rank() as u32);
        for &d in var.array.shape() {
            buf.put_u64_le(d as u64);
        }
        for &v in var.array.data() {
            buf.put_f32_le(v);
        }
        put_mask(&mut buf, var.array.mask());
    }
    buf.freeze()
}

/// Serializes in v2 and returns the byte map alongside — the corruption
/// fuzzer and storage tooling use the layout to reason about which bytes
/// belong to which section.
///
/// Sections are framed **in place**: the length field is written as a
/// placeholder, the payload streams directly into the output buffer, and
/// `end_section` patches the length and appends the CRC — no per-section
/// temporary buffers, no payload copy. Combined with an exact up-front
/// capacity reservation (the encoder never reallocates) and bulk `f32`
/// writes, this removes the v2 encode overhead the `ncr_io` bench used to
/// report against v1. The byte layout is unchanged.
pub fn to_bytes_v2_with_layout(ds: &Dataset) -> (Bytes, V2Layout) {
    // Deduplicate axes across variables: each distinct axis is written once
    // and referenced by index.
    let mut axes: Vec<&Axis> = Vec::new();
    let mut refs_per_var: Vec<Vec<usize>> = Vec::with_capacity(ds.variables().len());
    for var in ds.variables() {
        let refs = var
            .axes
            .iter()
            .map(|ax| match axes.iter().position(|a| *a == ax) {
                Some(i) => i,
                None => {
                    axes.push(ax);
                    axes.len() - 1
                }
            })
            .collect();
        refs_per_var.push(refs);
    }

    // Exact total size, so one allocation serves the whole encode.
    let n_dir = 1 + axes.len() + ds.variables().len();
    let trailer_payload = 4 + 21 * n_dir + 4;
    let mut total = 8 // magic + version
        + FRAME_OVERHEAD + header_size(ds)
        + FRAME_OVERHEAD + trailer_payload
        + FOOTER_LEN;
    for ax in &axes {
        total += FRAME_OVERHEAD + axis_size(ax);
    }
    for (var, refs) in ds.variables().iter().zip(&refs_per_var) {
        total += FRAME_OVERHEAD + variable_size(var, refs);
    }

    let mut buf = BytesMut::new();
    buf.reserve(total);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION_V2);
    let mut sections: Vec<SectionSpan> = Vec::new();
    // directory entries: (kind, frame offset, payload len, crc)
    let mut dir: Vec<(u8, u64, u64, u32)> = Vec::new();

    // header
    let p = begin_section(&mut buf, SectionKind::Header);
    put_string(&mut buf, &ds.id);
    put_attrs(&mut buf, &ds.attributes);
    buf.put_u32_le(axes.len() as u32);
    buf.put_u32_le(ds.variables().len() as u32);
    end_section(&mut buf, p, &mut sections, &mut dir, SectionKind::Header, None);

    // axes
    for ax in &axes {
        let p = begin_section(&mut buf, SectionKind::Axis);
        put_axis(&mut buf, ax);
        end_section(&mut buf, p, &mut sections, &mut dir, SectionKind::Axis, None);
    }

    // variables
    for (var, refs) in ds.variables().iter().zip(&refs_per_var) {
        let p = begin_section(&mut buf, SectionKind::Variable);
        put_string(&mut buf, &var.id);
        buf.put_u32_le(refs.len() as u32);
        for &r in refs {
            buf.put_u32_le(r as u32);
        }
        put_attrs(&mut buf, &var.attributes);
        buf.put_u32_le(var.array.rank() as u32);
        for &d in var.array.shape() {
            buf.put_u64_le(d as u64);
        }
        put_f32_bulk(&mut buf, var.array.data());
        put_mask(&mut buf, var.array.mask());
        end_section(
            &mut buf,
            p,
            &mut sections,
            &mut dir,
            SectionKind::Variable,
            Some((var.id.clone(), refs.clone())),
        );
    }

    // trailer: directory of everything written so far, plus a file-level
    // CRC chained over the per-section CRCs.
    let trailer_offset = buf.len();
    let p = begin_section(&mut buf, SectionKind::Trailer);
    buf.put_u32_le(dir.len() as u32);
    let mut crc_bytes = Vec::with_capacity(dir.len() * 4);
    for &(kind, off, len, crc) in &dir {
        buf.put_u8(kind);
        buf.put_u64_le(off);
        buf.put_u64_le(len);
        buf.put_u32_le(crc);
        crc_bytes.extend_from_slice(&crc.to_le_bytes());
    }
    buf.put_u32_le(crc32c(&crc_bytes));
    end_section(&mut buf, p, &mut sections, &mut dir, SectionKind::Trailer, None);

    // footer: where the trailer starts, checksummed, so salvage can find
    // the directory from EOF even when mid-file framing is destroyed.
    let footer_start = buf.len();
    buf.put_u64_le(trailer_offset as u64);
    buf.put_u32_le(crc32c(&(trailer_offset as u64).to_le_bytes()));

    debug_assert_eq!(buf.len(), total, "size precomputation must be exact");
    let layout = V2Layout { sections, footer: footer_start..buf.len() };
    (buf.freeze(), layout)
}

/// Opens a section frame in place: writes the kind byte and a zero length
/// placeholder, returning the payload start offset for `end_section`.
fn begin_section(buf: &mut BytesMut, kind: SectionKind) -> usize {
    buf.put_u8(kind.as_u8());
    buf.put_u64_le(0); // patched by end_section
    buf.len()
}

/// Closes an in-place section frame: patches the length placeholder,
/// appends the payload CRC, and records the span and directory entry.
fn end_section(
    buf: &mut BytesMut,
    payload_start: usize,
    sections: &mut Vec<SectionSpan>,
    dir: &mut Vec<(u8, u64, u64, u32)>,
    kind: SectionKind,
    variable: Option<(String, Vec<usize>)>,
) {
    let len = buf.len() - payload_start;
    let crc = crc32c(&buf[payload_start..]);
    buf[payload_start - 8..payload_start].copy_from_slice(&(len as u64).to_le_bytes());
    buf.put_u32_le(crc);
    let frame_start = payload_start - 9;
    sections.push(SectionSpan {
        kind,
        frame: frame_start..buf.len(),
        payload: payload_start..payload_start + len,
        variable,
    });
    dir.push((kind.as_u8(), frame_start as u64, len as u64, crc));
}

// ---- encoded-size precomputation (exact, mirrors the put_* writers) ----

pub(crate) fn string_size(s: &str) -> usize {
    4 + s.len()
}

pub(crate) fn attrs_size(attrs: &Attributes) -> usize {
    let mut n = 4;
    for (k, v) in attrs {
        n += string_size(k) + 1;
        n += match v {
            AttValue::Text(s) => string_size(s),
            AttValue::Float(_) | AttValue::Int(_) => 8,
            AttValue::FloatVec(v) => 4 + 8 * v.len(),
        };
    }
    n
}

pub(crate) fn axis_size(ax: &Axis) -> usize {
    string_size(&ax.id)
        + string_size(&ax.units)
        + 2 // kind + calendar
        + 8
        + 8 * ax.values.len()
        + 1
        + ax.bounds.as_ref().map_or(0, |b| 16 * b.len())
        + attrs_size(&ax.attributes)
}

pub(crate) fn header_size(ds: &Dataset) -> usize {
    string_size(&ds.id) + attrs_size(&ds.attributes) + 8
}

fn variable_size(var: &Variable, refs: &[usize]) -> usize {
    let n = var.array.len();
    string_size(&var.id)
        + 4
        + 4 * refs.len()
        + attrs_size(&var.attributes)
        + 4
        + 8 * var.array.rank()
        + 4 * n
        + n.div_ceil(8)
}

// ---- decoding (strict) ----

/// Deserializes a dataset from bytes, dispatching on the format version.
/// Verifies every v2 checksum; any mismatch is a [`CdmsError::Format`].
pub fn from_bytes(buf: &[u8]) -> Result<Dataset> {
    match parse_magic_version(buf)? {
        VERSION_V1 => from_bytes_v1(&buf[8..]),
        VERSION_V2 => from_bytes_v2(buf),
        VERSION_V3 => crate::format_v3::from_bytes_v3(buf),
        v => Err(CdmsError::Format(format!("unsupported version {v}"))),
    }
}

pub(crate) fn parse_magic_version(buf: &[u8]) -> Result<u32> {
    if buf.len() < 8 {
        return Err(CdmsError::Format(format!(
            "truncated: {} bytes is too short for magic + version",
            buf.len()
        )));
    }
    if &buf[..4] != MAGIC {
        return Err(CdmsError::Format("bad magic (not an .ncr file)".into()));
    }
    Ok(u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]))
}

/// Legacy v1 body decoder (`buf` starts after magic + version).
fn from_bytes_v1(mut buf: &[u8]) -> Result<Dataset> {
    let buf = &mut buf;
    let id = get_string(buf)?;
    let mut ds = Dataset::new(&id);
    ds.attributes = get_attrs(buf)?;
    let nvars = get_u32(buf)? as usize;
    if nvars > MAX_VARS {
        return Err(CdmsError::Format(format!("implausible variable count {nvars}")));
    }
    for _ in 0..nvars {
        let vid = get_string(buf)?;
        let naxes = get_u32(buf)? as usize;
        if naxes > 64 {
            return Err(CdmsError::Format(format!("implausible rank {naxes}")));
        }
        let mut axes = Vec::with_capacity(naxes);
        for _ in 0..naxes {
            axes.push(get_axis(buf)?);
        }
        let attributes = get_attrs(buf)?;
        let rank = get_u32(buf)? as usize;
        if rank != naxes {
            return Err(CdmsError::Format(format!(
                "variable '{vid}': rank {rank} != axis count {naxes}"
            )));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(get_u64(buf)? as usize);
        }
        let n = checked_volume(&shape)
            .ok_or_else(|| CdmsError::Format(format!("variable '{vid}': shape overflows")))?;
        if n > buf.len() / 4 + 8 {
            return Err(CdmsError::Format(format!(
                "variable '{vid}': declared {n} elements exceeds remaining bytes"
            )));
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(get_f32(buf)?);
        }
        let mask = get_mask(buf, n)?;
        let array = MaskedArray::with_mask(data, mask, &shape)?;
        let mut var = Variable::new(&vid, array, axes)?;
        var.attributes = attributes;
        ds.add_variable(var);
    }
    Ok(ds)
}

/// One parsed v2/v3 section frame.
pub(crate) struct Frame<'a> {
    pub(crate) kind: SectionKind,
    pub(crate) offset: usize,
    pub(crate) payload: &'a [u8],
    pub(crate) crc: u32,
}

/// Parses and CRC-verifies the frame at `*pos`, advancing past it.
/// `limit` is the end of the section region (start of the footer).
pub(crate) fn read_frame<'a>(full: &'a [u8], pos: &mut usize, limit: usize) -> Result<Frame<'a>> {
    let start = *pos;
    if limit < start + FRAME_OVERHEAD {
        return Err(CdmsError::Format(format!("truncated section frame at byte {start}")));
    }
    let kind = SectionKind::from_u8(full[start])
        .ok_or_else(|| CdmsError::Format(format!("unknown section kind at byte {start}")))?;
    let len_bytes: [u8; 8] = full[start + 1..start + 9]
        .try_into()
        .map_err(|_| CdmsError::Format("unreachable: 8-byte slice".into()))?;
    let len = u64::from_le_bytes(len_bytes) as usize;
    if len > limit - start - FRAME_OVERHEAD {
        return Err(CdmsError::Format(format!(
            "section at byte {start} claims {len} payload bytes, only {} remain",
            limit - start - FRAME_OVERHEAD
        )));
    }
    let payload = &full[start + 9..start + 9 + len];
    let crc_at = start + 9 + len;
    let stored = u32::from_le_bytes([
        full[crc_at],
        full[crc_at + 1],
        full[crc_at + 2],
        full[crc_at + 3],
    ]);
    if crc32c(payload) != stored {
        return Err(CdmsError::Format(format!(
            "{kind:?} section at byte {start}: checksum mismatch"
        )));
    }
    *pos = crc_at + 4;
    Ok(Frame { kind, offset: start, payload, crc: stored })
}

pub(crate) fn expect_kind(frame: &Frame<'_>, want: SectionKind) -> Result<()> {
    if frame.kind != want {
        return Err(CdmsError::Format(format!(
            "expected {want:?} section at byte {}, found {:?}",
            frame.offset, frame.kind
        )));
    }
    Ok(())
}

/// Strict v2 decoder: verifies every section checksum, the trailer
/// directory, and the footer.
fn from_bytes_v2(full: &[u8]) -> Result<Dataset> {
    if full.len() < 8 + FRAME_OVERHEAD + FOOTER_LEN {
        return Err(CdmsError::Format(format!("truncated v2 file ({} bytes)", full.len())));
    }
    let footer_at = full.len() - FOOTER_LEN;
    let declared_trailer = verify_footer(full, footer_at)?;

    let mut pos = 8usize;
    let mut observed: Vec<(u8, u64, u64, u32)> = Vec::new();
    let note = |f: &Frame<'_>| (f.kind.as_u8(), f.offset as u64, f.payload.len() as u64, f.crc);

    let header = read_frame(full, &mut pos, footer_at)?;
    expect_kind(&header, SectionKind::Header)?;
    observed.push(note(&header));
    let (id, attributes, n_axes, n_vars) = decode_header(header.payload)?;

    let mut axes = Vec::new();
    for _ in 0..n_axes {
        let frame = read_frame(full, &mut pos, footer_at)?;
        expect_kind(&frame, SectionKind::Axis)?;
        observed.push(note(&frame));
        axes.push(decode_axis_payload(frame.payload)?);
    }

    let mut ds = Dataset::new(&id);
    ds.attributes = attributes;
    for _ in 0..n_vars {
        let frame = read_frame(full, &mut pos, footer_at)?;
        expect_kind(&frame, SectionKind::Variable)?;
        observed.push(note(&frame));
        ds.add_variable(decode_variable_payload(frame.payload, &axes)?);
    }

    let trailer_at = pos;
    let trailer = read_frame(full, &mut pos, footer_at)?;
    expect_kind(&trailer, SectionKind::Trailer)?;
    if pos != footer_at {
        return Err(CdmsError::Format(format!(
            "{} unexpected bytes between trailer and footer",
            footer_at - pos
        )));
    }
    if declared_trailer != trailer_at as u64 {
        return Err(CdmsError::Format(format!(
            "footer points at byte {declared_trailer}, trailer found at {trailer_at}"
        )));
    }
    verify_trailer(trailer.payload, &observed)?;
    Ok(ds)
}

/// Checks the footer checksum and returns the declared trailer offset.
pub(crate) fn verify_footer(full: &[u8], footer_at: usize) -> Result<u64> {
    let off_bytes: [u8; 8] = full[footer_at..footer_at + 8]
        .try_into()
        .map_err(|_| CdmsError::Format("unreachable: 8-byte slice".into()))?;
    let stored = u32::from_le_bytes([
        full[footer_at + 8],
        full[footer_at + 9],
        full[footer_at + 10],
        full[footer_at + 11],
    ]);
    if crc32c(&off_bytes) != stored {
        return Err(CdmsError::Format("footer checksum mismatch".into()));
    }
    Ok(u64::from_le_bytes(off_bytes))
}

/// Checks the trailer directory against the sections actually observed,
/// plus the file-level CRC chained over section CRCs.
pub(crate) fn verify_trailer(payload: &[u8], observed: &[(u8, u64, u64, u32)]) -> Result<()> {
    let mut cur = payload;
    let buf = &mut cur;
    let n = get_u32(buf)? as usize;
    if n != observed.len() {
        return Err(CdmsError::Format(format!(
            "trailer lists {n} sections, file has {}",
            observed.len()
        )));
    }
    if buf.len() < n * 21 {
        return Err(CdmsError::Format("trailer directory truncated".into()));
    }
    let mut crc_bytes = Vec::with_capacity(n * 4);
    for &(kind, off, len, crc) in observed {
        let entry =
            (get_u8(buf)?, get_u64(buf)?, get_u64(buf)?, get_u32(buf)?);
        if entry != (kind, off, len, crc) {
            return Err(CdmsError::Format(format!(
                "trailer directory disagrees with section at byte {off}"
            )));
        }
        crc_bytes.extend_from_slice(&crc.to_le_bytes());
    }
    let file_crc = get_u32(buf)?;
    if file_crc != crc32c(&crc_bytes) {
        return Err(CdmsError::Format("file-level checksum mismatch".into()));
    }
    if !buf.is_empty() {
        return Err(CdmsError::Format("trailer payload has trailing bytes".into()));
    }
    Ok(())
}

pub(crate) fn decode_header(payload: &[u8]) -> Result<(String, Attributes, usize, usize)> {
    let mut cur = payload;
    let buf = &mut cur;
    let id = get_string(buf)?;
    let attributes = get_attrs(buf)?;
    let n_axes = get_u32(buf)? as usize;
    let n_vars = get_u32(buf)? as usize;
    if n_axes > MAX_AXES {
        return Err(CdmsError::Format(format!("implausible axis count {n_axes}")));
    }
    if n_vars > MAX_VARS {
        return Err(CdmsError::Format(format!("implausible variable count {n_vars}")));
    }
    if !buf.is_empty() {
        return Err(CdmsError::Format("header payload has trailing bytes".into()));
    }
    Ok((id, attributes, n_axes, n_vars))
}

pub(crate) fn decode_axis_payload(payload: &[u8]) -> Result<Axis> {
    let mut cur = payload;
    let buf = &mut cur;
    let ax = get_axis(buf)?;
    if !buf.is_empty() {
        return Err(CdmsError::Format(format!("axis '{}' payload has trailing bytes", ax.id)));
    }
    Ok(ax)
}

pub(crate) fn decode_variable_payload(payload: &[u8], axes: &[Axis]) -> Result<Variable> {
    let mut cur = payload;
    let buf = &mut cur;
    let vid = get_string(buf)?;
    let naxes = get_u32(buf)? as usize;
    if naxes > 64 {
        return Err(CdmsError::Format(format!("implausible rank {naxes}")));
    }
    let mut var_axes = Vec::with_capacity(naxes);
    for _ in 0..naxes {
        let r = get_u32(buf)? as usize;
        let ax = axes.get(r).ok_or_else(|| {
            CdmsError::Format(format!(
                "variable '{vid}' references axis section {r}, only {} exist",
                axes.len()
            ))
        })?;
        var_axes.push(ax.clone());
    }
    let attributes = get_attrs(buf)?;
    let rank = get_u32(buf)? as usize;
    if rank != naxes {
        return Err(CdmsError::Format(format!(
            "variable '{vid}': rank {rank} != axis count {naxes}"
        )));
    }
    let mut shape = Vec::with_capacity(rank);
    for _ in 0..rank {
        shape.push(get_u64(buf)? as usize);
    }
    let n = checked_volume(&shape)
        .ok_or_else(|| CdmsError::Format(format!("variable '{vid}': shape overflows")))?;
    if n > buf.len() / 4 {
        return Err(CdmsError::Format(format!(
            "variable '{vid}': declared {n} elements exceeds section bytes"
        )));
    }
    // Bulk conversion: the guard above proved 4*n bytes are present, so
    // the data block can be split off and converted chunk-wise (which the
    // compiler vectorizes) instead of element-wise through `get_f32`.
    let (raw, rest) = buf.split_at(4 * n);
    *buf = rest;
    let mut data = Vec::with_capacity(n);
    data.extend(raw.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])));
    let mask = get_mask(buf, n)?;
    if !buf.is_empty() {
        return Err(CdmsError::Format(format!(
            "variable '{vid}' payload has trailing bytes"
        )));
    }
    let array = MaskedArray::with_mask(data, mask, &shape)?;
    let mut var = Variable::new(&vid, array, var_axes)?;
    var.attributes = attributes;
    Ok(var)
}

/// Product of `shape` without overflow (empty shape = scalar = 1 element).
pub(crate) fn checked_volume(shape: &[usize]) -> Option<usize> {
    shape.iter().try_fold(1usize, |acc, &d| acc.checked_mul(d))
}

// ---- decoding (salvage) ----

/// Best-effort decode: recovers every variable whose own section and
/// referenced axis sections pass checksum verification, skipping the rest.
/// Returns the (possibly partial, possibly empty) dataset plus a
/// [`SalvageReport`]. Errors only when the input is not a v2 `.ncr` file
/// at all — v1 files carry no checksums to salvage by, so a corrupt v1
/// file is unrecoverable.
pub fn from_bytes_salvage(buf: &[u8]) -> Result<(Dataset, SalvageReport)> {
    match parse_magic_version(buf)? {
        VERSION_V1 => match from_bytes_v1(&buf[8..]) {
            Ok(ds) => {
                let report = SalvageReport {
                    sections_total: 1,
                    header_intact: true,
                    directory_intact: true,
                    recovered_variables: ds.variable_ids(),
                    ..SalvageReport::default()
                };
                Ok((ds, report))
            }
            Err(e) => Err(CdmsError::Format(format!(
                "corrupt v1 file cannot be salvaged (v1 has no section checksums): {e}"
            ))),
        },
        VERSION_V2 => Ok(salvage_v2(buf)),
        VERSION_V3 => Ok(crate::format_v3::salvage_v3(buf)),
        v => Err(CdmsError::Format(format!("unsupported version {v}"))),
    }
}

/// A located (not yet verified) v2/v3 section.
pub(crate) struct RawSection {
    pub(crate) kind: SectionKind,
    pub(crate) offset: usize,
    pub(crate) len: usize,
    pub(crate) crc: u32,
}

fn salvage_v2(full: &[u8]) -> (Dataset, SalvageReport) {
    let (raw, directory_intact) = locate_sections(full);
    let mut report = SalvageReport {
        sections_total: raw.len(),
        directory_intact,
        ..SalvageReport::default()
    };

    // First pass: verify checksums, decode header and axes. Axis sections
    // keep their file order so variable references resolve by ordinal.
    let mut header: Option<(String, Attributes)> = None;
    let mut axes: Vec<Option<Axis>> = Vec::new();
    let mut var_payloads: Vec<Option<&[u8]>> = Vec::new();
    for s in &raw {
        let Some(payload) = verified_payload(full, s) else {
            report.sections_corrupt += 1;
            match s.kind {
                SectionKind::Axis => axes.push(None),
                SectionKind::Variable => var_payloads.push(None),
                _ => {}
            }
            continue;
        };
        match s.kind {
            SectionKind::Header => {
                if let Ok((id, attrs, _, _)) = decode_header(payload) {
                    header = Some((id, attrs));
                } else {
                    report.sections_corrupt += 1;
                }
            }
            SectionKind::Axis => match decode_axis_payload(payload) {
                Ok(ax) => axes.push(Some(ax)),
                Err(_) => {
                    report.sections_corrupt += 1;
                    axes.push(None);
                }
            },
            SectionKind::Variable => var_payloads.push(Some(payload)),
            // v3-only kinds never appear in a well-formed v2 file; a
            // corrupt kind byte that happens to decode as one is ignored
            SectionKind::Trailer
            | SectionKind::VarMeta
            | SectionKind::Chunk
            | SectionKind::ChunkDir => {}
        }
    }
    report.header_intact = header.is_some();
    let (id, attributes) = header.unwrap_or_else(|| (String::new(), Attributes::new()));
    let mut ds = Dataset::new(&id);
    ds.attributes = attributes;

    // Second pass: rebuild variables whose payload and axis references are
    // all intact.
    let resolved: Vec<Axis> = axes.iter().flatten().cloned().collect();
    let intact_index: Vec<Option<usize>> = {
        // ordinal in `axes` → index in `resolved` (None when corrupt)
        let mut next = 0usize;
        axes.iter()
            .map(|a| {
                a.as_ref().map(|_| {
                    next += 1;
                    next - 1
                })
            })
            .collect()
    };
    for (ordinal, payload) in var_payloads.iter().enumerate() {
        let Some(payload) = payload else {
            // already counted corrupt in the first pass
            report.lost_variables.push(LostVariable {
                id: None,
                section: ordinal,
                reason: "variable section checksum mismatch".into(),
            });
            continue;
        };
        match salvage_variable(payload, &intact_index, &resolved) {
            Ok(var) => {
                report.recovered_variables.push(var.id.clone());
                ds.add_variable(var);
            }
            Err((vid, reason)) => {
                report.lost_variables.push(LostVariable { id: vid, section: ordinal, reason });
            }
        }
    }
    (ds, report)
}

/// Decodes one variable payload against possibly-holey axes. Errors carry
/// the id (when readable) and a reason.
fn salvage_variable(
    payload: &[u8],
    intact_index: &[Option<usize>],
    resolved: &[Axis],
) -> std::result::Result<Variable, (Option<String>, String)> {
    // Peek the id + axis references first so a missing axis produces a
    // named reason instead of a generic decode failure.
    let mut cur = payload;
    let buf = &mut cur;
    let vid = get_string(buf).map_err(|e| (None, format!("unreadable id: {e}")))?;
    let naxes = get_u32(buf).map_err(|e| (Some(vid.clone()), e.to_string()))? as usize;
    if naxes > 64 {
        return Err((Some(vid), format!("implausible rank {naxes}")));
    }
    for _ in 0..naxes {
        let r = get_u32(buf).map_err(|e| (Some(vid.clone()), e.to_string()))? as usize;
        match intact_index.get(r) {
            Some(Some(_)) => {}
            Some(None) => {
                return Err((Some(vid), format!("axis section {r} corrupt")));
            }
            None => {
                return Err((Some(vid), format!("axis section {r} missing")));
            }
        }
    }
    // Full decode against the compacted intact-axis list, with references
    // remapped through `intact_index`.
    let remapped = remap_axis_refs(payload, intact_index)
        .map_err(|e| (Some(vid.clone()), e.to_string()))?;
    decode_variable_payload(&remapped, resolved)
        .map_err(|e| (Some(vid), format!("payload decode failed: {e}")))
}

/// Rewrites a variable payload's axis ordinals from "all sections" space
/// into "intact sections" space so `decode_variable_payload` can resolve
/// them against the compacted axis list.
fn remap_axis_refs(payload: &[u8], intact_index: &[Option<usize>]) -> Result<Vec<u8>> {
    let mut cur = payload;
    let buf = &mut cur;
    let id_start_len = payload.len() - {
        get_string(buf)?;
        buf.len()
    };
    let naxes = get_u32(buf)? as usize;
    let refs_at = id_start_len + 4;
    let mut out = payload.to_vec();
    for i in 0..naxes {
        let at = refs_at + i * 4;
        let r = u32::from_le_bytes([
            payload[at],
            payload[at + 1],
            payload[at + 2],
            payload[at + 3],
        ]) as usize;
        let mapped = intact_index
            .get(r)
            .copied()
            .flatten()
            .ok_or_else(|| CdmsError::Format(format!("axis section {r} not intact")))?;
        out[at..at + 4].copy_from_slice(&(mapped as u32).to_le_bytes());
    }
    Ok(out)
}

/// Slices and checksum-verifies one raw section's payload.
pub(crate) fn verified_payload<'a>(full: &'a [u8], s: &RawSection) -> Option<&'a [u8]> {
    let payload_at = s.offset.checked_add(9)?;
    let crc_at = payload_at.checked_add(s.len)?;
    if crc_at.checked_add(4)? > full.len() {
        return None;
    }
    let payload = &full[payload_at..crc_at];
    (crc32c(payload) == s.crc).then_some(payload)
}

/// Locates sections via the trailer directory (preferred — robust to
/// corrupt mid-file framing) or a sequential walk.
pub(crate) fn locate_sections(full: &[u8]) -> (Vec<RawSection>, bool) {
    if let Some(sections) = sections_from_directory(full) {
        return (sections, true);
    }
    (sections_by_walk(full), false)
}

fn sections_from_directory(full: &[u8]) -> Option<Vec<RawSection>> {
    if full.len() < 8 + FRAME_OVERHEAD + FOOTER_LEN {
        return None;
    }
    let footer_at = full.len() - FOOTER_LEN;
    let trailer_at = verify_footer(full, footer_at).ok()? as usize;
    if trailer_at < 8 || trailer_at + FRAME_OVERHEAD > footer_at {
        return None;
    }
    let mut pos = trailer_at;
    let frame = read_frame(full, &mut pos, footer_at).ok()?;
    if frame.kind != SectionKind::Trailer {
        return None;
    }
    let mut cur = frame.payload;
    let buf = &mut cur;
    let n = get_u32(buf).ok()? as usize;
    if n > buf.len() / 21 {
        return None; // each entry is 21 bytes; a bigger claim is hostile
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let kind = SectionKind::from_u8(get_u8(buf).ok()?)?;
        let offset = get_u64(buf).ok()? as usize;
        let len = get_u64(buf).ok()? as usize;
        let crc = get_u32(buf).ok()?;
        // entries must fit inside the section region
        if offset < 8 || offset.checked_add(FRAME_OVERHEAD + len)? > footer_at {
            return None;
        }
        out.push(RawSection { kind, offset, len, crc });
    }
    Some(out)
}

fn sections_by_walk(full: &[u8]) -> Vec<RawSection> {
    let mut out = Vec::new();
    let mut pos = 8usize;
    while pos + FRAME_OVERHEAD <= full.len() {
        let Some(kind) = SectionKind::from_u8(full[pos]) else {
            break; // framing destroyed; cannot resync without the directory
        };
        let mut len_bytes = [0u8; 8];
        len_bytes.copy_from_slice(&full[pos + 1..pos + 9]);
        let len = u64::from_le_bytes(len_bytes) as usize;
        let Some(end) = pos.checked_add(FRAME_OVERHEAD + len) else { break };
        if end > full.len() {
            break;
        }
        if kind == SectionKind::Trailer {
            break;
        }
        let crc_at = pos + 9 + len;
        let crc = u32::from_le_bytes([
            full[crc_at],
            full[crc_at + 1],
            full[crc_at + 2],
            full[crc_at + 3],
        ]);
        out.push(RawSection { kind, offset: pos, len, crc });
        pos = end;
    }
    out
}

// ---- file I/O ----

/// Writes a dataset to a `.ncr` file crash-safely (v2, atomic
/// temp-file + fsync + rename via [`crate::storage::write_atomic`]).
pub fn write_dataset(ds: &Dataset, path: &Path) -> Result<()> {
    write_dataset_with(&LocalDisk, ds, path)
}

/// Writes through an explicit storage backend (fault injection, tests).
pub fn write_dataset_with(storage: &dyn Storage, ds: &Dataset, path: &Path) -> Result<()> {
    crate::storage::write_atomic(storage, path, &to_bytes(ds))
}

/// Writes in the legacy v1 format, still atomically — kept so the
/// v1-vs-v2 overhead benchmark and compatibility tests exercise identical
/// write paths.
pub fn write_dataset_v1(ds: &Dataset, path: &Path) -> Result<()> {
    crate::storage::write_atomic(&LocalDisk, path, &to_bytes_v1(ds))
}

/// Reads a dataset from a `.ncr` file (strict: any checksum failure errors).
pub fn read_dataset(path: &Path) -> Result<Dataset> {
    read_dataset_with(&LocalDisk, path)
}

/// Reads through an explicit storage backend (fault injection, tests).
pub fn read_dataset_with(storage: &dyn Storage, path: &Path) -> Result<Dataset> {
    let bytes = storage.read(path).map_err(|e| with_path(e, path))?;
    from_bytes(&bytes).map_err(|e| with_path(e, path))
}

/// Prefixes `Format`/`Io` error messages with the offending file path so a
/// failure in a multi-file workload names which file was bad. Other
/// variants — notably `TransientIo`, which retry layers match on — pass
/// through unchanged (`is_transient` only checks the variant, but keeping
/// the message pristine keeps retry logs grep-able).
pub(crate) fn with_path(e: CdmsError, path: &Path) -> CdmsError {
    match e {
        CdmsError::Format(msg) => CdmsError::Format(format!("{}: {msg}", path.display())),
        CdmsError::Io(msg) => CdmsError::Io(format!("{}: {msg}", path.display())),
        other => other,
    }
}

/// Reads with salvage semantics: recovers the variables whose sections are
/// intact and reports what was lost. When the header section is gone the
/// dataset id falls back to the file stem.
pub fn read_dataset_salvage(path: &Path) -> Result<(Dataset, SalvageReport)> {
    read_dataset_salvage_with(&LocalDisk, path)
}

/// Salvage-reads through an explicit storage backend.
pub fn read_dataset_salvage_with(
    storage: &dyn Storage,
    path: &Path,
) -> Result<(Dataset, SalvageReport)> {
    let bytes = storage.read(path).map_err(|e| with_path(e, path))?;
    let (mut ds, report) = from_bytes_salvage(&bytes).map_err(|e| with_path(e, path))?;
    if ds.id.is_empty() {
        if let Some(stem) = path.file_stem().map(|s| s.to_string_lossy().into_owned()) {
            ds.id = stem;
        }
    }
    Ok((ds, report))
}

// ---- encoding helpers ----

pub(crate) fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

pub(crate) fn put_attrs(buf: &mut BytesMut, attrs: &Attributes) {
    buf.put_u32_le(attrs.len() as u32);
    for (k, v) in attrs {
        put_string(buf, k);
        match v {
            AttValue::Text(s) => {
                buf.put_u8(0);
                put_string(buf, s);
            }
            AttValue::Float(f) => {
                buf.put_u8(1);
                buf.put_f64_le(*f);
            }
            AttValue::Int(i) => {
                buf.put_u8(2);
                buf.put_i64_le(*i);
            }
            AttValue::FloatVec(v) => {
                buf.put_u8(3);
                buf.put_u32_le(v.len() as u32);
                for &f in v {
                    buf.put_f64_le(f);
                }
            }
        }
    }
}

pub(crate) fn put_axis(buf: &mut BytesMut, ax: &Axis) {
    put_string(buf, &ax.id);
    put_string(buf, &ax.units);
    buf.put_u8(match ax.kind {
        AxisKind::Latitude => 0,
        AxisKind::Longitude => 1,
        AxisKind::Level => 2,
        AxisKind::Time => 3,
        AxisKind::Generic => 4,
    });
    buf.put_u8(match ax.calendar {
        Calendar::Gregorian => 0,
        Calendar::NoLeap365 => 1,
        Calendar::AllLeap366 => 2,
        Calendar::Day360 => 3,
    });
    buf.put_u64_le(ax.values.len() as u64);
    for &v in &ax.values {
        buf.put_f64_le(v);
    }
    match &ax.bounds {
        Some(b) => {
            buf.put_u8(1);
            for (lo, hi) in b {
                buf.put_f64_le(*lo);
                buf.put_f64_le(*hi);
            }
        }
        None => buf.put_u8(0),
    }
    put_attrs(buf, &ax.attributes);
}

/// Streams an `f32` slice into the buffer through a stack staging block,
/// amortizing the per-element bookkeeping of `put_f32_le`.
pub(crate) fn put_f32_bulk(buf: &mut BytesMut, data: &[f32]) {
    let mut stage = [0u8; 4096];
    for chunk in data.chunks(1024) {
        let mut n = 0;
        for &v in chunk {
            stage[n..n + 4].copy_from_slice(&v.to_le_bytes());
            n += 4;
        }
        buf.put_slice(&stage[..n]);
    }
}

pub(crate) fn put_mask(buf: &mut BytesMut, mask: &[bool]) {
    let nbytes = mask.len().div_ceil(8);
    let mut packed = vec![0u8; nbytes];
    for (i, &m) in mask.iter().enumerate() {
        if m {
            packed[i / 8] |= 1 << (i % 8);
        }
    }
    buf.put_slice(&packed);
}

// ---- decoding helpers ----

pub(crate) fn take_bytes<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8]> {
    if buf.len() < n {
        return Err(CdmsError::Format(format!("truncated: need {n} bytes, have {}", buf.len())));
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

pub(crate) fn get_u32(buf: &mut &[u8]) -> Result<u32> {
    Ok(take_bytes(buf, 4)?.iter().rev().fold(0u32, |acc, &b| (acc << 8) | b as u32))
}

pub(crate) fn get_u64(buf: &mut &[u8]) -> Result<u64> {
    Ok(take_bytes(buf, 8)?.iter().rev().fold(0u64, |acc, &b| (acc << 8) | b as u64))
}

fn get_f32(buf: &mut &[u8]) -> Result<f32> {
    let mut b = take_bytes(buf, 4)?;
    Ok(b.get_f32_le())
}

fn get_f64(buf: &mut &[u8]) -> Result<f64> {
    let mut b = take_bytes(buf, 8)?;
    Ok(b.get_f64_le())
}

fn get_i64(buf: &mut &[u8]) -> Result<i64> {
    let mut b = take_bytes(buf, 8)?;
    Ok(b.get_i64_le())
}

pub(crate) fn get_u8(buf: &mut &[u8]) -> Result<u8> {
    Ok(take_bytes(buf, 1)?[0])
}

pub(crate) fn get_string(buf: &mut &[u8]) -> Result<String> {
    let len = get_u32(buf)? as usize;
    if len > 1 << 24 {
        return Err(CdmsError::Format(format!("implausible string length {len}")));
    }
    let raw = take_bytes(buf, len)?;
    String::from_utf8(raw.to_vec()).map_err(|e| CdmsError::Format(format!("bad utf8: {e}")))
}

pub(crate) fn get_attrs(buf: &mut &[u8]) -> Result<Attributes> {
    let n = get_u32(buf)? as usize;
    if n > 100_000 {
        return Err(CdmsError::Format(format!("implausible attribute count {n}")));
    }
    let mut attrs = Attributes::new();
    for _ in 0..n {
        let key = get_string(buf)?;
        let tag = get_u8(buf)?;
        let value = match tag {
            0 => AttValue::Text(get_string(buf)?),
            1 => AttValue::Float(get_f64(buf)?),
            2 => AttValue::Int(get_i64(buf)?),
            3 => {
                let len = get_u32(buf)? as usize;
                // bound allocation against the bytes actually present
                if len > buf.len() / 8 {
                    return Err(CdmsError::Format("implausible vector length".into()));
                }
                let mut v = Vec::with_capacity(len);
                for _ in 0..len {
                    v.push(get_f64(buf)?);
                }
                AttValue::FloatVec(v)
            }
            t => return Err(CdmsError::Format(format!("unknown attribute tag {t}"))),
        };
        attrs.insert(key, value);
    }
    Ok(attrs)
}

pub(crate) fn get_axis(buf: &mut &[u8]) -> Result<Axis> {
    let id = get_string(buf)?;
    let units = get_string(buf)?;
    let kind = match get_u8(buf)? {
        0 => AxisKind::Latitude,
        1 => AxisKind::Longitude,
        2 => AxisKind::Level,
        3 => AxisKind::Time,
        4 => AxisKind::Generic,
        t => return Err(CdmsError::Format(format!("unknown axis kind {t}"))),
    };
    let calendar = match get_u8(buf)? {
        0 => Calendar::Gregorian,
        1 => Calendar::NoLeap365,
        2 => Calendar::AllLeap366,
        3 => Calendar::Day360,
        t => return Err(CdmsError::Format(format!("unknown calendar {t}"))),
    };
    let n = get_u64(buf)? as usize;
    // bound allocation against the bytes actually present, not a fixed cap:
    // a hostile length field must fail before Vec::with_capacity
    if n > buf.len() / 8 {
        return Err(CdmsError::Format(format!("implausible axis length {n}")));
    }
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(get_f64(buf)?);
    }
    let bounds = if get_u8(buf)? == 1 {
        if n > buf.len() / 16 {
            return Err(CdmsError::Format("axis bounds exceed remaining bytes".into()));
        }
        let mut b = Vec::with_capacity(n);
        for _ in 0..n {
            b.push((get_f64(buf)?, get_f64(buf)?));
        }
        Some(b)
    } else {
        None
    };
    let attributes = get_attrs(buf)?;
    let mut ax = if values.is_empty() {
        Axis::empty(&id, &units, kind)
    } else {
        Axis::new(&id, values, &units, kind)?
    };
    ax.calendar = calendar;
    ax.bounds = bounds;
    ax.attributes = attributes;
    Ok(ax)
}

pub(crate) fn get_mask(buf: &mut &[u8], n: usize) -> Result<Vec<bool>> {
    let nbytes = n.div_ceil(8);
    let packed = take_bytes(buf, nbytes)?;
    Ok((0..n).map(|i| packed[i / 8] & (1 << (i % 8)) != 0).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::attrs;

    fn sample_dataset() -> Dataset {
        let time =
            Axis::time(vec![0.0, 30.0], "days since 2000-01-01", Calendar::NoLeap365).unwrap();
        let mut lat = Axis::latitude(vec![-45.0, 0.0, 45.0]).unwrap();
        lat.gen_bounds();
        let lon = Axis::longitude(vec![0.0, 120.0, 240.0]).unwrap();
        let mut arr = MaskedArray::from_fn(&[2, 3, 3], |ix| ix.iter().sum::<usize>() as f32);
        arr.mask_at(&[0, 1, 2]).unwrap();
        let mut var = Variable::new("ta", arr, vec![time, lat, lon]).unwrap();
        var.attributes = attrs([("units", "K"), ("long_name", "air temperature")]);
        var.attributes.insert("missing_value".into(), AttValue::Float(1e20));
        var.attributes.insert("valid_range".into(), AttValue::FloatVec(vec![150.0, 350.0]));
        var.attributes.insert("realization".into(), AttValue::Int(1));
        let mut ds = Dataset::new("cmip_sample").with_attr("institution", "NASA NCCS");
        ds.add_variable(var);
        ds
    }

    /// A dataset with two variables sharing axes, for salvage tests.
    fn two_var_dataset() -> Dataset {
        let mut ds = sample_dataset();
        let ta = ds.variable("ta").unwrap().clone();
        let mut ua = ta.clone();
        ua.id = "ua".into();
        ua.array = MaskedArray::filled(7.0, &[2, 3, 3]);
        ds.add_variable(ua);
        ds
    }

    #[test]
    fn roundtrip_through_bytes() {
        let ds = sample_dataset();
        let bytes = to_bytes(&ds);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.id, ds.id);
        assert_eq!(back.attributes, ds.attributes);
        let v0 = ds.variable("ta").unwrap();
        let v1 = back.variable("ta").unwrap();
        assert_eq!(v1.array, v0.array);
        assert_eq!(v1.axes, v0.axes);
        assert_eq!(v1.attributes, v0.attributes);
    }

    #[test]
    fn v1_roundtrip_still_works() {
        let ds = sample_dataset();
        let bytes = to_bytes_v1(&ds);
        assert_eq!(u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]), VERSION_V1);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.variable("ta").unwrap().array, ds.variable("ta").unwrap().array);
        assert_eq!(back.variable("ta").unwrap().axes, ds.variable("ta").unwrap().axes);
        assert_eq!(back.attributes, ds.attributes);
    }

    #[test]
    fn v2_deduplicates_shared_axes() {
        let ds = two_var_dataset();
        let (_, layout) = to_bytes_v2_with_layout(&ds);
        let n_axis_sections =
            layout.sections.iter().filter(|s| s.kind == SectionKind::Axis).count();
        assert_eq!(n_axis_sections, 3, "two variables share one time/lat/lon trio");
        // both variables reference the same three axis ordinals
        let refs: Vec<_> = layout
            .sections
            .iter()
            .filter_map(|s| s.variable.as_ref().map(|(_, r)| r.clone()))
            .collect();
        assert_eq!(refs, vec![vec![0, 1, 2], vec![0, 1, 2]]);
    }

    #[test]
    fn roundtrip_through_file() {
        let dir = std::env::temp_dir().join("cdms_format_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.ncr");
        let ds = sample_dataset();
        ds.save(&path).unwrap();
        let back = Dataset::open(&path).unwrap();
        assert_eq!(back.variable("ta").unwrap().array, ds.variable("ta").unwrap().array);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let err = from_bytes(b"NOPE....").unwrap_err();
        assert!(matches!(err, CdmsError::Format(_)));
    }

    #[test]
    fn truncated_file_rejected() {
        let ds = sample_dataset();
        let bytes = to_bytes(&ds);
        for cut in [3, 8, 20, bytes.len() / 2, bytes.len() - 1] {
            let err = from_bytes(&bytes[..cut]).unwrap_err();
            assert!(matches!(err, CdmsError::Format(_) | CdmsError::Invalid(_)), "cut={cut}");
        }
    }

    #[test]
    fn bad_version_rejected() {
        let ds = sample_dataset();
        let mut bytes = to_bytes(&ds).to_vec();
        bytes[4] = 99;
        assert!(matches!(from_bytes(&bytes), Err(CdmsError::Format(_))));
    }

    #[test]
    fn corrupt_tag_rejected() {
        let ds = sample_dataset();
        let bytes = to_bytes(&ds).to_vec();
        // Flip every byte one at a time over the header region; must never panic.
        for i in 8..bytes.len().min(120) {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0xFF;
            let _ = from_bytes(&corrupt); // any Result is fine, panics are not
        }
    }

    #[test]
    fn any_single_byte_flip_fails_strict_decode() {
        // v2's whole point: silent corruption cannot pass the strict reader.
        let ds = sample_dataset();
        let bytes = to_bytes(&ds).to_vec();
        for i in 8..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            assert!(from_bytes(&corrupt).is_err(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let ds = Dataset::new("empty");
        let back = from_bytes(&to_bytes(&ds)).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.id, "empty");
    }

    #[test]
    fn mask_bit_packing_roundtrips_odd_lengths() {
        for n in [1usize, 7, 8, 9, 17] {
            let mut arr = MaskedArray::zeros(&[n]);
            for i in (0..n).step_by(3) {
                arr.mask_at(&[i]).unwrap();
            }
            let ax = Axis::new("x", (0..n).map(|i| i as f64).collect(), "m", AxisKind::Generic)
                .unwrap();
            let mut ds = Dataset::new("m");
            ds.add_variable(Variable::new("v", arr.clone(), vec![ax]).unwrap());
            let back = from_bytes(&to_bytes(&ds)).unwrap();
            assert_eq!(back.variable("v").unwrap().array.mask(), arr.mask(), "n={n}");
        }
    }

    #[test]
    fn salvage_of_clean_file_is_clean() {
        let ds = two_var_dataset();
        let (ds2, report) = from_bytes_salvage(&to_bytes(&ds)).unwrap();
        assert!(report.is_clean(), "{report}");
        assert!(report.directory_intact);
        assert_eq!(report.recovered_variables, vec!["ta", "ua"]);
        assert_eq!(ds2.variable("ua").unwrap().array, ds.variable("ua").unwrap().array);
    }

    #[test]
    fn salvage_recovers_intact_variable_when_other_corrupts() {
        let ds = two_var_dataset();
        let (bytes, layout) = to_bytes_v2_with_layout(&ds);
        let mut bytes = bytes.to_vec();
        // corrupt a payload byte of the "ta" variable section
        let ta = layout
            .sections
            .iter()
            .find(|s| matches!(&s.variable, Some((id, _)) if id == "ta"))
            .unwrap();
        bytes[ta.payload.start + ta.payload.len() / 2] ^= 0xFF;
        assert!(from_bytes(&bytes).is_err(), "strict reader must refuse");
        let (salvaged, report) = from_bytes_salvage(&bytes).unwrap();
        assert_eq!(report.recovered_variables, vec!["ua"]);
        assert_eq!(report.lost_variables.len(), 1);
        assert_eq!(report.sections_corrupt, 1);
        assert!(report.header_intact);
        assert_eq!(salvaged.variable("ua").unwrap().array, ds.variable("ua").unwrap().array);
        assert!(salvaged.variable("ta").is_none());
    }

    #[test]
    fn salvage_drops_variables_of_corrupt_axis() {
        let ds = two_var_dataset();
        let (bytes, layout) = to_bytes_v2_with_layout(&ds);
        let mut bytes = bytes.to_vec();
        // corrupt the first axis section: both variables reference it
        let ax = layout.sections.iter().find(|s| s.kind == SectionKind::Axis).unwrap();
        bytes[ax.payload.start] ^= 0xFF;
        let (salvaged, report) = from_bytes_salvage(&bytes).unwrap();
        assert!(salvaged.is_empty());
        assert_eq!(report.lost_variables.len(), 2);
        assert!(report.lost_variables[0].reason.contains("axis section"), "{report:?}");
        assert_eq!(report.lost_variables[0].id.as_deref(), Some("ta"));
    }

    #[test]
    fn salvage_survives_destroyed_framing_via_directory() {
        let ds = two_var_dataset();
        let (bytes, layout) = to_bytes_v2_with_layout(&ds);
        let mut bytes = bytes.to_vec();
        // destroy the length field of the header frame: a sequential walk
        // is now lost immediately, but the trailer directory still locates
        // every section
        let header = &layout.sections[0];
        bytes[header.frame.start + 3] ^= 0xFF;
        let (salvaged, report) = from_bytes_salvage(&bytes).unwrap();
        assert!(report.directory_intact);
        assert_eq!(report.recovered_variables, vec!["ta", "ua"]);
        // header *payload* is untouched, so id and attrs survive too
        assert!(report.header_intact);
        assert_eq!(salvaged.id, "cmip_sample");
    }

    #[test]
    fn salvage_falls_back_to_walk_when_footer_dies() {
        let ds = two_var_dataset();
        let (bytes, layout) = to_bytes_v2_with_layout(&ds);
        let mut bytes = bytes.to_vec();
        bytes[layout.footer.start] ^= 0xFF; // footer checksum now fails
        let (salvaged, report) = from_bytes_salvage(&bytes).unwrap();
        assert!(!report.directory_intact);
        assert_eq!(report.recovered_variables, vec!["ta", "ua"]);
        assert_eq!(salvaged.len(), 2);
    }

    #[test]
    fn salvage_of_corrupt_v1_errors() {
        let ds = sample_dataset();
        let mut bytes = to_bytes_v1(&ds).to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        // a corrupt v1 file either fails decode (usually) or decodes to
        // something — when it fails, salvage must refuse with a clear reason
        if from_bytes(&bytes).is_err() {
            let err = from_bytes_salvage(&bytes).unwrap_err();
            assert!(err.to_string().contains("v1"), "{err}");
        }
    }

    #[test]
    fn hostile_length_fields_fail_before_allocating() {
        // axis claiming 2^60 values inside a 60-byte section must error
        let mut p = BytesMut::new();
        put_string(&mut p, "x");
        put_string(&mut p, "m");
        p.put_u8(4); // Generic
        p.put_u8(0); // Gregorian
        p.put_u64_le(1 << 60); // hostile value count
        let mut cur = &p[..];
        let err = get_axis(&mut cur).unwrap_err();
        assert!(err.to_string().contains("implausible axis length"), "{err}");

        // attribute float-vec claiming 2^24 entries in a tiny buffer
        let mut p = BytesMut::new();
        p.put_u32_le(1); // one attribute
        put_string(&mut p, "k");
        p.put_u8(3); // FloatVec
        p.put_u32_le(1 << 24);
        let mut cur = &p[..];
        let err = get_attrs(&mut cur).unwrap_err();
        assert!(err.to_string().contains("implausible vector length"), "{err}");
    }

    #[test]
    fn scalar_variable_roundtrips() {
        // rank-0: no axes, one element
        let arr = MaskedArray::filled(3.25, &[]);
        let mut ds = Dataset::new("scalar");
        ds.add_variable(Variable::new("t0", arr, vec![]).unwrap());
        for bytes in [to_bytes(&ds), to_bytes_v1(&ds)] {
            let back = from_bytes(&bytes).unwrap();
            assert_eq!(back.variable("t0").unwrap().array.data(), &[3.25]);
        }
    }
}

