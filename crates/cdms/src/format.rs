//! The `.ncr` self-describing binary container — this repo's NetCDF stand-in.
//!
//! Layout (little-endian throughout):
//!
//! ```text
//! magic "NCRS" | version u32
//! dataset id: string
//! global attributes
//! variable count u32, then per variable:
//!   id: string
//!   axes: count u32, each fully self-describing
//!   attributes
//!   shape: rank u32, dims u64...
//!   data:  f32 × n
//!   mask:  bit-packed, ⌈n/8⌉ bytes
//! ```
//!
//! Strings are `u32 length + UTF-8 bytes`. The format is versioned and the
//! reader validates magic, version, counts and lengths so corrupt files fail
//! with [`CdmsError::Format`] rather than panicking.

use crate::attr::{AttValue, Attributes};
use crate::axis::{Axis, AxisKind};
use crate::calendar::Calendar;
use crate::dataset::Dataset;
use crate::error::{CdmsError, Result};
use crate::{MaskedArray, Variable};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fs;
use std::path::Path;

const MAGIC: &[u8; 4] = b"NCRS";
const VERSION: u32 = 1;

/// Serializes a dataset to bytes.
pub fn to_bytes(ds: &Dataset) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    put_string(&mut buf, &ds.id);
    put_attrs(&mut buf, &ds.attributes);
    buf.put_u32_le(ds.variables().len() as u32);
    for var in ds.variables() {
        put_string(&mut buf, &var.id);
        buf.put_u32_le(var.axes.len() as u32);
        for ax in &var.axes {
            put_axis(&mut buf, ax);
        }
        put_attrs(&mut buf, &var.attributes);
        buf.put_u32_le(var.array.rank() as u32);
        for &d in var.array.shape() {
            buf.put_u64_le(d as u64);
        }
        for &v in var.array.data() {
            buf.put_f32_le(v);
        }
        put_mask(&mut buf, var.array.mask());
    }
    buf.freeze()
}

/// Deserializes a dataset from bytes.
pub fn from_bytes(mut buf: &[u8]) -> Result<Dataset> {
    let magic = take_bytes(&mut buf, 4)?;
    if magic != MAGIC {
        return Err(CdmsError::Format("bad magic (not an .ncr file)".into()));
    }
    let version = get_u32(&mut buf)?;
    if version != VERSION {
        return Err(CdmsError::Format(format!("unsupported version {version}")));
    }
    let id = get_string(&mut buf)?;
    let mut ds = Dataset::new(&id);
    ds.attributes = get_attrs(&mut buf)?;
    let nvars = get_u32(&mut buf)? as usize;
    if nvars > 1_000_000 {
        return Err(CdmsError::Format(format!("implausible variable count {nvars}")));
    }
    for _ in 0..nvars {
        let vid = get_string(&mut buf)?;
        let naxes = get_u32(&mut buf)? as usize;
        if naxes > 64 {
            return Err(CdmsError::Format(format!("implausible rank {naxes}")));
        }
        let mut axes = Vec::with_capacity(naxes);
        for _ in 0..naxes {
            axes.push(get_axis(&mut buf)?);
        }
        let attributes = get_attrs(&mut buf)?;
        let rank = get_u32(&mut buf)? as usize;
        if rank != naxes {
            return Err(CdmsError::Format(format!(
                "variable '{vid}': rank {rank} != axis count {naxes}"
            )));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(get_u64(&mut buf)? as usize);
        }
        let n: usize = shape.iter().product();
        if n > buf.len() / 4 + 8 {
            return Err(CdmsError::Format(format!(
                "variable '{vid}': declared {n} elements exceeds remaining bytes"
            )));
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(get_f32(&mut buf)?);
        }
        let mask = get_mask(&mut buf, n)?;
        let array = MaskedArray::with_mask(data, mask, &shape)?;
        let mut var = Variable::new(&vid, array, axes)?;
        var.attributes = attributes;
        ds.add_variable(var);
    }
    Ok(ds)
}

/// Writes a dataset to a file.
pub fn write_dataset(ds: &Dataset, path: &Path) -> Result<()> {
    fs::write(path, to_bytes(ds))?;
    Ok(())
}

/// Reads a dataset from a file.
pub fn read_dataset(path: &Path) -> Result<Dataset> {
    let bytes = fs::read(path)?;
    from_bytes(&bytes)
}

// ---- encoding helpers ----

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_attrs(buf: &mut BytesMut, attrs: &Attributes) {
    buf.put_u32_le(attrs.len() as u32);
    for (k, v) in attrs {
        put_string(buf, k);
        match v {
            AttValue::Text(s) => {
                buf.put_u8(0);
                put_string(buf, s);
            }
            AttValue::Float(f) => {
                buf.put_u8(1);
                buf.put_f64_le(*f);
            }
            AttValue::Int(i) => {
                buf.put_u8(2);
                buf.put_i64_le(*i);
            }
            AttValue::FloatVec(v) => {
                buf.put_u8(3);
                buf.put_u32_le(v.len() as u32);
                for &f in v {
                    buf.put_f64_le(f);
                }
            }
        }
    }
}

fn put_axis(buf: &mut BytesMut, ax: &Axis) {
    put_string(buf, &ax.id);
    put_string(buf, &ax.units);
    buf.put_u8(match ax.kind {
        AxisKind::Latitude => 0,
        AxisKind::Longitude => 1,
        AxisKind::Level => 2,
        AxisKind::Time => 3,
        AxisKind::Generic => 4,
    });
    buf.put_u8(match ax.calendar {
        Calendar::Gregorian => 0,
        Calendar::NoLeap365 => 1,
        Calendar::AllLeap366 => 2,
        Calendar::Day360 => 3,
    });
    buf.put_u64_le(ax.values.len() as u64);
    for &v in &ax.values {
        buf.put_f64_le(v);
    }
    match &ax.bounds {
        Some(b) => {
            buf.put_u8(1);
            for (lo, hi) in b {
                buf.put_f64_le(*lo);
                buf.put_f64_le(*hi);
            }
        }
        None => buf.put_u8(0),
    }
    put_attrs(buf, &ax.attributes);
}

fn put_mask(buf: &mut BytesMut, mask: &[bool]) {
    let nbytes = mask.len().div_ceil(8);
    let mut packed = vec![0u8; nbytes];
    for (i, &m) in mask.iter().enumerate() {
        if m {
            packed[i / 8] |= 1 << (i % 8);
        }
    }
    buf.put_slice(&packed);
}

// ---- decoding helpers ----

fn take_bytes<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8]> {
    if buf.len() < n {
        return Err(CdmsError::Format(format!("truncated: need {n} bytes, have {}", buf.len())));
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

fn get_u32(buf: &mut &[u8]) -> Result<u32> {
    Ok(take_bytes(buf, 4)?.iter().rev().fold(0u32, |acc, &b| (acc << 8) | b as u32))
}

fn get_u64(buf: &mut &[u8]) -> Result<u64> {
    Ok(take_bytes(buf, 8)?.iter().rev().fold(0u64, |acc, &b| (acc << 8) | b as u64))
}

fn get_f32(buf: &mut &[u8]) -> Result<f32> {
    let mut b = take_bytes(buf, 4)?;
    Ok(b.get_f32_le())
}

fn get_f64(buf: &mut &[u8]) -> Result<f64> {
    let mut b = take_bytes(buf, 8)?;
    Ok(b.get_f64_le())
}

fn get_i64(buf: &mut &[u8]) -> Result<i64> {
    let mut b = take_bytes(buf, 8)?;
    Ok(b.get_i64_le())
}

fn get_u8(buf: &mut &[u8]) -> Result<u8> {
    Ok(take_bytes(buf, 1)?[0])
}

fn get_string(buf: &mut &[u8]) -> Result<String> {
    let len = get_u32(buf)? as usize;
    if len > 1 << 24 {
        return Err(CdmsError::Format(format!("implausible string length {len}")));
    }
    let raw = take_bytes(buf, len)?;
    String::from_utf8(raw.to_vec()).map_err(|e| CdmsError::Format(format!("bad utf8: {e}")))
}

fn get_attrs(buf: &mut &[u8]) -> Result<Attributes> {
    let n = get_u32(buf)? as usize;
    if n > 100_000 {
        return Err(CdmsError::Format(format!("implausible attribute count {n}")));
    }
    let mut attrs = Attributes::new();
    for _ in 0..n {
        let key = get_string(buf)?;
        let tag = get_u8(buf)?;
        let value = match tag {
            0 => AttValue::Text(get_string(buf)?),
            1 => AttValue::Float(get_f64(buf)?),
            2 => AttValue::Int(get_i64(buf)?),
            3 => {
                let len = get_u32(buf)? as usize;
                if len > 1 << 24 {
                    return Err(CdmsError::Format("implausible vector length".into()));
                }
                let mut v = Vec::with_capacity(len);
                for _ in 0..len {
                    v.push(get_f64(buf)?);
                }
                AttValue::FloatVec(v)
            }
            t => return Err(CdmsError::Format(format!("unknown attribute tag {t}"))),
        };
        attrs.insert(key, value);
    }
    Ok(attrs)
}

fn get_axis(buf: &mut &[u8]) -> Result<Axis> {
    let id = get_string(buf)?;
    let units = get_string(buf)?;
    let kind = match get_u8(buf)? {
        0 => AxisKind::Latitude,
        1 => AxisKind::Longitude,
        2 => AxisKind::Level,
        3 => AxisKind::Time,
        4 => AxisKind::Generic,
        t => return Err(CdmsError::Format(format!("unknown axis kind {t}"))),
    };
    let calendar = match get_u8(buf)? {
        0 => Calendar::Gregorian,
        1 => Calendar::NoLeap365,
        2 => Calendar::AllLeap366,
        3 => Calendar::Day360,
        t => return Err(CdmsError::Format(format!("unknown calendar {t}"))),
    };
    let n = get_u64(buf)? as usize;
    if n > 1 << 30 {
        return Err(CdmsError::Format(format!("implausible axis length {n}")));
    }
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(get_f64(buf)?);
    }
    let bounds = if get_u8(buf)? == 1 {
        let mut b = Vec::with_capacity(n);
        for _ in 0..n {
            b.push((get_f64(buf)?, get_f64(buf)?));
        }
        Some(b)
    } else {
        None
    };
    let attributes = get_attrs(buf)?;
    let mut ax = Axis::new(&id, values, &units, kind)?;
    ax.calendar = calendar;
    ax.bounds = bounds;
    ax.attributes = attributes;
    Ok(ax)
}

fn get_mask(buf: &mut &[u8], n: usize) -> Result<Vec<bool>> {
    let nbytes = n.div_ceil(8);
    let packed = take_bytes(buf, nbytes)?;
    Ok((0..n).map(|i| packed[i / 8] & (1 << (i % 8)) != 0).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::attrs;

    fn sample_dataset() -> Dataset {
        let time =
            Axis::time(vec![0.0, 30.0], "days since 2000-01-01", Calendar::NoLeap365).unwrap();
        let mut lat = Axis::latitude(vec![-45.0, 0.0, 45.0]).unwrap();
        lat.gen_bounds();
        let lon = Axis::longitude(vec![0.0, 120.0, 240.0]).unwrap();
        let mut arr = MaskedArray::from_fn(&[2, 3, 3], |ix| ix.iter().sum::<usize>() as f32);
        arr.mask_at(&[0, 1, 2]).unwrap();
        let mut var = Variable::new("ta", arr, vec![time, lat, lon]).unwrap();
        var.attributes = attrs([("units", "K"), ("long_name", "air temperature")]);
        var.attributes.insert("missing_value".into(), AttValue::Float(1e20));
        var.attributes.insert("valid_range".into(), AttValue::FloatVec(vec![150.0, 350.0]));
        var.attributes.insert("realization".into(), AttValue::Int(1));
        let mut ds = Dataset::new("cmip_sample").with_attr("institution", "NASA NCCS");
        ds.add_variable(var);
        ds
    }

    #[test]
    fn roundtrip_through_bytes() {
        let ds = sample_dataset();
        let bytes = to_bytes(&ds);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.id, ds.id);
        assert_eq!(back.attributes, ds.attributes);
        let v0 = ds.variable("ta").unwrap();
        let v1 = back.variable("ta").unwrap();
        assert_eq!(v1.array, v0.array);
        assert_eq!(v1.axes, v0.axes);
        assert_eq!(v1.attributes, v0.attributes);
    }

    #[test]
    fn roundtrip_through_file() {
        let dir = std::env::temp_dir().join("cdms_format_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.ncr");
        let ds = sample_dataset();
        ds.save(&path).unwrap();
        let back = Dataset::open(&path).unwrap();
        assert_eq!(back.variable("ta").unwrap().array, ds.variable("ta").unwrap().array);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let err = from_bytes(b"NOPE....").unwrap_err();
        assert!(matches!(err, CdmsError::Format(_)));
    }

    #[test]
    fn truncated_file_rejected() {
        let ds = sample_dataset();
        let bytes = to_bytes(&ds);
        for cut in [3, 8, 20, bytes.len() / 2, bytes.len() - 1] {
            let err = from_bytes(&bytes[..cut]).unwrap_err();
            assert!(matches!(err, CdmsError::Format(_) | CdmsError::Invalid(_)), "cut={cut}");
        }
    }

    #[test]
    fn bad_version_rejected() {
        let ds = sample_dataset();
        let mut bytes = to_bytes(&ds).to_vec();
        bytes[4] = 99;
        assert!(matches!(from_bytes(&bytes), Err(CdmsError::Format(_))));
    }

    #[test]
    fn corrupt_tag_rejected() {
        let ds = sample_dataset();
        let bytes = to_bytes(&ds).to_vec();
        // Flip every byte one at a time over the header region; must never panic.
        for i in 8..bytes.len().min(120) {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0xFF;
            let _ = from_bytes(&corrupt); // any Result is fine, panics are not
        }
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let ds = Dataset::new("empty");
        let back = from_bytes(&to_bytes(&ds)).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.id, "empty");
    }

    #[test]
    fn mask_bit_packing_roundtrips_odd_lengths() {
        for n in [1usize, 7, 8, 9, 17] {
            let mut arr = MaskedArray::zeros(&[n]);
            for i in (0..n).step_by(3) {
                arr.mask_at(&[i]).unwrap();
            }
            let ax = Axis::new("x", (0..n).map(|i| i as f64).collect(), "m", AxisKind::Generic)
                .unwrap();
            let mut ds = Dataset::new("m");
            ds.add_variable(Variable::new("v", arr.clone(), vec![ax]).unwrap());
            let back = from_bytes(&to_bytes(&ds)).unwrap();
            assert_eq!(back.variable("v").unwrap().array.mask(), arr.mask(), "n={n}");
        }
    }
}
