//! Crash-safe storage backends for `.ncr` persistence.
//!
//! Every byte `cdms` puts on disk goes through this module (machine-checked
//! by the dv3dlint `atomic_writes` rule). It provides:
//!
//! * [`crc32c`] — the Castagnoli CRC used by `.ncr` format v2 section
//!   checksums (software table-driven; no dependencies).
//! * [`Storage`] — the primitive-operation trait the atomic writer is built
//!   from (`read` / `write_all` / `sync` / `len` / `rename` / `remove`).
//! * [`LocalDisk`] — the real filesystem.
//! * [`FaultyStorage`] — a deterministic fault-injecting wrapper mirroring
//!   `hyperwall::fault::FaultPlan` semantics: short writes, torn writes at
//!   byte *k*, bit flips, ENOSPC, EINTR-style transient errors and scripted
//!   crashes, addressed by primitive-operation index.
//! * [`write_atomic`] — temp file + fsync + length/checksum verification +
//!   atomic rename. After a crash at *any* primitive step the destination
//!   path holds either the complete old file or the complete new file,
//!   never a hybrid (the crash-safety tests enumerate every step).
//!
//! Transient errors ([`CdmsError::TransientIo`]) are retried up to
//! [`TRANSIENT_RETRIES`] times per primitive before giving up.

use crate::error::{CdmsError, Result};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

// ---- CRC32C (Castagnoli), reflected polynomial 0x82F63B78 ----
//
// Slicing-by-16: sixteen 256-entry tables let the hot loop fold 16 input
// bytes per iteration with independent lookups instead of a bytewise
// dependency chain. On the single-core bench box this is the difference
// between the v2 checksum costing ~4x the whole v1 encode and costing a
// few percent of it (see BENCH_ncr_io.json).

const fn crc32c_tables() -> [[u32; 256]; 16] {
    let mut tables = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0x82F6_3B78 } else { crc >> 1 };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    // tables[k][b] = crc of byte b followed by k zero bytes
    let mut k = 1;
    while k < 16 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

static CRC32C_TABLES: [[u32; 256]; 16] = crc32c_tables();

/// Buffers at least this large are CRC'd as three interleaved streams
/// whose partial CRCs are stitched together with [`crc32c_shift`]; the
/// per-call combine cost (~µs) only pays for itself on bulk sections.
const MULTISTREAM_MIN: usize = 3 * 16 * 1024;

/// CRC32C (Castagnoli) of `bytes` — the checksum guarding every `.ncr`
/// format-v2 section.
pub fn crc32c(bytes: &[u8]) -> u32 {
    crc32c_update(0, bytes)
}

/// Continues a CRC32C computation: `crc32c_update(crc32c(a), b)` equals
/// `crc32c` of `a` and `b` concatenated.
pub fn crc32c_update(seed: u32, bytes: &[u8]) -> u32 {
    if bytes.len() < MULTISTREAM_MIN {
        return crc32c_serial(seed, bytes);
    }
    // Split into three contiguous streams and walk them in one interleaved
    // slicing-by-16 loop: the three dependency chains overlap, hiding the
    // table-lookup latency a single chain serializes on.
    let third = (bytes.len() / 3) & !15; // 16-byte aligned stream length
    let (a, rest) = bytes.split_at(third);
    let (b, c) = rest.split_at(third);
    let t = &CRC32C_TABLES;
    let (mut ca, mut cb, mut cc) = (!seed, !0u32, !0u32);
    let mut az = a.chunks_exact(16);
    let mut bz = b.chunks_exact(16);
    let mut cz = c.chunks_exact(16);
    for _ in 0..third / 16 {
        // a and b hold exactly third/16 chunks and c at least that many,
        // so none of these is ever None
        if let (Some(x), Some(y), Some(z)) = (az.next(), bz.next(), cz.next()) {
            ca = fold16(t, ca, x);
            cb = fold16(t, cb, y);
            cc = fold16(t, cc, z);
        }
    }
    let cc = finish_serial(t, cc, &c[third..]); // c's tail, serially
    // stitch the three finalized stream CRCs back into one (zlib's
    // crc32_combine): crc(x ++ y) = shift(crc(x), y.len()) ^ crc(y)
    let ab = crc32c_shift(!ca, b.len() as u64) ^ !cb;
    crc32c_shift(ab, c.len() as u64) ^ !cc
}

/// One slicing-by-16 fold: absorbs a 16-byte block into `crc`.
#[inline(always)]
fn fold16(t: &[[u32; 256]; 16], crc: u32, c: &[u8]) -> u32 {
    let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
    t[15][(lo & 0xFF) as usize]
        ^ t[14][((lo >> 8) & 0xFF) as usize]
        ^ t[13][((lo >> 16) & 0xFF) as usize]
        ^ t[12][(lo >> 24) as usize]
        ^ t[11][c[4] as usize]
        ^ t[10][c[5] as usize]
        ^ t[9][c[6] as usize]
        ^ t[8][c[7] as usize]
        ^ t[7][c[8] as usize]
        ^ t[6][c[9] as usize]
        ^ t[5][c[10] as usize]
        ^ t[4][c[11] as usize]
        ^ t[3][c[12] as usize]
        ^ t[2][c[13] as usize]
        ^ t[1][c[14] as usize]
        ^ t[0][c[15] as usize]
}

/// Single-stream slicing-by-16 (small buffers and stream tails).
fn crc32c_serial(seed: u32, bytes: &[u8]) -> u32 {
    let t = &CRC32C_TABLES;
    !finish_serial(t, !seed, bytes)
}

/// Runs the raw (pre-inversion) CRC state over `bytes`.
fn finish_serial(t: &[[u32; 256]; 16], mut crc: u32, bytes: &[u8]) -> u32 {
    let mut chunks = bytes.chunks_exact(16);
    for c in &mut chunks {
        crc = fold16(t, crc, c);
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// GF(2) matrix × vector product (zlib's `gf2_matrix_times` idiom).
fn gf2_times(mat: &[u32; 32], mut vec: u32) -> u32 {
    let mut sum = 0;
    let mut i = 0;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

fn gf2_square(square: &mut [u32; 32], mat: &[u32; 32]) {
    for n in 0..32 {
        square[n] = gf2_times(mat, mat[n]);
    }
}

/// Advances `crc` (a finalized CRC32C of some prefix) across `len` zero
/// bytes: `crc32c_shift(crc32c(a), b.len()) ^ crc32c(b)` equals
/// `crc32c(a ++ b)` up to the shared pre/post inversion handled by the
/// caller. This is zlib's `crc32_combine` with the Castagnoli polynomial,
/// and is what lets the interleaved streams above be stitched back into
/// one standard CRC.
fn crc32c_shift(mut crc: u32, mut len: u64) -> u32 {
    if len == 0 {
        return crc;
    }
    // odd = shift-by-one-bit operator for the reflected polynomial
    let mut odd = [0u32; 32];
    odd[0] = 0x82F6_3B78;
    let mut row = 1u32;
    for entry in odd.iter_mut().skip(1) {
        *entry = row;
        row <<= 1;
    }
    let mut even = [0u32; 32];
    gf2_square(&mut even, &odd); // shift by two bits
    gf2_square(&mut odd, &even); // shift by four bits
    loop {
        // apply len.bit() worth of byte shifts, squaring as we go
        gf2_square(&mut even, &odd);
        if len & 1 != 0 {
            crc = gf2_times(&even, crc);
        }
        len >>= 1;
        if len == 0 {
            break;
        }
        gf2_square(&mut odd, &even);
        if len & 1 != 0 {
            crc = gf2_times(&odd, crc);
        }
        len >>= 1;
        if len == 0 {
            break;
        }
    }
    crc
}

// ---- the storage primitive trait ----

/// The primitive filesystem operations the `.ncr` persistence layer is
/// built from. Keeping the surface this small lets [`FaultyStorage`]
/// misbehave at every individual step of [`write_atomic`], so crash-safety
/// is testable as an enumeration rather than a hope.
pub trait Storage: Send + Sync {
    /// Reads a whole file.
    fn read(&self, path: &Path) -> Result<Vec<u8>>;
    /// Ranged read: up to `len` bytes starting at byte `offset`. A read
    /// past EOF returns the bytes that exist (possibly empty) — callers
    /// that know the exact extent they asked for treat a short result as
    /// corruption, the same way they treat a failed checksum. This is the
    /// primitive the out-of-core `.ncr` v3 streaming layer is built on:
    /// one chunk frame per call, never the whole file.
    fn read_at(&self, path: &Path, offset: u64, len: usize) -> Result<Vec<u8>>;
    /// Creates/truncates `path` and writes `bytes` in full.
    fn write_all(&self, path: &Path, bytes: &[u8]) -> Result<()>;
    /// Flushes file content to stable storage (`fsync`).
    fn sync(&self, path: &Path) -> Result<()>;
    /// Flushes a *directory* to stable storage. POSIX makes the rename in
    /// [`write_atomic`] atomic but not durable: until the parent directory
    /// is fsynced, a power loss can roll the directory entry back to the
    /// old file. Called on the destination's parent after every rename.
    fn sync_dir(&self, dir: &Path) -> Result<()>;
    /// Size of the file in bytes.
    fn len(&self, path: &Path) -> Result<u64>;
    /// Atomically renames `from` onto `to` (same directory).
    fn rename(&self, from: &Path, to: &Path) -> Result<()>;
    /// Removes a file (used for temp-file cleanup; best-effort callers
    /// ignore the result).
    fn remove(&self, path: &Path) -> Result<()>;
}

/// The real local filesystem.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalDisk;

impl Storage for LocalDisk {
    fn read(&self, path: &Path) -> Result<Vec<u8>> {
        Ok(std::fs::read(path)?)
    }

    fn read_at(&self, path: &Path, offset: u64, len: usize) -> Result<Vec<u8>> {
        use std::io::{Read, Seek, SeekFrom};
        let mut f = std::fs::File::open(path)?;
        f.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        let mut filled = 0usize;
        while filled < len {
            match f.read(&mut buf[filled..]) {
                Ok(0) => break, // EOF: return the short prefix
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        buf.truncate(filled);
        Ok(buf)
    }

    fn write_all(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        Ok(std::fs::write(path, bytes)?)
    }

    fn sync(&self, path: &Path) -> Result<()> {
        Ok(std::fs::File::open(path)?.sync_all()?)
    }

    fn sync_dir(&self, dir: &Path) -> Result<()> {
        let dir = if dir.as_os_str().is_empty() { Path::new(".") } else { dir };
        Ok(std::fs::File::open(dir)?.sync_all()?)
    }

    fn len(&self, path: &Path) -> Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        Ok(std::fs::rename(from, to)?)
    }

    fn remove(&self, path: &Path) -> Result<()> {
        Ok(std::fs::remove_file(path)?)
    }
}

// ---- the atomic writer ----

/// How many times a transient ([`CdmsError::TransientIo`]) primitive
/// failure is retried inside [`write_atomic`] before it is reported.
pub const TRANSIENT_RETRIES: u32 = 3;

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A unique temp-file sibling of `path` (same directory, so the final
/// rename cannot cross filesystems).
fn temp_sibling(path: &Path) -> PathBuf {
    let n = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let name = path.file_name().map(|f| f.to_string_lossy().into_owned()).unwrap_or_default();
    path.with_file_name(format!("{name}.tmp.{}.{n}", std::process::id()))
}

fn retry_transient<T>(mut op: impl FnMut() -> Result<T>) -> Result<T> {
    let mut last = CdmsError::TransientIo("retry budget exhausted".into());
    for _ in 0..=TRANSIENT_RETRIES {
        match op() {
            Err(e) if e.is_transient() => last = e,
            other => return other,
        }
    }
    Err(last)
}

/// Writes `bytes` to `path` crash-safely: temp file in the same directory,
/// fsync, length + CRC32C read-back verification, an atomic rename, then an
/// fsync of the parent directory so the rename itself is durable (without
/// it a power loss can roll the directory entry back to the old file).
///
/// The guarantee (enumerated by the crash-safety tests): whatever primitive
/// step fails — torn write, short write, bit flip, ENOSPC, scripted crash —
/// `path` afterwards holds either its complete previous content or the
/// complete new content. Transient errors are retried per primitive. A
/// failure of the final directory sync is reported as an error even though
/// the rename has already landed: the caller must treat the publish as
/// not-yet-durable, but the destination still parses as exactly one of the
/// two complete states.
pub fn write_atomic(storage: &dyn Storage, path: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = temp_sibling(path);
    let result = write_atomic_steps(storage, &tmp, path, bytes);
    if result.is_err() {
        // Best effort: a dangling temp file is harmless (never scanned as
        // `.ncr`), but tidy up when the backend still responds.
        storage.remove(&tmp).ok();
    }
    result
}

fn write_atomic_steps(storage: &dyn Storage, tmp: &Path, path: &Path, bytes: &[u8]) -> Result<()> {
    retry_transient(|| storage.write_all(tmp, bytes))?;
    retry_transient(|| storage.sync(tmp))?;
    let on_disk = retry_transient(|| storage.len(tmp))?;
    if on_disk != bytes.len() as u64 {
        return Err(CdmsError::Io(format!(
            "short write: {on_disk} of {} bytes reached {}",
            bytes.len(),
            tmp.display()
        )));
    }
    // Read-back verification catches silent corruption between the buffer
    // and the media (bit flips, lying writes) before the rename publishes
    // anything.
    let readback = retry_transient(|| storage.read(tmp))?;
    if crc32c(&readback) != crc32c(bytes) {
        return Err(CdmsError::Io(format!(
            "write verification failed: checksum mismatch on {}",
            tmp.display()
        )));
    }
    retry_transient(|| storage.rename(tmp, path))?;
    // Durability barrier for the rename itself: fsync the parent directory
    // entry. Paths with no named parent live in the current directory.
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    retry_transient(|| storage.sync_dir(parent))?;
    Ok(())
}

// ---- deterministic fault injection ----

/// One scripted misbehaviour of the storage substrate, fired at a specific
/// primitive-operation index (the storage-layer analogue of
/// `hyperwall::fault::Fault`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageFault {
    /// `write_all` persists only the first `keep` bytes but reports
    /// success — a lying lower layer. Caught by the length verification.
    ShortWrite { keep: usize },
    /// The process "dies" `at` bytes into a write: the prefix reaches disk
    /// and the operation (and every later one) fails.
    TornWrite { at: usize },
    /// One bit of the payload flips between buffer and media (silent
    /// corruption). Caught by the read-back checksum; on a read, the
    /// returned bytes are corrupted instead.
    BitFlip { bit: u64 },
    /// The disk fills mid-operation (half the payload lands, then ENOSPC).
    Enospc,
    /// EINTR-style flakiness: this and the next `times - 1` primitive
    /// calls fail transiently, then the backend recovers.
    Transient { times: u32 },
    /// The process dies before the operation runs at all.
    CrashBefore,
    /// A read completes only after `ms` milliseconds — a contended or
    /// spinning-up disk. The data that eventually arrives is correct;
    /// deadline-aware readers count the miss and move on.
    DelayedRead { ms: u64 },
    /// A read returns only the first `keep` bytes of what was asked for —
    /// a torn page or truncated object. Callers treat the short result
    /// like a checksum failure.
    ShortRead { keep: usize },
    /// A hard, non-transient read failure (media error). Retrying does not
    /// help; streaming readers degrade to a coarser pyramid level instead.
    ReadError,
}

/// One scripted read-side fault, addressed by the *byte offset* of a
/// [`Storage::read_at`] call instead of a primitive-operation index. This
/// is what lets a fault storm target one specific `.ncr` v3 chunk — the
/// chunk's frame offset is known from the file layout — deterministically,
/// regardless of how many unrelated reads the prefetcher issues first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadFault {
    /// `read_at` calls whose starting offset falls in this range trigger
    /// the fault.
    pub offsets: Range<u64>,
    /// What happens. Read-meaningful kinds: [`StorageFault::DelayedRead`],
    /// [`StorageFault::ShortRead`], [`StorageFault::ReadError`],
    /// [`StorageFault::BitFlip`], [`StorageFault::Transient`] (whose inner
    /// `times` is ignored here — `times` below is the budget).
    pub fault: StorageFault,
    /// How many matching reads fire the fault; 0 means every one, forever.
    pub times: u32,
}

/// A scripted failure scenario for a storage backend: primitive-operation
/// index → fault, plus offset-addressed read faults. Plain data, chainable,
/// deterministic — the same plan always produces the same failure, so
/// crash-safety tests are ordinary unit tests, not flaky chaos runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StorageFaultPlan {
    per_op: BTreeMap<u64, StorageFault>,
    reads: Vec<ReadFault>,
}

impl StorageFaultPlan {
    /// The empty plan: the backend behaves.
    pub fn none() -> StorageFaultPlan {
        StorageFaultPlan::default()
    }

    /// Scripts `fault` to fire on the `op`-th primitive call (0-based,
    /// counted across all primitives). Chainable.
    pub fn inject(mut self, op: u64, fault: StorageFault) -> StorageFaultPlan {
        self.per_op.insert(op, fault);
        self
    }

    /// Scripts `fault` to fire on the first `times` [`Storage::read_at`]
    /// calls whose starting offset falls in `offsets` (`times == 0`: every
    /// matching call). Chainable; earlier entries win on overlap.
    pub fn inject_read(
        mut self,
        offsets: Range<u64>,
        fault: StorageFault,
        times: u32,
    ) -> StorageFaultPlan {
        self.reads.push(ReadFault { offsets, fault, times });
        self
    }

    /// The fault scripted for `op`, if any.
    pub fn at(&self, op: u64) -> Option<&StorageFault> {
        self.per_op.get(&op)
    }

    /// The scripted read faults, in priority order.
    pub fn read_faults(&self) -> &[ReadFault] {
        &self.reads
    }

    /// True when nothing is scripted.
    pub fn is_empty(&self) -> bool {
        self.per_op.is_empty() && self.reads.is_empty()
    }
}

/// A [`Storage`] wrapper that misbehaves exactly as its
/// [`StorageFaultPlan`] scripts. Once a crash fault fires the backend is
/// "dead": every further operation fails, like talking to a kernel that is
/// no longer there.
pub struct FaultyStorage {
    inner: LocalDisk,
    plan: StorageFaultPlan,
    op: AtomicU64,
    crashed: AtomicBool,
    transient_left: Mutex<u32>,
    /// Remaining fire budget per scripted read fault (`u32::MAX` = forever).
    read_budgets: Mutex<Vec<u32>>,
}

impl FaultyStorage {
    /// Wraps the local filesystem with a fault script.
    pub fn new(plan: StorageFaultPlan) -> FaultyStorage {
        let budgets = plan
            .read_faults()
            .iter()
            .map(|r| if r.times == 0 { u32::MAX } else { r.times })
            .collect();
        FaultyStorage {
            inner: LocalDisk,
            plan,
            op: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            transient_left: Mutex::new(0),
            read_budgets: Mutex::new(budgets),
        }
    }

    /// Pops the read fault scripted for a `read_at` call at `offset`, if
    /// one is armed, decrementing its budget.
    fn read_fault_at(&self, offset: u64) -> Option<StorageFault> {
        let mut budgets = self.read_budgets.lock();
        for (i, rf) in self.plan.read_faults().iter().enumerate() {
            if !rf.offsets.contains(&offset) {
                continue;
            }
            let left = budgets.get_mut(i)?;
            if *left == 0 {
                continue;
            }
            if *left != u32::MAX {
                *left -= 1;
            }
            return Some(rf.fault.clone());
        }
        None
    }

    /// Primitive operations issued so far.
    pub fn ops(&self) -> u64 {
        self.op.load(Ordering::SeqCst)
    }

    /// True once a scripted crash has fired.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Marks the backend dead and returns the crash error — a torn-write
    /// fault landing on a non-write primitive still means the process died
    /// at that step.
    fn crash_now(&self) -> CdmsError {
        self.crashed.store(true, Ordering::SeqCst);
        CdmsError::Io("process died mid-operation (injected)".into())
    }

    /// Runs the pre-operation part of the fault script. Returns the fault
    /// scheduled for this op (already handled when it yields an error).
    fn gate(&self) -> Result<Option<StorageFault>> {
        if self.crashed() {
            return Err(CdmsError::Io("storage backend crashed (injected)".into()));
        }
        {
            let mut left = self.transient_left.lock();
            if *left > 0 {
                *left -= 1;
                self.op.fetch_add(1, Ordering::SeqCst);
                return Err(CdmsError::TransientIo("interrupted (injected EINTR)".into()));
            }
        }
        let op = self.op.fetch_add(1, Ordering::SeqCst);
        match self.plan.at(op) {
            None => Ok(None),
            Some(StorageFault::CrashBefore) => {
                self.crashed.store(true, Ordering::SeqCst);
                Err(CdmsError::Io("process died before operation (injected)".into()))
            }
            Some(StorageFault::Transient { times }) => {
                // this call fails; `times - 1` successors fail too
                *self.transient_left.lock() = times.saturating_sub(1);
                Err(CdmsError::TransientIo("interrupted (injected EINTR)".into()))
            }
            Some(StorageFault::DelayedRead { ms }) => {
                // a slow primitive, not a failed one: stall, then behave
                std::thread::sleep(std::time::Duration::from_millis(*ms));
                Ok(None)
            }
            Some(f) => Ok(Some(f.clone())),
        }
    }
}

impl std::fmt::Debug for FaultyStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyStorage")
            .field("plan", &self.plan)
            .field("ops", &self.ops())
            .field("crashed", &self.crashed())
            .finish()
    }
}

fn flip_bit(bytes: &mut [u8], bit: u64) {
    if bytes.is_empty() {
        return;
    }
    let i = (bit / 8) as usize % bytes.len();
    bytes[i] ^= 1 << (bit % 8);
}

impl Storage for FaultyStorage {
    fn read(&self, path: &Path) -> Result<Vec<u8>> {
        match self.gate()? {
            Some(StorageFault::BitFlip { bit }) => {
                let mut bytes = self.inner.read(path)?;
                flip_bit(&mut bytes, bit);
                Ok(bytes)
            }
            // on a read, "torn at k" models a crash mid-read
            Some(StorageFault::TornWrite { .. }) => Err(self.crash_now()),
            Some(StorageFault::ShortRead { keep }) => {
                let mut bytes = self.inner.read(path)?;
                bytes.truncate(keep);
                Ok(bytes)
            }
            Some(StorageFault::ReadError) => {
                Err(CdmsError::Io("media error on read (injected)".into()))
            }
            Some(_) | None => self.inner.read(path),
        }
    }

    fn read_at(&self, path: &Path, offset: u64, len: usize) -> Result<Vec<u8>> {
        // per-op faults first (crash/transient machinery), then the
        // offset-addressed script the streaming fault storms use
        let per_op = self.gate()?;
        let fault = match per_op {
            Some(f) => Some(f),
            None => self.read_fault_at(offset),
        };
        match fault {
            None => self.inner.read_at(path, offset, len),
            Some(StorageFault::DelayedRead { ms }) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                self.inner.read_at(path, offset, len)
            }
            Some(StorageFault::ShortRead { keep }) => {
                let mut bytes = self.inner.read_at(path, offset, len)?;
                bytes.truncate(keep);
                Ok(bytes)
            }
            Some(StorageFault::BitFlip { bit }) => {
                let mut bytes = self.inner.read_at(path, offset, len)?;
                flip_bit(&mut bytes, bit);
                Ok(bytes)
            }
            Some(StorageFault::ReadError) => {
                Err(CdmsError::Io("media error on read (injected)".into()))
            }
            Some(StorageFault::Transient { .. }) => {
                Err(CdmsError::TransientIo("interrupted read (injected EINTR)".into()))
            }
            Some(StorageFault::TornWrite { .. }) => Err(self.crash_now()),
            Some(_) => self.inner.read_at(path, offset, len),
        }
    }

    fn write_all(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        match self.gate()? {
            None => self.inner.write_all(path, bytes),
            Some(StorageFault::ShortWrite { keep }) => {
                self.inner.write_all(path, &bytes[..keep.min(bytes.len())])
            }
            Some(StorageFault::TornWrite { at }) => {
                self.inner.write_all(path, &bytes[..at.min(bytes.len())])?;
                self.crashed.store(true, Ordering::SeqCst);
                Err(CdmsError::Io("process died mid-write (injected torn write)".into()))
            }
            Some(StorageFault::BitFlip { bit }) => {
                let mut corrupt = bytes.to_vec();
                flip_bit(&mut corrupt, bit);
                self.inner.write_all(path, &corrupt)
            }
            Some(StorageFault::Enospc) => {
                self.inner.write_all(path, &bytes[..bytes.len() / 2])?;
                Err(CdmsError::Io("no space left on device (injected ENOSPC)".into()))
            }
            // crash/transient already handled by gate()
            Some(_) => self.inner.write_all(path, bytes),
        }
    }

    fn sync(&self, path: &Path) -> Result<()> {
        match self.gate()? {
            Some(StorageFault::Enospc) => {
                Err(CdmsError::Io("no space left on device (injected ENOSPC)".into()))
            }
            Some(StorageFault::TornWrite { .. }) => Err(self.crash_now()),
            _ => self.inner.sync(path),
        }
    }

    fn sync_dir(&self, dir: &Path) -> Result<()> {
        match self.gate()? {
            Some(StorageFault::Enospc) => {
                Err(CdmsError::Io("no space left on device (injected ENOSPC)".into()))
            }
            Some(StorageFault::TornWrite { .. }) => Err(self.crash_now()),
            _ => self.inner.sync_dir(dir),
        }
    }

    fn len(&self, path: &Path) -> Result<u64> {
        match self.gate()? {
            Some(StorageFault::Enospc) => {
                Err(CdmsError::Io("no space left on device (injected ENOSPC)".into()))
            }
            Some(StorageFault::TornWrite { .. }) => Err(self.crash_now()),
            _ => self.inner.len(path),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        match self.gate()? {
            Some(StorageFault::Enospc) => {
                Err(CdmsError::Io("no space left on device (injected ENOSPC)".into()))
            }
            Some(StorageFault::TornWrite { .. }) => Err(self.crash_now()),
            _ => self.inner.rename(from, to),
        }
    }

    fn remove(&self, path: &Path) -> Result<()> {
        // Cleanup is exempt from the fault script once crashed — callers
        // treat it as best-effort anyway.
        if self.crashed() {
            return Err(CdmsError::Io("storage backend crashed (injected)".into()));
        }
        self.inner.remove(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cdms_storage_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.bin"))
    }

    #[test]
    fn crc32c_known_vectors() {
        // RFC 3720 §B.4 test vectors.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn crc32c_update_chains() {
        let all = crc32c(b"hello world");
        let chained = crc32c_update(crc32c(b"hello "), b"world");
        assert_eq!(all, chained);
    }

    /// Deterministic pseudo-random buffer for the bulk-CRC tests.
    fn noise(len: usize) -> Vec<u8> {
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 33) as u8
            })
            .collect()
    }

    #[test]
    fn crc32c_multistream_matches_serial() {
        // Lengths straddling the multi-stream threshold, including awkward
        // remainders, must agree with the single-stream reference.
        for len in [
            0,
            1,
            15,
            MULTISTREAM_MIN - 1,
            MULTISTREAM_MIN,
            MULTISTREAM_MIN + 1,
            MULTISTREAM_MIN + 17,
            3 * MULTISTREAM_MIN + 5,
            1 << 20,
            (1 << 20) + 47,
        ] {
            let buf = noise(len);
            assert_eq!(crc32c(&buf), crc32c_serial(0, &buf), "len {len}");
            assert_eq!(
                crc32c_update(0xDEAD_BEEF, &buf),
                crc32c_serial(0xDEAD_BEEF, &buf),
                "seeded, len {len}"
            );
        }
    }

    #[test]
    fn crc32c_update_chains_across_bulk_splits() {
        let buf = noise(300_000);
        let whole = crc32c(&buf);
        for split in [1, 100, 99_991, 150_000, 299_999] {
            let (a, b) = buf.split_at(split);
            assert_eq!(crc32c_update(crc32c(a), b), whole, "split {split}");
        }
    }

    #[test]
    fn crc32c_shift_is_zero_byte_extension() {
        // shift(crc(x), n) must equal crc(x ++ n zero bytes) ^ crc(n zeros).
        let x = b"the quick brown fox";
        for n in [0usize, 1, 7, 64, 1000] {
            let mut extended = x.to_vec();
            extended.resize(x.len() + n, 0);
            let zeros = vec![0u8; n];
            assert_eq!(
                crc32c_shift(crc32c(x), n as u64) ^ crc32c(&zeros),
                crc32c(&extended),
                "n {n}"
            );
        }
    }

    #[test]
    fn atomic_write_roundtrips_and_replaces() {
        let path = temp_path("roundtrip");
        write_atomic(&LocalDisk, &path, b"old content").unwrap();
        assert_eq!(LocalDisk.read(&path).unwrap(), b"old content");
        write_atomic(&LocalDisk, &path, b"new content").unwrap();
        assert_eq!(LocalDisk.read(&path).unwrap(), b"new content");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_write_leaves_old_content() {
        let path = temp_path("torn");
        write_atomic(&LocalDisk, &path, b"old content").unwrap();
        let faulty =
            FaultyStorage::new(StorageFaultPlan::none().inject(0, StorageFault::TornWrite { at: 3 }));
        let err = write_atomic(&faulty, &path, b"new content").unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
        assert!(faulty.crashed());
        assert_eq!(LocalDisk.read(&path).unwrap(), b"old content");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn short_write_detected_by_length_check() {
        let path = temp_path("short");
        write_atomic(&LocalDisk, &path, b"old content").unwrap();
        let faulty = FaultyStorage::new(
            StorageFaultPlan::none().inject(0, StorageFault::ShortWrite { keep: 5 }),
        );
        let err = write_atomic(&faulty, &path, b"new content").unwrap_err();
        assert!(err.to_string().contains("short write"), "{err}");
        assert_eq!(LocalDisk.read(&path).unwrap(), b"old content");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_detected_by_readback_checksum() {
        let path = temp_path("bitflip");
        write_atomic(&LocalDisk, &path, b"old content").unwrap();
        let faulty =
            FaultyStorage::new(StorageFaultPlan::none().inject(0, StorageFault::BitFlip { bit: 17 }));
        let err = write_atomic(&faulty, &path, b"new content").unwrap_err();
        assert!(err.to_string().contains("verification"), "{err}");
        assert_eq!(LocalDisk.read(&path).unwrap(), b"old content");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn transient_errors_are_retried_through() {
        let path = temp_path("transient");
        let faulty = FaultyStorage::new(
            StorageFaultPlan::none().inject(0, StorageFault::Transient { times: TRANSIENT_RETRIES }),
        );
        write_atomic(&faulty, &path, b"content").unwrap();
        assert_eq!(LocalDisk.read(&path).unwrap(), b"content");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn transient_errors_beyond_budget_surface() {
        let path = temp_path("transient_exhausted");
        write_atomic(&LocalDisk, &path, b"old content").unwrap();
        let faulty = FaultyStorage::new(StorageFaultPlan::none().inject(
            0,
            StorageFault::Transient { times: TRANSIENT_RETRIES + 5 },
        ));
        let err = write_atomic(&faulty, &path, b"new content").unwrap_err();
        assert!(err.is_transient(), "{err}");
        assert_eq!(LocalDisk.read(&path).unwrap(), b"old content");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crash_leaves_backend_dead() {
        let path = temp_path("dead");
        let faulty =
            FaultyStorage::new(StorageFaultPlan::none().inject(1, StorageFault::CrashBefore));
        assert!(write_atomic(&faulty, &path, b"x").is_err());
        assert!(faulty.crashed());
        assert!(faulty.read(&path).is_err());
        assert!(faulty.write_all(&path, b"y").is_err());
    }

    #[test]
    fn read_at_ranges_and_eof() {
        let path = temp_path("ranged");
        write_atomic(&LocalDisk, &path, b"0123456789").unwrap();
        assert_eq!(LocalDisk.read_at(&path, 0, 4).unwrap(), b"0123");
        assert_eq!(LocalDisk.read_at(&path, 4, 3).unwrap(), b"456");
        // reads past EOF return the short prefix, not an error
        assert_eq!(LocalDisk.read_at(&path, 8, 10).unwrap(), b"89");
        assert_eq!(LocalDisk.read_at(&path, 20, 5).unwrap(), b"");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn offset_read_faults_fire_with_budget() {
        let path = temp_path("readfaults");
        write_atomic(&LocalDisk, &path, b"abcdefghij").unwrap();
        let faulty = FaultyStorage::new(
            StorageFaultPlan::none()
                .inject_read(0..4, StorageFault::Transient { times: 0 }, 2)
                .inject_read(4..8, StorageFault::ReadError, 0)
                .inject_read(8..10, StorageFault::ShortRead { keep: 1 }, 1),
        );
        // budget 2: two transient failures, then clean
        assert!(faulty.read_at(&path, 0, 4).unwrap_err().is_transient());
        assert!(faulty.read_at(&path, 2, 4).unwrap_err().is_transient());
        assert_eq!(faulty.read_at(&path, 0, 4).unwrap(), b"abcd");
        // budget 0 = forever
        assert!(faulty.read_at(&path, 5, 2).is_err());
        assert!(faulty.read_at(&path, 5, 2).is_err());
        // short read fires once
        assert_eq!(faulty.read_at(&path, 8, 2).unwrap(), b"i");
        assert_eq!(faulty.read_at(&path, 8, 2).unwrap(), b"ij");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_read_fault_corrupts_payload() {
        let path = temp_path("readflip");
        write_atomic(&LocalDisk, &path, b"abcdefghij").unwrap();
        let faulty = FaultyStorage::new(
            StorageFaultPlan::none().inject_read(0..1, StorageFault::BitFlip { bit: 0 }, 1),
        );
        let got = faulty.read_at(&path, 0, 4).unwrap();
        assert_ne!(got, b"abcd");
        assert_eq!(faulty.read_at(&path, 0, 4).unwrap(), b"abcd", "budget spent");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn delayed_read_returns_correct_bytes_late() {
        let path = temp_path("delayed");
        write_atomic(&LocalDisk, &path, b"abcdefghij").unwrap();
        let faulty = FaultyStorage::new(
            StorageFaultPlan::none().inject_read(0..4, StorageFault::DelayedRead { ms: 30 }, 1),
        );
        let t0 = std::time::Instant::now();
        assert_eq!(faulty.read_at(&path, 0, 4).unwrap(), b"abcd");
        assert!(t0.elapsed() >= std::time::Duration::from_millis(25));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sync_dir_fault_surfaces_after_rename() {
        // op 5 is the parent-directory fsync: the rename already landed, so
        // the new content is visible even though the write reports failure.
        let path = temp_path("dirsync");
        write_atomic(&LocalDisk, &path, b"old content").unwrap();
        let faulty =
            FaultyStorage::new(StorageFaultPlan::none().inject(5, StorageFault::Enospc));
        let err = write_atomic(&faulty, &path, b"new content").unwrap_err();
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        assert_eq!(LocalDisk.read(&path).unwrap(), b"new content");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sync_dir_transient_is_retried_through() {
        let path = temp_path("dirsync_transient");
        let faulty = FaultyStorage::new(
            StorageFaultPlan::none().inject(5, StorageFault::Transient { times: TRANSIENT_RETRIES }),
        );
        write_atomic(&faulty, &path, b"content").unwrap();
        assert_eq!(LocalDisk.read(&path).unwrap(), b"content");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fault_plan_queries() {
        let plan = StorageFaultPlan::none()
            .inject(2, StorageFault::Enospc)
            .inject(0, StorageFault::CrashBefore);
        assert_eq!(plan.at(2), Some(&StorageFault::Enospc));
        assert_eq!(plan.at(1), None);
        assert!(!plan.is_empty());
        assert!(StorageFaultPlan::none().is_empty());
    }
}
