//! Variables: named masked arrays bound to a domain of coordinate axes.
//!
//! A [`Variable`] is the CDMS "transient variable": data + axes + attributes.
//! It supports the coordinate-space subsetting CDMS exposes as
//! `var(latitude=(-20, 20), longitude=(0, 180))`, axis lookup by kind, and
//! time-slab extraction.

use crate::array::{MaskedArray, SliceSpec};
use crate::attr::{AttValue, Attributes};
use crate::axis::{Axis, AxisKind};
use crate::error::{CdmsError, Result};
use crate::grid::RectGrid;

/// A self-describing data variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Variable {
    /// Short identifier, e.g. `"ta"`.
    pub id: String,
    /// The data payload.
    pub array: MaskedArray,
    /// One axis per array dimension, in storage order.
    pub axes: Vec<Axis>,
    /// CF metadata.
    pub attributes: Attributes,
}

impl Variable {
    /// Creates a variable, checking that axes match the array shape.
    pub fn new(id: &str, array: MaskedArray, axes: Vec<Axis>) -> Result<Variable> {
        if axes.len() != array.rank() {
            return Err(CdmsError::Invalid(format!(
                "variable '{id}': {} axes for rank-{} array",
                axes.len(),
                array.rank()
            )));
        }
        for (i, ax) in axes.iter().enumerate() {
            if ax.len() != array.shape()[i] {
                return Err(CdmsError::ShapeMismatch {
                    expected: array.shape().to_vec(),
                    got: axes.iter().map(|a| a.len()).collect(),
                });
            }
        }
        Ok(Variable { id: id.to_string(), array, axes, attributes: Attributes::new() })
    }

    /// Builder-style attribute setter.
    pub fn with_attr(mut self, name: &str, value: impl Into<AttValue>) -> Variable {
        self.attributes.insert(name.to_string(), value.into());
        self
    }

    /// The variable's shape.
    pub fn shape(&self) -> &[usize] {
        self.array.shape()
    }

    /// The variable's rank.
    pub fn rank(&self) -> usize {
        self.array.rank()
    }

    /// The `units` attribute, if present.
    pub fn units(&self) -> Option<&str> {
        self.attributes.get("units").and_then(|a| a.as_text())
    }

    /// The `long_name` attribute, falling back to the id.
    pub fn long_name(&self) -> &str {
        self.attributes
            .get("long_name")
            .and_then(|a| a.as_text())
            .unwrap_or(&self.id)
    }

    /// Index of the first axis of the given kind.
    pub fn axis_index(&self, kind: AxisKind) -> Option<usize> {
        self.axes.iter().position(|a| a.kind == kind)
    }

    /// The first axis of the given kind.
    pub fn axis(&self, kind: AxisKind) -> Option<&Axis> {
        self.axis_index(kind).map(|i| &self.axes[i])
    }

    /// The axis with the given id.
    pub fn axis_by_id(&self, id: &str) -> Option<&Axis> {
        self.axes.iter().find(|a| a.id == id)
    }

    /// The horizontal grid, when the variable has both lat and lon axes.
    pub fn grid(&self) -> Option<RectGrid> {
        let lat = self.axis(AxisKind::Latitude)?.clone();
        let lon = self.axis(AxisKind::Longitude)?.clone();
        RectGrid::new(lat, lon).ok()
    }

    /// Subsets by index ranges, one [`SliceSpec`] per axis; axes follow.
    pub fn slice(&self, specs: &[SliceSpec]) -> Result<Variable> {
        let array = self.array.slice(specs)?;
        let mut axes = Vec::with_capacity(self.axes.len());
        for (ax, spec) in self.axes.iter().zip(specs) {
            let values: Vec<f64> = spec.indices().map(|i| ax.values[i]).collect();
            let mut sub = ax.clone();
            sub.values = values;
            sub.bounds = ax
                .bounds
                .as_ref()
                .map(|b| spec.indices().map(|i| b[i]).collect());
            axes.push(sub);
        }
        let mut v = Variable::new(&self.id, array, axes)?;
        v.attributes = self.attributes.clone();
        Ok(v)
    }

    /// Subsets an axis of the given kind by *coordinate* range (inclusive),
    /// the CDMS `var(latitude=(lo, hi))` call.
    pub fn subset_kind(&self, kind: AxisKind, lo: f64, hi: f64) -> Result<Variable> {
        let idx = self
            .axis_index(kind)
            .ok_or_else(|| CdmsError::NotFound(format!("{kind:?} axis on '{}'", self.id)))?;
        let (a, b) = self.axes[idx].index_range(lo, hi)?;
        let mut specs: Vec<SliceSpec> =
            self.shape().iter().map(|&n| SliceSpec::all(n)).collect();
        specs[idx] = SliceSpec::range(a, b);
        self.slice(&specs)
    }

    /// Convenience: subset latitude then longitude by coordinate ranges.
    pub fn subset_lat_lon(&self, lat: (f64, f64), lon: (f64, f64)) -> Result<Variable> {
        self.subset_kind(AxisKind::Latitude, lat.0, lat.1)?
            .subset_kind(AxisKind::Longitude, lon.0, lon.1)
    }

    /// Extracts the `t`-th time slab, dropping the time axis.
    pub fn time_slab(&self, t: usize) -> Result<Variable> {
        let idx = self
            .axis_index(AxisKind::Time)
            .ok_or_else(|| CdmsError::NotFound(format!("time axis on '{}'", self.id)))?;
        if t >= self.axes[idx].len() {
            return Err(CdmsError::AxisOutOfRange { axis: t, rank: self.axes[idx].len() });
        }
        let array = self.array.take(idx, t)?;
        let mut axes = self.axes.clone();
        axes.remove(idx);
        if axes.is_empty() {
            // take() leaves a rank-1, length-1 array
            axes.push(Axis::new("scalar", vec![0.0], "", AxisKind::Generic)?);
        }
        let mut v = Variable::new(&self.id, array, axes)?;
        v.attributes = self.attributes.clone();
        Ok(v)
    }

    /// Subsets the time axis by *date strings* (`"YYYY-MM-DD"` or
    /// `"YYYY-MM-DD HH:MM:SS"`, inclusive on both ends) — the CDMS
    /// `var(time=("2000-1-15", "2000-3-1"))` call.
    pub fn subset_time(&self, start: &str, stop: &str) -> Result<Variable> {
        let idx = self
            .axis_index(AxisKind::Time)
            .ok_or_else(|| CdmsError::NotFound(format!("time axis on '{}'", self.id)))?;
        let axis = &self.axes[idx];
        let rel = crate::calendar::RelTime::parse(&axis.units)?;
        let parse_date = |s: &str| -> Result<f64> {
            // reuse the relative-time parser by prefixing a unit clause
            let synthetic = format!("days since {s}");
            let epoch = crate::calendar::RelTime::parse(&synthetic)
                .map_err(|_| CdmsError::Time(format!("bad date '{s}'")))?
                .epoch;
            Ok(rel.encode(&epoch, axis.calendar))
        };
        let lo = parse_date(start)?;
        let hi = parse_date(stop)?;
        self.subset_kind(AxisKind::Time, lo, hi)
    }

    /// Reorders axes to the canonical `(time, level, lat, lon)` order
    /// (present kinds only, generic axes last), returning a new variable.
    pub fn to_canonical_order(&self) -> Result<Variable> {
        let order = |k: AxisKind| match k {
            AxisKind::Time => 0,
            AxisKind::Level => 1,
            AxisKind::Latitude => 2,
            AxisKind::Longitude => 3,
            AxisKind::Generic => 4,
        };
        let mut perm: Vec<usize> = (0..self.rank()).collect();
        perm.sort_by_key(|&i| (order(self.axes[i].kind), i));
        if perm.iter().enumerate().all(|(i, &p)| i == p) {
            return Ok(self.clone());
        }
        let array = self.array.transpose(&perm)?;
        let axes = perm.iter().map(|&p| self.axes[p].clone()).collect();
        let mut v = Variable::new(&self.id, array, axes)?;
        v.attributes = self.attributes.clone();
        Ok(v)
    }

    /// Number of time steps (1 when there is no time axis).
    pub fn n_times(&self) -> usize {
        self.axis(AxisKind::Time).map(|a| a.len()).unwrap_or(1)
    }

    /// Extracts time steps `range` as a new variable, *keeping* the (now
    /// shorter) time axis — the unit of transfer for `.ncr` v3 chunking and
    /// [`crate::stream`] window reads, where [`Variable::time_slab`] is the
    /// per-frame cut.
    pub fn time_window(&self, range: std::ops::Range<usize>) -> Result<Variable> {
        let idx = self
            .axis_index(AxisKind::Time)
            .ok_or_else(|| CdmsError::NotFound(format!("time axis on '{}'", self.id)))?;
        let n = self.axes[idx].len();
        if range.start >= range.end || range.end > n {
            return Err(CdmsError::Invalid(format!(
                "time window {}..{} out of range for {} step(s) on '{}'",
                range.start, range.end, n, self.id
            )));
        }
        let mut specs: Vec<SliceSpec> =
            self.shape().iter().map(|&d| SliceSpec::all(d)).collect();
        specs[idx] = SliceSpec::range(range.start, range.end);
        self.slice(&specs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calendar::Calendar;

    fn sample() -> Variable {
        // (time=2, lat=3, lon=4)
        let time =
            Axis::time(vec![0.0, 1.0], "days since 2000-01-01", Calendar::NoLeap365).unwrap();
        let lat = Axis::latitude(vec![-30.0, 0.0, 30.0]).unwrap();
        let lon = Axis::longitude(vec![0.0, 90.0, 180.0, 270.0]).unwrap();
        let arr = MaskedArray::from_fn(&[2, 3, 4], |ix| (ix[0] * 100 + ix[1] * 10 + ix[2]) as f32);
        Variable::new("ta", arr, vec![time, lat, lon])
            .unwrap()
            .with_attr("units", "K")
            .with_attr("long_name", "air temperature")
    }

    #[test]
    fn construction_validates_axes() {
        let lat = Axis::latitude(vec![0.0, 10.0]).unwrap();
        let arr = MaskedArray::zeros(&[3]);
        assert!(Variable::new("x", arr.clone(), vec![lat.clone()]).is_err()); // length mismatch
        assert!(Variable::new("x", arr, vec![]).is_err()); // rank mismatch
    }

    #[test]
    fn metadata_accessors() {
        let v = sample();
        assert_eq!(v.units(), Some("K"));
        assert_eq!(v.long_name(), "air temperature");
        assert_eq!(v.axis(AxisKind::Latitude).unwrap().len(), 3);
        assert_eq!(v.axis_index(AxisKind::Time), Some(0));
        assert!(v.axis(AxisKind::Level).is_none());
        assert!(v.axis_by_id("lon").is_some());
        assert_eq!(v.n_times(), 2);
    }

    #[test]
    fn grid_extraction() {
        let v = sample();
        let g = v.grid().unwrap();
        assert_eq!(g.shape(), (3, 4));
    }

    #[test]
    fn coordinate_subsetting() {
        let v = sample();
        let sub = v.subset_kind(AxisKind::Latitude, -10.0, 35.0).unwrap();
        assert_eq!(sub.shape(), &[2, 2, 4]);
        assert_eq!(sub.axes[1].values, vec![0.0, 30.0]);
        // data follows
        assert_eq!(sub.array.get(&[0, 0, 0]).unwrap(), 10.0);
        assert!(v.subset_kind(AxisKind::Latitude, 50.0, 60.0).is_err());
        assert!(v.subset_kind(AxisKind::Level, 0.0, 1.0).is_err());
    }

    #[test]
    fn subset_lat_lon_combined() {
        let v = sample();
        let sub = v.subset_lat_lon((-30.0, 0.0), (90.0, 180.0)).unwrap();
        assert_eq!(sub.shape(), &[2, 2, 2]);
        assert_eq!(sub.array.get(&[1, 1, 1]).unwrap(), 112.0);
        assert_eq!(sub.attributes, v.attributes);
    }

    #[test]
    fn time_slab_drops_time_axis() {
        let v = sample();
        let s = v.time_slab(1).unwrap();
        assert_eq!(s.shape(), &[3, 4]);
        assert_eq!(s.axes.len(), 2);
        assert_eq!(s.array.get(&[0, 0]).unwrap(), 100.0);
        assert!(v.time_slab(2).is_err());
    }

    #[test]
    fn subset_time_by_date_strings() {
        // daily axis, 60 days from 2000-01-01 (noleap)
        let time = Axis::time(
            (0..60).map(|t| t as f64).collect(),
            "days since 2000-01-01",
            Calendar::NoLeap365,
        )
        .unwrap();
        let lat = Axis::latitude(vec![0.0]).unwrap();
        let arr = MaskedArray::from_fn(&[60, 1], |ix| ix[0] as f32);
        let v = Variable::new("x", arr, vec![time, lat]).unwrap();
        // January 10 through February 5 inclusive: days 9..=35
        let sub = v.subset_time("2000-01-10", "2000-02-05").unwrap();
        assert_eq!(sub.shape()[0], 27);
        assert_eq!(sub.array.get(&[0, 0]).unwrap(), 9.0);
        assert_eq!(sub.array.get(&[26, 0]).unwrap(), 35.0);
        // out-of-record range errors
        assert!(v.subset_time("2001-01-01", "2001-02-01").is_err());
        assert!(v.subset_time("garbage", "2000-02-01").is_err());
        // no time axis
        let lat_only = Variable::new(
            "y",
            MaskedArray::zeros(&[1]),
            vec![Axis::latitude(vec![0.0]).unwrap()],
        )
        .unwrap();
        assert!(lat_only.subset_time("2000-01-01", "2000-01-02").is_err());
    }

    #[test]
    fn time_window_keeps_time_axis() {
        let v = sample();
        let w = v.time_window(1..2).unwrap();
        assert_eq!(w.shape(), &[1, 3, 4]);
        assert_eq!(w.axes[0].kind, AxisKind::Time);
        assert_eq!(w.axes[0].values, vec![1.0]);
        assert_eq!(w.array.get(&[0, 0, 0]).unwrap(), 100.0);
        assert_eq!(v.time_window(0..2).unwrap().array, v.array);
        assert!(v.time_window(0..0).is_err());
        assert!(v.time_window(1..3).is_err());
    }

    #[test]
    fn canonical_reorder() {
        // Build (lon, time, lat) order and canonicalize.
        let v = sample();
        let perm_arr = v.array.transpose(&[2, 0, 1]).unwrap();
        let axes = vec![v.axes[2].clone(), v.axes[0].clone(), v.axes[1].clone()];
        let scrambled = Variable::new("ta", perm_arr, axes).unwrap();
        let canon = scrambled.to_canonical_order().unwrap();
        assert_eq!(canon.axes[0].kind, AxisKind::Time);
        assert_eq!(canon.axes[1].kind, AxisKind::Latitude);
        assert_eq!(canon.axes[2].kind, AxisKind::Longitude);
        assert_eq!(canon.array, v.array);
    }

    #[test]
    fn canonical_reorder_noop_when_ordered() {
        let v = sample();
        let c = v.to_canonical_order().unwrap();
        assert_eq!(c, v);
    }

    #[test]
    fn index_slicing_keeps_axes_in_sync() {
        let v = sample();
        let specs =
            [SliceSpec::all(2), SliceSpec::at(1), SliceSpec { start: 0, stop: 4, step: 2 }];
        let s = v.slice(&specs).unwrap();
        assert_eq!(s.shape(), &[2, 1, 2]);
        assert_eq!(s.axes[1].values, vec![0.0]);
        assert_eq!(s.axes[2].values, vec![0.0, 180.0]);
    }
}
