#![forbid(unsafe_code)]
// Index-form loops over several parallel arrays are clearer here than
// iterator chains; silence the style lint crate-wide.
#![allow(clippy::needless_range_loop)]

//! # cdms — Climate Data Management System substrate
//!
//! A from-scratch Rust reproduction of the data-management layer that DV3D and
//! UV-CDAT sit on in the SC 2012 paper: CDMS (Climate Data Management System)
//! plus the NetCDF-style self-describing file model it fronts.
//!
//! The crate provides:
//!
//! * [`MaskedArray`] — an n-dimensional array of `f32` with an element-wise
//!   validity mask, strided views, broadcasting arithmetic and axis reductions
//!   (the equivalent of CDMS "transient variables" backed by numpy masked
//!   arrays).
//! * [`Axis`] — CF-convention coordinate axes (latitude, longitude, vertical
//!   level, time) carrying values, cell bounds, units and metadata.
//! * [`calendar`] — model calendars (Gregorian, 365-day, 360-day, …) and
//!   "units since epoch" relative-time encoding/decoding.
//! * [`grid`] — rectilinear latitude–longitude grids, uniform and gaussian,
//!   with cell areas and area weights.
//! * [`Variable`] — a named masked array bound to a domain of axes plus
//!   attributes; supports coordinate-range subsetting like CDMS `var(...)`
//!   calls.
//! * [`Dataset`] + [`mod@format`] — a self-describing binary container (`.ncr`)
//!   with full write/read round-tripping, standing in for NetCDF. Format v2
//!   splits the file into CRC32C-checksummed sections so corruption is
//!   detected per-section; [`format::read_dataset_salvage`] recovers the
//!   intact variables from a damaged file and reports what was lost.
//! * [`storage`] — the hardened I/O layer beneath the format: a [`Storage`]
//!   trait with a [`storage::LocalDisk`] backend, crash-safe atomic writes
//!   (temp file + fsync + verify + rename), bounded retries of transient
//!   errors, and a deterministic [`storage::FaultyStorage`] for injecting
//!   short writes, torn writes, bit flips, ENOSPC and EINTR-style faults in
//!   tests.
//! * [`format_v3`] + [`stream`] — the out-of-core layer: format v3 splits
//!   each variable into per-time-window chunk frames with a coarse-to-fine
//!   resolution pyramid, indexed by a trailer chunk directory;
//!   [`StreamingVariable`] reads any (window, level) piecewise through
//!   `Storage::read_at` behind a byte-budgeted LRU chunk cache with
//!   prefetch, per-chunk retry, and pyramid/masked-fill degradation, so
//!   animation of a series far larger than RAM never stalls on a fault.
//! * [`catalog`] — a directory-backed stand-in for Earth System Grid (ESG)
//!   federated data access: search by attribute, open remote variables;
//!   corrupt files are quarantined or salvaged with a recorded reason
//!   instead of poisoning the scan.
//! * [`synth`] — deterministic synthetic climate fields (temperature,
//!   geopotential, humidity, divergence-free winds, propagating equatorial
//!   waves, land/sea mask) substituting for NASA model output.
//!
//! ## Quickstart
//!
//! ```
//! use cdms::synth::SynthesisSpec;
//!
//! // Build a small synthetic atmosphere: 4 timesteps, 5 levels, 16x32 grid.
//! let ds = SynthesisSpec::new(4, 5, 16, 32).seed(7).build();
//! let ta = ds.variable("ta").unwrap();
//! assert_eq!(ta.shape(), &[4, 5, 16, 32]);
//! // Subset the tropics at the first timestep.
//! let tropics = ta.subset_lat_lon((-20.0, 20.0), (0.0, 360.0)).unwrap();
//! assert!(tropics.array.valid_count() > 0);
//! ```

pub mod array;
pub mod attr;
pub mod axis;
pub mod calendar;
pub mod catalog;
pub mod dataset;
pub mod error;
pub mod format;
pub mod format_v3;
pub mod grid;
pub mod storage;
pub mod stream;
pub mod synth;
pub mod variable;

pub use array::{MaskWords, MaskedArray};
pub use attr::AttValue;
pub use axis::{Axis, AxisKind};
pub use calendar::{Calendar, CompTime, RelTime, TimeUnits};
pub use dataset::Dataset;
pub use error::{CdmsError, Result};
pub use format::{LostVariable, SalvageReport};
pub use format_v3::{V3Layout, V3Options};
pub use grid::RectGrid;
pub use storage::Storage;
pub use stream::{StreamOptions, StreamReport, StreamingDataset, StreamingVariable};
pub use variable::Variable;
