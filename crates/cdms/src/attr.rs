//! Attribute values attached to variables, axes and datasets.
//!
//! Mirrors the NetCDF/CDMS attribute model: a small tagged union of text,
//! numeric scalars and numeric vectors, stored in ordered maps so that
//! metadata round-trips deterministically through the file format.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A single attribute value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttValue {
    /// Free text (e.g. `long_name`, `units`, `history`).
    Text(String),
    /// A single 64-bit float (e.g. `missing_value`).
    Float(f64),
    /// A single signed integer (e.g. `realization`).
    Int(i64),
    /// A vector of floats (e.g. `valid_range`).
    FloatVec(Vec<f64>),
}

impl AttValue {
    /// Returns the text payload if this is a [`AttValue::Text`].
    pub fn as_text(&self) -> Option<&str> {
        match self {
            AttValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Returns a numeric payload coerced to `f64` when possible.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttValue::Float(v) => Some(*v),
            AttValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the integer payload if this is an [`AttValue::Int`].
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            AttValue::Int(v) => Some(*v),
            AttValue::Float(v) if v.fract() == 0.0 => Some(*v as i64),
            _ => None,
        }
    }
}

impl fmt::Display for AttValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttValue::Text(s) => write!(f, "{s}"),
            AttValue::Float(v) => write!(f, "{v}"),
            AttValue::Int(v) => write!(f, "{v}"),
            AttValue::FloatVec(v) => write!(f, "{v:?}"),
        }
    }
}

impl From<&str> for AttValue {
    fn from(s: &str) -> Self {
        AttValue::Text(s.to_string())
    }
}
impl From<String> for AttValue {
    fn from(s: String) -> Self {
        AttValue::Text(s)
    }
}
impl From<f64> for AttValue {
    fn from(v: f64) -> Self {
        AttValue::Float(v)
    }
}
impl From<i64> for AttValue {
    fn from(v: i64) -> Self {
        AttValue::Int(v)
    }
}

/// An ordered attribute map (name → value).
pub type Attributes = BTreeMap<String, AttValue>;

/// Convenience constructor for an attribute map from `(name, value)` pairs.
pub fn attrs<I, K, V>(pairs: I) -> Attributes
where
    I: IntoIterator<Item = (K, V)>,
    K: Into<String>,
    V: Into<AttValue>,
{
    pairs.into_iter().map(|(k, v)| (k.into(), v.into())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coercions() {
        assert_eq!(AttValue::from("K").as_text(), Some("K"));
        assert_eq!(AttValue::from(2.5).as_f64(), Some(2.5));
        assert_eq!(AttValue::from(3i64).as_f64(), Some(3.0));
        assert_eq!(AttValue::from(3i64).as_i64(), Some(3));
        assert_eq!(AttValue::Float(4.0).as_i64(), Some(4));
        assert_eq!(AttValue::Float(4.5).as_i64(), None);
        assert_eq!(AttValue::from("x").as_f64(), None);
    }

    #[test]
    fn attrs_builder_orders_keys() {
        let a = attrs([("units", "K"), ("long_name", "air temperature")]);
        let keys: Vec<_> = a.keys().cloned().collect();
        assert_eq!(keys, vec!["long_name".to_string(), "units".to_string()]);
    }

    #[test]
    fn display_renders() {
        assert_eq!(AttValue::from(1.5).to_string(), "1.5");
        assert_eq!(AttValue::FloatVec(vec![1.0, 2.0]).to_string(), "[1.0, 2.0]");
    }
}
