//! CF-convention coordinate axes.
//!
//! An [`Axis`] carries coordinate values, optional cell bounds, units and a
//! kind (latitude/longitude/level/time/generic). Axes answer the questions
//! subsetting and regridding need: nearest index, coordinate-range selection,
//! cell widths and area weights.

use crate::attr::Attributes;
use crate::calendar::{Calendar, CompTime, RelTime};
use crate::error::{CdmsError, Result};
use serde::{Deserialize, Serialize};

/// The physical kind of an axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AxisKind {
    Latitude,
    Longitude,
    /// Vertical level (pressure, height, model level…).
    Level,
    Time,
    Generic,
}

impl AxisKind {
    /// Guesses the kind from a CF-ish axis id/units, as CDMS does.
    pub fn infer(id: &str, units: &str) -> AxisKind {
        let id = id.to_ascii_lowercase();
        let units = units.to_ascii_lowercase();
        if id.starts_with("lat") || units.contains("degrees_north") {
            AxisKind::Latitude
        } else if id.starts_with("lon") || units.contains("degrees_east") {
            AxisKind::Longitude
        } else if id.starts_with("time") || units.contains(" since ") {
            AxisKind::Time
        } else if id.starts_with("lev")
            || id.starts_with("plev")
            || id.starts_with("depth")
            || id.starts_with("height")
            || units == "hpa"
            || units == "pa"
            || units == "mb"
        {
            AxisKind::Level
        } else {
            AxisKind::Generic
        }
    }
}

/// A one-dimensional coordinate axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Axis {
    /// Short identifier, e.g. `"lat"`.
    pub id: String,
    /// Coordinate values, strictly monotonic.
    pub values: Vec<f64>,
    /// Cell bounds: `bounds[i] = (lower, upper)` of cell `i`.
    pub bounds: Option<Vec<(f64, f64)>>,
    /// CF units string (e.g. `"degrees_north"`, `"hPa"`, `"days since …"`).
    pub units: String,
    /// Physical kind.
    pub kind: AxisKind,
    /// Calendar, meaningful for time axes.
    pub calendar: Calendar,
    /// Extra metadata.
    pub attributes: Attributes,
}

impl Axis {
    /// Creates an axis, validating monotonicity.
    pub fn new(id: &str, values: Vec<f64>, units: &str, kind: AxisKind) -> Result<Axis> {
        if values.is_empty() {
            return Err(CdmsError::Invalid(format!("axis '{id}' has no values")));
        }
        let ax = Axis {
            id: id.to_string(),
            values,
            bounds: None,
            units: units.to_string(),
            kind,
            calendar: Calendar::default(),
            attributes: Attributes::new(),
        };
        if ax.len() > 1 && ax.direction() == 0 {
            return Err(CdmsError::Invalid(format!("axis '{id}' is not strictly monotonic")));
        }
        Ok(ax)
    }

    /// A zero-length axis — the in-memory image of a NetCDF "unlimited"
    /// dimension with no records yet. [`Axis::new`] rejects empty value
    /// lists so analysis code never builds one by accident; `.ncr` files
    /// may legitimately contain them, so the format decoder (and the
    /// edge-case round-trip tests) construct them through here.
    pub fn empty(id: &str, units: &str, kind: AxisKind) -> Axis {
        Axis {
            id: id.to_string(),
            values: Vec::new(),
            bounds: None,
            units: units.to_string(),
            kind,
            calendar: Calendar::default(),
            attributes: Attributes::new(),
        }
    }

    /// A latitude axis in degrees north.
    pub fn latitude(values: Vec<f64>) -> Result<Axis> {
        Axis::new("lat", values, "degrees_north", AxisKind::Latitude)
    }

    /// A longitude axis in degrees east.
    pub fn longitude(values: Vec<f64>) -> Result<Axis> {
        Axis::new("lon", values, "degrees_east", AxisKind::Longitude)
    }

    /// A pressure-level axis in hPa.
    pub fn pressure_levels(values: Vec<f64>) -> Result<Axis> {
        Axis::new("plev", values, "hPa", AxisKind::Level)
    }

    /// A time axis with relative units and a calendar.
    pub fn time(values: Vec<f64>, units: &str, calendar: Calendar) -> Result<Axis> {
        RelTime::parse(units)?; // validate early
        let mut ax = Axis::new("time", values, units, AxisKind::Time)?;
        ax.calendar = calendar;
        Ok(ax)
    }

    /// `n` evenly spaced values covering `[start, stop]` inclusive.
    pub fn linspace(id: &str, start: f64, stop: f64, n: usize, units: &str) -> Result<Axis> {
        if n == 0 {
            return Err(CdmsError::Invalid("linspace of zero points".into()));
        }
        let values = if n == 1 {
            vec![start]
        } else {
            (0..n).map(|i| start + (stop - start) * i as f64 / (n - 1) as f64).collect()
        };
        Axis::new(id, values, units, AxisKind::infer(id, units))
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if there are no points (constructible via [`Axis::empty`],
    /// never via [`Axis::new`]).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// +1 for increasing, -1 for decreasing, 0 for non-monotonic.
    pub fn direction(&self) -> i8 {
        if self.values.windows(2).all(|w| w[1] > w[0]) {
            1
        } else if self.values.windows(2).all(|w| w[1] < w[0]) {
            -1
        } else {
            0
        }
    }

    /// First and last coordinate values. (`Axis::new` rejects empty value
    /// lists, so the NaN fallback is unreachable through the public API.)
    pub fn range(&self) -> (f64, f64) {
        (
            self.values.first().copied().unwrap_or(f64::NAN),
            self.values.last().copied().unwrap_or(f64::NAN),
        )
    }

    /// True for a longitude axis spanning the full circle (cells wrap).
    pub fn is_circular(&self) -> bool {
        if self.kind != AxisKind::Longitude || self.len() < 2 {
            return false;
        }
        let span = (self.values[self.len() - 1] - self.values[0]).abs();
        let step = span / (self.len() - 1) as f64;
        (span + step - 360.0).abs() < step * 0.51
    }

    /// Generates midpoint bounds if absent (half-way between neighbours,
    /// extrapolated at the ends). Latitude bounds are clamped to ±90.
    pub fn gen_bounds(&mut self) {
        if self.bounds.is_some() {
            return;
        }
        let n = self.len();
        let v = &self.values;
        let mut bounds = Vec::with_capacity(n);
        for i in 0..n {
            let lower = if i == 0 {
                if n > 1 {
                    v[0] - (v[1] - v[0]) / 2.0
                } else {
                    v[0] - 0.5
                }
            } else {
                (v[i - 1] + v[i]) / 2.0
            };
            let upper = if i + 1 == n {
                if n > 1 {
                    v[n - 1] + (v[n - 1] - v[n - 2]) / 2.0
                } else {
                    v[0] + 0.5
                }
            } else {
                (v[i] + v[i + 1]) / 2.0
            };
            let (mut lo, mut hi) = (lower, upper);
            if self.kind == AxisKind::Latitude {
                lo = lo.clamp(-90.0, 90.0);
                hi = hi.clamp(-90.0, 90.0);
            }
            bounds.push((lo, hi));
        }
        self.bounds = Some(bounds);
    }

    /// The bounds, generating midpoint cells first when absent. The empty
    /// fallback is unreachable (`gen_bounds` always fills `bounds`), but
    /// spelling it out keeps this path panic-free.
    pub fn bounds_or_gen(&mut self) -> Vec<(f64, f64)> {
        self.gen_bounds();
        self.bounds.clone().unwrap_or_default()
    }

    /// Cell widths from bounds (generating bounds if needed).
    pub fn cell_widths(&self) -> Vec<f64> {
        let mut ax = self.clone();
        ax.bounds_or_gen().iter().map(|(lo, hi)| (hi - lo).abs()).collect()
    }

    /// Area weights for averaging along this axis: proportional to
    /// `sin(upper) - sin(lower)` for latitude (exact sphere-area weighting),
    /// cell width otherwise.
    pub fn weights(&self) -> Vec<f64> {
        if self.kind == AxisKind::Latitude {
            let mut ax = self.clone();
            ax.bounds_or_gen()
                .iter()
                .map(|(lo, hi)| {
                    (hi.to_radians().sin() - lo.to_radians().sin()).abs()
                })
                .collect()
        } else {
            self.cell_widths()
        }
    }

    /// Index of the coordinate nearest to `x`. For circular longitude axes
    /// the comparison is modulo 360.
    pub fn nearest_index(&self, x: f64) -> usize {
        let circular = self.is_circular();
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, &v) in self.values.iter().enumerate() {
            let d = if circular {
                let mut d = (v - x).rem_euclid(360.0);
                if d > 180.0 {
                    d = 360.0 - d;
                }
                d
            } else {
                (v - x).abs()
            };
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// Indices whose coordinates fall in `[lo, hi]` (either order accepted).
    /// Returns `(first, last_exclusive)` over the axis's storage order.
    pub fn index_range(&self, lo: f64, hi: f64) -> Result<(usize, usize)> {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let mut first = None;
        let mut last = None;
        for (i, &v) in self.values.iter().enumerate() {
            if v >= lo - 1e-9 && v <= hi + 1e-9 {
                if first.is_none() {
                    first = Some(i);
                }
                last = Some(i);
            }
        }
        match (first, last) {
            (Some(f), Some(l)) => Ok((f, l + 1)),
            _ => Err(CdmsError::EmptySelection(format!(
                "axis '{}' has no points in [{lo}, {hi}]",
                self.id
            ))),
        }
    }

    /// Subsets the axis to indices `[start, stop)`.
    pub fn subset(&self, start: usize, stop: usize) -> Result<Axis> {
        if stop > self.len() || start >= stop {
            return Err(CdmsError::Invalid(format!(
                "bad subset {start}..{stop} on axis '{}' (len {})",
                self.id,
                self.len()
            )));
        }
        let mut ax = self.clone();
        ax.values = self.values[start..stop].to_vec();
        ax.bounds = self.bounds.as_ref().map(|b| b[start..stop].to_vec());
        Ok(ax)
    }

    /// Decodes the time value at `i` to a component time. Errors for
    /// non-time axes.
    pub fn time_at(&self, i: usize) -> Result<CompTime> {
        if self.kind != AxisKind::Time {
            return Err(CdmsError::Time(format!("axis '{}' is not a time axis", self.id)));
        }
        let rel = RelTime::parse(&self.units)?;
        Ok(rel.decode(self.values[i], self.calendar))
    }

    /// Fractional index of coordinate `x` for interpolation: returns
    /// `(i, frac)` such that `x ≈ values[i] * (1-frac) + values[i+1] * frac`.
    /// Clamps outside the axis range.
    pub fn fractional_index(&self, x: f64) -> (usize, f64) {
        let n = self.len();
        if n == 1 {
            return (0, 0.0);
        }
        let inc = self.direction() >= 0;
        // Binary search over monotonic values.
        let (mut lo, mut hi) = (0usize, n - 1);
        let before = |v: f64| if inc { v <= x } else { v >= x };
        if !before(self.values[0]) {
            return (0, 0.0);
        }
        if before(self.values[n - 1]) {
            return (n - 2, 1.0);
        }
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if before(self.values[mid]) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let span = self.values[hi] - self.values[lo];
        let frac = if span.abs() < 1e-300 { 0.0 } else { (x - self.values[lo]) / span };
        (lo, frac.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_inferred() {
        assert_eq!(AxisKind::infer("lat", "degrees_north"), AxisKind::Latitude);
        assert_eq!(AxisKind::infer("longitude", ""), AxisKind::Longitude);
        assert_eq!(AxisKind::infer("t", "days since 2000-1-1"), AxisKind::Time);
        assert_eq!(AxisKind::infer("plev", "hPa"), AxisKind::Level);
        assert_eq!(AxisKind::infer("x", "m"), AxisKind::Generic);
    }

    #[test]
    fn monotonicity_enforced() {
        assert!(Axis::latitude(vec![0.0, 1.0, 0.5]).is_err());
        assert!(Axis::latitude(vec![0.0, 1.0, 2.0]).is_ok());
        assert!(Axis::latitude(vec![2.0, 1.0, 0.0]).is_ok());
        assert!(Axis::latitude(vec![]).is_err());
    }

    #[test]
    fn direction_and_range() {
        let up = Axis::latitude(vec![-30.0, 0.0, 30.0]).unwrap();
        assert_eq!(up.direction(), 1);
        assert_eq!(up.range(), (-30.0, 30.0));
        let down = Axis::pressure_levels(vec![1000.0, 500.0, 100.0]).unwrap();
        assert_eq!(down.direction(), -1);
    }

    #[test]
    fn linspace_endpoints() {
        let ax = Axis::linspace("lon", 0.0, 350.0, 36, "degrees_east").unwrap();
        assert_eq!(ax.len(), 36);
        assert_eq!(ax.values[0], 0.0);
        assert_eq!(ax.values[35], 350.0);
        assert_eq!(ax.kind, AxisKind::Longitude);
        assert!(Axis::linspace("x", 0.0, 1.0, 0, "m").is_err());
    }

    #[test]
    fn circular_longitude_detection() {
        let full = Axis::linspace("lon", 0.0, 350.0, 36, "degrees_east").unwrap();
        assert!(full.is_circular());
        let partial = Axis::linspace("lon", 0.0, 180.0, 19, "degrees_east").unwrap();
        assert!(!partial.is_circular());
        let lat = Axis::linspace("lat", -90.0, 90.0, 19, "degrees_north").unwrap();
        assert!(!lat.is_circular());
    }

    #[test]
    fn bounds_midpoints_and_clamping() {
        let mut ax = Axis::latitude(vec![-90.0, 0.0, 90.0]).unwrap();
        ax.gen_bounds();
        let b = ax.bounds.as_ref().unwrap();
        assert_eq!(b[0], (-90.0, -45.0)); // clamped at the pole
        assert_eq!(b[1], (-45.0, 45.0));
        assert_eq!(b[2], (45.0, 90.0));
    }

    #[test]
    fn latitude_weights_sum_to_two() {
        // sin-latitude weights over the full sphere sum to 2 (= ∫cosφ dφ).
        let ax = Axis::linspace("lat", -87.5, 87.5, 36, "degrees_north").unwrap();
        let w: f64 = ax.weights().iter().sum();
        assert!((w - 2.0).abs() < 1e-6, "sum {w}");
    }

    #[test]
    fn generic_weights_are_cell_widths() {
        let ax = Axis::linspace("x", 0.0, 10.0, 11, "m").unwrap();
        let w = ax.weights();
        assert!(w.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn nearest_index_plain_and_circular() {
        let ax = Axis::linspace("lat", -90.0, 90.0, 19, "degrees_north").unwrap();
        assert_eq!(ax.nearest_index(0.0), 9);
        assert_eq!(ax.nearest_index(-200.0), 0);
        let lon = Axis::linspace("lon", 0.0, 350.0, 36, "degrees_east").unwrap();
        assert_eq!(lon.nearest_index(359.0), 0); // wraps
        assert_eq!(lon.nearest_index(-10.0), 35);
    }

    #[test]
    fn index_range_selects_inclusive() {
        let ax = Axis::linspace("lat", -90.0, 90.0, 19, "degrees_north").unwrap();
        let (a, b) = ax.index_range(-20.0, 20.0).unwrap();
        assert_eq!((a, b), (7, 12));
        let (a, b) = ax.index_range(20.0, -20.0).unwrap(); // swapped ok
        assert_eq!((a, b), (7, 12));
        assert!(ax.index_range(91.0, 95.0).is_err());
    }

    #[test]
    fn subset_values_and_bounds() {
        let mut ax = Axis::linspace("lat", -90.0, 90.0, 19, "degrees_north").unwrap();
        ax.gen_bounds();
        let sub = ax.subset(7, 12).unwrap();
        assert_eq!(sub.len(), 5);
        assert_eq!(sub.values[0], -20.0);
        assert!(sub.bounds.is_some());
        assert!(ax.subset(12, 7).is_err());
        assert!(ax.subset(0, 100).is_err());
    }

    #[test]
    fn time_axis_decodes() {
        let ax =
            Axis::time(vec![0.0, 31.0], "days since 2000-01-01", Calendar::NoLeap365).unwrap();
        let t = ax.time_at(1).unwrap();
        assert_eq!((t.year, t.month, t.day), (2000, 2, 1));
        let lat = Axis::latitude(vec![0.0]).unwrap();
        assert!(lat.time_at(0).is_err());
        assert!(Axis::time(vec![0.0], "bogus units", Calendar::Gregorian).is_err());
    }

    #[test]
    fn fractional_index_interpolates() {
        let ax = Axis::linspace("x", 0.0, 10.0, 11, "m").unwrap();
        let (i, f) = ax.fractional_index(3.5);
        assert_eq!(i, 3);
        assert!((f - 0.5).abs() < 1e-12);
        assert_eq!(ax.fractional_index(-5.0), (0, 0.0));
        let (i, f) = ax.fractional_index(20.0);
        assert_eq!((i, f), (9, 1.0));
    }

    #[test]
    fn fractional_index_decreasing_axis() {
        let ax = Axis::pressure_levels(vec![1000.0, 500.0, 100.0]).unwrap();
        let (i, f) = ax.fractional_index(750.0);
        assert_eq!(i, 0);
        assert!((f - 0.5).abs() < 1e-12);
    }
}
