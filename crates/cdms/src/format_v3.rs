//! `.ncr` format **v3** — the chunked, multi-resolution streaming layout.
//!
//! v3 keeps the v2 skeleton (CRC32C-framed sections, trailer directory,
//! checksummed footer) but splits each variable's bulk data into
//! **chunk frames**, one per (time window, pyramid level), so a reader can
//! fetch exactly the bytes one animation frame needs via
//! `Storage::read_at` instead of slurping the whole file:
//!
//! ```text
//! magic "NCRS" | version u32 = 3
//! Header   (kind 1) dataset id, global attrs, axis count, varmeta count
//! Axis     (kind 2) one deduplicated axis per section
//! VarMeta  (kind 5) id, axis refs, attrs, shape, window size, level count
//!                   — metadata only, no bulk data
//! Chunk    (kind 6) var u32 | window u32 | level u32 | codec u8 |
//!                   raw_len u64 | body        (ordered by (var, win, lvl))
//! ChunkDir (kind 7) (var, window, level) → (frame offset, payload len, crc)
//! Trailer  (kind 4) directory of ALL sections + file CRC   (as v2)
//! footer            trailer offset u64 | crc32c(offset) u32
//! ```
//!
//! A chunk's body is the window's data (`f32 × n`) plus its bit-packed
//! mask, either raw (codec 0) or PackBits-RLE compressed (codec 1 — chosen
//! per chunk only when it is actually smaller, so constant fields shrink
//! and noisy fields pay nothing). Level 0 is full resolution; level *k*
//! downsamples the two trailing non-time dimensions by `2^k`, averaging
//! valid cells (a cell with no valid source cells is masked). The pyramid
//! is what lets [`crate::stream`] degrade a damaged or slow chunk to a
//! coarser level instead of stalling playback.
//!
//! The strict reader ([`from_bytes_v3`]) rebuilds variables from level-0
//! chunks only and verifies every frame CRC, the chunk directory, the
//! trailer, and the footer — `from_bytes(to_bytes_v3(ds))` is bit-exact
//! with the source dataset. [`salvage_v3`] recovers per chunk: a corrupt
//! level-0 chunk falls back to the best intact pyramid level (upsampled,
//! nearest-neighbor), or to a fully-masked window at worst.

use crate::attr::Attributes;
use crate::axis::{Axis, AxisKind};
use crate::dataset::Dataset;
use crate::error::{CdmsError, Result};
use crate::format::{
    self, SectionKind, SectionSpan, VERSION_V3, FOOTER_LEN, FRAME_OVERHEAD, MAGIC,
};
use crate::format::{LostVariable, SalvageReport};
use crate::storage::{crc32c, LocalDisk, Storage};
use crate::{MaskedArray, Variable};
use bytes::{BufMut, Bytes, BytesMut};
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::ops::Range;
use std::path::Path;

/// Raw (uncompressed) chunk body.
pub const CODEC_RAW: u8 = 0;
/// PackBits run-length-encoded chunk body.
pub const CODEC_RLE: u8 = 1;

/// Writer knobs for the v3 layout.
#[derive(Debug, Clone)]
pub struct V3Options {
    /// Time steps per chunk window (≥ 1).
    pub window: usize,
    /// Pyramid levels per window (≥ 1; level 0 is full resolution). The
    /// writer caps this per variable once every spatial dimension has
    /// collapsed to a single cell.
    pub levels: usize,
    /// Try PackBits compression per chunk (kept only when smaller).
    pub compress: bool,
}

impl Default for V3Options {
    fn default() -> V3Options {
        V3Options { window: 4, levels: 3, compress: true }
    }
}

/// Byte extents of one chunk frame — the fuzzer/fault-storm oracle for
/// "which (variable, window, level) does this byte belong to".
#[derive(Debug, Clone)]
pub struct ChunkSpan {
    pub var: usize,
    pub window: usize,
    pub level: usize,
    /// The whole frame: kind byte through trailing CRC.
    pub frame: Range<usize>,
    /// The payload bytes within the file.
    pub payload: Range<usize>,
}

/// Full byte map of an encoded v3 file.
#[derive(Debug, Clone)]
pub struct V3Layout {
    /// All sections in file order (header, axes, varmetas, chunks,
    /// chunkdir, trailer). Chunk sections appear here too, with
    /// `variable: None`.
    pub sections: Vec<SectionSpan>,
    /// The chunk frames with their (var, window, level) identity.
    pub chunks: Vec<ChunkSpan>,
    /// The 12-byte end-of-file footer.
    pub footer: Range<usize>,
}

/// Per-variable metadata decoded from a `VarMeta` section.
#[derive(Debug, Clone, PartialEq)]
pub struct V3VarMeta {
    pub id: String,
    /// Ordinals into the deduplicated axis list.
    pub axis_refs: Vec<usize>,
    pub attributes: Attributes,
    pub shape: Vec<usize>,
    /// Time steps per chunk window.
    pub window: usize,
    /// Pyramid levels actually written for this variable.
    pub levels: usize,
    /// Position of the time axis among this variable's dims (derived from
    /// the axis kinds, not serialized).
    pub time_axis: Option<usize>,
}

impl V3VarMeta {
    /// Number of time steps (1 when there is no time axis).
    pub fn n_times(&self) -> usize {
        match self.time_axis {
            Some(t) => self.shape.get(t).copied().unwrap_or(0),
            None => 1,
        }
    }

    /// Number of chunk windows along time.
    pub fn n_windows(&self) -> usize {
        match self.time_axis {
            Some(_) => self.n_times().div_ceil(self.window.max(1)),
            None => 1,
        }
    }

    /// Time-step range covered by window `w`.
    pub fn window_range(&self, w: usize) -> Range<usize> {
        match self.time_axis {
            Some(_) => {
                let start = w * self.window;
                start..(start + self.window).min(self.n_times())
            }
            None => 0..1,
        }
    }

    /// Shape of the level-0 slab for window `w` (full shape with the time
    /// dim cut to the window length).
    pub fn slab_shape(&self, w: usize) -> Vec<usize> {
        let mut shape = self.shape.clone();
        if let Some(t) = self.time_axis {
            if let Some(d) = shape.get_mut(t) {
                *d = self.window_range(w).len();
            }
        }
        shape
    }

    /// The (up to two) trailing non-time dims the pyramid downsamples.
    pub fn pyramid_dims(&self) -> Vec<usize> {
        let mut dims: Vec<usize> =
            (0..self.shape.len()).filter(|&d| Some(d) != self.time_axis).collect();
        let keep = dims.len().min(2);
        dims.split_off(dims.len() - keep)
    }

    /// Shape of the chunk for window `w` at pyramid `level`.
    pub fn level_shape(&self, w: usize, level: usize) -> Vec<usize> {
        let mut shape = self.slab_shape(w);
        let factor = 1usize << level.min(63);
        for d in self.pyramid_dims() {
            if let Some(v) = shape.get_mut(d) {
                *v = v.div_ceil(factor).max(1);
            }
        }
        shape
    }

    /// Element count of the chunk for window `w` at `level`.
    pub fn level_volume(&self, w: usize, level: usize) -> Option<usize> {
        format::checked_volume(&self.level_shape(w, level))
    }
}

/// One entry of the `ChunkDir` section: where a chunk frame lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkDirEntry {
    pub var: usize,
    pub window: usize,
    pub level: usize,
    /// File offset of the chunk *frame* (kind byte).
    pub offset: u64,
    /// Payload length (frame is `FRAME_OVERHEAD` bytes longer).
    pub len: u64,
    /// CRC32C of the payload.
    pub crc: u32,
}

impl ChunkDirEntry {
    /// Byte length of the whole frame on disk.
    pub fn frame_len(&self) -> usize {
        self.len as usize + FRAME_OVERHEAD
    }
}

/// Everything a streaming reader needs to locate chunks without scanning:
/// the decoded header, axes, per-variable metadata, and chunk directory.
#[derive(Debug, Clone)]
pub struct V3Meta {
    pub id: String,
    pub attributes: Attributes,
    pub axes: Vec<Axis>,
    pub vars: Vec<V3VarMeta>,
    /// Sorted by (var, window, level).
    pub chunks: Vec<ChunkDirEntry>,
    /// Total file length, for bounds-checking ranged reads.
    pub file_len: u64,
}

impl V3Meta {
    /// Directory entry for (var, window, level), by binary search.
    pub fn chunk(&self, var: usize, window: usize, level: usize) -> Option<&ChunkDirEntry> {
        self.chunks
            .binary_search_by_key(&(var, window, level), |e| (e.var, e.window, e.level))
            .ok()
            .and_then(|i| self.chunks.get(i))
    }

    /// Ordinal of the variable with the given id.
    pub fn var_index(&self, id: &str) -> Option<usize> {
        self.vars.iter().position(|v| v.id == id)
    }

    /// The axes of variable `var`, resolved through its refs.
    pub fn var_axes(&self, var: usize) -> Result<Vec<Axis>> {
        let meta = self
            .vars
            .get(var)
            .ok_or_else(|| CdmsError::NotFound(format!("variable ordinal {var}")))?;
        meta.axis_refs
            .iter()
            .map(|&r| {
                self.axes.get(r).cloned().ok_or_else(|| {
                    CdmsError::Format(format!(
                        "variable '{}' references axis {r}, only {} exist",
                        meta.id,
                        self.axes.len()
                    ))
                })
            })
            .collect()
    }
}

// ---- encoding ----

/// Serializes a dataset in v3 with default options.
pub fn to_bytes_v3(ds: &Dataset) -> (Bytes, V3Layout) {
    to_bytes_v3_with(ds, &V3Options::default())
}

/// Serializes a dataset in v3, returning the byte map alongside.
///
/// Chunk payloads (downsample + optional compression — the expensive part)
/// are encoded in parallel into pre-allocated slots, so the output bytes
/// are identical at any `RAYON_NUM_THREADS`; the frame assembly is
/// sequential.
pub fn to_bytes_v3_with(ds: &Dataset, opts: &V3Options) -> (Bytes, V3Layout) {
    let window = opts.window.max(1);
    let req_levels = opts.levels.max(1);

    // Deduplicate axes across variables, as v2 does.
    let mut axes: Vec<&Axis> = Vec::new();
    let mut metas: Vec<V3VarMeta> = Vec::with_capacity(ds.variables().len());
    for var in ds.variables() {
        let refs: Vec<usize> = var
            .axes
            .iter()
            .map(|ax| match axes.iter().position(|a| *a == ax) {
                Some(i) => i,
                None => {
                    axes.push(ax);
                    axes.len() - 1
                }
            })
            .collect();
        let time_axis = var.axis_index(AxisKind::Time);
        let mut meta = V3VarMeta {
            id: var.id.clone(),
            axis_refs: refs,
            attributes: var.attributes.clone(),
            shape: var.array.shape().to_vec(),
            window,
            levels: 1,
            time_axis,
        };
        meta.levels = effective_levels(&meta, req_levels);
        metas.push(meta);
    }

    // One job per (var, window, level), in file order.
    let jobs: Vec<(usize, usize, usize)> = metas
        .iter()
        .enumerate()
        .flat_map(|(vi, m)| {
            (0..m.n_windows())
                .flat_map(move |w| (0..m.levels).map(move |l| (vi, w, l)))
        })
        .collect();
    let mut payloads: Vec<Vec<u8>> = vec![Vec::new(); jobs.len()];
    {
        let metas = &metas;
        payloads.par_iter_mut().zip(jobs.par_iter()).for_each(|(slot, &(vi, w, l))| {
            // jobs were enumerated from the same variable list, so the
            // ordinal is always in range; fall back to an empty payload
            // (caught by the strict reader) rather than panicking
            if let (Some(var), Some(meta)) = (ds.variables().get(vi), metas.get(vi)) {
                *slot = encode_chunk_payload(var, meta, vi, w, l, opts.compress);
            }
        });
    }

    let mut buf = BytesMut::new();
    let mut estimate = 64;
    for p in &payloads {
        estimate += p.len() + FRAME_OVERHEAD + 32;
    }
    buf.reserve(estimate);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION_V3);

    let mut sections: Vec<SectionSpan> = Vec::new();
    let mut dir: Vec<(u8, u64, u64, u32)> = Vec::new();
    let mut chunk_spans: Vec<ChunkSpan> = Vec::new();
    let mut chunk_dir: Vec<ChunkDirEntry> = Vec::new();

    // header (same payload shape as v2: id, attrs, axis count, var count)
    let mut p = BytesMut::new();
    format::put_string(&mut p, &ds.id);
    format::put_attrs(&mut p, &ds.attributes);
    p.put_u32_le(axes.len() as u32);
    p.put_u32_le(metas.len() as u32);
    put_frame(&mut buf, SectionKind::Header, &p, &mut sections, &mut dir, None);

    for ax in &axes {
        let mut p = BytesMut::new();
        format::put_axis(&mut p, ax);
        put_frame(&mut buf, SectionKind::Axis, &p, &mut sections, &mut dir, None);
    }

    for meta in &metas {
        let mut p = BytesMut::new();
        format::put_string(&mut p, &meta.id);
        p.put_u32_le(meta.axis_refs.len() as u32);
        for &r in &meta.axis_refs {
            p.put_u32_le(r as u32);
        }
        format::put_attrs(&mut p, &meta.attributes);
        p.put_u32_le(meta.shape.len() as u32);
        for &d in &meta.shape {
            p.put_u64_le(d as u64);
        }
        p.put_u32_le(meta.window as u32);
        p.put_u32_le(meta.levels as u32);
        put_frame(
            &mut buf,
            SectionKind::VarMeta,
            &p,
            &mut sections,
            &mut dir,
            Some((meta.id.clone(), meta.axis_refs.clone())),
        );
    }

    for (&(vi, w, l), payload) in jobs.iter().zip(&payloads) {
        let (frame, span, crc) =
            put_frame(&mut buf, SectionKind::Chunk, payload, &mut sections, &mut dir, None);
        chunk_dir.push(ChunkDirEntry {
            var: vi,
            window: w,
            level: l,
            offset: frame.start as u64,
            len: payload.len() as u64,
            crc,
        });
        chunk_spans.push(ChunkSpan { var: vi, window: w, level: l, frame, payload: span });
    }

    let mut p = BytesMut::new();
    p.put_u32_le(chunk_dir.len() as u32);
    for e in &chunk_dir {
        p.put_u32_le(e.var as u32);
        p.put_u32_le(e.window as u32);
        p.put_u32_le(e.level as u32);
        p.put_u64_le(e.offset);
        p.put_u64_le(e.len);
        p.put_u32_le(e.crc);
    }
    put_frame(&mut buf, SectionKind::ChunkDir, &p, &mut sections, &mut dir, None);

    // trailer + footer: byte-compatible with v2 so salvage's directory
    // bootstrap works unchanged.
    let trailer_offset = buf.len();
    let mut p = BytesMut::new();
    p.put_u32_le(dir.len() as u32);
    let mut crc_bytes = Vec::with_capacity(dir.len() * 4);
    for &(kind, off, len, crc) in &dir {
        p.put_u8(kind);
        p.put_u64_le(off);
        p.put_u64_le(len);
        p.put_u32_le(crc);
        crc_bytes.extend_from_slice(&crc.to_le_bytes());
    }
    p.put_u32_le(crc32c(&crc_bytes));
    put_frame(&mut buf, SectionKind::Trailer, &p, &mut sections, &mut dir, None);

    let footer_start = buf.len();
    buf.put_u64_le(trailer_offset as u64);
    buf.put_u32_le(crc32c(&(trailer_offset as u64).to_le_bytes()));

    let layout =
        V3Layout { sections, chunks: chunk_spans, footer: footer_start..buf.len() };
    (buf.freeze(), layout)
}

/// Appends one framed section, returning (frame range, payload range, crc).
fn put_frame(
    buf: &mut BytesMut,
    kind: SectionKind,
    payload: &[u8],
    sections: &mut Vec<SectionSpan>,
    dir: &mut Vec<(u8, u64, u64, u32)>,
    variable: Option<(String, Vec<usize>)>,
) -> (Range<usize>, Range<usize>, u32) {
    let frame_start = buf.len();
    buf.put_u8(kind.as_u8());
    buf.put_u64_le(payload.len() as u64);
    let payload_start = buf.len();
    buf.put_slice(payload);
    let crc = crc32c(payload);
    buf.put_u32_le(crc);
    let frame = frame_start..buf.len();
    let span = payload_start..payload_start + payload.len();
    sections.push(SectionSpan { kind, frame: frame.clone(), payload: span.clone(), variable });
    dir.push((kind.as_u8(), frame_start as u64, payload.len() as u64, crc));
    (frame, span, crc)
}

/// Levels worth writing: stop once every pyramid dim has collapsed to 1.
fn effective_levels(meta: &V3VarMeta, requested: usize) -> usize {
    let dims = meta.pyramid_dims();
    if dims.is_empty() {
        return 1;
    }
    let mut halvings = 0usize;
    for d in dims {
        let mut v = meta.shape.get(d).copied().unwrap_or(1);
        let mut h = 0usize;
        while v > 1 {
            v = v.div_ceil(2);
            h += 1;
        }
        halvings = halvings.max(h);
    }
    requested.min(halvings + 1)
}

/// Encodes one chunk payload: header, then the (possibly downsampled,
/// possibly compressed) data + mask body.
fn encode_chunk_payload(
    var: &Variable,
    meta: &V3VarMeta,
    vi: usize,
    w: usize,
    level: usize,
    compress: bool,
) -> Vec<u8> {
    // Window slab (full resolution). `time_window` only fails when the
    // range is empty/out of bounds, which `n_windows` precludes; fall back
    // to the whole array (the no-time-axis single-window case).
    let slab: Variable = match meta.time_axis {
        Some(_) => var.time_window(meta.window_range(w)).unwrap_or_else(|_| var.clone()),
        None => var.clone(),
    };
    let slab_shape = meta.slab_shape(w);
    let (data, mask) = if level == 0 {
        (slab.array.data().to_vec(), slab.array.mask().to_vec())
    } else {
        downsample(slab.array.data(), slab.array.mask(), &slab_shape, &meta.pyramid_dims(), level)
    };

    let n = data.len();
    let mut raw = Vec::with_capacity(4 * n + n.div_ceil(8));
    for &v in &data {
        raw.extend_from_slice(&v.to_le_bytes());
    }
    let mut packed = vec![0u8; n.div_ceil(8)];
    for (i, &m) in mask.iter().enumerate() {
        if m {
            packed[i / 8] |= 1 << (i % 8);
        }
    }
    raw.extend_from_slice(&packed);

    let (codec, body) = if compress {
        let rle = packbits_encode(&raw);
        if rle.len() < raw.len() {
            (CODEC_RLE, rle)
        } else {
            (CODEC_RAW, raw)
        }
    } else {
        (CODEC_RAW, raw)
    };

    let mut out = Vec::with_capacity(21 + body.len());
    out.extend_from_slice(&(vi as u32).to_le_bytes());
    out.extend_from_slice(&(w as u32).to_le_bytes());
    out.extend_from_slice(&(level as u32).to_le_bytes());
    out.push(codec);
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Mean-of-valid-cells downsampling of `dims` by `2^level`. A destination
/// cell whose source block holds no valid cell is masked.
fn downsample(
    data: &[f32],
    mask: &[bool],
    shape: &[usize],
    dims: &[usize],
    level: usize,
) -> (Vec<f32>, Vec<bool>) {
    let factor = 1usize << level.min(63);
    let mut out_shape = shape.to_vec();
    for &d in dims {
        if let Some(v) = out_shape.get_mut(d) {
            *v = v.div_ceil(factor).max(1);
        }
    }
    let out_n = out_shape.iter().product::<usize>();
    let mut out = vec![0.0f32; out_n];
    let mut out_mask = vec![true; out_n];
    let rank = shape.len();
    let in_strides = row_major_strides(shape);
    let out_strides = row_major_strides(&out_shape);

    let mut idx = vec![0usize; rank];
    for (oi, (slot, mslot)) in out.iter_mut().zip(out_mask.iter_mut()).enumerate() {
        // multi-index of this output cell
        let mut rem = oi;
        for d in 0..rank {
            idx[d] = rem / out_strides[d];
            rem %= out_strides[d];
        }
        // source block bounds per dim (identity outside `dims`)
        let mut lo = vec![0usize; rank];
        let mut hi = vec![0usize; rank];
        for d in 0..rank {
            if dims.contains(&d) {
                lo[d] = idx[d] * factor;
                hi[d] = (lo[d] + factor).min(shape[d]);
            } else {
                lo[d] = idx[d];
                hi[d] = idx[d] + 1;
            }
        }
        // average the valid cells of the block (local accumulator —
        // deterministic, sequential per output cell)
        let mut sum = 0.0f64;
        let mut count = 0usize;
        let mut cursor = lo.clone();
        'block: loop {
            let lin: usize = cursor.iter().zip(&in_strides).map(|(&i, &s)| i * s).sum();
            if let (Some(&v), Some(&m)) = (data.get(lin), mask.get(lin)) {
                if !m {
                    sum += v as f64;
                    count += 1;
                }
            }
            // odometer increment over the block
            for d in (0..rank).rev() {
                cursor[d] += 1;
                if cursor[d] < hi[d] {
                    continue 'block;
                }
                cursor[d] = lo[d];
            }
            break;
        }
        if count > 0 {
            *slot = (sum / count as f64) as f32;
            *mslot = false;
        }
    }
    (out, out_mask)
}

/// Nearest-neighbor upsampling from `from_shape` to `to_shape` (same rank).
pub fn upsample_nearest(
    data: &[f32],
    mask: &[bool],
    from_shape: &[usize],
    to_shape: &[usize],
) -> Result<(Vec<f32>, Vec<bool>)> {
    if from_shape.len() != to_shape.len() {
        return Err(CdmsError::ShapeMismatch {
            expected: to_shape.to_vec(),
            got: from_shape.to_vec(),
        });
    }
    let from_n = format::checked_volume(from_shape)
        .ok_or_else(|| CdmsError::Format("upsample source shape overflows".into()))?;
    if data.len() != from_n || mask.len() != from_n {
        return Err(CdmsError::Format(format!(
            "upsample source has {} elements, shape wants {from_n}",
            data.len()
        )));
    }
    let to_n = format::checked_volume(to_shape)
        .ok_or_else(|| CdmsError::Format("upsample target shape overflows".into()))?;
    let rank = to_shape.len();
    let from_strides = row_major_strides(from_shape);
    let to_strides = row_major_strides(to_shape);
    let mut out = vec![0.0f32; to_n];
    let mut out_mask = vec![true; to_n];
    for oi in 0..to_n {
        let mut rem = oi;
        let mut src = 0usize;
        for d in 0..rank {
            let i = rem / to_strides[d];
            rem %= to_strides[d];
            let (td, fd) = (to_shape[d].max(1), from_shape[d].max(1));
            let si = if td == fd { i } else { (i * fd / td).min(fd - 1) };
            src += si * from_strides[d];
        }
        if let (Some(&v), Some(&m)) = (data.get(src), mask.get(src)) {
            out[oi] = v;
            out_mask[oi] = m;
        }
    }
    Ok((out, out_mask))
}

fn row_major_strides(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; shape.len()];
    for d in (0..shape.len().saturating_sub(1)).rev() {
        strides[d] = strides[d + 1] * shape[d + 1].max(1);
    }
    strides
}

// ---- PackBits codec ----

/// Classic PackBits: tag `0..=127` = literal run of tag+1 bytes; tag
/// `129..=255` = the next byte repeated `257-tag` times; 128 is unused.
pub(crate) fn packbits_encode(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 4 + 16);
    let mut i = 0usize;
    while i < input.len() {
        // measure the run starting here
        let b = input[i];
        let mut run = 1usize;
        while run < 128 && i + run < input.len() && input[i + run] == b {
            run += 1;
        }
        if run >= 3 {
            out.push((257 - run) as u8);
            out.push(b);
            i += run;
            continue;
        }
        // literal run: until the next ≥3 repeat or 128 bytes
        let lit_start = i;
        let mut j = i;
        while j < input.len() && j - lit_start < 128 {
            let c = input[j];
            let mut r = 1usize;
            while r < 3 && j + r < input.len() && input[j + r] == c {
                r += 1;
            }
            if r >= 3 {
                break;
            }
            j += 1;
        }
        let lit = &input[lit_start..j.max(lit_start + 1)];
        out.push((lit.len() - 1) as u8);
        out.extend_from_slice(lit);
        i = lit_start + lit.len();
    }
    out
}

/// Decodes PackBits, requiring exactly `expected_len` output bytes.
pub(crate) fn packbits_decode(input: &[u8], expected_len: usize) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(expected_len);
    let mut i = 0usize;
    while i < input.len() {
        let tag = input[i];
        i += 1;
        if tag == 128 {
            return Err(CdmsError::Format("packbits: reserved tag 128".into()));
        }
        if tag < 128 {
            let n = tag as usize + 1;
            let lit = input
                .get(i..i + n)
                .ok_or_else(|| CdmsError::Format("packbits: literal run truncated".into()))?;
            if out.len() + n > expected_len {
                return Err(CdmsError::Format("packbits: output overruns declared size".into()));
            }
            out.extend_from_slice(lit);
            i += n;
        } else {
            let n = 257 - tag as usize;
            let &b = input
                .get(i)
                .ok_or_else(|| CdmsError::Format("packbits: repeat run truncated".into()))?;
            if out.len() + n > expected_len {
                return Err(CdmsError::Format("packbits: output overruns declared size".into()));
            }
            out.resize(out.len() + n, b);
            i += 1;
        }
    }
    if out.len() != expected_len {
        return Err(CdmsError::Format(format!(
            "packbits: decoded {} bytes, expected {expected_len}",
            out.len()
        )));
    }
    Ok(out)
}

// ---- chunk decode ----

/// Decodes a chunk payload, checking its identity triple and element count
/// against the directory/metadata. Returns (data, mask).
pub fn decode_chunk_payload(
    payload: &[u8],
    expect: (usize, usize, usize),
    expect_n: usize,
) -> Result<(Vec<f32>, Vec<bool>)> {
    let mut cur = payload;
    let buf = &mut cur;
    let var = format::get_u32(buf)? as usize;
    let window = format::get_u32(buf)? as usize;
    let level = format::get_u32(buf)? as usize;
    if (var, window, level) != expect {
        return Err(CdmsError::Format(format!(
            "chunk identity ({var},{window},{level}) != expected {expect:?}"
        )));
    }
    let codec = format::get_u8(buf)?;
    let n = format::get_u64(buf)? as usize;
    if n != expect_n {
        return Err(CdmsError::Format(format!(
            "chunk ({var},{window},{level}) declares {n} elements, metadata wants {expect_n}"
        )));
    }
    let raw_len = 4usize
        .checked_mul(n)
        .and_then(|b| b.checked_add(n.div_ceil(8)))
        .ok_or_else(|| CdmsError::Format("chunk size overflows".into()))?;
    let raw: Vec<u8> = match codec {
        CODEC_RAW => {
            if buf.len() != raw_len {
                return Err(CdmsError::Format(format!(
                    "raw chunk body is {} bytes, expected {raw_len}",
                    buf.len()
                )));
            }
            buf.to_vec()
        }
        CODEC_RLE => packbits_decode(buf, raw_len)?,
        c => return Err(CdmsError::Format(format!("unknown chunk codec {c}"))),
    };
    let mut data = Vec::with_capacity(n);
    let (floats, packed) = raw.split_at(4 * n);
    data.extend(floats.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])));
    let mut mcur = packed;
    let mask = format::get_mask(&mut mcur, n)?;
    Ok((data, mask))
}

/// Verifies a chunk *frame* (as read from disk at a directory entry's
/// offset) against the entry — kind, length, and payload CRC — and returns
/// the payload slice. A short read shows up as a length mismatch.
pub fn verify_chunk_frame<'a>(frame: &'a [u8], entry: &ChunkDirEntry) -> Result<&'a [u8]> {
    if frame.len() != entry.frame_len() {
        return Err(CdmsError::Format(format!(
            "chunk frame is {} bytes, directory promises {}",
            frame.len(),
            entry.frame_len()
        )));
    }
    let mut pos = 0usize;
    let parsed = format::read_frame(frame, &mut pos, frame.len())?;
    format::expect_kind(&parsed, SectionKind::Chunk)?;
    if parsed.crc != entry.crc {
        return Err(CdmsError::Format(format!(
            "chunk ({},{},{}) checksum disagrees with directory",
            entry.var, entry.window, entry.level
        )));
    }
    // Re-borrow through `frame` to decouple the payload lifetime from the
    // local `parsed`.
    frame
        .get(9..9 + parsed.payload.len())
        .ok_or_else(|| CdmsError::Format("chunk frame truncated".into()))
}

// ---- strict decode ----

/// Strict v3 decoder: verifies every frame CRC, the chunk directory, the
/// trailer, and the footer, and rebuilds variables from level-0 chunks.
pub fn from_bytes_v3(full: &[u8]) -> Result<Dataset> {
    if full.len() < 8 + FRAME_OVERHEAD + FOOTER_LEN {
        return Err(CdmsError::Format(format!("truncated v3 file ({} bytes)", full.len())));
    }
    let footer_at = full.len() - FOOTER_LEN;
    let declared_trailer = format::verify_footer(full, footer_at)?;

    let mut pos = 8usize;
    let mut observed: Vec<(u8, u64, u64, u32)> = Vec::new();
    let note = |f: &format::Frame<'_>| {
        (f.kind.as_u8(), f.offset as u64, f.payload.len() as u64, f.crc)
    };

    let header = format::read_frame(full, &mut pos, footer_at)?;
    format::expect_kind(&header, SectionKind::Header)?;
    observed.push(note(&header));
    let (id, attributes, n_axes, n_vars) = format::decode_header(header.payload)?;

    let mut axes = Vec::new();
    for _ in 0..n_axes {
        let frame = format::read_frame(full, &mut pos, footer_at)?;
        format::expect_kind(&frame, SectionKind::Axis)?;
        observed.push(note(&frame));
        axes.push(format::decode_axis_payload(frame.payload)?);
    }

    let mut metas = Vec::with_capacity(n_vars);
    for _ in 0..n_vars {
        let frame = format::read_frame(full, &mut pos, footer_at)?;
        format::expect_kind(&frame, SectionKind::VarMeta)?;
        observed.push(note(&frame));
        metas.push(decode_varmeta_payload(frame.payload, &axes)?);
    }

    // chunk frames, in (var, window, level) order
    let mut chunk_frames: Vec<(ChunkDirEntry, &[u8])> = Vec::new();
    for (vi, meta) in metas.iter().enumerate() {
        for w in 0..meta.n_windows() {
            for l in 0..meta.levels {
                let frame = format::read_frame(full, &mut pos, footer_at)?;
                format::expect_kind(&frame, SectionKind::Chunk)?;
                observed.push(note(&frame));
                chunk_frames.push((
                    ChunkDirEntry {
                        var: vi,
                        window: w,
                        level: l,
                        offset: frame.offset as u64,
                        len: frame.payload.len() as u64,
                        crc: frame.crc,
                    },
                    frame.payload,
                ));
            }
        }
    }

    let chunkdir = format::read_frame(full, &mut pos, footer_at)?;
    format::expect_kind(&chunkdir, SectionKind::ChunkDir)?;
    observed.push(note(&chunkdir));
    let dir_entries = decode_chunkdir_payload(chunkdir.payload)?;
    if dir_entries.len() != chunk_frames.len() {
        return Err(CdmsError::Format(format!(
            "chunk directory lists {} chunks, file has {}",
            dir_entries.len(),
            chunk_frames.len()
        )));
    }
    for (listed, (found, _)) in dir_entries.iter().zip(&chunk_frames) {
        if listed != found {
            return Err(CdmsError::Format(format!(
                "chunk directory disagrees with chunk at byte {}",
                found.offset
            )));
        }
    }

    let trailer_at = pos;
    let trailer = format::read_frame(full, &mut pos, footer_at)?;
    format::expect_kind(&trailer, SectionKind::Trailer)?;
    if pos != footer_at {
        return Err(CdmsError::Format(format!(
            "{} unexpected bytes between trailer and footer",
            footer_at - pos
        )));
    }
    if declared_trailer != trailer_at as u64 {
        return Err(CdmsError::Format(format!(
            "footer points at byte {declared_trailer}, trailer found at {trailer_at}"
        )));
    }
    format::verify_trailer(trailer.payload, &observed)?;

    // Rebuild variables from level-0 chunks; higher levels were already
    // CRC-verified by read_frame, and get a full decode check here too so
    // a corrupt-but-CRC-consistent pyramid cannot hide.
    let mut ds = Dataset::new(&id);
    ds.attributes = attributes;
    let mut cursor = 0usize;
    for (vi, meta) in metas.iter().enumerate() {
        let volume = format::checked_volume(&meta.shape)
            .ok_or_else(|| CdmsError::Format(format!("variable '{}': shape overflows", meta.id)))?;
        let mut data = vec![0.0f32; volume];
        let mut mask = vec![false; volume];
        for w in 0..meta.n_windows() {
            for l in 0..meta.levels {
                let (entry, payload) = chunk_frames
                    .get(cursor)
                    .ok_or_else(|| CdmsError::Format("chunk frames exhausted early".into()))?;
                cursor += 1;
                let n = meta.level_volume(w, l).ok_or_else(|| {
                    CdmsError::Format(format!("variable '{}': level shape overflows", meta.id))
                })?;
                let (cdata, cmask) = decode_chunk_payload(payload, (vi, w, l), n)?;
                if l == 0 {
                    scatter_window(
                        &cdata,
                        &cmask,
                        &mut data,
                        &mut mask,
                        &meta.shape,
                        meta.time_axis,
                        meta.window_range(w),
                    )?;
                }
                let _ = entry;
            }
        }
        let array = MaskedArray::with_mask(data, mask, &meta.shape)?;
        let var_axes: Vec<Axis> = meta
            .axis_refs
            .iter()
            .map(|&r| {
                axes.get(r).cloned().ok_or_else(|| {
                    CdmsError::Format(format!(
                        "variable '{}' references axis {r}, only {} exist",
                        meta.id,
                        axes.len()
                    ))
                })
            })
            .collect::<Result<_>>()?;
        let mut var = Variable::new(&meta.id, array, var_axes)?;
        var.attributes = meta.attributes.clone();
        ds.add_variable(var);
    }
    Ok(ds)
}

/// Copies a window slab (time dim cut to `range`) into the full array.
pub(crate) fn scatter_window(
    slab_data: &[f32],
    slab_mask: &[bool],
    full_data: &mut [f32],
    full_mask: &mut [bool],
    shape: &[usize],
    time_axis: Option<usize>,
    range: Range<usize>,
) -> Result<()> {
    let Some(t) = time_axis else {
        // single-window variable: the slab IS the array
        if slab_data.len() != full_data.len() {
            return Err(CdmsError::Format(format!(
                "window slab has {} elements, variable wants {}",
                slab_data.len(),
                full_data.len()
            )));
        }
        full_data.copy_from_slice(slab_data);
        full_mask.copy_from_slice(slab_mask);
        return Ok(());
    };
    let nt = shape.get(t).copied().unwrap_or(0);
    if range.start >= range.end || range.end > nt {
        return Err(CdmsError::Format(format!("window {range:?} out of range for {nt} steps")));
    }
    let pre: usize = shape.get(..t).map(|s| s.iter().product()).unwrap_or(1);
    let post: usize = shape.get(t + 1..).map(|s| s.iter().product()).unwrap_or(1);
    let wlen = range.len();
    if slab_data.len() != pre * wlen * post {
        return Err(CdmsError::Format(format!(
            "window slab has {} elements, expected {}",
            slab_data.len(),
            pre * wlen * post
        )));
    }
    for p in 0..pre {
        for (k, ti) in range.clone().enumerate() {
            let src = (p * wlen + k) * post;
            let dst = (p * nt + ti) * post;
            let (Some(sd), Some(dd)) =
                (slab_data.get(src..src + post), full_data.get_mut(dst..dst + post))
            else {
                return Err(CdmsError::Format("window scatter out of bounds".into()));
            };
            dd.copy_from_slice(sd);
            let (Some(sm), Some(dm)) =
                (slab_mask.get(src..src + post), full_mask.get_mut(dst..dst + post))
            else {
                return Err(CdmsError::Format("window scatter out of bounds".into()));
            };
            dm.copy_from_slice(sm);
        }
    }
    Ok(())
}

/// Decodes a `VarMeta` payload, deriving the time-axis position.
pub(crate) fn decode_varmeta_payload(payload: &[u8], axes: &[Axis]) -> Result<V3VarMeta> {
    let mut cur = payload;
    let buf = &mut cur;
    let id = format::get_string(buf)?;
    let naxes = format::get_u32(buf)? as usize;
    if naxes > 64 {
        return Err(CdmsError::Format(format!("implausible rank {naxes}")));
    }
    let mut refs = Vec::with_capacity(naxes);
    for _ in 0..naxes {
        refs.push(format::get_u32(buf)? as usize);
    }
    let attributes = format::get_attrs(buf)?;
    let rank = format::get_u32(buf)? as usize;
    if rank != naxes {
        return Err(CdmsError::Format(format!(
            "variable '{id}': rank {rank} != axis count {naxes}"
        )));
    }
    let mut shape = Vec::with_capacity(rank);
    for _ in 0..rank {
        shape.push(format::get_u64(buf)? as usize);
    }
    let window = format::get_u32(buf)? as usize;
    let levels = format::get_u32(buf)? as usize;
    if !buf.is_empty() {
        return Err(CdmsError::Format(format!("varmeta '{id}' payload has trailing bytes")));
    }
    if window == 0 || levels == 0 || levels > 32 {
        return Err(CdmsError::Format(format!(
            "varmeta '{id}': implausible window {window} / levels {levels}"
        )));
    }
    // shape must agree with the referenced axes (when they resolve)
    let time_axis = refs
        .iter()
        .position(|&r| axes.get(r).map(|a| a.kind == AxisKind::Time).unwrap_or(false));
    for (d, &r) in refs.iter().enumerate() {
        if let (Some(ax), Some(&dim)) = (axes.get(r), shape.get(d)) {
            if ax.len() != dim {
                return Err(CdmsError::Format(format!(
                    "variable '{id}': dim {d} is {dim}, axis '{}' has {} points",
                    ax.id,
                    ax.len()
                )));
            }
        }
    }
    Ok(V3VarMeta { id, axis_refs: refs, attributes, shape, window, levels, time_axis })
}

/// Decodes a `ChunkDir` payload into its entries (file order).
pub(crate) fn decode_chunkdir_payload(payload: &[u8]) -> Result<Vec<ChunkDirEntry>> {
    let mut cur = payload;
    let buf = &mut cur;
    let n = format::get_u32(buf)? as usize;
    if n > buf.len() / 32 {
        return Err(CdmsError::Format(format!("implausible chunk count {n}")));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(ChunkDirEntry {
            var: format::get_u32(buf)? as usize,
            window: format::get_u32(buf)? as usize,
            level: format::get_u32(buf)? as usize,
            offset: format::get_u64(buf)?,
            len: format::get_u64(buf)?,
            crc: format::get_u32(buf)?,
        });
    }
    if !buf.is_empty() {
        return Err(CdmsError::Format("chunk directory has trailing bytes".into()));
    }
    Ok(out)
}

// ---- salvage ----

/// Per-chunk best-effort decode: every variable whose metadata and axes
/// survive is rebuilt window by window — full resolution when the level-0
/// chunk is intact, the best intact pyramid level (upsampled) otherwise,
/// and a fully-masked window when every level of a window is gone.
pub fn salvage_v3(full: &[u8]) -> (Dataset, SalvageReport) {
    let (raw, directory_intact) = format::locate_sections(full);
    let mut report = SalvageReport {
        sections_total: raw.len(),
        directory_intact,
        ..SalvageReport::default()
    };

    let mut header: Option<(String, Attributes)> = None;
    let mut axes: Vec<Option<Axis>> = Vec::new();
    // intact payload per varmeta slot, None where the section is corrupt —
    // decoded after the axis list exists (the time axis is derived from it)
    let mut varmeta_slots: Vec<Option<&[u8]>> = Vec::new();
    let mut chunk_payloads: Vec<&[u8]> = Vec::new();
    for s in &raw {
        let Some(payload) = format::verified_payload(full, s) else {
            report.sections_corrupt += 1;
            match s.kind {
                SectionKind::Axis => axes.push(None),
                SectionKind::VarMeta => varmeta_slots.push(None),
                _ => {}
            }
            continue;
        };
        match s.kind {
            SectionKind::Header => {
                if let Ok((id, attrs, _, _)) = format::decode_header(payload) {
                    header = Some((id, attrs));
                } else {
                    report.sections_corrupt += 1;
                }
            }
            SectionKind::Axis => match format::decode_axis_payload(payload) {
                Ok(ax) => axes.push(Some(ax)),
                Err(_) => {
                    report.sections_corrupt += 1;
                    axes.push(None);
                }
            },
            SectionKind::VarMeta => varmeta_slots.push(Some(payload)),
            SectionKind::Chunk => chunk_payloads.push(payload),
            _ => {}
        }
    }
    report.header_intact = header.is_some();
    let (id, attributes) = header.unwrap_or_else(|| (String::new(), Attributes::new()));
    let mut ds = Dataset::new(&id);
    ds.attributes = attributes;

    // Resolve varmetas now that the (possibly holey) axis list exists.
    let resolved_axes: Vec<Axis> = axes
        .iter()
        .map(|a| a.clone().unwrap_or_else(|| Axis::empty("corrupt", "", AxisKind::Generic)))
        .collect();
    let metas: Vec<Option<V3VarMeta>> = varmeta_slots
        .iter()
        .map(|slot| {
            let payload = (*slot)?;
            match decode_varmeta_payload(payload, &resolved_axes) {
                Ok(m) => Some(m),
                Err(_) => {
                    report.sections_corrupt += 1;
                    None
                }
            }
        })
        .collect();

    // Index intact chunks by their self-declared identity triple.
    let mut chunk_index: BTreeMap<(usize, usize, usize), &[u8]> = BTreeMap::new();
    for payload in chunk_payloads {
        let mut cur = payload;
        let buf = &mut cur;
        if let (Ok(v), Ok(w), Ok(l)) =
            (format::get_u32(buf), format::get_u32(buf), format::get_u32(buf))
        {
            chunk_index.insert((v as usize, w as usize, l as usize), payload);
        }
    }

    for (vi, meta) in metas.iter().enumerate() {
        let Some(meta) = meta else {
            report.lost_variables.push(LostVariable {
                id: None,
                section: vi,
                reason: "varmeta section checksum mismatch".into(),
            });
            continue;
        };
        // all referenced axes must be intact
        let mut bad_axis = None;
        for &r in &meta.axis_refs {
            if !matches!(axes.get(r), Some(Some(_))) {
                bad_axis = Some(r);
                break;
            }
        }
        if let Some(r) = bad_axis {
            report.lost_variables.push(LostVariable {
                id: Some(meta.id.clone()),
                section: vi,
                reason: format!("axis section {r} corrupt"),
            });
            continue;
        }
        match salvage_variable_v3(vi, meta, &chunk_index, &resolved_axes, &mut report) {
            Ok(var) => {
                report.recovered_variables.push(var.id.clone());
                ds.add_variable(var);
            }
            Err(reason) => {
                report.lost_variables.push(LostVariable {
                    id: Some(meta.id.clone()),
                    section: vi,
                    reason,
                });
            }
        }
    }
    (ds, report)
}

/// Rebuilds one variable from whatever chunks survive.
fn salvage_variable_v3(
    vi: usize,
    meta: &V3VarMeta,
    chunk_index: &BTreeMap<(usize, usize, usize), &[u8]>,
    axes: &[Axis],
    report: &mut SalvageReport,
) -> std::result::Result<Variable, String> {
    let volume = format::checked_volume(&meta.shape).ok_or("shape overflows")?;
    let mut data = vec![0.0f32; volume];
    let mut mask = vec![true; volume]; // windows with no chunk stay masked
    for w in 0..meta.n_windows() {
        let full_shape = meta.slab_shape(w);
        let mut recovered = None;
        for l in 0..meta.levels {
            let Some(payload) = chunk_index.get(&(vi, w, l)) else { continue };
            let Some(n) = meta.level_volume(w, l) else { continue };
            let Ok((cdata, cmask)) = decode_chunk_payload(payload, (vi, w, l), n) else {
                report.sections_corrupt += 1;
                continue;
            };
            if l == 0 {
                recovered = Some((cdata, cmask));
            } else {
                let from_shape = meta.level_shape(w, l);
                match upsample_nearest(&cdata, &cmask, &from_shape, &full_shape) {
                    Ok(up) => recovered = Some(up),
                    Err(_) => continue,
                }
            }
            break;
        }
        let (cdata, cmask) = match recovered {
            Some(r) => r,
            // every level gone: leave the window masked
            None => continue,
        };
        scatter_window(
            &cdata,
            &cmask,
            &mut data,
            &mut mask,
            &meta.shape,
            meta.time_axis,
            meta.window_range(w),
        )
        .map_err(|e| e.to_string())?;
    }
    let array = MaskedArray::with_mask(data, mask, &meta.shape).map_err(|e| e.to_string())?;
    let var_axes: Vec<Axis> = meta
        .axis_refs
        .iter()
        .map(|&r| axes.get(r).cloned().ok_or_else(|| format!("axis {r} missing")))
        .collect::<std::result::Result<_, _>>()?;
    let mut var = Variable::new(&meta.id, array, var_axes).map_err(|e| e.to_string())?;
    var.attributes = meta.attributes.clone();
    Ok(var)
}

// ---- metadata bootstrap for streaming readers ----

/// Reads only the metadata of a v3 file through ranged reads: footer →
/// trailer → header/axes/varmetas/chunkdir. No chunk payload is touched,
/// so opening a petascale series costs a handful of small reads.
pub fn read_meta_with(storage: &dyn Storage, path: &Path) -> Result<V3Meta> {
    let file_len = storage.len(path)?;
    let min = (8 + FRAME_OVERHEAD + FOOTER_LEN) as u64;
    if file_len < min {
        return Err(CdmsError::Format(format!(
            "{}: truncated v3 file ({file_len} bytes)",
            path.display()
        )));
    }
    let head = storage.read_at(path, 0, 8)?;
    if head.get(..4) != Some(&MAGIC[..]) {
        return Err(CdmsError::Format(format!("{}: bad magic (not an .ncr file)", path.display())));
    }
    let version = head
        .get(4..8)
        .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .ok_or_else(|| CdmsError::Format("short read on magic".into()))?;
    if version != VERSION_V3 {
        return Err(CdmsError::Format(format!(
            "{}: version {version} is not streamable (only v3 has a chunk directory)",
            path.display()
        )));
    }

    let footer_at = file_len - FOOTER_LEN as u64;
    let footer = read_exact_at(storage, path, footer_at, FOOTER_LEN)?;
    let trailer_at = format::verify_footer(&footer, 0)?;
    if trailer_at < 8 || trailer_at >= footer_at {
        return Err(CdmsError::Format(format!(
            "{}: footer points outside the file (byte {trailer_at})",
            path.display()
        )));
    }
    let trailer_bytes =
        read_exact_at(storage, path, trailer_at, (footer_at - trailer_at) as usize)?;
    let mut pos = 0usize;
    let trailer = format::read_frame(&trailer_bytes, &mut pos, trailer_bytes.len())?;
    format::expect_kind(&trailer, SectionKind::Trailer)?;

    // section directory: (kind, offset, len, crc)
    let mut cur = trailer.payload;
    let buf = &mut cur;
    let n = format::get_u32(buf)? as usize;
    if n > buf.len() / 21 {
        return Err(CdmsError::Format("trailer directory truncated".into()));
    }
    let mut header_sec = None;
    let mut axis_secs = Vec::new();
    let mut varmeta_secs = Vec::new();
    let mut chunkdir_sec = None;
    for _ in 0..n {
        let kind = format::get_u8(buf)?;
        let off = format::get_u64(buf)?;
        let len = format::get_u64(buf)?;
        let _crc = format::get_u32(buf)?;
        if off.checked_add(FRAME_OVERHEAD as u64 + len).map(|end| end > footer_at).unwrap_or(true)
        {
            return Err(CdmsError::Format(format!(
                "directory entry at byte {off} overruns the file"
            )));
        }
        match SectionKind::from_u8(kind) {
            Some(SectionKind::Header) => header_sec = Some((off, len)),
            Some(SectionKind::Axis) => axis_secs.push((off, len)),
            Some(SectionKind::VarMeta) => varmeta_secs.push((off, len)),
            Some(SectionKind::ChunkDir) => chunkdir_sec = Some((off, len)),
            _ => {}
        }
    }
    let (hoff, hlen) =
        header_sec.ok_or_else(|| CdmsError::Format("no header section in directory".into()))?;
    let (id, attributes, n_axes, n_vars) =
        format::decode_header(read_section(storage, path, hoff, hlen)?.as_slice())?;
    if axis_secs.len() != n_axes || varmeta_secs.len() != n_vars {
        return Err(CdmsError::Format(format!(
            "{}: header declares {n_axes} axes / {n_vars} variables, directory lists {} / {}",
            path.display(),
            axis_secs.len(),
            varmeta_secs.len()
        )));
    }

    let mut axes = Vec::with_capacity(axis_secs.len());
    for (off, len) in axis_secs {
        axes.push(format::decode_axis_payload(&read_section(storage, path, off, len)?)?);
    }
    let mut vars = Vec::with_capacity(varmeta_secs.len());
    for (off, len) in varmeta_secs {
        vars.push(decode_varmeta_payload(&read_section(storage, path, off, len)?, &axes)?);
    }
    let (coff, clen) = chunkdir_sec
        .ok_or_else(|| CdmsError::Format("no chunk directory section in directory".into()))?;
    let mut chunks = decode_chunkdir_payload(&read_section(storage, path, coff, clen)?)?;
    chunks.sort_by_key(|e| (e.var, e.window, e.level));
    for e in &chunks {
        if e.offset.checked_add(e.frame_len() as u64).map(|end| end > footer_at).unwrap_or(true) {
            return Err(CdmsError::Format(format!(
                "chunk ({},{},{}) overruns the file",
                e.var, e.window, e.level
            )));
        }
    }
    Ok(V3Meta { id, attributes, axes, vars, chunks, file_len })
}

/// Ranged read that treats a short result as corruption (the caller asked
/// for bytes the format says must exist).
pub(crate) fn read_exact_at(
    storage: &dyn Storage,
    path: &Path,
    offset: u64,
    len: usize,
) -> Result<Vec<u8>> {
    let got = storage.read_at(path, offset, len)?;
    if got.len() != len {
        return Err(CdmsError::Format(format!(
            "{}: short read at byte {offset}: got {} of {len} bytes",
            path.display(),
            got.len()
        )));
    }
    Ok(got)
}

/// Reads and CRC-verifies one section frame, returning its payload.
fn read_section(storage: &dyn Storage, path: &Path, offset: u64, len: u64) -> Result<Vec<u8>> {
    let frame = read_exact_at(storage, path, offset, len as usize + FRAME_OVERHEAD)?;
    let mut pos = 0usize;
    let parsed = format::read_frame(&frame, &mut pos, frame.len())?;
    Ok(parsed.payload.to_vec())
}

// ---- file I/O ----

/// Writes a dataset in v3 crash-safely (atomic temp-file + fsync + rename
/// + parent-dir fsync via [`crate::storage::write_atomic`]).
pub fn write_dataset_v3(ds: &Dataset, path: &Path) -> Result<()> {
    write_dataset_v3_with(&LocalDisk, ds, path, &V3Options::default())
}

/// Writes v3 through an explicit backend with explicit options.
pub fn write_dataset_v3_with(
    storage: &dyn Storage,
    ds: &Dataset,
    path: &Path,
    opts: &V3Options,
) -> Result<()> {
    crate::storage::write_atomic(storage, path, &to_bytes_v3_with(ds, opts).0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calendar::Calendar;
    use crate::format::{from_bytes, from_bytes_salvage, to_bytes};
    use crate::synth::SynthesisSpec;

    fn sample() -> Dataset {
        SynthesisSpec::new(6, 2, 8, 12).seed(11).build()
    }

    #[test]
    fn v3_roundtrip_is_bit_exact_with_source() {
        let ds = sample();
        let (bytes, layout) = to_bytes_v3(&ds);
        assert!(!layout.chunks.is_empty());
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.id, ds.id);
        assert_eq!(back.attributes, ds.attributes);
        for var in ds.variables() {
            let b = back.variable(&var.id).unwrap();
            assert_eq!(b.array, var.array, "variable '{}'", var.id);
            assert_eq!(b.axes, var.axes);
            assert_eq!(b.attributes, var.attributes);
        }
    }

    #[test]
    fn v3_matches_v2_decode() {
        let ds = sample();
        let via_v2 = from_bytes(&to_bytes(&ds)).unwrap();
        let via_v3 = from_bytes(&to_bytes_v3(&ds).0).unwrap();
        for var in via_v2.variables() {
            assert_eq!(via_v3.variable(&var.id).unwrap().array, var.array);
        }
    }

    #[test]
    fn chunk_layout_is_complete_and_ordered() {
        let ds = sample();
        let opts = V3Options { window: 2, levels: 3, compress: true };
        let (bytes, layout) = to_bytes_v3_with(&ds, &opts);
        // every chunk span's CRC verifies against the bytes
        for c in &layout.chunks {
            let payload = &bytes[c.payload.clone()];
            let crc_at = c.frame.end - 4;
            let stored = u32::from_le_bytes([
                bytes[crc_at],
                bytes[crc_at + 1],
                bytes[crc_at + 2],
                bytes[crc_at + 3],
            ]);
            assert_eq!(crc32c(payload), stored);
        }
        // (var, window, level) strictly increasing in file order
        let keys: Vec<_> = layout.chunks.iter().map(|c| (c.var, c.window, c.level)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn single_byte_flips_fail_strict_decode() {
        let ds = SynthesisSpec::new(3, 1, 4, 6).seed(3).build();
        let bytes = to_bytes_v3(&ds).0.to_vec();
        for i in (8..bytes.len()).step_by(7) {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            assert!(from_bytes(&corrupt).is_err(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn salvage_degrades_corrupt_level0_to_pyramid() {
        let ds = sample();
        let opts = V3Options { window: 2, levels: 3, compress: true };
        let (bytes, layout) = to_bytes_v3_with(&ds, &opts);
        let mut bytes = bytes.to_vec();
        // kill the level-0 chunk of (var 0, window 1)
        let target = layout
            .chunks
            .iter()
            .find(|c| c.var == 0 && c.window == 1 && c.level == 0)
            .unwrap();
        bytes[target.payload.start + 20] ^= 0xFF;
        assert!(from_bytes(&bytes).is_err());
        let (salvaged, report) = from_bytes_salvage(&bytes).unwrap();
        assert_eq!(report.sections_corrupt, 1, "{report}");
        assert_eq!(report.recovered_variables.len(), ds.variables().len());
        // the damaged window is filled from the pyramid: values exist (not
        // fully masked), but differ from the original at full resolution
        let vid = &ds.variables()[0].id;
        let orig = ds.variable(vid).unwrap();
        let got = salvaged.variable(vid).unwrap();
        assert_eq!(got.array.shape(), orig.array.shape());
        let w1 = got.time_window(2..4).unwrap();
        assert!(w1.array.valid_count() > 0, "pyramid fallback should fill the window");
    }

    #[test]
    fn salvage_masks_window_when_all_levels_die() {
        let ds = sample();
        let opts = V3Options { window: 2, levels: 2, compress: false };
        let (bytes, layout) = to_bytes_v3_with(&ds, &opts);
        let mut bytes = bytes.to_vec();
        for c in layout.chunks.iter().filter(|c| c.var == 0 && c.window == 0) {
            bytes[c.payload.start + 15] ^= 0xFF;
        }
        let (salvaged, report) = from_bytes_salvage(&bytes).unwrap();
        assert!(report.sections_corrupt >= 2, "{report}");
        let vid = &ds.variables()[0].id;
        let got = salvaged.variable(vid).unwrap();
        assert_eq!(got.time_window(0..2).unwrap().array.valid_count(), 0);
        assert_eq!(
            got.time_window(2..6).unwrap().array,
            ds.variable(vid).unwrap().time_window(2..6).unwrap().array,
            "undamaged windows must be bit-exact"
        );
    }

    #[test]
    fn packbits_roundtrips() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![7],
            vec![1, 2, 3, 4, 5],
            vec![0; 1000],
            (0..=255u8).cycle().take(700).collect(),
            [vec![9u8; 200], (0..100u8).collect(), vec![3u8; 5]].concat(),
        ];
        for case in cases {
            let enc = packbits_encode(&case);
            let dec = packbits_decode(&enc, case.len()).unwrap();
            assert_eq!(dec, case);
        }
        // constant input compresses hard
        let enc = packbits_encode(&[0u8; 1000]);
        assert!(enc.len() < 20, "{}", enc.len());
    }

    #[test]
    fn compression_only_kept_when_smaller() {
        // a constant field: RLE wins, and the roundtrip stays exact
        let mut ds = Dataset::new("flat");
        let ax = Axis::new("x", (0..64).map(f64::from).collect(), "m", AxisKind::Generic)
            .unwrap();
        ds.add_variable(
            Variable::new("c", MaskedArray::filled(2.5, &[64]), vec![ax]).unwrap(),
        );
        let (with, _) = to_bytes_v3_with(&ds, &V3Options { compress: true, ..Default::default() });
        let (without, _) =
            to_bytes_v3_with(&ds, &V3Options { compress: false, ..Default::default() });
        assert!(with.len() < without.len());
        assert_eq!(
            from_bytes(&with).unwrap().variable("c").unwrap().array,
            ds.variable("c").unwrap().array
        );
    }

    #[test]
    fn meta_bootstrap_reads_no_chunks() {
        let dir = std::env::temp_dir().join("cdms_v3_meta_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("meta.ncr");
        let ds = sample();
        write_dataset_v3(&ds, &path).unwrap();
        let meta = read_meta_with(&LocalDisk, &path).unwrap();
        assert_eq!(meta.id, ds.id);
        assert_eq!(meta.vars.len(), ds.variables().len());
        let m0 = &meta.vars[0];
        assert_eq!(m0.n_windows(), 6usize.div_ceil(4));
        for e in &meta.chunks {
            assert!(meta.chunk(e.var, e.window, e.level).is_some());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn upsample_nearest_covers_shape() {
        let (data, mask) =
            upsample_nearest(&[1.0, 2.0, 3.0, 4.0], &[false, false, true, false], &[2, 2], &[4, 4])
                .unwrap();
        assert_eq!(data.len(), 16);
        assert_eq!(data[0], 1.0);
        assert_eq!(data[15], 4.0);
        assert!(mask[2 * 4 + 1], "masked source cell propagates");
        assert!(upsample_nearest(&[1.0], &[false], &[1], &[2, 2]).is_err());
    }

    #[test]
    fn downsample_masks_empty_blocks_and_averages_valid() {
        let data = vec![1.0, 3.0, 5.0, 7.0];
        let mask = vec![false, false, true, true];
        let (d, m) = downsample(&data, &mask, &[2, 2], &[0, 1], 1);
        assert_eq!(d.len(), 1);
        assert!(!m[0]);
        assert_eq!(d[0], 2.0, "mean of the two valid cells");
        let (_, m) = downsample(&data, &[true; 4], &[2, 2], &[0, 1], 1);
        assert!(m[0], "block with no valid cells is masked");
    }

    #[test]
    fn scalar_and_no_time_variables_roundtrip() {
        let mut ds = Dataset::new("edge");
        ds.add_variable(Variable::new("s", MaskedArray::filled(1.5, &[]), vec![]).unwrap());
        let lat = Axis::latitude(vec![-10.0, 10.0]).unwrap();
        ds.add_variable(
            Variable::new("g", MaskedArray::filled(4.0, &[2]), vec![lat]).unwrap(),
        );
        let back = from_bytes(&to_bytes_v3(&ds).0).unwrap();
        assert_eq!(back.variable("s").unwrap().array.data(), &[1.5]);
        assert_eq!(back.variable("g").unwrap().array.data(), &[4.0, 4.0]);
    }

    #[test]
    fn time_axis_not_first_roundtrips() {
        // (lat, time) order: windows must scatter through the stride logic
        let time =
            Axis::time(vec![0.0, 1.0, 2.0, 3.0, 4.0], "days since 2000-01-01", Calendar::NoLeap365)
                .unwrap();
        let lat = Axis::latitude(vec![-30.0, 30.0]).unwrap();
        let arr = MaskedArray::from_fn(&[2, 5], |ix| (ix[0] * 10 + ix[1]) as f32);
        let mut ds = Dataset::new("tmid");
        ds.add_variable(Variable::new("v", arr, vec![lat, time]).unwrap());
        let opts = V3Options { window: 2, levels: 2, compress: true };
        let back = from_bytes(&to_bytes_v3_with(&ds, &opts).0).unwrap();
        assert_eq!(back.variable("v").unwrap().array, ds.variable("v").unwrap().array);
    }
}
