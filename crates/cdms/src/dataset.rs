//! Datasets: named collections of variables plus global attributes,
//! the in-memory image of one `.ncr` file.

use crate::attr::{AttValue, Attributes};
use crate::error::{CdmsError, Result};
use crate::variable::Variable;
use std::path::Path;

/// A self-describing dataset (one file's worth of variables).
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Dataset identifier (conventionally the file stem).
    pub id: String,
    /// Variables in insertion order.
    variables: Vec<Variable>,
    /// Global attributes.
    pub attributes: Attributes,
}

impl Dataset {
    /// An empty dataset with the given id.
    pub fn new(id: &str) -> Dataset {
        Dataset { id: id.to_string(), ..Default::default() }
    }

    /// Builder-style global attribute setter.
    pub fn with_attr(mut self, name: &str, value: impl Into<AttValue>) -> Dataset {
        self.attributes.insert(name.to_string(), value.into());
        self
    }

    /// Adds or replaces a variable by id.
    pub fn add_variable(&mut self, var: Variable) {
        if let Some(existing) = self.variables.iter_mut().find(|v| v.id == var.id) {
            *existing = var;
        } else {
            self.variables.push(var);
        }
    }

    /// Looks up a variable by id.
    pub fn variable(&self, id: &str) -> Option<&Variable> {
        self.variables.iter().find(|v| v.id == id)
    }

    /// Looks up a variable by id, as an error-returning accessor.
    pub fn require(&self, id: &str) -> Result<&Variable> {
        self.variable(id)
            .ok_or_else(|| CdmsError::NotFound(format!("variable '{id}' in dataset '{}'", self.id)))
    }

    /// Removes a variable by id, returning it.
    pub fn remove_variable(&mut self, id: &str) -> Option<Variable> {
        let pos = self.variables.iter().position(|v| v.id == id)?;
        Some(self.variables.remove(pos))
    }

    /// All variables, in insertion order.
    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    /// Variable ids, in insertion order.
    pub fn variable_ids(&self) -> Vec<String> {
        self.variables.iter().map(|v| v.id.clone()).collect()
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.variables.len()
    }

    /// True when the dataset holds no variables.
    pub fn is_empty(&self) -> bool {
        self.variables.is_empty()
    }

    /// Writes the dataset to a `.ncr` file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        crate::format::write_dataset(self, path.as_ref())
    }

    /// Reads a dataset from a `.ncr` file.
    pub fn open(path: impl AsRef<Path>) -> Result<Dataset> {
        crate::format::read_dataset(path.as_ref())
    }

    /// Reads a possibly-damaged `.ncr` file with salvage semantics: every
    /// variable whose checksummed sections are intact is recovered, and the
    /// accompanying [`crate::SalvageReport`] says what was lost and why.
    pub fn open_salvage(path: impl AsRef<Path>) -> Result<(Dataset, crate::SalvageReport)> {
        crate::format::read_dataset_salvage(path.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::MaskedArray;
    use crate::axis::Axis;

    fn small_var(id: &str) -> Variable {
        let lat = Axis::latitude(vec![0.0, 10.0]).unwrap();
        Variable::new(id, MaskedArray::filled(1.0, &[2]), vec![lat]).unwrap()
    }

    #[test]
    fn add_lookup_remove() {
        let mut ds = Dataset::new("test").with_attr("institution", "NCCS");
        assert!(ds.is_empty());
        ds.add_variable(small_var("ta"));
        ds.add_variable(small_var("ua"));
        assert_eq!(ds.len(), 2);
        assert!(ds.variable("ta").is_some());
        assert!(ds.require("hus").is_err());
        assert_eq!(ds.variable_ids(), vec!["ta", "ua"]);
        let removed = ds.remove_variable("ta").unwrap();
        assert_eq!(removed.id, "ta");
        assert_eq!(ds.len(), 1);
        assert!(ds.remove_variable("ta").is_none());
    }

    #[test]
    fn add_replaces_same_id() {
        let mut ds = Dataset::new("test");
        ds.add_variable(small_var("ta"));
        let mut v2 = small_var("ta");
        v2.array = MaskedArray::filled(5.0, &[2]);
        ds.add_variable(v2);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.variable("ta").unwrap().array.data()[0], 5.0);
    }
}
