//! Masked n-dimensional arrays — the CDMS "transient variable" payload.
//!
//! [`MaskedArray`] stores row-major `f32` data plus a per-element validity
//! mask (`true` = *masked out*, i.e. missing, matching `numpy.ma` semantics).
//! All arithmetic propagates masks; reductions skip masked elements.

pub mod mask;
mod ops;
mod reduce;
mod slice;

pub use mask::MaskWords;
pub use ops::BinOp;
pub use reduce::Reduction;
pub use slice::SliceSpec;

use crate::error::{CdmsError, Result};

/// Row-major n-dimensional array of `f32` with an element-wise mask.
#[derive(Debug, Clone, PartialEq)]
pub struct MaskedArray {
    data: Vec<f32>,
    /// `true` means the element is masked (missing).
    mask: Vec<bool>,
    shape: Vec<usize>,
}

/// Computes row-major strides for `shape`.
pub(crate) fn strides_for(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

impl MaskedArray {
    /// Creates an array from raw data; no elements are masked.
    ///
    /// Fails if `data.len()` does not match the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        let n: usize = shape.iter().product();
        if data.len() != n {
            return Err(CdmsError::ShapeMismatch {
                expected: vec![n],
                got: vec![data.len()],
            });
        }
        Ok(Self { mask: vec![false; data.len()], data, shape: shape.to_vec() })
    }

    /// Creates an array with an explicit mask.
    pub fn with_mask(data: Vec<f32>, mask: Vec<bool>, shape: &[usize]) -> Result<Self> {
        if data.len() != mask.len() {
            return Err(CdmsError::Invalid("data/mask length mismatch".into()));
        }
        let mut a = Self::from_vec(data, shape)?;
        a.mask = mask;
        Ok(a)
    }

    /// An all-valid array filled with `value`.
    pub fn filled(value: f32, shape: &[usize]) -> Self {
        let n = shape.iter().product();
        Self { data: vec![value; n], mask: vec![false; n], shape: shape.to_vec() }
    }

    /// An all-valid array of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::filled(0.0, shape)
    }

    /// A fully masked array (every element missing).
    pub fn all_masked(shape: &[usize]) -> Self {
        let n = shape.iter().product();
        Self { data: vec![0.0; n], mask: vec![true; n], shape: shape.to_vec() }
    }

    /// Builds an array by evaluating `f` at every multi-index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(&[usize]) -> f32) -> Self {
        let n: usize = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        let mut idx = vec![0usize; shape.len()];
        for _ in 0..n {
            data.push(f(&idx));
            // increment multi-index, last axis fastest
            for ax in (0..shape.len()).rev() {
                idx[ax] += 1;
                if idx[ax] < shape[ax] {
                    break;
                }
                idx[ax] = 0;
            }
        }
        Self { mask: vec![false; n], data, shape: shape.to_vec() }
    }

    /// Decodes `data` against a fill value: elements equal to (or within
    /// `1e-6` relative of) `fill` become masked. This is how variables with a
    /// `missing_value` attribute materialize their mask.
    pub fn from_filled_data(data: Vec<f32>, shape: &[usize], fill: f32) -> Result<Self> {
        let tol = fill.abs().max(1.0) * 1e-6;
        let mask = data.iter().map(|&v| (v - fill).abs() <= tol || v.is_nan()).collect();
        Self::with_mask(data, mask, shape)
    }

    /// The array's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements (valid + masked).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major strides.
    pub fn strides(&self) -> Vec<usize> {
        strides_for(&self.shape)
    }

    /// Raw data slice (masked positions contain unspecified values).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Mask slice (`true` = masked).
    pub fn mask(&self) -> &[bool] {
        &self.mask
    }

    /// Mutable mask slice.
    pub fn mask_mut(&mut self) -> &mut [bool] {
        &mut self.mask
    }

    /// Mutable data and mask slices together — the borrow splitter the
    /// in-place parallel kernels need (`data_mut`/`mask_mut` can't be held
    /// at once).
    pub fn parts_mut(&mut self) -> (&mut [f32], &mut [bool]) {
        (&mut self.data, &mut self.mask)
    }

    /// The mask bit-packed into `u64` words (bit set = masked) — the
    /// representation the fused kernels in `cdat::expr` consume. Packing is
    /// one linear pass; see `array::mask` for why the `Vec<bool>` stays the
    /// canonical storage behind the public API.
    pub fn mask_words(&self) -> MaskWords {
        MaskWords::from_bools(&self.mask)
    }

    /// Builds an array from data plus a bit-packed mask.
    pub fn with_mask_words(data: Vec<f32>, words: &MaskWords, shape: &[usize]) -> Result<Self> {
        if data.len() != words.len() {
            return Err(CdmsError::Invalid("data/mask length mismatch".into()));
        }
        Self::with_mask(data, words.to_bools(), shape)
    }

    /// Flat offset of a multi-index.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.rank() {
            return Err(CdmsError::ShapeMismatch {
                expected: self.shape.clone(),
                got: index.to_vec(),
            });
        }
        let mut off = 0usize;
        let strides = self.strides();
        for (ax, (&i, &s)) in index.iter().zip(&strides).enumerate() {
            if i >= self.shape[ax] {
                return Err(CdmsError::AxisOutOfRange { axis: ax, rank: self.shape[ax] });
            }
            off += i * s;
        }
        Ok(off)
    }

    /// Element at `index` regardless of mask state.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.offset(index)?])
    }

    /// Element at `index`, or `None` if masked.
    pub fn get_valid(&self, index: &[usize]) -> Result<Option<f32>> {
        let off = self.offset(index)?;
        Ok(if self.mask[off] { None } else { Some(self.data[off]) })
    }

    /// Sets the element at `index` and marks it valid.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.offset(index)?;
        self.data[off] = value;
        self.mask[off] = false;
        Ok(())
    }

    /// Masks out the element at `index`.
    pub fn mask_at(&mut self, index: &[usize]) -> Result<()> {
        let off = self.offset(index)?;
        self.mask[off] = true;
        Ok(())
    }

    /// Number of valid (unmasked) elements.
    pub fn valid_count(&self) -> usize {
        self.mask.iter().filter(|&&m| !m).count()
    }

    /// Fraction of elements that are valid, in `[0, 1]`. Empty arrays are 0.
    pub fn valid_fraction(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.valid_count() as f64 / self.len() as f64
        }
    }

    /// Returns the data with masked elements replaced by `fill`.
    pub fn to_filled(&self, fill: f32) -> Vec<f32> {
        self.data
            .iter()
            .zip(&self.mask)
            .map(|(&v, &m)| if m { fill } else { v })
            .collect()
    }

    /// Iterator over `(flat_index, value)` of valid elements.
    pub fn iter_valid(&self) -> impl Iterator<Item = (usize, f32)> + '_ {
        self.data
            .iter()
            .zip(&self.mask)
            .enumerate()
            .filter_map(|(i, (&v, &m))| if m { None } else { Some((i, v)) })
    }

    /// Minimum and maximum over valid elements, or `None` if fully masked.
    pub fn min_max(&self) -> Option<(f32, f32)> {
        let mut it = self.iter_valid().map(|(_, v)| v);
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for v in it {
            if v < lo {
                lo = v;
            }
            if v > hi {
                hi = v;
            }
        }
        Some((lo, hi))
    }

    /// Reinterprets the array with a new shape of identical element count.
    pub fn reshape(&self, shape: &[usize]) -> Result<Self> {
        let n: usize = shape.iter().product();
        if n != self.len() {
            return Err(CdmsError::ShapeMismatch {
                expected: self.shape.clone(),
                got: shape.to_vec(),
            });
        }
        Ok(Self { data: self.data.clone(), mask: self.mask.clone(), shape: shape.to_vec() })
    }

    /// Removes all length-1 dimensions (keeps at least rank 1).
    pub fn squeeze(&self) -> Self {
        let mut shape: Vec<usize> = self.shape.iter().copied().filter(|&d| d != 1).collect();
        if shape.is_empty() {
            shape.push(1);
        }
        Self { data: self.data.clone(), mask: self.mask.clone(), shape }
    }

    /// Permutes axes: `perm[i]` is the source axis of destination axis `i`.
    pub fn transpose(&self, perm: &[usize]) -> Result<Self> {
        if perm.len() != self.rank() {
            return Err(CdmsError::Invalid(format!(
                "permutation length {} != rank {}",
                perm.len(),
                self.rank()
            )));
        }
        let mut seen = vec![false; self.rank()];
        for &p in perm {
            if p >= self.rank() || seen[p] {
                return Err(CdmsError::Invalid(format!("bad permutation {perm:?}")));
            }
            seen[p] = true;
        }
        let new_shape: Vec<usize> = perm.iter().map(|&p| self.shape[p]).collect();
        let src_strides = self.strides();
        let n = self.len();
        let mut data = vec![0.0f32; n];
        let mut mask = vec![false; n];
        let mut idx = vec![0usize; new_shape.len()];
        for flat in 0..n {
            let mut src = 0usize;
            for (dst_ax, &src_ax) in perm.iter().enumerate() {
                src += idx[dst_ax] * src_strides[src_ax];
            }
            data[flat] = self.data[src];
            mask[flat] = self.mask[src];
            for ax in (0..new_shape.len()).rev() {
                idx[ax] += 1;
                if idx[ax] < new_shape[ax] {
                    break;
                }
                idx[ax] = 0;
            }
        }
        Ok(Self { data, mask, shape: new_shape })
    }

    /// Concatenates arrays along `axis`. All other dimensions must agree.
    pub fn concat(parts: &[&MaskedArray], axis: usize) -> Result<Self> {
        let first = parts.first().ok_or_else(|| CdmsError::Invalid("concat of nothing".into()))?;
        let rank = first.rank();
        if axis >= rank {
            return Err(CdmsError::AxisOutOfRange { axis, rank });
        }
        let mut out_shape = first.shape.clone();
        let mut total = 0usize;
        for p in parts {
            if p.rank() != rank {
                return Err(CdmsError::ShapeMismatch {
                    expected: first.shape.clone(),
                    got: p.shape.clone(),
                });
            }
            for ax in 0..rank {
                if ax != axis && p.shape[ax] != first.shape[ax] {
                    return Err(CdmsError::ShapeMismatch {
                        expected: first.shape.clone(),
                        got: p.shape.clone(),
                    });
                }
            }
            total += p.shape[axis];
        }
        out_shape[axis] = total;

        let outer: usize = out_shape[..axis].iter().product();
        let inner: usize = out_shape[axis + 1..].iter().product();
        let n: usize = out_shape.iter().product();
        let mut data = Vec::with_capacity(n);
        let mut mask = Vec::with_capacity(n);
        for o in 0..outer {
            for p in parts {
                let k = p.shape[axis];
                let start = o * k * inner;
                data.extend_from_slice(&p.data[start..start + k * inner]);
                mask.extend_from_slice(&p.mask[start..start + k * inner]);
            }
        }
        Ok(Self { data, mask, shape: out_shape })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arange(shape: &[usize]) -> MaskedArray {
        let n: usize = shape.iter().product();
        MaskedArray::from_vec((0..n).map(|i| i as f32).collect(), shape).unwrap()
    }

    #[test]
    fn construction_and_indexing() {
        let a = arange(&[2, 3]);
        assert_eq!(a.shape(), &[2, 3]);
        assert_eq!(a.get(&[0, 0]).unwrap(), 0.0);
        assert_eq!(a.get(&[1, 2]).unwrap(), 5.0);
        assert_eq!(a.strides(), vec![3, 1]);
        assert!(a.get(&[2, 0]).is_err());
        assert!(a.get(&[0]).is_err());
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(MaskedArray::from_vec(vec![1.0; 5], &[2, 3]).is_err());
    }

    #[test]
    fn mask_operations() {
        let mut a = arange(&[2, 2]);
        assert_eq!(a.valid_count(), 4);
        a.mask_at(&[0, 1]).unwrap();
        assert_eq!(a.valid_count(), 3);
        assert_eq!(a.get_valid(&[0, 1]).unwrap(), None);
        a.set(&[0, 1], 9.0).unwrap();
        assert_eq!(a.get_valid(&[0, 1]).unwrap(), Some(9.0));
    }

    #[test]
    fn from_filled_data_detects_missing() {
        let a = MaskedArray::from_filled_data(vec![1.0, 1e20, 2.0, f32::NAN], &[4], 1e20).unwrap();
        assert_eq!(a.mask(), &[false, true, false, true]);
        assert_eq!(a.valid_count(), 2);
    }

    #[test]
    fn to_filled_replaces_masked() {
        let a = MaskedArray::with_mask(vec![1.0, 2.0], vec![false, true], &[2]).unwrap();
        assert_eq!(a.to_filled(-9.0), vec![1.0, -9.0]);
    }

    #[test]
    fn from_fn_row_major_order() {
        let a = MaskedArray::from_fn(&[2, 3], |ix| (ix[0] * 10 + ix[1]) as f32);
        assert_eq!(a.data(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn min_max_skips_masked() {
        let a =
            MaskedArray::with_mask(vec![5.0, -1.0, 100.0], vec![false, false, true], &[3]).unwrap();
        assert_eq!(a.min_max(), Some((-1.0, 5.0)));
        assert_eq!(MaskedArray::all_masked(&[3]).min_max(), None);
    }

    #[test]
    fn reshape_and_squeeze() {
        let a = arange(&[2, 3]);
        let b = a.reshape(&[3, 2]).unwrap();
        assert_eq!(b.get(&[1, 1]).unwrap(), 3.0);
        assert!(a.reshape(&[4]).is_err());
        let c = arange(&[1, 3, 1]).squeeze();
        assert_eq!(c.shape(), &[3]);
        let d = MaskedArray::filled(1.0, &[1, 1]).squeeze();
        assert_eq!(d.shape(), &[1]);
    }

    #[test]
    fn transpose_2d() {
        let a = arange(&[2, 3]);
        let t = a.transpose(&[1, 0]).unwrap();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.get(&[2, 1]).unwrap(), a.get(&[1, 2]).unwrap());
        assert!(a.transpose(&[0, 0]).is_err());
        assert!(a.transpose(&[0]).is_err());
    }

    #[test]
    fn transpose_3d_preserves_mask() {
        let mut a = arange(&[2, 3, 4]);
        a.mask_at(&[1, 2, 3]).unwrap();
        let t = a.transpose(&[2, 0, 1]).unwrap();
        assert_eq!(t.shape(), &[4, 2, 3]);
        assert_eq!(t.get_valid(&[3, 1, 2]).unwrap(), None);
        assert_eq!(t.get(&[0, 1, 1]).unwrap(), a.get(&[1, 1, 0]).unwrap());
    }

    #[test]
    fn concat_along_each_axis() {
        let a = arange(&[2, 2]);
        let b = MaskedArray::filled(9.0, &[2, 2]);
        let c0 = MaskedArray::concat(&[&a, &b], 0).unwrap();
        assert_eq!(c0.shape(), &[4, 2]);
        assert_eq!(c0.get(&[2, 0]).unwrap(), 9.0);
        let c1 = MaskedArray::concat(&[&a, &b], 1).unwrap();
        assert_eq!(c1.shape(), &[2, 4]);
        assert_eq!(c1.get(&[0, 2]).unwrap(), 9.0);
        assert_eq!(c1.get(&[1, 1]).unwrap(), 3.0);
    }

    #[test]
    fn concat_shape_errors() {
        let a = arange(&[2, 2]);
        let b = arange(&[2, 3]);
        assert!(MaskedArray::concat(&[&a, &b], 0).is_err());
        assert!(MaskedArray::concat(&[&a, &b], 2).is_err());
        assert!(MaskedArray::concat(&[], 0).is_err());
    }
}
