//! Index-space slicing: per-axis `start..stop (step)` selections producing
//! owned sub-arrays, the index-level half of CDMS subsetting (the
//! coordinate-level half lives on [`crate::Variable`]).

use super::MaskedArray;
use crate::error::{CdmsError, Result};

/// A per-axis slice specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceSpec {
    /// First index, inclusive.
    pub start: usize,
    /// Last index, exclusive.
    pub stop: usize,
    /// Stride; must be ≥ 1.
    pub step: usize,
}

impl SliceSpec {
    /// A full-axis slice for an axis of length `n`.
    pub fn all(n: usize) -> Self {
        SliceSpec { start: 0, stop: n, step: 1 }
    }

    /// A contiguous range `[start, stop)`.
    pub fn range(start: usize, stop: usize) -> Self {
        SliceSpec { start, stop, step: 1 }
    }

    /// A single-index slice (keeps the axis with length 1).
    pub fn at(i: usize) -> Self {
        SliceSpec { start: i, stop: i + 1, step: 1 }
    }

    /// Number of indices selected.
    pub fn len(&self) -> usize {
        if self.stop <= self.start || self.step == 0 {
            0
        } else {
            (self.stop - self.start).div_ceil(self.step)
        }
    }

    /// True when the selection is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The selected indices.
    pub fn indices(&self) -> impl Iterator<Item = usize> + '_ {
        (self.start..self.stop).step_by(self.step.max(1))
    }
}

impl MaskedArray {
    /// Extracts a sub-array: one [`SliceSpec`] per axis.
    pub fn slice(&self, specs: &[SliceSpec]) -> Result<MaskedArray> {
        if specs.len() != self.rank() {
            return Err(CdmsError::Invalid(format!(
                "need {} slice specs, got {}",
                self.rank(),
                specs.len()
            )));
        }
        for (ax, s) in specs.iter().enumerate() {
            if s.step == 0 {
                return Err(CdmsError::Invalid(format!("zero step on axis {ax}")));
            }
            if s.stop > self.shape()[ax] {
                return Err(CdmsError::AxisOutOfRange { axis: ax, rank: self.shape()[ax] });
            }
            if s.is_empty() {
                return Err(CdmsError::EmptySelection(format!(
                    "axis {ax}: {}..{} step {}",
                    s.start, s.stop, s.step
                )));
            }
        }
        let out_shape: Vec<usize> = specs.iter().map(|s| s.len()).collect();
        let n: usize = out_shape.iter().product();
        let strides = self.strides();
        let mut data = Vec::with_capacity(n);
        let mut mask = Vec::with_capacity(n);
        let mut idx = vec![0usize; out_shape.len()];
        for _ in 0..n {
            let mut src = 0usize;
            for ax in 0..out_shape.len() {
                src += (specs[ax].start + idx[ax] * specs[ax].step) * strides[ax];
            }
            data.push(self.data()[src]);
            mask.push(self.mask()[src]);
            for ax in (0..out_shape.len()).rev() {
                idx[ax] += 1;
                if idx[ax] < out_shape[ax] {
                    break;
                }
                idx[ax] = 0;
            }
        }
        MaskedArray::with_mask(data, mask, &out_shape)
    }

    /// Extracts the `i`-th hyperslab along `axis`, dropping that axis.
    /// E.g. `take(0, t)` pulls timestep `t` out of a `(time, lev, lat, lon)`
    /// variable as a `(lev, lat, lon)` array.
    pub fn take(&self, axis: usize, i: usize) -> Result<MaskedArray> {
        if axis >= self.rank() {
            return Err(CdmsError::AxisOutOfRange { axis, rank: self.rank() });
        }
        let mut specs: Vec<SliceSpec> =
            self.shape().iter().map(|&n| SliceSpec::all(n)).collect();
        specs[axis] = SliceSpec::at(i);
        let sliced = self.slice(&specs)?;
        let mut shape = self.shape().to_vec();
        shape.remove(axis);
        if shape.is_empty() {
            shape.push(1);
        }
        sliced.reshape(&shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arange(shape: &[usize]) -> MaskedArray {
        let n: usize = shape.iter().product();
        MaskedArray::from_vec((0..n).map(|i| i as f32).collect(), shape).unwrap()
    }

    #[test]
    fn spec_len_and_indices() {
        let s = SliceSpec { start: 1, stop: 8, step: 3 };
        assert_eq!(s.len(), 3);
        assert_eq!(s.indices().collect::<Vec<_>>(), vec![1, 4, 7]);
        assert_eq!(SliceSpec::at(2).len(), 1);
        assert!(SliceSpec::range(3, 3).is_empty());
    }

    #[test]
    fn contiguous_slice() {
        let a = arange(&[3, 4]);
        let b = a.slice(&[SliceSpec::range(1, 3), SliceSpec::range(0, 2)]).unwrap();
        assert_eq!(b.shape(), &[2, 2]);
        assert_eq!(b.data(), &[4.0, 5.0, 8.0, 9.0]);
    }

    #[test]
    fn strided_slice() {
        let a = arange(&[6]);
        let b = a.slice(&[SliceSpec { start: 0, stop: 6, step: 2 }]).unwrap();
        assert_eq!(b.data(), &[0.0, 2.0, 4.0]);
    }

    #[test]
    fn slice_preserves_mask() {
        let mut a = arange(&[2, 2]);
        a.mask_at(&[1, 0]).unwrap();
        let b = a.slice(&[SliceSpec::at(1), SliceSpec::all(2)]).unwrap();
        assert_eq!(b.get_valid(&[0, 0]).unwrap(), None);
        assert_eq!(b.get_valid(&[0, 1]).unwrap(), Some(3.0));
    }

    #[test]
    fn slice_errors() {
        let a = arange(&[2, 2]);
        assert!(a.slice(&[SliceSpec::all(2)]).is_err()); // wrong arity
        assert!(a.slice(&[SliceSpec::range(0, 3), SliceSpec::all(2)]).is_err()); // overrun
        assert!(a
            .slice(&[SliceSpec { start: 0, stop: 2, step: 0 }, SliceSpec::all(2)])
            .is_err()); // zero step
        assert!(a.slice(&[SliceSpec::range(1, 1), SliceSpec::all(2)]).is_err()); // empty
    }

    #[test]
    fn take_drops_axis() {
        let a = arange(&[2, 3, 4]);
        let t = a.take(0, 1).unwrap();
        assert_eq!(t.shape(), &[3, 4]);
        assert_eq!(t.get(&[0, 0]).unwrap(), 12.0);
        let l = a.take(1, 2).unwrap();
        assert_eq!(l.shape(), &[2, 4]);
        assert_eq!(l.get(&[0, 0]).unwrap(), 8.0);
        assert!(a.take(3, 0).is_err());
    }

    #[test]
    fn take_on_1d_keeps_rank_1() {
        let a = arange(&[3]);
        let t = a.take(0, 2).unwrap();
        assert_eq!(t.shape(), &[1]);
        assert_eq!(t.data(), &[2.0]);
    }
}
