//! Element-wise arithmetic with numpy-style broadcasting and mask
//! propagation: an output element is masked wherever *either* operand is.

use super::{strides_for, MaskedArray};
use crate::error::{CdmsError, Result};

/// The binary operations supported by [`MaskedArray::binop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Min,
    Max,
}

impl BinOp {
    /// Applies the operation to a pair of scalars.
    ///
    /// Division by zero yields a NaN which callers mask via
    /// [`MaskedArray::mask_invalid`].
    pub fn apply(self, a: f32, b: f32) -> f32 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => {
                if b == 0.0 {
                    f32::NAN
                } else {
                    a / b
                }
            }
            BinOp::Pow => a.powf(b),
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
        }
    }
}

/// Computes the broadcast shape of two shapes, numpy rules: align trailing
/// axes; a dimension broadcasts if equal or one side is 1.
pub fn broadcast_shape(a: &[usize], b: &[usize]) -> Result<Vec<usize>> {
    let rank = a.len().max(b.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let da = if i < rank - a.len() { 1 } else { a[i - (rank - a.len())] };
        let db = if i < rank - b.len() { 1 } else { b[i - (rank - b.len())] };
        out[i] = if da == db {
            da
        } else if da == 1 {
            db
        } else if db == 1 {
            da
        } else {
            return Err(CdmsError::ShapeMismatch { expected: a.to_vec(), got: b.to_vec() });
        };
    }
    Ok(out)
}

/// Broadcast-aware strides: stride 0 for broadcast (size-1 or missing) axes.
fn broadcast_strides(shape: &[usize], out_rank: usize) -> Vec<usize> {
    let strides = strides_for(shape);
    let mut out = vec![0usize; out_rank];
    let offset = out_rank - shape.len();
    for (i, (&d, &s)) in shape.iter().zip(&strides).enumerate() {
        out[offset + i] = if d == 1 { 0 } else { s };
    }
    out
}

impl MaskedArray {
    /// Element-wise binary operation with broadcasting and mask propagation.
    pub fn binop(&self, other: &MaskedArray, op: BinOp) -> Result<MaskedArray> {
        // Fast path: identical shapes.
        if self.shape() == other.shape() {
            let n = self.len();
            let mut data = Vec::with_capacity(n);
            let mut mask = Vec::with_capacity(n);
            for i in 0..n {
                let m = self.mask()[i] || other.mask()[i];
                let v = if m { 0.0 } else { op.apply(self.data()[i], other.data()[i]) };
                mask.push(m || v.is_nan());
                data.push(if v.is_nan() { 0.0 } else { v });
            }
            return MaskedArray::with_mask(data, mask, self.shape());
        }

        let out_shape = broadcast_shape(self.shape(), other.shape())?;
        let sa = broadcast_strides(self.shape(), out_shape.len());
        let sb = broadcast_strides(other.shape(), out_shape.len());
        let n: usize = out_shape.iter().product();
        let mut data = Vec::with_capacity(n);
        let mut mask = Vec::with_capacity(n);
        let mut idx = vec![0usize; out_shape.len()];
        for _ in 0..n {
            let (mut oa, mut ob) = (0usize, 0usize);
            for ax in 0..out_shape.len() {
                oa += idx[ax] * sa[ax];
                ob += idx[ax] * sb[ax];
            }
            let m = self.mask()[oa] || other.mask()[ob];
            let v = if m { 0.0 } else { op.apply(self.data()[oa], other.data()[ob]) };
            mask.push(m || v.is_nan());
            data.push(if v.is_nan() { 0.0 } else { v });
            for ax in (0..out_shape.len()).rev() {
                idx[ax] += 1;
                if idx[ax] < out_shape[ax] {
                    break;
                }
                idx[ax] = 0;
            }
        }
        MaskedArray::with_mask(data, mask, &out_shape)
    }

    /// `self + other` with broadcasting.
    pub fn add(&self, other: &MaskedArray) -> Result<MaskedArray> {
        self.binop(other, BinOp::Add)
    }
    /// `self - other` with broadcasting.
    pub fn sub(&self, other: &MaskedArray) -> Result<MaskedArray> {
        self.binop(other, BinOp::Sub)
    }
    /// `self * other` with broadcasting.
    pub fn mul(&self, other: &MaskedArray) -> Result<MaskedArray> {
        self.binop(other, BinOp::Mul)
    }
    /// `self / other` with broadcasting; division by zero masks the result.
    pub fn div(&self, other: &MaskedArray) -> Result<MaskedArray> {
        self.binop(other, BinOp::Div)
    }

    /// Applies a unary function to every valid element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> MaskedArray {
        let mut out = self.clone();
        for i in 0..out.len() {
            if !out.mask()[i] {
                let v = f(out.data()[i]);
                if v.is_nan() || v.is_infinite() {
                    out.mask_mut()[i] = true;
                } else {
                    out.data_mut()[i] = v;
                }
            }
        }
        out
    }

    /// Adds a scalar to every valid element.
    pub fn add_scalar(&self, s: f32) -> MaskedArray {
        self.map(|v| v + s)
    }

    /// Multiplies every valid element by a scalar.
    pub fn mul_scalar(&self, s: f32) -> MaskedArray {
        self.map(|v| v * s)
    }

    /// Masks any NaN/inf data elements in place and returns the count masked.
    pub fn mask_invalid(&mut self) -> usize {
        let mut n = 0;
        for i in 0..self.len() {
            if !self.mask()[i] && !self.data()[i].is_finite() {
                self.mask_mut()[i] = true;
                n += 1;
            }
        }
        n
    }

    /// Masks elements where `pred(value)` holds (CDMS `masked_where`).
    pub fn mask_where(&self, pred: impl Fn(f32) -> bool) -> MaskedArray {
        let mut out = self.clone();
        for i in 0..out.len() {
            if !out.mask()[i] && pred(out.data()[i]) {
                out.mask_mut()[i] = true;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a2x3() -> MaskedArray {
        MaskedArray::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]).unwrap()
    }

    #[test]
    fn same_shape_add() {
        let a = a2x3();
        let b = MaskedArray::filled(10.0, &[2, 3]);
        let c = a.add(&b).unwrap();
        assert_eq!(c.data(), &[10.0, 11.0, 12.0, 13.0, 14.0, 15.0]);
    }

    #[test]
    fn mask_propagates_through_binop() {
        let mut a = a2x3();
        a.mask_at(&[0, 1]).unwrap();
        let mut b = MaskedArray::filled(1.0, &[2, 3]);
        b.mask_at(&[1, 2]).unwrap();
        let c = a.add(&b).unwrap();
        assert_eq!(c.get_valid(&[0, 1]).unwrap(), None);
        assert_eq!(c.get_valid(&[1, 2]).unwrap(), None);
        assert_eq!(c.valid_count(), 4);
    }

    #[test]
    fn broadcast_row_across_matrix() {
        let a = a2x3();
        let row = MaskedArray::from_vec(vec![100.0, 200.0, 300.0], &[3]).unwrap();
        let c = a.add(&row).unwrap();
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.get(&[1, 2]).unwrap(), 305.0);
    }

    #[test]
    fn broadcast_column_via_size_one_axis() {
        let a = a2x3();
        let col = MaskedArray::from_vec(vec![10.0, 20.0], &[2, 1]).unwrap();
        let c = a.add(&col).unwrap();
        assert_eq!(c.get(&[0, 0]).unwrap(), 10.0);
        assert_eq!(c.get(&[1, 0]).unwrap(), 23.0);
    }

    #[test]
    fn incompatible_shapes_error() {
        let a = a2x3();
        let b = MaskedArray::filled(0.0, &[2, 4]);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn broadcast_shape_rules() {
        assert_eq!(broadcast_shape(&[2, 3], &[3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shape(&[2, 1], &[1, 5]).unwrap(), vec![2, 5]);
        assert_eq!(broadcast_shape(&[4], &[4]).unwrap(), vec![4]);
        assert!(broadcast_shape(&[2, 3], &[2, 4]).is_err());
    }

    #[test]
    fn division_by_zero_masks() {
        let a = MaskedArray::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = MaskedArray::from_vec(vec![0.0, 2.0], &[2]).unwrap();
        let c = a.div(&b).unwrap();
        assert_eq!(c.get_valid(&[0]).unwrap(), None);
        assert_eq!(c.get_valid(&[1]).unwrap(), Some(1.0));
    }

    #[test]
    fn map_masks_non_finite_results() {
        let a = MaskedArray::from_vec(vec![-1.0, 4.0], &[2]).unwrap();
        let b = a.map(|v| v.sqrt());
        assert_eq!(b.get_valid(&[0]).unwrap(), None);
        assert_eq!(b.get_valid(&[1]).unwrap(), Some(2.0));
    }

    #[test]
    fn mask_where_thresholds() {
        let a = a2x3();
        let b = a.mask_where(|v| v > 3.0);
        assert_eq!(b.valid_count(), 4);
    }

    #[test]
    fn scalar_ops() {
        let a = a2x3();
        assert_eq!(a.add_scalar(1.0).get(&[0, 0]).unwrap(), 1.0);
        assert_eq!(a.mul_scalar(2.0).get(&[1, 2]).unwrap(), 10.0);
    }

    #[test]
    fn binop_min_max_pow() {
        let a = MaskedArray::from_vec(vec![2.0, 5.0], &[2]).unwrap();
        let b = MaskedArray::from_vec(vec![3.0, 3.0], &[2]).unwrap();
        assert_eq!(a.binop(&b, BinOp::Min).unwrap().data(), &[2.0, 3.0]);
        assert_eq!(a.binop(&b, BinOp::Max).unwrap().data(), &[3.0, 5.0]);
        assert_eq!(a.binop(&b, BinOp::Pow).unwrap().data(), &[8.0, 125.0]);
    }

    #[test]
    fn mask_invalid_counts() {
        let mut a = MaskedArray::from_vec(vec![1.0, f32::NAN, f32::INFINITY], &[3]).unwrap();
        assert_eq!(a.mask_invalid(), 2);
        assert_eq!(a.valid_count(), 1);
    }
}
