//! Bit-packed validity masks: 64 lanes per `u64` word.
//!
//! [`MaskedArray`](super::MaskedArray) keeps its public `&[bool]` mask API —
//! every consumer in the workspace borrows it — but the fused analysis
//! kernels in `cdat::expr` operate on *words*: mask propagation for a binary
//! op over 64 elements is a single `OR`, and a zero word proves the whole
//! lane group valid so the `f32` inner loop can skip per-element mask
//! branches entirely. [`MaskWords`] is that kernel-side currency, plus the
//! free functions [`pack_into`]/[`unpack_into`] for converting chunk-sized
//! windows without an owned allocation.
//!
//! Bit convention matches the `Vec<bool>` mask: bit `i % 64` of word
//! `i / 64` is **1 when element `i` is masked** (missing). Tail bits past
//! `len` are kept at 0 (valid) so popcounts and word-OR over full words stay
//! honest.

/// Number of mask lanes carried per packed word.
pub const LANES: usize = 64;

/// An owned bit-packed mask: bit set ⇒ element masked (missing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskWords {
    words: Vec<u64>,
    len: usize,
}

impl MaskWords {
    /// An all-valid mask of `len` lanes.
    pub fn none(len: usize) -> Self {
        Self { words: vec![0u64; len.div_ceil(LANES)], len }
    }

    /// A fully masked mask of `len` lanes (tail bits stay 0).
    pub fn all(len: usize) -> Self {
        let mut m = Self::none(len);
        for (i, w) in m.words.iter_mut().enumerate() {
            *w = tail_mask(len, i);
        }
        m
    }

    /// Packs a `&[bool]` mask (true = masked) into words.
    pub fn from_bools(mask: &[bool]) -> Self {
        let mut m = Self::none(mask.len());
        pack_into(mask, &mut m.words);
        m
    }

    /// Expands back to the `Vec<bool>` representation.
    pub fn to_bools(&self) -> Vec<bool> {
        let mut out = vec![false; self.len];
        unpack_into(&self.words, &mut out);
        out
    }

    /// Number of lanes (elements), not words.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mask covers zero lanes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed words, least-significant bit = lowest flat index.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable packed words. Callers must keep tail bits at 0.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Whether lane `i` is masked; out-of-range lanes read as valid.
    pub fn get(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        let w = self.words.get(i / LANES).copied().unwrap_or_default();
        (w >> (i % LANES)) & 1 == 1
    }

    /// Sets lane `i` (no-op out of range).
    pub fn set(&mut self, i: usize, masked: bool) {
        if i >= self.len {
            return;
        }
        if let Some(w) = self.words.get_mut(i / LANES) {
            let bit = 1u64 << (i % LANES);
            if masked {
                *w |= bit;
            } else {
                *w &= !bit;
            }
        }
    }

    /// Word-wise `self |= other`: union of missing lanes — the mask rule for
    /// every binary elementwise op. Lengths must match.
    pub fn or_assign(&mut self, other: &MaskWords) {
        debug_assert_eq!(self.len, other.len);
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Word-wise `self &= other`: intersection of missing lanes.
    pub fn and_assign(&mut self, other: &MaskWords) {
        debug_assert_eq!(self.len, other.len);
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }

    /// Number of masked lanes (popcount over words; tail bits are 0).
    pub fn count_masked(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of valid lanes.
    pub fn count_valid(&self) -> usize {
        self.len - self.count_masked()
    }

    /// True when no lane is masked — one branch per 64 elements.
    pub fn all_valid(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

/// A word whose low `min(len - i*64, 64)` bits are set: the fully-masked
/// pattern for word `i` of a `len`-lane mask.
fn tail_mask(len: usize, word_index: usize) -> u64 {
    let used = len.saturating_sub(word_index * LANES).min(LANES);
    if used == LANES {
        u64::MAX
    } else {
        (1u64 << used) - 1
    }
}

/// Packs `bools` (true = masked) into `words`; `words` must hold at least
/// `bools.len().div_ceil(64)` entries. Extra words and tail bits are zeroed.
pub fn pack_into(bools: &[bool], words: &mut [u64]) {
    for (w, lanes) in words.iter_mut().zip(bools.chunks(LANES)) {
        let mut acc = 0u64;
        for (bit, &m) in lanes.iter().enumerate() {
            acc |= (m as u64) << bit;
        }
        *w = acc;
    }
    let used = bools.len().div_ceil(LANES);
    for w in words.iter_mut().skip(used) {
        *w = 0;
    }
}

/// Unpacks `words` into `bools` (true = masked), `bools.len()` lanes.
pub fn unpack_into(words: &[u64], bools: &mut [bool]) {
    for (&w, lanes) in words.iter().zip(bools.chunks_mut(LANES)) {
        if w == 0 {
            lanes.fill(false);
        } else {
            for (bit, m) in lanes.iter_mut().enumerate() {
                *m = (w >> bit) & 1 == 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip_odd_lengths() {
        for len in [0usize, 1, 63, 64, 65, 127, 128, 130, 1000] {
            let bools: Vec<bool> = (0..len).map(|i| i % 3 == 0 || i % 7 == 2).collect();
            let m = MaskWords::from_bools(&bools);
            assert_eq!(m.len(), len);
            assert_eq!(m.to_bools(), bools);
            assert_eq!(m.count_masked(), bools.iter().filter(|&&b| b).count());
            for (i, &b) in bools.iter().enumerate() {
                assert_eq!(m.get(i), b, "lane {i} of {len}");
            }
        }
    }

    #[test]
    fn tail_bits_stay_zero() {
        let m = MaskWords::all(70);
        assert_eq!(m.count_masked(), 70);
        assert_eq!(m.words().len(), 2);
        assert_eq!(m.words()[1], (1u64 << 6) - 1);
        // packing a mask with trailing true lanes must not leak past len
        let bools = vec![true; 65];
        let p = MaskWords::from_bools(&bools);
        assert_eq!(p.words()[1], 1);
    }

    #[test]
    fn or_and_match_boolean_logic() {
        let a_bools: Vec<bool> = (0..150).map(|i| i % 2 == 0).collect();
        let b_bools: Vec<bool> = (0..150).map(|i| i % 3 == 0).collect();
        let (a, b) = (MaskWords::from_bools(&a_bools), MaskWords::from_bools(&b_bools));

        let mut or = a.clone();
        or.or_assign(&b);
        let want_or: Vec<bool> = a_bools.iter().zip(&b_bools).map(|(&x, &y)| x || y).collect();
        assert_eq!(or.to_bools(), want_or);

        let mut and = a.clone();
        and.and_assign(&b);
        let want_and: Vec<bool> = a_bools.iter().zip(&b_bools).map(|(&x, &y)| x && y).collect();
        assert_eq!(and.to_bools(), want_and);
    }

    #[test]
    fn set_get_and_all_valid() {
        let mut m = MaskWords::none(100);
        assert!(m.all_valid());
        m.set(64, true);
        assert!(!m.all_valid());
        assert!(m.get(64));
        assert_eq!(m.count_valid(), 99);
        m.set(64, false);
        assert!(m.all_valid());
        m.set(500, true); // out of range: no-op
        assert!(m.all_valid());
        assert!(!m.get(500));
    }

    #[test]
    fn window_pack_into_zeroes_spare_words() {
        let bools = vec![true; 10];
        let mut words = [u64::MAX; 3];
        pack_into(&bools, &mut words);
        assert_eq!(words, [(1u64 << 10) - 1, 0, 0]);
        let mut out = vec![true; 10];
        unpack_into(&words, &mut out);
        assert_eq!(out, vec![true; 10]);
    }
}
