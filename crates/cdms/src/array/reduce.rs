//! Axis reductions that skip masked elements, including weighted variants —
//! the machinery behind CDAT's averagers and statistics.

use super::MaskedArray;
use crate::error::{CdmsError, Result};

/// The reduction kinds supported by [`MaskedArray::reduce_axis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reduction {
    Sum,
    Mean,
    Min,
    Max,
    /// Population standard deviation over valid elements.
    Std,
    /// Population variance over valid elements.
    Var,
    /// Number of valid elements, as f32.
    Count,
}

/// Streaming accumulator for one output cell of a reduction.
#[derive(Debug, Clone, Copy)]
struct Acc {
    n: usize,
    sum: f64,
    sum_sq: f64,
    min: f32,
    max: f32,
}

impl Acc {
    fn new() -> Self {
        Acc { n: 0, sum: 0.0, sum_sq: 0.0, min: f32::INFINITY, max: f32::NEG_INFINITY }
    }

    fn push(&mut self, v: f32) {
        self.n += 1;
        self.sum += v as f64;
        self.sum_sq += (v as f64) * (v as f64);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Finishes the accumulation; `None` means the output cell is masked.
    fn finish(&self, red: Reduction) -> Option<f32> {
        if red == Reduction::Count {
            return Some(self.n as f32);
        }
        if self.n == 0 {
            return None;
        }
        let n = self.n as f64;
        Some(match red {
            Reduction::Sum => self.sum as f32,
            Reduction::Mean => (self.sum / n) as f32,
            Reduction::Min => self.min,
            Reduction::Max => self.max,
            Reduction::Var => ((self.sum_sq / n) - (self.sum / n).powi(2)).max(0.0) as f32,
            Reduction::Std => (((self.sum_sq / n) - (self.sum / n).powi(2)).max(0.0)).sqrt() as f32,
            // handled by the early return above; kept correct regardless
            Reduction::Count => self.n as f32,
        })
    }
}

impl MaskedArray {
    /// Reduces along `axis`, removing that dimension. Masked elements are
    /// skipped; output cells with no valid inputs are masked.
    pub fn reduce_axis(&self, axis: usize, red: Reduction) -> Result<MaskedArray> {
        if axis >= self.rank() {
            return Err(CdmsError::AxisOutOfRange { axis, rank: self.rank() });
        }
        let shape = self.shape();
        let outer: usize = shape[..axis].iter().product();
        let k = shape[axis];
        let inner: usize = shape[axis + 1..].iter().product();

        let mut out_shape: Vec<usize> = shape.to_vec();
        out_shape.remove(axis);
        if out_shape.is_empty() {
            out_shape.push(1);
        }

        let mut accs = vec![Acc::new(); outer * inner];
        for o in 0..outer {
            for j in 0..k {
                let base = (o * k + j) * inner;
                for i in 0..inner {
                    if !self.mask()[base + i] {
                        accs[o * inner + i].push(self.data()[base + i]);
                    }
                }
            }
        }
        let mut data = Vec::with_capacity(accs.len());
        let mut mask = Vec::with_capacity(accs.len());
        for acc in &accs {
            match acc.finish(red) {
                Some(v) => {
                    data.push(v);
                    mask.push(false);
                }
                None => {
                    data.push(0.0);
                    mask.push(true);
                }
            }
        }
        MaskedArray::with_mask(data, mask, &out_shape)
    }

    /// Weighted mean along `axis` with one weight per index of that axis
    /// (e.g. cos-latitude area weights). Weights of masked elements are
    /// excluded from the normalization, as CDAT's averager does.
    pub fn weighted_mean_axis(&self, axis: usize, weights: &[f64]) -> Result<MaskedArray> {
        if axis >= self.rank() {
            return Err(CdmsError::AxisOutOfRange { axis, rank: self.rank() });
        }
        let shape = self.shape();
        if weights.len() != shape[axis] {
            return Err(CdmsError::ShapeMismatch {
                expected: vec![shape[axis]],
                got: vec![weights.len()],
            });
        }
        let outer: usize = shape[..axis].iter().product();
        let k = shape[axis];
        let inner: usize = shape[axis + 1..].iter().product();

        let mut out_shape: Vec<usize> = shape.to_vec();
        out_shape.remove(axis);
        if out_shape.is_empty() {
            out_shape.push(1);
        }

        let m = outer * inner;
        let mut wsum = vec![0.0f64; m];
        let mut vsum = vec![0.0f64; m];
        for o in 0..outer {
            for j in 0..k {
                let w = weights[j];
                let base = (o * k + j) * inner;
                for i in 0..inner {
                    if !self.mask()[base + i] {
                        let cell = o * inner + i;
                        wsum[cell] += w;
                        vsum[cell] += w * self.data()[base + i] as f64;
                    }
                }
            }
        }
        let mut data = Vec::with_capacity(m);
        let mut mask = Vec::with_capacity(m);
        for cell in 0..m {
            if wsum[cell] > 0.0 {
                data.push((vsum[cell] / wsum[cell]) as f32);
                mask.push(false);
            } else {
                data.push(0.0);
                mask.push(true);
            }
        }
        MaskedArray::with_mask(data, mask, &out_shape)
    }

    /// Reduces the whole array to a scalar, skipping masked elements.
    pub fn reduce_all(&self, red: Reduction) -> Option<f32> {
        let mut acc = Acc::new();
        for (_, v) in self.iter_valid() {
            acc.push(v);
        }
        acc.finish(red)
    }

    /// Global unweighted mean of valid elements.
    pub fn mean(&self) -> Option<f32> {
        self.reduce_all(Reduction::Mean)
    }

    /// Global population standard deviation of valid elements.
    pub fn std(&self) -> Option<f32> {
        self.reduce_all(Reduction::Std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a2x3() -> MaskedArray {
        MaskedArray::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap()
    }

    #[test]
    fn sum_along_axes() {
        let a = a2x3();
        let s0 = a.reduce_axis(0, Reduction::Sum).unwrap();
        assert_eq!(s0.shape(), &[3]);
        assert_eq!(s0.data(), &[5.0, 7.0, 9.0]);
        let s1 = a.reduce_axis(1, Reduction::Sum).unwrap();
        assert_eq!(s1.shape(), &[2]);
        assert_eq!(s1.data(), &[6.0, 15.0]);
    }

    #[test]
    fn mean_skips_masked() {
        let mut a = a2x3();
        a.mask_at(&[0, 0]).unwrap();
        let m = a.reduce_axis(0, Reduction::Mean).unwrap();
        // column 0 only has the value 4.0 valid
        assert_eq!(m.data()[0], 4.0);
        assert_eq!(m.data()[1], 3.5);
    }

    #[test]
    fn fully_masked_column_masks_output() {
        let mut a = a2x3();
        a.mask_at(&[0, 1]).unwrap();
        a.mask_at(&[1, 1]).unwrap();
        let m = a.reduce_axis(0, Reduction::Mean).unwrap();
        assert_eq!(m.get_valid(&[1]).unwrap(), None);
        let c = a.reduce_axis(0, Reduction::Count).unwrap();
        assert_eq!(c.data(), &[2.0, 0.0, 2.0]);
    }

    #[test]
    fn min_max_std_var() {
        let a = a2x3();
        assert_eq!(a.reduce_axis(1, Reduction::Min).unwrap().data(), &[1.0, 4.0]);
        assert_eq!(a.reduce_axis(1, Reduction::Max).unwrap().data(), &[3.0, 6.0]);
        let v = a.reduce_axis(1, Reduction::Var).unwrap();
        assert!((v.data()[0] - 2.0 / 3.0).abs() < 1e-6);
        let s = a.reduce_axis(1, Reduction::Std).unwrap();
        assert!((s.data()[0] - (2.0f32 / 3.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn reduce_1d_gives_scalar_shape() {
        let a = MaskedArray::from_vec(vec![1.0, 3.0], &[2]).unwrap();
        let s = a.reduce_axis(0, Reduction::Mean).unwrap();
        assert_eq!(s.shape(), &[1]);
        assert_eq!(s.data(), &[2.0]);
    }

    #[test]
    fn weighted_mean_uses_weights() {
        let a = MaskedArray::from_vec(vec![0.0, 10.0], &[2]).unwrap();
        let m = a.weighted_mean_axis(0, &[3.0, 1.0]).unwrap();
        assert!((m.data()[0] - 2.5).abs() < 1e-6);
    }

    #[test]
    fn weighted_mean_excludes_masked_weights() {
        let mut a = MaskedArray::from_vec(vec![0.0, 10.0, 20.0], &[3]).unwrap();
        a.mask_at(&[2]).unwrap();
        let m = a.weighted_mean_axis(0, &[1.0, 1.0, 100.0]).unwrap();
        assert!((m.data()[0] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn weighted_mean_validates_lengths() {
        let a = a2x3();
        assert!(a.weighted_mean_axis(0, &[1.0]).is_err());
        assert!(a.weighted_mean_axis(5, &[1.0, 1.0]).is_err());
    }

    #[test]
    fn global_reductions() {
        let a = a2x3();
        assert_eq!(a.mean(), Some(3.5));
        assert_eq!(a.reduce_all(Reduction::Sum), Some(21.0));
        assert_eq!(MaskedArray::all_masked(&[4]).mean(), None);
        assert_eq!(MaskedArray::all_masked(&[4]).reduce_all(Reduction::Count), Some(0.0));
    }
}
