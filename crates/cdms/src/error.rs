//! Error type shared across the CDMS substrate.

use std::fmt;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CdmsError>;

/// Errors raised by data-management operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CdmsError {
    /// Shapes of operands are incompatible (and not broadcastable).
    ShapeMismatch { expected: Vec<usize>, got: Vec<usize> },
    /// An axis index is out of range for the array rank.
    AxisOutOfRange { axis: usize, rank: usize },
    /// A named axis or variable does not exist.
    NotFound(String),
    /// A coordinate range selected no points.
    EmptySelection(String),
    /// Values violate an invariant (non-monotonic axis, bad bounds, …).
    Invalid(String),
    /// A file could not be parsed as the `.ncr` self-describing format.
    Format(String),
    /// Underlying I/O failure (message-only so the error stays `Clone`).
    Io(String),
    /// A *transient* I/O failure (EINTR-style interruption, timeout,
    /// injected flakiness): retrying the same operation may succeed.
    /// [`crate::storage::write_atomic`] retries these internally and
    /// `cdat` task graphs re-run dataset sources that surface them.
    TransientIo(String),
    /// A calendar/time conversion failed.
    Time(String),
}

impl CdmsError {
    /// True for errors a retry may clear ([`CdmsError::TransientIo`]).
    pub fn is_transient(&self) -> bool {
        matches!(self, CdmsError::TransientIo(_))
    }
}

impl fmt::Display for CdmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdmsError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected:?}, got {got:?}")
            }
            CdmsError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            CdmsError::NotFound(name) => write!(f, "not found: {name}"),
            CdmsError::EmptySelection(msg) => write!(f, "empty selection: {msg}"),
            CdmsError::Invalid(msg) => write!(f, "invalid: {msg}"),
            CdmsError::Format(msg) => write!(f, "format error: {msg}"),
            CdmsError::Io(msg) => write!(f, "io error: {msg}"),
            CdmsError::TransientIo(msg) => write!(f, "transient io error: {msg}"),
            CdmsError::Time(msg) => write!(f, "time error: {msg}"),
        }
    }
}

impl std::error::Error for CdmsError {
    /// All variants are leaves: causes are captured as strings so the error
    /// stays `Clone`, so there is no deeper error to expose.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        None
    }
}

impl From<std::io::Error> for CdmsError {
    fn from(e: std::io::Error) -> Self {
        use std::io::ErrorKind;
        match e.kind() {
            ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut => {
                CdmsError::TransientIo(e.to_string())
            }
            _ => CdmsError::Io(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CdmsError::ShapeMismatch { expected: vec![2, 3], got: vec![3, 2] };
        assert!(e.to_string().contains("[2, 3]"));
        assert!(e.to_string().contains("[3, 2]"));
        let e = CdmsError::NotFound("ta".into());
        assert_eq!(e.to_string(), "not found: ta");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: CdmsError = io.into();
        assert!(matches!(e, CdmsError::Io(_)));
        assert!(!e.is_transient());
    }

    #[test]
    fn interrupted_io_is_transient() {
        let io = std::io::Error::new(std::io::ErrorKind::Interrupted, "EINTR");
        let e: CdmsError = io.into();
        assert!(matches!(e, CdmsError::TransientIo(_)));
        assert!(e.is_transient());
        assert!(e.to_string().contains("transient"));
    }
}
