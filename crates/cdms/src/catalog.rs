//! Earth System Grid (ESG) federated-access stand-in.
//!
//! The paper's workflows begin by pulling variables from the ESG Federation
//! or a remote ParaView server. Without the network we model the same API
//! shape: a catalog of published datasets searchable by facet
//! (model/experiment/variable), with an `open` that "transfers" the data —
//! optionally with a simulated per-megabyte latency so transfer-bound
//! workflows can be studied.
//!
//! The scan is corruption-aware: a damaged `.ncr` file no longer silently
//! disappears from the catalog. Files that salvage partially are indexed
//! with [`EntryStatus::Salvaged`] (only the recovered variables listed);
//! files with nothing recoverable are kept as [`EntryStatus::Quarantined`]
//! entries whose `open` fails with the recorded reason.

use crate::dataset::Dataset;
use crate::error::{CdmsError, Result};
use crate::format;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Where a catalog entry's data lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataSource {
    /// A file on the local filesystem.
    LocalFile(PathBuf),
    /// A simulated remote ESG node (directory-backed, latency applied).
    EsgNode { node: String, path: PathBuf },
    /// A simulated ParaView server on a remote supercomputer: supports
    /// *server-side* subsetting, so only the selected region transfers.
    ParaViewServer { host: String, path: PathBuf },
}

/// Health of a catalog entry's backing file, decided at scan/publish time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum EntryStatus {
    /// The file parsed cleanly under strict checksum verification.
    #[default]
    Healthy,
    /// The file is damaged but some variables were recovered; `open`
    /// serves the salvaged subset.
    Salvaged {
        /// What the salvage pass found (from [`crate::SalvageReport`]).
        reason: String,
    },
    /// Nothing recoverable; `open` fails with this reason instead of
    /// surfacing a raw parse error.
    Quarantined {
        /// Why the file was quarantined.
        reason: String,
    },
}

/// One published dataset's catalog record.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Unique dataset id within the catalog.
    pub id: String,
    /// Facets: model, experiment, institution, …
    pub facets: BTreeMap<String, String>,
    /// Variable ids the dataset provides.
    pub variables: Vec<String>,
    /// Data location.
    pub source: DataSource,
    /// Payload size in bytes (drives the simulated transfer time).
    pub size_bytes: u64,
    /// Why the size could not be read, when it couldn't (`size_bytes` is 0
    /// then) — an unreadable file must not masquerade as an empty one.
    pub size_error: Option<String>,
    /// File health as of the last scan/publish.
    pub status: EntryStatus,
}

impl CatalogEntry {
    /// True when the backing file verified cleanly.
    pub fn is_healthy(&self) -> bool {
        self.status == EntryStatus::Healthy
    }
}

/// A facet query: every `(facet, value)` pair must match.
#[derive(Debug, Clone, Default)]
pub struct FacetQuery {
    clauses: Vec<(String, String)>,
    /// Require this variable to be present.
    variable: Option<String>,
}

impl FacetQuery {
    /// An empty query (matches everything).
    pub fn new() -> FacetQuery {
        FacetQuery::default()
    }

    /// Adds a facet constraint.
    pub fn facet(mut self, name: &str, value: &str) -> FacetQuery {
        self.clauses.push((name.to_string(), value.to_string()));
        self
    }

    /// Requires the dataset to provide `variable`.
    pub fn variable(mut self, variable: &str) -> FacetQuery {
        self.variable = Some(variable.to_string());
        self
    }

    fn matches(&self, entry: &CatalogEntry) -> bool {
        for (k, v) in &self.clauses {
            if entry.facets.get(k) != Some(v) {
                return false;
            }
        }
        if let Some(var) = &self.variable {
            if !entry.variables.contains(var) {
                return false;
            }
        }
        true
    }
}

/// A directory-backed federated catalog.
#[derive(Debug)]
pub struct EsgCatalog {
    root: PathBuf,
    entries: Vec<CatalogEntry>,
    /// Simulated transfer throughput for `EsgNode` sources, bytes/sec.
    /// `None` disables the latency simulation entirely.
    pub simulated_bandwidth: Option<f64>,
}

impl EsgCatalog {
    /// Creates (or reuses) a catalog rooted at `root`, scanning any existing
    /// `.ncr` files into local entries.
    pub fn new(root: impl AsRef<Path>) -> Result<EsgCatalog> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        let mut catalog = EsgCatalog { root: root.clone(), entries: Vec::new(), simulated_bandwidth: None };
        let mut paths: Vec<PathBuf> = std::fs::read_dir(&root)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "ncr"))
            .collect();
        paths.sort();
        for path in paths {
            catalog.scan_file(&path);
        }
        Ok(catalog)
    }

    /// Indexes one on-disk `.ncr` file, degrading gracefully on corruption:
    /// strict open → `Healthy`; partial salvage → `Salvaged`; otherwise a
    /// `Quarantined` entry recording why the file is unusable.
    fn scan_file(&mut self, path: &Path) {
        let source = DataSource::LocalFile(path.to_path_buf());
        match Dataset::open(path) {
            Ok(ds) => self.index_dataset(&ds, source, EntryStatus::Healthy),
            Err(open_err) => match format::read_dataset_salvage(path) {
                Ok((ds, report)) if !report.recovered_variables.is_empty() => {
                    self.index_dataset(
                        &ds,
                        source,
                        EntryStatus::Salvaged { reason: report.summary() },
                    );
                }
                Ok((ds, report)) => {
                    self.quarantine(&ds.id, path, source, report.summary());
                }
                Err(_) => {
                    let stem = path
                        .file_stem()
                        .map(|s| s.to_string_lossy().into_owned())
                        .unwrap_or_default();
                    self.quarantine(&stem, path, source, open_err.to_string());
                }
            },
        }
    }

    /// Records an unusable file so it stays visible (and explainable)
    /// instead of silently vanishing from the catalog.
    fn quarantine(&mut self, id: &str, path: &Path, source: DataSource, reason: String) {
        let (size_bytes, size_error) = file_size(path);
        self.entries.retain(|e| e.id != id);
        self.entries.push(CatalogEntry {
            id: id.to_string(),
            facets: BTreeMap::new(),
            variables: Vec::new(),
            source,
            size_bytes,
            size_error,
            status: EntryStatus::Quarantined { reason },
        });
    }

    fn index_dataset(&mut self, ds: &Dataset, source: DataSource, status: EntryStatus) {
        let (size_bytes, size_error) = match &source {
            DataSource::LocalFile(p)
            | DataSource::EsgNode { path: p, .. }
            | DataSource::ParaViewServer { path: p, .. } => file_size(p),
        };
        let facets = ds
            .attributes
            .iter()
            .filter_map(|(k, v)| v.as_text().map(|t| (k.clone(), t.to_string())))
            .collect();
        self.entries.retain(|e| e.id != ds.id);
        self.entries.push(CatalogEntry {
            id: ds.id.clone(),
            facets,
            variables: ds.variable_ids(),
            source,
            size_bytes,
            size_error,
            status,
        });
    }

    /// Publishes a dataset into the catalog: writes the `.ncr` file under the
    /// catalog root and indexes it. `node = None` publishes locally; a node
    /// name marks the entry as a "remote" ESG holding.
    pub fn publish(&mut self, ds: &Dataset, node: Option<&str>) -> Result<()> {
        let path = self.root.join(format!("{}.ncr", ds.id));
        ds.save(&path)?;
        let source = match node {
            None => DataSource::LocalFile(path),
            Some(n) => DataSource::EsgNode { node: n.to_string(), path },
        };
        self.index_dataset(ds, source, EntryStatus::Healthy);
        Ok(())
    }

    /// Publishes a dataset behind a simulated ParaView server (remote
    /// compute: the server can subset before transfer).
    pub fn publish_paraview(&mut self, ds: &Dataset, host: &str) -> Result<()> {
        let path = self.root.join(format!("{}.ncr", ds.id));
        ds.save(&path)?;
        self.index_dataset(
            ds,
            DataSource::ParaViewServer { host: host.to_string(), path },
            EntryStatus::Healthy,
        );
        Ok(())
    }

    /// All entries.
    pub fn entries(&self) -> &[CatalogEntry] {
        &self.entries
    }

    /// Searches by facet query.
    pub fn search(&self, query: &FacetQuery) -> Vec<&CatalogEntry> {
        self.entries.iter().filter(|e| query.matches(e)).collect()
    }

    /// Opens a dataset by id, "transferring" it (with simulated latency for
    /// remote entries when `simulated_bandwidth` is set). Quarantined
    /// entries fail with the recorded reason; salvaged entries serve the
    /// recovered variables.
    pub fn open(&self, id: &str) -> Result<Dataset> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.id == id)
            .ok_or_else(|| CdmsError::NotFound(format!("catalog entry '{id}'")))?;
        if let EntryStatus::Quarantined { reason } = &entry.status {
            return Err(CdmsError::Format(format!(
                "catalog entry '{id}' is quarantined: {reason}"
            )));
        }
        let path = match &entry.source {
            DataSource::LocalFile(p) => p,
            DataSource::EsgNode { path, .. } | DataSource::ParaViewServer { path, .. } => {
                if let Some(bw) = self.simulated_bandwidth {
                    let secs = entry.size_bytes as f64 / bw.max(1.0);
                    std::thread::sleep(Duration::from_secs_f64(secs.min(2.0)));
                }
                path
            }
        };
        match &entry.status {
            EntryStatus::Salvaged { .. } => {
                let (ds, _report) = format::read_dataset_salvage(path)?;
                Ok(ds)
            }
            _ => Dataset::open(path),
        }
    }

    /// Opens a dataset by id for out-of-core streaming instead of a full
    /// transfer. Only local entries (and local paths behind simulated
    /// remote nodes) whose file is `.ncr` v3 are streamable; the returned
    /// session reads chunk frames on demand at a bounded memory budget —
    /// the interactive-browse workflow for series far larger than RAM.
    /// No transfer latency is charged up front: nothing moves until
    /// chunks are fetched.
    pub fn open_streaming(
        &self,
        id: &str,
        opts: crate::stream::StreamOptions,
    ) -> Result<crate::stream::StreamingDataset> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.id == id)
            .ok_or_else(|| CdmsError::NotFound(format!("catalog entry '{id}'")))?;
        if let EntryStatus::Quarantined { reason } = &entry.status {
            return Err(CdmsError::Format(format!(
                "catalog entry '{id}' is quarantined: {reason}"
            )));
        }
        let path = match &entry.source {
            DataSource::LocalFile(p) => p,
            DataSource::EsgNode { path, .. } | DataSource::ParaViewServer { path, .. } => path,
        };
        crate::stream::StreamingDataset::open_with(
            std::sync::Arc::new(crate::storage::LocalDisk),
            path,
            opts,
        )
    }

    /// Opens one variable of a dataset with *server-side* subsetting — the
    /// ParaView-server workflow of §III.G. Only entries published behind a
    /// ParaView server accept this; the subset happens "remotely" (before
    /// the simulated transfer), so the latency charge is proportional to
    /// the subset size, not the whole dataset.
    pub fn open_variable_subset(
        &self,
        id: &str,
        variable: &str,
        lat: (f64, f64),
        lon: (f64, f64),
    ) -> Result<crate::Variable> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.id == id)
            .ok_or_else(|| CdmsError::NotFound(format!("catalog entry '{id}'")))?;
        let DataSource::ParaViewServer { path, .. } = &entry.source else {
            return Err(CdmsError::Invalid(format!(
                "'{id}' is not behind a ParaView server; open() it instead"
            )));
        };
        // "server side": full read + subset happen before the transfer
        let ds = Dataset::open(path)?;
        let sub = ds.require(variable)?.subset_lat_lon(lat, lon)?;
        if let Some(bw) = self.simulated_bandwidth {
            let bytes = (sub.array.len() * 4) as f64;
            let secs = bytes / bw.max(1.0);
            std::thread::sleep(Duration::from_secs_f64(secs.min(2.0)));
        }
        Ok(sub)
    }
}

/// Reads the on-disk size, surfacing the error instead of reporting an
/// unreadable file as zero-size (which hid permission/race problems).
fn file_size(path: &Path) -> (u64, Option<String>) {
    match std::fs::metadata(path) {
        Ok(m) => (m.len(), None),
        Err(e) => (0, Some(e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthesisSpec;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cdms_catalog_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn open_streaming_serves_v3_entries_lazily() {
        let root = temp_root("streamv3");
        std::fs::create_dir_all(&root).unwrap();
        let mut ds = SynthesisSpec::new(6, 1, 8, 12).build();
        ds.id = "big_series".to_string();
        let v3opts = crate::format_v3::V3Options { window: 2, levels: 2, compress: true };
        crate::format_v3::write_dataset_v3_with(
            &crate::storage::LocalDisk,
            &ds,
            &root.join("series.ncr"),
            &v3opts,
        )
        .unwrap();
        let mut flat = SynthesisSpec::new(2, 1, 4, 8).build();
        flat.id = "flat".to_string();
        crate::format::write_dataset(&flat, &root.join("flat.ncr")).unwrap();

        let cat = EsgCatalog::new(&root).unwrap();
        // the v3 file indexes as a healthy entry like any other
        assert!(cat.entries().iter().any(|e| e.id == "big_series" && e.is_healthy()));

        let sd = cat
            .open_streaming("big_series", crate::stream::StreamOptions::default())
            .unwrap();
        let sv = sd.variable("ta").unwrap();
        assert_eq!(sv.n_times(), 6);
        let want = ds.variable("ta").unwrap().time_slab(3).unwrap();
        assert_eq!(sv.time_slab(3).unwrap().array, want.array);

        // a v2 entry is not streamable, and says so
        let err = cat
            .open_streaming("flat", crate::stream::StreamOptions::default())
            .unwrap_err();
        assert!(err.to_string().contains("not streamable"), "{err}");
        assert!(cat.open_streaming("missing", Default::default()).is_err());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn publish_search_open_roundtrip() {
        let root = temp_root("pso");
        let mut cat = EsgCatalog::new(&root).unwrap();
        let mut ds = SynthesisSpec::new(2, 2, 4, 8).build();
        ds.id = "exp1".to_string();
        cat.publish(&ds, None).unwrap();

        let hits = cat.search(&FacetQuery::new().facet("experiment", "control"));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, "exp1");
        assert!(cat.search(&FacetQuery::new().facet("experiment", "rcp85")).is_empty());

        let hits = cat.search(&FacetQuery::new().variable("ta"));
        assert_eq!(hits.len(), 1);
        assert!(cat.search(&FacetQuery::new().variable("nope")).is_empty());

        let opened = cat.open("exp1").unwrap();
        assert_eq!(opened.variable("ta").unwrap().shape(), &[2, 2, 4, 8]);
        assert!(cat.open("missing").is_err());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn rescans_existing_files_on_new() {
        let root = temp_root("rescan");
        {
            let mut cat = EsgCatalog::new(&root).unwrap();
            let mut ds = SynthesisSpec::new(1, 1, 4, 8).build();
            ds.id = "persisted".to_string();
            cat.publish(&ds, None).unwrap();
        }
        let cat2 = EsgCatalog::new(&root).unwrap();
        assert_eq!(cat2.entries().len(), 1);
        assert_eq!(cat2.entries()[0].id, "persisted");
        assert!(cat2.entries()[0].variables.contains(&"wave".to_string()));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn remote_entries_survive_open_without_bandwidth() {
        let root = temp_root("remote");
        let mut cat = EsgCatalog::new(&root).unwrap();
        let mut ds = SynthesisSpec::new(1, 1, 4, 8).build();
        ds.id = "remote1".to_string();
        cat.publish(&ds, Some("esg-node-llnl")).unwrap();
        assert!(matches!(cat.entries()[0].source, DataSource::EsgNode { .. }));
        let opened = cat.open("remote1").unwrap();
        assert_eq!(opened.id, "remote1");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn republish_replaces_entry() {
        let root = temp_root("repub");
        let mut cat = EsgCatalog::new(&root).unwrap();
        let mut ds = SynthesisSpec::new(1, 1, 4, 8).build();
        ds.id = "dup".to_string();
        cat.publish(&ds, None).unwrap();
        cat.publish(&ds, None).unwrap();
        assert_eq!(cat.entries().len(), 1);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn paraview_server_side_subsetting() {
        let root = temp_root("pv");
        let mut cat = EsgCatalog::new(&root).unwrap();
        let mut ds = SynthesisSpec::new(2, 2, 16, 32).build();
        ds.id = "pv1".to_string();
        cat.publish_paraview(&ds, "discover.nasa.gov").unwrap();
        assert!(matches!(cat.entries()[0].source, DataSource::ParaViewServer { .. }));
        // subset the tropics server-side
        let sub = cat
            .open_variable_subset("pv1", "ta", (-20.0, 20.0), (0.0, 360.0))
            .unwrap();
        assert!(sub.shape()[2] < 16);
        assert_eq!(sub.shape()[3], 32);
        // non-ParaView entries refuse server-side subsetting
        let mut local = SynthesisSpec::new(1, 1, 4, 8).build();
        local.id = "plain".to_string();
        cat.publish(&local, None).unwrap();
        assert!(cat
            .open_variable_subset("plain", "ta", (-20.0, 20.0), (0.0, 360.0))
            .is_err());
        assert!(cat
            .open_variable_subset("missing", "ta", (-20.0, 20.0), (0.0, 360.0))
            .is_err());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn corrupt_file_is_quarantined_with_reason() {
        let root = temp_root("quar");
        {
            let mut cat = EsgCatalog::new(&root).unwrap();
            let mut ds = SynthesisSpec::new(1, 1, 4, 8).build();
            ds.id = "broken".to_string();
            cat.publish(&ds, None).unwrap();
        }
        // Destroy the file beyond salvage: truncate to garbage.
        let path = root.join("broken.ncr");
        std::fs::write(&path, b"NCRS\x63\x00\x00\x00").unwrap(); // version 99
        let cat = EsgCatalog::new(&root).unwrap();
        assert_eq!(cat.entries().len(), 1, "quarantined file must stay visible");
        let entry = &cat.entries()[0];
        assert_eq!(entry.id, "broken");
        assert!(!entry.is_healthy());
        assert!(matches!(entry.status, EntryStatus::Quarantined { .. }));
        let err = cat.open("broken").unwrap_err();
        assert!(err.to_string().contains("quarantined"), "{err}");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn partially_corrupt_file_is_salvaged() {
        let root = temp_root("salv");
        let mut ds = SynthesisSpec::new(1, 1, 4, 8).build();
        ds.id = "partial".to_string();
        {
            let mut cat = EsgCatalog::new(&root).unwrap();
            cat.publish(&ds, None).unwrap();
        }
        // Corrupt one variable's section payload; the rest must survive.
        let path = root.join("partial.ncr");
        let (bytes, layout) = crate::format::to_bytes_v2_with_layout(&ds);
        let mut bytes = bytes.to_vec();
        let victim = layout
            .sections
            .iter()
            .find(|s| s.variable.is_some())
            .unwrap();
        bytes[victim.payload.start + victim.payload.len() / 2] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let cat = EsgCatalog::new(&root).unwrap();
        let entry = &cat.entries()[0];
        assert!(matches!(entry.status, EntryStatus::Salvaged { .. }), "{:?}", entry.status);
        assert_eq!(entry.variables.len(), ds.len() - 1);
        let opened = cat.open("partial").unwrap();
        assert_eq!(opened.len(), ds.len() - 1);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn healthy_entries_report_size_without_error() {
        let root = temp_root("size");
        let mut cat = EsgCatalog::new(&root).unwrap();
        let mut ds = SynthesisSpec::new(1, 1, 4, 8).build();
        ds.id = "sized".to_string();
        cat.publish(&ds, None).unwrap();
        let entry = &cat.entries()[0];
        assert!(entry.size_bytes > 0);
        assert!(entry.size_error.is_none());
        assert!(entry.is_healthy());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn multi_facet_queries_conjunct() {
        let root = temp_root("conj");
        let mut cat = EsgCatalog::new(&root).unwrap();
        let mut a = SynthesisSpec::new(1, 1, 4, 8).build();
        a.id = "a".into();
        a.attributes.insert("experiment".into(), "control".into());
        cat.publish(&a, None).unwrap();
        let mut b = SynthesisSpec::new(1, 1, 4, 8).build();
        b.id = "b".into();
        b.attributes.insert("experiment".into(), "rcp85".into());
        cat.publish(&b, None).unwrap();

        let q = FacetQuery::new().facet("model", "SYNTH-1").facet("experiment", "rcp85");
        let hits = cat.search(&q);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, "b");
        assert_eq!(cat.search(&FacetQuery::new()).len(), 2);
        std::fs::remove_dir_all(&root).ok();
    }
}
