//! Out-of-core streaming reads of `.ncr` v3 files.
//!
//! [`StreamingDataset`] opens a v3 file by reading only its metadata (a
//! handful of ranged reads: footer → trailer → header/axes/varmetas/chunk
//! directory — see [`crate::format_v3::read_meta_with`]), then serves any
//! (variable, time window, pyramid level) through [`Storage::read_at`],
//! one chunk frame per call. Nothing else of the file is ever resident,
//! so a time series far larger than RAM plays back in bounded memory.
//!
//! The layer is built for hostile storage:
//!
//! * **Bounded-memory cache** — decoded chunks live in a byte-budgeted
//!   LRU ([`StreamOptions::cache_bytes`]). The budget is a hard ceiling:
//!   eviction runs *before* insertion, so resident bytes never exceed it,
//!   not even transiently. Hits, misses, evictions and the high-water
//!   mark are all counted.
//! * **Transient retry** — EINTR-style failures retry up to
//!   [`StreamOptions::max_retries`] times with capped exponential backoff.
//!   Hard failures (media errors, checksum mismatches, short reads) do
//!   not retry: the chunk is negative-cached so later frames fail fast
//!   instead of re-paying the I/O.
//! * **Per-chunk salvage** — [`StreamingVariable::time_slab_degraded`]
//!   never stalls on a damaged chunk: it falls back to the best intact
//!   pyramid level (upsampled to full resolution) and, at worst, to a
//!   fully-masked slab. Playback always gets *a* frame.
//! * **Deadline bookkeeping** — fetches that exceed
//!   [`StreamOptions::deadline_ms`] (e.g. a disk spinning up under an
//!   injected [`crate::storage::StorageFault::DelayedRead`]) are counted
//!   as deadline misses.
//! * **Prefetch** — after serving a frame, the next
//!   [`StreamOptions::prefetch_windows`] windows' full-resolution chunks
//!   are pulled into the cache, so steady playback hits warm chunks.
//!
//! Every event lands in a [`StreamReport`], which fault-storm tests
//! assert against exactly: with a scripted
//! [`crate::storage::StorageFaultPlan`], the counters are a deterministic
//! function of the plan.

use crate::axis::AxisKind;
use crate::error::{CdmsError, Result};
use crate::format_v3::{self, upsample_nearest, ChunkDirEntry, V3Meta, V3VarMeta};
use crate::storage::{LocalDisk, Storage};
use crate::{MaskedArray, Variable};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs for a streaming session.
#[derive(Debug, Clone)]
pub struct StreamOptions {
    /// Chunk-cache budget in bytes of decoded data. A hard ceiling, never
    /// exceeded; chunks larger than the whole budget are served without
    /// being cached.
    pub cache_bytes: usize,
    /// Full-resolution windows to pull ahead after serving a frame.
    pub prefetch_windows: usize,
    /// Retries for *transient* read failures (hard failures never retry).
    pub max_retries: u32,
    /// First retry backoff; doubles each retry.
    pub backoff_base_ms: u64,
    /// Backoff ceiling.
    pub backoff_cap_ms: u64,
    /// Soft per-fetch deadline; fetches that take longer are counted in
    /// [`StreamReport::deadline_missed`]. `None` disables the bookkeeping.
    pub deadline_ms: Option<u64>,
}

impl Default for StreamOptions {
    fn default() -> StreamOptions {
        StreamOptions {
            cache_bytes: 8 << 20,
            prefetch_windows: 2,
            max_retries: 3,
            backoff_base_ms: 1,
            backoff_cap_ms: 50,
            deadline_ms: None,
        }
    }
}

/// Identity of one cached chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct ChunkKey {
    var: usize,
    window: usize,
    level: usize,
}

/// Decoded chunk: data plus validity mask, shared between cache and
/// callers without copying.
type ChunkData = (Vec<f32>, Vec<bool>);

struct CacheEntry {
    data: Arc<ChunkData>,
    bytes: usize,
    stamp: u64,
}

/// Byte-budgeted LRU of decoded chunks. All counters live here so a
/// single lock covers lookup + accounting.
struct ChunkCache {
    budget: usize,
    map: BTreeMap<ChunkKey, CacheEntry>,
    tick: u64,
    bytes: usize,
    peak_bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ChunkCache {
    fn new(budget: usize) -> ChunkCache {
        ChunkCache {
            budget,
            map: BTreeMap::new(),
            tick: 0,
            bytes: 0,
            peak_bytes: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks a chunk up, counting the hit/miss and refreshing recency.
    fn get(&mut self, key: &ChunkKey) -> Option<Arc<ChunkData>> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some(e) => {
                e.stamp = tick;
                self.hits += 1;
                Some(Arc::clone(&e.data))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// True when the chunk is resident; does not disturb the counters
    /// (used by the prefetcher to skip warm windows).
    fn contains(&self, key: &ChunkKey) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts a decoded chunk, evicting least-recently-used entries
    /// *first* so resident bytes never exceed the budget. A chunk larger
    /// than the whole budget is not cached at all.
    fn insert(&mut self, key: ChunkKey, data: Arc<ChunkData>, bytes: usize) {
        if bytes > self.budget {
            return;
        }
        while self.bytes + bytes > self.budget {
            let Some(oldest) =
                self.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| *k)
            else {
                break;
            };
            if let Some(e) = self.map.remove(&oldest) {
                self.bytes -= e.bytes;
                self.evictions += 1;
            }
        }
        self.tick += 1;
        let stamp = self.tick;
        if self.map.insert(key, CacheEntry { data, bytes, stamp }).is_none() {
            self.bytes += bytes;
        }
        self.peak_bytes = self.peak_bytes.max(self.bytes);
    }
}

/// Counters of everything a streaming session did, for asserting
/// fault-storm behaviour exactly and for benchmarking overhead.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamReport {
    /// Chunk frames successfully fetched and decoded from storage.
    pub chunk_reads: u64,
    /// Bytes of chunk frames read from storage (successful reads).
    pub bytes_read: u64,
    /// Cache hits / misses / evictions.
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub evictions: u64,
    /// Resident decoded bytes high-water mark (≤ the configured budget).
    pub peak_cache_bytes: u64,
    /// Transient-failure retries performed.
    pub retried: u64,
    /// Chunks permanently failed (negative-cached): hard I/O errors,
    /// checksum mismatches, short reads, or retry exhaustion.
    pub failed_chunks: u64,
    /// Frame serves that fell back to a coarser pyramid level.
    pub degraded: u64,
    /// Frame serves where every level was gone — masked fill.
    pub salvaged: u64,
    /// Fetches that blew the soft deadline.
    pub deadline_missed: u64,
}

impl std::fmt::Display for StreamReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} chunk reads ({} B), cache {}h/{}m/{}e (peak {} B), \
             {} retried, {} failed, {} degraded, {} salvaged, {} deadline-missed",
            self.chunk_reads,
            self.bytes_read,
            self.cache_hits,
            self.cache_misses,
            self.evictions,
            self.peak_cache_bytes,
            self.retried,
            self.failed_chunks,
            self.degraded,
            self.salvaged,
            self.deadline_missed
        )
    }
}

/// Non-cache counters, behind their own lock.
#[derive(Default)]
struct ReportCore {
    chunk_reads: u64,
    bytes_read: u64,
    retried: u64,
    failed_chunks: u64,
    degraded: u64,
    salvaged: u64,
    deadline_missed: u64,
}

/// How a window's data was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Served {
    /// Full resolution (level 0).
    Full,
    /// Upsampled from this coarser pyramid level.
    Degraded(usize),
    /// Every level failed; fully-masked fill.
    Masked,
}

struct Shared {
    storage: Arc<dyn Storage>,
    path: PathBuf,
    meta: V3Meta,
    opts: StreamOptions,
    cache: Mutex<ChunkCache>,
    /// Chunks that failed permanently; later fetches fail fast.
    failed: Mutex<BTreeSet<ChunkKey>>,
    report: Mutex<ReportCore>,
}

/// A v3 file opened for streaming: metadata resident, bulk data fetched
/// chunk-by-chunk on demand.
pub struct StreamingDataset {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for StreamingDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingDataset")
            .field("path", &self.shared.path)
            .field("id", &self.shared.meta.id)
            .field("vars", &self.shared.meta.vars.len())
            .field("chunks", &self.shared.meta.chunks.len())
            .finish()
    }
}

impl StreamingDataset {
    /// Opens a v3 file on the local filesystem with default options.
    pub fn open(path: &Path) -> Result<StreamingDataset> {
        StreamingDataset::open_with(Arc::new(LocalDisk), path, StreamOptions::default())
    }

    /// Opens a v3 file through an explicit backend. Only metadata is read
    /// here; the first chunk I/O happens on the first frame access.
    pub fn open_with(
        storage: Arc<dyn Storage>,
        path: &Path,
        opts: StreamOptions,
    ) -> Result<StreamingDataset> {
        let meta = format_v3::read_meta_with(storage.as_ref(), path)?;
        let cache = Mutex::new(ChunkCache::new(opts.cache_bytes.max(1)));
        Ok(StreamingDataset {
            shared: Arc::new(Shared {
                storage,
                path: path.to_path_buf(),
                meta,
                opts,
                cache,
                failed: Mutex::new(BTreeSet::new()),
                report: Mutex::new(ReportCore::default()),
            }),
        })
    }

    /// Dataset id from the header.
    pub fn id(&self) -> &str {
        &self.shared.meta.id
    }

    /// The decoded file metadata (axes, per-variable shapes, chunk map).
    pub fn meta(&self) -> &V3Meta {
        &self.shared.meta
    }

    /// Ids of the variables in the file.
    pub fn variable_ids(&self) -> Vec<&str> {
        self.shared.meta.vars.iter().map(|v| v.id.as_str()).collect()
    }

    /// A lazy view of one variable.
    pub fn variable(&self, id: &str) -> Result<StreamingVariable> {
        let var = self
            .shared
            .meta
            .var_index(id)
            .ok_or_else(|| CdmsError::NotFound(format!("variable '{id}'")))?;
        Ok(StreamingVariable { shared: Arc::clone(&self.shared), var })
    }

    /// Snapshot of everything the session has done so far.
    pub fn report(&self) -> StreamReport {
        let core = self.shared.report.lock();
        let cache = self.shared.cache.lock();
        StreamReport {
            chunk_reads: core.chunk_reads,
            bytes_read: core.bytes_read,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            evictions: cache.evictions,
            peak_cache_bytes: cache.peak_bytes as u64,
            retried: core.retried,
            failed_chunks: core.failed_chunks,
            degraded: core.degraded,
            salvaged: core.salvaged,
            deadline_missed: core.deadline_missed,
        }
    }
}

/// A lazy, bounded-memory view of one variable in a streaming session.
/// Cloning is cheap (shared cache, report, and negative cache).
#[derive(Clone)]
pub struct StreamingVariable {
    shared: Arc<Shared>,
    var: usize,
}

impl std::fmt::Debug for StreamingVariable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingVariable")
            .field("id", &self.id())
            .field("shape", &self.shape())
            .finish()
    }
}

impl StreamingVariable {
    fn meta(&self) -> Result<&V3VarMeta> {
        self.shared
            .meta
            .vars
            .get(self.var)
            .ok_or_else(|| CdmsError::NotFound(format!("variable ordinal {}", self.var)))
    }

    /// The variable's id.
    pub fn id(&self) -> &str {
        self.shared
            .meta
            .vars
            .get(self.var)
            .map(|m| m.id.as_str())
            .unwrap_or("")
    }

    /// Full (not per-window) shape.
    pub fn shape(&self) -> &[usize] {
        self.shared
            .meta
            .vars
            .get(self.var)
            .map(|m| m.shape.as_slice())
            .unwrap_or(&[])
    }

    /// Number of time steps (1 when there is no time axis).
    pub fn n_times(&self) -> usize {
        self.shared.meta.vars.get(self.var).map(|m| m.n_times()).unwrap_or(0)
    }

    /// Number of chunk windows.
    pub fn n_windows(&self) -> usize {
        self.shared.meta.vars.get(self.var).map(|m| m.n_windows()).unwrap_or(0)
    }

    /// Whether the variable carries a time axis (and hence real frames).
    pub fn has_time_axis(&self) -> bool {
        self.shared.meta.vars.get(self.var).is_some_and(|m| m.time_axis.is_some())
    }

    /// Session counters (shared with the owning dataset).
    pub fn report(&self) -> StreamReport {
        StreamingDataset { shared: Arc::clone(&self.shared) }.report()
    }

    // ---- chunk fetch ----

    /// Fetches and decodes one chunk: cache → negative cache → ranged
    /// read with transient retry. No lock is held across I/O or backoff.
    fn fetch_chunk(&self, key: ChunkKey) -> Result<Arc<ChunkData>> {
        if let Some(data) = self.shared.cache.lock().get(&key) {
            return Ok(data);
        }
        if self.shared.failed.lock().contains(&key) {
            return Err(CdmsError::Io(format!(
                "chunk ({},{},{}) previously failed permanently",
                key.var, key.window, key.level
            )));
        }
        let entry: ChunkDirEntry =
            *self.shared.meta.chunk(key.var, key.window, key.level).ok_or_else(|| {
                CdmsError::NotFound(format!(
                    "chunk ({},{},{}) in directory",
                    key.var, key.window, key.level
                ))
            })?;
        let meta = self.meta()?;
        let n = meta.level_volume(key.window, key.level).ok_or_else(|| {
            CdmsError::Format(format!("variable '{}': level shape overflows", meta.id))
        })?;

        let opts = &self.shared.opts;
        let started = Instant::now();
        let mut attempt = 0u32;
        let decoded: ChunkData = loop {
            match self.shared.storage.read_at(&self.shared.path, entry.offset, entry.frame_len())
            {
                Ok(frame) => {
                    let verified = format_v3::verify_chunk_frame(&frame, &entry).and_then(|p| {
                        format_v3::decode_chunk_payload(p, (key.var, key.window, key.level), n)
                    });
                    match verified {
                        Ok(dm) => break dm,
                        // corruption (bad CRC, short frame, bad codec):
                        // retrying the same bytes cannot help
                        Err(e) => return Err(self.fail_chunk(key, e)),
                    }
                }
                Err(e) if e.is_transient() && attempt < opts.max_retries => {
                    attempt += 1;
                    self.shared.report.lock().retried += 1;
                    let shift = (attempt - 1).min(16);
                    let ms = opts
                        .backoff_base_ms
                        .saturating_mul(1u64 << shift)
                        .min(opts.backoff_cap_ms);
                    std::thread::sleep(Duration::from_millis(ms));
                }
                Err(e) => return Err(self.fail_chunk(key, e)),
            }
        };
        if let Some(dl) = opts.deadline_ms {
            if started.elapsed() > Duration::from_millis(dl) {
                self.shared.report.lock().deadline_missed += 1;
            }
        }
        {
            let mut core = self.shared.report.lock();
            core.chunk_reads += 1;
            core.bytes_read += entry.frame_len() as u64;
        }
        let bytes = decoded.0.len() * 4 + decoded.1.len();
        let data = Arc::new(decoded);
        self.shared.cache.lock().insert(key, Arc::clone(&data), bytes);
        Ok(data)
    }

    /// Negative-caches a permanently failed chunk and counts it once.
    fn fail_chunk(&self, key: ChunkKey, e: CdmsError) -> CdmsError {
        if self.shared.failed.lock().insert(key) {
            self.shared.report.lock().failed_chunks += 1;
        }
        e
    }

    /// Window `w` at full resolution, strict: any failure propagates.
    fn window_strict(&self, w: usize) -> Result<Arc<ChunkData>> {
        self.fetch_chunk(ChunkKey { var: self.var, window: w, level: 0 })
    }

    /// Window `w` at the best available fidelity. Never fails on I/O or
    /// corruption: level 0, else the first intact coarser level upsampled
    /// to full resolution, else a fully-masked slab.
    fn window_degraded(&self, w: usize) -> Result<(Arc<ChunkData>, Served)> {
        if let Ok(data) = self.window_strict(w) {
            return Ok((data, Served::Full));
        }
        let meta = self.meta()?;
        let full_shape = meta.slab_shape(w);
        for level in 1..meta.levels {
            let Ok(coarse) = self.fetch_chunk(ChunkKey { var: self.var, window: w, level })
            else {
                continue;
            };
            let from_shape = meta.level_shape(w, level);
            let (d, m) = &*coarse;
            let (data, mask) = match upsample_nearest(d, m, &from_shape, &full_shape) {
                Ok(up) => up,
                Err(_) => continue,
            };
            self.shared.report.lock().degraded += 1;
            return Ok((Arc::new((data, mask)), Served::Degraded(level)));
        }
        let n = crate::format::checked_volume(&full_shape)
            .ok_or_else(|| CdmsError::Format(format!("variable '{}': shape overflows", meta.id)))?;
        self.shared.report.lock().salvaged += 1;
        Ok((Arc::new((vec![0.0; n], vec![true; n])), Served::Masked))
    }

    // ---- frame access ----

    /// One time step at full resolution, strict: the time axis is dropped,
    /// like [`Variable::time_slab`]. Any storage fault propagates.
    pub fn time_slab(&self, t: usize) -> Result<Variable> {
        let (w, k) = self.locate(t)?;
        let data = self.window_strict(w)?;
        self.assemble_step(&data, w, k)
    }

    /// One time step at the best available fidelity — the call that keeps
    /// an animation running through a fault storm. Falls back to a coarser
    /// pyramid level (upsampled) or a masked slab; the only remaining
    /// errors are out-of-range `t` and metadata inconsistencies. After
    /// serving, prefetches the next [`StreamOptions::prefetch_windows`]
    /// windows.
    pub fn time_slab_degraded(&self, t: usize) -> Result<Variable> {
        let (w, k) = self.locate(t)?;
        let (data, _served) = self.window_degraded(w)?;
        let out = self.assemble_step(&data, w, k)?;
        self.prefetch_from(w + 1);
        Ok(out)
    }

    /// Chunk window `w` as a [`Variable`] with the time axis kept (sliced
    /// to the window's steps) — the unit a streaming task-graph source
    /// serves. Strict: any storage fault propagates.
    pub fn window_variable(&self, w: usize) -> Result<Variable> {
        let data = self.window_strict(w)?;
        self.assemble_window(&data, w)
    }

    /// Like [`StreamingVariable::window_variable`] at the best available
    /// fidelity: a damaged window degrades to an upsampled pyramid level
    /// or, at worst, a fully-masked slab instead of failing.
    pub fn window_variable_degraded(&self, w: usize) -> Result<Variable> {
        let (data, _served) = self.window_degraded(w)?;
        self.assemble_window(&data, w)
    }

    /// Pulls the level-0 chunks of up to `prefetch_windows` windows
    /// starting at `w` into the cache, skipping warm and known-dead ones.
    /// Failures are absorbed (they are negative-cached for later serves).
    pub fn prefetch_from(&self, w: usize) {
        let Ok(meta) = self.meta() else { return };
        let n_windows = meta.n_windows();
        let count = self.shared.opts.prefetch_windows;
        for w2 in w..(w + count).min(n_windows) {
            let key = ChunkKey { var: self.var, window: w2, level: 0 };
            let warm =
                self.shared.cache.lock().contains(&key) || self.shared.failed.lock().contains(&key);
            if warm {
                continue;
            }
            let _ = self.fetch_chunk(key);
        }
    }

    /// Materializes the whole variable (strict, full resolution) —
    /// bounded-memory only in the sense that chunks stream through the
    /// cache; the result itself is the full array.
    pub fn materialize(&self) -> Result<Variable> {
        let meta = self.meta()?.clone();
        let volume = crate::format::checked_volume(&meta.shape)
            .ok_or_else(|| CdmsError::Format(format!("variable '{}': shape overflows", meta.id)))?;
        let mut data = vec![0.0f32; volume];
        let mut mask = vec![false; volume];
        for w in 0..meta.n_windows() {
            let chunk = self.window_strict(w)?;
            let (cd, cm) = &*chunk;
            format_v3::scatter_window(
                cd,
                cm,
                &mut data,
                &mut mask,
                &meta.shape,
                meta.time_axis,
                meta.window_range(w),
            )?;
        }
        let array = MaskedArray::with_mask(data, mask, &meta.shape)?;
        let axes = self.shared.meta.var_axes(self.var)?;
        let mut var = Variable::new(&meta.id, array, axes)?;
        var.attributes = meta.attributes.clone();
        Ok(var)
    }

    // ---- internals ----

    /// Maps a global time step to (window, index-within-window).
    fn locate(&self, t: usize) -> Result<(usize, usize)> {
        let meta = self.meta()?;
        let n = meta.n_times();
        match meta.time_axis {
            Some(_) => {
                if t >= n {
                    return Err(CdmsError::Invalid(format!(
                        "time step {t} out of range for {n} step(s) on '{}'",
                        meta.id
                    )));
                }
                Ok((t / meta.window.max(1), t % meta.window.max(1)))
            }
            None => {
                if t != 0 {
                    return Err(CdmsError::Invalid(format!(
                        "time step {t} on '{}' which has no time axis",
                        meta.id
                    )));
                }
                Ok((0, 0))
            }
        }
    }

    /// Builds the window-`w` [`Variable`] (time axis kept, sliced to the
    /// window) from that window's full-resolution-shaped data.
    fn assemble_window(&self, chunk: &ChunkData, w: usize) -> Result<Variable> {
        let meta = self.meta()?;
        let slab_shape = meta.slab_shape(w);
        let range = meta.window_range(w);
        let axes = self.shared.meta.var_axes(self.var)?;
        let out_axes = axes
            .into_iter()
            .map(|ax| {
                if ax.kind == AxisKind::Time {
                    ax.subset(range.start, range.end)
                } else {
                    Ok(ax)
                }
            })
            .collect::<Result<Vec<_>>>()?;
        let array = MaskedArray::with_mask(chunk.0.clone(), chunk.1.clone(), &slab_shape)?;
        let mut var = Variable::new(&meta.id, array, out_axes)?;
        var.attributes = meta.attributes.clone();
        Ok(var)
    }

    /// Builds the time-axis-dropped [`Variable`] for step `k` of window
    /// `w` from that window's full-resolution-shaped data.
    fn assemble_step(&self, chunk: &ChunkData, w: usize, k: usize) -> Result<Variable> {
        let meta = self.meta()?;
        let slab_shape = meta.slab_shape(w);
        let (data, mask) = extract_step(&chunk.0, &chunk.1, &slab_shape, meta.time_axis, k)?;
        let out_shape: Vec<usize> = slab_shape
            .iter()
            .enumerate()
            .filter(|(d, _)| Some(*d) != meta.time_axis)
            .map(|(_, &v)| v)
            .collect();
        let axes = self.shared.meta.var_axes(self.var)?;
        let out_axes = axes
            .into_iter()
            .filter(|ax| ax.kind != AxisKind::Time)
            .collect();
        let array = MaskedArray::with_mask(data, mask, &out_shape)?;
        let mut var = Variable::new(&meta.id, array, out_axes)?;
        var.attributes = meta.attributes.clone();
        Ok(var)
    }
}

/// Copies time step `k` out of a window slab, dropping the time dim.
fn extract_step(
    data: &[f32],
    mask: &[bool],
    slab_shape: &[usize],
    time_axis: Option<usize>,
    k: usize,
) -> Result<ChunkData> {
    let Some(t) = time_axis else {
        if k != 0 {
            return Err(CdmsError::Invalid(format!("step {k} of a windowless slab")));
        }
        return Ok((data.to_vec(), mask.to_vec()));
    };
    let wlen = slab_shape.get(t).copied().unwrap_or(0);
    if k >= wlen {
        return Err(CdmsError::Invalid(format!("step {k} out of range for window of {wlen}")));
    }
    let pre: usize = slab_shape.get(..t).map(|s| s.iter().product()).unwrap_or(1);
    let post: usize = slab_shape.get(t + 1..).map(|s| s.iter().product()).unwrap_or(1);
    let mut out = Vec::with_capacity(pre * post);
    let mut out_mask = Vec::with_capacity(pre * post);
    for p in 0..pre {
        let src = (p * wlen + k) * post;
        let (Some(d), Some(m)) = (data.get(src..src + post), mask.get(src..src + post)) else {
            return Err(CdmsError::Format("window slab shorter than its shape".into()));
        };
        out.extend_from_slice(d);
        out_mask.extend_from_slice(m);
    }
    Ok((out, out_mask))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format_v3::V3Options;
    use crate::storage::{FaultyStorage, StorageFault, StorageFaultPlan};
    use crate::synth::SynthesisSpec;
    use crate::Dataset;

    fn write_sample(name: &str, opts: &V3Options) -> (Dataset, std::path::PathBuf) {
        let dir = std::env::temp_dir().join("cdms_stream_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let ds = SynthesisSpec::new(8, 2, 6, 10).seed(5).build();
        crate::storage::write_atomic(&LocalDisk, &path, &crate::format_v3::to_bytes_v3_with(&ds, opts).0)
            .unwrap();
        (ds, path)
    }

    #[test]
    fn streamed_frames_match_in_memory_slabs() {
        let opts = V3Options { window: 3, levels: 2, compress: true };
        let (ds, path) = write_sample("frames.ncr", &opts);
        let sd = StreamingDataset::open(&path).unwrap();
        assert_eq!(sd.id(), ds.id);
        for var in ds.variables() {
            let sv = sd.variable(&var.id).unwrap();
            if var.axis_index(AxisKind::Time).is_none() {
                // windowless variable: one "step" carrying the whole array
                let streamed = sv.time_slab(0).unwrap();
                assert_eq!(streamed.array, var.array, "var '{}'", var.id);
                assert_eq!(streamed.axes, var.axes);
                continue;
            }
            assert_eq!(sv.n_times(), var.n_times());
            for t in 0..sv.n_times() {
                let streamed = sv.time_slab(t).unwrap();
                let direct = var.time_slab(t).unwrap();
                assert_eq!(streamed.array, direct.array, "var '{}' t={t}", var.id);
                assert_eq!(streamed.axes, direct.axes);
            }
        }
        let report = sd.report();
        assert!(report.chunk_reads > 0);
        assert_eq!(report.failed_chunks, 0);
        assert_eq!(report.degraded + report.salvaged, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn window_variables_match_in_memory_time_windows() {
        let opts = V3Options { window: 3, levels: 2, compress: true };
        let (ds, path) = write_sample("winvar.ncr", &opts);
        let sd = StreamingDataset::open(&path).unwrap();
        let ta = ds.variable("ta").unwrap();
        let sv = sd.variable("ta").unwrap();
        for w in 0..sv.n_windows() {
            let got = sv.window_variable(w).unwrap();
            let vi = sd.meta().var_index("ta").unwrap();
            let range = sd.meta().vars[vi].window_range(w);
            let want = ta.time_window(range).unwrap();
            assert_eq!(got.array, want.array, "window {w}");
            assert_eq!(got.axes, want.axes, "window {w}");
            // and the degraded path is identical on healthy storage
            assert_eq!(sv.window_variable_degraded(w).unwrap().array, want.array);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn materialize_matches_source() {
        let opts = V3Options { window: 4, levels: 2, compress: false };
        let (ds, path) = write_sample("mat.ncr", &opts);
        let sd = StreamingDataset::open(&path).unwrap();
        for var in ds.variables() {
            let got = sd.variable(&var.id).unwrap().materialize().unwrap();
            assert_eq!(got.array, var.array);
            assert_eq!(got.axes, var.axes);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cache_budget_is_a_hard_ceiling() {
        let opts = V3Options { window: 1, levels: 1, compress: false };
        let (_, path) = write_sample("budget.ncr", &opts);
        // one window = 2*6*10 floats = 540 B decoded; budget of ~2 windows
        let sopts = StreamOptions {
            cache_bytes: 1200,
            prefetch_windows: 0,
            ..StreamOptions::default()
        };
        let sd = StreamingDataset::open_with(Arc::new(LocalDisk), &path, sopts).unwrap();
        let sv = sd.variable("ta").unwrap();
        for t in 0..sv.n_times() {
            sv.time_slab(t).unwrap();
        }
        // revisit to force churn
        for t in (0..sv.n_times()).rev() {
            sv.time_slab(t).unwrap();
        }
        let report = sd.report();
        assert!(report.peak_cache_bytes <= 1200, "{report}");
        assert!(report.evictions > 0, "{report}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn transient_read_faults_retry_and_succeed() {
        let opts = V3Options { window: 2, levels: 2, compress: true };
        let (ds, path) = write_sample("transient.ncr", &opts);
        let meta = format_v3::read_meta_with(&LocalDisk, &path).unwrap();
        let entry = *meta.chunk(0, 0, 0).unwrap();
        let plan = StorageFaultPlan::none().inject_read(
            entry.offset..entry.offset + 1,
            StorageFault::Transient { times: 0 },
            2,
        );
        let faulty: Arc<dyn Storage> = Arc::new(FaultyStorage::new(plan));
        let sopts = StreamOptions {
            prefetch_windows: 0,
            backoff_base_ms: 0,
            ..StreamOptions::default()
        };
        let sd = StreamingDataset::open_with(faulty, &path, sopts).unwrap();
        let vid = meta.vars.first().unwrap().id.clone();
        let sv = sd.variable(&vid).unwrap();
        let got = sv.time_slab(0).unwrap();
        assert_eq!(got.array, ds.variable(&vid).unwrap().time_slab(0).unwrap().array);
        let report = sd.report();
        assert_eq!(report.retried, 2, "{report}");
        assert_eq!(report.failed_chunks, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn hard_fault_degrades_then_masks() {
        let opts = V3Options { window: 2, levels: 2, compress: true };
        let (ds, path) = write_sample("degrade.ncr", &opts);
        let meta = format_v3::read_meta_with(&LocalDisk, &path).unwrap();
        let vid = meta.vars.first().unwrap().id.clone();
        let e00 = *meta.chunk(0, 0, 0).unwrap();
        let e10 = *meta.chunk(0, 1, 0).unwrap();
        let e11 = *meta.chunk(0, 1, 1).unwrap();
        // window 0: level 0 dead, level 1 intact → degraded
        // window 1: both levels dead → masked
        let plan = StorageFaultPlan::none()
            .inject_read(e00.offset..e00.offset + 1, StorageFault::ReadError, 0)
            .inject_read(e10.offset..e10.offset + 1, StorageFault::ReadError, 0)
            .inject_read(e11.offset..e11.offset + 1, StorageFault::BitFlip { bit: 400 }, 0);
        let sopts = StreamOptions { prefetch_windows: 0, ..StreamOptions::default() };
        let sd =
            StreamingDataset::open_with(Arc::new(FaultyStorage::new(plan)), &path, sopts).unwrap();
        let sv = sd.variable(&vid).unwrap();
        // strict access fails…
        assert!(sv.time_slab(0).is_err());
        // …degraded access always yields a frame
        let f0 = sv.time_slab_degraded(0).unwrap();
        assert!(f0.array.valid_count() > 0, "window 0 comes from the pyramid");
        let f2 = sv.time_slab_degraded(2).unwrap();
        assert_eq!(f2.array.valid_count(), 0, "window 1 is masked fill");
        // undamaged window is bit-exact
        let f4 = sv.time_slab_degraded(4).unwrap();
        assert_eq!(f4.array, ds.variable(&vid).unwrap().time_slab(4).unwrap().array);
        let report = sd.report();
        assert_eq!(report.degraded, 1, "{report}");
        assert_eq!(report.salvaged, 1, "{report}");
        assert_eq!(report.failed_chunks, 3, "{report}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn delayed_read_counts_deadline_miss() {
        let opts = V3Options { window: 2, levels: 1, compress: false };
        let (_, path) = write_sample("deadline.ncr", &opts);
        let meta = format_v3::read_meta_with(&LocalDisk, &path).unwrap();
        let entry = *meta.chunk(0, 0, 0).unwrap();
        let plan = StorageFaultPlan::none().inject_read(
            entry.offset..entry.offset + 1,
            StorageFault::DelayedRead { ms: 40 },
            1,
        );
        let sopts = StreamOptions {
            prefetch_windows: 0,
            deadline_ms: Some(5),
            ..StreamOptions::default()
        };
        let sd =
            StreamingDataset::open_with(Arc::new(FaultyStorage::new(plan)), &path, sopts).unwrap();
        let vid = meta.vars.first().unwrap().id.clone();
        let sv = sd.variable(&vid).unwrap();
        sv.time_slab(0).unwrap(); // slow but correct
        sv.time_slab(2).unwrap(); // clean
        let report = sd.report();
        assert_eq!(report.deadline_missed, 1, "{report}");
        assert_eq!(report.failed_chunks, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn prefetch_warms_the_next_window() {
        let opts = V3Options { window: 2, levels: 1, compress: false };
        let (_, path) = write_sample("prefetch.ncr", &opts);
        let sopts = StreamOptions { prefetch_windows: 1, ..StreamOptions::default() };
        let sd = StreamingDataset::open_with(Arc::new(LocalDisk), &path, sopts).unwrap();
        let sv = sd.variable("ta").unwrap();
        sv.time_slab_degraded(0).unwrap(); // serves w0, prefetches w1
        let before = sd.report();
        sv.time_slab_degraded(2).unwrap(); // w1 must be warm
        let after = sd.report();
        assert_eq!(after.chunk_reads, before.chunk_reads + 1, "only w2's prefetch reads");
        assert!(after.cache_hits > before.cache_hits);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_v2_files() {
        let dir = std::env::temp_dir().join("cdms_stream_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v2.ncr");
        let ds = SynthesisSpec::new(2, 1, 4, 4).seed(1).build();
        crate::format::write_dataset(&ds, &path).unwrap();
        let err = StreamingDataset::open(&path).unwrap_err();
        assert!(err.to_string().contains("not streamable"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
