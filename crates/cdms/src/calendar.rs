//! Model calendars and relative-time encoding, mirroring `cdtime`.
//!
//! Climate models rarely run on the real-world calendar: CMIP-class models
//! use 365-day ("noleap") or 360-day calendars. Time axes store *relative*
//! times — "days since 2000-1-1" — which must be decoded against the
//! dataset's calendar to component times (year/month/day/…).

use crate::error::{CdmsError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Supported model calendars.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Calendar {
    /// Proleptic Gregorian with real leap years.
    #[default]
    Gregorian,
    /// Every year has 365 days (no leap years). CMIP "noleap".
    NoLeap365,
    /// Every year has 366 days. CMIP "all_leap".
    AllLeap366,
    /// Twelve 30-day months.
    Day360,
}

impl Calendar {
    /// Parses the CF `calendar` attribute string.
    pub fn parse(s: &str) -> Result<Calendar> {
        match s.to_ascii_lowercase().as_str() {
            "gregorian" | "standard" | "proleptic_gregorian" => Ok(Calendar::Gregorian),
            "noleap" | "365_day" => Ok(Calendar::NoLeap365),
            "all_leap" | "366_day" => Ok(Calendar::AllLeap366),
            "360_day" => Ok(Calendar::Day360),
            other => Err(CdmsError::Time(format!("unknown calendar '{other}'"))),
        }
    }

    /// CF attribute string for this calendar.
    pub fn cf_name(&self) -> &'static str {
        match self {
            Calendar::Gregorian => "gregorian",
            Calendar::NoLeap365 => "noleap",
            Calendar::AllLeap366 => "all_leap",
            Calendar::Day360 => "360_day",
        }
    }

    /// Whether `year` is a leap year under this calendar.
    pub fn is_leap(&self, year: i64) -> bool {
        match self {
            Calendar::Gregorian => (year % 4 == 0 && year % 100 != 0) || year % 400 == 0,
            Calendar::NoLeap365 | Calendar::Day360 => false,
            Calendar::AllLeap366 => true,
        }
    }

    /// Days in `month` (1-based) of `year`.
    pub fn days_in_month(&self, year: i64, month: u32) -> u32 {
        if *self == Calendar::Day360 {
            return 30;
        }
        match month {
            1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
            4 | 6 | 9 | 11 => 30,
            2 => {
                if self.is_leap(year) {
                    29
                } else {
                    28
                }
            }
            _ => 0,
        }
    }

    /// Days in `year`.
    pub fn days_in_year(&self, year: i64) -> u32 {
        match self {
            Calendar::Day360 => 360,
            Calendar::NoLeap365 => 365,
            Calendar::AllLeap366 => 366,
            Calendar::Gregorian => {
                if self.is_leap(year) {
                    366
                } else {
                    365
                }
            }
        }
    }

    /// Days from the calendar origin (0001-01-01) to the start of `year`.
    fn days_to_year(&self, year: i64) -> i64 {
        match self {
            Calendar::Day360 => (year - 1) * 360,
            Calendar::NoLeap365 => (year - 1) * 365,
            Calendar::AllLeap366 => (year - 1) * 366,
            Calendar::Gregorian => {
                let y = year - 1;
                y * 365 + y.div_euclid(4) - y.div_euclid(100) + y.div_euclid(400)
            }
        }
    }

    /// Absolute day number (days since 0001-01-01 00:00) of a component time.
    pub fn absolute_days(&self, t: &CompTime) -> f64 {
        let mut days = self.days_to_year(t.year);
        for m in 1..t.month {
            days += self.days_in_month(t.year, m) as i64;
        }
        days += (t.day as i64) - 1;
        days as f64 + (t.hour as f64) / 24.0 + (t.minute as f64) / 1440.0 + t.second / 86400.0
    }

    /// Inverse of [`Calendar::absolute_days`].
    pub fn from_absolute_days(&self, mut days: f64) -> CompTime {
        // Find the year by stepping; fast estimate then refine.
        let approx_len = match self {
            Calendar::Day360 => 360.0,
            Calendar::NoLeap365 => 365.0,
            Calendar::AllLeap366 => 366.0,
            Calendar::Gregorian => 365.2425,
        };
        let mut year = (days / approx_len).floor() as i64 + 1;
        loop {
            let start = self.days_to_year(year) as f64;
            if days < start {
                year -= 1;
            } else if days >= start + self.days_in_year(year) as f64 {
                year += 1;
            } else {
                break;
            }
        }
        days -= self.days_to_year(year) as f64;
        let mut month = 1u32;
        loop {
            let dm = self.days_in_month(year, month) as f64;
            if days < dm || month == 12 {
                break;
            }
            days -= dm;
            month += 1;
        }
        let day = days.floor();
        let mut frac = (days - day) * 24.0;
        let hour = frac.floor();
        frac = (frac - hour) * 60.0;
        let minute = frac.floor();
        let second = (frac - minute) * 60.0;
        CompTime {
            year,
            month,
            day: day as u32 + 1,
            hour: hour as u32,
            minute: minute as u32,
            second,
        }
    }
}

/// A component ("calendar") time: year/month/day hour:minute:second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompTime {
    pub year: i64,
    /// 1-based month.
    pub month: u32,
    /// 1-based day of month.
    pub day: u32,
    pub hour: u32,
    pub minute: u32,
    pub second: f64,
}

impl CompTime {
    /// Midnight on the given date.
    pub fn date(year: i64, month: u32, day: u32) -> Self {
        CompTime { year, month, day, hour: 0, minute: 0, second: 0.0 }
    }
}

impl fmt::Display for CompTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:04}-{:02}-{:02} {:02}:{:02}:{:04.1}",
            self.year, self.month, self.day, self.hour, self.minute, self.second
        )
    }
}

/// Units of a relative-time axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimeUnits {
    Seconds,
    Minutes,
    Hours,
    Days,
    Months,
    Years,
}

impl TimeUnits {
    /// Length of one unit in days; months/years are calendar-dependent and
    /// handled separately.
    pub fn days_per_unit(&self) -> Option<f64> {
        match self {
            TimeUnits::Seconds => Some(1.0 / 86400.0),
            TimeUnits::Minutes => Some(1.0 / 1440.0),
            TimeUnits::Hours => Some(1.0 / 24.0),
            TimeUnits::Days => Some(1.0),
            TimeUnits::Months | TimeUnits::Years => None,
        }
    }
}

/// A parsed relative-time unit string: `"<units> since <date>"`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelTime {
    pub units: TimeUnits,
    pub epoch: CompTime,
}

impl RelTime {
    /// Parses strings like `"days since 2000-01-01"` or
    /// `"hours since 1979-1-1 06:30:00"`.
    pub fn parse(s: &str) -> Result<RelTime> {
        let lower = s.trim().to_ascii_lowercase();
        let mut parts = lower.split_whitespace();
        let unit_word = parts.next().ok_or_else(|| CdmsError::Time("empty units".into()))?;
        let units = match unit_word {
            "second" | "seconds" | "sec" | "secs" | "s" => TimeUnits::Seconds,
            "minute" | "minutes" | "min" | "mins" => TimeUnits::Minutes,
            "hour" | "hours" | "hr" | "hrs" | "h" => TimeUnits::Hours,
            "day" | "days" | "d" => TimeUnits::Days,
            "month" | "months" | "mon" | "mons" => TimeUnits::Months,
            "year" | "years" | "yr" | "yrs" => TimeUnits::Years,
            other => return Err(CdmsError::Time(format!("unknown time unit '{other}'"))),
        };
        let since = parts.next();
        if since != Some("since") {
            return Err(CdmsError::Time(format!("expected 'since' in '{s}'")));
        }
        let date = parts.next().ok_or_else(|| CdmsError::Time(format!("missing date in '{s}'")))?;
        let mut dp = date.split('-');
        let year: i64 = dp
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| CdmsError::Time(format!("bad year in '{s}'")))?;
        let month: u32 = dp.next().and_then(|v| v.parse().ok()).unwrap_or(1);
        let day: u32 = dp.next().and_then(|v| v.parse().ok()).unwrap_or(1);
        let mut epoch = CompTime::date(year, month, day);
        if let Some(tod) = parts.next() {
            let mut tp = tod.split(':');
            epoch.hour = tp.next().and_then(|v| v.parse().ok()).unwrap_or(0);
            epoch.minute = tp.next().and_then(|v| v.parse().ok()).unwrap_or(0);
            epoch.second = tp.next().and_then(|v| v.parse().ok()).unwrap_or(0.0);
        }
        if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
            return Err(CdmsError::Time(format!("bad date in '{s}'")));
        }
        Ok(RelTime { units, epoch })
    }

    /// Canonical unit string (`"days since 2000-01-01 00:00:0.0"` style).
    pub fn to_units_string(&self) -> String {
        let unit = match self.units {
            TimeUnits::Seconds => "seconds",
            TimeUnits::Minutes => "minutes",
            TimeUnits::Hours => "hours",
            TimeUnits::Days => "days",
            TimeUnits::Months => "months",
            TimeUnits::Years => "years",
        };
        format!(
            "{unit} since {:04}-{:02}-{:02} {:02}:{:02}:{:02}",
            self.epoch.year,
            self.epoch.month,
            self.epoch.day,
            self.epoch.hour,
            self.epoch.minute,
            self.epoch.second as u32
        )
    }

    /// Decodes a relative value to a component time under `cal`.
    pub fn decode(&self, value: f64, cal: Calendar) -> CompTime {
        match self.units {
            TimeUnits::Months => {
                // Whole months step through the calendar; fractional months
                // interpolate within the destination month.
                let whole = value.floor() as i64;
                let frac = value - whole as f64;
                let total = self.epoch.month as i64 - 1 + whole;
                let year = self.epoch.year + total.div_euclid(12);
                let month = (total.rem_euclid(12) + 1) as u32;
                let base = CompTime { year, month, ..self.epoch };
                let days = cal.absolute_days(&base) + frac * cal.days_in_month(year, month) as f64;
                cal.from_absolute_days(days)
            }
            TimeUnits::Years => {
                let whole = value.floor() as i64;
                let frac = value - whole as f64;
                let year = self.epoch.year + whole;
                let base = CompTime { year, ..self.epoch };
                let days = cal.absolute_days(&base) + frac * cal.days_in_year(year) as f64;
                cal.from_absolute_days(days)
            }
            _ => {
                // dv3dlint: allow(no_panic) -- Months/Years are handled by the arms above; every remaining unit is fixed-length
                let days_per = self.units.days_per_unit().expect("fixed unit");
                let days = cal.absolute_days(&self.epoch) + value * days_per;
                cal.from_absolute_days(days)
            }
        }
    }

    /// Encodes a component time as a relative value under `cal`.
    /// Month/year units encode whole units from the epoch (CDMS behaviour).
    pub fn encode(&self, t: &CompTime, cal: Calendar) -> f64 {
        match self.units {
            TimeUnits::Months => {
                ((t.year - self.epoch.year) * 12 + t.month as i64 - self.epoch.month as i64) as f64
            }
            TimeUnits::Years => (t.year - self.epoch.year) as f64,
            _ => {
                let d = cal.absolute_days(t) - cal.absolute_days(&self.epoch);
                // dv3dlint: allow(no_panic) -- Months/Years are handled by the arms above; every remaining unit is fixed-length
                d / self.units.days_per_unit().expect("fixed unit")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_calendars() {
        assert_eq!(Calendar::parse("noleap").unwrap(), Calendar::NoLeap365);
        assert_eq!(Calendar::parse("STANDARD").unwrap(), Calendar::Gregorian);
        assert_eq!(Calendar::parse("360_day").unwrap(), Calendar::Day360);
        assert!(Calendar::parse("lunar").is_err());
    }

    #[test]
    fn gregorian_leap_rules() {
        let c = Calendar::Gregorian;
        assert!(c.is_leap(2000));
        assert!(!c.is_leap(1900));
        assert!(c.is_leap(2004));
        assert!(!c.is_leap(2001));
        assert_eq!(c.days_in_month(2000, 2), 29);
        assert_eq!(c.days_in_month(2001, 2), 28);
        assert_eq!(c.days_in_year(2000), 366);
    }

    #[test]
    fn fixed_calendars() {
        assert_eq!(Calendar::Day360.days_in_month(1999, 2), 30);
        assert_eq!(Calendar::Day360.days_in_year(1999), 360);
        assert_eq!(Calendar::NoLeap365.days_in_year(2000), 365);
        assert_eq!(Calendar::AllLeap366.days_in_month(2001, 2), 29);
    }

    #[test]
    fn absolute_roundtrip_all_calendars() {
        for cal in [
            Calendar::Gregorian,
            Calendar::NoLeap365,
            Calendar::AllLeap366,
            Calendar::Day360,
        ] {
            let t = CompTime { year: 1987, month: 7, day: 15, hour: 6, minute: 30, second: 0.0 };
            let days = cal.absolute_days(&t);
            let back = cal.from_absolute_days(days);
            assert_eq!(back.year, 1987, "{cal:?}");
            assert_eq!(back.month, 7, "{cal:?}");
            assert_eq!(back.day, 15, "{cal:?}");
            assert_eq!(back.hour, 6, "{cal:?}");
        }
    }

    #[test]
    fn parse_units_strings() {
        let r = RelTime::parse("days since 2000-01-01").unwrap();
        assert_eq!(r.units, TimeUnits::Days);
        assert_eq!(r.epoch.year, 2000);
        let r = RelTime::parse("hours since 1979-1-1 06:30:00").unwrap();
        assert_eq!(r.units, TimeUnits::Hours);
        assert_eq!(r.epoch.hour, 6);
        assert_eq!(r.epoch.minute, 30);
        assert!(RelTime::parse("fortnights since 2000-1-1").is_err());
        assert!(RelTime::parse("days 2000-1-1").is_err());
        assert!(RelTime::parse("days since 2000-13-01").is_err());
    }

    #[test]
    fn decode_days_gregorian() {
        let r = RelTime::parse("days since 2000-01-01").unwrap();
        let t = r.decode(31.0, Calendar::Gregorian);
        assert_eq!((t.year, t.month, t.day), (2000, 2, 1));
        // 2000 is a leap year: day 60 is Mar 1
        let t = r.decode(60.0, Calendar::Gregorian);
        assert_eq!((t.year, t.month, t.day), (2000, 3, 1));
        // under noleap, day 59 is already Mar 1
        let t = r.decode(59.0, Calendar::NoLeap365);
        assert_eq!((t.year, t.month, t.day), (2000, 3, 1));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let r = RelTime::parse("hours since 1979-01-01").unwrap();
        for cal in [Calendar::Gregorian, Calendar::NoLeap365, Calendar::Day360] {
            for v in [0.0, 1.5, 24.0, 8760.0, 100000.25] {
                let t = r.decode(v, cal);
                let back = r.encode(&t, cal);
                assert!((back - v).abs() < 1e-5, "{cal:?} v={v} back={back}");
            }
        }
    }

    #[test]
    fn month_units() {
        let r = RelTime::parse("months since 2000-01-01").unwrap();
        let t = r.decode(13.0, Calendar::NoLeap365);
        assert_eq!((t.year, t.month, t.day), (2001, 2, 1));
        assert_eq!(r.encode(&CompTime::date(2001, 2, 1), Calendar::NoLeap365), 13.0);
        // fractional month lands mid-month
        let t = r.decode(0.5, Calendar::Day360);
        assert_eq!(t.month, 1);
        assert_eq!(t.day, 16);
    }

    #[test]
    fn year_units() {
        let r = RelTime::parse("years since 1950-01-01").unwrap();
        let t = r.decode(55.0, Calendar::Gregorian);
        assert_eq!(t.year, 2005);
        assert_eq!(r.encode(&CompTime::date(2005, 1, 1), Calendar::Gregorian), 55.0);
    }

    #[test]
    fn units_string_roundtrip() {
        let r = RelTime::parse("days since 2000-01-01").unwrap();
        let s = r.to_units_string();
        let r2 = RelTime::parse(&s).unwrap();
        assert_eq!(r, r2);
    }

    #[test]
    fn display_comp_time() {
        let t = CompTime::date(2000, 1, 2);
        assert!(t.to_string().starts_with("2000-01-02"));
    }
}
