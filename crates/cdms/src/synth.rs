//! Deterministic synthetic climate fields.
//!
//! The paper's demonstrations run on NASA model output we do not have; this
//! module substitutes physically-shaped synthetic data so every DV3D plot
//! type shows the structures the paper's screenshots show:
//!
//! * `ta` — air temperature with a meridional gradient, a lapse rate in
//!   log-pressure, a zonal wavenumber-4 disturbance and a seasonal cycle.
//! * `zg` — geopotential height from the barometric relation.
//! * `hus` — specific humidity, moist tropics decaying upward.
//! * `ua`, `va` — horizontal winds derived *analytically from a
//!   streamfunction*, hence non-divergent: a subtropical jet plus a
//!   propagating wave (gives the vector-slicer streamlines structure).
//! * `wave` — an eastward-propagating equatorial wave with a known phase
//!   speed, the Hovmöller (Fig 4) workload; the measured slope of its
//!   Hovmöller ridge is checked against the configured speed.
//! * `sftlf` — a land-fraction field from thresholded low-frequency bumps
//!   (synthetic continents for base-map outlines).
//! * `tos` — sea-surface temperature, masked over land (exercises masks).
//! * `pr` — precipitation with an ITCZ band and noise.
//!
//! Everything is seeded and reproducible.

use crate::array::MaskedArray;
use crate::axis::Axis;
use crate::calendar::Calendar;
use crate::dataset::Dataset;
use crate::error::Result;
use crate::variable::Variable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Finalises a synthesis-internal construction. Every call site feeds data
/// this module just built — buffers filled by loops over exactly the shape
/// they are paired with, axis values generated monotonic — so an `Err` here
/// is a bug in `synth` itself, never a runtime input condition. Panicking
/// loudly (and in tests) is the right response to that bug.
fn built<T>(what: &str, r: Result<T>) -> T {
    match r {
        Ok(v) => v,
        // dv3dlint: allow(no_panic) -- shapes and axes are correct by construction in this module; see doc comment
        Err(e) => panic!("synth invariant broken building {what}: {e}"),
    }
}

/// Builds a variable around freshly synthesised data (see [`built`]).
fn synth_var(name: &str, arr: Result<MaskedArray>, axes: Vec<Axis>) -> Variable {
    built(name, arr.and_then(|a| Variable::new(name, a, axes)))
}

/// Standard pressure levels (hPa), top-down subset selected by `nlev`.
const STANDARD_PLEVS: [f64; 17] = [
    1000.0, 925.0, 850.0, 700.0, 600.0, 500.0, 400.0, 300.0, 250.0, 200.0, 150.0, 100.0, 70.0,
    50.0, 30.0, 20.0, 10.0,
];

/// Configuration for the synthetic-atmosphere generator.
#[derive(Debug, Clone)]
pub struct SynthesisSpec {
    /// Number of timesteps (daily).
    pub nt: usize,
    /// Number of pressure levels.
    pub nlev: usize,
    /// Number of latitudes.
    pub nlat: usize,
    /// Number of longitudes.
    pub nlon: usize,
    /// RNG seed for the noise component.
    pub seed: u64,
    /// Noise standard deviation (K for temperature-like fields).
    pub noise: f32,
    /// Eastward phase speed of the `wave` field, degrees/day.
    pub wave_speed_deg_per_day: f64,
    /// Zonal wavenumber of the `wave` field.
    pub wave_number: f64,
}

impl SynthesisSpec {
    /// A spec with sensible defaults for the given sizes.
    pub fn new(nt: usize, nlev: usize, nlat: usize, nlon: usize) -> SynthesisSpec {
        SynthesisSpec {
            nt,
            nlev: nlev.clamp(1, STANDARD_PLEVS.len()),
            nlat,
            nlon,
            seed: 42,
            noise: 0.5,
            wave_speed_deg_per_day: 8.0,
            wave_number: 5.0,
        }
    }

    /// Overrides the RNG seed.
    pub fn seed(mut self, seed: u64) -> SynthesisSpec {
        self.seed = seed;
        self
    }

    /// Overrides the noise amplitude.
    pub fn noise(mut self, noise: f32) -> SynthesisSpec {
        self.noise = noise;
        self
    }

    /// Overrides the Hovmöller wave parameters.
    pub fn wave(mut self, speed_deg_per_day: f64, wavenumber: f64) -> SynthesisSpec {
        self.wave_speed_deg_per_day = speed_deg_per_day;
        self.wave_number = wavenumber;
        self
    }

    /// The time axis (daily, noleap calendar, from 2000-01-01).
    pub fn time_axis(&self) -> Axis {
        built(
            "time axis",
            Axis::time(
                (0..self.nt).map(|t| t as f64).collect(),
                "days since 2000-01-01",
                Calendar::NoLeap365,
            ),
        )
    }

    /// The pressure-level axis (hPa, descending pressure = ascending height).
    pub fn level_axis(&self) -> Axis {
        built("level axis", Axis::pressure_levels(STANDARD_PLEVS[..self.nlev].to_vec()))
    }

    /// The latitude axis (uniform cell centres, pole-inset).
    pub fn lat_axis(&self) -> Axis {
        let dlat = 180.0 / self.nlat as f64;
        built(
            "latitude axis",
            Axis::latitude((0..self.nlat).map(|i| -90.0 + dlat / 2.0 + dlat * i as f64).collect()),
        )
    }

    /// The longitude axis (uniform, global, starting at 0°E).
    pub fn lon_axis(&self) -> Axis {
        let dlon = 360.0 / self.nlon as f64;
        built("longitude axis", Axis::longitude((0..self.nlon).map(|i| dlon * i as f64).collect()))
    }

    /// Generates the full synthetic dataset.
    pub fn build(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let time = self.time_axis();
        let lev = self.level_axis();
        let lat = self.lat_axis();
        let lon = self.lon_axis();
        let (nt, nl, ny, nx) = (self.nt, self.nlev, self.nlat, self.nlon);

        let mut ds = Dataset::new("synth_atmosphere")
            .with_attr("institution", "dv3d-rs synthetic generator")
            .with_attr("experiment", "control")
            .with_attr("model", "SYNTH-1")
            .with_attr("seed", self.seed as i64);

        // Precompute per-point fields.
        let lat_v = &lat.values;
        let lon_v = &lon.values;
        let plev = &lev.values;
        // log-pressure pseudo-height in km: H ln(p0/p), H ≈ 7 km
        let zstar: Vec<f64> = plev.iter().map(|&p| 7.0 * (1000.0 / p).ln()).collect();

        let land = self.land_fraction(&mut StdRng::seed_from_u64(self.seed ^ 0x5EED));

        // ---- 4D fields ----
        let shape4 = [nt, nl, ny, nx];
        let n4: usize = shape4.iter().product();
        let mut ta = Vec::with_capacity(n4);
        let mut zg = Vec::with_capacity(n4);
        let mut hus = Vec::with_capacity(n4);
        let mut ua = Vec::with_capacity(n4);
        let mut va = Vec::with_capacity(n4);

        for t in 0..nt {
            let day = t as f64;
            let season = (2.0 * std::f64::consts::PI * day / 365.0).cos();
            for l in 0..nl {
                let z = zstar[l];
                let lapse = 6.5 * z.min(16.0) - 2.0 * (z - 16.0).max(0.0); // troposphere + weak stratospheric inversion
                for (_j, &phi_deg) in lat_v.iter().enumerate().take(ny) {
                    let phi = phi_deg.to_radians();
                    for (_i, &lam_deg) in lon_v.iter().enumerate().take(nx) {
                        let lam = lam_deg.to_radians();
                        // temperature
                        let merid = -55.0 * phi.sin() * phi.sin();
                        let wave4 = 4.0
                            * (4.0 * lam - 0.15 * day).cos()
                            * (-((phi_deg.abs() - 45.0) / 20.0).powi(2)).exp()
                            * (-(z / 12.0)).exp().max(0.2);
                        let seasonal = 10.0 * season * phi.sin();
                        let noise = rng.gen_range(-1.0..1.0) * self.noise as f64;
                        let temp = 288.0 + merid - lapse + wave4 + seasonal + noise;
                        ta.push(temp as f32);
                        // geopotential height (barometric, km → m)
                        let zg_v = z * 1000.0 * (temp / 288.0) + 50.0 * wave4;
                        zg.push(zg_v as f32);
                        // humidity: moist surface tropics decaying with height
                        let q = 0.018
                            * (-(z / 2.5)).exp()
                            * (-(phi_deg / 35.0).powi(2)).exp()
                            * (1.0 + 0.2 * (2.0 * lam - 0.1 * day).sin());
                        hus.push(q.max(1e-6) as f32);
                        // winds from streamfunction ψ = jet + wave (analytic partials)
                        let (u, v) = streamfunction_wind(phi_deg, lam, day, z);
                        ua.push(u as f32);
                        va.push(v as f32);
                    }
                }
            }
        }

        let axes4 = vec![time.clone(), lev.clone(), lat.clone(), lon.clone()];
        ds.add_variable(
            synth_var("ta", MaskedArray::from_vec(ta, &shape4), axes4.clone())
                .with_attr("units", "K")
                .with_attr("long_name", "air temperature"),
        );
        ds.add_variable(
            synth_var("zg", MaskedArray::from_vec(zg, &shape4), axes4.clone())
                .with_attr("units", "m")
                .with_attr("long_name", "geopotential height"),
        );
        ds.add_variable(
            synth_var("hus", MaskedArray::from_vec(hus, &shape4), axes4.clone())
                .with_attr("units", "1")
                .with_attr("long_name", "specific humidity"),
        );
        ds.add_variable(
            synth_var("ua", MaskedArray::from_vec(ua, &shape4), axes4.clone())
                .with_attr("units", "m s-1")
                .with_attr("long_name", "eastward wind"),
        );
        ds.add_variable(
            synth_var("va", MaskedArray::from_vec(va, &shape4), axes4)
                .with_attr("units", "m s-1")
                .with_attr("long_name", "northward wind"),
        );

        // ---- 3D fields (time, lat, lon) ----
        let shape3 = [nt, ny, nx];
        let n3: usize = shape3.iter().product();
        let mut wave = Vec::with_capacity(n3);
        let mut pr = Vec::with_capacity(n3);
        let mut tos = Vec::with_capacity(n3);
        let mut tos_mask = Vec::with_capacity(n3);
        let k = self.wave_number;
        let c = self.wave_speed_deg_per_day;
        for t in 0..nt {
            let day = t as f64;
            for (j, &phi_deg) in lat_v.iter().enumerate().take(ny) {
                for (i, &lam_deg) in lon_v.iter().enumerate().take(nx) {
                    // eastward-propagating equatorial wave, phase speed c °/day
                    let phase = (k * (lam_deg - c * day)).to_radians();
                    let envelope = (-(phi_deg / 15.0).powi(2)).exp();
                    wave.push((envelope * phase.cos()) as f32);
                    // precipitation: ITCZ band + wave modulation + noise
                    let itcz = (-(phi_deg - 7.0).powi(2) / 60.0).exp();
                    let p = 8.0 * itcz * (1.0 + 0.5 * envelope * phase.cos())
                        + rng.gen_range(0.0..0.5);
                    pr.push(p.max(0.0) as f32);
                    // SST: masked over land
                    let sst = 300.0 - 28.0 * (phi_deg.to_radians().sin()).powi(2)
                        + 0.5 * (3.0 * lam_deg.to_radians() + 0.05 * day).sin();
                    tos.push(sst as f32);
                    tos_mask.push(land[j * nx + i] > 0.5);
                }
            }
        }
        let axes3 = vec![time.clone(), lat.clone(), lon.clone()];
        ds.add_variable(
            synth_var("wave", MaskedArray::from_vec(wave, &shape3), axes3.clone())
                .with_attr("units", "1")
                .with_attr("long_name", "propagating wave amplitude")
                .with_attr("phase_speed_deg_per_day", c)
                .with_attr("zonal_wavenumber", k),
        );
        ds.add_variable(
            synth_var("pr", MaskedArray::from_vec(pr, &shape3), axes3.clone())
                .with_attr("units", "mm day-1")
                .with_attr("long_name", "precipitation"),
        );
        ds.add_variable(
            synth_var("tos", MaskedArray::with_mask(tos, tos_mask, &shape3), axes3)
                .with_attr("units", "K")
                .with_attr("long_name", "sea surface temperature"),
        );

        // ---- 2D land fraction ----
        let land_f32: Vec<f32> = land.iter().map(|&v| v as f32).collect();
        ds.add_variable(
            synth_var("sftlf", MaskedArray::from_vec(land_f32, &[ny, nx]), vec![lat, lon])
                .with_attr("units", "1")
                .with_attr("long_name", "land area fraction"),
        );

        ds
    }

    /// Synthetic land fraction: a sum of low-frequency bumps, smoothly
    /// thresholded. Deterministic given the rng.
    fn land_fraction(&self, rng: &mut StdRng) -> Vec<f64> {
        let lat = self.lat_axis();
        let lon = self.lon_axis();
        // Random "continent" centres, sizes and weights.
        let n_blobs = 6;
        let blobs: Vec<(f64, f64, f64, f64)> = (0..n_blobs)
            .map(|_| {
                (
                    rng.gen_range(-65.0..70.0),   // centre latitude
                    rng.gen_range(0.0..360.0),    // centre longitude
                    rng.gen_range(18.0..42.0),    // radius (deg)
                    rng.gen_range(0.8..1.4),      // weight
                )
            })
            .collect();
        let mut field = Vec::with_capacity(self.nlat * self.nlon);
        for &phi in &lat.values {
            for &lam in &lon.values {
                let mut h = 0.0;
                for &(bphi, blam, r, w) in &blobs {
                    let mut dlam = (lam - blam).rem_euclid(360.0);
                    if dlam > 180.0 {
                        dlam = 360.0 - dlam;
                    }
                    let d2 = ((phi - bphi) / r).powi(2) + (dlam / (1.5 * r)).powi(2);
                    h += w * (-d2).exp();
                }
                // smooth threshold → fraction in [0, 1]
                field.push(1.0 / (1.0 + (-(h - 0.55) * 12.0).exp()));
            }
        }
        field
    }
}

/// Winds from the analytic streamfunction
/// `ψ(φ, λ, t) = ψ_jet(φ) + ψ_wave(φ, λ, t)`:
/// `u = -∂ψ/∂y`, `v = ∂ψ/∂x` — hence exactly non-divergent.
///
/// Returns `(u, v)` in m/s at pseudo-height `z` km.
pub fn streamfunction_wind(phi_deg: f64, lam: f64, day: f64, z: f64) -> (f64, f64) {
    let a = 6.371e6; // Earth radius, m
    let phi = phi_deg.to_radians();
    let height_factor = (z / 12.0).clamp(0.15, 1.0);

    // Jet streamfunction: two subtropical jets.
    // ψ_jet = -A σ √π/2 [erf-like]; use Gaussian u-profile integrated analytically:
    // choose u_jet(φ) = U e^{-((φd∓40)/12)²}; ψ derivative gives u directly, so
    // compute u from the profile and the wave part from analytic partials.
    let u_jet = 35.0 * height_factor
        * ((-((phi_deg - 40.0) / 12.0f64).powi(2)).exp()
            + (-((phi_deg + 40.0) / 12.0f64).powi(2)).exp());

    // Wave streamfunction ψ_w = B cos(kλ - ωt) exp(-(φd/25)²)
    let b = 4.0e6 * height_factor;
    let k = 4.0;
    let omega = 0.15;
    let env = (-(phi_deg / 25.0f64).powi(2)).exp();
    let theta = k * lam - omega * day;
    // u_w = -∂ψ/∂(aφ) = -(1/a) ∂ψ/∂φ
    let dpsi_dphi = b * theta.cos() * env * (-2.0 * phi_deg / (25.0 * 25.0)) * (180.0 / std::f64::consts::PI);
    let u_w = -dpsi_dphi / a;
    // v_w = ∂ψ/∂(a cosφ λ) = (1/(a cosφ)) ∂ψ/∂λ
    let dpsi_dlam = -b * k * theta.sin() * env;
    let cosphi = phi.cos().max(0.05);
    let v_w = dpsi_dlam / (a * cosphi);

    (u_jet + u_w, v_w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axis::AxisKind;

    #[test]
    fn builds_expected_inventory() {
        let ds = SynthesisSpec::new(3, 4, 8, 16).build();
        for id in ["ta", "zg", "hus", "ua", "va", "wave", "pr", "tos", "sftlf"] {
            assert!(ds.variable(id).is_some(), "missing {id}");
        }
        assert_eq!(ds.variable("ta").unwrap().shape(), &[3, 4, 8, 16]);
        assert_eq!(ds.variable("wave").unwrap().shape(), &[3, 8, 16]);
        assert_eq!(ds.variable("sftlf").unwrap().shape(), &[8, 16]);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SynthesisSpec::new(2, 3, 6, 12).seed(7).build();
        let b = SynthesisSpec::new(2, 3, 6, 12).seed(7).build();
        assert_eq!(a.variable("ta").unwrap().array, b.variable("ta").unwrap().array);
        let c = SynthesisSpec::new(2, 3, 6, 12).seed(8).build();
        assert_ne!(a.variable("ta").unwrap().array, c.variable("ta").unwrap().array);
    }

    #[test]
    fn temperature_is_physical() {
        let ds = SynthesisSpec::new(2, 8, 16, 32).build();
        let ta = ds.variable("ta").unwrap();
        let (lo, hi) = ta.array.min_max().unwrap();
        assert!(lo > 150.0 && hi < 330.0, "ta range [{lo}, {hi}]");
        // surface warmer than aloft on average: level 0 vs last level
        let sfc = ta.array.take(1, 0).unwrap().mean().unwrap();
        let top = ta.array.take(1, 7).unwrap().mean().unwrap();
        assert!(sfc > top + 20.0, "sfc {sfc} vs top {top}");
        // tropics warmer than poles at the surface
        let t0 = ta.time_slab(0).unwrap();
        let sfc2d = t0.array.take(0, 0).unwrap();
        let ny = sfc2d.shape()[0];
        let tropics = sfc2d.take(0, ny / 2).unwrap().mean().unwrap();
        let pole = sfc2d.take(0, 0).unwrap().mean().unwrap();
        assert!(tropics > pole + 20.0);
    }

    #[test]
    fn winds_are_nearly_nondivergent() {
        // Discrete divergence of (ua, va) should be small relative to the
        // velocity magnitude (analytic streamfunction ⇒ non-divergent).
        let ds = SynthesisSpec::new(1, 3, 24, 48).noise(0.0).build();
        let ua = ds.variable("ua").unwrap();
        let va = ds.variable("va").unwrap();
        let u = ua.array.take(0, 0).unwrap().take(0, 1).unwrap(); // (lat, lon) at t0, lev1
        let v = va.array.take(0, 0).unwrap().take(0, 1).unwrap();
        let lat = ua.axis(AxisKind::Latitude).unwrap();
        let lon = ua.axis(AxisKind::Longitude).unwrap();
        let a = 6.371e6;
        let dphi = (lat.values[1] - lat.values[0]).to_radians();
        let dlam = (lon.values[1] - lon.values[0]).to_radians();
        let (ny, nx) = (lat.len(), lon.len());
        let mut div_sum = 0.0f64;
        let mut mag_sum = 0.0f64;
        let mut n = 0;
        for j in 1..ny - 1 {
            let phi = lat.values[j].to_radians();
            if phi.cos() < 0.2 {
                continue; // skip polar caps where the metric blows up
            }
            for i in 0..nx {
                let ip = (i + 1) % nx;
                let im = (i + nx - 1) % nx;
                let dudx = (u.get(&[j, ip]).unwrap() - u.get(&[j, im]).unwrap()) as f64
                    / (2.0 * dlam * a * phi.cos());
                // ∂(v cosφ)/∂φ / (a cosφ)
                let vjp = v.get(&[j + 1, i]).unwrap() as f64
                    * lat.values[j + 1].to_radians().cos();
                let vjm = v.get(&[j - 1, i]).unwrap() as f64
                    * lat.values[j - 1].to_radians().cos();
                let dvdy = (vjp - vjm) / (2.0 * dphi * a * phi.cos());
                div_sum += (dudx + dvdy).abs();
                mag_sum += (u.get(&[j, i]).unwrap().abs() + v.get(&[j, i]).unwrap().abs()) as f64;
                n += 1;
            }
        }
        let mean_div = div_sum / n as f64;
        let mean_mag = mag_sum / n as f64;
        // length scale ~ 1000 km ⇒ compare div · L with |v|
        assert!(
            mean_div * 1.0e6 < 0.35 * mean_mag,
            "divergence too large: div*L={} |v|={}",
            mean_div * 1.0e6,
            mean_mag
        );
    }

    #[test]
    fn wave_propagates_at_configured_speed() {
        // Cross-correlate the equatorial wave at t and t+1: the lag of the
        // correlation peak gives the phase displacement per day.
        let spec = SynthesisSpec::new(4, 1, 16, 72).noise(0.0).wave(8.0, 5.0);
        let ds = spec.build();
        let wave = ds.variable("wave").unwrap();
        let ny = wave.shape()[1];
        let eq = ny / 2;
        let nx = wave.shape()[2];
        let dlon = 360.0 / nx as f64;
        let row = |t: usize| -> Vec<f32> {
            (0..nx).map(|i| wave.array.get(&[t, eq, i]).unwrap()).collect()
        };
        let a = row(0);
        let b = row(1);
        let mut best_lag = 0usize;
        let mut best = f32::NEG_INFINITY;
        for lag in 0..nx {
            let c: f32 = (0..nx).map(|i| a[i] * b[(i + lag) % nx]).sum();
            if c > best {
                best = c;
                best_lag = lag;
            }
        }
        // b(x) = a(x - c·dt), so b[(i + lag) % nx] aligns with a[i] when
        // lag·dlon ≡ c·dt (mod wavelength). k = 5 ⇒ wavelength 72°.
        let wavelength = 360.0 / 5.0;
        let shift_deg = (best_lag as f64 * dlon) % wavelength;
        // Phase ambiguity is dlon; expect ~8°/day within one grid step.
        assert!(
            (shift_deg - 8.0).abs() <= dlon + 1e-9,
            "measured {shift_deg}°/day, expected 8"
        );
    }

    #[test]
    fn land_fraction_in_unit_interval_with_both_phases() {
        let ds = SynthesisSpec::new(1, 1, 24, 48).build();
        let lf = ds.variable("sftlf").unwrap();
        let (lo, hi) = lf.array.min_max().unwrap();
        assert!(lo >= 0.0 && hi <= 1.0);
        let frac_land =
            lf.array.data().iter().filter(|&&v| v > 0.5).count() as f64 / lf.array.len() as f64;
        assert!(frac_land > 0.02 && frac_land < 0.9, "land fraction {frac_land}");
    }

    #[test]
    fn sst_masked_over_land() {
        let ds = SynthesisSpec::new(1, 1, 16, 32).build();
        let tos = ds.variable("tos").unwrap();
        let lf = ds.variable("sftlf").unwrap();
        let (ny, nx) = (16, 32);
        for j in 0..ny {
            for i in 0..nx {
                let land = lf.array.get(&[j, i]).unwrap() > 0.5;
                let masked = tos.array.get_valid(&[0, j, i]).unwrap().is_none();
                assert_eq!(land, masked, "at ({j}, {i})");
            }
        }
    }

    #[test]
    fn humidity_positive_and_decaying() {
        let ds = SynthesisSpec::new(1, 6, 12, 24).build();
        let hus = ds.variable("hus").unwrap();
        let (lo, _) = hus.array.min_max().unwrap();
        assert!(lo > 0.0);
        let sfc = hus.array.take(0, 0).unwrap().take(0, 0).unwrap().mean().unwrap();
        let top = hus.array.take(0, 0).unwrap().take(0, 5).unwrap().mean().unwrap();
        assert!(sfc > top);
    }
}
