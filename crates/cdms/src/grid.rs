//! Horizontal grids: rectilinear latitude–longitude grids, uniform and
//! gaussian, with cell areas — the geometry regridding and area-weighted
//! averaging operate on.

use crate::axis::{Axis, AxisKind};
use crate::error::{CdmsError, Result};
use serde::{Deserialize, Serialize};

/// A rectilinear latitude–longitude grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RectGrid {
    pub lat: Axis,
    pub lon: Axis,
}

impl RectGrid {
    /// Builds a grid from latitude and longitude axes.
    pub fn new(lat: Axis, lon: Axis) -> Result<RectGrid> {
        if lat.kind != AxisKind::Latitude {
            return Err(CdmsError::Invalid(format!("'{}' is not a latitude axis", lat.id)));
        }
        if lon.kind != AxisKind::Longitude {
            return Err(CdmsError::Invalid(format!("'{}' is not a longitude axis", lon.id)));
        }
        let mut lat = lat;
        let mut lon = lon;
        lat.gen_bounds();
        lon.gen_bounds();
        Ok(RectGrid { lat, lon })
    }

    /// A uniform grid with `nlat` latitudes (cell centres, pole-inset) and
    /// `nlon` longitudes starting at 0°E.
    pub fn uniform(nlat: usize, nlon: usize) -> Result<RectGrid> {
        if nlat == 0 || nlon == 0 {
            return Err(CdmsError::Invalid("empty grid".into()));
        }
        let dlat = 180.0 / nlat as f64;
        let lat_vals: Vec<f64> =
            (0..nlat).map(|i| -90.0 + dlat / 2.0 + dlat * i as f64).collect();
        let dlon = 360.0 / nlon as f64;
        let lon_vals: Vec<f64> = (0..nlon).map(|i| dlon * i as f64).collect();
        RectGrid::new(Axis::latitude(lat_vals)?, Axis::longitude(lon_vals)?)
    }

    /// A gaussian grid with `nlat` gaussian latitudes and `nlon` longitudes.
    ///
    /// Gaussian latitudes are the arcsines of the roots of the Legendre
    /// polynomial P_nlat, found by Newton iteration — the grid spectral
    /// models output on.
    pub fn gaussian(nlat: usize, nlon: usize) -> Result<RectGrid> {
        if nlat == 0 || nlon == 0 {
            return Err(CdmsError::Invalid("empty grid".into()));
        }
        let (nodes, _) = gauss_legendre(nlat);
        // nodes are sin(lat) in (-1, 1), ascending
        let lat_vals: Vec<f64> = nodes.iter().map(|&x| x.asin().to_degrees()).collect();
        let dlon = 360.0 / nlon as f64;
        let lon_vals: Vec<f64> = (0..nlon).map(|i| dlon * i as f64).collect();
        RectGrid::new(Axis::latitude(lat_vals)?, Axis::longitude(lon_vals)?)
    }

    /// `(nlat, nlon)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.lat.len(), self.lon.len())
    }

    /// Cell areas on the unit sphere, row-major `(lat, lon)`, in steradians.
    pub fn cell_areas(&self) -> Vec<f64> {
        let mut lat = self.lat.clone();
        let latb = lat.bounds_or_gen();
        let lonw = self.lon.cell_widths();
        let mut areas = Vec::with_capacity(self.lat.len() * self.lon.len());
        for (lo, hi) in latb {
            let band = (hi.to_radians().sin() - lo.to_radians().sin()).abs();
            for w in &lonw {
                areas.push(band * w.to_radians());
            }
        }
        areas
    }

    /// Total area of all cells (≈ 4π for a global grid).
    pub fn total_area(&self) -> f64 {
        self.cell_areas().iter().sum()
    }

    /// True when both grids have identical axis values (within 1e-9°).
    pub fn same_as(&self, other: &RectGrid) -> bool {
        fn close(a: &[f64], b: &[f64]) -> bool {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-9)
        }
        close(&self.lat.values, &other.lat.values) && close(&self.lon.values, &other.lon.values)
    }

    /// Stable 64-bit fingerprint of the grid geometry. Equal fingerprints
    /// mean the grids produce identical regrid weights: the hash covers
    /// axis kind, length, the exact `f64` bit patterns of the centre values
    /// and — because conservative overlaps depend on them — the cell bounds
    /// when present. Regrid plan caches key on this.
    pub fn fingerprint(&self) -> u64 {
        axes_fingerprint(&self.lat, &self.lon)
    }
}

/// Fingerprint of an arbitrary (lat, lon) axis pair — the source-grid side
/// of [`RectGrid::fingerprint`], usable directly on a variable's axes
/// without constructing a grid. Each axis stream is prefixed with its kind
/// and length so values cannot slide between the latitude and longitude
/// arrays (or between values and bounds) without changing the hash.
pub fn axes_fingerprint(lat: &Axis, lon: &Axis) -> u64 {
    let mut h = Fnv::new();
    hash_axis(&mut h, lat);
    hash_axis(&mut h, lon);
    h.finish()
}

/// FNV-1a over little-endian u64 words; tiny, dependency-free and stable
/// across runs (unlike `DefaultHasher`, whose keys are randomized).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

fn hash_axis(h: &mut Fnv, a: &Axis) {
    h.word(a.kind as u64);
    h.word(a.values.len() as u64);
    for v in &a.values {
        h.word(v.to_bits());
    }
    match &a.bounds {
        None => h.word(0),
        Some(b) => {
            h.word(1 + b.len() as u64);
            for (lo, hi) in b {
                h.word(lo.to_bits());
                h.word(hi.to_bits());
            }
        }
    }
}

/// Nodes and weights of `n`-point Gauss–Legendre quadrature on `[-1, 1]`,
/// nodes ascending. Newton iteration on the Legendre polynomial.
pub fn gauss_legendre(n: usize) -> (Vec<f64>, Vec<f64>) {
    let mut nodes = vec![0.0f64; n];
    let mut weights = vec![0.0f64; n];
    let m = n.div_ceil(2);
    for i in 0..m {
        // Initial guess (Abramowitz & Stegun 22.16.6).
        let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
        loop {
            // Evaluate P_n(x) and P'_n(x) by recurrence.
            let (mut p0, mut p1) = (1.0f64, x);
            for k in 2..=n {
                let p2 = ((2 * k - 1) as f64 * x * p1 - (k - 1) as f64 * p0) / k as f64;
                p0 = p1;
                p1 = p2;
            }
            let dp = n as f64 * (x * p1 - p0) / (x * x - 1.0);
            let dx = p1 / dp;
            x -= dx;
            if dx.abs() < 1e-14 {
                let (mut q0, mut q1) = (1.0f64, x);
                for k in 2..=n {
                    let q2 = ((2 * k - 1) as f64 * x * q1 - (k - 1) as f64 * q0) / k as f64;
                    q0 = q1;
                    q1 = q2;
                }
                let dpn = n as f64 * (x * q1 - q0) / (x * x - 1.0);
                nodes[n - 1 - i] = x;
                nodes[i] = -x;
                let w = 2.0 / ((1.0 - x * x) * dpn * dpn);
                weights[i] = w;
                weights[n - 1 - i] = w;
                break;
            }
        }
    }
    if n % 2 == 1 {
        // Middle node is exactly zero.
        let x = 0.0f64;
        let (mut p0, mut p1) = (1.0f64, x);
        for k in 2..=n {
            let p2 = ((2 * k - 1) as f64 * x * p1 - (k - 1) as f64 * p0) / k as f64;
            p0 = p1;
            p1 = p2;
        }
        let dp = n as f64 * p0; // limit of the derivative formula at x=0
        nodes[n / 2] = 0.0;
        weights[n / 2] = 2.0 / (dp * dp);
    }
    (nodes, weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_grid_geometry() {
        let g = RectGrid::uniform(4, 8).unwrap();
        assert_eq!(g.shape(), (4, 8));
        assert_eq!(g.lat.values[0], -67.5);
        assert_eq!(g.lon.values[1], 45.0);
        assert!(g.lon.is_circular());
    }

    #[test]
    fn uniform_grid_area_is_sphere() {
        for (nlat, nlon) in [(4, 8), (16, 32), (45, 90)] {
            let g = RectGrid::uniform(nlat, nlon).unwrap();
            let total = g.total_area();
            let sphere = 4.0 * std::f64::consts::PI;
            assert!((total - sphere).abs() / sphere < 1e-9, "{nlat}x{nlon}: {total}");
        }
    }

    #[test]
    fn gauss_legendre_small_orders() {
        // n=2: nodes ±1/sqrt(3), weights 1.
        let (x, w) = gauss_legendre(2);
        assert!((x[0] + 1.0 / 3.0f64.sqrt()).abs() < 1e-12);
        assert!((x[1] - 1.0 / 3.0f64.sqrt()).abs() < 1e-12);
        assert!((w[0] - 1.0).abs() < 1e-12);
        // n=3: nodes 0, ±sqrt(3/5); weights 8/9, 5/9.
        let (x, w) = gauss_legendre(3);
        assert!(x[1].abs() < 1e-12);
        assert!((x[2] - (0.6f64).sqrt()).abs() < 1e-12);
        assert!((w[1] - 8.0 / 9.0).abs() < 1e-12);
        assert!((w[0] - 5.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn gauss_legendre_weights_sum_to_two() {
        for n in [2, 5, 16, 33, 64] {
            let (x, w) = gauss_legendre(n);
            let sum: f64 = w.iter().sum();
            assert!((sum - 2.0).abs() < 1e-10, "n={n} sum={sum}");
            // nodes ascending and within (-1, 1)
            assert!(x.windows(2).all(|p| p[1] > p[0]));
            assert!(x.iter().all(|&v| v > -1.0 && v < 1.0));
        }
    }

    #[test]
    fn gauss_legendre_integrates_polynomials_exactly() {
        // n-point rule is exact for degree 2n-1: check ∫x^4 over [-1,1] = 2/5 with n=3.
        let (x, w) = gauss_legendre(3);
        let integral: f64 = x.iter().zip(&w).map(|(xi, wi)| wi * xi.powi(4)).sum();
        assert!((integral - 0.4).abs() < 1e-12);
    }

    #[test]
    fn gaussian_grid_reasonable() {
        let g = RectGrid::gaussian(32, 64).unwrap();
        assert_eq!(g.shape(), (32, 64));
        // Gaussian latitudes are symmetric and inside the poles.
        let v = &g.lat.values;
        assert!(v[0] > -90.0 && v[31] < 90.0);
        assert!((v[0] + v[31]).abs() < 1e-9);
        let total = g.total_area();
        let sphere = 4.0 * std::f64::consts::PI;
        assert!((total - sphere).abs() / sphere < 1e-3);
    }

    #[test]
    fn grid_kind_validation() {
        let lat = Axis::latitude(vec![0.0, 10.0]).unwrap();
        let lon = Axis::longitude(vec![0.0, 10.0]).unwrap();
        assert!(RectGrid::new(lon.clone(), lon.clone()).is_err());
        assert!(RectGrid::new(lat.clone(), lat.clone()).is_err());
        assert!(RectGrid::new(lat, lon).is_ok());
        assert!(RectGrid::uniform(0, 8).is_err());
    }

    #[test]
    fn fingerprint_is_stable_and_value_sensitive() {
        let a = RectGrid::uniform(4, 8).unwrap();
        let b = RectGrid::uniform(4, 8).unwrap();
        let c = RectGrid::uniform(8, 16).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(a.fingerprint(), RectGrid::gaussian(4, 8).unwrap().fingerprint());
        // matches the free-function form used for variable axes
        assert_eq!(a.fingerprint(), axes_fingerprint(&a.lat, &a.lon));
    }

    #[test]
    fn fingerprint_collisions_by_construction_are_avoided() {
        // Same flattened value stream [0, 10, 20, 30] split differently
        // between lat and lon: length prefixes must keep these distinct.
        let g1 = RectGrid::new(
            Axis::latitude(vec![0.0, 10.0]).unwrap(),
            Axis::longitude(vec![20.0, 30.0]).unwrap(),
        )
        .unwrap();
        let g2 = RectGrid::new(
            Axis::latitude(vec![0.0]).unwrap(),
            Axis::longitude(vec![10.0, 20.0, 30.0]).unwrap(),
        )
        .unwrap();
        assert_ne!(g1.fingerprint(), g2.fingerprint());

        // Same centres, different explicit bounds: conservative weights
        // differ, so the fingerprint must too.
        let mut lat = Axis::latitude(vec![-30.0, 30.0]).unwrap();
        let lon = Axis::longitude(vec![0.0, 180.0]).unwrap();
        lat.bounds = Some(vec![(-60.0, 0.0), (0.0, 60.0)]);
        let narrow = {
            let mut l = lat.clone();
            l.bounds = Some(vec![(-40.0, -20.0), (20.0, 40.0)]);
            RectGrid { lat: l, lon: lon.clone() }
        };
        let wide = RectGrid { lat, lon };
        assert_eq!(wide.lat.values, narrow.lat.values);
        assert_ne!(wide.fingerprint(), narrow.fingerprint());

        // Bounds present vs absent on otherwise identical axes.
        let with = RectGrid::uniform(3, 6).unwrap(); // new() generates bounds
        let without = RectGrid {
            lat: Axis::latitude(with.lat.values.clone()).unwrap(),
            lon: Axis::longitude(with.lon.values.clone()).unwrap(),
        };
        assert_ne!(with.fingerprint(), without.fingerprint());
    }

    #[test]
    fn same_as_compares_values() {
        let a = RectGrid::uniform(4, 8).unwrap();
        let b = RectGrid::uniform(4, 8).unwrap();
        let c = RectGrid::uniform(8, 16).unwrap();
        assert!(a.same_as(&b));
        assert!(!a.same_as(&c));
    }
}
