//! End-to-end test: run the compiled `dv3dlint` binary over a known-dirty
//! source tree and assert the exit code and `file:line` diagnostics.

use std::path::{Path, PathBuf};
use std::process::Command;

/// A file violating several rules at known lines.
const DIRTY: &str = r#"pub fn first(a: Option<u32>) -> u32 {
    a.unwrap()
}

pub fn second(b: Option<u32>) -> u32 {
    b.expect("always")
}

pub fn third() -> u32 {
    todo!()
}

pub fn justified(v: &[u32]) -> u32 {
    v.iter().sum::<u32>().checked_add(1).unwrap() // dv3dlint: allow(no_panic) -- bounded by test fixture
}
"#;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dv3dlint-it-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run_lint(args: &[&str], cwd: &Path) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dv3dlint"))
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("spawn dv3dlint");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn dirty_file_fails_with_file_line_diagnostics() {
    let dir = scratch_dir("dirty");
    let file = dir.join("dirty.rs");
    std::fs::write(&file, DIRTY).expect("write fixture");

    let path = file.to_string_lossy().into_owned();
    let (code, _out, err) = run_lint(&[&path], &dir);
    assert_eq!(code, 1, "violations must exit 1; stderr:\n{err}");
    // one diagnostic per construct, at the right line
    assert!(err.contains("dirty.rs:2: [no_panic]"), "unwrap at line 2:\n{err}");
    assert!(err.contains("dirty.rs:6: [no_panic]"), "expect at line 6:\n{err}");
    assert!(err.contains("dirty.rs:10: [no_panic]"), "todo! at line 10:\n{err}");
    // the allowed site is suppressed but counted
    assert!(!err.contains("dirty.rs:14"), "allowed line must not be reported:\n{err}");
    assert!(err.contains("3 violation(s), 1 allowed"), "summary line:\n{err}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clean_file_exits_zero() {
    let dir = scratch_dir("clean");
    let file = dir.join("clean.rs");
    std::fs::write(&file, "pub fn ok(a: Option<u32>) -> u32 { a.unwrap_or(0) }\n")
        .expect("write fixture");

    let path = file.to_string_lossy().into_owned();
    let (code, _out, err) = run_lint(&[&path], &dir);
    assert_eq!(code, 0, "clean file must exit 0; stderr:\n{err}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn workspace_run_on_this_repo_is_clean() {
    // the repo this tool ships in must stay lint-clean; this is the same
    // invocation CI uses
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let (code, _out, err) = run_lint(&["--workspace", "--no-report"], &root);
    assert_eq!(code, 0, "workspace must be clean:\n{err}");
    assert!(err.contains("0 violation(s)"), "{err}");
}

#[test]
fn usage_errors_exit_two() {
    let dir = scratch_dir("usage");
    let (code, _out, err) = run_lint(&["--config", "/nonexistent/dv3dlint.toml"], &dir);
    assert_eq!(code, 2, "bad config must exit 2; stderr:\n{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_allow_directive_is_reported() {
    let dir = scratch_dir("badallow");
    let file = dir.join("bad.rs");
    std::fs::write(
        &file,
        "pub fn f(a: Option<u32>) -> u32 {\n    a.unwrap() // dv3dlint: allow(no_panic)\n}\n",
    )
    .expect("write fixture");

    let path = file.to_string_lossy().into_owned();
    let (code, _out, err) = run_lint(&[&path], &dir);
    assert_eq!(code, 1, "{err}");
    assert!(err.contains("[allow_syntax]"), "reason-less allow must be flagged:\n{err}");
    std::fs::remove_dir_all(&dir).ok();
}
