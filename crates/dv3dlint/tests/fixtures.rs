//! Fixture-workspace tests for the two-pass dataflow rules (R7–R10).
//!
//! `tests/fixtures/` holds a miniature lint workspace: `bad/` seeds one
//! known violation per analyzer capability (lock-order cycle across two
//! mutexes with one interprocedural path, guard across deadline I/O,
//! guard across a condvar wait, captured-float parallel accumulation,
//! hash-order iteration into an ordered sink, unguarded growth in an
//! input module) and `good/` carries the corrected counterparts, which
//! must stay silent. `golden.json` pins the full JSON report byte-for-
//! byte (minus the timing fields), so any drift in rule behaviour, finding
//! order, message wording, or report shape fails here first.
//!
//! The baseline round-trip is checked twice: end-to-end through the
//! binary (`--write-baseline` → `--baseline` → delete → byte-identical
//! report), and as a property over arbitrary diagnostic sets.

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dv3dlint-fx-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Runs the binary over the fixture workspace with report/sarif redirected
/// into `out`, plus any extra flags. Returns (exit code, stderr).
fn run_fixture_lint(out: &Path, extra: &[&str]) -> (i32, String) {
    let cfg = fixtures_dir().join("dv3dlint.toml");
    let mut args: Vec<String> = vec![
        "--workspace".into(),
        "--config".into(),
        cfg.to_string_lossy().into_owned(),
        "--json".into(),
        out.join("report.json").to_string_lossy().into_owned(),
        "--sarif".into(),
        out.join("report.sarif").to_string_lossy().into_owned(),
        "--quiet".into(),
    ];
    args.extend(extra.iter().map(|s| s.to_string()));
    let o = Command::new(env!("CARGO_BIN_EXE_dv3dlint"))
        .args(&args)
        .current_dir(fixtures_dir())
        .output()
        .expect("spawn dv3dlint");
    (o.status.code().unwrap_or(-1), String::from_utf8_lossy(&o.stderr).into_owned())
}

/// The report minus the wall-clock-dependent lines.
fn normalize(report: &str) -> String {
    report
        .lines()
        .filter(|l| !l.contains("\"elapsed_ms\"") && !l.contains("\"threads\""))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn seeded_fixture_findings_match_golden_json() {
    let out = scratch_dir("golden");
    let (code, err) = run_fixture_lint(&out, &[]);
    assert_eq!(code, 1, "seeded violations must exit 1:\n{err}");

    let report =
        std::fs::read_to_string(out.join("report.json")).expect("report written");
    let golden =
        std::fs::read_to_string(fixtures_dir().join("golden.json")).expect("golden.json");
    assert_eq!(
        normalize(&report),
        golden.trim_end().replace("\r\n", "\n"),
        "fixture findings drifted from golden.json — if the change is \
         intentional, regenerate the golden from the new report"
    );

    // the acceptance-criteria seeds, by name
    assert!(report.contains("\"file\": \"bad/src/lib.rs\", \"line\": 17"), "lock cycle");
    assert!(report.contains("grab_alpha"), "cycle message names the interprocedural path");
    assert!(report.contains("\"line\": 37"), "guard across read_message_deadline");
    assert!(report.contains("\"line\": 47"), "guard across condvar wait");
    assert!(report.contains("\"line\": 57"), "captured float accumulator");
    assert!(report.contains("\"line\": 65"), "hash iteration into ordered sink");
    assert!(report.contains("\"file\": \"bad/src/intake.rs\", \"line\": 10"), "growth");
    // the corrected crate stays silent
    assert!(!report.contains("good/src"), "good/ must produce no findings:\n{report}");

    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn sarif_and_json_agree_on_finding_count() {
    let out = scratch_dir("sarif");
    let (code, _err) = run_fixture_lint(&out, &[]);
    assert_eq!(code, 1);
    let report = std::fs::read_to_string(out.join("report.json")).expect("report");
    let sarif = std::fs::read_to_string(out.join("report.sarif")).expect("sarif");
    assert!(report.contains("\"total_violations\": 6"), "{report}");
    assert_eq!(sarif.matches("\"ruleId\"").count(), 6, "SARIF results == JSON violations");
    assert!(sarif.contains("\"version\": \"2.1.0\""));
    assert!(sarif.contains("bad/src/lib.rs"));
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn baseline_round_trip_suppresses_then_restores_byte_identically() {
    let out = scratch_dir("baseline");
    let base = out.join("baseline.txt");
    let base_arg = base.to_string_lossy().into_owned();

    // 1. record the dirty state
    let (code, err) = run_fixture_lint(&out, &["--write-baseline", &base_arg]);
    assert_eq!(code, 1, "{err}");
    let first =
        normalize(&std::fs::read_to_string(out.join("report.json")).expect("report 1"));

    // 2. with the baseline applied, the run is clean but still reports
    let (code, err) = run_fixture_lint(&out, &["--baseline", &base_arg]);
    assert_eq!(code, 0, "baselined run must be clean:\n{err}");
    let masked = std::fs::read_to_string(out.join("report.json")).expect("report 2");
    assert!(masked.contains("\"total_violations\": 0"), "{masked}");
    assert!(masked.contains("\"total_baselined\": 6"), "{masked}");
    let sarif = std::fs::read_to_string(out.join("report.sarif")).expect("sarif 2");
    assert_eq!(sarif.matches("\"ruleId\"").count(), 0, "baselined findings leave SARIF");

    // 3. remove the baseline: every finding reappears, byte-identically
    std::fs::remove_file(&base).expect("remove baseline");
    let (code, _err) = run_fixture_lint(&out, &[]);
    assert_eq!(code, 1);
    let third =
        normalize(&std::fs::read_to_string(out.join("report.json")).expect("report 3"));
    assert_eq!(first, third, "findings must reappear byte-identically");

    std::fs::remove_dir_all(&out).ok();
}

// ---------------------------------------------------------------------------
// Property: for ANY set of diagnostics, a freshly written baseline absorbs
// exactly that set — re-running yields zero violations with every finding
// marked baselined — and diagnostics outside the recorded set never get
// absorbed.

const PROP_RULES: [&str; 4] =
    ["lock_order", "guard_across_blocking", "nondet_reduction", "unbounded_growth"];
const PROP_FILES: [&str; 3] = ["a/src/lib.rs", "b/src/lib.rs", "c/src/intake.rs"];
const PROP_MSGS: [&str; 4] = ["alpha beta cycle", "guard across wait", "hash → sink", "push"];

fn prop_summary(picks: &[(u8, u8, u16, u8)]) -> dv3dlint::engine::RunSummary {
    let mut diagnostics: Vec<dv3dlint::diag::Diagnostic> = picks
        .iter()
        .map(|&(r, f, line, m)| dv3dlint::diag::Diagnostic {
            file: PathBuf::from(PROP_FILES[f as usize % PROP_FILES.len()]),
            line: u32::from(line) + 1,
            rule: PROP_RULES[r as usize % PROP_RULES.len()],
            message: PROP_MSGS[m as usize % PROP_MSGS.len()].to_string(),
            hint: None,
            suppressed: false,
            baselined: false,
        })
        .collect();
    dv3dlint::diag::sort(&mut diagnostics);
    let mut summary = dv3dlint::engine::RunSummary {
        diagnostics,
        per_rule: PROP_RULES
            .iter()
            .map(|r| dv3dlint::engine::RuleCount {
                rule: r,
                violations: 0,
                allowed: 0,
                baselined: 0,
            })
            .collect(),
        files_scanned: PROP_FILES.len(),
        elapsed_ms: 0,
        threads: 1,
    };
    summary.retally();
    summary
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn baseline_absorbs_exactly_the_recorded_set(
        picks in proptest::collection::vec((0u8..8, 0u8..8, 0u16..50, 0u8..8), 0..24),
        extra in (0u8..8, 0u8..8, 0u16..50, 0u8..8),
    ) {
        let mut summary = prop_summary(&picks);
        let violations = summary.total_violations();
        let rendered = dv3dlint::baseline::render(&summary);
        let parsed = dv3dlint::baseline::parse(&rendered).expect("own render must parse");

        // apply: everything recorded is absorbed, nothing fails the run
        dv3dlint::baseline::apply(&mut summary, &parsed);
        prop_assert_eq!(summary.total_violations(), 0);
        prop_assert_eq!(summary.total_baselined(), violations);
        prop_assert!(summary.clean());

        // a diagnostic with a message no recorded finding used is NOT
        // absorbed by that same baseline
        let (r, f, line, _) = extra;
        let mut alien = prop_summary(&[(r, f, line, 0)]);
        if let Some(d) = alien.diagnostics.first_mut() {
            d.message = "never recorded".to_string();
        }
        alien.retally();
        dv3dlint::baseline::apply(&mut alien, &parsed);
        prop_assert_eq!(alien.total_violations(), 1);
        prop_assert_eq!(alien.total_baselined(), 0);
    }
}
