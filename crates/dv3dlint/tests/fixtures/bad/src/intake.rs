//! The fixture's input-handling module (listed in `input_modules`).

pub struct Intake {
    subscriptions: Vec<(u64, String)>,
}

impl Intake {
    // unbounded_growth: no capacity check anywhere in the function
    pub fn on_subscribe(&mut self, peer: u64, topic: String) {
        self.subscriptions.push((peer, topic));
    }
}
