//! Seeded violations: every rule of the two-pass analyzer must fire here,
//! at the exact lines pinned by `golden.json`.

pub struct Hub {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
    state: Mutex<u32>,
    stats: Mutex<u32>,
    done: Mutex<bool>,
    cv: Condvar,
}

impl Hub {
    // lock_order, path 1: alpha then beta
    pub fn forward(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop(b);
        drop(a);
    }

    // lock_order, path 2: beta then (via grab_alpha) alpha — a cycle
    pub fn backward(&self) {
        let b = self.beta.lock();
        self.grab_alpha();
        drop(b);
    }

    fn grab_alpha(&self) {
        let a = self.alpha.lock();
        drop(a);
    }

    // guard_across_blocking: `state` live across deadline I/O
    pub fn pump(&self, s: &mut TcpStream) {
        let state = self.state.lock();
        let msg = read_message_deadline(s, DEADLINE, "frame");
        state.apply(msg);
    }

    // guard_across_blocking: `stats` live across the condvar wait (the
    // wait releases `done`, not `stats`)
    pub fn gate(&self) {
        let stats = self.stats.lock();
        let mut done = self.done.lock();
        while !*done {
            done = self.cv.wait(done);
        }
        stats.record();
    }
}

// nondet_reduction: outer float accumulator mutated from a par closure
pub fn total(chunks: &[Vec<f64>]) -> f64 {
    let mut sum = 0.0;
    chunks.par_iter().for_each(|c| {
        sum += c.len() as f64;
    });
    sum
}

// nondet_reduction: hash-order iteration into an ordered sink
pub fn digest(cells: &HashMap<String, f32>) -> String {
    let mut out = String::new();
    for (k, _v) in cells.iter() {
        out.push_str(k);
    }
    out
}
