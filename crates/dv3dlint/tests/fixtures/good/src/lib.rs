//! The corrected counterparts of `bad/src/lib.rs` — every function here
//! must produce zero findings.

pub struct Hub {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
    state: Mutex<u32>,
    done: Mutex<bool>,
    cv: Condvar,
}

impl Hub {
    // one global order: alpha before beta, on every path
    pub fn forward(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop(b);
        drop(a);
    }

    pub fn backward(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop(b);
        drop(a);
    }

    // block first, lock after: the guard never spans the deadline read
    pub fn pump(&self, s: &mut TcpStream) {
        let msg = read_message_deadline(s, DEADLINE, "frame");
        let state = self.state.lock();
        state.apply(msg);
    }

    // only the guard the wait itself releases is live at the wait
    pub fn gate(&self) {
        let mut done = self.done.lock();
        while !*done {
            done = self.cv.wait(done);
        }
    }
}

// chunk-local accumulators, combined by a deterministic pairwise pass
pub fn total(chunks: &[Vec<f64>]) -> f64 {
    let partials: Vec<f64> = chunks
        .par_iter()
        .map(|c| {
            let mut local = 0.0;
            for v in c.iter() {
                local += v;
            }
            local
        })
        .collect();
    reduce::pairwise(&partials)
}

// sort the keys before emitting: hash order never reaches the output
pub fn digest(cells: &HashMap<String, f32>) -> String {
    let mut keys: Vec<&String> = cells.keys().collect();
    keys.sort();
    let mut out = String::new();
    for k in keys.iter() {
        out.push_str(k);
    }
    out
}
