//! Input-handling module with visible capacity discipline.

pub struct Intake {
    subscriptions: Vec<(u64, String)>,
}

impl Intake {
    pub fn on_subscribe(&mut self, peer: u64, topic: String) -> bool {
        if self.subscriptions.len() >= MAX_SUBSCRIPTIONS {
            return false;
        }
        self.subscriptions.push((peer, topic));
        true
    }
}
