//! The rule engine: runs every enabled rule over every crate, folds in
//! malformed-directive findings, and produces the per-rule tallies the
//! JSON report and the CLI summary share.

use crate::config::Config;
use crate::diag::{sort, Diagnostic};
use crate::rules;
use crate::workspace::Workspace;

/// Rule id used for malformed `dv3dlint:` directives — these are always
/// hard errors (a broken escape hatch must not silently suppress).
pub const ALLOW_SYNTAX: &str = "allow_syntax";

/// Per-rule tally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleCount {
    pub rule: &'static str,
    /// Unsuppressed, unbaselined findings (fail the run).
    pub violations: usize,
    /// Findings suppressed by a reasoned allow directive.
    pub allowed: usize,
    /// Findings absorbed by the `--baseline` file (reported, non-fatal).
    pub baselined: usize,
}

/// Outcome of one engine run.
#[derive(Debug)]
pub struct RunSummary {
    /// All findings, suppressed included, sorted by file/line/rule.
    pub diagnostics: Vec<Diagnostic>,
    pub per_rule: Vec<RuleCount>,
    pub files_scanned: usize,
    /// Wall-clock of the lint pass (scan + parse + rules), for the CI
    /// budget assertion. Zero until the driver stamps it.
    pub elapsed_ms: u64,
    /// Worker threads the parallel front-end used.
    pub threads: usize,
}

impl RunSummary {
    pub fn total_violations(&self) -> usize {
        self.per_rule.iter().map(|c| c.violations).sum()
    }

    pub fn total_allowed(&self) -> usize {
        self.per_rule.iter().map(|c| c.allowed).sum()
    }

    pub fn total_baselined(&self) -> usize {
        self.per_rule.iter().map(|c| c.baselined).sum()
    }

    pub fn clean(&self) -> bool {
        self.total_violations() == 0
    }

    /// Recomputes `per_rule` from the diagnostics (needed after baseline
    /// application flips `baselined` flags).
    pub fn retally(&mut self) {
        for c in &mut self.per_rule {
            c.violations = 0;
            c.allowed = 0;
            c.baselined = 0;
        }
        for d in &self.diagnostics {
            if let Some(c) = self.per_rule.iter_mut().find(|c| c.rule == d.rule) {
                if d.suppressed {
                    c.allowed += 1;
                } else if d.baselined {
                    c.baselined += 1;
                } else {
                    c.violations += 1;
                }
            }
        }
    }
}

/// Runs all rules over `ws`.
pub fn run(ws: &Workspace, cfg: &Config) -> RunSummary {
    let rules = rules::all();
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    for rule in &rules {
        for krate in &ws.crates {
            rule.check_crate(krate, ws, cfg, &mut diagnostics);
        }
    }
    for krate in &ws.crates {
        for file in &krate.files {
            for (line, problem) in &file.bad_allows {
                diagnostics.push(Diagnostic {
                    file: file.path.clone(),
                    line: *line,
                    rule: ALLOW_SYNTAX,
                    message: problem.clone(),
                    hint: Some(
                        "write `// dv3dlint: allow(<rule>) -- <reason>`; the reason is \
                         mandatory"
                            .into(),
                    ),
                    suppressed: false,
                    baselined: false,
                });
            }
        }
    }
    sort(&mut diagnostics);
    let mut per_rule: Vec<RuleCount> = rules
        .iter()
        .map(|r| RuleCount { rule: r.id(), violations: 0, allowed: 0, baselined: 0 })
        .collect();
    per_rule.push(RuleCount { rule: ALLOW_SYNTAX, violations: 0, allowed: 0, baselined: 0 });
    let mut summary = RunSummary {
        diagnostics,
        per_rule,
        files_scanned: ws.files_scanned,
        elapsed_ms: 0,
        threads: crate::workspace::worker_threads(),
    };
    summary.retally();
    summary
}
