//! The rule engine: runs every enabled rule over every crate, folds in
//! malformed-directive findings, and produces the per-rule tallies the
//! JSON report and the CLI summary share.

use crate::config::Config;
use crate::diag::{sort, Diagnostic};
use crate::rules;
use crate::workspace::Workspace;

/// Rule id used for malformed `dv3dlint:` directives — these are always
/// hard errors (a broken escape hatch must not silently suppress).
pub const ALLOW_SYNTAX: &str = "allow_syntax";

/// Per-rule tally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleCount {
    pub rule: &'static str,
    /// Unsuppressed findings (fail the run).
    pub violations: usize,
    /// Findings suppressed by a reasoned allow directive.
    pub allowed: usize,
}

/// Outcome of one engine run.
#[derive(Debug)]
pub struct RunSummary {
    /// All findings, suppressed included, sorted by file/line/rule.
    pub diagnostics: Vec<Diagnostic>,
    pub per_rule: Vec<RuleCount>,
    pub files_scanned: usize,
}

impl RunSummary {
    pub fn total_violations(&self) -> usize {
        self.per_rule.iter().map(|c| c.violations).sum()
    }

    pub fn total_allowed(&self) -> usize {
        self.per_rule.iter().map(|c| c.allowed).sum()
    }

    pub fn clean(&self) -> bool {
        self.total_violations() == 0
    }
}

/// Runs all rules over `ws`.
pub fn run(ws: &Workspace, cfg: &Config) -> RunSummary {
    let rules = rules::all();
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    for rule in &rules {
        for krate in &ws.crates {
            rule.check_crate(krate, ws, cfg, &mut diagnostics);
        }
    }
    for krate in &ws.crates {
        for file in &krate.files {
            for (line, problem) in &file.bad_allows {
                diagnostics.push(Diagnostic {
                    file: file.path.clone(),
                    line: *line,
                    rule: ALLOW_SYNTAX,
                    message: problem.clone(),
                    suppressed: false,
                });
            }
        }
    }
    sort(&mut diagnostics);
    let mut per_rule: Vec<RuleCount> = rules
        .iter()
        .map(|r| RuleCount { rule: r.id(), violations: 0, allowed: 0 })
        .collect();
    per_rule.push(RuleCount { rule: ALLOW_SYNTAX, violations: 0, allowed: 0 });
    for d in &diagnostics {
        if let Some(c) = per_rule.iter_mut().find(|c| c.rule == d.rule) {
            if d.suppressed {
                c.allowed += 1;
            } else {
                c.violations += 1;
            }
        }
    }
    RunSummary { diagnostics, per_rule, files_scanned: ws.files_scanned }
}
