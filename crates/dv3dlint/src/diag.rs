//! Diagnostics: what a rule reports and how it renders.

use std::path::PathBuf;

/// One finding. `suppressed` findings matched an allow directive — they
//  are counted in the report but never fail the run. `baselined` findings
//  matched an entry in the `--baseline` file: reported, never fatal.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub file: PathBuf,
    /// 1-based line (0 = whole-file / manifest finding).
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
    /// Optional fix hint, rendered after the message and in SARIF.
    pub hint: Option<String>,
    pub suppressed: bool,
    pub baselined: bool,
}

impl Diagnostic {
    pub fn render(&self) -> String {
        let hint = self
            .hint
            .as_deref()
            .map(|h| format!("\n    hint: {h}"))
            .unwrap_or_default();
        if self.line == 0 {
            format!("{}: [{}] {}{hint}", self.file.display(), self.rule, self.message)
        } else {
            format!(
                "{}:{}: [{}] {}{hint}",
                self.file.display(),
                self.line,
                self.rule,
                self.message
            )
        }
    }
}

/// Sorts by file then line then rule, for stable output.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule))
    });
}
