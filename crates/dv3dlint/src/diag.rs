//! Diagnostics: what a rule reports and how it renders.

use std::path::PathBuf;

/// One finding. `suppressed` findings matched an allow directive — they
//  are counted in the report but never fail the run.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub file: PathBuf,
    /// 1-based line (0 = whole-file / manifest finding).
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
    pub suppressed: bool,
}

impl Diagnostic {
    pub fn render(&self) -> String {
        if self.line == 0 {
            format!("{}: [{}] {}", self.file.display(), self.rule, self.message)
        } else {
            format!(
                "{}:{}: [{}] {}",
                self.file.display(),
                self.line,
                self.rule,
                self.message
            )
        }
    }
}

/// Sorts by file then line then rule, for stable output.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule))
    });
}
