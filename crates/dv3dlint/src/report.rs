//! Machine-readable report: `out/dv3dlint_report.json`, rule → violation /
//! allowed counts. Future PRs assert the counts are monotonically
//! non-increasing, so the shape is deliberately flat and stable. The JSON
//! is hand-emitted (fixed shape, no string content needs escaping beyond
//! the basics).

use crate::engine::RunSummary;
use std::path::Path;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the report JSON.
pub fn render(summary: &RunSummary) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"tool\": \"dv3dlint\",\n");
    s.push_str(&format!("  \"files_scanned\": {},\n", summary.files_scanned));
    s.push_str(&format!("  \"elapsed_ms\": {},\n", summary.elapsed_ms));
    s.push_str(&format!("  \"threads\": {},\n", summary.threads));
    s.push_str(&format!("  \"total_violations\": {},\n", summary.total_violations()));
    s.push_str(&format!("  \"total_allowed\": {},\n", summary.total_allowed()));
    s.push_str(&format!("  \"total_baselined\": {},\n", summary.total_baselined()));
    s.push_str("  \"rules\": {\n");
    let n = summary.per_rule.len();
    for (i, c) in summary.per_rule.iter().enumerate() {
        s.push_str(&format!(
            "    \"{}\": {{ \"violations\": {}, \"allowed\": {}, \"baselined\": {} }}{}\n",
            esc(c.rule),
            c.violations,
            c.allowed,
            c.baselined,
            if i + 1 < n { "," } else { "" }
        ));
    }
    s.push_str("  },\n");
    s.push_str("  \"findings\": [\n");
    let m = summary.diagnostics.len();
    for (i, d) in summary.diagnostics.iter().enumerate() {
        s.push_str(&format!(
            "    {{ \"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"suppressed\": {}, \
             \"baselined\": {}, \"message\": \"{}\" }}{}\n",
            esc(d.rule),
            esc(&d.file.as_os_str().to_string_lossy()),
            d.line,
            d.suppressed,
            d.baselined,
            esc(&d.message),
            if i + 1 < m { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Writes the report, creating the parent directory when needed.
pub fn write(summary: &RunSummary, path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, render(summary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RuleCount;

    #[test]
    fn report_shape_is_stable() {
        let summary = RunSummary {
            diagnostics: Vec::new(),
            per_rule: vec![
                RuleCount { rule: "no_panic", violations: 2, allowed: 7, baselined: 0 },
                RuleCount { rule: "deadline_io", violations: 0, allowed: 1, baselined: 3 },
            ],
            files_scanned: 42,
            elapsed_ms: 123,
            threads: 4,
        };
        let json = render(&summary);
        assert!(json.contains("\"files_scanned\": 42"));
        assert!(json.contains("\"elapsed_ms\": 123"));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"total_violations\": 2"));
        assert!(json.contains("\"total_allowed\": 8"));
        assert!(json.contains("\"total_baselined\": 3"));
        assert!(json
            .contains("\"no_panic\": { \"violations\": 2, \"allowed\": 7, \"baselined\": 0 },"));
        assert!(json.contains("\"findings\": [\n  ]"));
    }

    #[test]
    fn findings_are_listed_with_flags() {
        let summary = RunSummary {
            diagnostics: vec![crate::diag::Diagnostic {
                file: std::path::PathBuf::from("crates/x/src/a.rs"),
                line: 9,
                rule: "lock_order",
                message: "cycle".into(),
                hint: None,
                suppressed: false,
                baselined: true,
            }],
            per_rule: vec![RuleCount {
                rule: "lock_order",
                violations: 0,
                allowed: 0,
                baselined: 1,
            }],
            files_scanned: 1,
            elapsed_ms: 0,
            threads: 1,
        };
        let json = render(&summary);
        assert!(json.contains("\"rule\": \"lock_order\""));
        assert!(json.contains("\"line\": 9"));
        assert!(json.contains("\"baselined\": true"));
    }
}
