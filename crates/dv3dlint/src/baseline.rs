//! Baseline suppression: adopt dv3dlint in a codebase with pre-existing
//! findings by recording them once (`--write-baseline`) and subtracting
//! them on later runs (`--baseline`). Baselined findings are still
//! reported (marked `baselined`) but do not fail the run, so the gate
//! becomes "no *new* findings" — the ratchet direction is enforced by
//! count: fixing a baselined finding shrinks the budget on the next
//! `--write-baseline`, it never grows silently.
//!
//! Format (one line per bucket, sorted, tab-separated — diffable and
//! mergeable):
//!
//! ```text
//! <rule>\t<file>\t<fnv64 of message, 16 hex chars>\t<count>
//! ```
//!
//! Hashing the message (not the line) keeps baselines stable across
//! unrelated edits that shift line numbers; two identical findings in one
//! file share a bucket via the count.

use crate::diag::Diagnostic;
use crate::engine::RunSummary;
use std::collections::BTreeMap;
use std::path::Path;

/// FNV-1a 64-bit, rendered as 16 lowercase hex chars.
fn fnv16(s: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// The baseline bucket a diagnostic falls into.
fn key(d: &Diagnostic) -> String {
    format!(
        "{}\t{}\t{}",
        d.rule,
        d.file.as_os_str().to_string_lossy().replace(['\t', '\n'], "_"),
        fnv16(&d.message)
    )
}

/// Parses baseline file content. Blank lines and `#` comments are
/// ignored; malformed lines are reported as errors (a typo must not
/// silently un-suppress — or worse, suppress — anything).
pub fn parse(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let mut out: BTreeMap<String, usize> = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        let [rule, file, hash, count] = fields.as_slice() else {
            return Err(format!("baseline line {}: expected 4 tab-separated fields", i + 1));
        };
        let n: usize = count
            .parse()
            .map_err(|_| format!("baseline line {}: bad count `{count}`", i + 1))?;
        if hash.len() != 16 || !hash.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(format!("baseline line {}: bad hash `{hash}`", i + 1));
        }
        *out.entry(format!("{rule}\t{file}\t{hash}")).or_insert(0) += n;
    }
    Ok(out)
}

/// Loads a baseline file.
pub fn load(path: &Path) -> Result<BTreeMap<String, usize>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
    parse(&text)
}

/// Renders the current unsuppressed findings as baseline content.
pub fn render(summary: &RunSummary) -> String {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for d in &summary.diagnostics {
        if !d.suppressed {
            *counts.entry(key(d)).or_insert(0) += 1;
        }
    }
    let mut s = String::from("# dv3dlint baseline: rule<TAB>file<TAB>fnv64(message)<TAB>count\n");
    for (k, n) in &counts {
        s.push_str(&format!("{k}\t{n}\n"));
    }
    s
}

/// Writes the baseline, creating the parent directory when needed.
pub fn save(summary: &RunSummary, path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, render(summary))
}

/// Marks up to `count` matching unsuppressed findings per bucket as
/// baselined, then re-tallies the per-rule counts. Diagnostics are
/// already sorted (file/line/rule), so which instances get baselined when
/// the bucket is over-subscribed is deterministic: the earliest.
pub fn apply(summary: &mut RunSummary, baseline: &BTreeMap<String, usize>) {
    let mut budget = baseline.clone();
    for d in &mut summary.diagnostics {
        if d.suppressed {
            continue;
        }
        if let Some(n) = budget.get_mut(&key(d)) {
            if *n > 0 {
                *n -= 1;
                d.baselined = true;
            }
        }
    }
    summary.retally();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RuleCount;
    use std::path::PathBuf;

    fn diag(rule: &'static str, file: &str, line: u32, msg: &str) -> Diagnostic {
        Diagnostic {
            file: PathBuf::from(file),
            line,
            rule,
            message: msg.into(),
            hint: None,
            suppressed: false,
            baselined: false,
        }
    }

    fn summary(diags: Vec<Diagnostic>) -> RunSummary {
        let mut per_rule: Vec<RuleCount> = Vec::new();
        for d in &diags {
            if !per_rule.iter().any(|c| c.rule == d.rule) {
                per_rule.push(RuleCount {
                    rule: d.rule,
                    violations: 0,
                    allowed: 0,
                    baselined: 0,
                });
            }
        }
        let mut s = RunSummary {
            diagnostics: diags,
            per_rule,
            files_scanned: 1,
            elapsed_ms: 0,
            threads: 1,
        };
        s.retally();
        s
    }

    #[test]
    fn round_trip_suppresses_everything_and_only_that() {
        let mut s = summary(vec![
            diag("no_panic", "a.rs", 3, "x"),
            diag("no_panic", "a.rs", 9, "x"),
            diag("lock_order", "b.rs", 1, "cycle"),
        ]);
        assert_eq!(s.total_violations(), 3);
        let base = parse(&render(&s)).expect("round trip");
        apply(&mut s, &base);
        assert_eq!(s.total_violations(), 0);
        assert_eq!(s.total_baselined(), 3);
        assert!(s.clean());
        // a new finding is NOT covered
        let mut s2 = summary(vec![
            diag("no_panic", "a.rs", 3, "x"),
            diag("no_panic", "a.rs", 5, "y"),
        ]);
        apply(&mut s2, &base);
        assert_eq!(s2.total_violations(), 1);
        assert!(!s2.clean());
    }

    #[test]
    fn over_subscribed_bucket_baselines_earliest_instances() {
        let mut s = summary(vec![
            diag("no_panic", "a.rs", 3, "x"),
            diag("no_panic", "a.rs", 9, "x"),
            diag("no_panic", "a.rs", 12, "x"),
        ]);
        let one = summary(vec![diag("no_panic", "a.rs", 3, "x")]);
        let base = parse(&render(&one)).expect("parse");
        apply(&mut s, &base);
        assert_eq!(s.total_violations(), 2);
        assert!(s.diagnostics[0].baselined);
        assert!(!s.diagnostics[2].baselined);
    }

    #[test]
    fn malformed_lines_are_hard_errors() {
        assert!(parse("no_panic\ta.rs\tdeadbeef\t1\n").is_err(), "short hash");
        assert!(parse("no_panic\ta.rs\t0123456789abcdef\tmany\n").is_err(), "bad count");
        assert!(parse("just one field\n").is_err());
        assert!(parse("# comment\n\n").expect("ok").is_empty());
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv16(""), "cbf29ce484222325");
        assert_ne!(fnv16("a"), fnv16("b"));
    }
}
