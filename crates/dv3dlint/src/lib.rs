//! # dv3dlint — workspace invariants, machine-checked
//!
//! A self-contained static-analysis pass for this DV3D/UV-CDAT
//! reproduction. The system's correctness rests on invariants no compiler
//! checks: masked values must propagate through every CDAT kernel,
//! hyperwall protocol exchanges must be deadline-aware, and hot
//! render/regrid paths must not panic mid-frame. `dv3dlint` enforces them
//! with file:line diagnostics and a nonzero exit, so they are invariants
//! of the build rather than of code review.
//!
//! Shipped rules (each a module under [`rules`], with fixture tests):
//!
//! | id                      | invariant |
//! |-------------------------|-----------|
//! | `no_panic`              | no unwrap/expect/panic-family macros (or hot-path indexing) in library code |
//! | `mask_propagation`      | CDAT kernels reading raw `.data()` must consult the mask |
//! | `deadline_io`           | hyperwall exchanges outside `protocol.rs` use `_deadline` variants |
//! | `error_hygiene`         | public `*Error` enums are `#[non_exhaustive]` + implement `source()` |
//! | `lint_attrs`            | crate roots `#![forbid(unsafe_code)]` + opt into workspace `[lints]` |
//! | `lock_order`            | workspace lock-acquisition graph is acyclic (cycles = deadlock risk) |
//! | `guard_across_blocking` | no Mutex/RwLock guard live across blocking calls (I/O, fsync, condvar) |
//! | `nondet_reduction`      | no thread-order float accumulation or hash-order output outside `cdat::reduce` |
//! | `unbounded_growth`      | input-handling modules cap client-driven collection growth |
//!
//! The last four are powered by a two-pass dataflow engine ([`parse`] →
//! [`dataflow`] → [`callgraph`]): pass 1 models each function (bindings,
//! guards, call edges), pass 2 runs intra-procedural guard liveness plus a
//! workspace call-graph fixpoint (`may_block`, transitive lock sets).
//!
//! Escape hatch (reason mandatory, malformed directives are themselves
//! errors):
//!
//! ```text
//! // dv3dlint: allow(no_panic) -- index built from the same shape two lines up
//! ```
//!
//! Run `cargo run -p dv3dlint -- --workspace` from anywhere in the repo;
//! configuration lives in `dv3dlint.toml` at the workspace root, and every
//! workspace run refreshes `out/dv3dlint_report.json`.
//!
//! The crate depends only on the workspace's vendored `rayon` stub (for
//! the parallel file front-end, honouring `RAYON_NUM_THREADS`) — it lexes
//! Rust, scans items, and reads the TOML subset it needs with its own
//! machinery, so it builds before (and regardless of) the rest of the
//! workspace.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod callgraph;
pub mod config;
pub mod dataflow;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod model;
pub mod parse;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod workspace;
