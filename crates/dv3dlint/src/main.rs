//! The `dv3dlint` CLI.
//!
//! ```text
//! dv3dlint --workspace                 # lint every configured crate
//! dv3dlint path/to/file.rs dir/       # lint explicit paths (all rules, ad hoc)
//! dv3dlint --list-rules
//!
//! Flags:
//!   --config <path>          explicit dv3dlint.toml (default: search upward from cwd)
//!   --json <path>            write the JSON report here (default on --workspace:
//!                            <root>/out/dv3dlint_report.json)
//!   --sarif <path>           write SARIF 2.1.0 here (default on --workspace:
//!                            <root>/out/dv3dlint.sarif)
//!   --baseline <path>        subtract known findings; they report as `baselined`
//!                            and do not fail the run
//!   --write-baseline <path>  record the current findings as the new baseline
//!   --budget-ms <n>          fail (exit 2) if the lint pass exceeds n ms wall-clock
//!   --no-report              skip the JSON and SARIF reports
//!   --quiet                  suppress per-finding output, keep the summary
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/config error (including
//! a blown `--budget-ms`).

#![forbid(unsafe_code)]

use dv3dlint::config::Config;
use dv3dlint::{baseline, engine, report, sarif, workspace};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    workspace: bool,
    config: Option<PathBuf>,
    json: Option<PathBuf>,
    sarif: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    budget_ms: Option<u64>,
    no_report: bool,
    quiet: bool,
    list_rules: bool,
    paths: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        config: None,
        json: None,
        sarif: None,
        baseline: None,
        write_baseline: None,
        budget_ms: None,
        no_report: false,
        quiet: false,
        list_rules: false,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--config" => {
                args.config =
                    Some(PathBuf::from(it.next().ok_or("--config needs a path")?));
            }
            "--json" => {
                args.json = Some(PathBuf::from(it.next().ok_or("--json needs a path")?));
            }
            "--sarif" => {
                args.sarif = Some(PathBuf::from(it.next().ok_or("--sarif needs a path")?));
            }
            "--baseline" => {
                args.baseline =
                    Some(PathBuf::from(it.next().ok_or("--baseline needs a path")?));
            }
            "--write-baseline" => {
                args.write_baseline =
                    Some(PathBuf::from(it.next().ok_or("--write-baseline needs a path")?));
            }
            "--budget-ms" => {
                let v = it.next().ok_or("--budget-ms needs a number")?;
                args.budget_ms =
                    Some(v.parse().map_err(|_| format!("--budget-ms: bad number `{v}`"))?);
            }
            "--no-report" => args.no_report = true,
            "--quiet" | "-q" => args.quiet = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                return Err("usage: dv3dlint --workspace | <paths…> \
                            [--config <toml>] [--json <path>] [--sarif <path>] \
                            [--baseline <path>] [--write-baseline <path>] \
                            [--budget-ms <n>] [--no-report] [--quiet]"
                    .into());
            }
            p if !p.starts_with('-') => args.paths.push(PathBuf::from(p)),
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

/// Finds the workspace root: the directory holding `dv3dlint.toml`,
/// searching upward from the current directory.
fn find_root(explicit_config: Option<&PathBuf>) -> PathBuf {
    if let Some(cfg_path) = explicit_config {
        if let Some(parent) = cfg_path.parent() {
            if !parent.as_os_str().is_empty() {
                return parent.to_path_buf();
            }
        }
        return PathBuf::from(".");
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("dv3dlint.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn real_main() -> Result<bool, String> {
    let args = parse_args()?;
    if args.list_rules {
        for rule in dv3dlint::rules::all() {
            println!("{:<22} {}", rule.id(), rule.describe());
        }
        return Ok(true);
    }
    let root = find_root(args.config.as_ref());
    let cfg = Config::load(root.clone()).map_err(|e| e.to_string())?;

    let started = Instant::now();
    let ws = if args.workspace {
        workspace::load_workspace(&cfg).map_err(|e| e.to_string())?
    } else if !args.paths.is_empty() {
        workspace::load_paths(&args.paths).map_err(|e| e.to_string())?
    } else {
        return Err("nothing to lint: pass --workspace or explicit paths (try --help)".into());
    };

    let mut summary = engine::run(&ws, &cfg);
    summary.elapsed_ms = started.elapsed().as_millis() as u64;

    if let Some(path) = &args.write_baseline {
        baseline::save(&summary, path)
            .map_err(|e| format!("cannot write baseline {}: {e}", path.display()))?;
        eprintln!(
            "dv3dlint: baseline with {} finding(s) written to {}",
            summary.total_violations(),
            path.display()
        );
    }
    if let Some(path) = &args.baseline {
        let base = baseline::load(path)?;
        baseline::apply(&mut summary, &base);
    }

    if !args.quiet {
        for d in summary.diagnostics.iter().filter(|d| !d.suppressed) {
            if d.baselined {
                eprintln!("{} [baselined]", d.render());
            } else {
                eprintln!("{}", d.render());
            }
        }
    }
    let counts: Vec<String> = summary
        .per_rule
        .iter()
        .filter(|c| c.violations + c.allowed + c.baselined > 0)
        .map(|c| {
            format!("{}: {} ({} allowed, {} baselined)", c.rule, c.violations, c.allowed, c.baselined)
        })
        .collect();
    eprintln!(
        "dv3dlint: {} file(s) in {} ms on {} thread(s), {} violation(s), {} allowed, {} baselined{}{}",
        summary.files_scanned,
        summary.elapsed_ms,
        summary.threads,
        summary.total_violations(),
        summary.total_allowed(),
        summary.total_baselined(),
        if counts.is_empty() { "" } else { " — " },
        counts.join(", ")
    );

    let report_path = if args.no_report {
        None
    } else if let Some(p) = args.json {
        Some(p)
    } else if args.workspace {
        Some(root.join("out/dv3dlint_report.json"))
    } else {
        None
    };
    if let Some(path) = report_path {
        report::write(&summary, &path)
            .map_err(|e| format!("cannot write report {}: {e}", path.display()))?;
        if !args.quiet {
            eprintln!("dv3dlint: report written to {}", path.display());
        }
    }
    let sarif_path = if args.no_report {
        None
    } else if let Some(p) = args.sarif {
        Some(p)
    } else if args.workspace {
        Some(root.join("out/dv3dlint.sarif"))
    } else {
        None
    };
    if let Some(path) = sarif_path {
        sarif::write(&summary, &path)
            .map_err(|e| format!("cannot write sarif {}: {e}", path.display()))?;
        if !args.quiet {
            eprintln!("dv3dlint: sarif written to {}", path.display());
        }
    }

    if let Some(budget) = args.budget_ms {
        if summary.elapsed_ms > budget {
            return Err(format!(
                "lint pass took {} ms, over the --budget-ms {budget}",
                summary.elapsed_ms
            ));
        }
    }
    Ok(summary.clean())
}

fn main() -> ExitCode {
    match real_main() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("dv3dlint: {msg}");
            ExitCode::from(2)
        }
    }
}
