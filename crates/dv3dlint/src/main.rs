//! The `dv3dlint` CLI.
//!
//! ```text
//! dv3dlint --workspace                 # lint every configured crate
//! dv3dlint path/to/file.rs dir/       # lint explicit paths (all rules, ad hoc)
//! dv3dlint --list-rules
//!
//! Flags:
//!   --config <path>   explicit dv3dlint.toml (default: search upward from cwd)
//!   --json <path>     write the JSON report here (default on --workspace:
//!                     <root>/out/dv3dlint_report.json)
//!   --no-report       skip the JSON report
//!   --quiet           suppress per-finding output, keep the summary
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/config error.

#![forbid(unsafe_code)]

use dv3dlint::config::Config;
use dv3dlint::{engine, report, workspace};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    workspace: bool,
    config: Option<PathBuf>,
    json: Option<PathBuf>,
    no_report: bool,
    quiet: bool,
    list_rules: bool,
    paths: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        config: None,
        json: None,
        no_report: false,
        quiet: false,
        list_rules: false,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--config" => {
                args.config =
                    Some(PathBuf::from(it.next().ok_or("--config needs a path")?));
            }
            "--json" => {
                args.json = Some(PathBuf::from(it.next().ok_or("--json needs a path")?));
            }
            "--no-report" => args.no_report = true,
            "--quiet" | "-q" => args.quiet = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                return Err("usage: dv3dlint --workspace | <paths…> \
                            [--config <toml>] [--json <path>] [--no-report] [--quiet]"
                    .into());
            }
            p if !p.starts_with('-') => args.paths.push(PathBuf::from(p)),
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

/// Finds the workspace root: the directory holding `dv3dlint.toml`,
/// searching upward from the current directory.
fn find_root(explicit_config: Option<&PathBuf>) -> PathBuf {
    if let Some(cfg_path) = explicit_config {
        if let Some(parent) = cfg_path.parent() {
            if !parent.as_os_str().is_empty() {
                return parent.to_path_buf();
            }
        }
        return PathBuf::from(".");
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("dv3dlint.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn real_main() -> Result<bool, String> {
    let args = parse_args()?;
    if args.list_rules {
        for rule in dv3dlint::rules::all() {
            println!("{:<18} {}", rule.id(), rule.describe());
        }
        return Ok(true);
    }
    let root = find_root(args.config.as_ref());
    let cfg = Config::load(root.clone()).map_err(|e| e.to_string())?;

    let ws = if args.workspace {
        workspace::load_workspace(&cfg).map_err(|e| e.to_string())?
    } else if !args.paths.is_empty() {
        workspace::load_paths(&args.paths).map_err(|e| e.to_string())?
    } else {
        return Err("nothing to lint: pass --workspace or explicit paths (try --help)".into());
    };

    let summary = engine::run(&ws, &cfg);

    if !args.quiet {
        for d in summary.diagnostics.iter().filter(|d| !d.suppressed) {
            eprintln!("{}", d.render());
        }
    }
    let counts: Vec<String> = summary
        .per_rule
        .iter()
        .filter(|c| c.violations + c.allowed > 0)
        .map(|c| format!("{}: {} ({} allowed)", c.rule, c.violations, c.allowed))
        .collect();
    eprintln!(
        "dv3dlint: {} file(s), {} violation(s), {} allowed{}{}",
        summary.files_scanned,
        summary.total_violations(),
        summary.total_allowed(),
        if counts.is_empty() { "" } else { " — " },
        counts.join(", ")
    );

    let report_path = if args.no_report {
        None
    } else if let Some(p) = args.json {
        Some(p)
    } else if args.workspace {
        Some(root.join("out/dv3dlint_report.json"))
    } else {
        None
    };
    if let Some(path) = report_path {
        report::write(&summary, &path)
            .map_err(|e| format!("cannot write report {}: {e}", path.display()))?;
        if !args.quiet {
            eprintln!("dv3dlint: report written to {}", path.display());
        }
    }
    Ok(summary.clean())
}

fn main() -> ExitCode {
    match real_main() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("dv3dlint: {msg}");
            ExitCode::from(2)
        }
    }
}
