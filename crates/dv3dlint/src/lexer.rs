//! A minimal Rust lexer: just enough fidelity that the rules never mistake
//! string/comment contents for code. Produces a flat token stream (with line
//! numbers) plus the comment list (allow-directives live in comments).
//!
//! Known simplifications, acceptable for a lint that only inspects this
//! workspace: numeric literals are lexed loosely (`1e-3` becomes three
//! tokens) and shebang lines are treated as comments.

/// One lexed token. Literal contents are discarded — no rule looks inside
/// strings or numbers, only at identifiers and punctuation shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `unwrap`, `Error`, …).
    Ident(String),
    /// Single punctuation character (`.`, `(`, `!`, …).
    Punct(char),
    /// Lifetime (`'a`) — kept distinct so `'a` is never read as a char.
    Lifetime,
    /// String / raw-string / byte-string / char literal.
    Str,
    /// Numeric literal (loosely lexed; the text is kept so dataflow can
    /// tell float literals like `0.0` from integers).
    Num(String),
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// A comment (line or block), with its text and extent.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on.
    pub end_line: u32,
    /// True when no token precedes the comment on its starting line — the
    /// comment owns the line, so an allow-directive in it targets the next
    /// code line rather than this one.
    pub own_line: bool,
    /// True for doc comments (`///`, `//!`, `/** */`, `/*! */`). Allow
    /// directives are only honoured in plain comments, so documentation
    /// *describing* the directive syntax is never parsed as a directive.
    pub is_doc: bool,
}

/// Lexer output: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Tokenizes `src`. Never fails: unterminated literals simply swallow the
/// rest of the file, which is the least-bad behaviour for a linter.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // line of the most recently emitted token — drives Comment::own_line
    let mut last_tok_line: u32 = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != '\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    text: b[start..j].iter().collect(),
                    line,
                    end_line: line,
                    own_line: last_tok_line != line,
                    is_doc: matches!(b.get(start), Some('/') | Some('!')),
                });
                i = j;
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                let start_line = line;
                let own_line = last_tok_line != line;
                let mut depth = 1usize;
                let mut j = i + 2;
                let text_start = j;
                while j < b.len() && depth > 0 {
                    if b[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == '/' && b.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 2;
                    } else if b[j] == '*' && b.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let text_end = j.saturating_sub(2).max(text_start);
                out.comments.push(Comment {
                    text: b[text_start..text_end].iter().collect(),
                    line: start_line,
                    end_line: line,
                    own_line,
                    is_doc: matches!(b.get(text_start), Some('*') | Some('!')),
                });
                i = j;
            }
            '"' => {
                i = skip_string(&b, i, &mut line);
                out.tokens.push(Token { tok: Tok::Str, line });
                last_tok_line = line;
            }
            'r' | 'b' | 'c' if is_raw_or_byte_string(&b, i) => {
                let tok_line = line;
                i = skip_prefixed_string(&b, i, &mut line);
                out.tokens.push(Token { tok: Tok::Str, line: tok_line });
                last_tok_line = line;
            }
            '\'' => {
                // lifetime or char literal
                if is_char_literal(&b, i) {
                    i = skip_char_literal(&b, i);
                    out.tokens.push(Token { tok: Tok::Str, line });
                } else {
                    i += 1;
                    while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                    out.tokens.push(Token { tok: Tok::Lifetime, line });
                }
                last_tok_line = line;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Ident(b[start..i].iter().collect()),
                    line,
                });
                last_tok_line = line;
            }
            c if c.is_ascii_digit() => {
                // loose: digits plus ident-ish continuation and dots (0xff,
                // 1_000, 3.14, 12u64); `1e-3` splits, which no rule minds
                let start = i;
                i += 1;
                while i < b.len()
                    && (b[i].is_alphanumeric()
                        || b[i] == '_'
                        || (b[i] == '.' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit())))
                {
                    i += 1;
                }
                out.tokens.push(Token { tok: Tok::Num(b[start..i].iter().collect()), line });
                last_tok_line = line;
            }
            c => {
                out.tokens.push(Token { tok: Tok::Punct(c), line });
                last_tok_line = line;
                i += 1;
            }
        }
    }
    out
}

/// True when position `i` starts `r"`, `r#"`, `b"`, `br#"`, `b'`, `c"`, ….
fn is_raw_or_byte_string(b: &[char], i: usize) -> bool {
    let mut j = i;
    // up to two prefix letters (br, rb is not legal but harmless to accept)
    for _ in 0..2 {
        match b.get(j) {
            Some('r' | 'b' | 'c') => j += 1,
            _ => break,
        }
    }
    while b.get(j) == Some(&'#') {
        j += 1;
    }
    matches!(b.get(j), Some('"')) || (b.get(i) == Some(&'b') && b.get(i + 1) == Some(&'\''))
}

/// Skips a plain `"…"` string starting at `i` (the opening quote); returns
/// the index one past the closing quote. Tracks newlines into `line`.
fn skip_string(b: &[char], i: usize, line: &mut u32) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            '\\' => j += 2,
            '\n' => {
                *line += 1;
                j += 1;
            }
            '"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Skips `r#"…"#` / `b"…"` / `b'x'` style literals starting at the prefix.
fn skip_prefixed_string(b: &[char], i: usize, line: &mut u32) -> usize {
    let mut j = i;
    let mut raw = false;
    for _ in 0..2 {
        match b.get(j) {
            Some('r') => {
                raw = true;
                j += 1;
            }
            Some('b' | 'c') => j += 1,
            _ => break,
        }
    }
    let mut hashes = 0usize;
    while b.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) == Some(&'\'') {
        // byte char literal b'x'
        return skip_char_literal(b, j);
    }
    if b.get(j) != Some(&'"') {
        return j + 1; // defensive: not actually a string
    }
    j += 1;
    while j < b.len() {
        match b[j] {
            '\n' => {
                *line += 1;
                j += 1;
            }
            '\\' if !raw => j += 2,
            '"' => {
                let mut k = j + 1;
                let mut seen = 0usize;
                while seen < hashes && b.get(k) == Some(&'#') {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    return k;
                }
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

/// Distinguishes `'x'` / `'\n'` (char literal) from `'a` (lifetime) at a
/// leading quote.
fn is_char_literal(b: &[char], i: usize) -> bool {
    match b.get(i + 1) {
        Some('\\') => true,
        Some(&c) if c.is_alphanumeric() || c == '_' => {
            // 'a' is a char only if the quote closes right after one ident
            // char; 'abc is a lifetime (lexically)
            b.get(i + 2) == Some(&'\'')
        }
        Some(_) => true, // '(' etc: a char literal like '('
        None => false,
    }
}

/// Skips a char literal starting at the quote; returns one past the close.
fn skip_char_literal(b: &[char], i: usize) -> usize {
    let mut j = i + 1;
    if b.get(j) == Some(&'\\') {
        j += 2;
        // \u{…}
        while j < b.len() && b[j] != '\'' {
            j += 1;
        }
        return j + 1;
    }
    while j < b.len() && b[j] != '\'' {
        j += 1;
    }
    j + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_code() {
        let src = r##"
            // unwrap() in a line comment
            /* unwrap() in a /* nested */ block */
            let s = "unwrap()";
            let r = r#"panic!("x")"#;
            real.unwrap();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|s| *s == "unwrap").count(), 1);
        assert!(!ids.contains(&"panic".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let c = 'x'; x }";
        let lexed = lex(src);
        let lifetimes = lexed.tokens.iter().filter(|t| t.tok == Tok::Lifetime).count();
        let chars = lexed.tokens.iter().filter(|t| t.tok == Tok::Str).count();
        assert_eq!(lifetimes, 3);
        assert_eq!(chars, 1);
    }

    #[test]
    fn line_numbers_track_multiline_strings() {
        let src = "let a = \"one\ntwo\";\nb.unwrap();";
        let lexed = lex(src);
        let unwrap = lexed
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("unwrap".into()))
            .expect("unwrap token"); // dv3dlint: allow(no_panic) -- test helper
        assert_eq!(unwrap.line, 3);
    }

    #[test]
    fn own_line_flag_distinguishes_trailing_comments() {
        let src = "x(); // trailing\n// own line\ny();";
        let lexed = lex(src);
        assert!(!lexed.comments[0].own_line);
        assert!(lexed.comments[1].own_line);
    }

    #[test]
    fn byte_and_raw_hash_strings() {
        let src = r###"let g = *b"!!not-json"; let r = r##"a "#quote" b"##; t.unwrap();"###;
        let ids = idents(src);
        // the `b`/`r` string prefixes are consumed with their literals; the
        // plain variable named `r` (followed by a space) stays an ident
        assert_eq!(ids, vec!["let", "g", "let", "r", "t", "unwrap"]);
    }
}
