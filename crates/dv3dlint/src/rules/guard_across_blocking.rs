//! R8 `guard_across_blocking`: no lock guard may be live across a call
//! that can block — deadline I/O, fsync, channel receives, sleeps, condvar
//! waits — whether the blocking call is direct or reached through the
//! workspace call graph. This is the static form of PR 6's plan-cache
//! claim ("the lock is never held during builds") and of the session
//! service's worker-loop discipline.
//!
//! The condvar exemption: `cv.wait(guard)` *releases* the guard it is
//! handed for the duration of the wait, so that guard is exempt at the
//! wait site — but any **other** guard still held there is a finding.
//!
//! Escape hatch: `// dv3dlint: allow(guard_across_blocking) -- <reason>`.

use super::Rule;
use crate::config::Config;
use crate::diag::Diagnostic;
use crate::workspace::{CrateModel, Workspace};

#[derive(Debug)]
pub struct GuardAcrossBlocking;

impl Rule for GuardAcrossBlocking {
    fn id(&self) -> &'static str {
        "guard_across_blocking"
    }

    fn describe(&self) -> &'static str {
        "no Mutex/RwLock guard live across blocking calls (deadline I/O, fsync, condvar waits)"
    }

    fn check_crate(
        &self,
        krate: &CrateModel,
        ws: &Workspace,
        cfg: &Config,
        out: &mut Vec<Diagnostic>,
    ) {
        if !cfg.guard_blocking_enabled || !krate.in_scope(&cfg.concurrency_crates) {
            return;
        }
        let analysis = ws.analysis(cfg);
        for file in &krate.files {
            for i in analysis.fns_in_file(&file.path) {
                let node = &analysis.fns[i];
                let mut reported: Vec<u32> = Vec::new();
                // direct blocking calls under a guard
                for b in &node.facts.blocking {
                    if b.held.is_empty() {
                        continue;
                    }
                    let held = b
                        .held
                        .iter()
                        .map(|h| format!("`{}` (acquired line {})", h.lock, h.line))
                        .collect::<Vec<_>>()
                        .join(", ");
                    reported.push(b.line);
                    out.push(Diagnostic {
                        file: file.path.clone(),
                        line: b.line,
                        rule: self.id(),
                        message: format!(
                            "guard {held} held across blocking `{}` in `{}`",
                            b.callee, node.name
                        ),
                        hint: Some(
                            "narrow the critical section: copy what you need out of the \
                             guard, drop it, then block"
                                .into(),
                        ),
                        suppressed: file.is_allowed(self.id(), b.line),
                        baselined: false,
                    });
                }
                // calls under a guard into functions that may block
                for cu in &node.facts.calls {
                    if cu.held.is_empty() || reported.contains(&cu.line) {
                        continue;
                    }
                    let Some(j) = analysis
                        .resolve(i, &cu.callee)
                        .into_iter()
                        .find(|&j| analysis.may_block[j].is_some())
                    else {
                        continue;
                    };
                    let Some(witness) = &analysis.may_block[j] else { continue };
                    let held = cu
                        .held
                        .iter()
                        .map(|h| format!("`{}` (acquired line {})", h.lock, h.line))
                        .collect::<Vec<_>>()
                        .join(", ");
                    let chain = std::iter::once(cu.callee.as_str())
                        .chain(witness.iter().map(String::as_str))
                        .collect::<Vec<_>>()
                        .join(" → ");
                    reported.push(cu.line);
                    out.push(Diagnostic {
                        file: file.path.clone(),
                        line: cu.line,
                        rule: self.id(),
                        message: format!(
                            "guard {held} held across call to `{}`, which can block \
                             ({chain}) in `{}`",
                            cu.callee, node.name
                        ),
                        hint: Some(
                            "drop the guard before the call, or split the callee so the \
                             blocking part runs lock-free"
                                .into(),
                        ),
                        suppressed: file.is_allowed(self.id(), cu.line),
                        baselined: false,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::{cfg, lines, run_on_ws};

    /// The seeded violations from the acceptance criteria: a guard held
    /// across `read_message_deadline`, and across a condvar wait (on a
    /// *different* lock than the one the wait releases).
    const BAD: &str = "\
pub fn pump(&self, s: &mut TcpStream) -> Result<()> {
    let state = self.state.lock();
    let msg = read_message_deadline(s, DEADLINE, \"frame\")?;
    state.apply(msg);
    Ok(())
}
pub fn gate(&self) {
    let stats = self.stats.lock();
    let mut done = self.done.lock();
    while !*done {
        done = self.cv.wait(done);
    }
    stats.record();
}
";

    const GOOD: &str = "\
pub fn pump(&self, s: &mut TcpStream) -> Result<()> {
    let msg = read_message_deadline(s, DEADLINE, \"frame\")?;
    let state = self.state.lock();
    state.apply(msg);
    Ok(())
}
pub fn gate(&self) {
    let mut done = self.done.lock();
    while !*done {
        done = self.cv.wait(done);
    }
}
";

    #[test]
    fn guard_across_deadline_io_and_condvar_wait_are_caught() {
        let diags = run_on_ws(
            &GuardAcrossBlocking,
            "hyperwall",
            "crates/hyperwall/src/service/x.rs",
            BAD,
            &cfg(),
        );
        let ls = lines(&diags);
        assert!(ls.contains(&3), "read_message_deadline under guard: {diags:?}");
        assert!(ls.contains(&11), "condvar wait with a second guard live: {diags:?}");
    }

    #[test]
    fn released_guards_and_waited_guard_are_clean() {
        let diags = run_on_ws(
            &GuardAcrossBlocking,
            "hyperwall",
            "crates/hyperwall/src/service/x.rs",
            GOOD,
            &cfg(),
        );
        assert_eq!(lines(&diags), Vec::<u32>::new(), "{diags:?}");
    }

    #[test]
    fn interprocedural_blocking_is_traced() {
        let src = "\
fn build(&self) {
    self.slot_wait();
}
fn slot_wait(&self) {
    let mut done = self.done.lock();
    done = self.cv.wait(done);
}
fn bad(&self) {
    let cache = self.cache.lock();
    self.build();
    drop(cache);
}
";
        let diags = run_on_ws(
            &GuardAcrossBlocking,
            "cdat",
            "crates/cdat/src/x.rs",
            src,
            &cfg(),
        );
        assert_eq!(lines(&diags), vec![10], "{diags:?}");
        let d = diags.iter().find(|d| d.line == 10).expect("finding");
        assert!(d.message.contains("build"), "witness chain names the path: {}", d.message);
    }

    /// A workspace fn named `wait` (the plan-cache build slot) must not
    /// re-flag a condvar wait through the call graph: `cv.wait(guard)`
    /// releases the guard it is handed, so the name-resolved call edge
    /// carries no held guard either.
    #[test]
    fn condvar_wait_is_exempt_on_the_call_edge_too() {
        let src = "\
fn wait(&self) {
    let mut done = self.done.lock();
    while !*done {
        done = self.cv.wait(done);
    }
}
fn pump(&self) {
    let mut guard = self.state.lock();
    while guard.pending {
        guard = self.cv.wait(guard);
    }
}
";
        let diags = run_on_ws(
            &GuardAcrossBlocking,
            "cdat",
            "crates/cdat/src/x.rs",
            src,
            &cfg(),
        );
        assert_eq!(lines(&diags), Vec::<u32>::new(), "{diags:?}");
    }

    #[test]
    fn allow_directive_suppresses() {
        let src = "\
pub fn flush(&self) {
    let log = self.log.lock();
    // dv3dlint: allow(guard_across_blocking) -- single-threaded shutdown path
    self.file.sync_all();
    drop(log);
}
";
        let diags = run_on_ws(
            &GuardAcrossBlocking,
            "cdms",
            "crates/cdms/src/x.rs",
            src,
            &cfg(),
        );
        assert_eq!(lines(&diags), Vec::<u32>::new(), "{diags:?}");
        assert!(diags.iter().any(|d| d.suppressed));
    }

    #[test]
    fn out_of_scope_crates_are_exempt() {
        let mut c = cfg();
        c.concurrency_crates = vec!["cdat".into()];
        let diags = run_on_ws(
            &GuardAcrossBlocking,
            "somecrate",
            "crates/somecrate/src/x.rs",
            BAD,
            &c,
        );
        assert!(diags.is_empty());
    }
}
