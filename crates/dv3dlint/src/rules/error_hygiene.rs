//! R4 `error_hygiene`: every public `enum *Error` must be
//! `#[non_exhaustive]` (so adding a failure mode is not a breaking change
//! across the workspace) and must have a `std::error::Error` impl that
//! implements `source()` (so wrapped causes stay walkable for operators
//! debugging a wall node). Escape hatch: `dv3dlint: allow(error_hygiene)`.

use super::Rule;
use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::Tok;
use crate::model::ItemKind;
use crate::workspace::{CrateModel, Workspace};

#[derive(Debug)]
pub struct ErrorHygiene;

impl Rule for ErrorHygiene {
    fn id(&self) -> &'static str {
        "error_hygiene"
    }

    fn describe(&self) -> &'static str {
        "public *Error enums must be #[non_exhaustive] and implement source()"
    }

    fn check_crate(
        &self,
        krate: &CrateModel,
        _ws: &Workspace,
        cfg: &Config,
        out: &mut Vec<Diagnostic>,
    ) {
        if !cfg.error_hygiene_enabled || !krate.in_scope(&cfg.error_hygiene_crates) {
            return;
        }
        // crate-wide pass: the enum and its Error impl may live in
        // different files
        let mut impls_with_source: Vec<String> = Vec::new();
        for file in &krate.files {
            for item in &file.items {
                let ItemKind::Impl { trait_name: Some(t), type_name } = &item.kind else {
                    continue;
                };
                if t != "Error" {
                    continue;
                }
                let Some((open, close)) = item.body else { continue };
                let toks = &file.lexed.tokens;
                let has_source = (open..close).any(|i| {
                    matches!(&toks[i].tok, Tok::Ident(a) if a == "fn")
                        && matches!(toks.get(i + 1).map(|t| &t.tok),
                                    Some(Tok::Ident(b)) if b == "source")
                });
                if has_source {
                    impls_with_source.push(type_name.clone());
                }
            }
        }
        for file in &krate.files {
            for item in &file.items {
                if item.kind != ItemKind::Enum
                    || !item.is_pub
                    || item.in_test
                    || !item.name.ends_with("Error")
                {
                    continue;
                }
                let suppressed = file.is_allowed(self.id(), item.line);
                if !item.attrs.iter().any(|a| a == "non_exhaustive") {
                    out.push(Diagnostic {
                        file: file.path.clone(),
                        line: item.line,
                        rule: self.id(),
                        message: format!(
                            "public error enum `{}` is not `#[non_exhaustive]` — adding a \
                             failure mode would break every downstream match",
                            item.name
                        ),
                        hint: Some("add `#[non_exhaustive]` above the enum".into()),
                        suppressed,
                        baselined: false,
                    });
                }
                if !impls_with_source.iter().any(|t| t == &item.name) {
                    out.push(Diagnostic {
                        file: file.path.clone(),
                        line: item.line,
                        rule: self.id(),
                        message: format!(
                            "`{}` has no `std::error::Error` impl with `fn source()` — \
                             wrapped causes are unreachable from the error chain",
                            item.name
                        ),
                        hint: Some(
                            "implement `std::error::Error for …` with `fn source()`".into(),
                        ),
                        suppressed,
                        baselined: false,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::{cfg, lines, run_on};

    const GOOD: &str = r#"
#[derive(Debug)]
#[non_exhaustive]
pub enum GoodError {
    Io(std::io::Error),
    Other(String),
}

impl std::error::Error for GoodError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GoodError::Io(e) => Some(e),
            _ => None,
        }
    }
}
"#;

    const BAD: &str = r#"
#[derive(Debug)]
pub enum NakedError {
    Oops,
}

impl std::error::Error for NakedError {}

enum PrivateError { X }

pub enum NotAnErr { Y }
"#;

    #[test]
    fn compliant_enum_passes() {
        let diags = run_on(&ErrorHygiene, "cdms", "crates/cdms/src/e.rs", GOOD, &cfg());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn missing_attr_and_source_both_flagged_once_each() {
        let diags = run_on(&ErrorHygiene, "cdms", "crates/cdms/src/e.rs", BAD, &cfg());
        assert_eq!(lines(&diags), vec![3, 3], "{diags:?}");
        assert!(diags[0].message.contains("non_exhaustive"));
        assert!(diags[1].message.contains("source"));
    }

    #[test]
    fn private_and_non_error_enums_ignored() {
        let diags = run_on(&ErrorHygiene, "cdms", "e.rs", BAD, &cfg());
        assert!(diags.iter().all(|d| d.message.contains("NakedError")));
    }
}
