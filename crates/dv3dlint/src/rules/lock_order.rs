//! R7 `lock_order`: builds the workspace lock-acquisition graph (an edge
//! `A → B` means lock `B` was — or can be, through calls — acquired while
//! `A` was held) and reports every cycle as a potential deadlock, with the
//! acquisition path for each edge. A self-edge means a non-reentrant lock
//! can be re-acquired while already held, which deadlocks a `std`/
//! `parking_lot` mutex outright.
//!
//! The graph is global, so the rule runs once — anchored to the first
//! scanned crate — and reports diagnostics wherever the edges live.
//! Lock identity is `{crate}::{field}` (last receiver segment), a
//! documented approximation: two distinct locks with the same field name
//! in one crate would alias. See DESIGN.md §15.
//!
//! Escape hatch: `// dv3dlint: allow(lock_order) -- <reason>` on any
//! acquisition site participating in the cycle.

use super::Rule;
use crate::config::Config;
use crate::diag::Diagnostic;
use crate::workspace::{CrateModel, Workspace};

#[derive(Debug)]
pub struct LockOrder;

impl Rule for LockOrder {
    fn id(&self) -> &'static str {
        "lock_order"
    }

    fn describe(&self) -> &'static str {
        "the workspace lock-acquisition graph must be acyclic (cycles = potential deadlock)"
    }

    fn check_crate(
        &self,
        krate: &CrateModel,
        ws: &Workspace,
        cfg: &Config,
        out: &mut Vec<Diagnostic>,
    ) {
        if !cfg.lock_order_enabled {
            return;
        }
        // global analysis: run exactly once per engine pass
        if ws.crates.first().map(|c| c.name != krate.name).unwrap_or(true) {
            return;
        }
        let analysis = ws.analysis(cfg);
        for cycle in analysis.lock_cycles() {
            let first = match cycle.first() {
                Some(e) => *e,
                None => continue,
            };
            let suppressed = cycle.iter().any(|e| {
                ws.file(&e.file).is_some_and(|f| f.is_allowed(self.id(), e.line))
            });
            let message = if cycle.len() == 1 && first.from == first.to {
                format!(
                    "lock `{}` can be re-acquired while already held — a non-reentrant \
                     mutex deadlocks here ({})",
                    first.from, first.note
                )
            } else {
                let ring: Vec<&str> = cycle
                    .iter()
                    .map(|e| e.from.as_str())
                    .chain(std::iter::once(first.from.as_str()))
                    .collect();
                let paths: Vec<String> = cycle
                    .iter()
                    .enumerate()
                    .map(|(i, e)| format!("path {}: {}", i + 1, e.note))
                    .collect();
                format!(
                    "potential deadlock: lock-order cycle {} — {}",
                    ring.join(" → "),
                    paths.join("; ")
                )
            };
            out.push(Diagnostic {
                file: first.file.clone(),
                line: first.line,
                rule: self.id(),
                message,
                hint: Some(
                    "pick one global acquisition order for these locks (or merge their \
                     critical sections) and restructure the odd path out"
                        .into(),
                ),
                suppressed,
                baselined: false,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::{cfg, lines, run_on_ws};

    /// The seeded violation from the acceptance criteria: two mutexes
    /// acquired in opposite orders on two paths (one path crossing a
    /// function boundary).
    const CYCLE: &str = "\
pub fn forward(&self) {
    let a = self.alpha.lock();
    let b = self.beta.lock();
    drop(b);
    drop(a);
}
pub fn backward(&self) {
    let b = self.beta.lock();
    self.grab_alpha();
    drop(b);
}
fn grab_alpha(&self) {
    let a = self.alpha.lock();
    drop(a);
}
";

    #[test]
    fn two_mutex_cycle_reports_both_paths() {
        let diags = run_on_ws(&LockOrder, "svc", "crates/svc/src/x.rs", CYCLE, &cfg());
        assert_eq!(lines(&diags).len(), 1, "{diags:?}");
        let d = &diags[0];
        assert!(d.message.contains("svc::alpha") && d.message.contains("svc::beta"));
        assert!(d.message.contains("path 1:") && d.message.contains("path 2:"));
        assert!(d.message.contains("grab_alpha"), "interproc path is named: {}", d.message);
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "\
pub fn one(&self) {
    let a = self.alpha.lock();
    let b = self.beta.lock();
    drop(b);
    drop(a);
}
pub fn two(&self) {
    let a = self.alpha.lock();
    let b = self.beta.lock();
    drop(b);
    drop(a);
}
";
        let diags = run_on_ws(&LockOrder, "svc", "crates/svc/src/x.rs", src, &cfg());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn reacquisition_is_a_self_cycle() {
        let src = "\
pub fn re(&self) {
    let a = self.alpha.lock();
    let b = self.alpha.lock();
    drop(b);
    drop(a);
}
";
        let diags = run_on_ws(&LockOrder, "svc", "crates/svc/src/x.rs", src, &cfg());
        assert_eq!(lines(&diags).len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("re-acquired"));
    }

    #[test]
    fn allow_on_any_cycle_edge_suppresses() {
        let src = "\
pub fn forward(&self) {
    let a = self.alpha.lock();
    // dv3dlint: allow(lock_order) -- beta is only tried, never waited on here
    let b = self.beta.lock();
    drop(b);
    drop(a);
}
pub fn backward(&self) {
    let b = self.beta.lock();
    let a = self.alpha.lock();
    drop(a);
    drop(b);
}
";
        let diags = run_on_ws(&LockOrder, "svc", "crates/svc/src/x.rs", src, &cfg());
        assert_eq!(lines(&diags), Vec::<u32>::new(), "{diags:?}");
        assert!(diags.iter().any(|d| d.suppressed));
    }
}
