//! R9 `nondet_reduction`: parallel float reductions and hash-order
//! iteration both produce run-to-run nondeterminism, which breaks frame
//! digests, regression baselines, and the checkpoint determinism PR 4
//! promised. Two findings:
//!
//! 1. Float accumulation inside a rayon `par_*` region — an outer float
//!    accumulator mutated from the closure, or `reduce`/`fold`/`sum`
//!    chained directly on the parallel iterator over float data. Summation
//!    order varies with thread scheduling; IEEE addition is not
//!    associative. The sanctioned path is `cdat::reduce` (pairwise, fixed
//!    tree), so files configured as `reduction_modules` are exempt.
//! 2. Iterating a `HashMap`/`HashSet` into an ordered sink (`push`,
//!    `write!`, digest `update`, frame emission): hash order is
//!    randomized per process.
//!
//! Escape hatch: `// dv3dlint: allow(nondet_reduction) -- <reason>`.

use super::Rule;
use crate::config::Config;
use crate::diag::Diagnostic;
use crate::workspace::{CrateModel, Workspace};

#[derive(Debug)]
pub struct NondetReduction;

impl Rule for NondetReduction {
    fn id(&self) -> &'static str {
        "nondet_reduction"
    }

    fn describe(&self) -> &'static str {
        "no float accumulation in par regions outside cdat::reduce; no hash-order → ordered sink"
    }

    fn check_crate(
        &self,
        krate: &CrateModel,
        ws: &Workspace,
        cfg: &Config,
        out: &mut Vec<Diagnostic>,
    ) {
        if !cfg.nondet_enabled || !krate.in_scope(&cfg.concurrency_crates) {
            return;
        }
        let analysis = ws.analysis(cfg);
        for file in &krate.files {
            let path_str = file.path.as_os_str().to_string_lossy();
            let exempt_floats = cfg
                .reduction_modules
                .iter()
                .any(|m| path_str.ends_with(m.as_str()));
            for i in analysis.fns_in_file(&file.path) {
                let node = &analysis.fns[i];
                if !exempt_floats {
                    for nf in &node.facts.nondet_floats {
                        out.push(Diagnostic {
                            file: file.path.clone(),
                            line: nf.line,
                            rule: self.id(),
                            message: format!(
                                "float accumulation `{}` inside `{}` region of `{}` — \
                                 summation order depends on thread scheduling",
                                nf.what, nf.par_method, node.name
                            ),
                            hint: Some(
                                "reduce per-chunk into locals and combine with \
                                 `cdat::reduce` (pairwise, deterministic)"
                                    .into(),
                            ),
                            suppressed: file.is_allowed(self.id(), nf.line),
                            baselined: false,
                        });
                    }
                }
                for hi in &node.facts.hash_iters {
                    out.push(Diagnostic {
                        file: file.path.clone(),
                        line: hi.line,
                        rule: self.id(),
                        message: format!(
                            "iteration over hash-ordered `{}` feeds ordered sink `{}` in \
                             `{}` — output order varies per process",
                            hi.source, hi.sink, node.name
                        ),
                        hint: Some(
                            "collect keys and sort first, or switch the container to \
                             `BTreeMap`/`BTreeSet`"
                                .into(),
                        ),
                        suppressed: file.is_allowed(self.id(), hi.line),
                        baselined: false,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::{cfg, lines, run_on_ws};

    const BAD: &str = "\
pub fn total(&self, chunks: &[Vec<f64>]) -> f64 {
    let mut sum = 0.0;
    chunks.par_iter().for_each(|c| {
        sum += c.len() as f64;
    });
    sum
}
pub fn digest(&self, cells: &HashMap<String, f32>) -> String {
    let mut out = String::new();
    for (k, v) in cells.iter() {
        out.push_str(k);
    }
    out
}
";

    const GOOD: &str = "\
pub fn total(chunks: &[Vec<f64>]) -> f64 {
    let partials: Vec<f64> = chunks
        .par_iter()
        .map(|c| {
            let mut local = 0.0;
            for v in c.iter() { local += v; }
            local
        })
        .collect();
    reduce::pairwise(&partials)
}
pub fn hottest(cells: &HashMap<String, f32>) -> Option<f32> {
    let mut best = None;
    for (_k, v) in cells.iter() {
        best = best.max(Some(*v));
    }
    best
}
";

    #[test]
    fn outer_float_accum_and_hash_to_sink_are_caught() {
        let diags =
            run_on_ws(&NondetReduction, "cdat", "crates/cdat/src/stats.rs", BAD, &cfg());
        let ls = lines(&diags);
        assert!(ls.contains(&4), "captured float accumulator: {diags:?}");
        assert!(ls.contains(&10), "hash iter into push_str: {diags:?}");
    }

    #[test]
    fn chunk_local_accum_and_order_neutral_scan_are_clean() {
        let diags =
            run_on_ws(&NondetReduction, "cdat", "crates/cdat/src/stats.rs", GOOD, &cfg());
        assert_eq!(lines(&diags), Vec::<u32>::new(), "{diags:?}");
    }

    #[test]
    fn par_chained_reduce_is_caught() {
        let src = "\
pub fn mean(vals: &[f32]) -> f32 {
    vals.par_iter().map(|v| v * 0.5).sum()
}
";
        let diags =
            run_on_ws(&NondetReduction, "cdat", "crates/cdat/src/stats.rs", src, &cfg());
        assert_eq!(lines(&diags).len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("sum"));
    }

    #[test]
    fn reduction_modules_are_exempt_from_float_findings() {
        let src = "\
pub fn pairwise(vals: &[f64]) -> f64 {
    let mut acc = 0.0;
    vals.par_iter().for_each(|v| {
        acc += v;
    });
    acc
}
";
        let diags =
            run_on_ws(&NondetReduction, "cdat", "crates/cdat/src/reduce.rs", src, &cfg());
        assert_eq!(lines(&diags), Vec::<u32>::new(), "{diags:?}");
    }

    #[test]
    fn allow_directive_suppresses() {
        let src = "\
pub fn log_cells(cells: &HashMap<u32, f32>, out: &mut String) {
    // dv3dlint: allow(nondet_reduction) -- debug dump, order is irrelevant
    for (k, _v) in cells.iter() {
        out.push_str(\"cell\");
    }
}
";
        let diags =
            run_on_ws(&NondetReduction, "dv3d", "crates/dv3d/src/dbg.rs", src, &cfg());
        assert_eq!(lines(&diags), Vec::<u32>::new(), "{diags:?}");
        assert!(diags.iter().any(|d| d.suppressed));
    }
}
