//! R1 `no_panic`: library code on render/regrid/protocol paths must not
//! be able to panic. Bans `.unwrap()`, `.expect(…)`, `panic!`,
//! `unreachable!`, `todo!` and `unimplemented!` in non-test code of the
//! configured crates, and `expr[…]` indexing in the configured hot-path
//! files. Tests, benches and examples are exempt; invariant-backed sites
//! use `// dv3dlint: allow(no_panic) -- <why the invariant holds>`.

use super::Rule;
use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::Tok;
use crate::model::FileModel;
use crate::workspace::{CrateModel, Workspace};

#[derive(Debug)]
pub struct NoPanic;

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that can directly precede `[` starting an array literal or
/// slice pattern — those brackets are not indexing.
const NON_INDEX_PRECEDERS: &[&str] = &[
    "let", "in", "if", "while", "match", "return", "break", "mut", "ref", "as", "else", "move",
];

impl Rule for NoPanic {
    fn id(&self) -> &'static str {
        "no_panic"
    }

    fn describe(&self) -> &'static str {
        "no unwrap/expect/panic!/unreachable!/todo! (or hot-path indexing) in library code"
    }

    fn check_crate(
        &self,
        krate: &CrateModel,
        _ws: &Workspace,
        cfg: &Config,
        out: &mut Vec<Diagnostic>,
    ) {
        if !cfg.no_panic_enabled || !krate.in_scope(&cfg.no_panic_crates) {
            return;
        }
        for file in &krate.files {
            let hot = cfg
                .indexing_hot_paths
                .iter()
                .any(|h| file.path.as_os_str().to_string_lossy().ends_with(h.as_str()));
            check_file(self.id(), file, hot, out);
        }
    }
}

fn check_file(rule: &'static str, file: &FileModel, hot: bool, out: &mut Vec<Diagnostic>) {
    let toks = &file.lexed.tokens;
    let mut push = |line: u32, message: String| {
        if file.is_test_line(line) {
            return;
        }
        out.push(Diagnostic {
            file: file.path.clone(),
            line,
            rule,
            message,
            hint: Some("return a `Result` (or use `get`/pattern matching) instead".into()),
            suppressed: file.is_allowed(rule, line),
            baselined: false,
        });
    };
    for i in 0..toks.len() {
        let line = toks[i].line;
        match &toks[i].tok {
            Tok::Ident(name)
                if name == "unwrap"
                    && matches!(toks.get(i.wrapping_sub(1)).map(|t| &t.tok), Some(Tok::Punct('.')))
                    && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')))
                    && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(')'))) =>
            {
                push(
                    line,
                    "`.unwrap()` in library code: propagate with `?`, handle the None/Err \
                     arm, or add `// dv3dlint: allow(no_panic) -- <invariant>`"
                        .into(),
                );
            }
            Tok::Ident(name)
                if name == "expect"
                    && matches!(toks.get(i.wrapping_sub(1)).map(|t| &t.tok), Some(Tok::Punct('.')))
                    && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('('))) =>
            {
                push(
                    line,
                    "`.expect(…)` in library code: propagate with `?` or document the \
                     invariant via `dv3dlint: allow(no_panic)`"
                        .into(),
                );
            }
            // an actual macro invocation, not e.g. a variable named `todo`
            Tok::Ident(name)
                if PANIC_MACROS.contains(&name.as_str())
                    && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('!')))
                    && !matches!(toks.get(i.wrapping_sub(1)).map(|t| &t.tok), Some(Tok::Punct('.'))) =>
            {
                push(
                    line,
                    format!(
                        "`{name}!` in library code: return a typed error instead \
                         (CdmsError / VtkError / WallError / …)"
                    ),
                );
            }
            Tok::Punct('[') if hot && i > 0 => {
                let indexing = match &toks[i - 1].tok {
                    Tok::Ident(prev) => !NON_INDEX_PRECEDERS.contains(&prev.as_str()),
                    Tok::Punct(')') | Tok::Punct(']') => true,
                    _ => false,
                };
                if indexing {
                    push(
                        line,
                        "indexing in a hot-path file can panic on out-of-bounds: use \
                         `.get(…)` / `.get_mut(…)` and handle the miss"
                            .into(),
                    );
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::{cfg, lines, run_on};

    const FIXTURE: &str = r#"
pub fn bad(a: Option<u32>, b: Result<u32, ()>) -> u32 {
    let x = a.unwrap();
    let y = b.expect("always ok");
    if x > y { panic!("boom") }
    match x { 0 => unreachable!(), 1 => todo!(), _ => x }
}

pub fn fine(a: Option<u32>) -> u32 {
    a.unwrap_or(0)
}

pub fn justified(v: &[u32]) -> u32 {
    *v.last().unwrap() // dv3dlint: allow(no_panic) -- caller guarantees non-empty
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1).unwrap();
        panic!("fine in tests");
    }
}
"#;

    #[test]
    fn flags_every_panic_construct_outside_tests() {
        let diags = run_on(&NoPanic, "cdms", "crates/cdms/src/x.rs", FIXTURE, &cfg());
        assert_eq!(lines(&diags), vec![3, 4, 5, 6, 6]);
        // the allow-suppressed unwrap is still counted, as suppressed
        assert_eq!(diags.iter().filter(|d| d.suppressed).count(), 1);
    }

    #[test]
    fn out_of_scope_crates_are_skipped() {
        let diags = run_on(&NoPanic, "vendor-thing", "x.rs", FIXTURE, &cfg());
        assert!(diags.is_empty());
    }

    #[test]
    fn unwrap_or_and_named_fields_do_not_match() {
        let src = "fn f(o: Option<u32>) -> u32 { let unwrap = 1; o.unwrap_or(unwrap) }";
        let diags = run_on(&NoPanic, "cdms", "x.rs", src, &cfg());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn indexing_flagged_only_in_hot_paths() {
        let src = "\
pub fn f(v: &[u32], i: usize) -> u32 {
    let arr = [1, 2, 3];
    let ok = v.get(i);
    v[i] + arr[0] + ok.map_or(0, |x| *x)
}
";
        let mut c = cfg();
        c.indexing_hot_paths = vec!["crates/hyperwall/src/protocol.rs".into()];
        let cold = run_on(&NoPanic, "hyperwall", "crates/hyperwall/src/client.rs", src, &c);
        assert!(cold.is_empty(), "{cold:?}");
        let hot = run_on(&NoPanic, "hyperwall", "crates/hyperwall/src/protocol.rs", src, &c);
        assert_eq!(lines(&hot), vec![4, 4], "v[i] and arr[0], not the literal");
    }
}
