//! The rule registry. Each rule is a module with its own unit tests against
//! inline fixture snippets; `all()` returns them in report order.
//!
//! Adding a rule (see DESIGN.md §9): create a module implementing [`Rule`],
//! add it to [`all`], give it a config section in `dv3dlint.toml`, and
//! register its allow-name (the `id()`) in the README table.

pub mod atomic_writes;
pub mod deadline_io;
pub mod error_hygiene;
pub mod guard_across_blocking;
pub mod lint_attrs;
pub mod lock_order;
pub mod mask_propagation;
pub mod no_panic;
pub mod nondet_reduction;
pub mod unbounded_growth;

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::workspace::{CrateModel, Workspace};

/// One lint rule. Rules are crate-scoped: the engine calls `check_crate`
/// for every crate in the workspace and the rule filters by its configured
/// scope.
pub trait Rule {
    /// Stable id — also the name used in `dv3dlint: allow(<id>)`.
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn describe(&self) -> &'static str;
    fn check_crate(
        &self,
        krate: &CrateModel,
        ws: &Workspace,
        cfg: &Config,
        out: &mut Vec<Diagnostic>,
    );
}

/// Every shipped rule, in report order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(no_panic::NoPanic),
        Box::new(mask_propagation::MaskPropagation),
        Box::new(deadline_io::DeadlineIo),
        Box::new(atomic_writes::AtomicWrites),
        Box::new(error_hygiene::ErrorHygiene),
        Box::new(lint_attrs::LintAttrs),
        Box::new(lock_order::LockOrder),
        Box::new(guard_across_blocking::GuardAcrossBlocking),
        Box::new(nondet_reduction::NondetReduction),
        Box::new(unbounded_growth::UnboundedGrowth),
    ]
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared fixture helpers: build a one-file crate model from an inline
    //! snippet and run a single rule over it.

    use super::*;
    use crate::model::FileModel;
    use std::path::PathBuf;

    /// Runs `rule` over `src` presented as `path` in a crate named `name`.
    pub fn run_on(
        rule: &dyn Rule,
        name: &str,
        path: &str,
        src: &str,
        cfg: &Config,
    ) -> Vec<Diagnostic> {
        let file = FileModel::parse(PathBuf::from(path), src);
        let krate = CrateModel {
            name: name.into(),
            dir: PathBuf::from("."),
            files: vec![file],
            manifest: None,
            root_file: Some(PathBuf::from(path)),
        };
        let ws = Workspace {
            crates: Vec::new(),
            root_manifest: None,
            files_scanned: 1,
            analysis: std::sync::OnceLock::new(),
        };
        let mut out = Vec::new();
        rule.check_crate(&krate, &ws, cfg, &mut out);
        out
    }

    /// Like [`run_on`], but the crate is *inside* the workspace, so rules
    /// that consult the global analysis (the dataflow rules) see it.
    pub fn run_on_ws(
        rule: &dyn Rule,
        name: &str,
        path: &str,
        src: &str,
        cfg: &Config,
    ) -> Vec<Diagnostic> {
        let file = FileModel::parse(PathBuf::from(path), src);
        let krate = CrateModel {
            name: name.into(),
            dir: PathBuf::from("."),
            files: vec![file],
            manifest: None,
            root_file: Some(PathBuf::from(path)),
        };
        let ws = Workspace {
            crates: vec![krate],
            root_manifest: None,
            files_scanned: 1,
            analysis: std::sync::OnceLock::new(),
        };
        let mut out = Vec::new();
        rule.check_crate(&ws.crates[0], &ws, cfg, &mut out);
        out
    }

    pub fn cfg() -> Config {
        Config::defaults(PathBuf::from("."))
    }

    /// Lines of unsuppressed findings.
    pub fn lines(diags: &[Diagnostic]) -> Vec<u32> {
        diags.iter().filter(|d| !d.suppressed).map(|d| d.line).collect()
    }
}
