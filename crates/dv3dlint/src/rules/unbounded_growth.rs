//! R10 `unbounded_growth`: in the modules that parse network/session
//! input (the service front-end), every `push`/`extend`/`insert` into a
//! long-lived collection must sit in a function that shows *some*
//! capacity discipline — a `max_*`/`*_limit`/`cap`/`budget`/`quota`-named
//! bound, a shrink call (`truncate`, `drain`, `evict`, `pop`, …), or a
//! `len()` comparison. Otherwise a chatty or malicious client grows the
//! collection without bound and the admission-control story of the
//! session service is fiction.
//!
//! Deliberately coarse (function granularity, name-based evidence): the
//! goal is "the author thought about the bound", not a proof. Collections
//! built and consumed locally (bound by a `let` in the same function) are
//! exempt — they die with the request.
//!
//! Escape hatch: `// dv3dlint: allow(unbounded_growth) -- <reason>`.

use super::Rule;
use crate::config::Config;
use crate::diag::Diagnostic;
use crate::workspace::{CrateModel, Workspace};

#[derive(Debug)]
pub struct UnboundedGrowth;

impl Rule for UnboundedGrowth {
    fn id(&self) -> &'static str {
        "unbounded_growth"
    }

    fn describe(&self) -> &'static str {
        "collection growth in input-handling modules needs visible capacity discipline"
    }

    fn check_crate(
        &self,
        krate: &CrateModel,
        ws: &Workspace,
        cfg: &Config,
        out: &mut Vec<Diagnostic>,
    ) {
        if !cfg.unbounded_enabled {
            return;
        }
        let analysis = ws.analysis(cfg);
        for file in &krate.files {
            let path_str = file.path.as_os_str().to_string_lossy();
            if !cfg.input_modules.iter().any(|m| path_str.ends_with(m.as_str())) {
                continue;
            }
            for i in analysis.fns_in_file(&file.path) {
                let node = &analysis.fns[i];
                if node.facts.has_growth_guard {
                    continue;
                }
                for g in &node.facts.grow_sites {
                    out.push(Diagnostic {
                        file: file.path.clone(),
                        line: g.line,
                        rule: self.id(),
                        message: format!(
                            "`{}.{}(…)` in input-handling `{}` with no capacity check in \
                             sight — client-driven growth is unbounded",
                            g.recv, g.method, node.name
                        ),
                        hint: Some(
                            "enforce a limit before growing (compare `len()` against a \
                             `max_*` bound, or evict/truncate), then shed or reject"
                                .into(),
                        ),
                        suppressed: file.is_allowed(self.id(), g.line),
                        baselined: false,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::{cfg, lines, run_on_ws};

    const PATH: &str = "crates/hyperwall/src/service/server.rs";

    #[test]
    fn unguarded_growth_in_input_module_is_caught() {
        let src = "\
pub fn on_subscribe(&mut self, peer: PeerId, topic: String) {
    self.subscriptions.push((peer, topic));
}
";
        let diags = run_on_ws(&UnboundedGrowth, "hyperwall", PATH, src, &cfg());
        assert_eq!(lines(&diags), vec![2], "{diags:?}");
        assert!(diags[0].message.contains("subscriptions"));
    }

    #[test]
    fn len_comparison_counts_as_a_guard() {
        let src = "\
pub fn on_subscribe(&mut self, peer: PeerId, topic: String) -> bool {
    if self.subscriptions.len() >= MAX_SUBS {
        return false;
    }
    self.subscriptions.push((peer, topic));
    true
}
";
        let diags = run_on_ws(&UnboundedGrowth, "hyperwall", PATH, src, &cfg());
        assert_eq!(lines(&diags), Vec::<u32>::new(), "{diags:?}");
    }

    #[test]
    fn eviction_counts_as_a_guard() {
        let src = "\
pub fn record(&mut self, frame: Frame) {
    self.history.push_back(frame);
    while self.history.len() > HISTORY_DEPTH {
        self.history.pop_front();
    }
}
";
        let diags = run_on_ws(&UnboundedGrowth, "hyperwall", PATH, src, &cfg());
        assert_eq!(lines(&diags), Vec::<u32>::new(), "{diags:?}");
    }

    #[test]
    fn local_builders_are_exempt() {
        let src = "\
pub fn render_banner(&self, names: &[String]) -> String {
    let mut parts = Vec::new();
    for n in names.iter() {
        parts.push(n.clone());
    }
    parts.join_all()
}
";
        let diags = run_on_ws(&UnboundedGrowth, "hyperwall", PATH, src, &cfg());
        assert_eq!(lines(&diags), Vec::<u32>::new(), "{diags:?}");
    }

    #[test]
    fn non_input_modules_are_exempt() {
        let src = "\
pub fn cache(&mut self, k: Key, v: Plan) {
    self.plans.insert(k, v);
}
";
        let diags = run_on_ws(
            &UnboundedGrowth,
            "hyperwall",
            "crates/hyperwall/src/render.rs",
            src,
            &cfg(),
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn allow_directive_suppresses() {
        let src = "\
pub fn on_hello(&mut self, peer: PeerId) {
    // dv3dlint: allow(unbounded_growth) -- peer count is capped upstream by admission control
    self.peers.insert(peer, ());
}
";
        let diags = run_on_ws(&UnboundedGrowth, "hyperwall", PATH, src, &cfg());
        assert_eq!(lines(&diags), Vec::<u32>::new(), "{diags:?}");
        assert!(diags.iter().any(|d| d.suppressed));
    }
}
