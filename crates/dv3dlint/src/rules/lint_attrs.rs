//! R5 `lint_attrs`: every crate root must carry `#![forbid(unsafe_code)]`
//! (and any other configured `require_forbid` lints), opt into the shared
//! workspace `[lints]` table (`[lints] workspace = true` in its
//! `Cargo.toml`), and the workspace root manifest must deny the agreed
//! lint set under `[workspace.lints.rust]`. This pins the invariant layer
//! in the build itself instead of in review comments.

use super::Rule;
use crate::config::Config;
use crate::diag::Diagnostic;
use crate::workspace::{CrateModel, Workspace};
use std::path::PathBuf;

#[derive(Debug)]
pub struct LintAttrs;

impl Rule for LintAttrs {
    fn id(&self) -> &'static str {
        "lint_attrs"
    }

    fn describe(&self) -> &'static str {
        "crate roots must #![forbid(unsafe_code)] and opt into workspace [lints]"
    }

    fn check_crate(
        &self,
        krate: &CrateModel,
        ws: &Workspace,
        cfg: &Config,
        out: &mut Vec<Diagnostic>,
    ) {
        if !cfg.lint_attrs_enabled || !krate.in_scope(&cfg.lint_attrs_crates) {
            return;
        }
        // ad-hoc path mode has no manifest to check
        let Some(manifest) = &krate.manifest else { return };
        let Some(root_file) = &krate.root_file else { return };
        let Some(root_model) = krate.files.iter().find(|f| &f.path == root_file) else {
            return;
        };
        for lint in &cfg.require_forbid {
            let want = format!("forbid({lint})");
            if !root_model.inner_attrs.iter().any(|a| a.contains(&want)) {
                out.push(Diagnostic {
                    file: root_file.clone(),
                    line: 1,
                    rule: self.id(),
                    message: format!("crate root `{}` lacks `#![{want}]`", krate.name),
                    hint: Some(format!("add `#![{want}]` at the top of the crate root")),
                    suppressed: root_model.is_allowed(self.id(), 1),
                    baselined: false,
                });
            }
        }
        if cfg.require_workspace_lints && manifest.boolean("lints", "workspace") != Some(true) {
            out.push(Diagnostic {
                file: krate.dir.join("Cargo.toml"),
                line: 0,
                rule: self.id(),
                message: format!(
                    "crate `{}` does not opt into the shared lint table: add \
                     `[lints]\\nworkspace = true` to its Cargo.toml",
                    krate.name
                ),
                hint: None,
                suppressed: false,
                baselined: false,
            });
        }
        // the workspace-level deny set is checked once, against the first
        // crate in the run, so the finding isn't repeated per crate
        if ws.crates.first().map(|c| c.name == krate.name).unwrap_or(true) {
            if let Some(root) = &ws.root_manifest {
                for lint in &cfg.workspace_denies {
                    let level = root.string("workspace.lints.rust", lint);
                    if !matches!(level.as_deref(), Some("deny") | Some("forbid")) {
                        out.push(Diagnostic {
                            file: PathBuf::from("Cargo.toml"),
                            line: 0,
                            rule: self.id(),
                            message: format!(
                                "workspace manifest must set `{lint} = \"deny\"` under \
                                 `[workspace.lints.rust]`"
                            ),
                            hint: None,
                            suppressed: false,
                            baselined: false,
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Toml;
    use crate::model::FileModel;

    fn krate(name: &str, root_src: &str, manifest_src: &str) -> CrateModel {
        let root_file = PathBuf::from("crates/x/src/lib.rs");
        CrateModel {
            name: name.into(),
            dir: PathBuf::from("crates/x"),
            files: vec![FileModel::parse(root_file.clone(), root_src)],
            manifest: Some(Toml::parse(manifest_src).expect("manifest")),
            root_file: Some(root_file),
        }
    }

    fn ws_with(root_manifest: &str) -> Workspace {
        Workspace {
            crates: Vec::new(),
            root_manifest: Some(Toml::parse(root_manifest).expect("root manifest")),
            files_scanned: 0,
            analysis: std::sync::OnceLock::new(),
        }
    }

    const GOOD_ROOT: &str = "#![forbid(unsafe_code)]\npub fn x() {}\n";
    const GOOD_MANIFEST: &str = "[package]\nname = \"cdms\"\n[lints]\nworkspace = true\n";
    const GOOD_WS: &str = "[workspace.lints.rust]\nunused_must_use = \"deny\"\n";

    fn check(root_src: &str, manifest: &str, ws_manifest: &str) -> Vec<Diagnostic> {
        let cfg = crate::rules::testutil::cfg();
        let k = krate("cdms", root_src, manifest);
        let ws = ws_with(ws_manifest);
        let mut out = Vec::new();
        LintAttrs.check_crate(&k, &ws, &cfg, &mut out);
        out
    }

    #[test]
    fn compliant_crate_passes() {
        assert!(check(GOOD_ROOT, GOOD_MANIFEST, GOOD_WS).is_empty());
    }

    #[test]
    fn missing_forbid_attr_flagged() {
        let diags = check("pub fn x() {}\n", GOOD_MANIFEST, GOOD_WS);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("forbid(unsafe_code)"));
        assert!(diags[0].render().contains("lib.rs:1"));
    }

    #[test]
    fn missing_workspace_lints_opt_in_flagged() {
        let diags = check(GOOD_ROOT, "[package]\nname = \"cdms\"\n", GOOD_WS);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("workspace = true"));
    }

    #[test]
    fn workspace_deny_set_checked_once() {
        let diags = check(GOOD_ROOT, GOOD_MANIFEST, "[workspace]\n");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unused_must_use"));
    }
}
