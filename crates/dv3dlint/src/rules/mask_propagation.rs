//! R2 `mask_propagation`: a CDAT kernel that reads the raw `.data()` /
//! `.data_mut()` buffers of a masked array must also consult the mask —
//! otherwise missing values silently flow into means, regressions and
//! regridded fields as real numbers. A function is compliant when it also
//! references the mask (any identifier containing `mask`), uses a
//! mask-aware helper (`iter_valid`, `get_valid`, `to_filled`, …), or is
//! itself a `masked_*` helper. Escape hatch:
//! `// dv3dlint: allow(mask_propagation) -- <why the mask is irrelevant>`.

use super::Rule;
use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::Tok;
use crate::model::{FileModel, Item, ItemKind};
use crate::workspace::{CrateModel, Workspace};

#[derive(Debug)]
pub struct MaskPropagation;

impl Rule for MaskPropagation {
    fn id(&self) -> &'static str {
        "mask_propagation"
    }

    fn describe(&self) -> &'static str {
        "kernels reading raw .data() of a masked array must also consult the mask"
    }

    fn check_crate(
        &self,
        krate: &CrateModel,
        _ws: &Workspace,
        cfg: &Config,
        out: &mut Vec<Diagnostic>,
    ) {
        if !cfg.mask_enabled || !krate.in_scope(&cfg.mask_crates) {
            return;
        }
        for file in &krate.files {
            for item in &file.items {
                if item.kind != ItemKind::Fn || item.in_test {
                    continue;
                }
                check_fn(self.id(), file, item, cfg, out);
            }
        }
    }
}

fn check_fn(
    rule: &'static str,
    file: &FileModel,
    f: &Item,
    cfg: &Config,
    out: &mut Vec<Diagnostic>,
) {
    let Some((open, close)) = f.body else { return };
    if f.name.starts_with("masked_") {
        return;
    }
    let toks = &file.lexed.tokens;
    let mut first_raw: Option<u32> = None;
    let mut mask_aware = false;
    for i in open..=close.min(toks.len().saturating_sub(1)) {
        if let Tok::Ident(name) = &toks[i].tok {
            if name.contains("mask") || cfg.mask_markers.iter().any(|m| m == name) {
                mask_aware = true;
            }
            if cfg.raw_markers.iter().any(|m| m == name)
                && matches!(toks.get(i.wrapping_sub(1)).map(|t| &t.tok), Some(Tok::Punct('.')))
                && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')))
            {
                first_raw.get_or_insert(toks[i].line);
            }
        }
    }
    if let (Some(line), false) = (first_raw, mask_aware) {
        let suppressed = file.is_allowed(rule, line) || file.is_allowed(rule, f.line);
        out.push(Diagnostic {
            file: file.path.clone(),
            line,
            rule,
            message: format!(
                "`{}` reads raw masked-array data but never consults a mask: iterate \
                 `iter_valid()`, check `.mask()`, or use a `masked_*` helper",
                f.name
            ),
            hint: Some("iterate `iter_valid()` or branch on `.mask()` before reading".into()),
            suppressed,
            baselined: false,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::{cfg, lines, run_on};

    const FIXTURE: &str = r#"
pub fn leaky_mean(a: &MaskedArray) -> f32 {
    let mut s = 0.0;
    for v in a.data() {
        s += v;
    }
    s / a.len() as f32
}

pub fn careful_mean(a: &MaskedArray) -> f32 {
    let mut s = 0.0;
    let mut n = 0;
    for (i, v) in a.data().iter().enumerate() {
        if !a.mask()[i] {
            s += v;
            n += 1;
        }
    }
    s / n as f32
}

pub fn via_helper(a: &MaskedArray) -> f32 {
    a.iter_valid().map(|(_, v)| v).sum::<f32>() / a.data().len() as f32
}

pub fn masked_fill(a: &MaskedArray) -> Vec<f32> {
    a.data().to_vec()
}

pub fn no_raw_access(a: &MaskedArray) -> usize {
    a.len()
}

// dv3dlint: allow(mask_propagation) -- operates on an unmasked weights buffer
pub fn weights_only(w: &MaskedArray) -> f32 {
    w.data().iter().sum()
}
"#;

    #[test]
    fn only_the_leaky_kernel_is_flagged() {
        let diags = run_on(&MaskPropagation, "cdat", "crates/cdat/src/k.rs", FIXTURE, &cfg());
        assert_eq!(lines(&diags), vec![4], "{diags:?}");
        assert_eq!(diags.iter().filter(|d| d.suppressed).count(), 1);
    }

    #[test]
    fn scoped_to_configured_crates() {
        let diags = run_on(&MaskPropagation, "rvtk", "x.rs", FIXTURE, &cfg());
        assert!(diags.is_empty());
    }
}
