//! R3 `deadline_io`: in the `hyperwall` crate, protocol exchanges outside
//! the protocol module itself must use the deadline-aware variants
//! (`read_message_deadline` / `write_message_deadline`) introduced by the
//! fault-tolerance work — a raw blocking `read_message`/`write_message`
//! can wedge a wall node forever on a silent peer. Test code is exempt
//! (tests drive both half-duplex ends by hand). Escape hatch:
//! `// dv3dlint: allow(deadline_io) -- <why blocking is the design>`.

use super::Rule;
use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::Tok;
use crate::workspace::{CrateModel, Workspace};

#[derive(Debug)]
pub struct DeadlineIo;

impl Rule for DeadlineIo {
    fn id(&self) -> &'static str {
        "deadline_io"
    }

    fn describe(&self) -> &'static str {
        "hyperwall exchanges outside the protocol module must use _deadline I/O variants"
    }

    fn check_crate(
        &self,
        krate: &CrateModel,
        _ws: &Workspace,
        cfg: &Config,
        out: &mut Vec<Diagnostic>,
    ) {
        if !cfg.deadline_enabled || !krate.in_scope(std::slice::from_ref(&cfg.deadline_crate)) {
            return;
        }
        for file in &krate.files {
            let path = file.path.as_os_str().to_string_lossy().to_string();
            if cfg.protocol_modules.iter().any(|m| path.ends_with(m)) {
                continue; // the raw primitives live here by design
            }
            let toks = &file.lexed.tokens;
            for i in 0..toks.len() {
                let Tok::Ident(name) = &toks[i].tok else { continue };
                if !cfg.banned_calls.iter().any(|b| b == name) {
                    continue;
                }
                // call sites only: `read_message(`; imports / doc links and
                // the _deadline variants are distinct tokens
                if !matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('('))) {
                    continue;
                }
                let line = toks[i].line;
                if file.is_test_line(line) {
                    continue;
                }
                out.push(Diagnostic {
                    file: file.path.clone(),
                    line,
                    rule: self.id(),
                    message: format!(
                        "raw `{name}(…)` outside the protocol module: use \
                         `{name}_deadline(…)` so a silent peer cannot wedge this node"
                    ),
                    hint: Some(format!("replace with `{name}_deadline(stream, deadline, …)`")),
                    suppressed: file.is_allowed(self.id(), line),
                    baselined: false,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::{cfg, lines, run_on};

    const FIXTURE: &str = r#"
use crate::protocol::{read_message, write_message, read_message_deadline};

pub fn handshake(stream: &mut TcpStream) -> Result<()> {
    write_message(stream, &Message::Hello { client_id: 0 })?;
    let reply = read_message(stream)?;
    let ok = read_message_deadline(stream, DEADLINE, "Ready")?;
    drop((reply, ok));
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let m = read_message(&mut cursor).unwrap();
        write_message(&mut cursor, &m).unwrap();
    }
}
"#;

    #[test]
    fn raw_calls_flagged_deadline_variants_and_imports_not() {
        let diags =
            run_on(&DeadlineIo, "hyperwall", "crates/hyperwall/src/client.rs", FIXTURE, &cfg());
        assert_eq!(lines(&diags), vec![5, 6], "{diags:?}");
    }

    #[test]
    fn protocol_module_is_exempt() {
        let diags =
            run_on(&DeadlineIo, "hyperwall", "crates/hyperwall/src/protocol.rs", FIXTURE, &cfg());
        assert!(diags.is_empty());
    }

    /// The session-service modules are ordinary I/O consumers, not part
    /// of the protocol module — raw exchanges there are flagged too.
    #[test]
    fn service_modules_are_covered() {
        for file in [
            "crates/hyperwall/src/service/server.rs",
            "crates/hyperwall/src/service/client.rs",
        ] {
            let diags = run_on(&DeadlineIo, "hyperwall", file, FIXTURE, &cfg());
            assert_eq!(lines(&diags), vec![5, 6], "{file}: {diags:?}");
        }
    }

    /// Config may exempt several modules; each listed suffix is honored.
    #[test]
    fn multiple_protocol_modules_all_exempt() {
        let mut c = cfg();
        c.protocol_modules = vec![
            "crates/hyperwall/src/protocol.rs".into(),
            "crates/hyperwall/src/service/raw_io.rs".into(),
        ];
        for file in
            ["crates/hyperwall/src/protocol.rs", "crates/hyperwall/src/service/raw_io.rs"]
        {
            let diags = run_on(&DeadlineIo, "hyperwall", file, FIXTURE, &c);
            assert!(diags.is_empty(), "{file}: {diags:?}");
        }
        let diags =
            run_on(&DeadlineIo, "hyperwall", "crates/hyperwall/src/service/server.rs", FIXTURE, &c);
        assert_eq!(lines(&diags), vec![5, 6]);
    }

    #[test]
    fn other_crates_are_exempt() {
        let diags = run_on(&DeadlineIo, "cdms", "crates/cdms/src/lib.rs", FIXTURE, &cfg());
        assert!(diags.is_empty());
    }

    #[test]
    fn allow_directive_suppresses() {
        let src = "\
pub fn idle_loop(s: &mut TcpStream) -> Result<Message> {
    // dv3dlint: allow(deadline_io) -- reads run in bounded slices, see next_command
    read_message(s)
}
";
        let diags = run_on(&DeadlineIo, "hyperwall", "crates/hyperwall/src/x.rs", src, &cfg());
        assert_eq!(lines(&diags), Vec::<u32>::new());
        assert_eq!(diags.len(), 1);
        assert!(diags[0].suppressed);
    }
}
