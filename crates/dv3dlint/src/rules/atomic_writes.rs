//! R6 `atomic_writes`: in the `cdms` crate, files must reach disk through
//! the crash-safe `storage` module (temp file → fsync → read-back verify →
//! atomic rename). A direct `std::fs::write(…)` or `File::create(…)`
//! outside that module can leave a torn `.ncr` on disk after a crash,
//! which is exactly what the v2 storage hardening exists to prevent. Test
//! code is exempt (tests fabricate corrupt files on purpose). Escape
//! hatch: `// dv3dlint: allow(atomic_writes) -- <why raw I/O is safe here>`.

use super::Rule;
use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::Tok;
use crate::workspace::{CrateModel, Workspace};

#[derive(Debug)]
pub struct AtomicWrites;

impl Rule for AtomicWrites {
    fn id(&self) -> &'static str {
        "atomic_writes"
    }

    fn describe(&self) -> &'static str {
        "cdms writes outside the storage module must go through the atomic writer"
    }

    fn check_crate(
        &self,
        krate: &CrateModel,
        _ws: &Workspace,
        cfg: &Config,
        out: &mut Vec<Diagnostic>,
    ) {
        if !cfg.atomic_writes_enabled || !krate.in_scope(&cfg.atomic_writes_crates) {
            return;
        }
        for file in &krate.files {
            let path = file.path.as_os_str().to_string_lossy().to_string();
            if path.ends_with(&cfg.storage_module) {
                continue; // the raw primitives live here by design
            }
            let toks = &file.lexed.tokens;
            for i in 3..toks.len() {
                // call sites of a path-qualified function: `fs::write(` /
                // `File::create(` — the final segment plus the two segments
                // of `::` before it, so bare locals named `write` don't trip.
                let Tok::Ident(method) = &toks[i].tok else { continue };
                if !matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('('))) {
                    continue;
                }
                let (Tok::Punct(':'), Tok::Punct(':'), Tok::Ident(qualifier)) =
                    (&toks[i - 1].tok, &toks[i - 2].tok, &toks[i - 3].tok)
                else {
                    continue;
                };
                let call = format!("{qualifier}::{method}");
                if !cfg.raw_write_calls.iter().any(|b| b == &call) {
                    continue;
                }
                let line = toks[i].line;
                if file.is_test_line(line) {
                    continue;
                }
                out.push(Diagnostic {
                    file: file.path.clone(),
                    line,
                    rule: self.id(),
                    message: format!(
                        "raw `{call}(…)` outside the storage module: route the write \
                         through `storage::write_atomic` so a crash cannot tear the file"
                    ),
                    hint: Some(
                        "call `storage::write_atomic` (tmp file + fsync + rename)".into(),
                    ),
                    suppressed: file.is_allowed(self.id(), line),
                    baselined: false,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::{cfg, lines, run_on};

    const FIXTURE: &str = r#"
use std::fs::File;

pub fn publish(path: &Path, bytes: &[u8]) -> Result<()> {
    std::fs::write(path, bytes)?;
    let f = File::create(path.with_extension("idx"))?;
    drop(f);
    // mentioning fs::write in a comment or doc link is fine
    let data = std::fs::read(path)?; // reads are not a crash hazard
    drop(data);
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        std::fs::write(&path, b"garbage").unwrap();
        let _f = File::create(&path).unwrap();
    }
}
"#;

    #[test]
    fn raw_write_calls_flagged_reads_and_tests_not() {
        let diags = run_on(&AtomicWrites, "cdms", "crates/cdms/src/catalog.rs", FIXTURE, &cfg());
        assert_eq!(lines(&diags), vec![5, 6], "{diags:?}");
    }

    #[test]
    fn storage_module_is_exempt() {
        let diags = run_on(&AtomicWrites, "cdms", "crates/cdms/src/storage.rs", FIXTURE, &cfg());
        assert!(diags.is_empty());
    }

    #[test]
    fn other_crates_are_exempt() {
        let diags =
            run_on(&AtomicWrites, "rvtk", "crates/rvtk/src/render/ppm.rs", FIXTURE, &cfg());
        assert!(diags.is_empty());
    }

    #[test]
    fn allow_directive_suppresses() {
        let src = "\
pub fn scratch_note(dir: &Path) -> Result<()> {
    // dv3dlint: allow(atomic_writes) -- advisory sidecar, readers tolerate absence
    std::fs::write(dir.join(\"LAST_SCAN\"), b\"ok\")?;
    Ok(())
}
";
        let diags = run_on(&AtomicWrites, "cdms", "crates/cdms/src/x.rs", src, &cfg());
        assert_eq!(lines(&diags), Vec::<u32>::new());
        assert_eq!(diags.len(), 1);
        assert!(diags[0].suppressed);
    }

    #[test]
    fn unqualified_write_is_not_confused_with_fs_write() {
        let src = "\
pub fn flush(buf: &mut Vec<u8>, w: &mut impl Write) -> Result<()> {
    write(w, buf)?;
    self.write(buf)?;
    Ok(())
}
";
        let diags = run_on(&AtomicWrites, "cdms", "crates/cdms/src/x.rs", src, &cfg());
        assert!(diags.is_empty(), "{diags:?}");
    }
}
