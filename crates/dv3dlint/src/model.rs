//! Structural view of one source file: items with their attributes, test
//! regions (`#[cfg(test)]` modules, `#[test]` functions), crate-root inner
//! attributes, and `dv3dlint: allow(...)` escape-hatch directives.
//!
//! This is not a parser for Rust — it is a brace-matching item scanner over
//! the token stream, which is all the shipped rules need. Function bodies
//! are kept as token ranges and never descended into as items.

use crate::lexer::{lex, Lexed, Tok};
use std::path::PathBuf;

/// Kinds of items the scanner distinguishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemKind {
    Fn,
    Enum,
    Mod,
    /// `impl Type` or `impl Trait for Type`.
    Impl {
        /// Last path segment of the trait, when this is a trait impl.
        trait_name: Option<String>,
        /// Last path segment of the implementing type.
        type_name: String,
    },
    Other,
}

/// One scanned item.
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    /// Item name (`fn`/`mod`/`enum` name; type name for impls; may be
    /// empty for `use`/`static`/other).
    pub name: String,
    /// 1-based line of the item keyword.
    pub line: u32,
    /// Token index of the item keyword (`fn`, `mod`, …) — pass-1 parsing
    /// resumes from here to read signatures.
    pub kw_tok: usize,
    /// Flattened attribute texts, whitespace-free: `cfg(test)`,
    /// `non_exhaustive`, `derive(Debug,Clone)`, …
    pub attrs: Vec<String>,
    pub is_pub: bool,
    /// True when the item lives inside a test region (or is one itself).
    pub in_test: bool,
    /// Token-index range of the `{ … }` body, braces included.
    pub body: Option<(usize, usize)>,
}

/// A parsed `dv3dlint: allow(rule) -- reason` directive.
#[derive(Debug, Clone)]
pub struct Allow {
    pub rule: String,
    pub reason: String,
    /// The code line the directive suppresses.
    pub target_line: u32,
    /// The line the comment itself is on.
    pub directive_line: u32,
}

/// Structural model of one file.
#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative display path.
    pub path: PathBuf,
    pub lexed: Lexed,
    /// Inner (`#![…]`) attribute texts, flattened.
    pub inner_attrs: Vec<String>,
    /// All items, outer-to-inner, in source order.
    pub items: Vec<Item>,
    /// `test_lines[line]` (1-based) — line belongs to a test region.
    pub test_lines: Vec<bool>,
    pub allows: Vec<Allow>,
    /// Malformed directives: (line, problem).
    pub bad_allows: Vec<(u32, String)>,
}

impl FileModel {
    /// Lexes and scans `src`. `path` is only used for display.
    pub fn parse(path: PathBuf, src: &str) -> FileModel {
        let lexed = lex(src);
        let n_lines = src.lines().count() + 2;
        let mut model = FileModel {
            path,
            lexed,
            inner_attrs: Vec::new(),
            items: Vec::new(),
            test_lines: vec![false; n_lines],
            allows: Vec::new(),
            bad_allows: Vec::new(),
        };
        let end = model.lexed.tokens.len();
        let mut scanner = Scanner { model: &mut model, idx: 0 };
        scanner.items(end, false);
        model.collect_allows();
        model
    }

    /// True when 1-based `line` is inside a test region.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines.get(line as usize).copied().unwrap_or(false)
    }

    /// True when an allow directive for `rule` targets `line`.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.iter().any(|a| a.rule == rule && a.target_line == line)
    }

    /// Count of allow directives for `rule` in this file.
    pub fn allow_count(&self, rule: &str) -> usize {
        self.allows.iter().filter(|a| a.rule == rule).count()
    }

    fn collect_allows(&mut self) {
        for c in &self.lexed.comments {
            if c.is_doc {
                continue; // docs may legitimately quote the directive syntax
            }
            let Some(pos) = c.text.find("dv3dlint:") else { continue };
            let rest = c.text[pos + "dv3dlint:".len()..].trim_start();
            let Some(rest) = rest.strip_prefix("allow(") else {
                self.bad_allows
                    .push((c.line, "expected `allow(<rule>) -- <reason>`".into()));
                continue;
            };
            let Some(close) = rest.find(')') else {
                self.bad_allows.push((c.line, "unclosed `allow(`".into()));
                continue;
            };
            let rule = rest[..close].trim().to_string();
            let tail = rest[close + 1..].trim_start();
            let reason = tail.strip_prefix("--").map(str::trim).unwrap_or("");
            if rule.is_empty() || reason.is_empty() {
                self.bad_allows.push((
                    c.line,
                    "allow directives require a rule and a reason: \
                     `dv3dlint: allow(<rule>) -- <reason>`"
                        .into(),
                ));
                continue;
            }
            let target_line = if c.own_line {
                // directive on its own line suppresses the next code line
                self.lexed
                    .tokens
                    .iter()
                    .map(|t| t.line)
                    .find(|&l| l > c.end_line)
                    .unwrap_or(c.end_line)
            } else {
                c.line
            };
            self.allows.push(Allow {
                rule,
                reason: reason.to_string(),
                target_line,
                directive_line: c.line,
            });
        }
    }
}

/// The item scanner. Walks tokens linearly, recursing into `mod`/`impl`
/// bodies (item positions) but not into `fn` bodies (expressions).
struct Scanner<'a> {
    model: &'a mut FileModel,
    idx: usize,
}

const ITEM_KEYWORDS: &[&str] = &[
    "fn", "mod", "struct", "enum", "union", "trait", "impl", "type", "use", "static", "const",
    "macro_rules", "macro", "extern",
];

impl Scanner<'_> {
    fn tok(&self, i: usize) -> Option<&Tok> {
        self.model.lexed.tokens.get(i).map(|t| &t.tok)
    }

    fn line(&self, i: usize) -> u32 {
        self.model.lexed.tokens.get(i).map(|t| t.line).unwrap_or(0)
    }

    /// Scans item positions in `[self.idx, end)`.
    fn items(&mut self, end: usize, in_test: bool) {
        while self.idx < end {
            self.item(end, in_test);
        }
    }

    /// Scans one item (or skips one stray token).
    fn item(&mut self, end: usize, in_test: bool) {
        let mut attrs: Vec<String> = Vec::new();
        let mut first_line: Option<u32> = None;
        // attributes
        loop {
            match (self.tok(self.idx), self.tok(self.idx + 1), self.tok(self.idx + 2)) {
                (Some(Tok::Punct('#')), Some(Tok::Punct('[')), _) => {
                    first_line.get_or_insert(self.line(self.idx));
                    let text = self.attr_text(self.idx + 1, end);
                    attrs.push(text);
                }
                (Some(Tok::Punct('#')), Some(Tok::Punct('!')), Some(Tok::Punct('['))) => {
                    let text = self.attr_text(self.idx + 2, end);
                    self.model.inner_attrs.push(text);
                }
                _ => break,
            }
        }
        // visibility + qualifiers
        let mut is_pub = false;
        let mut kw: Option<String> = None;
        let mut kw_line = 0u32;
        let mut kw_tok = 0usize;
        while self.idx < end {
            match self.tok(self.idx) {
                Some(Tok::Ident(s)) if s == "pub" => {
                    is_pub = true;
                    first_line.get_or_insert(self.line(self.idx));
                    self.idx += 1;
                    // pub(crate) / pub(in path)
                    if self.tok(self.idx) == Some(&Tok::Punct('(')) {
                        self.skip_balanced('(', ')', end);
                    }
                }
                Some(Tok::Ident(s))
                    if matches!(s.as_str(), "unsafe" | "async" | "default") =>
                {
                    first_line.get_or_insert(self.line(self.idx));
                    self.idx += 1;
                }
                Some(Tok::Ident(s)) if s == "extern" && !attrs.is_empty() => {
                    // extern "C" fn — qualifier form only when followed by Str
                    if matches!(self.tok(self.idx + 1), Some(Tok::Str)) {
                        self.idx += 2;
                    } else {
                        kw = Some("extern".into());
                        kw_line = self.line(self.idx);
                        kw_tok = self.idx;
                        self.idx += 1;
                        break;
                    }
                }
                Some(Tok::Ident(s)) if s == "const" => {
                    // `const fn` qualifier vs `const X: T = …` item
                    if matches!(self.tok(self.idx + 1), Some(Tok::Ident(n)) if n == "fn") {
                        first_line.get_or_insert(self.line(self.idx));
                        self.idx += 1;
                    } else {
                        kw = Some("const".into());
                        kw_line = self.line(self.idx);
                        kw_tok = self.idx;
                        self.idx += 1;
                        break;
                    }
                }
                Some(Tok::Ident(s)) if ITEM_KEYWORDS.contains(&s.as_str()) => {
                    kw = Some(s.clone());
                    kw_line = self.line(self.idx);
                    kw_tok = self.idx;
                    self.idx += 1;
                    break;
                }
                _ => break,
            }
        }
        let Some(kw) = kw else {
            // not an item start (stray token in a malformed region): skip it
            self.idx += 1;
            return;
        };
        let start_line = first_line.unwrap_or(kw_line);

        // name
        let name = match kw.as_str() {
            "impl" => String::new(), // resolved below
            "macro_rules" => {
                if self.tok(self.idx) == Some(&Tok::Punct('!')) {
                    self.idx += 1;
                }
                self.next_ident()
            }
            _ => self.next_ident(),
        };

        // impl header: `impl<G> Trait for Type` / `impl Type`
        let kind = if kw == "impl" {
            let mut path: Vec<String> = Vec::new();
            let mut trait_name: Option<String> = None;
            let mut depth = (0i32, 0i32); // (), []
            while self.idx < end {
                match self.tok(self.idx) {
                    Some(Tok::Punct('{')) if depth == (0, 0) => break,
                    Some(Tok::Punct(';')) if depth == (0, 0) => break,
                    Some(Tok::Punct('(')) => depth.0 += 1,
                    Some(Tok::Punct(')')) => depth.0 -= 1,
                    Some(Tok::Punct('[')) => depth.1 += 1,
                    Some(Tok::Punct(']')) => depth.1 -= 1,
                    Some(Tok::Ident(s)) if s == "for" && depth == (0, 0) => {
                        trait_name = path.last().cloned();
                        path.clear();
                    }
                    Some(Tok::Ident(s)) if s == "where" && depth == (0, 0) => {}
                    Some(Tok::Ident(s)) => path.push(s.clone()),
                    _ => {}
                }
                self.idx += 1;
            }
            ItemKind::Impl {
                trait_name,
                type_name: path.last().cloned().unwrap_or_default(),
            }
        } else {
            match kw.as_str() {
                "fn" => ItemKind::Fn,
                "enum" => ItemKind::Enum,
                "mod" => ItemKind::Mod,
                _ => ItemKind::Other,
            }
        };

        // body / terminator
        let body = self.find_body(end);
        let end_line = match body {
            Some((_, close)) => self.line(close),
            None => self.line(self.idx.saturating_sub(1)),
        };

        let is_test_item = in_test
            || attrs.iter().any(|a| {
                a == "test"
                    || a.ends_with("::test")
                    || (a.starts_with("cfg") && a.contains("test"))
            });
        if is_test_item {
            for l in start_line..=end_line {
                if let Some(slot) = self.model.test_lines.get_mut(l as usize) {
                    *slot = true;
                }
            }
        }

        let recurse = matches!(kind, ItemKind::Mod | ItemKind::Impl { .. });
        self.model.items.push(Item {
            kind,
            name,
            line: kw_line,
            kw_tok,
            attrs,
            is_pub,
            in_test: is_test_item,
            body,
        });
        if let (true, Some((open, close))) = (recurse, body) {
            let save = self.idx;
            self.idx = open + 1;
            self.items(close, is_test_item);
            self.idx = save;
        }
    }

    /// Reads `[ … ]` starting at `open_idx`, advancing `self.idx` past the
    /// close; returns the flattened whitespace-free text between brackets.
    fn attr_text(&mut self, open_idx: usize, end: usize) -> String {
        let mut depth = 0i32;
        let mut text = String::new();
        let mut i = open_idx;
        while i < end {
            match self.tok(i) {
                Some(Tok::Punct('[')) => {
                    depth += 1;
                    if depth > 1 {
                        text.push('[');
                    }
                }
                Some(Tok::Punct(']')) => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                    text.push(']');
                }
                Some(Tok::Ident(s)) => {
                    if text.ends_with(|c: char| c.is_alphanumeric() || c == '_') {
                        text.push(' ');
                    }
                    text.push_str(s);
                }
                Some(Tok::Punct(c)) => text.push(*c),
                Some(Tok::Str) => text.push('"'),
                Some(Tok::Num(_)) => text.push('0'),
                Some(Tok::Lifetime) => text.push('\''),
                None => break,
            }
            i += 1;
        }
        self.idx = i;
        text
    }

    /// From the current position, finds the item's `{ … }` body (token
    /// range, braces included) or consumes through the terminating `;`.
    /// Leaves `self.idx` one past the item.
    fn find_body(&mut self, end: usize) -> Option<(usize, usize)> {
        let mut paren = 0i32;
        let mut bracket = 0i32;
        while self.idx < end {
            match self.tok(self.idx) {
                Some(Tok::Punct('(')) => paren += 1,
                Some(Tok::Punct(')')) => paren -= 1,
                Some(Tok::Punct('[')) => bracket += 1,
                Some(Tok::Punct(']')) => bracket -= 1,
                Some(Tok::Punct(';')) if paren == 0 && bracket == 0 => {
                    self.idx += 1;
                    return None;
                }
                Some(Tok::Punct('{')) if paren == 0 && bracket == 0 => {
                    let open = self.idx;
                    let close = self.match_brace(open, end);
                    self.idx = close + 1;
                    return Some((open, close));
                }
                None => return None,
                _ => {}
            }
            self.idx += 1;
        }
        None
    }

    /// Index of the `}` matching the `{` at `open`.
    fn match_brace(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < end {
            match self.tok(i) {
                Some(Tok::Punct('{')) => depth += 1,
                Some(Tok::Punct('}')) => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        end.saturating_sub(1)
    }

    /// Skips a balanced `open … close` group if present.
    fn skip_balanced(&mut self, open: char, close: char, end: usize) {
        if self.tok(self.idx) != Some(&Tok::Punct(open)) {
            return;
        }
        let mut depth = 0i32;
        while self.idx < end {
            match self.tok(self.idx) {
                Some(Tok::Punct(c)) if *c == open => depth += 1,
                Some(Tok::Punct(c)) if *c == close => {
                    depth -= 1;
                    if depth == 0 {
                        self.idx += 1;
                        return;
                    }
                }
                _ => {}
            }
            self.idx += 1;
        }
    }

    fn next_ident(&mut self) -> String {
        if let Some(Tok::Ident(s)) = self.tok(self.idx) {
            let s = s.clone();
            self.idx += 1;
            s
        } else {
            String::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> FileModel {
        FileModel::parse(PathBuf::from("mem.rs"), src)
    }

    #[test]
    fn cfg_test_mod_marks_test_lines() {
        let src = "\
pub fn lib_code() { x.unwrap(); }

#[cfg(test)]
mod tests {
    #[test]
    fn t() { y.unwrap(); }
}
";
        let m = parse(src);
        assert!(!m.is_test_line(1));
        assert!(m.is_test_line(3), "attr line starts the region");
        assert!(m.is_test_line(6));
        assert!(m.is_test_line(7));
    }

    #[test]
    fn test_fn_outside_mod_is_a_test_region() {
        let src = "#[test]\nfn standalone() { a.unwrap(); }\nfn real() {}\n";
        let m = parse(src);
        assert!(m.is_test_line(2));
        assert!(!m.is_test_line(3));
    }

    #[test]
    fn items_and_impls_are_scanned() {
        let src = "\
#[non_exhaustive]
#[derive(Debug)]
pub enum FooError { A, B }

impl std::error::Error for FooError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> { None }
}

impl FooError { pub fn helper(&self) {} }
";
        let m = parse(src);
        let e = m.items.iter().find(|i| i.kind == ItemKind::Enum).expect("enum");
        assert_eq!(e.name, "FooError");
        assert!(e.is_pub);
        assert!(e.attrs.iter().any(|a| a == "non_exhaustive"));
        let trait_impl = m
            .items
            .iter()
            .find(|i| matches!(&i.kind, ItemKind::Impl { trait_name: Some(t), .. } if t == "Error"))
            .expect("trait impl");
        assert!(matches!(&trait_impl.kind,
            ItemKind::Impl { type_name, .. } if type_name == "FooError"));
        // the source() fn was scanned inside the impl body
        assert!(m.items.iter().any(|i| i.kind == ItemKind::Fn && i.name == "source"));
        assert!(m.items.iter().any(|i| i.kind == ItemKind::Fn && i.name == "helper"));
    }

    #[test]
    fn inner_attrs_are_collected() {
        let src = "#![forbid(unsafe_code)]\n#![deny(unused_must_use)]\nfn x() {}\n";
        let m = parse(src);
        assert_eq!(m.inner_attrs, vec!["forbid(unsafe_code)", "deny(unused_must_use)"]);
    }

    #[test]
    fn allow_directives_parse_with_reasons() {
        let src = "\
fn f() {
    // dv3dlint: allow(no_panic) -- invariant: built two lines up
    x.unwrap();
    y.unwrap(); // dv3dlint: allow(no_panic) -- same-line form
    z.unwrap(); // dv3dlint: allow(no_panic)
}
";
        let m = parse(src);
        assert!(m.is_allowed("no_panic", 3), "own-line targets next code line");
        assert!(m.is_allowed("no_panic", 4), "trailing targets its own line");
        assert!(!m.is_allowed("no_panic", 5), "reason is mandatory");
        assert_eq!(m.bad_allows.len(), 1);
        assert_eq!(m.bad_allows[0].0, 5);
    }

    #[test]
    fn fn_bodies_are_token_ranges() {
        let src = "fn outer() { let c = |x: u32| x + 1; match c(1) { _ => {} } }";
        let m = parse(src);
        let f = m.items.iter().find(|i| i.kind == ItemKind::Fn).expect("fn");
        let (open, close) = f.body.expect("body");
        assert!(matches!(m.lexed.tokens[open].tok, Tok::Punct('{')));
        assert!(matches!(m.lexed.tokens[close].tok, Tok::Punct('}')));
        assert_eq!(close, m.lexed.tokens.len() - 1);
    }
}
