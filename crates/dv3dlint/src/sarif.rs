//! SARIF 2.1.0 output — the interchange format CI code-scanning UIs
//! ingest. Hand-emitted like the JSON report: the shape is small and
//! fixed. `results` carries exactly the findings that fail the run
//! (unsuppressed, unbaselined), so the SARIF result count always equals
//! the report's `total_violations`.

use crate::engine::RunSummary;
use crate::rules;
use std::path::Path;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Forward slashes regardless of host, as SARIF URIs require.
fn uri(p: &Path) -> String {
    esc(&p.as_os_str().to_string_lossy().replace('\\', "/"))
}

/// Renders the SARIF document.
pub fn render(summary: &RunSummary) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
    );
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [\n    {\n");
    s.push_str("      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"dv3dlint\",\n");
    s.push_str("          \"rules\": [\n");
    let rule_list = rules::all();
    for (i, r) in rule_list.iter().enumerate() {
        s.push_str(&format!(
            "            {{ \"id\": \"{}\", \"shortDescription\": {{ \"text\": \"{}\" }} }}{}\n",
            esc(r.id()),
            esc(r.describe()),
            if i + 1 < rule_list.len() { "," } else { "" }
        ));
    }
    s.push_str("          ]\n        }\n      },\n");
    s.push_str("      \"results\": [\n");
    let results: Vec<_> = summary
        .diagnostics
        .iter()
        .filter(|d| !d.suppressed && !d.baselined)
        .collect();
    for (i, d) in results.iter().enumerate() {
        let text = match &d.hint {
            Some(h) => format!("{} (hint: {})", d.message, h),
            None => d.message.clone(),
        };
        s.push_str(&format!(
            "        {{ \"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{ \"text\": \"{}\" }}, \"locations\": [ {{ \"physicalLocation\": {{ \"artifactLocation\": {{ \"uri\": \"{}\" }}, \"region\": {{ \"startLine\": {} }} }} }} ] }}{}\n",
            esc(d.rule),
            esc(&text),
            uri(&d.file),
            d.line.max(1),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("      ]\n    }\n  ]\n}\n");
    s
}

/// Writes the SARIF file, creating the parent directory when needed.
pub fn write(summary: &RunSummary, path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, render(summary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostic;
    use crate::engine::RuleCount;
    use std::path::PathBuf;

    #[test]
    fn result_count_matches_total_violations_exactly() {
        let mk = |line: u32, suppressed: bool, baselined: bool| Diagnostic {
            file: PathBuf::from("crates/x/src/a.rs"),
            line,
            rule: "no_panic",
            message: "a \"quoted\" message".into(),
            hint: Some("do the thing".into()),
            suppressed,
            baselined,
        };
        let mut summary = RunSummary {
            diagnostics: vec![mk(1, false, false), mk(2, true, false), mk(3, false, true)],
            per_rule: vec![RuleCount {
                rule: "no_panic",
                violations: 0,
                allowed: 0,
                baselined: 0,
            }],
            files_scanned: 1,
            elapsed_ms: 7,
            threads: 2,
        };
        summary.retally();
        let sarif = render(&summary);
        assert_eq!(
            sarif.matches("\"ruleId\"").count(),
            summary.total_violations(),
            "SARIF results == total_violations"
        );
        assert!(sarif.contains("\\\"quoted\\\""), "escaping");
        assert!(sarif.contains("\"startLine\": 1"));
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        // every shipped rule is described
        for r in rules::all() {
            assert!(sarif.contains(&format!("\"id\": \"{}\"", r.id())));
        }
    }
}
