//! Pass 1 of the v2 engine: per-function IR extraction.
//!
//! [`crate::model`] scans files into items; this module descends into
//! `fn` bodies (which the item scanner deliberately keeps as opaque token
//! ranges) and linearizes each one into an event stream: block opens and
//! closes, `let` bindings with their initializer extents, call sites with
//! receiver paths and argument identifiers, compound assignments, and
//! `for … in …` loops. The stream is deliberately *syntactic* — no name
//! resolution happens here; [`crate::dataflow`] interprets it.
//!
//! Known simplifications (shared with the item scanner, and acceptable
//! for a linter whose findings carry a reasoned escape hatch): generic
//! arguments are not balanced against comparison operators, struct
//! literals inside expressions count as blocks, and closures are plain
//! nested blocks (a deferred closure body is treated as executing at its
//! definition site, which is the conservative direction for guard
//! tracking).

use crate::lexer::Tok;
use crate::model::{FileModel, ItemKind};

/// One call site (method, free function, or macro invocation).
#[derive(Debug, Clone)]
pub struct Call {
    /// Receiver path segments for method calls: `self.cache.lock()` →
    /// `["self", "cache"]`. `["()"]` when chained onto a previous call or
    /// index expression. Empty for free functions.
    pub recv: Vec<String>,
    /// Qualifier path of a path call (`std::thread::sleep` → `["std",
    /// "thread"]`). Empty for methods and unqualified calls.
    pub qual: Vec<String>,
    /// The called name (last path segment / method name / macro name).
    pub method: String,
    /// True for `name!(…)` macro invocations.
    pub is_macro: bool,
    /// Top-level identifier arguments (first segment of each argument
    /// path) — what the condvar-wait exemption and `drop(g)` need.
    pub args: Vec<String>,
    /// Leading path of the first argument (`std_lock(&self.done)` →
    /// `["self", "done"]`) — what lock-wrapper naming needs.
    pub arg0_path: Vec<String>,
    pub line: u32,
    /// Token index of the called name.
    pub tok: usize,
    /// Token index of the matching close paren (== `tok` when none found).
    pub close: usize,
    /// When the call sits in a `match` scrutinee, the token index of the
    /// match body's closing brace: Rust keeps scrutinee temporaries (and
    /// thus temporary guards) alive for the whole match.
    pub match_extent: Option<usize>,
}

/// A `let` binding (also emitted for `if let` / `while let`).
#[derive(Debug, Clone)]
pub struct LetBind {
    /// Bound variable names (lowercase pattern idents, `mut`/`ref`
    /// stripped, constructors skipped).
    pub vars: Vec<String>,
    /// Flattened ascribed type text (empty when inferred).
    pub ty: String,
    pub line: u32,
    /// Token range of the initializer, exclusive; `(0, 0)` when there is
    /// none. Ends at the terminating `;`, or at a `{` when the value is a
    /// block/if/match expression (the walker keeps scanning inside).
    pub init: (usize, usize),
}

/// A compound assignment `x += …` / `x -= …` / `x *= …` / `x /= …`.
#[derive(Debug, Clone)]
pub struct OpAssign {
    pub var: String,
    pub line: u32,
    /// Token index of the operator.
    pub tok: usize,
}

/// A `for <pat> in <expr> { … }` loop.
#[derive(Debug, Clone)]
pub struct ForIter {
    /// Leading path of the iterated expression (`&self.entries` →
    /// `["self", "entries"]`).
    pub source: Vec<String>,
    /// Chained method names inside the iterated expression
    /// (`map.iter().enumerate()` → `["iter", "enumerate"]`).
    pub methods: Vec<String>,
    pub line: u32,
    /// Token range of the loop body, braces included.
    pub body: (usize, usize),
}

/// One linearized event inside a function body.
#[derive(Debug, Clone)]
pub enum Event {
    /// `{` — a new scope (block, closure body, match body, …).
    Open { tok: usize },
    /// `}` closing a scope.
    Close { tok: usize },
    Let(LetBind),
    Call(Call),
    OpAssign(OpAssign),
    For(ForIter),
}

impl Event {
    /// The token index the event anchors to (events are emitted sorted).
    pub fn tok(&self) -> usize {
        match self {
            Event::Open { tok } | Event::Close { tok } => *tok,
            Event::Let(l) => l.init.0.max(1) - 1,
            Event::Call(c) => c.tok,
            Event::OpAssign(a) => a.tok,
            Event::For(f) => f.body.0,
        }
    }
}

/// The extracted IR of one function.
#[derive(Debug)]
pub struct FnIr {
    pub name: String,
    pub line: u32,
    pub in_test: bool,
    /// `(name, flattened type text)` for each value parameter.
    pub params: Vec<(String, String)>,
    /// Body token range, braces included.
    pub body: (usize, usize),
    pub events: Vec<Event>,
}

const KEYWORDS_NOT_CALLS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "else", "fn", "let",
    "pub", "use", "mod", "impl", "where", "break", "continue", "unsafe", "dyn", "ref", "mut",
];

/// Extracts every function (with a body) from `file`, including functions
/// nested in `impl`/`mod` items. Test functions are kept, flagged
/// `in_test`, so callers can skip them.
pub fn functions(file: &FileModel) -> Vec<FnIr> {
    let toks = &file.lexed.tokens;
    let mut out = Vec::new();
    for item in &file.items {
        if item.kind != ItemKind::Fn {
            continue;
        }
        let Some(body) = item.body else { continue };
        let params = parse_params(file, item.kw_tok, body.0);
        let events = walk_body(file, body);
        out.push(FnIr {
            name: item.name.clone(),
            line: item.line,
            in_test: item.in_test,
            params,
            body,
            events,
        });
    }
    debug_assert!(out.iter().all(|f| f.body.1 <= toks.len()));
    out
}

/// Parses the parameter list between the `fn` keyword and the body open.
fn parse_params(file: &FileModel, kw_tok: usize, body_open: usize) -> Vec<(String, String)> {
    let toks = &file.lexed.tokens;
    // find the param-list `(` — first paren after the name/generics
    let mut i = kw_tok + 1;
    let mut angle = 0i32;
    let open = loop {
        if i >= body_open {
            return Vec::new();
        }
        match &toks[i].tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Punct('(') if angle <= 0 => break i,
            _ => {}
        }
        i += 1;
    };
    let close = match_close(toks, open, body_open, '(', ')');
    let mut params = Vec::new();
    let mut depth = 0i32;
    let mut cur_name: Option<String> = None;
    let mut cur_ty = String::new();
    let mut in_ty = false;
    for t in &toks[open.min(toks.len())..(close + 1).min(toks.len())] {
        match &t.tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('<') => {
                depth += 1;
                if in_ty {
                    cur_ty.push('<');
                }
            }
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('>') => {
                depth -= 1;
                if in_ty && depth > 0 {
                    cur_ty.push('>');
                }
            }
            Tok::Punct(':') if depth == 1 => in_ty = true,
            Tok::Punct(',') if depth == 1 => {
                if let Some(n) = cur_name.take() {
                    params.push((n, std::mem::take(&mut cur_ty)));
                }
                cur_ty.clear();
                in_ty = false;
            }
            Tok::Ident(s)
                if depth == 1 && !in_ty && s != "mut" && s != "ref" && s != "self" =>
            {
                cur_name = Some(s.clone());
            }
            Tok::Ident(s) if in_ty => {
                if cur_ty.ends_with(|c: char| c.is_alphanumeric() || c == '_') {
                    cur_ty.push(' ');
                }
                cur_ty.push_str(s);
            }
            _ => {}
        }
    }
    if let Some(n) = cur_name.take() {
        params.push((n, cur_ty));
    }
    params
}

/// Index of the token matching `open_kind` at `open`, scanning to `end`.
fn match_close(
    toks: &[crate::lexer::Token],
    open: usize,
    end: usize,
    open_kind: char,
    close_kind: char,
) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < end.min(toks.len()) {
        match &toks[i].tok {
            Tok::Punct(c) if *c == open_kind => depth += 1,
            Tok::Punct(c) if *c == close_kind => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    open
}

fn ident_at(toks: &[crate::lexer::Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[crate::lexer::Token], i: usize) -> Option<char> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// Linearizes a function body into events.
fn walk_body(file: &FileModel, body: (usize, usize)) -> Vec<Event> {
    let toks = &file.lexed.tokens;
    let (open, close) = body;
    let mut events = Vec::new();
    // active `match` scrutinee contexts: (scrutinee_end, body_close)
    let mut matches: Vec<(usize, usize)> = Vec::new();
    let mut i = open;
    while i <= close.min(toks.len().saturating_sub(1)) {
        matches.retain(|&(_, ext)| ext >= i);
        let line = toks[i].line;
        match &toks[i].tok {
            Tok::Punct('{') => {
                events.push(Event::Open { tok: i });
                i += 1;
            }
            Tok::Punct('}') => {
                events.push(Event::Close { tok: i });
                i += 1;
            }
            Tok::Ident(kw) if kw == "match" => {
                // find the body `{` at paren/bracket depth 0 to learn the
                // scrutinee extent and the temporaries' lifetime
                let mut depth = 0i32;
                let mut j = i + 1;
                while j < close {
                    match &toks[j].tok {
                        Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                        Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                        Tok::Punct('{') if depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if j < close {
                    let body_close = match_close(toks, j, close + 1, '{', '}');
                    matches.push((j, body_close));
                }
                i += 1;
            }
            Tok::Ident(kw) if kw == "let" => {
                let (bind, next) = parse_let(toks, i, close, line);
                events.push(Event::Let(bind));
                i = next; // continue scanning inside the initializer
            }
            Tok::Ident(kw) if kw == "for" => {
                if let Some((fi, next)) = parse_for(toks, i, close, line) {
                    events.push(Event::For(fi));
                    i = next;
                } else {
                    i += 1;
                }
            }
            Tok::Ident(name)
                if !KEYWORDS_NOT_CALLS.contains(&name.as_str())
                    && (punct_at(toks, i + 1) == Some('(')
                        || (punct_at(toks, i + 1) == Some('!')
                            && punct_at(toks, i + 2) == Some('('))) =>
            {
                let is_macro = punct_at(toks, i + 1) == Some('!');
                let paren = if is_macro { i + 2 } else { i + 1 };
                let call_close = match_close(toks, paren, close + 1, '(', ')');
                let (recv, qual) = receiver_of(toks, i);
                let (args, arg0_path) = args_of(toks, paren, call_close);
                let match_extent = matches
                    .iter()
                    .rev()
                    .find(|&&(scrut_end, _)| i < scrut_end)
                    .map(|&(_, ext)| ext);
                events.push(Event::Call(Call {
                    recv,
                    qual,
                    method: name.clone(),
                    is_macro,
                    args,
                    arg0_path,
                    line,
                    tok: i,
                    close: call_close,
                    match_extent,
                }));
                i += 1; // walk inside the argument list too
            }
            Tok::Ident(var)
                if matches!(punct_at(toks, i + 1), Some('+' | '-' | '*' | '/'))
                    && punct_at(toks, i + 2) == Some('=')
                    && punct_at(toks, i.wrapping_sub(1)) != Some('.') =>
            {
                events.push(Event::OpAssign(OpAssign { var: var.clone(), line, tok: i + 1 }));
                i += 1;
            }
            _ => i += 1,
        }
    }
    events
}

/// Parses `let <pat> [: ty] [= init]`, returning the binding and the token
/// index to resume from (just past `=`, so initializer calls are walked).
fn parse_let(
    toks: &[crate::lexer::Token],
    let_tok: usize,
    fn_close: usize,
    line: u32,
) -> (LetBind, usize) {
    let mut vars = Vec::new();
    let mut ty = String::new();
    let mut i = let_tok + 1;
    let mut depth = 0i32;
    // pattern
    while i < fn_close {
        match &toks[i].tok {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Punct(':') if depth == 0 && punct_at(toks, i + 1) != Some(':') => break,
            Tok::Punct(':') if punct_at(toks, i + 1) == Some(':') => i += 1, // `::` path
            Tok::Punct('=') if depth == 0 && punct_at(toks, i + 1) != Some('=') => break,
            Tok::Punct(';') | Tok::Punct('{') if depth == 0 => break,
            Tok::Ident(s)
                if s != "mut"
                    && s != "ref"
                    && !s.starts_with(|c: char| c.is_ascii_uppercase()) =>
            {
                vars.push(s.clone());
            }
            _ => {}
        }
        i += 1;
    }
    // ascribed type
    if punct_at(toks, i) == Some(':') {
        i += 1;
        let mut tdepth = 0i32;
        while i < fn_close {
            match &toks[i].tok {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('<') => {
                    tdepth += 1;
                    ty.push('<');
                }
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('>') => {
                    tdepth -= 1;
                    ty.push('>');
                }
                Tok::Punct('=') if tdepth <= 0 => break,
                Tok::Punct(';') if tdepth <= 0 => break,
                Tok::Ident(s) => {
                    if ty.ends_with(|c: char| c.is_alphanumeric() || c == '_') {
                        ty.push(' ');
                    }
                    ty.push_str(s);
                }
                _ => {}
            }
            i += 1;
        }
    }
    // initializer extent: from past `=` to the `;` (or `{`) at depth 0
    let mut init = (0usize, 0usize);
    if punct_at(toks, i) == Some('=') {
        let start = i + 1;
        let mut j = start;
        let mut d = 0i32;
        while j < fn_close {
            match &toks[j].tok {
                Tok::Punct('(') | Tok::Punct('[') => d += 1,
                Tok::Punct(')') | Tok::Punct(']') => d -= 1,
                Tok::Punct(';') if d <= 0 => break,
                Tok::Punct('{') if d <= 0 => break,
                _ => {}
            }
            j += 1;
        }
        init = (start, j);
        i = start;
    } else {
        i += 1;
    }
    (LetBind { vars, ty, line, init }, i)
}

/// Parses `for <pat> in <expr> {`, returning the loop info and the token
/// index of the body `{` (the walker resumes there to process the body).
fn parse_for(
    toks: &[crate::lexer::Token],
    for_tok: usize,
    fn_close: usize,
    line: u32,
) -> Option<(ForIter, usize)> {
    // find `in` at pattern depth 0
    let mut i = for_tok + 1;
    let mut depth = 0i32;
    loop {
        if i >= fn_close {
            return None;
        }
        match &toks[i].tok {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Ident(s) if s == "in" && depth == 0 => break,
            Tok::Punct('{') if depth == 0 => return None,
            _ => {}
        }
        i += 1;
    }
    // iterated expression: until `{` at depth 0
    let mut source = Vec::new();
    let mut methods = Vec::new();
    let mut in_head = true; // still collecting the leading path
    let mut j = i + 1;
    let mut d = 0i32;
    while j < fn_close {
        match &toks[j].tok {
            Tok::Punct('(') | Tok::Punct('[') => d += 1,
            Tok::Punct(')') | Tok::Punct(']') => d -= 1,
            Tok::Punct('{') if d == 0 => break,
            Tok::Ident(s) if d == 0 => {
                if punct_at(toks, j + 1) == Some('(') {
                    methods.push(s.clone());
                    in_head = false;
                } else if in_head {
                    source.push(s.clone());
                }
            }
            Tok::Punct('.') if d == 0 => {}
            _ => {}
        }
        j += 1;
    }
    if j >= fn_close {
        return None;
    }
    let body_close = match_close(toks, j, fn_close + 1, '{', '}');
    Some((ForIter { source, methods, line, body: (j, body_close) }, j))
}

/// Receiver / qualifier paths of the call whose name token is `i`.
fn receiver_of(toks: &[crate::lexer::Token], i: usize) -> (Vec<String>, Vec<String>) {
    // `a::b::name(` — qualifier path
    if punct_at(toks, i.wrapping_sub(1)) == Some(':')
        && punct_at(toks, i.wrapping_sub(2)) == Some(':')
    {
        let mut qual = Vec::new();
        let mut j = i.wrapping_sub(3);
        while let Some(s) = ident_at(toks, j) {
            qual.push(s.to_string());
            if punct_at(toks, j.wrapping_sub(1)) == Some(':')
                && punct_at(toks, j.wrapping_sub(2)) == Some(':')
            {
                j = j.wrapping_sub(3);
            } else {
                break;
            }
        }
        qual.reverse();
        return (Vec::new(), qual);
    }
    // `recv.name(` — method call
    if punct_at(toks, i.wrapping_sub(1)) == Some('.') {
        let mut recv = Vec::new();
        let mut j = i.wrapping_sub(2);
        loop {
            match toks.get(j).map(|t| &t.tok) {
                Some(Tok::Ident(s)) => recv.push(s.clone()),
                Some(Tok::Punct(')')) | Some(Tok::Punct(']')) => {
                    recv.push("()".into());
                    break;
                }
                _ => break,
            }
            if punct_at(toks, j.wrapping_sub(1)) == Some('.') {
                j = j.wrapping_sub(2);
            } else {
                break;
            }
        }
        recv.reverse();
        return (recv, Vec::new());
    }
    (Vec::new(), Vec::new())
}

/// Top-level identifier arguments in `( … )`, plus the first argument's
/// leading path.
fn args_of(toks: &[crate::lexer::Token], open: usize, close: usize) -> (Vec<String>, Vec<String>) {
    let mut args = Vec::new();
    let mut arg0_path = Vec::new();
    let mut depth = 0i32;
    let mut first_arg = true;
    let mut arg0_head = true;
    for j in open..=close.min(toks.len().saturating_sub(1)) {
        match &toks[j].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
            Tok::Punct(',') if depth == 1 => {
                first_arg = false;
            }
            Tok::Ident(s) if depth == 1 => {
                if punct_at(toks, j.wrapping_sub(1)) != Some('.') && s != "mut" {
                    args.push(s.clone());
                }
                if first_arg && arg0_head && s != "mut" {
                    if punct_at(toks, j + 1) == Some('(') {
                        arg0_head = false; // a call, not a plain path
                    } else {
                        arg0_path.push(s.clone());
                    }
                }
            }
            _ => {}
        }
    }
    (args, arg0_path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn fns(src: &str) -> Vec<FnIr> {
        let m = FileModel::parse(PathBuf::from("mem.rs"), src);
        functions(&m)
    }

    fn calls(f: &FnIr) -> Vec<&Call> {
        f.events
            .iter()
            .filter_map(|e| match e {
                Event::Call(c) => Some(c),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn receiver_paths_and_args_are_extracted() {
        let src = "\
fn f(&self) {
    let mut g = self.cache.lock();
    std_lock(&self.inflight);
    std::thread::sleep(tick);
    self.cv.wait(done);
}
";
        let f = &fns(src)[0];
        let cs = calls(f);
        let lock = cs.iter().find(|c| c.method == "lock").expect("lock call");
        assert_eq!(lock.recv, vec!["self", "cache"]);
        let wrap = cs.iter().find(|c| c.method == "std_lock").expect("wrapper");
        assert_eq!(wrap.arg0_path, vec!["self", "inflight"]);
        let sleep = cs.iter().find(|c| c.method == "sleep").expect("sleep");
        assert_eq!(sleep.qual, vec!["std", "thread"]);
        let wait = cs.iter().find(|c| c.method == "wait").expect("wait");
        assert_eq!(wait.args, vec!["done"]);
    }

    #[test]
    fn let_bindings_track_vars_types_and_init_extent() {
        let src = "\
fn f() {
    let mut acc: f64 = 0.0;
    let (a, b) = pair();
    let Some(x) = opt else { return };
}
";
        let f = &fns(src)[0];
        let lets: Vec<_> = f
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Let(l) => Some(l),
                _ => None,
            })
            .collect();
        assert_eq!(lets[0].vars, vec!["acc"]);
        assert!(lets[0].ty.contains("f64"));
        assert_eq!(lets[1].vars, vec!["a", "b"]);
        assert_eq!(lets[2].vars, vec!["x"], "constructor skipped, binding kept");
    }

    #[test]
    fn match_scrutinee_extends_temporaries() {
        let src = "\
fn f(&self) {
    match self.mux.lock().open(s) {
        Ok(_) => self.go(),
        Err(_) => {}
    }
    self.after();
}
";
        let f = &fns(src)[0];
        let cs = calls(f);
        let lock = cs.iter().find(|c| c.method == "lock").expect("lock");
        let ext = lock.match_extent.expect("scrutinee call has a match extent");
        let go = cs.iter().find(|c| c.method == "go").expect("go");
        let after = cs.iter().find(|c| c.method == "after").expect("after");
        assert!(go.tok < ext, "arm body is inside the extent");
        assert!(after.tok > ext, "code after the match is outside");
    }

    #[test]
    fn for_loops_capture_source_and_methods() {
        let src = "\
fn f(&self) {
    for (k, v) in self.entries.iter().take(3) {
        out.push(k);
    }
}
";
        let f = &fns(src)[0];
        let fi = f
            .events
            .iter()
            .find_map(|e| match e {
                Event::For(fi) => Some(fi),
                _ => None,
            })
            .expect("for loop");
        assert_eq!(fi.source, vec!["self", "entries"]);
        assert_eq!(fi.methods, vec!["iter", "take"]);
        let cs = calls(f);
        let push = cs.iter().find(|c| c.method == "push").expect("push inside body");
        assert!(push.tok > fi.body.0 && push.tok < fi.body.1);
    }

    #[test]
    fn compound_assignment_and_params() {
        let src = "\
fn weigh(w: &[f64], total: &mut f64, map: &HashMap<u64, f64>) {
    let mut acc = 0.0;
    acc += w.len() as f64;
}
";
        let f = &fns(src)[0];
        assert_eq!(f.params.len(), 3);
        assert_eq!(f.params[2].0, "map");
        assert!(f.params[2].1.contains("HashMap"));
        assert!(f
            .events
            .iter()
            .any(|e| matches!(e, Event::OpAssign(a) if a.var == "acc")));
    }
}
