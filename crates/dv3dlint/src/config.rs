//! `dv3dlint.toml` loading. Ships a hand-rolled parser for the TOML subset
//! the config actually uses — sections, string/bool/integer scalars, and
//! (possibly multi-line) string arrays — so the linter stays dependency-free.
//! The same parser reads the `Cargo.toml` fields the rules care about.

use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;

/// A scalar or string-array value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    List(Vec<String>),
    Bool(bool),
    Int(i64),
    /// Anything else (inline tables, floats, …) — kept verbatim so that
    /// `Cargo.toml` files parse without the linter understanding full TOML.
    Other(String),
}

/// Parsed TOML subset: section name → key → value. Keys before any section
/// header live under the empty section name.
#[derive(Debug, Default)]
pub struct Toml {
    pub sections: BTreeMap<String, BTreeMap<String, Value>>,
}

/// Config / usage errors (exit code 2).
#[derive(Debug)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config error: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl Toml {
    /// Parses `src`; line-oriented, `#` comments, quoted strings.
    pub fn parse(src: &str) -> Result<Toml, ConfigError> {
        let mut toml = Toml::default();
        let mut section = String::new();
        let mut lines = src.lines().enumerate().peekable();
        while let Some((n, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let name = name
                    .strip_suffix(']')
                    .ok_or_else(|| ConfigError(format!("line {}: unclosed section", n + 1)))?;
                section = name.trim().trim_matches('"').to_string();
                toml.sections.entry(section.clone()).or_default();
                continue;
            }
            let (key, mut rest) = line
                .split_once('=')
                .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
                .ok_or_else(|| ConfigError(format!("line {}: expected `key = value`", n + 1)))?;
            // multi-line arrays: keep consuming until the bracket closes
            if rest.starts_with('[') {
                while !array_closed(&rest) {
                    let Some((_, cont)) = lines.next() else {
                        return Err(ConfigError(format!("line {}: unclosed array", n + 1)));
                    };
                    rest.push(' ');
                    rest.push_str(strip_comment(cont).trim());
                }
            }
            let value = parse_value(&rest)
                .ok_or_else(|| ConfigError(format!("line {}: bad value `{rest}`", n + 1)))?;
            toml.sections.entry(section.clone()).or_default().insert(key, value);
        }
        Ok(toml)
    }

    pub fn get(&self, section: &str, key: &str) -> Option<&Value> {
        self.sections.get(section)?.get(key)
    }

    pub fn str_list(&self, section: &str, key: &str) -> Option<Vec<String>> {
        match self.get(section, key)? {
            Value::List(v) => Some(v.clone()),
            Value::Str(s) => Some(vec![s.clone()]),
            _ => None,
        }
    }

    pub fn string(&self, section: &str, key: &str) -> Option<String> {
        match self.get(section, key)? {
            Value::Str(s) => Some(s.clone()),
            _ => None,
        }
    }

    pub fn boolean(&self, section: &str, key: &str) -> Option<bool> {
        match self.get(section, key)? {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Strips a trailing `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn array_closed(acc: &str) -> bool {
    let mut in_str = false;
    let mut depth = 0i32;
    for c in acc.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth <= 0
}

fn parse_value(s: &str) -> Option<Value> {
    let s = s.trim();
    if s == "true" {
        return Some(Value::Bool(true));
    }
    if s == "false" {
        return Some(Value::Bool(false));
    }
    if let Some(inner) = s.strip_prefix('[') {
        let inner = inner.strip_suffix(']')?;
        let mut items = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            items.push(part.trim_matches('"').to_string());
        }
        return Some(Value::List(items));
    }
    if let Some(q) = s.strip_prefix('"') {
        if let Some(body) = q.strip_suffix('"') {
            return Some(Value::Str(body.to_string()));
        }
    }
    if let Ok(i) = s.parse::<i64>() {
        return Some(Value::Int(i));
    }
    // inline tables and other constructs Cargo.toml uses but dv3dlint
    // doesn't interpret
    Some(Value::Other(s.to_string()))
}

/// Splits on commas outside quotes.
fn split_top_level(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    parts.push(cur);
    parts
}

/// Per-rule configuration, with defaults matching this workspace so the
/// tool degrades gracefully on a partial config file.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root (directory holding `dv3dlint.toml`).
    pub root: PathBuf,
    /// Crate directories scanned by `--workspace`, workspace-relative.
    pub crate_dirs: Vec<String>,
    pub no_panic_enabled: bool,
    /// Package names whose non-test library code must be panic-free.
    pub no_panic_crates: Vec<String>,
    /// Files (workspace-relative) where indexing without `get` is banned.
    pub indexing_hot_paths: Vec<String>,
    pub mask_enabled: bool,
    pub mask_crates: Vec<String>,
    /// Method names that count as raw buffer access.
    pub raw_markers: Vec<String>,
    /// Identifiers that demonstrate mask awareness.
    pub mask_markers: Vec<String>,
    pub deadline_enabled: bool,
    pub deadline_crate: String,
    /// Modules allowed to use raw `read_message`/`write_message` (the
    /// protocol primitives live here by design). Suffix-matched.
    pub protocol_modules: Vec<String>,
    pub banned_calls: Vec<String>,
    pub atomic_writes_enabled: bool,
    /// Crates whose file writes must go through the atomic storage layer.
    pub atomic_writes_crates: Vec<String>,
    /// The one module allowed to call the raw filesystem write primitives.
    pub storage_module: String,
    /// Qualified call names (`qualifier::method`) that bypass atomicity.
    pub raw_write_calls: Vec<String>,
    pub error_hygiene_enabled: bool,
    pub error_hygiene_crates: Vec<String>,
    pub lint_attrs_enabled: bool,
    pub lint_attrs_crates: Vec<String>,
    pub require_forbid: Vec<String>,
    pub require_workspace_lints: bool,
    /// Lints the root manifest must deny (or forbid) workspace-wide.
    pub workspace_denies: Vec<String>,

    // --- v2 dataflow analysis (shared by the four concurrency rules) ---
    /// Crates the dataflow rules report on (the call-graph analysis itself
    /// is always workspace-global so cross-crate edges resolve).
    pub concurrency_crates: Vec<String>,
    /// Guard-producing method names. Only *argument-free* calls count, so
    /// `io::Read::read(&mut buf)` never registers as `RwLock::read()`.
    pub lock_methods: Vec<String>,
    /// Free functions whose first argument names the lock and whose return
    /// value is its guard (the `std_lock(&self.m)` poison-recovery idiom).
    pub lock_wrappers: Vec<String>,
    /// Chained methods that pass a guard through unchanged
    /// (`m.lock().unwrap()` on a std mutex still binds a guard).
    pub guard_preserving: Vec<String>,
    /// Condvar wait methods: the guard passed *as the argument* is released
    /// by the wait and therefore exempt; any other live guard is not.
    pub condvar_waits: Vec<String>,
    /// Method or `qualifier::method` names that block the calling thread.
    pub blocking_calls: Vec<String>,
    pub lock_order_enabled: bool,
    pub guard_blocking_enabled: bool,
    pub nondet_enabled: bool,
    /// Module path suffixes whose parallel reductions are the sanctioned
    /// deterministic ones (`cdat::reduce` splits fixed-shape chunks).
    pub reduction_modules: Vec<String>,
    /// Chained/looped method names that copy iteration order into ordered
    /// output (frames, digests, reports).
    pub ordered_sinks: Vec<String>,
    /// Chained method names that make iteration order irrelevant.
    pub order_neutral: Vec<String>,
    pub unbounded_enabled: bool,
    /// Module path suffixes that receive network or session input.
    pub input_modules: Vec<String>,
    /// Collection-growing method names `unbounded_growth` watches.
    pub grow_calls: Vec<String>,
    /// Identifier substrings that signal a capacity bound in the same
    /// function (`max_sessions`, `capacity`, `shed_watermark`, …).
    pub growth_guards: Vec<String>,
}

fn svec(items: &[&str]) -> Vec<String> {
    items.iter().map(|s| s.to_string()).collect()
}

impl Config {
    /// Built-in defaults for this workspace (used when `dv3dlint.toml` is
    /// missing a section, and by unit tests).
    pub fn defaults(root: PathBuf) -> Config {
        Config {
            root,
            crate_dirs: svec(&[
                "crates/cdms",
                "crates/cdat",
                "crates/rvtk",
                "crates/vistrails",
                "crates/core",
                "crates/hyperwall",
                "crates/bench",
                "crates/dv3dlint",
                ".",
            ]),
            no_panic_enabled: true,
            no_panic_crates: svec(&[
                "cdms", "cdat", "rvtk", "vistrails", "dv3d", "hyperwall", "uvcdat", "dv3dlint",
            ]),
            indexing_hot_paths: svec(&["crates/hyperwall/src/protocol.rs"]),
            mask_enabled: true,
            mask_crates: svec(&["cdat"]),
            raw_markers: svec(&["data", "data_mut"]),
            mask_markers: svec(&[
                "iter_valid",
                "get_valid",
                "to_filled",
                "valid_count",
                "valid_fraction",
                "from_filled_data",
            ]),
            deadline_enabled: true,
            deadline_crate: "hyperwall".into(),
            protocol_modules: svec(&["crates/hyperwall/src/protocol.rs"]),
            banned_calls: svec(&["read_message", "write_message"]),
            atomic_writes_enabled: true,
            atomic_writes_crates: svec(&["cdms"]),
            storage_module: "crates/cdms/src/storage.rs".into(),
            raw_write_calls: svec(&["fs::write", "File::create", "OpenOptions::new"]),
            error_hygiene_enabled: true,
            error_hygiene_crates: svec(&[
                "cdms", "cdat", "rvtk", "vistrails", "dv3d", "hyperwall", "uvcdat", "dv3dlint",
            ]),
            lint_attrs_enabled: true,
            lint_attrs_crates: svec(&[
                "cdms",
                "cdat",
                "rvtk",
                "vistrails",
                "dv3d",
                "hyperwall",
                "dv3d-bench",
                "uvcdat",
                "dv3dlint",
            ]),
            require_forbid: svec(&["unsafe_code"]),
            require_workspace_lints: true,
            workspace_denies: svec(&["unused_must_use"]),
            concurrency_crates: svec(&[
                "cdms", "cdat", "rvtk", "vistrails", "dv3d", "hyperwall", "uvcdat", "dv3dlint",
            ]),
            lock_methods: svec(&["lock", "read", "write"]),
            lock_wrappers: svec(&["std_lock"]),
            guard_preserving: svec(&["unwrap", "expect", "unwrap_or_else"]),
            condvar_waits: svec(&["wait", "wait_timeout", "wait_while", "wait_timeout_while"]),
            blocking_calls: svec(&[
                "wait",
                "wait_timeout",
                "wait_while",
                "recv",
                "recv_timeout",
                "sleep",
                "sync_all",
                "sync_data",
                "read_message",
                "read_message_deadline",
                "read_message_idle",
                "write_message",
                "write_message_deadline",
                "connect",
                "accept",
                "read_exact",
            ]),
            lock_order_enabled: true,
            guard_blocking_enabled: true,
            nondet_enabled: true,
            reduction_modules: svec(&["crates/cdat/src/reduce.rs"]),
            ordered_sinks: svec(&[
                "push",
                "extend",
                "push_str",
                "append",
                "push_back",
                "write_fmt",
                "mix",
                "update",
                "absorb",
            ]),
            order_neutral: svec(&[
                "min",
                "max",
                "min_by",
                "min_by_key",
                "max_by",
                "max_by_key",
                "count",
                "any",
                "all",
                "sum",
                "product",
                "len",
                "contains",
                "contains_key",
            ]),
            unbounded_enabled: true,
            input_modules: svec(&[
                "crates/hyperwall/src/service/server.rs",
                "crates/hyperwall/src/service/mux.rs",
                "crates/hyperwall/src/server.rs",
            ]),
            grow_calls: svec(&["push", "extend", "append", "push_back", "insert"]),
            growth_guards: svec(&[
                "max", "cap", "limit", "bound", "budget", "watermark", "quota", "shed",
            ]),
        }
    }

    /// Loads `dv3dlint.toml` from `root`, overlaying the defaults.
    pub fn load(root: PathBuf) -> Result<Config, ConfigError> {
        let path = root.join("dv3dlint.toml");
        let mut cfg = Config::defaults(root);
        let Ok(src) = std::fs::read_to_string(&path) else {
            return Ok(cfg); // defaults cover a missing config file
        };
        let t = Toml::parse(&src)
            .map_err(|e| ConfigError(format!("{}: {}", path.display(), e.0)))?;
        if let Some(v) = t.str_list("workspace", "crates") {
            cfg.crate_dirs = v;
        }
        let enabled = |s: &str| t.boolean(s, "enabled");
        if let Some(b) = enabled("rules.no_panic") {
            cfg.no_panic_enabled = b;
        }
        if let Some(v) = t.str_list("rules.no_panic", "crates") {
            cfg.no_panic_crates = v;
        }
        if let Some(v) = t.str_list("rules.no_panic", "indexing_hot_paths") {
            cfg.indexing_hot_paths = v;
        }
        if let Some(b) = enabled("rules.mask_propagation") {
            cfg.mask_enabled = b;
        }
        if let Some(v) = t.str_list("rules.mask_propagation", "crates") {
            cfg.mask_crates = v;
        }
        if let Some(v) = t.str_list("rules.mask_propagation", "raw_markers") {
            cfg.raw_markers = v;
        }
        if let Some(v) = t.str_list("rules.mask_propagation", "mask_markers") {
            cfg.mask_markers = v;
        }
        if let Some(b) = enabled("rules.deadline_io") {
            cfg.deadline_enabled = b;
        }
        if let Some(s) = t.string("rules.deadline_io", "crate") {
            cfg.deadline_crate = s;
        }
        // singular key kept for back-compat with older config files
        if let Some(s) = t.string("rules.deadline_io", "protocol_module") {
            cfg.protocol_modules = vec![s];
        }
        if let Some(v) = t.str_list("rules.deadline_io", "protocol_modules") {
            cfg.protocol_modules = v;
        }
        if let Some(v) = t.str_list("rules.deadline_io", "banned_calls") {
            cfg.banned_calls = v;
        }
        if let Some(b) = enabled("rules.atomic_writes") {
            cfg.atomic_writes_enabled = b;
        }
        if let Some(v) = t.str_list("rules.atomic_writes", "crates") {
            cfg.atomic_writes_crates = v;
        }
        if let Some(s) = t.string("rules.atomic_writes", "storage_module") {
            cfg.storage_module = s;
        }
        if let Some(v) = t.str_list("rules.atomic_writes", "raw_write_calls") {
            cfg.raw_write_calls = v;
        }
        if let Some(b) = enabled("rules.error_hygiene") {
            cfg.error_hygiene_enabled = b;
        }
        if let Some(v) = t.str_list("rules.error_hygiene", "crates") {
            cfg.error_hygiene_crates = v;
        }
        if let Some(b) = enabled("rules.lint_attrs") {
            cfg.lint_attrs_enabled = b;
        }
        if let Some(v) = t.str_list("rules.lint_attrs", "crates") {
            cfg.lint_attrs_crates = v;
        }
        if let Some(v) = t.str_list("rules.lint_attrs", "require_forbid") {
            cfg.require_forbid = v;
        }
        if let Some(b) = t.boolean("rules.lint_attrs", "require_workspace_lints") {
            cfg.require_workspace_lints = b;
        }
        if let Some(v) = t.str_list("rules.lint_attrs", "workspace_denies") {
            cfg.workspace_denies = v;
        }
        // shared dataflow-analysis knobs
        if let Some(v) = t.str_list("analysis", "crates") {
            cfg.concurrency_crates = v;
        }
        if let Some(v) = t.str_list("analysis", "lock_methods") {
            cfg.lock_methods = v;
        }
        if let Some(v) = t.str_list("analysis", "lock_wrappers") {
            cfg.lock_wrappers = v;
        }
        if let Some(v) = t.str_list("analysis", "guard_preserving") {
            cfg.guard_preserving = v;
        }
        if let Some(v) = t.str_list("analysis", "condvar_waits") {
            cfg.condvar_waits = v;
        }
        if let Some(v) = t.str_list("analysis", "blocking_calls") {
            cfg.blocking_calls = v;
        }
        if let Some(b) = enabled("rules.lock_order") {
            cfg.lock_order_enabled = b;
        }
        if let Some(b) = enabled("rules.guard_across_blocking") {
            cfg.guard_blocking_enabled = b;
        }
        if let Some(b) = enabled("rules.nondet_reduction") {
            cfg.nondet_enabled = b;
        }
        if let Some(v) = t.str_list("rules.nondet_reduction", "reduction_modules") {
            cfg.reduction_modules = v;
        }
        if let Some(v) = t.str_list("rules.nondet_reduction", "ordered_sinks") {
            cfg.ordered_sinks = v;
        }
        if let Some(v) = t.str_list("rules.nondet_reduction", "order_neutral") {
            cfg.order_neutral = v;
        }
        if let Some(b) = enabled("rules.unbounded_growth") {
            cfg.unbounded_enabled = b;
        }
        if let Some(v) = t.str_list("rules.unbounded_growth", "input_modules") {
            cfg.input_modules = v;
        }
        if let Some(v) = t.str_list("rules.unbounded_growth", "grow_calls") {
            cfg.grow_calls = v;
        }
        if let Some(v) = t.str_list("rules.unbounded_growth", "growth_guards") {
            cfg.growth_guards = v;
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_scalars_and_arrays() {
        let src = r#"
# top comment
[workspace]
crates = ["crates/a", "crates/b"]  # trailing comment

[rules.no_panic]
enabled = true
crates = [
  "cdms",
  "cdat",   # multi-line
]
limit = 42
name = "x # not a comment"
"#;
        let t = Toml::parse(src).expect("parse");
        assert_eq!(
            t.str_list("workspace", "crates"),
            Some(vec!["crates/a".into(), "crates/b".into()])
        );
        assert_eq!(t.boolean("rules.no_panic", "enabled"), Some(true));
        assert_eq!(
            t.str_list("rules.no_panic", "crates"),
            Some(vec!["cdms".into(), "cdat".into()])
        );
        assert_eq!(t.get("rules.no_panic", "limit"), Some(&Value::Int(42)));
        assert_eq!(
            t.string("rules.no_panic", "name").as_deref(),
            Some("x # not a comment")
        );
    }

    #[test]
    fn bad_syntax_is_an_error() {
        assert!(Toml::parse("[unclosed").is_err());
        assert!(Toml::parse("key value").is_err());
        assert!(Toml::parse("key = [\"a\"").is_err());
    }

    #[test]
    fn defaults_cover_all_rules() {
        let cfg = Config::defaults(PathBuf::from("."));
        assert!(cfg.no_panic_enabled);
        assert!(cfg.no_panic_crates.contains(&"cdat".to_string()));
        assert_eq!(cfg.deadline_crate, "hyperwall");
        assert!(cfg.require_forbid.contains(&"unsafe_code".to_string()));
    }
}
