//! Workspace discovery: crate models (package name + parsed source files +
//! manifest) built from the `dv3dlint.toml` crate list, or ad-hoc from
//! explicit paths.

use crate::config::{Config, ConfigError, Toml};
use crate::model::FileModel;
use rayon::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

/// One crate as the rules see it.
#[derive(Debug)]
pub struct CrateModel {
    /// Package name from `Cargo.toml` (`adhoc` for path mode).
    pub name: String,
    /// Crate directory, workspace-relative.
    pub dir: PathBuf,
    /// Parsed `src/**/*.rs` files (paths workspace-relative).
    pub files: Vec<FileModel>,
    /// Crate manifest, parsed (absent in path mode).
    pub manifest: Option<Toml>,
    /// Workspace-relative path of the crate root source file, when found
    /// (`src/lib.rs`, else `src/main.rs`).
    pub root_file: Option<PathBuf>,
}

/// The whole scanned workspace.
#[derive(Debug)]
pub struct Workspace {
    pub crates: Vec<CrateModel>,
    /// Root `Cargo.toml`, parsed (absent in path mode).
    pub root_manifest: Option<Toml>,
    pub files_scanned: usize,
    /// Lazily-built global dataflow analysis, shared by the concurrency
    /// rules (built once, on first use).
    pub analysis: OnceLock<Arc<crate::callgraph::Analysis>>,
}

impl Workspace {
    /// The global two-pass analysis (call graph, lock graph, per-function
    /// facts), building it on first request.
    pub fn analysis(&self, cfg: &Config) -> Arc<crate::callgraph::Analysis> {
        self.analysis
            .get_or_init(|| Arc::new(crate::callgraph::Analysis::build(self, cfg)))
            .clone()
    }

    /// The parsed model of the file at `path`, if it was scanned.
    pub fn file(&self, path: &Path) -> Option<&FileModel> {
        self.crates.iter().flat_map(|c| c.files.iter()).find(|f| f.path == path)
    }
}

/// Recursively lists `*.rs` under `dir`, sorted for stable diagnostics.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            out.extend(rust_files(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out
}

fn rel(root: &Path, path: &Path) -> PathBuf {
    path.strip_prefix(root).map(Path::to_path_buf).unwrap_or_else(|_| path.to_path_buf())
}

fn read_source(root: &Path, path: &Path) -> Result<(PathBuf, String), ConfigError> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| ConfigError(format!("cannot read {}: {e}", path.display())))?;
    Ok((rel(root, path), src))
}

/// Worker threads the parallel front-end uses (vendored rayon honours
/// `RAYON_NUM_THREADS`); reported in the JSON report.
pub fn worker_threads() -> usize {
    rayon::current_num_threads().max(1)
}

/// Parses already-read sources in parallel (vendored rayon; honours
/// `RAYON_NUM_THREADS`). Output order matches input order, so diagnostics
/// stay deterministic regardless of thread count.
fn parse_sources(sources: Vec<(PathBuf, String)>) -> Vec<FileModel> {
    let mut slots: Vec<(PathBuf, String, Option<FileModel>)> =
        sources.into_iter().map(|(p, s)| (p, s, None)).collect();
    slots
        .as_mut_slice()
        .par_iter_mut()
        .for_each(|(path, src, out)| *out = Some(FileModel::parse(path.clone(), src)));
    slots.into_iter().filter_map(|(_, _, m)| m).collect()
}

/// Builds one crate model from its directory (must contain `Cargo.toml`).
fn load_crate(root: &Path, dir_rel: &str) -> Result<CrateModel, ConfigError> {
    let dir_abs = if dir_rel == "." { root.to_path_buf() } else { root.join(dir_rel) };
    let manifest_path = dir_abs.join("Cargo.toml");
    let manifest_src = std::fs::read_to_string(&manifest_path)
        .map_err(|e| ConfigError(format!("cannot read {}: {e}", manifest_path.display())))?;
    let manifest = Toml::parse(&manifest_src)
        .map_err(|e| ConfigError(format!("{}: {}", manifest_path.display(), e.0)))?;
    let name = manifest
        .string("package", "name")
        .ok_or_else(|| ConfigError(format!("{}: no package name", manifest_path.display())))?;
    let src_dir = dir_abs.join("src");
    let mut sources = Vec::new();
    for path in rust_files(&src_dir) {
        sources.push(read_source(root, &path)?);
    }
    let files = parse_sources(sources);
    let root_file = ["src/lib.rs", "src/main.rs"]
        .iter()
        .map(|f| dir_abs.join(f))
        .find(|p| p.is_file())
        .map(|p| rel(root, &p));
    let dir = if dir_rel == "." { PathBuf::from(".") } else { PathBuf::from(dir_rel) };
    Ok(CrateModel { name, dir, files, manifest: Some(manifest), root_file })
}

/// Loads every crate in the config's crate list.
pub fn load_workspace(cfg: &Config) -> Result<Workspace, ConfigError> {
    let mut crates = Vec::new();
    for dir in &cfg.crate_dirs {
        crates.push(load_crate(&cfg.root, dir)?);
    }
    let root_manifest_src = std::fs::read_to_string(cfg.root.join("Cargo.toml"))
        .map_err(|e| ConfigError(format!("cannot read workspace Cargo.toml: {e}")))?;
    let root_manifest = Toml::parse(&root_manifest_src)
        .map_err(|e| ConfigError(format!("workspace Cargo.toml: {}", e.0)))?;
    let files_scanned = crates.iter().map(|c| c.files.len()).sum();
    Ok(Workspace {
        crates,
        root_manifest: Some(root_manifest),
        files_scanned,
        analysis: OnceLock::new(),
    })
}

/// Builds a synthetic single-crate workspace from explicit file/dir paths.
/// Crate-scoped rules treat it as every configured crate at once (the
/// crate name `*` matches any scope); manifest-based checks are skipped.
pub fn load_paths(paths: &[PathBuf]) -> Result<Workspace, ConfigError> {
    let cwd = PathBuf::from(".");
    let mut sources = Vec::new();
    for p in paths {
        if p.is_dir() {
            for f in rust_files(p) {
                sources.push(read_source(&cwd, &f)?);
            }
        } else if p.is_file() {
            sources.push(read_source(&cwd, p)?);
        } else {
            return Err(ConfigError(format!("no such path: {}", p.display())));
        }
    }
    let files = parse_sources(sources);
    let files_scanned = files.len();
    Ok(Workspace {
        crates: vec![CrateModel {
            name: "*".into(),
            dir: cwd,
            files,
            manifest: None,
            root_file: None,
        }],
        root_manifest: None,
        files_scanned,
        analysis: OnceLock::new(),
    })
}

impl CrateModel {
    /// True when this crate is in `scope` (a list of package names); the
    /// ad-hoc crate `*` is always in scope.
    pub fn in_scope(&self, scope: &[String]) -> bool {
        self.name == "*" || scope.contains(&self.name)
    }
}
