//! Pass 2b: the workspace-global analysis. Aggregates every function's
//! [`crate::dataflow::FnFacts`] into one [`Analysis`]:
//!
//! - a by-name call graph (resolution prefers same-crate definitions and
//!   skips ubiquitous std method names, trading a documented soundness gap
//!   for a huge cut in false edges);
//! - a *may-block* fixpoint with witness chains, so "calls `perform`,
//!   which reaches `wait`" can be printed, not just asserted;
//! - transitive lock sets per function, and the global lock-acquisition
//!   graph (edges `held → acquired`, both intra-procedural and through
//!   calls), with cycle enumeration for `lock_order`.
//!
//! Test functions are excluded: test helpers block freely by design and
//! would otherwise poison the whole graph.

use crate::config::Config;
use crate::dataflow::{self, FnFacts};
use crate::workspace::Workspace;
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

/// Method names resolved to std/core in practice; calls to these are never
/// routed through the workspace call graph (documented false-negative
/// trade-off — a workspace fn named `get` that blocks would be missed).
const AMBIENT_METHODS: &[&str] = &[
    "new", "default", "clone", "len", "is_empty", "get", "get_mut", "insert", "remove", "push",
    "pop", "extend", "iter", "iter_mut", "into_iter", "next", "write", "read", "flush", "fmt",
    "eq", "cmp", "hash", "drop", "lock", "unwrap", "expect", "contains", "contains_key", "min",
    "max", "map", "and_then", "unwrap_or", "unwrap_or_else", "to_string", "from", "into",
];

/// One function node in the global graph.
#[derive(Debug)]
pub struct FnNode {
    pub krate: String,
    pub file: PathBuf,
    pub name: String,
    pub line: u32,
    pub facts: FnFacts,
}

/// One edge of the lock-acquisition graph: `to` was (or may be) acquired
/// while `from` was held, at `file:line`.
#[derive(Debug, Clone)]
pub struct LockEdge {
    pub from: String,
    pub to: String,
    pub file: PathBuf,
    pub line: u32,
    /// Empty for direct nesting; otherwise describes the call path that
    /// reaches the second acquisition.
    pub note: String,
}

/// The built global analysis.
#[derive(Debug)]
pub struct Analysis {
    pub fns: Vec<FnNode>,
    by_name: BTreeMap<String, Vec<usize>>,
    /// `may_block[i]`: witness chain (callee names ending at a blocking
    /// primitive) when function `i` can block; `None` when it cannot.
    pub may_block: Vec<Option<Vec<String>>>,
    /// Deduplicated global lock-acquisition edges.
    pub lock_edges: Vec<LockEdge>,
}

impl Analysis {
    /// Builds the analysis over every scanned crate.
    pub fn build(ws: &Workspace, cfg: &Config) -> Analysis {
        let mut fns = Vec::new();
        for krate in &ws.crates {
            // hash-typed names are harvested crate-wide: a field declared
            // in one file is iterated from another
            let mut hash_names = BTreeSet::new();
            for file in &krate.files {
                hash_names.extend(dataflow::hash_names_in(file));
            }
            for file in &krate.files {
                for facts in dataflow::analyze_file(file, &krate.name, cfg, &hash_names) {
                    if facts.in_test {
                        continue;
                    }
                    fns.push(FnNode {
                        krate: krate.name.clone(),
                        file: file.path.clone(),
                        name: facts.name.clone(),
                        line: facts.line,
                        facts,
                    });
                }
            }
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        let mut analysis = Analysis {
            fns,
            by_name,
            may_block: Vec::new(),
            lock_edges: Vec::new(),
        };
        analysis.compute_may_block();
        analysis.compute_lock_edges();
        analysis
    }

    /// Call-graph resolution: same-crate definitions win; ambient std
    /// method names never resolve.
    pub fn resolve(&self, caller: usize, callee: &str) -> Vec<usize> {
        if AMBIENT_METHODS.contains(&callee) {
            return Vec::new();
        }
        let Some(cands) = self.by_name.get(callee) else {
            return Vec::new();
        };
        let caller_crate = &self.fns[caller].krate;
        let same: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&j| j != caller && self.fns[j].krate == *caller_crate)
            .collect();
        if !same.is_empty() {
            return same;
        }
        cands.iter().copied().filter(|&j| j != caller).collect()
    }

    fn compute_may_block(&mut self) {
        let n = self.fns.len();
        let mut may: Vec<Option<Vec<String>>> = (0..n)
            .map(|i| {
                self.fns[i]
                    .facts
                    .blocking
                    .first()
                    .map(|b| vec![b.callee.clone()])
            })
            .collect();
        loop {
            let mut changed = false;
            for i in 0..n {
                if may[i].is_some() {
                    continue;
                }
                let callees: Vec<String> = self.fns[i]
                    .facts
                    .calls
                    .iter()
                    .map(|c| c.callee.clone())
                    .collect();
                'outer: for callee in callees {
                    for j in self.resolve(i, &callee) {
                        if let Some(chain) = &may[j] {
                            let mut witness = vec![self.fns[j].name.clone()];
                            witness.extend(chain.iter().take(3).cloned());
                            may[i] = Some(witness);
                            changed = true;
                            break 'outer;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        self.may_block = may;
    }

    fn compute_lock_edges(&mut self) {
        let n = self.fns.len();
        // transitive lock sets: lock name → first acquisition site
        let mut locks: Vec<BTreeMap<String, (PathBuf, u32)>> = (0..n)
            .map(|i| {
                let f = &self.fns[i];
                f.facts
                    .acquisitions
                    .iter()
                    .map(|a| (a.lock.clone(), (f.file.clone(), a.line)))
                    .collect()
            })
            .collect();
        loop {
            let mut changed = false;
            for i in 0..n {
                let callees: Vec<String> = self.fns[i]
                    .facts
                    .calls
                    .iter()
                    .map(|c| c.callee.clone())
                    .collect();
                for callee in callees {
                    for j in self.resolve(i, &callee) {
                        let add: Vec<(String, (PathBuf, u32))> = locks[j]
                            .iter()
                            .filter(|(k, _)| !locks[i].contains_key(*k))
                            .map(|(k, v)| (k.clone(), v.clone()))
                            .collect();
                        if !add.is_empty() {
                            locks[i].extend(add);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
        let mut edges = Vec::new();
        let anon = |l: &str| l.contains("<expr@");
        for i in 0..n {
            let f = &self.fns[i];
            // direct nesting
            for acq in &f.facts.acquisitions {
                for h in &acq.held {
                    if anon(&h.lock) || anon(&acq.lock) {
                        continue;
                    }
                    if seen.insert((h.lock.clone(), acq.lock.clone())) {
                        edges.push(LockEdge {
                            from: h.lock.clone(),
                            to: acq.lock.clone(),
                            file: f.file.clone(),
                            line: acq.line,
                            note: format!(
                                "`{}` acquired at {}:{} while `{}` (acquired at line {}) is held",
                                acq.lock,
                                f.file.display(),
                                acq.line,
                                h.lock,
                                h.line
                            ),
                        });
                    }
                }
            }
            // through calls: a call made under a guard reaches functions
            // that acquire more locks
            for cu in &f.facts.calls {
                if cu.held.is_empty() {
                    continue;
                }
                for j in self.resolve(i, &cu.callee) {
                    for (lock, (lfile, lline)) in &locks[j] {
                        if anon(lock) {
                            continue;
                        }
                        for h in &cu.held {
                            if anon(&h.lock) || h.lock == *lock {
                                continue;
                            }
                            if seen.insert((h.lock.clone(), lock.clone())) {
                                edges.push(LockEdge {
                                    from: h.lock.clone(),
                                    to: lock.clone(),
                                    file: f.file.clone(),
                                    line: cu.line,
                                    note: format!(
                                        "call to `{}` at {}:{} (holding `{}`) reaches an \
                                         acquisition of `{}` at {}:{}",
                                        cu.callee,
                                        f.file.display(),
                                        cu.line,
                                        h.lock,
                                        lock,
                                        lfile.display(),
                                        lline
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }
        self.lock_edges = edges;
    }

    /// Enumerates unique cycles in the lock graph. Each cycle is returned
    /// as the edge list closing it; self-edges (re-acquiring a held,
    /// non-reentrant lock) come back as single-edge cycles.
    pub fn lock_cycles(&self) -> Vec<Vec<&LockEdge>> {
        let mut adj: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
        for e in &self.lock_edges {
            adj.entry(e.from.as_str()).or_default().push(e);
        }
        let mut cycles: Vec<Vec<&LockEdge>> = Vec::new();
        let mut canon: BTreeSet<Vec<String>> = BTreeSet::new();
        for e in &self.lock_edges {
            if e.from == e.to {
                if canon.insert(vec![e.from.clone()]) {
                    cycles.push(vec![e]);
                }
                continue;
            }
            // shortest path e.to →* e.from closes a cycle through e
            let mut prev: BTreeMap<&str, &LockEdge> = BTreeMap::new();
            let mut queue: Vec<&str> = vec![e.to.as_str()];
            let mut qi = 0usize;
            while qi < queue.len() {
                let node = queue[qi];
                qi += 1;
                if node == e.from {
                    break;
                }
                for next in adj.get(node).into_iter().flatten() {
                    if next.to != e.to && !prev.contains_key(next.to.as_str()) {
                        prev.insert(next.to.as_str(), next);
                        queue.push(next.to.as_str());
                    }
                }
            }
            if !prev.contains_key(e.from.as_str()) {
                continue;
            }
            let mut path: Vec<&LockEdge> = vec![e];
            let mut cur = e.from.as_str();
            let mut back = Vec::new();
            while cur != e.to.as_str() {
                let Some(step) = prev.get(cur) else { break };
                back.push(*step);
                cur = step.from.as_str();
            }
            back.reverse();
            path.extend(back);
            let mut key: Vec<String> = path.iter().map(|p| p.from.clone()).collect();
            key.sort();
            if canon.insert(key) {
                cycles.push(path);
            }
        }
        cycles
    }

    /// Indices of the functions defined in `file`.
    pub fn fns_in_file(&self, file: &std::path::Path) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.file == file)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;
    use crate::workspace::CrateModel;
    use std::path::PathBuf;
    use std::sync::OnceLock;

    fn ws_of(src: &str) -> Workspace {
        let file = FileModel::parse(PathBuf::from("mem.rs"), src);
        Workspace {
            crates: vec![CrateModel {
                name: "t".into(),
                dir: PathBuf::from("."),
                files: vec![file],
                manifest: None,
                root_file: None,
            }],
            root_manifest: None,
            files_scanned: 1,
            analysis: OnceLock::new(),
        }
    }

    #[test]
    fn may_block_propagates_with_witness() {
        let src = "\
fn leaf(&self) { self.slot.recv_timeout(t); }
fn mid(&self) { self.leaf(); }
fn top(&self) { self.mid(); }
fn pure(&self) { self.nothing_here(); }
";
        let ws = ws_of(src);
        let a = Analysis::build(&ws, &Config::defaults(PathBuf::from(".")));
        let idx = |n: &str| a.fns.iter().position(|f| f.name == n).expect("fn");
        assert!(a.may_block[idx("leaf")].is_some());
        let top = a.may_block[idx("top")].as_ref().expect("top blocks");
        assert_eq!(top[0], "mid", "witness names the path");
        assert!(a.may_block[idx("pure")].is_none());
    }

    use crate::config::Config;

    #[test]
    fn cross_function_lock_cycle_is_found() {
        let src = "\
fn ab(&self) {
    let a = self.alpha.lock();
    let b = self.beta.lock();
    drop(b);
    drop(a);
}
fn ba(&self) {
    let b = self.beta.lock();
    self.helper();
    drop(b);
}
fn helper(&self) {
    let a = self.alpha.lock();
    drop(a);
}
";
        let ws = ws_of(src);
        let a = Analysis::build(&ws, &Config::defaults(PathBuf::from(".")));
        let cycles = a.lock_cycles();
        assert_eq!(cycles.len(), 1, "edges: {:?}", a.lock_edges);
        let locks: Vec<&str> = cycles[0].iter().map(|e| e.from.as_str()).collect();
        assert!(locks.contains(&"t::alpha") && locks.contains(&"t::beta"));
        // the interprocedural edge carries its call path
        assert!(cycles[0].iter().any(|e| e.note.contains("helper")));
    }

    #[test]
    fn consistent_order_has_no_cycle() {
        let src = "\
fn one(&self) {
    let a = self.alpha.lock();
    let b = self.beta.lock();
    drop(b);
    drop(a);
}
fn two(&self) {
    let a = self.alpha.lock();
    let b = self.beta.lock();
    drop(b);
    drop(a);
}
";
        let ws = ws_of(src);
        let a = Analysis::build(&ws, &Config::defaults(PathBuf::from(".")));
        assert!(a.lock_cycles().is_empty());
    }

    #[test]
    fn self_edge_is_a_reentrancy_cycle() {
        let src = "\
fn re(&self) {
    let a = self.alpha.lock();
    let b = self.alpha.lock();
    drop(b);
    drop(a);
}
";
        let ws = ws_of(src);
        let a = Analysis::build(&ws, &Config::defaults(PathBuf::from(".")));
        let cycles = a.lock_cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 1);
        assert_eq!(cycles[0][0].from, cycles[0][0].to);
    }
}
